#!/usr/bin/env python3
"""Doc-comment lint for the public headers of src/stats and src/core.

Enforces the repo's documentation contract (see docs/ARCHITECTURE.md):
every public declaration in the linted headers — free functions,
classes/structs/enums at namespace scope, and public member functions —
must be immediately preceded by a `///` Doxygen contract comment, in the
style established by src/stats/rff.h.  Runs as the `docs_lint` ctest;
`docs_doxygen` (when doxygen is installed) applies the same rule through
doxygen's WARN_IF_UNDOCUMENTED + WARN_AS_ERROR.

The parser is a pragmatic line scanner tuned to this codebase's
formatting (Google style, 2-space indents, one declaration per
statement).  It intentionally errs on the side of flagging: a false
positive is fixed by documenting the declaration, which is the point.

Exit status: 0 when clean, 1 with a warning line per undocumented
declaration otherwise.
"""

import re
import sys
from pathlib import Path

# Lines that can never *start* a declaration needing docs.
_SKIP_PREFIXES = (
    "#", "//", "/*", "*", "}", ")", "public:", "private:", "protected:",
    "namespace", "using ", "typedef ", "friend ", "static_assert",
    "SBRL_", "EXPECT_", "ASSERT_",
)

# A bare `template <...>` introducer line: the declaration proper is on
# the following line(s). Transparent for doc purposes — a /// comment
# above the introducer documents the declaration below it — and never a
# declaration start itself (single-line templated declarations instead
# match _DECL_RE's optional template prefix).
_TEMPLATE_INTRO_RE = re.compile(r"template\s*<[^;{]*>?\s*$")

# A function/type declaration opener at the current scope.
_DECL_RE = re.compile(
    r"^(?:template\s*<.*>\s*)?"
    r"(?:(?:inline|constexpr|explicit|virtual|static|friend|extern)\s+)*"
    r"(?:(?P<kind>class|struct|enum(?:\s+class)?)\s+(?P<type_name>\w+)"
    r"|(?P<rettype>[\w:<>,&*\s]+?)\s+(?P<func_name>~?\w+|operator\S+)\s*\("
    r"|(?P<ctor_name>\w+)\s*\()"
)


def _is_doc_comment(line: str) -> bool:
    return line.lstrip().startswith("///")


def _decl_name(match: re.Match) -> str:
    for group in ("type_name", "func_name", "ctor_name"):
        name = match.group(group)
        if name:
            return name
    return "?"


def lint_header(path: Path) -> list:
    """Returns a list of (line_number, message) warnings for one header."""
    lines = path.read_text().splitlines()
    warnings = []

    # Scope tracking: a stack entry per open brace that matters.
    # Entries: ("ns", None) for namespaces, ("record", access) for
    # class/struct bodies, ("other", None) for everything else
    # (function bodies, enums, initializers).
    scope = []
    prev_meaningful = ""  # last non-blank line before the current one
    continuation = False  # inside a multi-line declaration
    pending_record = None  # access of a record whose '{' is still ahead
    in_macro = False  # previous line ended with a backslash continuation

    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip()
        stripped = line.strip()

        # Lines inside a multi-line #define (backslash continuations)
        # are macro body, never declarations.
        was_macro = in_macro
        in_macro = stripped.endswith("\\") and (
            was_macro or stripped.startswith("#"))
        if was_macro:
            prev_meaningful = stripped
            continue

        if not stripped:
            prev_meaningful = ""
            continue

        if stripped.startswith(("public:", "private:", "protected:")):
            if scope and scope[-1][0] == "record":
                scope[-1] = ("record", stripped.split(":")[0])
            prev_meaningful = stripped
            continue

        # Bare template introducer: leave prev_meaningful (usually the
        # /// comment) in place for the declaration on the next line.
        if _TEMPLATE_INTRO_RE.match(stripped):
            continue

        lintable_scope = (
            all(s[0] == "ns" for s in scope) and scope  # namespace scope
            or (scope and scope[-1][0] == "record"
                and scope[-1][1] == "public"
                and all(s[0] in ("ns", "record") for s in scope))
        )

        is_decl_start = False
        decl_label = ""
        if (lintable_scope and not continuation
                and not any(stripped.startswith(p) for p in _SKIP_PREFIXES)
                and not _is_doc_comment(stripped)):
            m = _DECL_RE.match(stripped)
            # Field declarations (no parenthesis, no record keyword) and
            # deleted/defaulted members are exempt: the contract covers
            # functions and types.
            if m and "= delete" not in stripped and "= default" not in stripped:
                is_decl_start = True
                decl_label = _decl_name(m)

        if is_decl_start and not _is_doc_comment(prev_meaningful):
            warnings.append(
                (lineno,
                 f"{path}:{lineno}: public declaration '{decl_label}' "
                 f"lacks a /// contract comment"))

        # --- update parser state ------------------------------------------
        # Multi-line declaration: keep skipping until it terminates.
        if not stripped.startswith(("//", "#")):
            terminated = stripped.endswith((";", "{", "}", ":"))
            if is_decl_start or continuation:
                continuation = not terminated
        # Scope pushes/pops, honoring braces only outside comments.
        code = re.sub(r'//.*', '', stripped)
        if re.match(r"^namespace\b", code) and code.endswith("{"):
            scope.append(("ns", None))
        else:
            m = re.match(r"^(?:template\s*<.*>\s*)?(class|struct)\s+\w+", code)
            if m and not code.endswith(";"):
                # struct => public by default, class => private.
                pending_record = "public" if m.group(1) == "struct" else "private"
            for ch in code:
                if ch == "{":
                    if pending_record is not None:
                        scope.append(("record", pending_record))
                        pending_record = None
                    else:
                        scope.append(("other", None))
                elif ch == "}":
                    if scope:
                        scope.pop()
        prev_meaningful = stripped

    return warnings


def main(argv: list) -> int:
    if len(argv) < 2:
        print("usage: check_doc_comments.py <header-dir> [...]")
        return 2
    all_warnings = []
    checked = 0
    for root in argv[1:]:
        for header in sorted(Path(root).glob("*.h")):
            checked += 1
            all_warnings.extend(lint_header(header))
    for _, message in all_warnings:
        print(message)
    if all_warnings:
        print(f"docs lint: {len(all_warnings)} undocumented public "
              f"declaration(s) across {checked} header(s)")
        return 1
    print(f"docs lint: {checked} header(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env bash
# CI entry point: builds the default and sanitized configurations and
# runs the tier-1 suite (which includes the threads2, isa_baseline,
# faults, serving, large_n, and precision variants), then the
# sanitizer subset (now including the CSV/streaming loader suites)
# plus the fault drills, serving format suite, and precision-tier
# suite under asan/ubsan, and the ThreadSanitizer subset (which
# includes the serving micro-batcher concurrency suite). Mirrors the ROADMAP verify line;
# .github/workflows/ci.yml calls this script, and it runs unchanged on
# any box with cmake + gcc/clang + gtest (google-benchmark and doxygen
# are optional — the corresponding targets/tests skip when absent).
#
# Usage: scripts/ci.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== default configuration ==="
cmake -B "${PREFIX}" -S .
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" -L tier1 --output-on-failure -j "${JOBS}"
# threads2 variants are tier1-labeled too; run the label explicitly so a
# labeling regression cannot silently drop them.
ctest --test-dir "${PREFIX}" -L threads2 --output-on-failure -j "${JOBS}"
# Failure-handling suite (checkpoint format lockdown + fault-injection
# drills); tier1-labeled, but run the label explicitly for the same
# reason as threads2.
ctest --test-dir "${PREFIX}" -L faults --output-on-failure -j "${JOBS}"
# Serving engine (model format, export/score parity, micro-batcher,
# OOD gating); tier1-labeled, run explicitly as a labeling guard.
ctest --test-dir "${PREFIX}" -L serving --output-on-failure -j "${JOBS}"
# Out-of-core path (streaming loaders, sharded tree reduction, the
# large-n smoke guard); tier1-labeled, run explicitly as a labeling
# guard.
ctest --test-dir "${PREFIX}" -L large_n --output-on-failure -j "${JOBS}"
# Precision tier (f32 serving + streaming-stats error budgets, its
# threads2/isa_baseline variants, the serving bench's f32 lanes);
# tier1-labeled, run explicitly as a labeling guard.
ctest --test-dir "${PREFIX}" -L precision --output-on-failure -j "${JOBS}"

echo "=== sanitized configuration (address,undefined) ==="
cmake -B "${PREFIX}-sanitize" -S . -DSBRL_SANITIZE=address,undefined
cmake --build "${PREFIX}-sanitize" -j "${JOBS}"
ctest --test-dir "${PREFIX}-sanitize" -L sanitize --output-on-failure \
      -j "${JOBS}"
# The fault drills double as sanitizer stress (rollback replays the
# same allocations; checkpoint I/O paths touch raw byte buffers) —
# run the label under asan/ubsan as well.
ctest --test-dir "${PREFIX}-sanitize" -L faults --output-on-failure \
      -j "${JOBS}"
# The serving format suite rides along sanitized for the same reason
# (serve/write + serve/read fault sites over raw byte buffers).
ctest --test-dir "${PREFIX}-sanitize" -L serving --output-on-failure \
      -j "${JOBS}"
# The f32 tier's kernels under asan/ubsan: the wide kernels' tail
# lanes and the narrow/widen staging buffers are the risk surface.
ctest --test-dir "${PREFIX}-sanitize" -L precision --output-on-failure \
      -j "${JOBS}"

echo "=== sanitized configuration (thread) ==="
# The experiment engine's concurrency surfaces (sweep scheduler, session
# shared cache, thread pool, thread-scoped ISA dispatch) under
# ThreadSanitizer — the "no process-global mutable state touched by a
# run" contract, machine-checked.
cmake -B "${PREFIX}-tsan" -S . -DSBRL_SANITIZE=thread
cmake --build "${PREFIX}-tsan" -j "${JOBS}"
ctest --test-dir "${PREFIX}-tsan" -L tsan --output-on-failure -j "${JOBS}"

echo "=== CI OK ==="

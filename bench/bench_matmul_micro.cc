// Microbenchmark of the dense-linalg hot kernels: the tiled parallel
// Matmul against the seed repo's naive triple-loop kernel
// (MatmulReference), plus the transpose-product kernels used by every
// backward pass. The 256^3 case is this PR's acceptance gate: the tiled
// kernel must beat the seed kernel even single-threaded
// (SBRL_NUM_THREADS=1).
//
// Timings are written to BENCH_matmul_micro.json; the tiled kernel's
// result is CHECKed AllClose against the reference on every shape, so
// this bench doubles as an integration check of the blocked kernels.

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/cpu.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "harness.h"
#include "tensor/linalg.h"
#include "tensor/linalg_f32.h"
#include "tensor/matrix_f32.h"
#include "tensor/random.h"

namespace sbrl {
namespace bench {
namespace {

struct Shape {
  int64_t n, k, m;
};

// Prevents the timed loop from being optimized away.
volatile double g_sink = 0.0;

double TimeOp(const std::function<Matrix()>& op, int reps, Matrix* witness) {
  *witness = op();  // warm-up, kept for the correctness check
  Timer t;
  for (int r = 0; r < reps; ++r) {
    Matrix out = op();
    g_sink = g_sink + out.data()[0];
  }
  return t.ElapsedSeconds() / reps;
}

double TimeOpF32(const std::function<MatrixF32()>& op, int reps,
                 MatrixF32* witness) {
  *witness = op();  // warm-up, kept for the correctness check
  Timer t;
  for (int r = 0; r < reps; ++r) {
    MatrixF32 out = op();
    g_sink = g_sink + static_cast<double>(out.data()[0]);
  }
  return t.ElapsedSeconds() / reps;
}

int Main() {
  Scale scale = GetScale();
  PrintBanner("bench_matmul_micro: tiled kernels vs seed reference",
              "engineering microbenchmark (not a paper artifact)", scale);
  BenchJsonWriter json("matmul_micro", scale);

  const std::vector<Shape> shapes = scale.name == "smoke"
                                        ? std::vector<Shape>{{64, 64, 64}}
                                        : std::vector<Shape>{{256, 256, 256},
                                                             {1000, 25, 64},
                                                             {512, 512, 32}};
  const int reps = scale.name == "smoke" ? 3 : 10;
  Rng rng(7);
  for (const Shape& s : shapes) {
    Matrix a = rng.Randn(s.n, s.k);
    Matrix b = rng.Randn(s.k, s.m);
    const std::string tag = std::to_string(s.n) + "x" + std::to_string(s.k) +
                            "x" + std::to_string(s.m);

    Matrix ref_out, tiled_out;
    const double ref_s =
        TimeOp([&] { return MatmulReference(a, b); }, reps, &ref_out);
    const double tiled_s = TimeOp([&] { return Matmul(a, b); }, reps,
                                  &tiled_out);
    SBRL_CHECK(AllClose(ref_out, tiled_out, 1e-9))
        << "tiled Matmul diverges from reference at " << tag;
    json.Record("matmul_reference/" + tag, ref_s);
    json.Record("matmul_tiled/" + tag, tiled_s);

    Matrix bt = Transpose(b);
    Matrix witness;
    json.Record("matmul_trans_b/" + tag,
                TimeOp([&] { return MatmulTransB(a, bt); }, reps, &witness));
    SBRL_CHECK(AllClose(witness, tiled_out, 1e-9))
        << "MatmulTransB diverges at " << tag;
    Matrix at = Transpose(a);
    json.Record("matmul_trans_a/" + tag,
                TimeOp([&] { return MatmulTransA(at, b); }, reps, &witness));
    SBRL_CHECK(AllClose(witness, tiled_out, 1e-9))
        << "MatmulTransA diverges at " << tag;

    std::cout << tag << ": reference " << ref_s * 1e3 << " ms, tiled "
              << tiled_s * 1e3 << " ms ("
              << (tiled_s > 0 ? ref_s / tiled_s : 0.0) << "x, "
              << ThreadPool::GlobalParallelism() << " thread(s))\n";

    // Per-ISA sweep of the same product: every level the host supports,
    // forced via SetActiveIsa, so BENCH_matmul_micro.json tracks the
    // dispatch win (and each level's result is re-checked against the
    // reference). The trans_b lane tracks the blocked-panel wide
    // kernel, and the f32 lanes the float kernel family on the same
    // tables (checked against the f64 reference under the tier's
    // rounding budget). The auto-resolved level is restored afterwards.
    const MatrixF32 a32 = MatrixF32::FromF64(a);
    const MatrixF32 b32 = MatrixF32::FromF64(b);
    const MatrixF32 bt32 = MatrixF32::FromF64(bt);
    for (Isa isa : {Isa::kBaseline, Isa::kAvx2, Isa::kAvx512}) {
      if (isa > MaxSupportedIsa()) continue;
      // A SBRL_ISA env override outranks the forced choice; skip levels
      // the resolver refuses so every entry is labeled with what ran.
      if (SetActiveIsa(static_cast<IsaChoice>(static_cast<int>(isa))) !=
          isa) {
        continue;
      }
      Matrix isa_out;
      const double isa_s = TimeOp([&] { return Matmul(a, b); }, reps,
                                  &isa_out);
      SBRL_CHECK(AllClose(ref_out, isa_out, 1e-9))
          << IsaName(isa) << " Matmul diverges from reference at " << tag;
      json.Record(std::string("matmul_tiled_") + IsaName(isa) + "/" + tag,
                  isa_s);
      const double tb_s = TimeOp([&] { return MatmulTransB(a, bt); }, reps,
                                 &isa_out);
      SBRL_CHECK(AllClose(ref_out, isa_out, 1e-9))
          << IsaName(isa) << " MatmulTransB diverges at " << tag;
      json.Record(std::string("matmul_trans_b_") + IsaName(isa) + "/" + tag,
                  tb_s);
      MatrixF32 f32_out;
      const double f32_s = TimeOpF32([&] { return MatmulF32(a32, b32); },
                                     reps, &f32_out);
      SBRL_CHECK(AllClose(ref_out, f32_out.ToF64(), 5e-3))
          << IsaName(isa) << " MatmulF32 diverges at " << tag;
      json.Record(std::string("matmul_f32_") + IsaName(isa) + "/" + tag,
                  f32_s);
      const double tb32_s = TimeOpF32(
          [&] { return MatmulTransBF32(a32, bt32); }, reps, &f32_out);
      SBRL_CHECK(AllClose(ref_out, f32_out.ToF64(), 5e-3))
          << IsaName(isa) << " MatmulTransBF32 diverges at " << tag;
      json.Record(std::string("matmul_trans_b_f32_") + IsaName(isa) + "/" +
                      tag,
                  tb32_s);
      std::cout << "  " << IsaName(isa) << ": " << isa_s * 1e3
                << " ms (trans_b " << tb_s * 1e3 << " ms, f32 "
                << f32_s * 1e3 << " ms, trans_b f32 " << tb32_s * 1e3
                << " ms)\n";
    }
    SetActiveIsa(IsaChoice::kAuto);
  }
  std::cout << "wrote " << json.WriteOrDie() << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

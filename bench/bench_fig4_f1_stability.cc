// Reproduces Fig. 4 of the paper: mean and stability (std across test
// environments) of F1 scores for factual (a) and counterfactual (b)
// outcome prediction on Syn_16_16_16_2 — the paper's generalization
// metrics F1_bar and F1_std.

#include <iostream>

#include "common/string_util.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "stats/metrics.h"

namespace sbrl {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_fig4_f1_stability",
              "Fig. 4(a,b) — F1 mean/std across environments on "
              "Syn_16_16_16_2",
              scale);
  SyntheticDims dims;
  dims.m_i = dims.m_c = dims.m_a = 16;
  dims.m_v = 2;
  SweepOutput sweep = RunSyntheticSweep(dims, AllNineMethods(),
                                        PaperRhoGrid(), scale, /*seed=*/73);

  TablePrinter table({"Method", "F1 factual (mean)", "F1 factual (std)",
                      "F1 counterfactual (mean)",
                      "F1 counterfactual (std)"});
  for (size_t m = 0; m < sweep.methods.size(); ++m) {
    // Average per environment over replications first, then aggregate
    // across environments (the paper's F1_bar / F1_std definitions).
    std::vector<double> env_f1_factual, env_f1_counter;
    for (size_t r = 0; r < sweep.rho_grid.size(); ++r) {
      std::vector<double> ff, fc;
      for (const EvalResult& res : sweep.cells[m][r]) {
        ff.push_back(res.f1_factual);
        fc.push_back(res.f1_counterfactual);
      }
      env_f1_factual.push_back(AggregateOverEnvironments(ff).mean);
      env_f1_counter.push_back(AggregateOverEnvironments(fc).mean);
    }
    const EnvAggregate agg_f = AggregateOverEnvironments(env_f1_factual);
    const EnvAggregate agg_c = AggregateOverEnvironments(env_f1_counter);
    table.AddRow({sweep.methods[m].name(), FormatDouble(agg_f.mean, 3),
                  FormatDouble(agg_f.std_dev, 3),
                  FormatDouble(agg_c.mean, 3),
                  FormatDouble(agg_c.std_dev, 3)});
    if (m % 3 == 2 && m + 1 < sweep.methods.size()) table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): +SBRL-HAP has the smallest F1 std "
               "across environments\n(paper: factual std 0.058 -> 0.026, "
               "counterfactual std 0.040 -> 0.009 vs best baseline).\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

// Reproduces Fig. 3 of the paper: PEHE-vs-bias-rate curves on
// Syn_16_16_16_2 for all nine methods (trained at rho = +2.5). The
// figure is emitted as a per-method series table plus the paper's
// headline statistic: the relative PEHE degradation from the ID
// environment (rho = 2.5) to the farthest OOD environment (rho = -3).

#include <iostream>

#include "common/string_util.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "stats/metrics.h"

namespace sbrl {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_fig3_syn16_pehe",
              "Fig. 3 — PEHE on Syn_16_16_16_2 vs test bias rate", scale);
  SyntheticDims dims;
  dims.m_i = dims.m_c = dims.m_a = 16;
  dims.m_v = 2;
  SweepOutput sweep = RunSyntheticSweep(dims, AllNineMethods(),
                                        PaperRhoGrid(), scale, /*seed=*/72);

  std::vector<std::string> headers = {"Method"};
  for (double rho : sweep.rho_grid) {
    headers.push_back("rho=" + FormatDouble(rho, 1));
  }
  headers.push_back("degradation");
  TablePrinter table(headers);

  // Locate the ID (2.5) and farthest OOD (-3) environments.
  size_t idx_id = 0, idx_far = 0;
  for (size_t r = 0; r < sweep.rho_grid.size(); ++r) {
    if (sweep.rho_grid[r] == 2.5) idx_id = r;
    if (sweep.rho_grid[r] == -3.0) idx_far = r;
  }

  for (size_t m = 0; m < sweep.methods.size(); ++m) {
    std::vector<std::string> row = {sweep.methods[m].name()};
    std::vector<double> means;
    for (size_t r = 0; r < sweep.rho_grid.size(); ++r) {
      std::vector<double> pehes;
      for (const EvalResult& res : sweep.cells[m][r]) {
        pehes.push_back(res.pehe);
      }
      const double mean = AggregateOverEnvironments(pehes).mean;
      means.push_back(mean);
      row.push_back(FormatDouble(mean, 3));
    }
    // Paper footnote 2: Decrease = (PEHE(-3) - PEHE(2.5)) / PEHE(2.5).
    const double decrease =
        (means[idx_far] - means[idx_id]) / means[idx_id] * 100.0;
    row.push_back(FormatDouble(decrease, 1) + "%");
    table.AddRow(std::move(row));
    if (m % 3 == 2 && m + 1 < sweep.methods.size()) table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): baselines degrade ~56-77% from "
               "rho=2.5 to rho=-3;\n+SBRL reduces the degradation; "
               "+SBRL-HAP flattens the curve the most\n(paper: DeR-CFR 56% "
               "-> +SBRL 42% -> +SBRL-HAP 11%).\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

// Reproduces Table I of the paper: PEHE and eps-ATE (mean ±std over
// replications) on Syn_8_8_8_2 for {TARNet, CFR, DeR-CFR} x {vanilla,
// +SBRL, +SBRL-HAP}, trained on the rho = +2.5 environment and tested
// across the full bias-rate grid.

#include <iostream>

#include "common/string_util.h"
#include "eval/table_printer.h"
#include "harness.h"

namespace sbrl {
namespace bench {
namespace {

void PrintMetricTable(const SweepOutput& sweep, const std::string& title,
                      std::string (*cell)(const std::vector<EvalResult>&)) {
  std::cout << "\n" << title << "\n";
  std::vector<std::string> headers = {"Method"};
  for (double rho : sweep.rho_grid) {
    headers.push_back("rho=" + FormatDouble(rho, 1));
  }
  TablePrinter table(headers);
  for (size_t m = 0; m < sweep.methods.size(); ++m) {
    std::vector<std::string> row = {sweep.methods[m].name()};
    for (size_t r = 0; r < sweep.rho_grid.size(); ++r) {
      row.push_back(cell(sweep.cells[m][r]));
    }
    table.AddRow(std::move(row));
    if (m % 3 == 2 && m + 1 < sweep.methods.size()) table.AddSeparator();
  }
  table.Print(std::cout);
}

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_table1_syn8",
              "Table I — treatment effect estimation on Syn_8_8_8_2 across "
              "bias rates",
              scale);
  SyntheticDims dims;  // 8 / 8 / 8 / 2
  SweepOutput sweep = RunSyntheticSweep(dims, AllNineMethods(),
                                        PaperRhoGrid(), scale, /*seed=*/71);
  PrintMetricTable(sweep, "PEHE (mean ±std); training population rho=2.5",
                   &CellPehe);
  PrintMetricTable(sweep, "eps-ATE (mean ±std)", &CellAte);
  std::cout << "\nExpected shape (paper): vanilla PEHE degrades as rho "
               "moves from 2.5 to -3;\n+SBRL improves OOD cells; +SBRL-HAP "
               "improves them further, largest gains at rho=-3.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

// Thread-scaling and ISA-dispatch microbenchmark of the training hot
// kernels. Two sweeps, both written to BENCH_thread_scaling.json:
//
//  1. Worker-lane sweep (1, 2, 4, ... up to the hardware concurrency,
//     via ThreadPool::ResetGlobalForTest): the tiled Matmul at a large
//     and a skinny shape plus the L_D weight-step micro (d = 32,
//     n = 1000, forward + dw backward — the ROADMAP's reference micro),
//     so the multi-core speedup of the parallel backend can finally be
//     measured on a real host. On a single-core container the extra
//     lanes only measure oversubscription overhead — run this on a
//     multi-core box for the numbers the ROADMAP asks for.
//  2. Per-ISA sweep at one lane of the same workloads (every level the
//     host supports, forced via SetActiveIsa), isolating the kernel-
//     width win from thread scaling.
//
// The serial-cutoff knob (SBRL_SERIAL_CUTOFF / SetSerialCutoff) applies
// to every timing here; sweeping it is how grain sizes get tuned.

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "common/cpu.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/independence_regularizer.h"
#include "harness.h"
#include "tensor/linalg.h"
#include "tensor/random.h"

namespace sbrl {
namespace bench {
namespace {

volatile double g_sink = 0.0;

/// Best-of-`reps` wall time of `op` (after one warm-up call).
double TimeBest(const std::function<double()>& op, int reps) {
  (void)op();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    g_sink = g_sink + op();
    const double s = t.ElapsedSeconds();
    if (s < best) best = s;
  }
  return best;
}

/// One forward + backward of the decorrelation loss at the ROADMAP's
/// reference scale: z is (n x d), w the differentiable weight column.
double LdMicro(const Matrix& z, const Matrix& w_val, uint64_t seed) {
  Tape tape;
  Var w = tape.Leaf(w_val);
  Rng rng(seed);
  Var loss = HsicRffDecorrelationLoss(z, w, /*rff_features=*/5,
                                      /*pair_budget=*/24, rng);
  tape.Backward(loss);
  return loss.value().scalar();
}

int Main() {
  Scale scale = GetScale();
  PrintBanner("bench_thread_scaling: worker-lane and ISA sweeps of the "
              "hot kernels",
              "engineering microbenchmark (not a paper artifact)", scale);
  BenchJsonWriter json("thread_scaling", scale);

  const int reps = scale.name == "smoke" ? 3 : 8;
  Rng rng(11);
  const int64_t big = scale.name == "smoke" ? 128 : 384;
  Matrix a = rng.Randn(big, big);
  Matrix b = rng.Randn(big, big);
  Matrix askinny = rng.Randn(1000, 25);
  Matrix bskinny = rng.Randn(25, 64);
  Matrix z = rng.Randn(1000, 32);
  Matrix w_val = rng.Rand(1000, 1, 0.5, 2.0);
  const std::string big_tag =
      std::to_string(big) + "x" + std::to_string(big);

  const auto record_workloads = [&](const std::string& suffix) {
    json.Record("matmul_" + big_tag + suffix, TimeBest([&] {
      return Matmul(a, b).data()[0];
    }, reps));
    json.Record("matmul_1000x25x64" + suffix, TimeBest([&] {
      return Matmul(askinny, bskinny).data()[0];
    }, reps));
    json.Record("ld_micro_d32_n1000" + suffix, TimeBest([&] {
      return LdMicro(z, w_val, 99);
    }, reps));
  };

  // --- Sweep 1: worker lanes at the auto-resolved ISA. -------------
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> lane_counts = {1};
  for (int lanes = 2; lanes <= static_cast<int>(hw == 0 ? 1 : hw);
       lanes *= 2) {
    lane_counts.push_back(lanes);
  }
  for (int lanes : lane_counts) {
    ThreadPool::ResetGlobalForTest(lanes - 1);
    record_workloads("/threads" + std::to_string(lanes));
    std::cout << lanes << " lane(s) done\n";
  }
  ThreadPool::ResetGlobalForTest(0);

  // --- Sweep 2: ISA levels at one lane. ----------------------------
  for (Isa isa : {Isa::kBaseline, Isa::kAvx2, Isa::kAvx512}) {
    if (isa > MaxSupportedIsa()) continue;
    // A SBRL_ISA env override outranks the forced choice; skip levels
    // the resolver refuses so every entry is labeled with what ran.
    if (SetActiveIsa(static_cast<IsaChoice>(static_cast<int>(isa))) != isa) {
      continue;
    }
    record_workloads(std::string("/isa_") + IsaName(isa));
    std::cout << "isa " << IsaName(isa) << " done\n";
  }
  SetActiveIsa(IsaChoice::kAuto);

  std::cout << "wrote " << json.WriteOrDie() << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

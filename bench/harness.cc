#include "harness.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "common/cpu.h"
#include "common/precision.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/split.h"

namespace sbrl {
namespace bench {

Scale GetScale() {
  Scale scale;  // "default": single-replication, ~10s per model fit
  scale.n_train = 1000;
  scale.n_valid = 300;
  scale.n_test = 500;
  scale.iterations = 200;
  scale.replications = 1;
  const char* env = std::getenv("SBRL_BENCH_SCALE");
  const std::string mode = env == nullptr ? "default" : env;
  if (mode == "smoke") {
    scale.name = "smoke";
    scale.n_train = 200;
    scale.n_valid = 100;
    scale.n_test = 150;
    scale.iterations = 40;
    scale.replications = 1;
    scale.rep_width = 16;
    scale.head_width = 8;
  } else if (mode == "full") {
    scale.name = "full";
    scale.n_train = 3000;
    scale.n_valid = 1000;
    scale.n_test = 1500;
    scale.iterations = 600;
    scale.replications = 3;
    scale.rep_width = 64;
    scale.head_width = 32;
  }
  return scale;
}

EstimatorConfig BaseConfig(const Scale& scale, uint64_t seed) {
  EstimatorConfig config;
  config.network.rep_layers = 3;
  config.network.rep_width = scale.rep_width;
  config.network.head_layers = 3;
  config.network.head_width = scale.head_width;
  config.train.iterations = scale.iterations;
  config.train.lr = 1e-3;
  config.train.lr_decay_rate = 0.97;
  config.train.lr_decay_steps = 100;
  config.train.eval_every = 25;
  config.train.patience = 12;
  config.train.seed = seed;
  config.cfr.alpha_ipm = 1.0;
  // Strong last-layer attention with light lower tiers — the shape of
  // the paper's Table IV optima ({gamma1, gamma2, gamma3} = {1, 1e-3,
  // 1e-3} on Syn_16), scaled up because the bench trains fewer
  // iterations than the paper's 3000.
  config.sbrl.alpha_br = 1.0;
  config.sbrl.gamma1 = 10.0;
  config.sbrl.gamma2 = 1e-2;
  config.sbrl.gamma3 = 1e-2;
  config.sbrl.hsic_pair_budget = 24;
  config.sbrl.weight_update_every = 1;
  config.sbrl.lr_w = 0.1;
  return config;
}

std::vector<double> PaperRhoGrid() {
  return {-3.0, -2.5, -1.5, -1.3, 1.3, 1.5, 2.5, 3.0};
}

RunPlan SyntheticRunPlan(const SyntheticDims& dims,
                         const std::vector<MethodSpec>& methods,
                         const std::vector<double>& rho_grid,
                         const Scale& scale, uint64_t seed) {
  RunPlan plan;
  plan.methods = methods;
  plan.seeds.reserve(static_cast<size_t>(scale.replications));
  for (int rep = 0; rep < scale.replications; ++rep) {
    plan.seeds.push_back(seed + static_cast<uint64_t>(rep) * 1000003);
  }
  plan.make_datasets = [dims, rho_grid, scale](int64_t /*seed_index*/,
                                               uint64_t rep_seed) {
    SyntheticModel model(dims, rep_seed);
    // Training population: the rho = +2.5 environment (paper default).
    CausalDataset pool = model.SampleEnvironment(
        scale.n_train + scale.n_valid, 2.5, rep_seed + 1);
    Rng split_rng(rep_seed + 2);
    TrainValid tv = SplitTrainValid(
        pool,
        static_cast<double>(scale.n_train) /
            static_cast<double>(scale.n_train + scale.n_valid),
        split_rng);
    SweepDatasets data;
    data.train = std::move(tv.train);
    data.valid = std::move(tv.valid);
    // Test environments, shared by all methods within this replication.
    data.tests.reserve(rho_grid.size());
    for (size_t r = 0; r < rho_grid.size(); ++r) {
      data.tests.push_back(model.SampleEnvironment(
          scale.n_test, rho_grid[r], rep_seed + 10 + static_cast<uint64_t>(r)));
    }
    return data;
  };
  plan.make_config = [methods, scale](int64_t method_index,
                                      int64_t /*seed_index*/,
                                      uint64_t rep_seed) {
    return WithMethod(BaseConfig(scale, rep_seed + 100),
                      methods[static_cast<size_t>(method_index)]);
  };
  return plan;
}

SweepOutput RunSyntheticSweep(const SyntheticDims& dims,
                              const std::vector<MethodSpec>& methods,
                              const std::vector<double>& rho_grid,
                              const Scale& scale, uint64_t seed) {
  const RunPlan plan =
      SyntheticRunPlan(dims, methods, rho_grid, scale, seed);
  ExperimentSession session;
  SweepOptions options;
  options.progress = true;
  const SweepResult sweep = RunSweep(plan, &session, options);
  std::cerr << "[sweep] " << methods.size() * plan.seeds.size()
            << " runs in " << sweep.wall_seconds << "s ("
            << sweep.outer_workers_used << " outer workers)\n";

  SweepOutput out;
  out.methods = methods;
  out.rho_grid = rho_grid;
  out.cells.assign(methods.size(),
                   std::vector<std::vector<EvalResult>>(rho_grid.size()));
  for (size_t m = 0; m < methods.size(); ++m) {
    for (size_t s = 0; s < plan.seeds.size(); ++s) {
      const RunResult& run = sweep.runs[m][s];
      SBRL_CHECK(run.status.ok()) << run.status.ToString();
      for (size_t r = 0; r < rho_grid.size(); ++r) {
        out.cells[m][r].push_back(run.evals[r]);
      }
    }
  }
  return out;
}

namespace {
std::string CellOf(const std::vector<EvalResult>& runs,
                   double EvalResult::* field) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const EvalResult& r : runs) values.push_back(r.*field);
  const EnvAggregate agg = AggregateOverEnvironments(values);
  return FormatMeanStd(agg.mean, agg.std_dev);
}
}  // namespace

std::string CellPehe(const std::vector<EvalResult>& runs) {
  return CellOf(runs, &EvalResult::pehe);
}

std::string CellAte(const std::vector<EvalResult>& runs) {
  return CellOf(runs, &EvalResult::ate_error);
}

void PrintBanner(const std::string& experiment,
                 const std::string& paper_artifact, const Scale& scale) {
  std::cout << "=============================================================="
               "==\n"
            << experiment << "\nReproduces: " << paper_artifact
            << "\nScale: " << scale.name << " (n_train=" << scale.n_train
            << ", iterations=" << scale.iterations
            << ", replications=" << scale.replications
            << "; set SBRL_BENCH_SCALE=smoke|default|full)\n"
            << "Absolute numbers differ from the paper (simulated data, "
               "scaled training);\nthe comparisons across methods and "
               "environments are the reproduced artifact.\n"
            << "=============================================================="
               "==\n";
}

BenchJsonWriter::BenchJsonWriter(std::string bench_id, const Scale& scale)
    : bench_id_(std::move(bench_id)), scale_name_(scale.name) {}

void BenchJsonWriter::Record(const std::string& name, double wall_seconds) {
  entries_.push_back({name, wall_seconds});
}

std::string BenchJsonWriter::WriteOrDie() const {
  for (const Entry& e : entries_) {
    SBRL_CHECK(std::isfinite(e.wall_seconds) && e.wall_seconds >= 0.0)
        << "non-finite or negative timing for '" << e.name
        << "': " << e.wall_seconds;
  }
  const char* dir = std::getenv("SBRL_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && *dir != '\0')
                         ? std::string(dir) + "/BENCH_" + bench_id_ + ".json"
                         : "BENCH_" + bench_id_ + ".json";
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"" << bench_id_ << "\",\n"
     << "  \"scale\": \"" << scale_name_ << "\",\n"
     << "  \"threads\": " << ThreadPool::GlobalParallelism() << ",\n"
     << "  \"isa\": \"" << IsaName(ActiveIsa()) << "\",\n"
     << "  \"precision\": \""
     << PrecisionName(ResolvePrecision(Precision::kF64)) << "\",\n"
     << "  \"cpu\": \"" << CpuFeatureString() << "\",\n"
     << "  \"build\": \"" << BuildFlagsString() << "\",\n"
     << "  \"entries\": [\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    os << "    {\"name\": \"" << entries_[i].name << "\", \"wall_seconds\": "
       << FormatDouble(entries_[i].wall_seconds, 6) << "}"
       << (i + 1 < entries_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::ofstream out(path);
  SBRL_CHECK(out.good()) << "cannot open " << path << " for writing";
  out << os.str();
  out.flush();
  SBRL_CHECK(out.good()) << "failed writing " << path;
  return path;
}

}  // namespace bench
}  // namespace sbrl

// Reproduces Fig. 5 of the paper: nonlinear correlation (pairwise
// HSIC-RFF) among sampled dimensions of the balanced representation
// learned by CFR, CFR+SBRL, and CFR+SBRL-HAP on Syn_16_16_16_2. The
// paper reports average pairwise statistics 0.85 / 0.64 / 0.58 — the
// reproduced artifact is the strictly decreasing ordering.

#include <iostream>

#include "common/string_util.h"
#include "data/split.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "stats/correlation.h"

namespace sbrl {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_fig5_decorrelation",
              "Fig. 5 — pairwise HSIC-RFF of 25 sampled representation "
              "dims (CFR family)",
              scale);
  SyntheticDims dims;
  dims.m_i = dims.m_c = dims.m_a = 16;
  dims.m_v = 2;
  SyntheticModel model(dims, 74);
  CausalDataset pool = model.SampleEnvironment(
      scale.n_train + scale.n_valid, 2.5, 75);
  Rng split_rng(76);
  TrainValid tv = SplitTrainValid(
      pool,
      static_cast<double>(scale.n_train) /
          static_cast<double>(scale.n_train + scale.n_valid),
      split_rng);

  const std::vector<MethodSpec> methods = {
      {BackboneKind::kCfr, FrameworkKind::kVanilla},
      {BackboneKind::kCfr, FrameworkKind::kSbrl},
      {BackboneKind::kCfr, FrameworkKind::kSbrlHap},
  };
  // Three runs of one replication on the sweep engine; the HSIC
  // statistic is computed per run by the post_fit hook (no eval
  // populations, so `tests` stays empty).
  RunPlan plan;
  plan.methods = methods;
  plan.seeds = {77};
  plan.make_datasets = [&tv](int64_t /*seed_index*/, uint64_t /*seed*/) {
    SweepDatasets data;
    data.train = tv.train;
    data.valid = tv.valid;
    return data;
  };
  plan.make_config = [&methods, &scale](int64_t method_index,
                                        int64_t /*seed_index*/,
                                        uint64_t seed) {
    return WithMethod(BaseConfig(scale, seed),
                      methods[static_cast<size_t>(method_index)]);
  };
  plan.post_fit = [&tv](int64_t /*method_index*/, int64_t /*seed_index*/,
                        const HteEstimator& estimator, RunResult* out) {
    Matrix rep = estimator.RepresentationOf(tv.train.x);
    // Weighted statistic under the learned sample weights (uniform for
    // vanilla CFR), over (up to) 25 sampled dimensions as in the paper.
    Rng stat_rng(78);  // same dim sample + feature draws for all methods
    Matrix h = PairwiseHsicRffMatrix(rep, estimator.sample_weights(),
                                     /*num_features=*/5, stat_rng,
                                     /*max_dims=*/25);
    out->extra = {MeanOffDiagonal(h), h.MaxValue()};
  };

  ExperimentSession session;
  SweepOptions options;
  options.progress = true;
  const SweepResult sweep = RunSweep(plan, &session, options);

  TablePrinter table({"Method", "avg pairwise HSIC-RFF", "max pair",
                      "reduction vs CFR"});
  double cfr_level = 0.0;
  for (size_t m = 0; m < methods.size(); ++m) {
    const RunResult& run = sweep.runs[m][0];
    SBRL_CHECK(run.status.ok()) << run.status.ToString();
    const double avg = run.extra[0];
    if (methods[m].framework == FrameworkKind::kVanilla) cfr_level = avg;
    const double reduction =
        cfr_level > 0.0 ? (cfr_level - avg) / cfr_level * 100.0 : 0.0;
    table.AddRow({methods[m].name(), FormatDouble(avg, 4),
                  FormatDouble(run.extra[1], 4),
                  FormatDouble(reduction, 1) + "%"});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): CFR > CFR+SBRL > CFR+SBRL-HAP "
               "(0.85 -> 0.64 -> 0.58, a 37% total reduction).\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

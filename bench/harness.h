#ifndef SBRL_BENCH_HARNESS_H_
#define SBRL_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "eval/experiment.h"
#include "eval/sweep.h"

namespace sbrl {
namespace bench {

/// Experiment scale. The paper's hardware (48-core EPYC, TensorFlow,
/// 3000 iterations, up to 100 replications) is replaced by scaled-down
/// defaults that preserve orderings and trends; set the environment
/// variable SBRL_BENCH_SCALE to "smoke" (seconds, CI), "default", or
/// "full" (closer to paper scale, minutes per table).
struct Scale {
  std::string name = "default";
  int64_t n_train = 500;
  int64_t n_valid = 200;
  int64_t n_test = 400;
  int64_t iterations = 150;
  int replications = 2;
  int64_t rep_width = 32;
  int64_t head_width = 16;
};

/// Reads SBRL_BENCH_SCALE and returns the corresponding scale.
Scale GetScale();

/// Base estimator configuration shared by the synthetic benches,
/// following the structure of the paper's Table IV settings at the
/// bench scale.
EstimatorConfig BaseConfig(const Scale& scale, uint64_t seed);

/// The paper's test-environment grid (Sec. V-D).
std::vector<double> PaperRhoGrid();

/// Per-method, per-environment, per-replication results of a synthetic
/// OOD sweep. cells[m][r] holds one EvalResult per replication for
/// method m evaluated on environment rho_grid[r].
struct SweepOutput {
  std::vector<MethodSpec> methods;
  std::vector<double> rho_grid;
  std::vector<std::vector<std::vector<EvalResult>>> cells;
};

/// The synthetic OOD experiment as a declarative RunPlan for the sweep
/// engine: `scale.replications` seeds derived from `seed`, training on
/// the rho = +2.5 environment and evaluating across `rho_grid`. The
/// plan RunSyntheticSweep executes; exposed so the sweep bench can run
/// the identical plan at several outer-worker counts.
RunPlan SyntheticRunPlan(const SyntheticDims& dims,
                         const std::vector<MethodSpec>& methods,
                         const std::vector<double>& rho_grid,
                         const Scale& scale, uint64_t seed);

/// Trains every method on the rho = +2.5 environment of `dims` and
/// evaluates across the rho grid, repeated `scale.replications` times
/// with distinct seeds, scheduled on the in-process experiment engine
/// (eval/sweep.h). Prints progress to stderr.
SweepOutput RunSyntheticSweep(const SyntheticDims& dims,
                              const std::vector<MethodSpec>& methods,
                              const std::vector<double>& rho_grid,
                              const Scale& scale, uint64_t seed);

/// Formats "mean ±std" over the replications of one metric in a cell.
std::string CellPehe(const std::vector<EvalResult>& runs);
std::string CellAte(const std::vector<EvalResult>& runs);

/// Prints the standard bench banner (experiment id, scale, caveat).
void PrintBanner(const std::string& experiment,
                 const std::string& paper_artifact, const Scale& scale);

/// Machine-readable timing output: collects named wall-clock timings and
/// writes them as BENCH_<bench_id>.json so the perf trajectory of every
/// bench is tracked across PRs. The output directory defaults to the
/// working directory and can be overridden with SBRL_BENCH_JSON_DIR.
///
/// Alongside the timings, every file records the run metadata that
/// makes numbers comparable across hosts: the resolved kernel ISA
/// ("isa"), the ambient precision tier ("precision", the
/// SBRL_PRECISION resolution at write time), the detected CPU feature
/// set ("cpu"), the worker-lane count ("threads"), and the compiler +
/// flags of the build ("build"). A perf delta without a matching metadata delta is a real
/// regression; one with a different ISA or host is not comparable.
///
/// Every recorded timing is CHECKed finite and non-negative at write
/// time, which is what the ctest smoke perf guard relies on to fail on
/// broken timing paths.
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string bench_id, const Scale& scale);

  /// Adds one timing entry (seconds of wall clock).
  void Record(const std::string& name, double wall_seconds);

  /// Validates all entries and writes BENCH_<bench_id>.json, returning
  /// the path written. CHECK-fails on non-finite timings or I/O errors.
  std::string WriteOrDie() const;

  int64_t entry_count() const { return static_cast<int64_t>(entries_.size()); }

 private:
  struct Entry {
    std::string name;
    double wall_seconds;
  };

  std::string bench_id_;
  std::string scale_name_;
  std::vector<Entry> entries_;
};

}  // namespace bench
}  // namespace sbrl

#endif  // SBRL_BENCH_HARNESS_H_

// Reproduces Table II of the paper: ablation of the three sub-modules
// on Syn_16_16_16_2 — Balancing Regularizer (BR / L_B), Independence
// Regularizer (IR / L_I) and Hierarchical-Attention Paradigm
// (HAP / L_H = L_D(Z_r) + L_D(Z_o)) — reporting PEHE on the ID
// environment (rho = 2.5) and the farthest OOD environment (rho = -3).

#include <iostream>
#include <utility>

#include "common/string_util.h"
#include "data/split.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "stats/metrics.h"

namespace sbrl {
namespace bench {
namespace {

struct AblationRow {
  std::string label;
  bool br;
  bool ir;
  bool hap;
};

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_table2_ablation",
              "Table II — sub-module ablation (BR / IR / HAP) on "
              "Syn_16_16_16_2",
              scale);
  SyntheticDims dims;
  dims.m_i = dims.m_c = dims.m_a = 16;
  dims.m_v = 2;

  const std::vector<AblationRow> rows = {
      {"   IR + HAP (no BR)", false, true, true},
      {"BR +    HAP (no IR)", true, false, true},
      {"BR + IR     (no HAP)", true, true, false},
      {"BR + IR + HAP (full)", true, true, true},
  };

  // The ablation grid as a RunPlan: the method axis is the four
  // sub-module variants (make_config applies the toggles by index).
  RunPlan plan;
  for (const AblationRow& row : rows) {
    plan.methods.push_back(
        {BackboneKind::kCfr,
         row.hap ? FrameworkKind::kSbrlHap : FrameworkKind::kSbrl});
  }
  for (int rep = 0; rep < scale.replications; ++rep) {
    plan.seeds.push_back(81 + static_cast<uint64_t>(rep) * 1000003);
  }
  plan.make_datasets = [&dims, &scale](int64_t /*seed_index*/,
                                       uint64_t seed) {
    SyntheticModel model(dims, seed);
    CausalDataset pool = model.SampleEnvironment(
        scale.n_train + scale.n_valid, 2.5, seed + 1);
    Rng split_rng(seed + 2);
    TrainValid tv = SplitTrainValid(
        pool,
        static_cast<double>(scale.n_train) /
            static_cast<double>(scale.n_train + scale.n_valid),
        split_rng);
    SweepDatasets data;
    data.train = std::move(tv.train);
    data.valid = std::move(tv.valid);
    data.tests.push_back(model.SampleEnvironment(scale.n_test, 2.5, seed + 3));
    data.tests.push_back(
        model.SampleEnvironment(scale.n_test, -3.0, seed + 4));
    return data;
  };
  plan.make_config = [&rows, &scale](int64_t method_index,
                                     int64_t /*seed_index*/, uint64_t seed) {
    const AblationRow& row = rows[static_cast<size_t>(method_index)];
    EstimatorConfig config = BaseConfig(scale, seed + 5);
    config.backbone = BackboneKind::kCfr;
    // HAP toggles the framework; BR / IR toggle their loss weights.
    config.framework =
        row.hap ? FrameworkKind::kSbrlHap : FrameworkKind::kSbrl;
    if (!row.br) config.sbrl.alpha_br = 0.0;
    if (!row.ir) config.sbrl.gamma1 = 0.0;
    if (row.hap) {
      // Give the hierarchy tiers visible strength in the ablation.
      config.sbrl.gamma2 = 0.1;
      config.sbrl.gamma3 = 0.1;
    }
    return config;
  };

  ExperimentSession session;
  SweepOptions options;
  options.progress = true;
  const SweepResult sweep = RunSweep(plan, &session, options);

  TablePrinter table({"Sub-modules", "PEHE rho=2.5 (ID)",
                      "PEHE rho=-3 (OOD)"});
  for (size_t m = 0; m < rows.size(); ++m) {
    std::vector<double> pehe_id, pehe_ood;
    for (size_t s = 0; s < plan.seeds.size(); ++s) {
      const RunResult& run = sweep.runs[m][s];
      SBRL_CHECK(run.status.ok()) << run.status.ToString();
      pehe_id.push_back(run.evals[0].pehe);
      pehe_ood.push_back(run.evals[1].pehe);
    }
    const EnvAggregate agg_id = AggregateOverEnvironments(pehe_id);
    const EnvAggregate agg_ood = AggregateOverEnvironments(pehe_ood);
    table.AddRow({rows[m].label, FormatMeanStd(agg_id.mean, agg_id.std_dev),
                  FormatMeanStd(agg_ood.mean, agg_ood.std_dev)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): removing any sub-module hurts the "
               "OOD column;\ndropping HAP hurts rho=-3 the most (0.662 vs "
               "0.591 full), while the full model\ntrades a little ID "
               "accuracy for OOD stability.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

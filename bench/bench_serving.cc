// Benchmarks the CATE serving stack end to end: trains CFR + SBRL-HAP
// at the bench scale, exports it (with a fitted OOD detector and the
// optional f32 weights section) through the on-disk model format,
// reloads it as a ServingModel, CHECKs that micro-batched serving is
// bitwise equal to direct scoring, and then drives the MicroBatcher
// with concurrent client threads, recording per-request p50/p99
// latency and sustained throughput at each client count into
// BENCH_serving.json (directory overridable via SBRL_BENCH_JSON_DIR).
//
// Precision lanes: the same file is additionally loaded under the f32
// tier (SBRL_PRECISION=f32) and both tiers are timed on DIRECT batch
// scoring — the micro-batched p50 includes the batcher's linger
// window, so the tier comparison must not go through it. A smoke
// guard CHECKs that the f32 direct p50 beats f64.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/estimator.h"
#include "core/ood_detector.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "serve/micro_batcher.h"
#include "serve/model_format.h"
#include "serve/serving_model.h"

namespace sbrl {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Sorted-sample quantile at `q` in [0, 1] (nearest-rank on the sorted
/// latencies, matching the repo's index = floor(q * (n - 1)) idiom).
double Quantile(const std::vector<double>& sorted, double q) {
  SBRL_CHECK(!sorted.empty());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

// Keeps the timed scoring loops from being optimized away.
volatile double g_sink = 0.0;

/// Pins SBRL_PRECISION for the lifetime of the object, restoring the
/// previous value (or unset state) on destruction — the benches force
/// each tier explicitly so lanes stay labeled correctly even when the
/// ambient environment carries its own override.
class ScopedPrecisionEnv {
 public:
  explicit ScopedPrecisionEnv(const char* value) {
    const char* old = std::getenv("SBRL_PRECISION");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("SBRL_PRECISION", value, 1);
  }
  ~ScopedPrecisionEnv() {
    if (had_old_) {
      ::setenv("SBRL_PRECISION", old_.c_str(), 1);
    } else {
      ::unsetenv("SBRL_PRECISION");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

/// Times `reps` direct ScoreOutcomes calls over `queries` and returns
/// the per-call latencies (one warm-up call runs first, untimed).
std::vector<double> TimeDirectScoring(const serve::ServingModel& model,
                                      const Matrix& queries, int reps) {
  g_sink = g_sink + model.ScoreOutcomes(queries)[0];
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    const Matrix out = model.ScoreOutcomes(queries);
    latencies.push_back(SecondsSince(start));
    g_sink = g_sink + out[0];
  }
  return latencies;
}

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_serving",
              "CATE serving engine — export/reload parity + micro-batched "
              "latency and throughput under concurrent clients",
              scale);

  // Train the flagship method on the paper's training environment and
  // fit the OOD detector on the same covariates the model saw.
  SyntheticDims dims;
  SyntheticModel synthetic(dims, /*seed=*/81);
  const CausalDataset train =
      synthetic.SampleEnvironment(scale.n_train, 2.5, 82);
  const CausalDataset valid =
      synthetic.SampleEnvironment(scale.n_valid, 2.5, 83);
  MethodSpec spec{BackboneKind::kCfr, FrameworkKind::kSbrlHap};
  std::cerr << "[bench_serving] training " << spec.name() << "...\n";
  StatusOr<HteEstimator> estimator =
      HteEstimator::Create(WithMethod(BaseConfig(scale, 84), spec));
  SBRL_CHECK(estimator.ok()) << estimator.status().ToString();
  SBRL_CHECK(estimator->Fit(train, &valid).ok());
  StatusOr<OodLevelDetector> detector = OodLevelDetector::Fit(train.x);
  SBRL_CHECK(detector.ok()) << detector.status().ToString();

  // Export through the real on-disk format (with the optional f32
  // weights section) and serve from the reload — once per tier, each
  // load pinned to its precision explicitly.
  const std::string model_path = "BENCH_serving_model.tmp";
  SBRL_CHECK(serve::ExportServingModel(*estimator, &*detector, model_path,
                                       /*include_f32=*/true)
                 .ok());
  StatusOr<serve::ServingModel> model = [&] {
    ScopedPrecisionEnv pin("f64");
    return serve::ServingModel::Load(model_path);
  }();
  SBRL_CHECK(model.ok()) << model.status().ToString();
  SBRL_CHECK(model->precision() == Precision::kF64);
  StatusOr<serve::ServingModel> model32 = [&] {
    ScopedPrecisionEnv pin("f32");
    return serve::ServingModel::Load(model_path);
  }();
  SBRL_CHECK(model32.ok()) << model32.status().ToString();
  SBRL_CHECK(model32->precision() == Precision::kF32);
  std::remove(model_path.c_str());

  // Request stream: the far-OOD environment, the serving-time
  // population a stable estimator exists for.
  const Matrix queries = synthetic.SampleEnvironment(scale.n_test, -2.5, 85).x;
  const int64_t dim = queries.cols();

  // Parity gate: the served scores must be bitwise equal to the
  // estimator's predictions before any timing is worth recording.
  {
    const Matrix predicted = estimator->PredictPotentialOutcomes(queries);
    const Matrix served = model->ScoreOutcomes(queries);
    for (int64_t i = 0; i < predicted.size(); ++i) {
      SBRL_CHECK(served[i] == predicted[i])
          << "serving diverged from the estimator at element " << i;
    }
  }
  const std::vector<serve::ServingModel::RowScore> reference =
      model->ScoreRows(queries);

  const int64_t requests_per_client =
      scale.name == "smoke" ? 200 : (scale.name == "full" ? 4000 : 1000);
  BenchJsonWriter json("serving", scale);

  // ---- Precision lanes: direct batch scoring, f64 vs f32 tier. ----
  {
    // Score parity first: the f32 tier must agree with the reference
    // scorer within the serving tolerance before its timing counts
    // (the per-method budgets live in tests/precision_test.cc; this is
    // the flagship method's sanity bound on probabilities).
    const Matrix scored64 = model->ScoreOutcomes(queries);
    const Matrix scored32 = model32->ScoreOutcomes(queries);
    double max_diff = 0.0;
    for (int64_t i = 0; i < scored64.size(); ++i) {
      max_diff = std::max(max_diff, std::abs(scored64[i] - scored32[i]));
    }
    SBRL_CHECK_LT(max_diff, 5e-3)
        << "f32 serving diverged from f64 beyond the sanity bound";

    // Timing batch: the tier targets bulk scoring, where the matmuls
    // dominate — a tiny smoke batch is overhead-bound and says nothing
    // about either tier, so the lane tiles the query set up to a fixed
    // batch size before timing.
    const int64_t lane_rows = std::max<int64_t>(queries.rows(), 4096);
    Matrix lane_queries(lane_rows, dim);
    for (int64_t i = 0; i < lane_rows; ++i) {
      const int64_t q = i % queries.rows();
      for (int64_t j = 0; j < dim; ++j) lane_queries(i, j) = queries(q, j);
    }

    const int reps = scale.name == "smoke" ? 10 : 40;
    std::vector<double> lat64 = TimeDirectScoring(*model, lane_queries, reps);
    std::vector<double> lat32 =
        TimeDirectScoring(*model32, lane_queries, reps);
    std::sort(lat64.begin(), lat64.end());
    std::sort(lat32.begin(), lat32.end());
    const double p50_64 = Quantile(lat64, 0.50);
    const double p50_32 = Quantile(lat32, 0.50);
    const double rows = static_cast<double>(lane_rows);
    const double rps64 = rows / p50_64;
    const double rps32 = rows / p50_32;
    json.Record("serving/direct_f64/p50", p50_64);
    json.Record("serving/direct_f32/p50", p50_32);
    json.Record("serving/direct_f64/rows_per_sec", rps64);
    json.Record("serving/direct_f32/rows_per_sec", rps32);
    json.Record("serving/direct_f32_speedup", rps32 / rps64);
    json.Record("serving/f32_max_abs_diff", max_diff);
    std::cout << "direct scoring (" << lane_rows << " rows/batch): f64 "
              << p50_64 * 1e6 << " us p50, f32 " << p50_32 * 1e6
              << " us p50 (" << FormatDouble(rps32 / rps64, 2)
              << "x rows/sec, max |diff| " << max_diff << ")\n";
    // The tier's smoke guard: f32 direct scoring must beat f64 at
    // every scale, or the cheap tier is not earning its keep.
    SBRL_CHECK_LT(p50_32, p50_64)
        << "f32 serving p50 did not beat f64 (" << p50_32 << " vs "
        << p50_64 << " s)";
  }
  TablePrinter table({"clients", "requests", "p50 us", "p99 us", "rows/sec",
                      "batches"});
  for (const int64_t clients : {1, 2, 4}) {
    serve::MicroBatcher::Options options;
    options.ood = true;
    serve::MicroBatcher batcher(&*model, options);

    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(clients));
    std::vector<std::thread> workers;
    const auto start = Clock::now();
    for (int64_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        std::vector<double>& mine = latencies[static_cast<size_t>(c)];
        mine.reserve(static_cast<size_t>(requests_per_client));
        std::vector<double> row(static_cast<size_t>(dim));
        for (int64_t r = 0; r < requests_per_client; ++r) {
          // Clients cycle through the query set at offset strides.
          const int64_t q = (c * 131 + r) % queries.rows();
          for (int64_t d = 0; d < dim; ++d) row[static_cast<size_t>(d)] =
              queries(q, d);
          const auto sent = Clock::now();
          const serve::ServingModel::RowScore score = batcher.ScoreRow(row);
          mine.push_back(SecondsSince(sent));
          // Coalescing must never change a bit of the answer.
          const serve::ServingModel::RowScore& want =
              reference[static_cast<size_t>(q)];
          SBRL_CHECK(score.y0 == want.y0 && score.y1 == want.y1)
              << "micro-batched result diverged at query " << q;
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double wall = SecondsSince(start);
    batcher.Shutdown();

    std::vector<double> all;
    for (const std::vector<double>& mine : latencies) {
      all.insert(all.end(), mine.begin(), mine.end());
    }
    std::sort(all.begin(), all.end());
    const double p50 = Quantile(all, 0.50);
    const double p99 = Quantile(all, 0.99);
    const double total_rows =
        static_cast<double>(clients * requests_per_client);
    const double throughput = total_rows / wall;

    const std::string prefix = "serving/clients=" + std::to_string(clients);
    json.Record(prefix + "/p50", p50);
    json.Record(prefix + "/p99", p99);
    json.Record(prefix + "/wall", wall);
    json.Record(prefix + "/rows_per_sec", throughput);
    table.AddRow({std::to_string(clients),
                  std::to_string(clients * requests_per_client),
                  FormatDouble(p50 * 1e6, 1), FormatDouble(p99 * 1e6, 1),
                  FormatDouble(throughput, 0),
                  std::to_string(batcher.batches_dispatched())});
  }
  table.Print(std::cout);
  std::cout << "\nEvery micro-batched response was bitwise identical to "
               "direct scoring (verified per request).\n";
  std::cerr << "wrote " << json.WriteOrDie() << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

// Benchmarks the CATE serving stack end to end: trains CFR + SBRL-HAP
// at the bench scale, exports it (with a fitted OOD detector) through
// the on-disk model format, reloads it as a ServingModel, CHECKs that
// micro-batched serving is bitwise equal to direct scoring, and then
// drives the MicroBatcher with concurrent client threads, recording
// per-request p50/p99 latency and sustained throughput at each client
// count into BENCH_serving.json (directory overridable via
// SBRL_BENCH_JSON_DIR).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/estimator.h"
#include "core/ood_detector.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "serve/micro_batcher.h"
#include "serve/model_format.h"
#include "serve/serving_model.h"

namespace sbrl {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Sorted-sample quantile at `q` in [0, 1] (nearest-rank on the sorted
/// latencies, matching the repo's index = floor(q * (n - 1)) idiom).
double Quantile(const std::vector<double>& sorted, double q) {
  SBRL_CHECK(!sorted.empty());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_serving",
              "CATE serving engine — export/reload parity + micro-batched "
              "latency and throughput under concurrent clients",
              scale);

  // Train the flagship method on the paper's training environment and
  // fit the OOD detector on the same covariates the model saw.
  SyntheticDims dims;
  SyntheticModel synthetic(dims, /*seed=*/81);
  const CausalDataset train =
      synthetic.SampleEnvironment(scale.n_train, 2.5, 82);
  const CausalDataset valid =
      synthetic.SampleEnvironment(scale.n_valid, 2.5, 83);
  MethodSpec spec{BackboneKind::kCfr, FrameworkKind::kSbrlHap};
  std::cerr << "[bench_serving] training " << spec.name() << "...\n";
  StatusOr<HteEstimator> estimator =
      HteEstimator::Create(WithMethod(BaseConfig(scale, 84), spec));
  SBRL_CHECK(estimator.ok()) << estimator.status().ToString();
  SBRL_CHECK(estimator->Fit(train, &valid).ok());
  StatusOr<OodLevelDetector> detector = OodLevelDetector::Fit(train.x);
  SBRL_CHECK(detector.ok()) << detector.status().ToString();

  // Export through the real on-disk format and serve from the reload.
  const std::string model_path = "BENCH_serving_model.tmp";
  SBRL_CHECK(
      serve::ExportServingModel(*estimator, &*detector, model_path).ok());
  StatusOr<serve::ServingModel> model = serve::ServingModel::Load(model_path);
  SBRL_CHECK(model.ok()) << model.status().ToString();
  std::remove(model_path.c_str());

  // Request stream: the far-OOD environment, the serving-time
  // population a stable estimator exists for.
  const Matrix queries = synthetic.SampleEnvironment(scale.n_test, -2.5, 85).x;
  const int64_t dim = queries.cols();

  // Parity gate: the served scores must be bitwise equal to the
  // estimator's predictions before any timing is worth recording.
  {
    const Matrix predicted = estimator->PredictPotentialOutcomes(queries);
    const Matrix served = model->ScoreOutcomes(queries);
    for (int64_t i = 0; i < predicted.size(); ++i) {
      SBRL_CHECK(served[i] == predicted[i])
          << "serving diverged from the estimator at element " << i;
    }
  }
  const std::vector<serve::ServingModel::RowScore> reference =
      model->ScoreRows(queries);

  const int64_t requests_per_client =
      scale.name == "smoke" ? 200 : (scale.name == "full" ? 4000 : 1000);
  BenchJsonWriter json("serving", scale);
  TablePrinter table({"clients", "requests", "p50 us", "p99 us", "rows/sec",
                      "batches"});
  for (const int64_t clients : {1, 2, 4}) {
    serve::MicroBatcher::Options options;
    options.ood = true;
    serve::MicroBatcher batcher(&*model, options);

    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(clients));
    std::vector<std::thread> workers;
    const auto start = Clock::now();
    for (int64_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        std::vector<double>& mine = latencies[static_cast<size_t>(c)];
        mine.reserve(static_cast<size_t>(requests_per_client));
        std::vector<double> row(static_cast<size_t>(dim));
        for (int64_t r = 0; r < requests_per_client; ++r) {
          // Clients cycle through the query set at offset strides.
          const int64_t q = (c * 131 + r) % queries.rows();
          for (int64_t d = 0; d < dim; ++d) row[static_cast<size_t>(d)] =
              queries(q, d);
          const auto sent = Clock::now();
          const serve::ServingModel::RowScore score = batcher.ScoreRow(row);
          mine.push_back(SecondsSince(sent));
          // Coalescing must never change a bit of the answer.
          const serve::ServingModel::RowScore& want =
              reference[static_cast<size_t>(q)];
          SBRL_CHECK(score.y0 == want.y0 && score.y1 == want.y1)
              << "micro-batched result diverged at query " << q;
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double wall = SecondsSince(start);
    batcher.Shutdown();

    std::vector<double> all;
    for (const std::vector<double>& mine : latencies) {
      all.insert(all.end(), mine.begin(), mine.end());
    }
    std::sort(all.begin(), all.end());
    const double p50 = Quantile(all, 0.50);
    const double p99 = Quantile(all, 0.99);
    const double total_rows =
        static_cast<double>(clients * requests_per_client);
    const double throughput = total_rows / wall;

    const std::string prefix = "serving/clients=" + std::to_string(clients);
    json.Record(prefix + "/p50", p50);
    json.Record(prefix + "/p99", p99);
    json.Record(prefix + "/wall", wall);
    json.Record(prefix + "/rows_per_sec", throughput);
    table.AddRow({std::to_string(clients),
                  std::to_string(clients * requests_per_client),
                  FormatDouble(p50 * 1e6, 1), FormatDouble(p99 * 1e6, 1),
                  FormatDouble(throughput, 0),
                  std::to_string(batcher.batches_dispatched())});
  }
  table.Print(std::cout);
  std::cout << "\nEvery micro-batched response was bitwise identical to "
               "direct scoring (verified per request).\n";
  std::cerr << "wrote " << json.WriteOrDie() << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

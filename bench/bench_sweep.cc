// Benchmarks the in-process experiment engine (eval/sweep.h): the Table
// I plan (nine methods x replications on Syn_8_8_8_2) executed at every
// outer-worker count from 1 to max(hardware, 2), verifying BITWISE
// identical results at every count against the sequential W=1 reference
// and recording per-count wall clock and runs/sec into BENCH_sweep.json
// (directory overridable via SBRL_BENCH_JSON_DIR). On a single-core
// host the W>1 rows measure the scheduler's overhead against the same
// 1-core baseline; on multi-core hosts they are the engine's speedup
// curve.

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "eval/table_printer.h"
#include "harness.h"

namespace sbrl {
namespace bench {
namespace {

// Every float a run produces that must be schedule-invariant: the
// metric grid (all tests, all metrics) plus post_fit extras. Timings
// are wall clock and excluded by design.
std::vector<double> ResultFingerprint(const SweepResult& sweep) {
  std::vector<double> values;
  for (const auto& row : sweep.runs) {
    for (const RunResult& run : row) {
      SBRL_CHECK(run.status.ok()) << run.status.ToString();
      for (const EvalResult& e : run.evals) {
        values.push_back(e.pehe);
        values.push_back(e.ate_error);
        values.push_back(e.f1_factual);
        values.push_back(e.f1_counterfactual);
      }
      for (double v : run.extra) values.push_back(v);
    }
  }
  return values;
}

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_sweep",
              "Experiment engine — Table I plan at 1..N outer workers "
              "(determinism + scaling)",
              scale);
  SyntheticDims dims;  // 8 / 8 / 8 / 2
  const RunPlan plan = SyntheticRunPlan(dims, AllNineMethods(),
                                        PaperRhoGrid(), scale, /*seed=*/71);
  const int64_t total_runs =
      static_cast<int64_t>(plan.methods.size() * plan.seeds.size());
  const int max_workers = std::max(
      2, static_cast<int>(std::thread::hardware_concurrency()));

  BenchJsonWriter json("sweep", scale);
  TablePrinter table(
      {"outer workers", "wall seconds", "runs/sec", "vs W=1"});
  std::vector<double> reference;
  double reference_wall = 0.0;
  for (int workers = 1; workers <= max_workers; ++workers) {
    // A fresh session per worker count: cross-count cache reuse would
    // only blur the scaling numbers (within a count it is the point).
    ExperimentSession session;
    SweepOptions options;
    options.outer_workers = workers;
    std::cerr << "[bench_sweep] " << total_runs << " runs at " << workers
              << " outer worker(s)...\n";
    const SweepResult sweep = RunSweep(plan, &session, options);
    SBRL_CHECK_EQ(sweep.outer_workers_used,
                  std::min<int64_t>(workers, total_runs));

    const std::vector<double> fingerprint = ResultFingerprint(sweep);
    if (workers == 1) {
      reference = fingerprint;
      reference_wall = sweep.wall_seconds;
    } else {
      // The engine's determinism contract: bitwise identical results at
      // every outer-worker count.
      SBRL_CHECK(fingerprint == reference)
          << "sweep results diverged from the W=1 reference at "
          << workers << " workers";
    }

    const double runs_per_sec =
        static_cast<double>(total_runs) / sweep.wall_seconds;
    json.Record("sweep/workers=" + std::to_string(workers),
                sweep.wall_seconds);
    table.AddRow({std::to_string(workers),
                  FormatDouble(sweep.wall_seconds, 3),
                  FormatDouble(runs_per_sec, 3),
                  FormatDouble(reference_wall / sweep.wall_seconds, 2) +
                      "x"});
  }
  table.Print(std::cout);
  std::cout << "\nEvery worker count produced bitwise identical results "
               "(verified against W=1).\n";
  std::cerr << "wrote " << json.WriteOrDie() << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

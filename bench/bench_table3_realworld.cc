// Reproduces Table III of the paper: PEHE and eps-ATE on the
// training / validation / testing splits of the Twins and IHDP
// benchmarks for all nine methods. The test split is the biased OOD
// environment (Twins: 20% sampled with rho = -2.5 over the unstable
// block; IHDP: 10% sampled over the continuous covariates).

#include <iostream>
#include <utility>

#include "common/string_util.h"
#include "data/ihdp.h"
#include "data/twins.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "stats/metrics.h"

namespace sbrl {
namespace bench {
namespace {

struct SplitResults {
  std::vector<EvalResult> train, valid, test;
};

void RunDataset(const std::string& dataset_name,
                const std::function<RealWorldSplits(uint64_t)>& make_splits,
                const Scale& scale, uint64_t seed) {
  std::cout << "\n--- " << dataset_name << " ---\n";
  const auto methods = AllNineMethods();
  std::vector<SplitResults> per_method(methods.size());

  // Methods x replications on the sweep engine; each run evaluates the
  // train / valid / test splits of its replication in that order.
  RunPlan plan;
  plan.methods = methods;
  for (int rep = 0; rep < scale.replications; ++rep) {
    plan.seeds.push_back(seed + static_cast<uint64_t>(rep) * 1000003);
  }
  plan.make_datasets = [&make_splits](int64_t /*seed_index*/,
                                      uint64_t rep_seed) {
    RealWorldSplits splits = make_splits(rep_seed);
    SweepDatasets data;
    data.train = splits.train;
    data.valid = splits.valid;
    data.tests = {std::move(splits.train), std::move(splits.valid),
                  std::move(splits.test)};
    return data;
  };
  plan.make_config = [&methods, &scale](int64_t method_index,
                                        int64_t /*seed_index*/,
                                        uint64_t rep_seed) {
    return WithMethod(BaseConfig(scale, rep_seed + 7),
                      methods[static_cast<size_t>(method_index)]);
  };

  ExperimentSession session;
  SweepOptions options;
  options.progress = true;
  const SweepResult sweep = RunSweep(plan, &session, options);
  for (size_t m = 0; m < methods.size(); ++m) {
    for (size_t s = 0; s < plan.seeds.size(); ++s) {
      const RunResult& run = sweep.runs[m][s];
      SBRL_CHECK(run.status.ok()) << run.status.ToString();
      per_method[m].train.push_back(run.evals[0]);
      per_method[m].valid.push_back(run.evals[1]);
      per_method[m].test.push_back(run.evals[2]);
    }
  }

  TablePrinter table({"Method", "PEHE train", "PEHE valid", "PEHE test",
                      "eATE train", "eATE valid", "eATE test"});
  for (size_t m = 0; m < methods.size(); ++m) {
    table.AddRow({methods[m].name(), CellPehe(per_method[m].train),
                  CellPehe(per_method[m].valid),
                  CellPehe(per_method[m].test),
                  CellAte(per_method[m].train),
                  CellAte(per_method[m].valid),
                  CellAte(per_method[m].test)});
    if (m % 3 == 2 && m + 1 < methods.size()) table.AddSeparator();
  }
  table.Print(std::cout);
}

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_table3_realworld",
              "Table III — treatment effect estimation on Twins and IHDP "
              "(simulated per DESIGN.md)",
              scale);

  TwinsConfig twins_config;
  // Keep the bench tractable below full scale; "full" uses 5271.
  if (scale.name == "smoke") {
    twins_config.n = 800;
  } else if (scale.name == "default") {
    twins_config.n = 2000;
  }
  RunDataset("Twins", [&twins_config](uint64_t s) {
    return MakeTwinsReplication(twins_config, s);
  }, scale, 91);

  IhdpConfig ihdp_config;  // 747 units always (the real size is small)
  RunDataset("IHDP", [&ihdp_config](uint64_t s) {
    return MakeIhdpReplication(ihdp_config, s);
  }, scale, 92);

  std::cout << "\nExpected shape (paper): +SBRL-HAP clearly improves the "
               "OOD test split\n(Twins: PEHE 0.630->0.547 for TARNet, "
               "0.613->0.547 for CFR, 0.585->0.552 for DeR-CFR)\nwhile "
               "staying comparable on the in-distribution train/valid "
               "splits.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

// Reproduces Fig. 6 of the paper: sensitivity of CFR+SBRL-HAP to the
// hierarchical-attention hyper-parameters gamma1 (last layer), gamma2
// (balanced representation) and gamma3 (other layers), swept one at a
// time over {0, 0.01, 0.1, 1, 10, 100} on Syn_16_16_16_2, reporting
// (a) PEHE on the ID environment rho = 2.5 and (b) factual F1 on the
// farthest OOD environment rho = -3.

#include <iostream>

#include "common/string_util.h"
#include "data/split.h"
#include "eval/table_printer.h"
#include "harness.h"

namespace sbrl {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_fig6_hyperparam",
              "Fig. 6(a,b) — gamma1/gamma2/gamma3 sensitivity of "
              "CFR+SBRL-HAP on Syn_16_16_16_2",
              scale);
  SyntheticDims dims;
  dims.m_i = dims.m_c = dims.m_a = 16;
  dims.m_v = 2;
  SyntheticModel model(dims, 101);
  CausalDataset pool = model.SampleEnvironment(
      scale.n_train + scale.n_valid, 2.5, 102);
  Rng split_rng(103);
  TrainValid tv = SplitTrainValid(
      pool,
      static_cast<double>(scale.n_train) /
          static_cast<double>(scale.n_train + scale.n_valid),
      split_rng);
  CausalDataset test_id = model.SampleEnvironment(scale.n_test, 2.5, 104);
  CausalDataset test_ood = model.SampleEnvironment(scale.n_test, -3.0, 105);

  const std::vector<double> sweep_values = {0.0, 0.01, 0.1, 1.0, 10.0,
                                            100.0};
  for (int which = 1; which <= 3; ++which) {
    std::cout << "\nSweep of gamma" << which
              << " (others at bench defaults)\n";
    TablePrinter table({"gamma" + std::to_string(which),
                        "PEHE rho=2.5 (ID)", "F1 factual rho=-3 (OOD)"});
    for (double value : sweep_values) {
      EstimatorConfig config = BaseConfig(scale, 106);
      config.backbone = BackboneKind::kCfr;
      config.framework = FrameworkKind::kSbrlHap;
      if (which == 1) config.sbrl.gamma1 = value;
      if (which == 2) config.sbrl.gamma2 = value;
      if (which == 3) config.sbrl.gamma3 = value;
      std::cerr << "[fig6] gamma" << which << "=" << value << "...\n";
      auto results = TrainAndEvaluate(config, tv.train, &tv.valid,
                                      {&test_id, &test_ood});
      SBRL_CHECK(results.ok()) << results.status().ToString();
      table.AddRow({FormatDouble(value, 2),
                    FormatDouble((*results)[0].pehe, 3),
                    FormatDouble((*results)[1].f1_factual, 3)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): strong gamma1 (last layer) helps; "
               "very large gamma2 hurts\n(prefer attention on Z_p over "
               "Z_r); gamma3 is the most sensitive knob because it "
               "touches\nevery hidden layer.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

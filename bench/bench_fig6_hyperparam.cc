// Reproduces Fig. 6 of the paper: sensitivity of CFR+SBRL-HAP to the
// hierarchical-attention hyper-parameters gamma1 (last layer), gamma2
// (balanced representation) and gamma3 (other layers), swept one at a
// time over {0, 0.01, 0.1, 1, 10, 100} on Syn_16_16_16_2, reporting
// (a) PEHE on the ID environment rho = 2.5 and (b) factual F1 on the
// farthest OOD environment rho = -3.

#include <iostream>

#include "common/string_util.h"
#include "data/split.h"
#include "eval/table_printer.h"
#include "harness.h"

namespace sbrl {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_fig6_hyperparam",
              "Fig. 6(a,b) — gamma1/gamma2/gamma3 sensitivity of "
              "CFR+SBRL-HAP on Syn_16_16_16_2",
              scale);
  SyntheticDims dims;
  dims.m_i = dims.m_c = dims.m_a = 16;
  dims.m_v = 2;
  SyntheticModel model(dims, 101);
  CausalDataset pool = model.SampleEnvironment(
      scale.n_train + scale.n_valid, 2.5, 102);
  Rng split_rng(103);
  TrainValid tv = SplitTrainValid(
      pool,
      static_cast<double>(scale.n_train) /
          static_cast<double>(scale.n_train + scale.n_valid),
      split_rng);
  CausalDataset test_id = model.SampleEnvironment(scale.n_test, 2.5, 104);
  CausalDataset test_ood = model.SampleEnvironment(scale.n_test, -3.0, 105);

  const std::vector<double> sweep_values = {0.0, 0.01, 0.1, 1.0, 10.0,
                                            100.0};
  // All 18 variants (3 gammas x 6 values) as the method axis of one
  // engine sweep over the shared single replication; variant v sweeps
  // gamma (v / 6 + 1) to sweep_values[v % 6].
  RunPlan plan;
  plan.methods.assign(
      3 * sweep_values.size(),
      MethodSpec{BackboneKind::kCfr, FrameworkKind::kSbrlHap});
  plan.seeds = {106};
  plan.make_datasets = [&tv, &test_id, &test_ood](int64_t /*seed_index*/,
                                                  uint64_t /*seed*/) {
    SweepDatasets data;
    data.train = tv.train;
    data.valid = tv.valid;
    data.tests = {test_id, test_ood};
    return data;
  };
  plan.make_config = [&sweep_values, &scale](int64_t method_index,
                                             int64_t /*seed_index*/,
                                             uint64_t seed) {
    const int which =
        static_cast<int>(method_index / static_cast<int64_t>(
                                            sweep_values.size())) + 1;
    const double value = sweep_values[static_cast<size_t>(
        method_index % static_cast<int64_t>(sweep_values.size()))];
    EstimatorConfig config = BaseConfig(scale, seed);
    config.backbone = BackboneKind::kCfr;
    config.framework = FrameworkKind::kSbrlHap;
    if (which == 1) config.sbrl.gamma1 = value;
    if (which == 2) config.sbrl.gamma2 = value;
    if (which == 3) config.sbrl.gamma3 = value;
    return config;
  };

  ExperimentSession session;
  SweepOptions options;
  options.progress = true;
  const SweepResult sweep = RunSweep(plan, &session, options);

  for (int which = 1; which <= 3; ++which) {
    std::cout << "\nSweep of gamma" << which
              << " (others at bench defaults)\n";
    TablePrinter table({"gamma" + std::to_string(which),
                        "PEHE rho=2.5 (ID)", "F1 factual rho=-3 (OOD)"});
    for (size_t v = 0; v < sweep_values.size(); ++v) {
      const size_t m =
          static_cast<size_t>(which - 1) * sweep_values.size() + v;
      const RunResult& run = sweep.runs[m][0];
      SBRL_CHECK(run.status.ok()) << run.status.ToString();
      table.AddRow({FormatDouble(sweep_values[v], 2),
                    FormatDouble(run.evals[0].pehe, 3),
                    FormatDouble(run.evals[1].f1_factual, 3)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): strong gamma1 (last layer) helps; "
               "very large gamma2 hurts\n(prefer attention on Z_p over "
               "Z_r); gamma3 is the most sensitive knob because it "
               "touches\nevery hidden layer.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

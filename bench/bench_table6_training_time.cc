// Reproduces Table VI of the paper: single-execution training time of
// the nine methods on the IHDP dataset. Uses google-benchmark for the
// measurement loop. The reproduced artifact is the cost ordering:
// vanilla < +SBRL < +SBRL-HAP, with roughly 2x / 3x multipliers for
// TARNet and CFR and a smaller relative overhead for DeR-CFR.
//
// Each method's wall-clock fit time is also recorded through
// BenchJsonWriter and written to BENCH_table6.json (directory
// overridable via SBRL_BENCH_JSON_DIR) so the perf trajectory is
// machine-readable across PRs. The writer CHECKs every timing is
// finite, which the ctest smoke perf guard relies on.
//
// Every method records a "<name>/net_step" entry with the seconds
// spent inside the network step (the phase the fused network-step
// engine targets); for every weight-learning method, a
// "<name>/weight_step" entry records the seconds spent inside the
// sample-weight phase, and a "<name>/rff_cos" entry the seconds
// inside the RFF cosine sweeps, so the JSON captures the phase shares
// of training across PRs. SBRL_HSIC_MODE=exact reruns the suite on
// the per-pair reference path, SBRL_COS_MODE=exact on the scalar
// std::cos path, and SBRL_NET_STEP_MODE=reference on the unfused
// per-primitive network step, at otherwise identical scale/flags —
// the before/after comparisons documented in README "Weight-loss
// batching" / "Vectorized RFF cosine" / "Fused network step".

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/timer.h"
#include "core/checkpoint.h"
#include "data/ihdp.h"
#include "eval/session.h"
#include "harness.h"

namespace sbrl {
namespace bench {
namespace {

BenchJsonWriter* g_json = nullptr;

// One session for the whole suite: every measured fit trains on a
// session-leased resource set, so later methods reuse the warm tape
// pools and shared projection cache the way engine sweeps do (results
// are bitwise identical to standalone fits; the timings are what the
// engine actually delivers).
ExperimentSession& Session() {
  static ExperimentSession* session = new ExperimentSession();
  return *session;
}

BatchedHsicMode HsicModeFromEnv() {
  const char* env = std::getenv("SBRL_HSIC_MODE");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "batched") == 0) {
    return BatchedHsicMode::kBatched;
  }
  SBRL_CHECK(std::strcmp(env, "exact") == 0)
      << "SBRL_HSIC_MODE must be 'exact' or 'batched', got '" << env << "'";
  return BatchedHsicMode::kExact;
}

NetStepMode NetStepModeFromEnv() {
  const char* env = std::getenv("SBRL_NET_STEP_MODE");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "fused") == 0) {
    return NetStepMode::kFused;
  }
  SBRL_CHECK(std::strcmp(env, "reference") == 0)
      << "SBRL_NET_STEP_MODE must be 'fused' or 'reference', got '" << env
      << "'";
  return NetStepMode::kReference;
}

CosineMode CosModeFromEnv() {
  const char* env = std::getenv("SBRL_COS_MODE");
  if (env == nullptr || *env == '\0' ||
      std::strcmp(env, "vectorized") == 0) {
    return CosineMode::kVectorized;
  }
  SBRL_CHECK(std::strcmp(env, "exact") == 0)
      << "SBRL_COS_MODE must be 'exact' or 'vectorized', got '" << env
      << "'";
  return CosineMode::kExact;
}

void TrainOnIhdp(benchmark::State& state, const MethodSpec& spec) {
  Scale scale = GetScale();
  // Table VI measures one execution; keep the iteration budget modest
  // so the whole 9-method suite stays tractable.
  if (scale.name == "default") scale.iterations = 80;
  IhdpConfig data_config;
  RealWorldSplits splits = MakeIhdpReplication(data_config, 111);
  for (auto _ : state) {
    EstimatorConfig config = WithMethod(BaseConfig(scale, 112), spec);
    config.train.eval_every = 0;  // measure the raw optimization loop
    config.sbrl.hsic_mode = HsicModeFromEnv();
    config.sbrl.rff_cos_mode = CosModeFromEnv();
    config.sbrl.net_step_mode = NetStepModeFromEnv();
    auto estimator = HteEstimator::Create(config);
    SBRL_CHECK(estimator.ok());
    ExperimentSession::RunLease lease = Session().AcquireRun();
    Timer fit_timer;
    SBRL_CHECK(
        estimator->Fit(splits.train, &splits.valid, lease.context()).ok());
    if (g_json != nullptr) {
      g_json->Record(spec.name(), fit_timer.ElapsedSeconds());
      g_json->Record(spec.name() + "/net_step",
                     estimator->diagnostics().net_step_seconds);
      // Divergence-recovery bookkeeping cost (non-finite scans plus the
      // last-good snapshot capture). Target: under 1% of the method's
      // total fit time — the README "Failure handling" budget.
      g_json->Record(spec.name() + "/health",
                     estimator->diagnostics().health_seconds);
      if (config.framework != FrameworkKind::kVanilla) {
        g_json->Record(spec.name() + "/weight_step",
                       estimator->diagnostics().weight_step_seconds);
        g_json->Record(spec.name() + "/rff_cos",
                       estimator->diagnostics().rff_cos_seconds);
      }
    }
    benchmark::DoNotOptimize(estimator->PredictAte(splits.test.x));
  }
  state.SetLabel(spec.name());
}

// Measures checkpoint persistence latency on the heaviest method
// (CFR+SBRL-HAP): trains with a checkpoint cadence of one save per
// iteration, records the mean per-save wall time as "checkpoint/save"
// and a full LoadCheckpoint of the final state as "checkpoint/load".
void CheckpointIo(benchmark::State& state) {
  Scale scale = GetScale();
  if (scale.name == "default") scale.iterations = 80;
  IhdpConfig data_config;
  RealWorldSplits splits = MakeIhdpReplication(data_config, 111);
  const MethodSpec spec{BackboneKind::kCfr, FrameworkKind::kSbrlHap};
  const std::string path = "bench_table6_checkpoint.ckpt.tmp";
  for (auto _ : state) {
    EstimatorConfig config = WithMethod(BaseConfig(scale, 112), spec);
    config.train.eval_every = 0;
    config.train.checkpoint_path = path;
    config.train.checkpoint_every = 1;
    auto estimator = HteEstimator::Create(config);
    SBRL_CHECK(estimator.ok());
    SBRL_CHECK(estimator->Fit(splits.train, &splits.valid).ok());
    const TrainDiagnostics& diag = estimator->diagnostics();
    SBRL_CHECK_EQ(diag.checkpoint_failures, 0);
    // One save per iteration plus the final end-of-training save.
    const double saves = static_cast<double>(config.train.iterations + 1);
    if (g_json != nullptr) {
      g_json->Record("checkpoint/save", diag.checkpoint_seconds / saves);
      Timer load_timer;
      StatusOr<TrainingCheckpoint> loaded = LoadCheckpoint(path);
      SBRL_CHECK(loaded.ok()) << loaded.status().ToString();
      g_json->Record("checkpoint/load", load_timer.ElapsedSeconds());
    }
    benchmark::DoNotOptimize(estimator->PredictAte(splits.test.x));
  }
  std::remove(path.c_str());
  state.SetLabel("checkpoint_io");
}

void RegisterAll() {
  for (const MethodSpec& spec : AllNineMethods()) {
    benchmark::RegisterBenchmark(("TrainIhdp/" + spec.name()).c_str(),
                                 [spec](benchmark::State& state) {
                                   TrainOnIhdp(state, spec);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
  }
  benchmark::RegisterBenchmark("CheckpointIo", &CheckpointIo)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1)
      ->MeasureProcessCPUTime();
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main(int argc, char** argv) {
  sbrl::bench::BenchJsonWriter json("table6", sbrl::bench::GetScale());
  sbrl::bench::g_json = &json;
  sbrl::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sbrl::bench::g_json = nullptr;
  SBRL_CHECK_GT(json.entry_count(), 0) << "no benchmarks ran";
  std::cerr << "wrote " << json.WriteOrDie() << "\n";
  return 0;
}

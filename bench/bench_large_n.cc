// Benchmarks the sharded deterministic training path
// (core/sharded_trainer.h) at production n: streams a synthetic
// environment of up to 10^6+ rows through the chunked generator
// (data/streaming.h), fits the row-separable TARNet configuration
// out-of-core, and records wall time, rows/sec, and peak RSS into
// BENCH_large_n.json (directory overridable via SBRL_BENCH_JSON_DIR).
//
// Two guards run at every scale before the big fit:
//   1. worker-count invariance — the same small stream fitted with
//      sharding.workers in {1, 2, 4} must produce bitwise identical
//      parameters (the FixedOrderTreeReducer contract);
//   2. source invariance — the in-core reader over the materialized
//      rows must fit bitwise identically to the streamed reader.
// At default/full scale the bench additionally CHECKs that peak RSS
// stays far below the in-core footprint of the streamed sample — the
// "bounded by shard size, not n x d" acceptance criterion.

#include <sys/resource.h>

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/sharded_trainer.h"
#include "data/streaming.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "stats/sharded.h"

namespace sbrl {
namespace bench {
namespace {

// Lifetime peak resident set in MiB (ru_maxrss is KiB on Linux).
double PeakRssMb() {
  struct rusage usage;
  SBRL_CHECK_EQ(getrusage(RUSAGE_SELF, &usage), 0);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

ShardedTrainerConfig TrainerConfig(const Scale& scale, int64_t iterations) {
  ShardedTrainerConfig config;
  config.network.rep_layers = 2;
  config.network.rep_width = scale.rep_width;
  config.network.head_layers = 2;
  config.network.head_width = scale.head_width;
  config.iterations = iterations;
  config.seed = 1234;
  return config;
}

std::vector<Matrix> FitParams(const SyntheticModel& model, int64_t rows,
                              const Scale& scale, int64_t workers) {
  SyntheticBlockReader reader(&model, rows, /*rho=*/2.5, /*env_seed=*/11,
                              /*chunk_rows=*/1024);
  ShardedTrainerConfig config = TrainerConfig(scale, /*iterations=*/3);
  config.sharding.shard_rows = 1024;
  config.sharding.workers = workers;
  ShardedTrainer trainer(config, model.dims().total());
  const Status trained = trainer.Train(reader);
  SBRL_CHECK(trained.ok()) << trained.ToString();
  std::vector<Matrix> params;
  trainer.CollectParamValues(&params);
  return params;
}

void CheckBitwiseEqual(const std::vector<Matrix>& a,
                       const std::vector<Matrix>& b, const char* what) {
  SBRL_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SBRL_CHECK(AllClose(a[i], b[i], /*tol=*/0.0))
        << what << ": parameter " << i << " differs";
  }
}

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_large_n",
              "Sharded deterministic training at production n "
              "(streaming loader + fixed-order tree reduction)",
              scale);
  SyntheticDims dims;  // 8 / 8 / 8 / 2
  const SyntheticModel model(dims, /*seed=*/7);
  const int64_t d = dims.total();

  // ---- Guard 1: bitwise worker-count invariance (small stream). ----
  const int64_t guard_rows = 3000;
  const std::vector<Matrix> w1 = FitParams(model, guard_rows, scale, 1);
  for (const int64_t workers : {2, 4}) {
    const std::vector<Matrix> wn =
        FitParams(model, guard_rows, scale, workers);
    CheckBitwiseEqual(w1, wn, "worker-count invariance");
  }
  std::cerr << "guard: workers {1,2,4} bitwise identical\n";

  // ---- Guard 2: streamed fit == in-core fit, bitwise. ----
  {
    SyntheticBlockReader stream(&model, guard_rows, 2.5, 11, 1024);
    StatusOr<CausalDataset> incore = ReadAllRows(stream);
    SBRL_CHECK(incore.ok()) << incore.status().ToString();
    InMemoryBlockReader memory_reader(&*incore);
    ShardedTrainerConfig config = TrainerConfig(scale, 3);
    config.sharding.shard_rows = 1024;
    config.sharding.workers = 2;
    ShardedTrainer trainer(config, d);
    SBRL_CHECK(trainer.Train(memory_reader).ok());
    std::vector<Matrix> incore_params;
    trainer.CollectParamValues(&incore_params);
    const std::vector<Matrix> streamed =
        FitParams(model, guard_rows, scale, 2);
    CheckBitwiseEqual(streamed, incore_params, "stream-vs-incore");
    std::cerr << "guard: streamed == in-core, bitwise\n";
  }

  // ---- The large-n fit. ----
  const int64_t big_rows = scale.name == "smoke"
                               ? 20000
                               : (scale.name == "full" ? 2000000 : 1000000);
  const int64_t iterations = scale.name == "smoke" ? 2 : 4;
  const int64_t shard_rows = 8192;
  const double rss_before_mb = PeakRssMb();

  ShardedTrainerConfig config = TrainerConfig(scale, iterations);
  config.sharding.shard_rows = shard_rows;
  // Unbiased stream (rho = 1.0): biased rejection at rho = 2.5 keeps
  // ~a third of draws — fine for guards, wasteful at 10^6 rows.
  SyntheticBlockReader reader(&model, big_rows, /*rho=*/1.0,
                              /*env_seed=*/42, /*chunk_rows=*/shard_rows);
  ShardedTrainer trainer(config, d);
  ShardedTrainDiagnostics diag;
  Timer fit_timer;
  const Status trained = trainer.Train(reader, &diag);
  SBRL_CHECK(trained.ok()) << trained.ToString();
  const double fit_seconds = fit_timer.ElapsedSeconds();

  StatusOr<double> ate = trainer.EstimateAte(reader);
  SBRL_CHECK(ate.ok()) << ate.status().ToString();

  // Streamed HSIC-RFF between the first unstable covariate and the
  // outcome — the paper's spurious-correlation statistic, computed at
  // full n from tree-reduced block moments.
  Timer hsic_timer;
  SBRL_CHECK(reader.Reset().ok());
  ShardedOptions hsic_options;
  hsic_options.shard_rows = shard_rows;
  StatusOr<double> hsic_vy = ShardedHsicRff(
      reader, /*col_a=*/d - dims.m_v, kOutcomeColumn,
      /*num_features=*/8, /*draw_seed=*/99, hsic_options);
  SBRL_CHECK(hsic_vy.ok()) << hsic_vy.status().ToString();
  const double hsic_seconds = hsic_timer.ElapsedSeconds();

  const double rss_after_mb = PeakRssMb();
  // What the same sample would cost fully materialized: (d + 3)
  // doubles per row (x, y, mu0, mu1) plus the treatment int.
  const double incore_mb =
      static_cast<double>(big_rows) *
      (static_cast<double>(d + 3) * sizeof(double) + sizeof(int)) /
      (1024.0 * 1024.0);
  if (scale.name != "smoke") {
    // Acceptance: out-of-core peak RSS bounded by shard size, not
    // n x d. The full in-core sample alone would add ~incore_mb (and
    // the old loader peaked at ~2x that); half of it is a generous
    // ceiling for process base + shards + model.
    SBRL_CHECK_LT(rss_after_mb, std::max(96.0, 0.5 * incore_mb))
        << "peak RSS not bounded by shard size";
  }

  TablePrinter table({"metric", "value"});
  table.AddRow({"rows", std::to_string(big_rows)});
  table.AddRow({"passes", std::to_string(iterations)});
  table.AddRow({"shards/pass", std::to_string(diag.shards)});
  table.AddRow({"fit seconds", FormatDouble(fit_seconds, 3)});
  table.AddRow({"rows/sec", FormatDouble(diag.rows_per_second, 0)});
  table.AddRow({"peak RSS MiB", FormatDouble(rss_after_mb, 1)});
  table.AddRow({"in-core MiB (for comparison)", FormatDouble(incore_mb, 1)});
  table.AddRow({"streamed ATE", FormatDouble(*ate, 4)});
  table.AddRow({"HSIC_RFF(V0, Y)", FormatDouble(*hsic_vy, 6)});
  table.Print(std::cout);

  BenchJsonWriter json("large_n", scale);
  json.Record("large_n/rows", static_cast<double>(big_rows));
  json.Record("large_n/fit_seconds", fit_seconds);
  json.Record("large_n/rows_per_sec", diag.rows_per_second);
  json.Record("large_n/peak_rss_mb", rss_after_mb);
  json.Record("large_n/rss_before_fit_mb", rss_before_mb);
  json.Record("large_n/incore_equiv_mb", incore_mb);
  json.Record("large_n/hsic_seconds", hsic_seconds);
  std::cout << "wrote " << json.WriteOrDie() << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

// Benchmarks the sharded deterministic training path
// (core/sharded_trainer.h) at production n: streams a synthetic
// environment of up to 10^6+ rows through the chunked generator
// (data/streaming.h), fits the row-separable TARNet configuration
// out-of-core, and records wall time, rows/sec, and peak RSS into
// BENCH_large_n.json (directory overridable via SBRL_BENCH_JSON_DIR).
//
// Two guards run at every scale before the big fit:
//   1. worker-count invariance — the same small stream fitted with
//      sharding.workers in {1, 2, 4} must produce bitwise identical
//      parameters (the FixedOrderTreeReducer contract);
//   2. source invariance — the in-core reader over the materialized
//      rows must fit bitwise identically to the streamed reader.
// At default/full scale the bench additionally CHECKs that peak RSS
// stays far below the in-core footprint of the streamed sample — the
// "bounded by shard size, not n x d" acceptance criterion.
//
// Precision lanes: the streamed column-moment + HSIC-RFF pass runs
// once per tier (f64, then f32 block staging) with the kernel's
// peak-RSS watermark reset in between (write "5" to
// /proc/self/clear_refs, read VmHWM back — ru_maxrss is lifetime-
// monotone and useless for phase deltas), and at non-smoke scales the
// f32 lane's watermark must come in below the f64 one: the staged
// wave holds float covariates, half the resident bytes. A 1-pass
// f32-staged fit lane records the trainer's opt-in tier throughput.

#include <malloc.h>
#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/sharded_trainer.h"
#include "data/streaming.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "stats/sharded.h"

namespace sbrl {
namespace bench {
namespace {

// Lifetime peak resident set in MiB (ru_maxrss is KiB on Linux).
double PeakRssMb() {
  struct rusage usage;
  SBRL_CHECK_EQ(getrusage(RUSAGE_SELF, &usage), 0);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

// Resets the kernel's peak-RSS watermark to the CURRENT resident set
// so the next VmHwmMb() read measures one phase's peak instead of the
// process lifetime's. Returns false when the proc interface is not
// writable (non-Linux, restricted container) — callers then skip the
// watermark-based guard.
bool ResetPeakRss() {
  std::ofstream f("/proc/self/clear_refs");
  if (!f.good()) return false;
  f << "5";
  f.flush();
  return f.good();
}

// VmHWM (peak resident set since the last watermark reset) in MiB, or
// -1 when /proc/self/status is unavailable.
double VmHwmMb() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::stod(line.substr(6)) / 1024.0;  // value is in KiB
    }
  }
  return -1.0;
}

/// Pins SBRL_PRECISION for the lifetime of the object (restoring the
/// previous state on destruction) so each lane runs the tier it is
/// labeled with regardless of the ambient environment.
class ScopedPrecisionEnv {
 public:
  explicit ScopedPrecisionEnv(const char* value) {
    const char* old = std::getenv("SBRL_PRECISION");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("SBRL_PRECISION", value, 1);
  }
  ~ScopedPrecisionEnv() {
    if (had_old_) {
      ::setenv("SBRL_PRECISION", old_.c_str(), 1);
    } else {
      ::unsetenv("SBRL_PRECISION");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

ShardedTrainerConfig TrainerConfig(const Scale& scale, int64_t iterations) {
  ShardedTrainerConfig config;
  config.network.rep_layers = 2;
  config.network.rep_width = scale.rep_width;
  config.network.head_layers = 2;
  config.network.head_width = scale.head_width;
  config.iterations = iterations;
  config.seed = 1234;
  return config;
}

std::vector<Matrix> FitParams(const SyntheticModel& model, int64_t rows,
                              const Scale& scale, int64_t workers) {
  SyntheticBlockReader reader(&model, rows, /*rho=*/2.5, /*env_seed=*/11,
                              /*chunk_rows=*/1024);
  ShardedTrainerConfig config = TrainerConfig(scale, /*iterations=*/3);
  config.sharding.shard_rows = 1024;
  config.sharding.workers = workers;
  ShardedTrainer trainer(config, model.dims().total());
  const Status trained = trainer.Train(reader);
  SBRL_CHECK(trained.ok()) << trained.ToString();
  std::vector<Matrix> params;
  trainer.CollectParamValues(&params);
  return params;
}

void CheckBitwiseEqual(const std::vector<Matrix>& a,
                       const std::vector<Matrix>& b, const char* what) {
  SBRL_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SBRL_CHECK(AllClose(a[i], b[i], /*tol=*/0.0))
        << what << ": parameter " << i << " differs";
  }
}

int Main() {
  const Scale scale = GetScale();
  PrintBanner("bench_large_n",
              "Sharded deterministic training at production n "
              "(streaming loader + fixed-order tree reduction)",
              scale);
  SyntheticDims dims;  // 8 / 8 / 8 / 2
  const SyntheticModel model(dims, /*seed=*/7);
  const int64_t d = dims.total();

  // ---- Guard 1: bitwise worker-count invariance (small stream). ----
  const int64_t guard_rows = 3000;
  const std::vector<Matrix> w1 = FitParams(model, guard_rows, scale, 1);
  for (const int64_t workers : {2, 4}) {
    const std::vector<Matrix> wn =
        FitParams(model, guard_rows, scale, workers);
    CheckBitwiseEqual(w1, wn, "worker-count invariance");
  }
  std::cerr << "guard: workers {1,2,4} bitwise identical\n";

  // ---- Guard 2: streamed fit == in-core fit, bitwise. ----
  {
    SyntheticBlockReader stream(&model, guard_rows, 2.5, 11, 1024);
    StatusOr<CausalDataset> incore = ReadAllRows(stream);
    SBRL_CHECK(incore.ok()) << incore.status().ToString();
    InMemoryBlockReader memory_reader(&*incore);
    ShardedTrainerConfig config = TrainerConfig(scale, 3);
    config.sharding.shard_rows = 1024;
    config.sharding.workers = 2;
    ShardedTrainer trainer(config, d);
    SBRL_CHECK(trainer.Train(memory_reader).ok());
    std::vector<Matrix> incore_params;
    trainer.CollectParamValues(&incore_params);
    const std::vector<Matrix> streamed =
        FitParams(model, guard_rows, scale, 2);
    CheckBitwiseEqual(streamed, incore_params, "stream-vs-incore");
    std::cerr << "guard: streamed == in-core, bitwise\n";
  }

  // ---- The large-n fit. ----
  const int64_t big_rows = scale.name == "smoke"
                               ? 20000
                               : (scale.name == "full" ? 2000000 : 1000000);
  const int64_t iterations = scale.name == "smoke" ? 2 : 4;
  const int64_t shard_rows = 8192;

  // ---- Precision tiers of the streamed stats (f32 staging lanes). ----
  // Runs BEFORE the big fit so the watermark deltas reflect the staged
  // waves, not the trainer's pools. Each lane: release freed heap back
  // to the OS, reset the watermark, stream one ColumnMoments +
  // HSIC-RFF pass over the big stream, read VmHWM back.
  //
  // The worker count is PINNED at 8, independent of the host's core
  // count: what the lanes measure is wave residency (workers x
  // shard_rows x d staged bytes), and the f32 tier's saving is the
  // halved wave minus its one reused f64 stage block — a win only
  // when several blocks are wave-resident at once. Worker count never
  // changes a bit of either tier's result (ShardedReduce's contract),
  // so pinning it only shapes the memory profile being measured.
  const int64_t stats_workers = 8;
  double stats_seconds[2] = {0.0, 0.0};
  double stats_peak[2] = {-1.0, -1.0};
  double stats_mean0[2] = {0.0, 0.0};
  double stats_hsic[2] = {0.0, 0.0};
  bool watermark_ok = true;
  for (int tier = 0; tier < 2; ++tier) {
    ScopedPrecisionEnv pin(tier == 0 ? "f64" : "f32");
    ShardedOptions sopts;
    sopts.shard_rows = shard_rows;
    sopts.workers = stats_workers;
    SyntheticBlockReader stats_reader(&model, big_rows, /*rho=*/1.0,
                                      /*env_seed=*/42, shard_rows);
    malloc_trim(0);
    watermark_ok = ResetPeakRss() && watermark_ok;
    Timer stats_timer;
    StatusOr<ColumnMoments> moments =
        ShardedColumnMoments(stats_reader, sopts);
    SBRL_CHECK(moments.ok()) << moments.status().ToString();
    SBRL_CHECK(stats_reader.Reset().ok());
    StatusOr<double> hsic =
        ShardedHsicRff(stats_reader, /*col_a=*/d - dims.m_v, kOutcomeColumn,
                       /*num_features=*/8, /*draw_seed=*/99, sopts);
    SBRL_CHECK(hsic.ok()) << hsic.status().ToString();
    stats_seconds[tier] = stats_timer.ElapsedSeconds();
    if (watermark_ok) stats_peak[tier] = VmHwmMb();
    stats_mean0[tier] =
        moments->sum(0, 0) / static_cast<double>(moments->rows);
    stats_hsic[tier] = *hsic;
  }
  // Tier agreement: the f32 lane stored each covariate with one float
  // rounding and kept every accumulation in f64, so column means agree
  // to ~1e-7 relative and the HSIC statistic to a few percent (the
  // exact per-kernel budgets live in tests/precision_test.cc).
  SBRL_CHECK_LT(std::abs(stats_mean0[1] - stats_mean0[0]), 1e-5)
      << "f32-staged column mean drifted beyond the tier budget";
  SBRL_CHECK_LT(std::abs(stats_hsic[1] - stats_hsic[0]),
                1e-6 + 0.05 * std::abs(stats_hsic[0]))
      << "f32-staged HSIC drifted beyond the tier budget";
  std::cerr << "precision lanes: stats f64 " << FormatDouble(
                   stats_seconds[0], 2)
            << "s peak " << FormatDouble(stats_peak[0], 1) << " MiB, f32 "
            << FormatDouble(stats_seconds[1], 2) << "s peak "
            << FormatDouble(stats_peak[1], 1) << " MiB\n";
  if (watermark_ok && scale.name != "smoke") {
    // Acceptance: f32 block staging cuts the streamed-stats peak (the
    // staged wave holds float covariates — half the resident bytes).
    SBRL_CHECK_LT(stats_peak[1], stats_peak[0])
        << "f32 staging did not cut the streamed-stats peak RSS";
  }

  const double rss_before_mb = PeakRssMb();

  ShardedTrainerConfig config = TrainerConfig(scale, iterations);
  config.sharding.shard_rows = shard_rows;
  // Unbiased stream (rho = 1.0): biased rejection at rho = 2.5 keeps
  // ~a third of draws — fine for guards, wasteful at 10^6 rows.
  SyntheticBlockReader reader(&model, big_rows, /*rho=*/1.0,
                              /*env_seed=*/42, /*chunk_rows=*/shard_rows);
  ShardedTrainer trainer(config, d);
  ShardedTrainDiagnostics diag;
  Timer fit_timer;
  const Status trained = trainer.Train(reader, &diag);
  SBRL_CHECK(trained.ok()) << trained.ToString();
  const double fit_seconds = fit_timer.ElapsedSeconds();

  StatusOr<double> ate = trainer.EstimateAte(reader);
  SBRL_CHECK(ate.ok()) << ate.status().ToString();

  // Streamed HSIC-RFF between the first unstable covariate and the
  // outcome — the paper's spurious-correlation statistic, computed at
  // full n from tree-reduced block moments.
  Timer hsic_timer;
  SBRL_CHECK(reader.Reset().ok());
  ShardedOptions hsic_options;
  hsic_options.shard_rows = shard_rows;
  StatusOr<double> hsic_vy = ShardedHsicRff(
      reader, /*col_a=*/d - dims.m_v, kOutcomeColumn,
      /*num_features=*/8, /*draw_seed=*/99, hsic_options);
  SBRL_CHECK(hsic_vy.ok()) << hsic_vy.status().ToString();
  const double hsic_seconds = hsic_timer.ElapsedSeconds();

  const double rss_after_mb = PeakRssMb();
  // What the same sample would cost fully materialized: (d + 3)
  // doubles per row (x, y, mu0, mu1) plus the treatment int.
  const double incore_mb =
      static_cast<double>(big_rows) *
      (static_cast<double>(d + 3) * sizeof(double) + sizeof(int)) /
      (1024.0 * 1024.0);
  if (scale.name != "smoke") {
    // Acceptance: out-of-core peak RSS bounded by shard size, not
    // n x d. The full in-core sample alone would add ~incore_mb (and
    // the old loader peaked at ~2x that); half of it is a generous
    // ceiling for process base + shards + model.
    SBRL_CHECK_LT(rss_after_mb, std::max(96.0, 0.5 * incore_mb))
        << "peak RSS not bounded by shard size";
  }

  // ---- f32 block-staging fit lane (the opt-in trainer tier). ----
  // One pass is enough to record the tier's throughput; the fitted
  // bits differ from f64 by construction, so only health is CHECKed.
  ShardedTrainDiagnostics diag32;
  {
    ScopedPrecisionEnv pin("f32");
    ShardedTrainerConfig config32 = TrainerConfig(scale, /*iterations=*/1);
    config32.sharding.shard_rows = shard_rows;
    SBRL_CHECK(reader.Reset().ok());
    ShardedTrainer trainer32(config32, d);
    const Status trained32 = trainer32.Train(reader, &diag32);
    SBRL_CHECK(trained32.ok()) << trained32.ToString();
    SBRL_CHECK(diag32.precision == Precision::kF32);
  }

  TablePrinter table({"metric", "value"});
  table.AddRow({"rows", std::to_string(big_rows)});
  table.AddRow({"passes", std::to_string(iterations)});
  table.AddRow({"shards/pass", std::to_string(diag.shards)});
  table.AddRow({"fit seconds", FormatDouble(fit_seconds, 3)});
  table.AddRow({"rows/sec", FormatDouble(diag.rows_per_second, 0)});
  table.AddRow({"peak RSS MiB", FormatDouble(rss_after_mb, 1)});
  table.AddRow({"in-core MiB (for comparison)", FormatDouble(incore_mb, 1)});
  table.AddRow({"streamed ATE", FormatDouble(*ate, 4)});
  table.AddRow({"HSIC_RFF(V0, Y)", FormatDouble(*hsic_vy, 6)});
  table.AddRow({"f32 fit rows/sec", FormatDouble(diag32.rows_per_second, 0)});
  table.AddRow({"stats peak f64 MiB", FormatDouble(stats_peak[0], 1)});
  table.AddRow({"stats peak f32 MiB", FormatDouble(stats_peak[1], 1)});
  table.Print(std::cout);

  BenchJsonWriter json("large_n", scale);
  json.Record("large_n/rows", static_cast<double>(big_rows));
  json.Record("large_n/fit_seconds", fit_seconds);
  json.Record("large_n/rows_per_sec", diag.rows_per_second);
  json.Record("large_n/peak_rss_mb", rss_after_mb);
  json.Record("large_n/rss_before_fit_mb", rss_before_mb);
  json.Record("large_n/incore_equiv_mb", incore_mb);
  json.Record("large_n/hsic_seconds", hsic_seconds);
  // Precision lanes. The staged-wave byte counts are analytic — the
  // resident covariate bytes of one wave under each tier — so the
  // traffic halving is recorded even where the watermark interface is
  // unavailable.
  json.Record("large_n/stats_f64_seconds", stats_seconds[0]);
  json.Record("large_n/stats_f32_seconds", stats_seconds[1]);
  if (stats_peak[0] >= 0.0) {
    json.Record("large_n/stats_f64_peak_rss_mb", stats_peak[0]);
  }
  if (stats_peak[1] >= 0.0) {
    json.Record("large_n/stats_f32_peak_rss_mb", stats_peak[1]);
  }
  const double wave_doubles =
      static_cast<double>(stats_workers * shard_rows * d);
  json.Record("large_n/stats_wave_mb_f64",
              wave_doubles * sizeof(double) / (1024.0 * 1024.0));
  json.Record("large_n/stats_wave_mb_f32",
              wave_doubles * sizeof(float) / (1024.0 * 1024.0));
  json.Record("large_n/f32_fit_rows_per_sec", diag32.rows_per_second);
  std::cout << "wrote " << json.WriteOrDie() << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sbrl

int main() { return sbrl::bench::Main(); }

// Extending the framework: the paper stresses that SBRL-HAP is
// model-agnostic — "most existing representation balancing methods can
// be incorporated as backbones". This example implements a custom
// backbone (a single-head S-learner that appends the treatment to the
// representation) against the Backbone interface and trains it inside
// the SBRL-HAP framework, unchanged.

#include <iostream>
#include <memory>

#include "core/estimator.h"
#include "core/trainer.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "stats/metrics.h"
#include "tensor/linalg.h"

namespace sbrl {
namespace {

/// S-learner: one head h([Phi(x), t]) evaluated at t=0 and t=1.
class SLearnerBackbone : public Backbone {
 public:
  SLearnerBackbone(int64_t input_dim, Rng& rng) : input_dim_(input_dim) {
    MlpConfig rep;
    rep.input_dim = input_dim;
    rep.hidden = {32, 32};
    rep_ = Mlp("slearner.rep", rep, rng);
    MlpConfig head;
    head.input_dim = 33;  // representation + treatment indicator
    head.hidden = {16, 16};
    head_ = Mlp("slearner.head", head, rng);
    out_ = Dense("slearner.out", 16, 1, rng);
  }

  BackboneForward Forward(ParamBinder& binder, const Matrix& x,
                          const std::vector<int>& t, Var /*w*/,
                          bool training) override {
    Tape* tape = binder.tape();
    std::vector<Var> rep_layers =
        rep_.ForwardCollect(binder, tape->Constant(x), training);
    Var rep = rep_layers.back();
    auto head_for = [&](double treatment) {
      Var t_col = tape->Constant(Matrix::Constant(x.rows(), 1, treatment));
      Var joined = ops::ConcatCols(rep, t_col);
      std::vector<Var> hs = head_.ForwardCollect(binder, joined, training);
      return std::pair<Var, std::vector<Var>>(out_.Forward(binder, hs.back()),
                                              hs);
    };
    auto [y0, h0] = head_for(0.0);
    auto [y1, h1] = head_for(1.0);
    BackboneForward fwd;
    fwd.y0 = y0;
    fwd.y1 = y1;
    fwd.rep = rep;
    fwd.z_p = ops::SelectRowsByTreatment(h1.back(), h0.back(), t);
    for (size_t i = 0; i + 1 < rep_layers.size(); ++i) {
      fwd.z_other.push_back(rep_layers[i]);
    }
    fwd.aux_loss = tape->Constant(Matrix::Zeros(1, 1));
    return fwd;
  }

  void CollectParams(std::vector<Param*>* out) override {
    rep_.CollectParams(out);
    head_.CollectParams(out);
    out_.CollectParams(out);
  }
  std::vector<Param*> DecayParams() override { return {}; }
  int64_t input_dim() const override { return input_dim_; }

 private:
  int64_t input_dim_;
  Mlp rep_;
  Mlp head_;
  Dense out_;
};

}  // namespace
}  // namespace sbrl

int main() {
  using namespace sbrl;

  SyntheticModel world(SyntheticDims{}, 31);
  CausalDataset observed = world.SampleEnvironment(1000, 2.5, 32);
  CausalDataset shifted = world.SampleEnvironment(500, -2.5, 33);
  Rng split_rng(34);
  TrainValid tv = SplitTrainValid(observed, 0.7, split_rng);

  // Drive the custom backbone directly with the SBRL trainer — the
  // same Algorithm 1 loop the built-in estimator uses.
  EstimatorConfig config;
  config.framework = FrameworkKind::kSbrlHap;
  config.backbone = BackboneKind::kCfr;  // only steers alpha defaults
  config.train.iterations = 150;
  config.train.eval_every = 25;

  Rng rng(35);
  SLearnerBackbone backbone(observed.dim(), rng);
  SbrlTrainer trainer(config, &backbone, /*binary_outcome=*/true);
  TrainDiagnostics diag;
  Matrix weights;
  Status s = trainer.Train(tv.train, &tv.valid, &diag, &weights);
  if (!s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  std::cout << "custom S-learner trained inside SBRL-HAP ("
            << diag.train_loss.size() << " evals, final train loss "
            << diag.train_loss.back() << ")\n";

  // Manual prediction pass using the backbone directly.
  Tape tape;
  ParamBinder binder(&tape);
  std::vector<int> dummy_t(static_cast<size_t>(shifted.n()), 0);
  Var w_uniform = tape.Constant(Matrix::Ones(shifted.n(), 1));
  BackboneForward fwd =
      backbone.Forward(binder, shifted.x, dummy_t, w_uniform, false);
  std::vector<double> ite(static_cast<size_t>(shifted.n()));
  for (int64_t i = 0; i < shifted.n(); ++i) {
    const double p1 = 1.0 / (1.0 + std::exp(-fwd.y1.value()(i, 0)));
    const double p0 = 1.0 / (1.0 + std::exp(-fwd.y0.value()(i, 0)));
    ite[static_cast<size_t>(i)] = p1 - p0;
  }
  std::cout << "PEHE of the custom backbone on the shifted population: "
            << Pehe(ite, shifted.TrueIte()) << "\n";
  std::cout << "sample-weight spread learned by SBRL-HAP: std = "
            << StdDev(weights) << "\n";
  return 0;
}

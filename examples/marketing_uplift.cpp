// Marketing uplift scenario: a promotion's effect on conversion is
// estimated from last quarter's campaign logs (continuous spend
// outcome, biased targeting), then applied to next quarter's shifted
// customer mix. Demonstrates the continuous-outcome path (MSE heads,
// internal outcome standardization) using the IHDP-style simulator, and
// shows how to inspect the learned sample weights.

#include <algorithm>
#include <iostream>

#include "core/estimator.h"
#include "data/ihdp.h"
#include "stats/metrics.h"
#include "tensor/linalg.h"

int main() {
  using namespace sbrl;

  std::cout << "Scenario: uplift modeling with a continuous outcome and a "
               "shifted\ndeployment quarter (IHDP-style semi-synthetic "
               "data).\n\n";

  IhdpConfig campaign;  // 747 customers, 25 features, 10% shifted holdout
  RealWorldSplits splits = MakeIhdpReplication(campaign, /*seed=*/21);

  EstimatorConfig config;
  config.backbone = BackboneKind::kDerCfr;  // decomposed representation
  config.framework = FrameworkKind::kSbrlHap;
  config.network.rep_width = 24;
  config.network.head_width = 16;
  config.train.iterations = 200;
  config.train.seed = 23;

  auto estimator = HteEstimator::Create(config);
  if (!estimator.ok()) {
    std::cerr << estimator.status().ToString() << "\n";
    return 1;
  }
  if (Status s = estimator->Fit(splits.train, &splits.valid); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  // Uplift predictions on the shifted quarter.
  const std::vector<double> uplift = estimator->PredictIte(splits.test.x);
  std::cout << "predicted average uplift (shifted quarter): "
            << estimator->PredictAte(splits.test.x) << "\n";
  std::cout << "true average uplift:                        "
            << splits.test.TrueAte() << "\n";
  std::cout << "PEHE: " << Pehe(uplift, splits.test.TrueIte()) << "\n\n";

  // Rank customers by predicted uplift — who should get the promotion?
  std::vector<size_t> order(uplift.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&uplift](size_t a, size_t b) {
    return uplift[a] > uplift[b];
  });
  std::cout << "top-5 customers by predicted uplift:\n";
  for (size_t k = 0; k < 5 && k < order.size(); ++k) {
    std::cout << "  customer " << order[k] << ": uplift "
              << uplift[order[k]] << "\n";
  }

  // The stable-learning weights show which training records the model
  // leaned on (near-uniform means little reweighting was needed).
  const Matrix& w = estimator->sample_weights();
  std::cout << "\nsample-weight summary: min " << w.MinValue() << ", mean "
            << w.Mean() << ", max " << w.MaxValue() << ", std "
            << StdDev(w) << "\n";
  return 0;
}

// Healthcare scenario from the paper's introduction (Fig. 1): a drug
// effectiveness model is trained on urban-hospital records and then
// deployed on a remote-village population whose covariate distribution
// is different. Vanilla CFR and CFR+SBRL-HAP are compared on both the
// in-distribution and the shifted population.
//
// The Twins simulator plays the role of the medical registry: mortality
// outcomes, heavier-twin treatment, and an unstable covariate block
// whose correlation with the outcome flips across environments.

#include <iostream>

#include "core/estimator.h"
#include "data/twins.h"
#include "eval/table_printer.h"
#include "stats/metrics.h"
#include "common/string_util.h"

int main() {
  using namespace sbrl;

  std::cout << "Scenario: train a treatment-effect model on one hospital "
               "population,\ndeploy it on a demographically shifted one "
               "(paper Fig. 1).\n\n";

  TwinsConfig registry;
  registry.n = 2500;
  registry.rho = -2.5;  // the deployment population's bias rate
  RealWorldSplits splits = MakeTwinsReplication(registry, /*seed=*/11);

  std::cout << "registry: " << splits.train.n() << " training records, "
            << splits.valid.n() << " validation records, "
            << splits.test.n() << " records in the shifted deployment "
            << "population\n\n";

  TablePrinter table({"Model", "PEHE (ID valid)", "PEHE (OOD deploy)",
                      "ATE bias (OOD deploy)"});

  for (FrameworkKind framework :
       {FrameworkKind::kVanilla, FrameworkKind::kSbrlHap}) {
    EstimatorConfig config;
    config.backbone = BackboneKind::kCfr;
    config.framework = framework;
    config.network.rep_width = 32;
    config.network.head_width = 16;
    config.train.iterations = 200;
    config.train.seed = 13;
    config.sbrl.hsic_pair_budget = 24;

    auto estimator = HteEstimator::Create(config);
    if (!estimator.ok()) {
      std::cerr << estimator.status().ToString() << "\n";
      return 1;
    }
    if (Status s = estimator->Fit(splits.train, &splits.valid); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
    const auto ite_valid = estimator->PredictIte(splits.valid.x);
    const auto ite_test = estimator->PredictIte(splits.test.x);
    table.AddRow({MethodName(config.backbone, framework),
                  FormatDouble(Pehe(ite_valid, splits.valid.TrueIte()), 3),
                  FormatDouble(Pehe(ite_test, splits.test.TrueIte()), 3),
                  FormatDouble(AteError(ite_test, splits.test.TrueIte()),
                               3)});
  }
  table.Print(std::cout);
  std::cout << "\nReading: the SBRL-HAP column should hold up better on "
               "the deployment\npopulation — the point of stable HTE "
               "estimation across OOD populations.\n";
  return 0;
}

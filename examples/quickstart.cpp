// Quickstart: train a CFR+SBRL-HAP estimator on a synthetic
// observational dataset and estimate heterogeneous treatment effects on
// an out-of-distribution population.
//
// Build & run (from the repository root):
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/example_quickstart

#include <iostream>

#include "core/estimator.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "stats/metrics.h"

int main() {
  using namespace sbrl;

  // 1. Simulate an observational training population (bias rate +2.5)
  //    and a shifted deployment population (bias rate -2.5).
  SyntheticDims dims;  // 8 instruments, 8 confounders, 8 adjusters, 2 noise
  SyntheticModel world(dims, /*seed=*/2024);
  CausalDataset observed = world.SampleEnvironment(1200, /*rho=*/2.5, 1);
  CausalDataset deployment = world.SampleEnvironment(600, /*rho=*/-2.5, 2);

  Rng split_rng(3);
  TrainValid tv = SplitTrainValid(observed, /*train_fraction=*/0.7,
                                  split_rng);

  // 2. Configure the estimator: CFR backbone wrapped in SBRL-HAP.
  EstimatorConfig config;
  config.backbone = BackboneKind::kCfr;
  config.framework = FrameworkKind::kSbrlHap;
  config.network.rep_width = 32;
  config.network.head_width = 16;
  config.train.iterations = 200;
  config.train.seed = 7;

  auto estimator = HteEstimator::Create(config);
  if (!estimator.ok()) {
    std::cerr << "config error: " << estimator.status().ToString() << "\n";
    return 1;
  }

  // 3. Fit with validation-based early stopping.
  Status fit_status = estimator->Fit(tv.train, &tv.valid);
  if (!fit_status.ok()) {
    std::cerr << "training error: " << fit_status.ToString() << "\n";
    return 1;
  }
  std::cout << "trained " << MethodName(config.backbone, config.framework)
            << " (best iteration "
            << estimator->diagnostics().best_iteration << ")\n";

  // 4. Estimate effects on the OOD deployment population.
  const std::vector<double> ite = estimator->PredictIte(deployment.x);
  const double ate = estimator->PredictAte(deployment.x);
  std::cout << "estimated ATE on deployment population: " << ate << "\n";
  std::cout << "true ATE:                               "
            << deployment.TrueAte() << "\n";

  // 5. Because this is synthetic data, we can score the estimate.
  std::cout << "PEHE: " << Pehe(ite, deployment.TrueIte()) << "\n";
  std::cout << "ATE bias: " << AteError(ite, deployment.TrueIte()) << "\n";
  return 0;
}

#include "nn/net_step.h"

namespace sbrl {

const char* NetStepModeName(NetStepMode mode) {
  switch (mode) {
    case NetStepMode::kFused: return "fused";
    case NetStepMode::kReference: return "reference";
  }
  return "?";
}

Var ApplyActivation(Var x, Activation act) {
  switch (act) {
    case Activation::kElu: return ops::Elu(x);
    case Activation::kRelu: return ops::Relu(x);
    case Activation::kTanh: return ops::Tanh(x);
    case Activation::kSigmoid: return ops::Sigmoid(x);
    case Activation::kLinear: return x;
  }
  SBRL_CHECK(false) << "unreachable";
  return x;
}

ops::ActKind ToActKind(Activation act) {
  switch (act) {
    case Activation::kElu: return ops::ActKind::kElu;
    case Activation::kRelu: return ops::ActKind::kRelu;
    case Activation::kTanh: return ops::ActKind::kTanh;
    case Activation::kSigmoid: return ops::ActKind::kSigmoid;
    case Activation::kLinear: return ops::ActKind::kIdentity;
  }
  SBRL_CHECK(false) << "unreachable";
  return ops::ActKind::kIdentity;
}

}  // namespace sbrl

#include "nn/parameter.h"

namespace sbrl {

Var ParamBinder::Bind(Param& p) {
  for (const auto& [id, bound] : bindings_) {
    // Re-binding returns the existing leaf so gradients accumulate into
    // a single node (e.g. a weight matrix used by both the forward pass
    // and an orthogonality penalty).
    if (bound == &p) return Var(tape_, id);
  }
  Var leaf = tape_->Leaf(tape_->NewCopy(p.value));
  bindings_.emplace_back(leaf.id(), &p);
  return leaf;
}

void ParamBinder::CollectLeafGrads(
    std::vector<std::pair<Param*, Matrix>>* out) const {
  SBRL_CHECK(out != nullptr);
  for (const auto& [id, p] : bindings_) {
    if (!tape_->has_grad(id)) continue;
    const Matrix& g = tape_->grad(id);
    SBRL_CHECK(g.same_shape(p->value));
    // Deep copy: the tape (and its pool-backed buffers) dies with the
    // shard, the returned gradients outlive it.
    out->emplace_back(p, g);
  }
}

void ParamBinder::FlushGrads() {
  for (const auto& [id, p] : bindings_) {
    if (!tape_->has_grad(id)) continue;
    const Matrix& g = tape_->grad(id);
    SBRL_CHECK(g.same_shape(p->value));
    if (p->grad.empty()) {
      p->grad = g;
    } else {
      p->grad += g;
    }
  }
}

}  // namespace sbrl

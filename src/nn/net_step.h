#ifndef SBRL_NN_NET_STEP_H_
#define SBRL_NN_NET_STEP_H_

#include "autodiff/ops.h"

namespace sbrl {

/// How the per-iteration network step records the head forward/backward
/// chain (Dense -> optional BatchNorm -> activation) on the tape.
/// Mirrors BatchedHsicMode / CosineMode: a fast production path plus a
/// reference path selectable per call / per config.
///
/// kFused records each layer as ONE tape node (ops::AffineAct, or
/// ops::AffineBatchNormAct when batch norm is on): the pre-activation
/// is consumed in-pass instead of living on the tape, and the fused
/// backward emits dx / dW / db from pooled temporaries. Without batch
/// norm, values AND gradients are bitwise identical to kReference (the
/// same kernels run in the same order); with batch norm, forward values
/// are bitwise identical and the closed-form backward agrees with the
/// reference chain to rounding error (see tests/golden_trace_test.cc).
///
/// kReference keeps the seed formulation — one tape node per primitive
/// (Affine, ColMean, Sqrt, ..., activation) — as the formulation the
/// golden-trace tests pin down. Both modes are bitwise invariant to the
/// worker-thread count.
enum class NetStepMode {
  kFused,      ///< one fused tape node per layer (default)
  kReference,  ///< per-primitive tape ops — the reference formulation
};

/// Human-readable NetStepMode name ("fused" / "reference").
const char* NetStepModeName(NetStepMode mode);

/// Activation functions available to MLP layers. The paper trains all
/// networks with ELU.
enum class Activation { kElu, kRelu, kTanh, kSigmoid, kLinear };

/// Applies `act` to `x` on the tape (reference path: one UnaryOp node).
Var ApplyActivation(Var x, Activation act);

/// The fused-op activation tag corresponding to `act`.
ops::ActKind ToActKind(Activation act);

}  // namespace sbrl

#endif  // SBRL_NN_NET_STEP_H_

#include "nn/optimizer.h"

#include <cmath>

namespace sbrl {

AdamOptimizer::AdamOptimizer(std::vector<Param*> params,
                             const AdamConfig& config)
    : params_(std::move(params)), config_(config) {
  for (Param* p : params_) {
    SBRL_CHECK(p != nullptr);
    if (p->adam_m.empty()) {
      p->adam_m = Matrix::Zeros(p->value.rows(), p->value.cols());
      p->adam_v = Matrix::Zeros(p->value.rows(), p->value.cols());
    }
    if (p->grad.empty()) {
      p->grad = Matrix::Zeros(p->value.rows(), p->value.cols());
    }
  }
}

double AdamOptimizer::Step(double lr) {
  ++step_count_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(step_count_));
  double digest = 0.0;
  for (Param* p : params_) {
    for (int64_t i = 0; i < p->size(); ++i) {
      double g = p->grad[i];
      if (config_.weight_decay > 0.0) g += config_.weight_decay * p->value[i];
      digest += g;
      p->adam_m[i] = b1 * p->adam_m[i] + (1.0 - b1) * g;
      p->adam_v[i] = b2 * p->adam_v[i] + (1.0 - b2) * g * g;
      const double m_hat = p->adam_m[i] / bias1;
      const double v_hat = p->adam_v[i] / bias2;
      p->value[i] -= lr * m_hat / (std::sqrt(v_hat) + config_.eps);
      p->grad[i] = 0.0;
    }
  }
  return digest;
}

void AdamOptimizer::ZeroGrad() {
  for (Param* p : params_) p->grad.Fill(0.0);
}

SgdOptimizer::SgdOptimizer(std::vector<Param*> params)
    : params_(std::move(params)) {
  for (Param* p : params_) {
    SBRL_CHECK(p != nullptr);
    if (p->grad.empty()) {
      p->grad = Matrix::Zeros(p->value.rows(), p->value.cols());
    }
  }
}

void SgdOptimizer::Step(double lr) {
  for (Param* p : params_) {
    for (int64_t i = 0; i < p->size(); ++i) {
      p->value[i] -= lr * p->grad[i];
      p->grad[i] = 0.0;
    }
  }
}

}  // namespace sbrl

#include "nn/lr_schedule.h"

#include <cmath>

namespace sbrl {

double ExponentialDecaySchedule::LearningRate(int64_t t) const {
  const double exponent =
      static_cast<double>(t) / static_cast<double>(decay_steps_);
  return scale_ * (base_lr_ * std::pow(decay_rate_, exponent));
}

}  // namespace sbrl

#include "nn/initializer.h"

#include <cmath>

namespace sbrl {

Matrix InitWeights(Rng& rng, int64_t fan_in, int64_t fan_out, InitKind kind) {
  SBRL_CHECK_GT(fan_in, 0);
  SBRL_CHECK_GT(fan_out, 0);
  switch (kind) {
    case InitKind::kGlorotNormal: {
      const double stddev =
          std::sqrt(2.0 / static_cast<double>(fan_in + fan_out));
      return rng.Randn(fan_in, fan_out, 0.0, stddev);
    }
    case InitKind::kGlorotUniform: {
      const double limit =
          std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
      return rng.Rand(fan_in, fan_out, -limit, limit);
    }
    case InitKind::kHeNormal: {
      const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
      return rng.Randn(fan_in, fan_out, 0.0, stddev);
    }
    case InitKind::kZeros:
      return Matrix::Zeros(fan_in, fan_out);
  }
  SBRL_CHECK(false) << "unreachable";
  return Matrix();
}

}  // namespace sbrl

#ifndef SBRL_NN_DENSE_H_
#define SBRL_NN_DENSE_H_

#include <string>
#include <vector>

#include "autodiff/ops.h"
#include "nn/initializer.h"
#include "nn/net_step.h"
#include "nn/parameter.h"

namespace sbrl {

/// Fully connected layer: y = x W + b, with W (in x out) and b (1 x out).
class Dense {
 public:
  Dense() = default;

  /// Initializes W under `kind` and b to zeros.
  Dense(const std::string& name, int64_t in_dim, int64_t out_dim, Rng& rng,
        InitKind kind = InitKind::kGlorotNormal);

  /// Records x W + b on the binder's tape.
  Var Forward(ParamBinder& binder, Var x) const;

  /// Records act(x W + b): one fused ops::AffineAct node under
  /// NetStepMode::kFused, the Affine + activation pair under
  /// kReference. The layer step of the fused network-step engine (see
  /// nn/net_step.h); Mlp routes every non-batch-norm layer through it.
  Var ForwardAct(ParamBinder& binder, Var x, Activation act,
                 NetStepMode mode) const;

  /// Binds this layer's parameters on the binder's tape (`*w` = weight,
  /// `*b` = bias) without recording any computation — the hook the
  /// fused BatchNorm-into-affine path uses to consume the affine inside
  /// its own node.
  void BindParams(ParamBinder& binder, Var* w, Var* b) const;

  /// Appends this layer's Params (W then b) to `out`.
  void CollectParams(std::vector<Param*>* out);

  int64_t in_dim() const { return weight_.value.rows(); }
  int64_t out_dim() const { return weight_.value.cols(); }

  const Param& weight() const { return weight_; }
  Param& weight() { return weight_; }
  const Param& bias() const { return bias_; }

 private:
  // Mutable because Forward binds parameters as tape leaves; the layer's
  // logical state is unchanged by a forward pass.
  mutable Param weight_;
  mutable Param bias_;
};

}  // namespace sbrl

#endif  // SBRL_NN_DENSE_H_

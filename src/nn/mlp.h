#ifndef SBRL_NN_MLP_H_
#define SBRL_NN_MLP_H_

#include <string>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/net_step.h"

namespace sbrl {

/// Configuration of a multi-layer perceptron.
struct MlpConfig {
  int64_t input_dim = 0;
  /// Width of each hidden layer; e.g. {128, 128, 128} is the paper's
  /// d_r = 3, h_r = 128 representation network.
  std::vector<int64_t> hidden;
  Activation activation = Activation::kElu;
  /// Insert a BatchNorm after each affine layer (before activation).
  bool batchnorm = false;
  InitKind init = InitKind::kGlorotNormal;
};

/// Stack of Dense (+ optional BatchNorm) + activation layers. Exposes
/// every post-activation layer output so SBRL-HAP can decorrelate each
/// hierarchy level (the Z_o / Z_r / Z_p layers of the paper).
class Mlp {
 public:
  Mlp() = default;
  Mlp(const std::string& name, const MlpConfig& config, Rng& rng);

  /// Runs the full stack, returning every post-activation layer output
  /// in order; back() is the network output. `mode` selects how each
  /// layer is recorded: NetStepMode::kFused collapses every
  /// Dense (+BatchNorm) + activation chain into one fused tape node,
  /// kReference (the default) keeps the per-primitive formulation.
  std::vector<Var> ForwardCollect(
      ParamBinder& binder, Var x, bool training,
      NetStepMode mode = NetStepMode::kReference) const;

  /// Runs the full stack, returning only the final output.
  Var Forward(ParamBinder& binder, Var x, bool training,
              NetStepMode mode = NetStepMode::kReference) const;

  void CollectParams(std::vector<Param*>* out);

  /// Appends named references to every BatchNorm running statistic in
  /// the stack (no-op when batchnorm is off); see
  /// BatchNorm::CollectStateMatrices.
  void CollectStateMatrices(std::vector<NamedStateRef>* out);

  int64_t input_dim() const { return config_.input_dim; }
  int64_t output_dim() const {
    return config_.hidden.empty() ? config_.input_dim
                                  : config_.hidden.back();
  }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  /// True when a BatchNorm follows every affine layer.
  bool batchnorm() const { return config_.batchnorm; }

  /// Access to individual layers (e.g. DeR-CFR binds first-layer
  /// weights for its feature-importance orthogonality penalty).
  Dense& mutable_layer(int i) {
    SBRL_CHECK(i >= 0 && i < num_layers());
    return layers_[static_cast<size_t>(i)];
  }

 private:
  MlpConfig config_;
  std::vector<Dense> layers_;
  std::vector<BatchNorm> norms_;  // parallel to layers_ when batchnorm on
};

}  // namespace sbrl

#endif  // SBRL_NN_MLP_H_

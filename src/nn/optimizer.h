#ifndef SBRL_NN_OPTIMIZER_H_
#define SBRL_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "nn/parameter.h"

namespace sbrl {

/// Adam configuration (defaults follow Kingma & Ba and the paper's
/// TensorFlow setup).
struct AdamConfig {
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  /// Decoupled L2 weight decay applied to the value (0 disables). The
  /// paper's R_l2 on head weights maps here.
  double weight_decay = 0.0;
};

/// Adam optimizer over a fixed set of Params. The learning rate is
/// passed per step so schedules stay external.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(std::vector<Param*> params,
                         const AdamConfig& config = AdamConfig());

  /// Applies one Adam update from each Param's accumulated grad, then
  /// zeroes the grads. Returns the sum of every raw gradient element
  /// consumed by this step — the training health monitor's fused
  /// non-finite digest: any NaN or Inf gradient propagates into the
  /// sum, and accumulating it inside the existing update loop costs
  /// one add per element instead of a second pass (see
  /// docs/ARCHITECTURE.md "Failure handling & recovery").
  double Step(double lr);

  /// Zeroes all gradients without updating (e.g. after a skipped step).
  void ZeroGrad();

  int64_t step_count() const { return step_count_; }
  /// Restores the bias-correction position (checkpoint resume /
  /// divergence rollback); `count` must be >= 0.
  void set_step_count(int64_t count) {
    SBRL_CHECK_GE(count, 0);
    step_count_ = count;
  }
  const std::vector<Param*>& params() const { return params_; }

 private:
  std::vector<Param*> params_;
  AdamConfig config_;
  int64_t step_count_ = 0;
};

/// Plain SGD, used by tests as a reference optimizer.
class SgdOptimizer {
 public:
  explicit SgdOptimizer(std::vector<Param*> params);

  void Step(double lr);

 private:
  std::vector<Param*> params_;
};

}  // namespace sbrl

#endif  // SBRL_NN_OPTIMIZER_H_

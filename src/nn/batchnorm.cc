#include "nn/batchnorm.h"

#include <cmath>

#include "nn/dense.h"
#include "tensor/linalg.h"

namespace sbrl {

BatchNorm::BatchNorm(const std::string& name, int64_t dim, double momentum,
                     double eps)
    : name_(name),
      gamma_(name + ".gamma", Matrix::Ones(1, dim)),
      beta_(name + ".beta", Matrix::Zeros(1, dim)),
      running_mean_(Matrix::Zeros(1, dim)),
      running_var_(Matrix::Ones(1, dim)),
      momentum_(momentum),
      eps_(eps) {}

Var BatchNorm::Forward(ParamBinder& binder, Var x, bool training) const {
  SBRL_CHECK_EQ(x.cols(), dim());
  Tape* t = binder.tape();
  Var gamma = binder.Bind(gamma_);
  Var beta = binder.Bind(beta_);
  if (training) {
    SBRL_CHECK_GT(x.rows(), 1) << "batch norm needs more than one sample";
    Var mu = ops::ColMean(x);                              // (1 x d)
    Var centered = ops::AddRow(x, ops::Neg(mu));           // x - mu
    Var var = ops::ColMean(ops::Square(centered));         // (1 x d)
    Var inv_std = ops::Reciprocal(ops::Sqrt(ops::AddConst(var, eps_)));
    Var normalized = ops::MulRow(centered, inv_std);
    // Update running stats outside the graph.
    running_mean_ = running_mean_ * momentum_ + mu.value() * (1.0 - momentum_);
    running_var_ = running_var_ * momentum_ + var.value() * (1.0 - momentum_);
    return ops::AddRow(ops::MulRow(normalized, gamma), beta);
  }
  // Inference: running statistics are constants.
  Matrix inv_std(1, dim());
  for (int64_t c = 0; c < dim(); ++c) {
    inv_std(0, c) = 1.0 / std::sqrt(running_var_(0, c) + eps_);
  }
  Var mu = t->Constant(running_mean_ * -1.0);
  Var centered = ops::AddRow(x, mu);
  Var normalized = ops::MulRow(centered, t->Constant(inv_std));
  return ops::AddRow(ops::MulRow(normalized, gamma), beta);
}

Var BatchNorm::ForwardFusedAffine(ParamBinder& binder, const Dense& dense,
                                  Var x, bool training,
                                  Activation act) const {
  SBRL_CHECK_EQ(dense.out_dim(), dim());
  Var w, b;
  dense.BindParams(binder, &w, &b);
  Var gamma = binder.Bind(gamma_);
  Var beta = binder.Bind(beta_);
  if (!training) {
    return ops::AffineBatchNormInferAct(x, w, b, gamma, beta, running_mean_,
                                        running_var_, eps_,
                                        ToActKind(act));
  }
  Matrix batch_mean, batch_var;
  Var out = ops::AffineBatchNormAct(x, w, b, gamma, beta, eps_,
                                    ToActKind(act), &batch_mean, &batch_var);
  // Same running-statistics update as the unfused path: the fused op
  // reports batch mean / biased variance bitwise equal to ColMean's.
  running_mean_ =
      running_mean_ * momentum_ + batch_mean * (1.0 - momentum_);
  running_var_ = running_var_ * momentum_ + batch_var * (1.0 - momentum_);
  return out;
}

void BatchNorm::CollectParams(std::vector<Param*>* out) {
  out->push_back(&gamma_);
  out->push_back(&beta_);
}

void BatchNorm::CollectStateMatrices(std::vector<NamedStateRef>* out) {
  out->push_back({name_ + ".running_mean", &running_mean_});
  out->push_back({name_ + ".running_var", &running_var_});
}

}  // namespace sbrl

#include "nn/dense.h"

namespace sbrl {

Dense::Dense(const std::string& name, int64_t in_dim, int64_t out_dim,
             Rng& rng, InitKind kind)
    : weight_(name + ".W", InitWeights(rng, in_dim, out_dim, kind)),
      bias_(name + ".b", Matrix::Zeros(1, out_dim)) {}

Var Dense::Forward(ParamBinder& binder, Var x) const {
  SBRL_CHECK_EQ(x.cols(), in_dim())
      << "Dense '" << weight_.name << "' expects input dim " << in_dim();
  Var w = binder.Bind(weight_);
  Var b = binder.Bind(bias_);
  return ops::Affine(x, w, b);
}

Var Dense::ForwardAct(ParamBinder& binder, Var x, Activation act,
                      NetStepMode mode) const {
  if (mode == NetStepMode::kReference) {
    return ApplyActivation(Forward(binder, x), act);
  }
  SBRL_CHECK_EQ(x.cols(), in_dim())
      << "Dense '" << weight_.name << "' expects input dim " << in_dim();
  Var w = binder.Bind(weight_);
  Var b = binder.Bind(bias_);
  return ops::AffineAct(x, w, b, ToActKind(act));
}

void Dense::BindParams(ParamBinder& binder, Var* w, Var* b) const {
  SBRL_CHECK(w != nullptr && b != nullptr);
  *w = binder.Bind(weight_);
  *b = binder.Bind(bias_);
}

void Dense::CollectParams(std::vector<Param*>* out) {
  out->push_back(&weight_);
  out->push_back(&bias_);
}

}  // namespace sbrl

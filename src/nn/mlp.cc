#include "nn/mlp.h"

namespace sbrl {

Mlp::Mlp(const std::string& name, const MlpConfig& config, Rng& rng)
    : config_(config) {
  SBRL_CHECK_GT(config.input_dim, 0);
  int64_t in = config.input_dim;
  for (size_t i = 0; i < config.hidden.size(); ++i) {
    const int64_t out = config.hidden[i];
    SBRL_CHECK_GT(out, 0);
    layers_.emplace_back(name + ".l" + std::to_string(i), in, out, rng,
                         config.init);
    if (config.batchnorm) {
      norms_.emplace_back(name + ".bn" + std::to_string(i), out);
    }
    in = out;
  }
}

std::vector<Var> Mlp::ForwardCollect(ParamBinder& binder, Var x,
                                     bool training, NetStepMode mode) const {
  std::vector<Var> outputs;
  outputs.reserve(layers_.size());
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (config_.batchnorm) {
      if (mode == NetStepMode::kFused) {
        h = norms_[i].ForwardFusedAffine(binder, layers_[i], h, training,
                                         config_.activation);
      } else {
        h = layers_[i].Forward(binder, h);
        h = norms_[i].Forward(binder, h, training);
        h = ApplyActivation(h, config_.activation);
      }
    } else {
      h = layers_[i].ForwardAct(binder, h, config_.activation, mode);
    }
    outputs.push_back(h);
  }
  if (outputs.empty()) outputs.push_back(x);  // degenerate identity MLP
  return outputs;
}

Var Mlp::Forward(ParamBinder& binder, Var x, bool training,
                 NetStepMode mode) const {
  return ForwardCollect(binder, x, training, mode).back();
}

void Mlp::CollectParams(std::vector<Param*>* out) {
  for (auto& layer : layers_) layer.CollectParams(out);
  for (auto& norm : norms_) norm.CollectParams(out);
}

void Mlp::CollectStateMatrices(std::vector<NamedStateRef>* out) {
  for (auto& norm : norms_) norm.CollectStateMatrices(out);
}

}  // namespace sbrl

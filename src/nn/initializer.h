#ifndef SBRL_NN_INITIALIZER_H_
#define SBRL_NN_INITIALIZER_H_

#include "tensor/matrix.h"
#include "tensor/random.h"

namespace sbrl {

/// Weight initialization schemes. The paper's reference implementations
/// (CFR-family TensorFlow code) use truncated-normal / Glorot-style
/// initializations; we provide the standard set.
enum class InitKind {
  kGlorotNormal,
  kGlorotUniform,
  kHeNormal,
  kZeros,
};

/// Draws an (fan_in x fan_out) weight matrix under `kind`.
Matrix InitWeights(Rng& rng, int64_t fan_in, int64_t fan_out, InitKind kind);

}  // namespace sbrl

#endif  // SBRL_NN_INITIALIZER_H_

#ifndef SBRL_NN_PARAMETER_H_
#define SBRL_NN_PARAMETER_H_

#include <string>
#include <utility>
#include <vector>

#include "autodiff/tape.h"
#include "tensor/matrix.h"

namespace sbrl {

/// A trainable tensor: its value persists across training steps while
/// gradients and Adam moments are maintained alongside. Modules own
/// their Params; optimizers hold raw pointers to them.
struct Param {
  std::string name;
  Matrix value;
  Matrix grad;  // same shape as value; zeroed by the optimizer step

  // Adam moment estimates (lazily sized by the optimizer).
  Matrix adam_m;
  Matrix adam_v;

  Param() = default;
  Param(std::string n, Matrix v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  int64_t size() const { return value.size(); }
};

/// Named reference to a persistent NON-parameter state matrix — state
/// that training mutates outside the gradient path (today: BatchNorm
/// running statistics). Modules expose their state through
/// CollectState hooks so the checkpoint layer (core/checkpoint.h) can
/// snapshot and restore everything a resumed run needs; the referenced
/// matrix must outlive the collector.
struct NamedStateRef {
  /// Unique name, following Param naming ("rep.bn0.running_mean").
  std::string name;
  /// The live state matrix, owned by the exposing module.
  Matrix* value = nullptr;
};

/// Bridges persistent Params and a per-step Tape. Forward passes bind
/// each Param as a differentiable leaf; after Tape::Backward the binder
/// flushes leaf gradients back into Param::grad for the optimizer.
class ParamBinder {
 public:
  explicit ParamBinder(Tape* tape) : tape_(tape) { SBRL_CHECK(tape != nullptr); }

  /// Creates a leaf carrying `p.value` on the tape and remembers the
  /// association. Binding the same Param again returns the existing
  /// leaf, so all uses share one gradient accumulator.
  Var Bind(Param& p);

  /// Adds every bound leaf's accumulated gradient into its Param::grad.
  /// Call once, after Tape::Backward.
  void FlushGrads();

  /// Appends one (param, gradient copy) pair per bound leaf that
  /// received a gradient, in binding order, WITHOUT touching
  /// Param::grad. This is the sharded-training read path: concurrent
  /// per-shard tapes each hand their gradients out privately, and the
  /// trainer folds them in a fixed tree order — flushing into the
  /// shared Param::grad from worker threads would be racy and
  /// accumulation-order dependent.
  void CollectLeafGrads(std::vector<std::pair<Param*, Matrix>>* out) const;

  Tape* tape() const { return tape_; }

 private:
  Tape* tape_;
  std::vector<std::pair<int, Param*>> bindings_;
};

}  // namespace sbrl

#endif  // SBRL_NN_PARAMETER_H_

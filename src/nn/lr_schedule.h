#ifndef SBRL_NN_LR_SCHEDULE_H_
#define SBRL_NN_LR_SCHEDULE_H_

#include <cstdint>

#include "common/check.h"

namespace sbrl {

/// Exponentially decaying learning-rate schedule, matching the paper's
/// training setup: lr(t) = base * decay_rate^(t / decay_steps).
class ExponentialDecaySchedule {
 public:
  ExponentialDecaySchedule(double base_lr, double decay_rate,
                           int64_t decay_steps)
      : base_lr_(base_lr), decay_rate_(decay_rate),
        decay_steps_(decay_steps) {
    SBRL_CHECK_GT(base_lr, 0.0);
    SBRL_CHECK_GT(decay_rate, 0.0);
    SBRL_CHECK_LE(decay_rate, 1.0);
    SBRL_CHECK_GT(decay_steps, 0);
  }

  /// Learning rate at step `t` (continuous decay).
  double LearningRate(int64_t t) const;

 private:
  double base_lr_;
  double decay_rate_;
  int64_t decay_steps_;
};

}  // namespace sbrl

#endif  // SBRL_NN_LR_SCHEDULE_H_

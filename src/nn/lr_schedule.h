#ifndef SBRL_NN_LR_SCHEDULE_H_
#define SBRL_NN_LR_SCHEDULE_H_

#include <cstdint>

#include "common/check.h"

namespace sbrl {

/// Exponentially decaying learning-rate schedule, matching the paper's
/// training setup: lr(t) = base * decay_rate^(t / decay_steps).
class ExponentialDecaySchedule {
 public:
  ExponentialDecaySchedule(double base_lr, double decay_rate,
                           int64_t decay_steps)
      : base_lr_(base_lr), decay_rate_(decay_rate),
        decay_steps_(decay_steps) {
    SBRL_CHECK_GT(base_lr, 0.0);
    SBRL_CHECK_GT(decay_rate, 0.0);
    SBRL_CHECK_LE(decay_rate, 1.0);
    SBRL_CHECK_GT(decay_steps, 0);
  }

  /// Learning rate at step `t` (continuous decay), times the recovery
  /// scale. At the default scale of 1.0 the multiplication is exact
  /// (x * 1.0 == x bitwise), so an idle recovery policy cannot perturb
  /// training trajectories.
  double LearningRate(int64_t t) const;

  /// Multiplicative recovery backoff applied on top of the decay curve
  /// (1.0 until a divergence rollback shrinks it). This is schedule
  /// state: the trainer checkpoints and restores it so a resumed run
  /// sees the same learning rates as an uninterrupted one.
  double scale() const { return scale_; }
  /// Sets the recovery scale (must be > 0); see scale().
  void set_scale(double scale) {
    SBRL_CHECK_GT(scale, 0.0);
    scale_ = scale;
  }

 private:
  double base_lr_;
  double decay_rate_;
  int64_t decay_steps_;
  double scale_ = 1.0;
};

}  // namespace sbrl

#endif  // SBRL_NN_LR_SCHEDULE_H_

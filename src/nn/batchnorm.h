#ifndef SBRL_NN_BATCHNORM_H_
#define SBRL_NN_BATCHNORM_H_

#include <string>
#include <vector>

#include "autodiff/ops.h"
#include "nn/net_step.h"
#include "nn/parameter.h"

namespace sbrl {

class Dense;

/// Batch normalization over the row (sample) dimension with learned
/// scale/shift. Training mode normalizes by batch statistics and updates
/// exponential running estimates; inference mode uses the running
/// estimates as constants. The paper's `batch norm` hyper-parameter
/// toggles this layer inside each MLP.
class BatchNorm {
 public:
  BatchNorm() = default;
  BatchNorm(const std::string& name, int64_t dim, double momentum = 0.9,
            double eps = 1e-5);

  /// Records the normalization on the binder's tape.
  Var Forward(ParamBinder& binder, Var x, bool training) const;

  /// Fused BatchNorm-into-affine layer step: records
  /// act(batchnorm(dense(x))) as ONE tape node
  /// (ops::AffineBatchNormAct in training, the frozen-statistics
  /// companion at inference) and applies the same running-statistics
  /// update the unfused path performs. `dense` supplies the affine
  /// parameters; its output width must equal dim().
  Var ForwardFusedAffine(ParamBinder& binder, const Dense& dense, Var x,
                         bool training, Activation act) const;

  void CollectParams(std::vector<Param*>* out);

  /// Appends named references to the running statistics
  /// ("<name>.running_mean" / "<name>.running_var") so the checkpoint
  /// layer can snapshot and restore non-Param training state.
  void CollectStateMatrices(std::vector<NamedStateRef>* out);

  int64_t dim() const { return gamma_.value.cols(); }

 private:
  std::string name_;
  mutable Param gamma_;
  mutable Param beta_;
  // Running statistics are state, not parameters: updated in-place during
  // training forward passes, read as constants at inference.
  mutable Matrix running_mean_;
  mutable Matrix running_var_;
  double momentum_ = 0.9;
  double eps_ = 1e-5;
};

}  // namespace sbrl

#endif  // SBRL_NN_BATCHNORM_H_

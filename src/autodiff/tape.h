#ifndef SBRL_AUTODIFF_TAPE_H_
#define SBRL_AUTODIFF_TAPE_H_

#include <functional>
#include <utility>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/pool.h"

namespace sbrl {

class Tape;

/// Lightweight handle to a node on a Tape. Vars are cheap to copy; the
/// value and gradient live in the tape's arena.
class Var {
 public:
  Var() : tape_(nullptr), id_(-1) {}
  Var(Tape* tape, int id) : tape_(tape), id_(id) {}

  /// Forward value of this node.
  const Matrix& value() const;
  /// Accumulated gradient (empty until Backward reaches this node).
  const Matrix& grad() const;

  Tape* tape() const { return tape_; }
  int id() const { return id_; }
  bool valid() const { return tape_ != nullptr && id_ >= 0; }

  int64_t rows() const { return value().rows(); }
  int64_t cols() const { return value().cols(); }

 private:
  Tape* tape_;
  int id_;
};

/// Reverse-mode automatic differentiation tape.
///
/// A Tape records a DAG of matrix operations as they execute; calling
/// Backward(loss) on a scalar node walks the DAG in reverse creation
/// order and accumulates gradients into every node that requires them.
/// One tape is built per training step and then discarded — the paper's
/// alternating optimization (Algorithm 1) builds one tape for the
/// network-parameter step and another for the sample-weight step.
///
/// Constructed with a MatrixPool, the tape recycles every node value,
/// gradient, and op temporary through the pool: on destruction all
/// buffers return to the pool, so the next iteration's tape (same
/// shapes) rebuilds without heap allocation. Ops acquire output and
/// temporary buffers through NewZero / NewCopy / Recycle.
class Tape {
 public:
  using BackwardFn = std::function<void(Tape*)>;

  Tape() = default;
  explicit Tape(MatrixPool* pool) : pool_(pool) {}
  ~Tape();
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Node that never receives a gradient (data, labels, frozen values).
  Var Constant(Matrix value);

  /// Differentiable leaf (parameters, sample weights). After Backward,
  /// read the gradient via `v.grad()`.
  Var Leaf(Matrix value);

  /// Records an interior node. `backward` pulls this node's gradient and
  /// pushes contributions into its parents via AccumulateGrad; it is
  /// dropped when no parent requires gradients.
  Var MakeNode(Matrix value, const std::vector<Var>& parents,
               BackwardFn backward);

  /// Runs reverse-mode accumulation from scalar node `loss` (1x1).
  /// May be called once per tape.
  void Backward(const Var& loss);

  /// Adds `delta` into the gradient buffer of node `id`.
  void AccumulateGrad(int id, const Matrix& delta);

  /// Move-in variant: consumes `delta`, recycling its buffer when the
  /// node already holds a gradient. Backward rules build their
  /// contribution in a NewZero buffer and hand it off through this.
  void AccumulateGrad(int id, Matrix&& delta);

  /// Adds `delta` into columns [col_start, col_start + delta.cols()) of
  /// node `id`'s gradient, materializing a full-shape zero gradient on
  /// first touch. Lets view ops (ops::MatmulTransACols) push a window
  /// contribution without ever building a full-width delta — the
  /// exact-mode HSIC pair loop stays allocation-free per pair.
  /// Consumes `delta` (recycled through the pool).
  void AccumulateGradCols(int id, int64_t col_start, Matrix&& delta);

  /// Zeroed (rows x cols) buffer from the pool (plain allocation when
  /// the tape has no pool).
  Matrix NewZero(int64_t rows, int64_t cols);
  /// Pooled copy of `src`.
  Matrix NewCopy(const Matrix& src);
  /// Hands a finished temporary back to the pool.
  void Recycle(Matrix&& m);

  MatrixPool* pool() const { return pool_; }

  const Matrix& value(int id) const {
    SBRL_DCHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
    return nodes_[static_cast<size_t>(id)].value;
  }
  const Matrix& grad(int id) const {
    SBRL_DCHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
    return nodes_[static_cast<size_t>(id)].grad;
  }
  bool requires_grad(int id) const {
    SBRL_DCHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
    return nodes_[static_cast<size_t>(id)].requires_grad;
  }

  /// True if node `id` received any gradient during Backward.
  bool has_grad(int id) const {
    SBRL_DCHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
    return !nodes_[static_cast<size_t>(id)].grad.empty();
  }

  /// Number of recorded nodes.
  int size() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;  // empty until a gradient is accumulated
    bool requires_grad = false;
    BackwardFn backward;  // empty for leaves and constants
  };

  std::vector<Node> nodes_;
  MatrixPool* pool_ = nullptr;  // not owned; may be null
  bool backward_done_ = false;
};

}  // namespace sbrl

#endif  // SBRL_AUTODIFF_TAPE_H_

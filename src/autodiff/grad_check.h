#ifndef SBRL_AUTODIFF_GRAD_CHECK_H_
#define SBRL_AUTODIFF_GRAD_CHECK_H_

#include <functional>

#include "tensor/matrix.h"

namespace sbrl {

/// Central-difference numerical gradient of a scalar-valued function at
/// `x`: grad[i] = (f(x + eps e_i) - f(x - eps e_i)) / (2 eps).
/// Used by the test suite to validate every autodiff op.
Matrix NumericalGradient(const std::function<double(const Matrix&)>& f,
                         const Matrix& x, double eps = 1e-5);

/// Maximum absolute elementwise difference between an analytic gradient
/// and the numerical gradient of `f` at `x`.
double MaxGradientError(const std::function<double(const Matrix&)>& f,
                        const Matrix& x, const Matrix& analytic_grad,
                        double eps = 1e-5);

}  // namespace sbrl

#endif  // SBRL_AUTODIFF_GRAD_CHECK_H_

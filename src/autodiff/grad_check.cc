#include "autodiff/grad_check.h"

#include <cmath>

namespace sbrl {

Matrix NumericalGradient(const std::function<double(const Matrix&)>& f,
                         const Matrix& x, double eps) {
  Matrix grad(x.rows(), x.cols());
  Matrix probe = x;
  for (int64_t i = 0; i < x.size(); ++i) {
    const double saved = probe[i];
    probe[i] = saved + eps;
    const double hi = f(probe);
    probe[i] = saved - eps;
    const double lo = f(probe);
    probe[i] = saved;
    grad[i] = (hi - lo) / (2.0 * eps);
  }
  return grad;
}

double MaxGradientError(const std::function<double(const Matrix&)>& f,
                        const Matrix& x, const Matrix& analytic_grad,
                        double eps) {
  const Matrix numeric = NumericalGradient(f, x, eps);
  SBRL_CHECK(numeric.same_shape(analytic_grad));
  double worst = 0.0;
  for (int64_t i = 0; i < numeric.size(); ++i) {
    worst = std::max(worst, std::abs(numeric[i] - analytic_grad[i]));
  }
  return worst;
}

}  // namespace sbrl

#include "autodiff/ops_f32.h"

#include <algorithm>
#include <cmath>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "tensor/linalg_f32.h"

namespace sbrl {
namespace ops {

namespace {

/// Float restatements of the activation policies in ops.cc (forward
/// only — these kernels are tape-free). Same formulas evaluated in
/// float math; the elu negative branch uses expm1 on float, sigmoid
/// the stable split.
struct IdentityActF32 {
  static float F(float x) { return x; }
};
struct EluActF32 {
  static float F(float x) { return x > 0.0f ? x : std::expm1(x); }
};
struct ReluActF32 {
  static float F(float x) { return x > 0.0f ? x : 0.0f; }
};
struct TanhActF32 {
  static float F(float x) { return std::tanh(x); }
};
struct SigmoidActF32 {
  static float F(float x) {
    if (x >= 0.0f) return 1.0f / (1.0f + std::exp(-x));
    const float e = std::exp(x);
    return e / (1.0f + e);
  }
};

/// Calls fn with the float activation policy selected by `act`.
template <typename Fn>
auto DispatchActF32(ActKind act, Fn&& fn) {
  switch (act) {
    case ActKind::kIdentity: return fn(IdentityActF32{});
    case ActKind::kElu: return fn(EluActF32{});
    case ActKind::kRelu: return fn(ReluActF32{});
    case ActKind::kTanh: return fn(TanhActF32{});
    case ActKind::kSigmoid: return fn(SigmoidActF32{});
  }
  SBRL_CHECK(false) << "unreachable";
  return fn(IdentityActF32{});
}

/// Row-parallel sweep mirroring ops.cc's RowwiseFor: serial below the
/// shared flop cutoff, disjoint row chunks above it.
template <typename Body>
void RowwiseForF32(int64_t rows, int64_t cols, Body body) {
  const int64_t cutoff = SerialCutoff();
  if (rows * cols <= cutoff) {
    body(static_cast<int64_t>(0), rows);
    return;
  }
  const int64_t grain =
      std::max<int64_t>(1, cutoff / std::max<int64_t>(1, cols));
  ParallelFor(0, rows, grain, body);
}

/// f32 fused bias + activation pass (see BiasActInPlace in ops.cc).
template <typename Act>
void BiasActF32InPlace(int64_t n, int64_t m, float* od, const float* bd) {
  RowwiseForF32(n, m, [od, bd, m](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float* orow = od + r * m;
      for (int64_t c = 0; c < m; ++c) {
        orow[c] = Act::F(orow[c] + bd[c]);
      }
    }
  });
}

/// f32 frozen batch-norm + activation pass (see BnInferActInPlace).
template <typename Act>
void BnInferActF32InPlace(int64_t n, int64_t m, float* od, const float* md,
                          const float* sd, const float* gd, const float* bd) {
  RowwiseForF32(n, m, [od, md, sd, gd, bd, m](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t c = 0; c < m; ++c) {
        const int64_t i = r * m + c;
        const float h = (od[i] + -1.0f * md[c]) * sd[c];
        od[i] = Act::F(h * gd[c] + bd[c]);
      }
    }
  });
}

}  // namespace

MatrixF32 AffineActValueF32(const MatrixF32& x, const MatrixF32& w,
                            const MatrixF32& b, ActKind act) {
  SBRL_CHECK_EQ(x.cols(), w.rows());
  SBRL_CHECK(b.rows() == 1 && b.cols() == w.cols());
  const int64_t n = x.rows(), m = w.cols();
  MatrixF32 out(n, m);
  MatmulF32Into(x, w, &out);
  if (act == ActKind::kElu) {
    // The serving hot path: bias add as a plain sweep, then the ELU
    // through the per-ISA vectorized exponential (common/simd.h) —
    // the scalar expm1f per element would otherwise dominate the
    // whole f32 forward.
    BiasActF32InPlace<IdentityActF32>(n, m, out.data(), b.data());
    EluF32InPlace(out.data(), n * m);
    return out;
  }
  DispatchActF32(act, [&](auto policy) {
    BiasActF32InPlace<decltype(policy)>(n, m, out.data(), b.data());
  });
  return out;
}

MatrixF32 AffineBatchNormInferActValueF32(
    const MatrixF32& x, const MatrixF32& w, const MatrixF32& b,
    const MatrixF32& gamma, const MatrixF32& beta,
    const MatrixF32& running_mean, const MatrixF32& running_var, double eps,
    ActKind act) {
  SBRL_CHECK_EQ(x.cols(), w.rows());
  SBRL_CHECK(b.rows() == 1 && b.cols() == w.cols());
  SBRL_CHECK(gamma.rows() == 1 && gamma.cols() == w.cols());
  SBRL_CHECK(beta.same_shape(gamma));
  SBRL_CHECK(running_mean.rows() == 1 && running_mean.cols() == w.cols());
  SBRL_CHECK(running_var.same_shape(running_mean));
  const int64_t n = x.rows(), m = w.cols();
  MatrixF32 pre(n, m);
  MatmulF32Into(x, w, &pre);
  {
    float* pd = pre.data();
    const float* bd = b.data();
    RowwiseForF32(n, m, [pd, bd, m](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        float* prow = pd + r * m;
        for (int64_t c = 0; c < m; ++c) prow[c] += bd[c];
      }
    });
  }
  MatrixF32 inv_std(1, m);
  const float epsf = static_cast<float>(eps);
  for (int64_t c = 0; c < m; ++c) {
    inv_std(0, c) = 1.0f / std::sqrt(running_var(0, c) + epsf);
  }
  if (act == ActKind::kElu) {
    // Same split as AffineActValueF32: frozen-BN affine with identity
    // activation, then the vectorized ELU sweep.
    BnInferActF32InPlace<IdentityActF32>(n, m, pre.data(),
                                         running_mean.data(),
                                         inv_std.data(), gamma.data(),
                                         beta.data());
    EluF32InPlace(pre.data(), n * m);
    return pre;
  }
  DispatchActF32(act, [&](auto policy) {
    BnInferActF32InPlace<decltype(policy)>(n, m, pre.data(),
                                           running_mean.data(),
                                           inv_std.data(), gamma.data(),
                                           beta.data());
  });
  return pre;
}

MatrixF32 NormalizeRowsValueF32(const MatrixF32& a, double eps) {
  MatrixF32 out(a.rows(), a.cols());
  const float epsf = static_cast<float>(eps);
  for (int64_t r = 0; r < a.rows(); ++r) {
    float acc = 0.0f;
    for (int64_t c = 0; c < a.cols(); ++c) acc += a(r, c) * a(r, c);
    const float inv = 1.0f / std::sqrt(acc + epsf);
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) * inv;
  }
  return out;
}

MatrixF32 ConcatColsValueF32(const MatrixF32& a, const MatrixF32& b) {
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const int64_t ac = a.cols(), bc = b.cols();
  MatrixF32 out(a.rows(), ac + bc);
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < ac; ++c) out(r, c) = a(r, c);
    for (int64_t c = 0; c < bc; ++c) out(r, ac + c) = b(r, c);
  }
  return out;
}

}  // namespace ops
}  // namespace sbrl

#include "autodiff/tape.h"

#include <utility>

namespace sbrl {

Tape::~Tape() {
  if (pool_ == nullptr) return;
  for (Node& node : nodes_) {
    pool_->Release(std::move(node.value));
    pool_->Release(std::move(node.grad));
  }
}

Matrix Tape::NewZero(int64_t rows, int64_t cols) {
  if (pool_ != nullptr) return pool_->AcquireZero(rows, cols);
  return Matrix(rows, cols);
}

Matrix Tape::NewCopy(const Matrix& src) {
  if (pool_ != nullptr) return pool_->AcquireCopy(src);
  return src;
}

void Tape::Recycle(Matrix&& m) {
  if (pool_ != nullptr) pool_->Release(std::move(m));
}

const Matrix& Var::value() const {
  SBRL_CHECK(valid());
  return tape_->value(id_);
}

const Matrix& Var::grad() const {
  SBRL_CHECK(valid());
  return tape_->grad(id_);
}

Var Tape::Constant(Matrix value) {
  Node node;
  node.value = std::move(value);
  node.requires_grad = false;
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size()) - 1);
}

Var Tape::Leaf(Matrix value) {
  Node node;
  node.value = std::move(value);
  node.requires_grad = true;
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size()) - 1);
}

Var Tape::MakeNode(Matrix value, const std::vector<Var>& parents,
                   BackwardFn backward) {
  bool any_grad = false;
  for (const Var& p : parents) {
    SBRL_CHECK(p.tape() == this) << "op mixes nodes from different tapes";
    if (requires_grad(p.id())) any_grad = true;
  }
  Node node;
  node.value = std::move(value);
  node.requires_grad = any_grad;
  if (any_grad) node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size()) - 1);
}

void Tape::AccumulateGrad(int id, const Matrix& delta) {
  SBRL_DCHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  Node& node = nodes_[static_cast<size_t>(id)];
  if (!node.requires_grad) return;
  SBRL_CHECK(delta.rows() == node.value.rows() &&
             delta.cols() == node.value.cols())
      << "gradient shape " << delta.ShapeString() << " vs value "
      << node.value.ShapeString();
  if (node.grad.empty()) {
    node.grad = NewCopy(delta);
  } else {
    node.grad += delta;
  }
}

void Tape::AccumulateGrad(int id, Matrix&& delta) {
  SBRL_DCHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  Node& node = nodes_[static_cast<size_t>(id)];
  if (!node.requires_grad) {
    Recycle(std::move(delta));
    return;
  }
  SBRL_CHECK(delta.rows() == node.value.rows() &&
             delta.cols() == node.value.cols())
      << "gradient shape " << delta.ShapeString() << " vs value "
      << node.value.ShapeString();
  if (node.grad.empty()) {
    node.grad = std::move(delta);
  } else {
    node.grad += delta;
    Recycle(std::move(delta));
  }
}

void Tape::AccumulateGradCols(int id, int64_t col_start, Matrix&& delta) {
  SBRL_DCHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  Node& node = nodes_[static_cast<size_t>(id)];
  if (!node.requires_grad) {
    Recycle(std::move(delta));
    return;
  }
  SBRL_CHECK(delta.rows() == node.value.rows() && col_start >= 0 &&
             col_start + delta.cols() <= node.value.cols())
      << "gradient window " << delta.ShapeString() << " at column "
      << col_start << " vs value " << node.value.ShapeString();
  if (delta.cols() == node.value.cols()) {
    AccumulateGrad(id, std::move(delta));
    return;
  }
  if (node.grad.empty()) {
    node.grad = NewZero(node.value.rows(), node.value.cols());
  }
  for (int64_t r = 0; r < delta.rows(); ++r) {
    for (int64_t c = 0; c < delta.cols(); ++c) {
      node.grad(r, col_start + c) += delta(r, c);
    }
  }
  Recycle(std::move(delta));
}

void Tape::Backward(const Var& loss) {
  SBRL_CHECK(loss.tape() == this);
  SBRL_CHECK(!backward_done_) << "Backward may run once per tape";
  backward_done_ = true;
  SBRL_CHECK(loss.value().is_scalar())
      << "Backward requires a scalar loss, got "
      << loss.value().ShapeString();
  AccumulateGrad(loss.id(), Matrix::Ones(1, 1));
  for (int id = loss.id(); id >= 0; --id) {
    Node& node = nodes_[static_cast<size_t>(id)];
    if (!node.requires_grad || node.grad.empty() || !node.backward) continue;
    node.backward(this);
  }
}

}  // namespace sbrl

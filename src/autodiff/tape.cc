#include "autodiff/tape.h"

namespace sbrl {

const Matrix& Var::value() const {
  SBRL_CHECK(valid());
  return tape_->value(id_);
}

const Matrix& Var::grad() const {
  SBRL_CHECK(valid());
  return tape_->grad(id_);
}

Var Tape::Constant(Matrix value) {
  Node node;
  node.value = std::move(value);
  node.requires_grad = false;
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size()) - 1);
}

Var Tape::Leaf(Matrix value) {
  Node node;
  node.value = std::move(value);
  node.requires_grad = true;
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size()) - 1);
}

Var Tape::MakeNode(Matrix value, const std::vector<Var>& parents,
                   BackwardFn backward) {
  bool any_grad = false;
  for (const Var& p : parents) {
    SBRL_CHECK(p.tape() == this) << "op mixes nodes from different tapes";
    if (requires_grad(p.id())) any_grad = true;
  }
  Node node;
  node.value = std::move(value);
  node.requires_grad = any_grad;
  if (any_grad) node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size()) - 1);
}

void Tape::AccumulateGrad(int id, const Matrix& delta) {
  SBRL_DCHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  Node& node = nodes_[static_cast<size_t>(id)];
  if (!node.requires_grad) return;
  SBRL_CHECK(delta.rows() == node.value.rows() &&
             delta.cols() == node.value.cols())
      << "gradient shape " << delta.ShapeString() << " vs value "
      << node.value.ShapeString();
  if (node.grad.empty()) {
    node.grad = delta;
  } else {
    node.grad += delta;
  }
}

void Tape::Backward(const Var& loss) {
  SBRL_CHECK(loss.tape() == this);
  SBRL_CHECK(!backward_done_) << "Backward may run once per tape";
  backward_done_ = true;
  SBRL_CHECK(loss.value().is_scalar())
      << "Backward requires a scalar loss, got "
      << loss.value().ShapeString();
  AccumulateGrad(loss.id(), Matrix::Ones(1, 1));
  for (int id = loss.id(); id >= 0; --id) {
    Node& node = nodes_[static_cast<size_t>(id)];
    if (!node.requires_grad || node.grad.empty() || !node.backward) continue;
    node.backward(this);
  }
}

}  // namespace sbrl

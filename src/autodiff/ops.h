#ifndef SBRL_AUTODIFF_OPS_H_
#define SBRL_AUTODIFF_OPS_H_

#include <utility>
#include <vector>

#include "autodiff/tape.h"
#include "tensor/matrix.h"

namespace sbrl {
/// Differentiable matrix operations recorded on a Tape. Every function
/// returns a new Var whose backward rule is registered with the tape.
/// Shape contracts are CHECKed eagerly so model bugs fail at the op that
/// introduced them, not deep inside Backward.
namespace ops {

/// Activations the fused network-step ops can apply in-pass. Every
/// member's derivative is a function of the POST-activation value alone
/// (elu' = y > 0 ? 1 : y + 1, relu' = y > 0, tanh' = 1 - y^2,
/// sigmoid' = y (1 - y)), which is what lets the fused ops drop the
/// pre-activation entirely instead of keeping it alive as a tape node.
enum class ActKind {
  kIdentity,  ///< no nonlinearity (linear output layers)
  kElu,       ///< alpha = 1 exponential linear unit (paper default)
  kRelu,
  kTanh,
  kSigmoid,
};

// ---------------------------------------------------------------------------
// Binary elementwise (shapes must match exactly).
// ---------------------------------------------------------------------------
Var Add(Var a, Var b);
Var Sub(Var a, Var b);
Var Mul(Var a, Var b);
/// Elementwise a / b. The caller guarantees b is bounded away from zero.
Var Div(Var a, Var b);

// ---------------------------------------------------------------------------
// Broadcast arithmetic.
// ---------------------------------------------------------------------------
/// (n x d) + (1 x d): adds `row` to every row (bias add).
Var AddRow(Var a, Var row);
/// (n x d) + (n x 1): adds `col` to every column.
Var AddCol(Var a, Var col);
/// (n x d) * (1 x d): scales every row elementwise by `row`.
Var MulRow(Var a, Var row);
/// (n x d) * (n x 1): scales row i of `a` by col(i) (sample weighting).
Var MulCol(Var a, Var col);
/// a * s where s is a differentiable (1 x 1) scalar node.
Var MulScalar(Var a, Var s);
/// a / s where s is a differentiable (1 x 1) scalar node.
Var DivScalar(Var a, Var s);

// ---------------------------------------------------------------------------
// Constant-scalar arithmetic (the constant is not differentiated).
// ---------------------------------------------------------------------------
Var AddConst(Var a, double c);
Var Scale(Var a, double c);

// ---------------------------------------------------------------------------
// Unary elementwise.
// ---------------------------------------------------------------------------
Var Neg(Var a);
Var Exp(Var a);
/// Natural log; inputs must be strictly positive.
Var Log(Var a);
/// Square root; inputs must be non-negative (use AddConst for eps guards).
Var Sqrt(Var a);
Var Square(Var a);
/// 1 / a elementwise.
Var Reciprocal(Var a);
Var Abs(Var a);
Var Sigmoid(Var a);
Var Tanh(Var a);
/// Numerically stable log(1 + exp(a)).
Var Softplus(Var a);
/// Exponential linear unit with alpha = 1 (the paper's activation).
Var Elu(Var a);
Var Relu(Var a);
Var Cos(Var a);

// ---------------------------------------------------------------------------
// Shape manipulation.
// ---------------------------------------------------------------------------
Var Transpose(Var a);
/// out.row(i) = a.row(idx[i]). Backward scatter-adds into `a`.
Var GatherRows(Var a, const std::vector<int64_t>& idx);
/// Horizontal concat [a | b].
Var ConcatCols(Var a, Var b);
/// out.row(i) = (t[i] == 1 ? a.row(i) : b.row(i)). Used to assemble the
/// factual head activations Z_p from the two potential-outcome heads.
Var SelectRowsByTreatment(Var a, Var b, const std::vector<int>& t);
/// Inverse assembly of SelectRowsByTreatment for arm-split inputs:
/// `a` holds the rows of the treated units (t[i] == 1) in ascending
/// original-row order, `b` the control rows likewise;
/// out.row(i) = the next row of `a` or `b` according to t[i]. Backward
/// splits the gradient back onto the arms. This is how the fused
/// network step reassembles full-batch tensors after running each
/// outcome head on its own arm only (see OutcomeHeads::Forward).
Var ScatterRowsByTreatment(Var a, Var b, const std::vector<int>& t);
/// Copy of columns [start, start + count) of `a`.
Var SliceCols(Var a, int64_t start, int64_t count);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------
/// Sum of all elements -> (1 x 1).
Var SumAll(Var a);
/// Mean of all elements -> (1 x 1).
Var MeanAll(Var a);
/// (n x d) -> (n x 1) row sums.
Var RowSum(Var a);
/// (n x d) -> (1 x d) column sums.
Var ColSum(Var a);
/// (n x d) -> (n x 1) row means.
Var RowMean(Var a);
/// (n x d) -> (1 x d) column means.
Var ColMean(Var a);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------
/// Matrix product (n x k) * (k x m).
Var Matmul(Var a, Var b);

/// Fused dense-layer op: x (n x k) * w (k x m) + row-broadcast b (1 x m)
/// in a single tape node with pooled buffers — one node instead of the
/// Matmul + AddRow pair on the hottest path of every forward pass.
Var Affine(Var x, Var w, Var b);

/// Fused network-step op: act(x W + b) in ONE tape node. Forward runs
/// the matmul, bias add, and activation in a single pass; backward
/// reconstructs the activation derivative from the stored OUTPUT (see
/// ActKind), builds d(pre-activation) in one pooled temporary, and
/// emits dx / dW / db directly — the pre-activation never exists as a
/// tape node. Values and gradients are bitwise identical to the
/// reference composition ApplyActivation(Affine(x, w, b)): the same
/// kernels accumulate in the same order, only the node count changes.
/// dx is skipped when `x` is a constant (first-layer input).
Var AffineAct(Var x, Var w, Var b, ActKind act);

/// Fused training-mode Dense -> BatchNorm -> activation chain in ONE
/// tape node: act(gamma .* xhat + beta) with
/// xhat = (x W + b - mu) / sqrt(var + eps) and mu / var the batch
/// column statistics of the pre-activation. The batch statistics are
/// written to `*batch_mean` / `*batch_var` (biased, matching the
/// reference ops::ColMean composition) so the caller can update its
/// running estimates exactly as the unfused path does. Forward values
/// are bitwise identical to the reference composition
/// (Affine -> ColMean/Square/Sqrt/Reciprocal/MulRow/AddRow ->
/// activation); the backward applies the standard closed-form
/// batch-norm gradient, which regroups the same sums, so gradients
/// agree with the reference chain to rounding error (grad-checked in
/// tests/autodiff_test.cc). The normalized activations and inverse
/// stddev live in pooled buffers owned by the node's backward closure
/// and are recycled after the backward pass.
Var AffineBatchNormAct(Var x, Var w, Var b, Var gamma, Var beta, double eps,
                       ActKind act, Matrix* batch_mean, Matrix* batch_var);

/// Inference-mode companion of AffineBatchNormAct: normalizes the
/// affine output with the FROZEN `running_mean` / `running_var`
/// constants instead of batch statistics, still one tape node:
/// act(gamma .* (x W + b - mean) / sqrt(var + eps) + beta). Gradients
/// flow to x, w, b, gamma, and beta (the running statistics are not
/// differentiated, mirroring the reference path's Constant nodes).
Var AffineBatchNormInferAct(Var x, Var w, Var b, Var gamma, Var beta,
                            const Matrix& running_mean,
                            const Matrix& running_var, double eps,
                            ActKind act);

// ---------------------------------------------------------------------------
// Tape-free value kernels for the serving path (src/serve). Each one
// evaluates EXACTLY the forward arithmetic of the corresponding tape
// op — same loops, same per-element formulas, same accumulation order
// — by sharing the fused ops' forward helpers, so a serving forward is
// bitwise identical to the in-process inference forward while
// allocating no tape nodes and recording no backward closures.
// ---------------------------------------------------------------------------

/// Value-only AffineAct: act(x W + broadcast b). Bitwise identical to
/// AffineAct(...)'s forward output.
Matrix AffineActValue(const Matrix& x, const Matrix& w, const Matrix& b,
                      ActKind act);

/// Value-only AffineBatchNormInferAct:
/// act(gamma .* (x W + b - mean) / sqrt(var + eps) + beta) with frozen
/// running statistics. Bitwise identical to the tape op's forward.
Matrix AffineBatchNormInferActValue(const Matrix& x, const Matrix& w,
                                    const Matrix& b, const Matrix& gamma,
                                    const Matrix& beta,
                                    const Matrix& running_mean,
                                    const Matrix& running_var, double eps,
                                    ActKind act);

/// Value-only NormalizeRows: each row scaled by
/// 1 / sqrt(sum_c a(r,c)^2 + eps), with the row sum accumulated in
/// ascending column order — bitwise identical to the NormalizeRows
/// op composition (Square -> RowSum -> AddConst -> Sqrt -> Reciprocal
/// -> MulCol).
Matrix NormalizeRowsValue(const Matrix& a, double eps = 1e-9);

/// Value-only ConcatCols: [a | b] row-wise. Bitwise identical to the
/// ConcatCols op's forward output.
Matrix ConcatColsValue(const Matrix& a, const Matrix& b);

/// a^T * b where a is (p x q) and b is (p x r) -> (q x r), without
/// materializing a^T. Numerically identical to
/// Matmul(Transpose(a), b) — forward and backward accumulate in the
/// same order — but skips the transpose node and its buffer. Hot in the
/// HSIC-RFF weight loss, which builds weighted cross-covariances.
Var MatmulTransA(Var a, Var b);

/// Column-window view product: a[:, a_start : a_start + a_cols]^T *
/// b[:, b_start : b_start + b_cols] -> (a_cols x b_cols), reading both
/// operands in place — neither slice is ever materialized, as a tape
/// node or otherwise. Each output element accumulates its row terms in
/// ascending order, so the result is bitwise identical to MatmulTransA
/// on copied slices. Backward pushes window-sized contributions through
/// Tape::AccumulateGradCols. This is what lets the exact-mode HSIC
/// pair loop share ONE stacked feature constant across every pair
/// instead of allocating two (n x k) constants per pair.
Var MatmulTransACols(Var a, int64_t a_start, int64_t a_cols, Var b,
                     int64_t b_start, int64_t b_cols);

/// Batched HSIC pair cross-products: `a` and `b` are (n x d*block)
/// stacks of d per-feature column blocks. The result stacks, for each
/// pair p = (ai, bi) of `pairs`, the (block x block) product
/// a[:, ai-block]^T * b[:, bi-block] into rows [p*block, (p+1)*block).
/// One tape node (one kernel dispatch forward, one backward) replaces a
/// MatmulTransA node per pair on the weight-loss hot path; per-pair
/// values are bitwise identical to the corresponding sliced
/// MatmulTransA.
Var BlockMatmulTransA(Var a, Var b, int64_t block,
                      const std::vector<std::pair<int64_t, int64_t>>& pairs);

/// Weighted batched pair cross-covariances E_w[U^T V]: for each pair
/// p = (ai, bi), the (block x block) product
/// (f[:, ai-block] .* w)^T * f[:, bi-block] stacked into rows
/// [p*block, (p+1)*block), with `w` an (n x 1) weight column. Fuses
/// the MulCol row-scaling of the stacked feature matrix into the block
/// product — no n x (d*block) weighted copy on the tape — and is
/// bitwise identical to BlockMatmulTransA(MulCol(f, w), f, ...).
Var BlockWeightedCrossCov(Var f, Var w, int64_t block,
                          const std::vector<std::pair<int64_t, int64_t>>& pairs);

// ---------------------------------------------------------------------------
// Fused numerical kernels.
// ---------------------------------------------------------------------------
/// Elementwise numerically-stable sigmoid cross-entropy between `logits`
/// and constant `labels` in [0, 1]: max(x,0) - x*y + log(1 + exp(-|x|)).
Var SigmoidCrossEntropyWithLogits(Var logits, const Matrix& labels);

/// Pairwise squared Euclidean distances between rows of a (n x d) and
/// rows of b (m x d) -> (n x m). Used by RBF-kernel MMD.
Var PairwiseSqDist(Var a, Var b);

/// Scalar HSIC-RFF pair loss from stacked cross-covariance blocks
/// `cross` (pairs.size()*block x block, the BlockMatmulTransA layout)
/// and weighted feature means `means` (1 x d*block):
///   sum_p || cross_p - mu_{a_p} mu_{b_p}^T ||_F^2.
/// Fuses the per-pair outer product, subtraction, square and sum into
/// one node with no (block x block) temporaries. Accumulation runs
/// pair-major with row-major element order inside each pair — the same
/// left-fold the exact per-pair Add chain performs, so the batched loss
/// tracks the exact loss to rounding error.
Var PairHsicFrobenius(Var cross, Var means, int64_t block,
                      const std::vector<std::pair<int64_t, int64_t>>& pairs);

// ---------------------------------------------------------------------------
// Composite helpers (built from primitives; gradients flow through).
// ---------------------------------------------------------------------------
/// Rows scaled to unit L2 norm: phi_i / sqrt(|phi_i|^2 + eps). CFR's
/// `rep_normalization` option.
Var NormalizeRows(Var a, double eps = 1e-9);

/// Mean of `values` (n x 1) under normalized weights `w` (n x 1):
/// sum(w_i v_i) / sum(w_i).
Var WeightedMean(Var values, Var w);

}  // namespace ops

/// Convenience operators for elementwise arithmetic on same-shaped Vars.
inline Var operator+(Var a, Var b) { return ops::Add(a, b); }
inline Var operator-(Var a, Var b) { return ops::Sub(a, b); }
inline Var operator*(Var a, Var b) { return ops::Mul(a, b); }
inline Var operator*(Var a, double c) { return ops::Scale(a, c); }
inline Var operator*(double c, Var a) { return ops::Scale(a, c); }

}  // namespace sbrl

#endif  // SBRL_AUTODIFF_OPS_H_

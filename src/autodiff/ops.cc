#include "autodiff/ops.h"

#include <cmath>
#include <functional>

#include "tensor/linalg.h"

namespace sbrl {
namespace ops {

namespace {

/// CHECKs that both operands live on the same tape.
Tape* SameTape(Var a, Var b) {
  SBRL_CHECK(a.valid() && b.valid());
  SBRL_CHECK(a.tape() == b.tape()) << "operands on different tapes";
  return a.tape();
}

/// Generic unary elementwise op: y = f(x), dy/dx supplied as a function
/// of (x, y) so implementations can reuse the forward value.
Var UnaryOp(Var a, const std::function<double(double)>& f,
            const std::function<double(double, double)>& df) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  Matrix out = Map(a.value(), f);
  const int ai = a.id();
  const int self = t->size();
  return t->MakeNode(std::move(out), {a}, [ai, self, df](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& x = t->value(ai);
    const Matrix& y = t->value(self);
    Matrix da(x.rows(), x.cols());
    for (int64_t i = 0; i < x.size(); ++i) da[i] = g[i] * df(x[i], y[i]);
    t->AccumulateGrad(ai, da);
  });
}

double StableSigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double StableSoftplus(double x) {
  return std::max(x, 0.0) + std::log1p(std::exp(-std::abs(x)));
}

}  // namespace

Var Add(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK(a.value().same_shape(b.value()))
      << a.value().ShapeString() << " vs " << b.value().ShapeString();
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(a.value() + b.value(), {a, b}, [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);
    t->AccumulateGrad(ai, g);
    t->AccumulateGrad(bi, g);
  });
}

Var Sub(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK(a.value().same_shape(b.value()))
      << a.value().ShapeString() << " vs " << b.value().ShapeString();
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(a.value() - b.value(), {a, b}, [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);
    t->AccumulateGrad(ai, g);
    Matrix ng = g;
    ng *= -1.0;
    t->AccumulateGrad(bi, ng);
  });
}

Var Mul(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK(a.value().same_shape(b.value()))
      << a.value().ShapeString() << " vs " << b.value().ShapeString();
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(Hadamard(a.value(), b.value()), {a, b},
                     [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);
    t->AccumulateGrad(ai, Hadamard(g, t->value(bi)));
    t->AccumulateGrad(bi, Hadamard(g, t->value(ai)));
  });
}

Var Div(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK(a.value().same_shape(b.value()))
      << a.value().ShapeString() << " vs " << b.value().ShapeString();
  Matrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < out.size(); ++i) out[i] = a.value()[i] / b.value()[i];
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b}, [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    const Matrix& bv = t->value(bi);
    Matrix da(av.rows(), av.cols());
    Matrix db(av.rows(), av.cols());
    for (int64_t i = 0; i < av.size(); ++i) {
      da[i] = g[i] / bv[i];
      db[i] = -g[i] * av[i] / (bv[i] * bv[i]);
    }
    t->AccumulateGrad(ai, da);
    t->AccumulateGrad(bi, db);
  });
}

Var AddRow(Var a, Var row) {
  Tape* t = SameTape(a, row);
  SBRL_CHECK_EQ(row.rows(), 1);
  SBRL_CHECK_EQ(row.cols(), a.cols());
  const int ai = a.id(), ri = row.id(), self = t->size();
  return t->MakeNode(AddRowBroadcast(a.value(), row.value()), {a, row},
                     [ai, ri, self](Tape* t) {
    const Matrix& g = t->grad(self);
    t->AccumulateGrad(ai, g);
    t->AccumulateGrad(ri, sbrl::ColSum(g));
  });
}

Var AddCol(Var a, Var col) {
  Tape* t = SameTape(a, col);
  SBRL_CHECK_EQ(col.cols(), 1);
  SBRL_CHECK_EQ(col.rows(), a.rows());
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      out(r, c) = a.value()(r, c) + col.value()(r, 0);
    }
  }
  const int ai = a.id(), ci = col.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, col}, [ai, ci, self](Tape* t) {
    const Matrix& g = t->grad(self);
    t->AccumulateGrad(ai, g);
    t->AccumulateGrad(ci, sbrl::RowSum(g));
  });
}

Var MulRow(Var a, Var row) {
  Tape* t = SameTape(a, row);
  SBRL_CHECK_EQ(row.rows(), 1);
  SBRL_CHECK_EQ(row.cols(), a.cols());
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      out(r, c) = a.value()(r, c) * row.value()(0, c);
    }
  }
  const int ai = a.id(), ri = row.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, row}, [ai, ri, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    const Matrix& rv = t->value(ri);
    Matrix da(av.rows(), av.cols());
    Matrix dr(1, av.cols());
    for (int64_t r = 0; r < av.rows(); ++r) {
      for (int64_t c = 0; c < av.cols(); ++c) {
        da(r, c) = g(r, c) * rv(0, c);
        dr(0, c) += g(r, c) * av(r, c);
      }
    }
    t->AccumulateGrad(ai, da);
    t->AccumulateGrad(ri, dr);
  });
}

Var MulCol(Var a, Var col) {
  Tape* t = SameTape(a, col);
  SBRL_CHECK_EQ(col.cols(), 1);
  SBRL_CHECK_EQ(col.rows(), a.rows());
  const int ai = a.id(), ci = col.id(), self = t->size();
  return t->MakeNode(MulColBroadcast(a.value(), col.value()), {a, col},
                     [ai, ci, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    const Matrix& cv = t->value(ci);
    t->AccumulateGrad(ai, MulColBroadcast(g, cv));
    t->AccumulateGrad(ci, sbrl::RowSum(Hadamard(g, av)));
  });
}

Var MulScalar(Var a, Var s) {
  Tape* t = SameTape(a, s);
  SBRL_CHECK(s.value().is_scalar());
  Matrix out = a.value() * s.value().scalar();
  const int ai = a.id(), si = s.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, s}, [ai, si, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const double sv = t->value(si).scalar();
    t->AccumulateGrad(ai, g * sv);
    Matrix ds(1, 1);
    ds(0, 0) = Dot(g, t->value(ai));
    t->AccumulateGrad(si, ds);
  });
}

Var DivScalar(Var a, Var s) {
  Tape* t = SameTape(a, s);
  SBRL_CHECK(s.value().is_scalar());
  const double sv = s.value().scalar();
  Matrix out = a.value() * (1.0 / sv);
  const int ai = a.id(), si = s.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, s}, [ai, si, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const double sval = t->value(si).scalar();
    t->AccumulateGrad(ai, g * (1.0 / sval));
    Matrix ds(1, 1);
    ds(0, 0) = -Dot(g, t->value(ai)) / (sval * sval);
    t->AccumulateGrad(si, ds);
  });
}

Var AddConst(Var a, double c) {
  return UnaryOp(
      a, [c](double x) { return x + c; },
      [](double, double) { return 1.0; });
}

Var Scale(Var a, double c) {
  return UnaryOp(
      a, [c](double x) { return c * x; },
      [c](double, double) { return c; });
}

Var Neg(Var a) { return Scale(a, -1.0); }

Var Exp(Var a) {
  return UnaryOp(
      a, [](double x) { return std::exp(x); },
      [](double, double y) { return y; });
}

Var Log(Var a) {
  return UnaryOp(
      a, [](double x) { return std::log(x); },
      [](double x, double) { return 1.0 / x; });
}

Var Sqrt(Var a) {
  return UnaryOp(
      a, [](double x) { return std::sqrt(x); },
      [](double, double y) { return 0.5 / (y > 0.0 ? y : 1e-12); });
}

Var Square(Var a) {
  return UnaryOp(
      a, [](double x) { return x * x; },
      [](double x, double) { return 2.0 * x; });
}

Var Reciprocal(Var a) {
  return UnaryOp(
      a, [](double x) { return 1.0 / x; },
      [](double, double y) { return -y * y; });
}

Var Abs(Var a) {
  return UnaryOp(
      a, [](double x) { return std::abs(x); },
      [](double x, double) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); });
}

Var Sigmoid(Var a) {
  return UnaryOp(
      a, [](double x) { return StableSigmoid(x); },
      [](double, double y) { return y * (1.0 - y); });
}

Var Tanh(Var a) {
  return UnaryOp(
      a, [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; });
}

Var Softplus(Var a) {
  return UnaryOp(
      a, [](double x) { return StableSoftplus(x); },
      [](double x, double) { return StableSigmoid(x); });
}

Var Elu(Var a) {
  return UnaryOp(
      a, [](double x) { return x > 0.0 ? x : std::expm1(x); },
      [](double x, double y) { return x > 0.0 ? 1.0 : y + 1.0; });
}

Var Relu(Var a) {
  return UnaryOp(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Var Cos(Var a) {
  return UnaryOp(
      a, [](double x) { return std::cos(x); },
      [](double x, double) { return -std::sin(x); });
}

Var Transpose(Var a) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  const int ai = a.id(), self = t->size();
  return t->MakeNode(sbrl::Transpose(a.value()), {a}, [ai, self](Tape* t) {
    t->AccumulateGrad(ai, sbrl::Transpose(t->grad(self)));
  });
}

Var GatherRows(Var a, const std::vector<int64_t>& idx) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  const int ai = a.id(), self = t->size();
  const int64_t parent_rows = a.rows();
  return t->MakeNode(sbrl::GatherRows(a.value(), idx), {a},
                     [ai, self, idx, parent_rows](Tape* t) {
    t->AccumulateGrad(ai,
                      sbrl::ScatterAddRows(t->grad(self), idx, parent_rows));
  });
}

Var ConcatCols(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const int ai = a.id(), bi = b.id(), self = t->size();
  const int64_t ac = a.cols(), bc = b.cols();
  return t->MakeNode(sbrl::ConcatCols(a.value(), b.value()), {a, b},
                     [ai, bi, self, ac, bc](Tape* t) {
    const Matrix& g = t->grad(self);
    Matrix da(g.rows(), ac);
    Matrix db(g.rows(), bc);
    for (int64_t r = 0; r < g.rows(); ++r) {
      for (int64_t c = 0; c < ac; ++c) da(r, c) = g(r, c);
      for (int64_t c = 0; c < bc; ++c) db(r, c) = g(r, ac + c);
    }
    t->AccumulateGrad(ai, da);
    t->AccumulateGrad(bi, db);
  });
}

Var SelectRowsByTreatment(Var a, Var b, const std::vector<int>& t_assign) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK(a.value().same_shape(b.value()));
  SBRL_CHECK_EQ(static_cast<int64_t>(t_assign.size()), a.rows());
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const Matrix& src = t_assign[static_cast<size_t>(r)] == 1 ? a.value()
                                                              : b.value();
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = src(r, c);
  }
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b},
                     [ai, bi, self, t_assign](Tape* t) {
    const Matrix& g = t->grad(self);
    Matrix da(g.rows(), g.cols());
    Matrix db(g.rows(), g.cols());
    for (int64_t r = 0; r < g.rows(); ++r) {
      Matrix& dst = t_assign[static_cast<size_t>(r)] == 1 ? da : db;
      for (int64_t c = 0; c < g.cols(); ++c) dst(r, c) = g(r, c);
    }
    t->AccumulateGrad(ai, da);
    t->AccumulateGrad(bi, db);
  });
}

Var SliceCols(Var a, int64_t start, int64_t count) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  SBRL_CHECK(start >= 0 && count >= 0 && start + count <= a.cols());
  Matrix out(a.rows(), count);
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < count; ++c) out(r, c) = a.value()(r, start + c);
  }
  const int ai = a.id(), self = t->size();
  const int64_t total = a.cols();
  return t->MakeNode(std::move(out), {a},
                     [ai, self, start, count, total](Tape* t) {
    const Matrix& g = t->grad(self);
    Matrix da(g.rows(), total);
    for (int64_t r = 0; r < g.rows(); ++r) {
      for (int64_t c = 0; c < count; ++c) da(r, start + c) = g(r, c);
    }
    t->AccumulateGrad(ai, da);
  });
}

Var SumAll(Var a) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  Matrix out(1, 1);
  out(0, 0) = a.value().Sum();
  const int ai = a.id(), self = t->size();
  return t->MakeNode(std::move(out), {a}, [ai, self](Tape* t) {
    const double g = t->grad(self).scalar();
    const Matrix& av = t->value(ai);
    t->AccumulateGrad(ai, Matrix::Constant(av.rows(), av.cols(), g));
  });
}

Var MeanAll(Var a) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  SBRL_CHECK_GT(a.value().size(), 0);
  Matrix out(1, 1);
  out(0, 0) = a.value().Mean();
  const int ai = a.id(), self = t->size();
  return t->MakeNode(std::move(out), {a}, [ai, self](Tape* t) {
    const Matrix& av = t->value(ai);
    const double g =
        t->grad(self).scalar() / static_cast<double>(av.size());
    t->AccumulateGrad(ai, Matrix::Constant(av.rows(), av.cols(), g));
  });
}

Var RowSum(Var a) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  const int ai = a.id(), self = t->size();
  return t->MakeNode(sbrl::RowSum(a.value()), {a}, [ai, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    Matrix da(av.rows(), av.cols());
    for (int64_t r = 0; r < av.rows(); ++r) {
      for (int64_t c = 0; c < av.cols(); ++c) da(r, c) = g(r, 0);
    }
    t->AccumulateGrad(ai, da);
  });
}

Var ColSum(Var a) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  const int ai = a.id(), self = t->size();
  return t->MakeNode(sbrl::ColSum(a.value()), {a}, [ai, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    Matrix da(av.rows(), av.cols());
    for (int64_t r = 0; r < av.rows(); ++r) {
      for (int64_t c = 0; c < av.cols(); ++c) da(r, c) = g(0, c);
    }
    t->AccumulateGrad(ai, da);
  });
}

Var RowMean(Var a) {
  SBRL_CHECK_GT(a.cols(), 0);
  return Scale(RowSum(a), 1.0 / static_cast<double>(a.cols()));
}

Var ColMean(Var a) {
  SBRL_CHECK_GT(a.rows(), 0);
  return Scale(ColSum(a), 1.0 / static_cast<double>(a.rows()));
}

Var Matmul(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK_EQ(a.cols(), b.rows());
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(sbrl::Matmul(a.value(), b.value()), {a, b},
                     [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);
    t->AccumulateGrad(ai, MatmulTransB(g, t->value(bi)));
    t->AccumulateGrad(bi, MatmulTransA(t->value(ai), g));
  });
}

Var SigmoidCrossEntropyWithLogits(Var logits, const Matrix& labels) {
  Tape* t = logits.tape();
  SBRL_CHECK(logits.valid());
  SBRL_CHECK(logits.value().same_shape(labels));
  const Matrix& x = logits.value();
  Matrix out(x.rows(), x.cols());
  for (int64_t i = 0; i < x.size(); ++i) {
    out[i] = std::max(x[i], 0.0) - x[i] * labels[i] +
             std::log1p(std::exp(-std::abs(x[i])));
  }
  const int ai = logits.id(), self = t->size();
  return t->MakeNode(std::move(out), {logits}, [ai, self, labels](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& x = t->value(ai);
    Matrix da(x.rows(), x.cols());
    for (int64_t i = 0; i < x.size(); ++i) {
      da[i] = g[i] * (StableSigmoid(x[i]) - labels[i]);
    }
    t->AccumulateGrad(ai, da);
  });
}

Var PairwiseSqDist(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK_EQ(a.cols(), b.cols());
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(PairwiseSquaredDistances(a.value(), b.value()), {a, b},
                     [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);  // (n x m)
    const Matrix& av = t->value(ai);  // (n x d)
    const Matrix& bv = t->value(bi);  // (m x d)
    // dD_ij/da_i = 2 (a_i - b_j)  =>  da = 2 diag(rowsum g) a - 2 g b
    Matrix grow = sbrl::RowSum(g);                     // (n x 1)
    Matrix da = MulColBroadcast(av, grow) * 2.0;       // 2 a_i sum_j g_ij
    da -= sbrl::Matmul(g, bv) * 2.0;
    // dD_ij/db_j = 2 (b_j - a_i)  =>  db = 2 diag(colsum g) b - 2 g^T a
    Matrix gcol = sbrl::Transpose(sbrl::ColSum(g));    // (m x 1)
    Matrix db = MulColBroadcast(bv, gcol) * 2.0;
    db -= MatmulTransA(g, av) * 2.0;
    t->AccumulateGrad(ai, da);
    t->AccumulateGrad(bi, db);
  });
}

Var NormalizeRows(Var a, double eps) {
  Var sq_norm = RowSum(Square(a));            // (n x 1)
  Var inv = Reciprocal(Sqrt(AddConst(sq_norm, eps)));
  return MulCol(a, inv);
}

Var WeightedMean(Var values, Var w) {
  SBRL_CHECK_EQ(values.cols(), 1);
  SBRL_CHECK_EQ(w.cols(), 1);
  SBRL_CHECK_EQ(values.rows(), w.rows());
  Var numer = SumAll(Mul(values, w));
  Var denom = SumAll(w);
  return DivScalar(numer, denom);
}

}  // namespace ops
}  // namespace sbrl

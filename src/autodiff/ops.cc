#include "autodiff/ops.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "common/thread_pool.h"
#include "tensor/linalg.h"

namespace sbrl {
namespace ops {

namespace {

/// CHECKs that both operands live on the same tape.
Tape* SameTape(Var a, Var b) {
  SBRL_CHECK(a.valid() && b.valid());
  SBRL_CHECK(a.tape() == b.tape()) << "operands on different tapes";
  return a.tape();
}

/// Runs body(lo, hi) over [0, n): inline below the shared serial
/// cutoff (no std::function is constructed), parallel chunks above it.
/// Elementwise bodies write disjoint indices, so results are
/// independent of the worker count.
template <typename Body>
void ElementwiseFor(int64_t n, Body body) {
  const int64_t cutoff = SerialCutoff();
  if (n <= cutoff) {
    body(static_cast<int64_t>(0), n);
    return;
  }
  ParallelFor(0, n, cutoff, body);
}

/// Generic unary elementwise op: y = f(x), dy/dx supplied as a function
/// of (x, y) so implementations can reuse the forward value. Forward
/// output and backward temporary both come from the tape's buffer pool.
/// Templated on the callables (every instantiation lives in this TU) so
/// the per-element calls inline instead of going through std::function.
/// Large activations map forward and backward in parallel chunks.
template <typename F, typename DF>
Var UnaryOp(Var a, F f, DF df) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  const Matrix& av = a.value();
  Matrix out = t->NewZero(av.rows(), av.cols());
  {
    const double* xd = av.data();
    double* od = out.data();
    ElementwiseFor(av.size(), [xd, od, f](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) od[i] = f(xd[i]);
    });
  }
  const int ai = a.id();
  const int self = t->size();
  return t->MakeNode(std::move(out), {a}, [ai, self, df](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& x = t->value(ai);
    const Matrix& y = t->value(self);
    Matrix da = t->NewZero(x.rows(), x.cols());
    const double* gd = g.data();
    const double* xd = x.data();
    const double* yd = y.data();
    double* dad = da.data();
    ElementwiseFor(x.size(), [gd, xd, yd, dad, df](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) dad[i] = gd[i] * df(xd[i], yd[i]);
    });
    t->AccumulateGrad(ai, std::move(da));
  });
}

double StableSigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double StableSoftplus(double x) {
  return std::max(x, 0.0) + std::log1p(std::exp(-std::abs(x)));
}

/// Static activation policies for the fused network-step ops: F is the
/// forward value (the same formulas the standalone UnaryOp activations
/// evaluate, so fused and reference forwards are bitwise identical);
/// D reconstructs the derivative from the POST-activation value alone.
/// Every ActKind admits D(y) (it is the membership criterion): for
/// elu, y > 0 iff x > 0 and y = expm1(x) on the negative branch, so
/// the reference rule x > 0 ? 1 : y + 1 equals y > 0 ? 1 : y + 1 bit
/// for bit; relu / tanh / sigmoid are standard. The policies are
/// dispatched ONCE per op call (DispatchAct), so the per-element loops
/// inline the activation exactly like the reference UnaryOp lambdas.
struct IdentityAct {
  static double F(double x) { return x; }
  static double D(double) { return 1.0; }
};
struct EluAct {
  static double F(double x) { return x > 0.0 ? x : std::expm1(x); }
  static double D(double y) { return y > 0.0 ? 1.0 : y + 1.0; }
};
struct ReluAct {
  static double F(double x) { return x > 0.0 ? x : 0.0; }
  static double D(double y) { return y > 0.0 ? 1.0 : 0.0; }
};
struct TanhAct {
  static double F(double x) { return std::tanh(x); }
  static double D(double y) { return 1.0 - y * y; }
};
struct SigmoidAct {
  static double F(double x) { return StableSigmoid(x); }
  static double D(double y) { return y * (1.0 - y); }
};

/// Calls fn with the activation policy type selected by `act`.
template <typename Fn>
auto DispatchAct(ActKind act, Fn&& fn) {
  switch (act) {
    case ActKind::kIdentity: return fn(IdentityAct{});
    case ActKind::kElu: return fn(EluAct{});
    case ActKind::kRelu: return fn(ReluAct{});
    case ActKind::kTanh: return fn(TanhAct{});
    case ActKind::kSigmoid: return fn(SigmoidAct{});
  }
  SBRL_CHECK(false) << "unreachable";
  return fn(IdentityAct{});
}

/// Runs body(r0, r1) over the rows of an (rows x cols) matrix: serial
/// below the shared flop cutoff, row-parallel chunks above it. Row
/// bodies write disjoint rows, so results are worker-count invariant.
template <typename Body>
void RowwiseFor(int64_t rows, int64_t cols, Body body) {
  const int64_t cutoff = SerialCutoff();
  if (rows * cols <= cutoff) {
    body(static_cast<int64_t>(0), rows);
    return;
  }
  const int64_t grain = std::max<int64_t>(1, cutoff / std::max<int64_t>(1, cols));
  ParallelFor(0, rows, grain, body);
}

}  // namespace

Var Add(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK(a.value().same_shape(b.value()))
      << a.value().ShapeString() << " vs " << b.value().ShapeString();
  Matrix out = t->NewCopy(a.value());
  out += b.value();
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b}, [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);
    t->AccumulateGrad(ai, g);
    t->AccumulateGrad(bi, g);
  });
}

Var Sub(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK(a.value().same_shape(b.value()))
      << a.value().ShapeString() << " vs " << b.value().ShapeString();
  Matrix out = t->NewCopy(a.value());
  out -= b.value();
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b}, [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);
    t->AccumulateGrad(ai, g);
    Matrix ng = t->NewCopy(g);
    ng *= -1.0;
    t->AccumulateGrad(bi, std::move(ng));
  });
}

Var Mul(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK(a.value().same_shape(b.value()))
      << a.value().ShapeString() << " vs " << b.value().ShapeString();
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  Matrix out = t->NewZero(av.rows(), av.cols());
  {
    const double* ad = av.data();
    const double* bd = bv.data();
    double* od = out.data();
    ElementwiseFor(av.size(), [ad, bd, od](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) od[i] = ad[i] * bd[i];
    });
  }
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b}, [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    const Matrix& bv = t->value(bi);
    Matrix da = t->NewZero(av.rows(), av.cols());
    Matrix db = t->NewZero(av.rows(), av.cols());
    const double* gd = g.data();
    const double* ad = av.data();
    const double* bd = bv.data();
    double* dad = da.data();
    double* dbd = db.data();
    ElementwiseFor(av.size(), [gd, ad, bd, dad, dbd](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        dad[i] = gd[i] * bd[i];
        dbd[i] = gd[i] * ad[i];
      }
    });
    t->AccumulateGrad(ai, std::move(da));
    t->AccumulateGrad(bi, std::move(db));
  });
}

Var Div(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK(a.value().same_shape(b.value()))
      << a.value().ShapeString() << " vs " << b.value().ShapeString();
  Matrix out = t->NewZero(a.rows(), a.cols());
  {
    const double* ad = a.value().data();
    const double* bd = b.value().data();
    double* od = out.data();
    ElementwiseFor(out.size(), [ad, bd, od](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) od[i] = ad[i] / bd[i];
    });
  }
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b}, [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    const Matrix& bv = t->value(bi);
    Matrix da = t->NewZero(av.rows(), av.cols());
    Matrix db = t->NewZero(av.rows(), av.cols());
    const double* gd = g.data();
    const double* ad = av.data();
    const double* bd = bv.data();
    double* dad = da.data();
    double* dbd = db.data();
    ElementwiseFor(av.size(), [gd, ad, bd, dad, dbd](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        dad[i] = gd[i] / bd[i];
        dbd[i] = -gd[i] * ad[i] / (bd[i] * bd[i]);
      }
    });
    t->AccumulateGrad(ai, std::move(da));
    t->AccumulateGrad(bi, std::move(db));
  });
}

Var AddRow(Var a, Var row) {
  Tape* t = SameTape(a, row);
  SBRL_CHECK_EQ(row.rows(), 1);
  SBRL_CHECK_EQ(row.cols(), a.cols());
  const Matrix& av = a.value();
  const Matrix& rv = row.value();
  Matrix out = t->NewCopy(av);
  for (int64_t r = 0; r < av.rows(); ++r) {
    for (int64_t c = 0; c < av.cols(); ++c) out(r, c) += rv(0, c);
  }
  const int ai = a.id(), ri = row.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, row}, [ai, ri, self](Tape* t) {
    const Matrix& g = t->grad(self);
    t->AccumulateGrad(ai, g);
    Matrix dr = t->NewZero(1, g.cols());
    for (int64_t r = 0; r < g.rows(); ++r) {
      for (int64_t c = 0; c < g.cols(); ++c) dr(0, c) += g(r, c);
    }
    t->AccumulateGrad(ri, std::move(dr));
  });
}

Var AddCol(Var a, Var col) {
  Tape* t = SameTape(a, col);
  SBRL_CHECK_EQ(col.cols(), 1);
  SBRL_CHECK_EQ(col.rows(), a.rows());
  const Matrix& av = a.value();
  const Matrix& cv = col.value();
  Matrix out = t->NewCopy(av);
  for (int64_t r = 0; r < av.rows(); ++r) {
    const double add = cv(r, 0);
    for (int64_t c = 0; c < av.cols(); ++c) out(r, c) += add;
  }
  const int ai = a.id(), ci = col.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, col}, [ai, ci, self](Tape* t) {
    const Matrix& g = t->grad(self);
    t->AccumulateGrad(ai, g);
    Matrix dc = t->NewZero(g.rows(), 1);
    for (int64_t r = 0; r < g.rows(); ++r) {
      double acc = 0.0;
      for (int64_t c = 0; c < g.cols(); ++c) acc += g(r, c);
      dc(r, 0) = acc;
    }
    t->AccumulateGrad(ci, std::move(dc));
  });
}

Var MulRow(Var a, Var row) {
  Tape* t = SameTape(a, row);
  SBRL_CHECK_EQ(row.rows(), 1);
  SBRL_CHECK_EQ(row.cols(), a.cols());
  const Matrix& av = a.value();
  const Matrix& rv = row.value();
  Matrix out = t->NewZero(av.rows(), av.cols());
  for (int64_t r = 0; r < av.rows(); ++r) {
    for (int64_t c = 0; c < av.cols(); ++c) out(r, c) = av(r, c) * rv(0, c);
  }
  const int ai = a.id(), ri = row.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, row}, [ai, ri, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    const Matrix& rv = t->value(ri);
    Matrix da = t->NewZero(av.rows(), av.cols());
    Matrix dr = t->NewZero(1, av.cols());
    for (int64_t r = 0; r < av.rows(); ++r) {
      for (int64_t c = 0; c < av.cols(); ++c) {
        da(r, c) = g(r, c) * rv(0, c);
        dr(0, c) += g(r, c) * av(r, c);
      }
    }
    t->AccumulateGrad(ai, std::move(da));
    t->AccumulateGrad(ri, std::move(dr));
  });
}

Var MulCol(Var a, Var col) {
  Tape* t = SameTape(a, col);
  SBRL_CHECK_EQ(col.cols(), 1);
  SBRL_CHECK_EQ(col.rows(), a.rows());
  const Matrix& av = a.value();
  const Matrix& cv = col.value();
  Matrix out = t->NewZero(av.rows(), av.cols());
  for (int64_t r = 0; r < av.rows(); ++r) {
    const double s = cv(r, 0);
    for (int64_t c = 0; c < av.cols(); ++c) out(r, c) = av(r, c) * s;
  }
  const int ai = a.id(), ci = col.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, col}, [ai, ci, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    const Matrix& cv = t->value(ci);
    // The HSIC weight loss scales a large CONSTANT feature stack by the
    // differentiable weights: skip the full-size da when nothing
    // upstream wants it.
    const bool need_a = t->requires_grad(ai);
    const bool need_c = t->requires_grad(ci);
    Matrix da, dc;
    if (need_a) da = t->NewZero(av.rows(), av.cols());
    if (need_c) dc = t->NewZero(av.rows(), 1);
    for (int64_t r = 0; r < av.rows(); ++r) {
      const double s = cv(r, 0);
      double acc = 0.0;
      for (int64_t c = 0; c < av.cols(); ++c) {
        if (need_a) da(r, c) = g(r, c) * s;
        acc += g(r, c) * av(r, c);
      }
      if (need_c) dc(r, 0) = acc;
    }
    if (need_a) t->AccumulateGrad(ai, std::move(da));
    if (need_c) t->AccumulateGrad(ci, std::move(dc));
  });
}

Var MulScalar(Var a, Var s) {
  Tape* t = SameTape(a, s);
  SBRL_CHECK(s.value().is_scalar());
  Matrix out = t->NewCopy(a.value());
  out *= s.value().scalar();
  const int ai = a.id(), si = s.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, s}, [ai, si, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const double sv = t->value(si).scalar();
    Matrix da = t->NewCopy(g);
    da *= sv;
    t->AccumulateGrad(ai, std::move(da));
    Matrix ds = t->NewZero(1, 1);
    ds(0, 0) = Dot(g, t->value(ai));
    t->AccumulateGrad(si, std::move(ds));
  });
}

Var DivScalar(Var a, Var s) {
  Tape* t = SameTape(a, s);
  SBRL_CHECK(s.value().is_scalar());
  const double sv = s.value().scalar();
  Matrix out = t->NewCopy(a.value());
  out *= 1.0 / sv;
  const int ai = a.id(), si = s.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, s}, [ai, si, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const double sval = t->value(si).scalar();
    Matrix da = t->NewCopy(g);
    da *= 1.0 / sval;
    t->AccumulateGrad(ai, std::move(da));
    Matrix ds = t->NewZero(1, 1);
    ds(0, 0) = -Dot(g, t->value(ai)) / (sval * sval);
    t->AccumulateGrad(si, std::move(ds));
  });
}

Var AddConst(Var a, double c) {
  return UnaryOp(
      a, [c](double x) { return x + c; },
      [](double, double) { return 1.0; });
}

Var Scale(Var a, double c) {
  return UnaryOp(
      a, [c](double x) { return c * x; },
      [c](double, double) { return c; });
}

Var Neg(Var a) { return Scale(a, -1.0); }

Var Exp(Var a) {
  return UnaryOp(
      a, [](double x) { return std::exp(x); },
      [](double, double y) { return y; });
}

Var Log(Var a) {
  return UnaryOp(
      a, [](double x) { return std::log(x); },
      [](double x, double) { return 1.0 / x; });
}

Var Sqrt(Var a) {
  return UnaryOp(
      a, [](double x) { return std::sqrt(x); },
      [](double, double y) { return 0.5 / (y > 0.0 ? y : 1e-12); });
}

Var Square(Var a) {
  return UnaryOp(
      a, [](double x) { return x * x; },
      [](double x, double) { return 2.0 * x; });
}

Var Reciprocal(Var a) {
  return UnaryOp(
      a, [](double x) { return 1.0 / x; },
      [](double, double y) { return -y * y; });
}

Var Abs(Var a) {
  return UnaryOp(
      a, [](double x) { return std::abs(x); },
      [](double x, double) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); });
}

Var Sigmoid(Var a) {
  return UnaryOp(
      a, [](double x) { return StableSigmoid(x); },
      [](double, double y) { return y * (1.0 - y); });
}

Var Tanh(Var a) {
  return UnaryOp(
      a, [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; });
}

Var Softplus(Var a) {
  return UnaryOp(
      a, [](double x) { return StableSoftplus(x); },
      [](double x, double) { return StableSigmoid(x); });
}

Var Elu(Var a) {
  return UnaryOp(
      a, [](double x) { return x > 0.0 ? x : std::expm1(x); },
      [](double x, double y) { return x > 0.0 ? 1.0 : y + 1.0; });
}

Var Relu(Var a) {
  return UnaryOp(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Var Cos(Var a) {
  return UnaryOp(
      a, [](double x) { return std::cos(x); },
      [](double x, double) { return -std::sin(x); });
}

Var Transpose(Var a) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  const Matrix& av = a.value();
  Matrix out = t->NewZero(av.cols(), av.rows());
  for (int64_t r = 0; r < av.rows(); ++r) {
    for (int64_t c = 0; c < av.cols(); ++c) out(c, r) = av(r, c);
  }
  const int ai = a.id(), self = t->size();
  return t->MakeNode(std::move(out), {a}, [ai, self](Tape* t) {
    const Matrix& g = t->grad(self);
    Matrix da = t->NewZero(g.cols(), g.rows());
    for (int64_t r = 0; r < g.rows(); ++r) {
      for (int64_t c = 0; c < g.cols(); ++c) da(c, r) = g(r, c);
    }
    t->AccumulateGrad(ai, std::move(da));
  });
}

Var GatherRows(Var a, const std::vector<int64_t>& idx) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  const int ai = a.id(), self = t->size();
  const int64_t parent_rows = a.rows();
  return t->MakeNode(sbrl::GatherRows(a.value(), idx), {a},
                     [ai, self, idx, parent_rows](Tape* t) {
    const Matrix& g = t->grad(self);
    Matrix da = t->NewZero(parent_rows, g.cols());
    for (int64_t i = 0; i < g.rows(); ++i) {
      for (int64_t c = 0; c < g.cols(); ++c) da(idx[static_cast<size_t>(i)], c) += g(i, c);
    }
    t->AccumulateGrad(ai, std::move(da));
  });
}

Var ConcatCols(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  const int64_t ac = av.cols(), bc = bv.cols();
  Matrix out = t->NewZero(av.rows(), ac + bc);
  for (int64_t r = 0; r < av.rows(); ++r) {
    for (int64_t c = 0; c < ac; ++c) out(r, c) = av(r, c);
    for (int64_t c = 0; c < bc; ++c) out(r, ac + c) = bv(r, c);
  }
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b},
                     [ai, bi, self, ac, bc](Tape* t) {
    const Matrix& g = t->grad(self);
    Matrix da = t->NewZero(g.rows(), ac);
    Matrix db = t->NewZero(g.rows(), bc);
    for (int64_t r = 0; r < g.rows(); ++r) {
      for (int64_t c = 0; c < ac; ++c) da(r, c) = g(r, c);
      for (int64_t c = 0; c < bc; ++c) db(r, c) = g(r, ac + c);
    }
    t->AccumulateGrad(ai, std::move(da));
    t->AccumulateGrad(bi, std::move(db));
  });
}

Var SelectRowsByTreatment(Var a, Var b, const std::vector<int>& t_assign) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK(a.value().same_shape(b.value()));
  SBRL_CHECK_EQ(static_cast<int64_t>(t_assign.size()), a.rows());
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  Matrix out = t->NewZero(av.rows(), av.cols());
  for (int64_t r = 0; r < av.rows(); ++r) {
    const Matrix& src = t_assign[static_cast<size_t>(r)] == 1 ? av : bv;
    for (int64_t c = 0; c < av.cols(); ++c) out(r, c) = src(r, c);
  }
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b},
                     [ai, bi, self, t_assign](Tape* t) {
    const Matrix& g = t->grad(self);
    Matrix da = t->NewZero(g.rows(), g.cols());
    Matrix db = t->NewZero(g.rows(), g.cols());
    for (int64_t r = 0; r < g.rows(); ++r) {
      Matrix& dst = t_assign[static_cast<size_t>(r)] == 1 ? da : db;
      for (int64_t c = 0; c < g.cols(); ++c) dst(r, c) = g(r, c);
    }
    t->AccumulateGrad(ai, std::move(da));
    t->AccumulateGrad(bi, std::move(db));
  });
}

Var ScatterRowsByTreatment(Var a, Var b, const std::vector<int>& t_assign) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK_EQ(a.cols(), b.cols());
  SBRL_CHECK_EQ(a.rows() + b.rows(),
                static_cast<int64_t>(t_assign.size()));
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  const int64_t n = static_cast<int64_t>(t_assign.size());
  const int64_t d = av.cols();
  int64_t num_treated = 0;
  for (int v : t_assign) num_treated += v == 1 ? 1 : 0;
  SBRL_CHECK(num_treated == av.rows() && n - num_treated == bv.rows())
      << "treatment vector does not partition the arm row counts: "
      << num_treated << " treated vs " << av.ShapeString() << ", "
      << n - num_treated << " control vs " << bv.ShapeString();
  Matrix out = t->NewZero(n, d);
  {
    int64_t ra = 0, rb = 0;
    for (int64_t r = 0; r < n; ++r) {
      const bool treated = t_assign[static_cast<size_t>(r)] == 1;
      const Matrix& src = treated ? av : bv;
      const int64_t sr = treated ? ra++ : rb++;
      for (int64_t c = 0; c < d; ++c) out(r, c) = src(sr, c);
    }
  }
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b},
                     [ai, bi, self, t_assign](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    const Matrix& bv = t->value(bi);
    Matrix da = t->NewZero(av.rows(), av.cols());
    Matrix db = t->NewZero(bv.rows(), bv.cols());
    int64_t ra = 0, rb = 0;
    for (int64_t r = 0; r < g.rows(); ++r) {
      const bool treated = t_assign[static_cast<size_t>(r)] == 1;
      Matrix& dst = treated ? da : db;
      const int64_t sr = treated ? ra++ : rb++;
      for (int64_t c = 0; c < g.cols(); ++c) dst(sr, c) = g(r, c);
    }
    t->AccumulateGrad(ai, std::move(da));
    t->AccumulateGrad(bi, std::move(db));
  });
}

Var SliceCols(Var a, int64_t start, int64_t count) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  SBRL_CHECK(start >= 0 && count >= 0 && start + count <= a.cols());
  const Matrix& av = a.value();
  Matrix out = t->NewZero(av.rows(), count);
  for (int64_t r = 0; r < av.rows(); ++r) {
    for (int64_t c = 0; c < count; ++c) out(r, c) = av(r, start + c);
  }
  const int ai = a.id(), self = t->size();
  const int64_t total = a.cols();
  return t->MakeNode(std::move(out), {a},
                     [ai, self, start, count, total](Tape* t) {
    const Matrix& g = t->grad(self);
    Matrix da = t->NewZero(g.rows(), total);
    for (int64_t r = 0; r < g.rows(); ++r) {
      for (int64_t c = 0; c < count; ++c) da(r, start + c) = g(r, c);
    }
    t->AccumulateGrad(ai, std::move(da));
  });
}

Var SumAll(Var a) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  Matrix out = t->NewZero(1, 1);
  out(0, 0) = a.value().Sum();
  const int ai = a.id(), self = t->size();
  return t->MakeNode(std::move(out), {a}, [ai, self](Tape* t) {
    const double g = t->grad(self).scalar();
    const Matrix& av = t->value(ai);
    Matrix da = t->NewZero(av.rows(), av.cols());
    da.Fill(g);
    t->AccumulateGrad(ai, std::move(da));
  });
}

Var MeanAll(Var a) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  SBRL_CHECK_GT(a.value().size(), 0);
  Matrix out = t->NewZero(1, 1);
  out(0, 0) = a.value().Mean();
  const int ai = a.id(), self = t->size();
  return t->MakeNode(std::move(out), {a}, [ai, self](Tape* t) {
    const Matrix& av = t->value(ai);
    const double g =
        t->grad(self).scalar() / static_cast<double>(av.size());
    Matrix da = t->NewZero(av.rows(), av.cols());
    da.Fill(g);
    t->AccumulateGrad(ai, std::move(da));
  });
}

Var RowSum(Var a) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  const Matrix& av = a.value();
  Matrix out = t->NewZero(av.rows(), 1);
  for (int64_t r = 0; r < av.rows(); ++r) {
    double acc = 0.0;
    for (int64_t c = 0; c < av.cols(); ++c) acc += av(r, c);
    out(r, 0) = acc;
  }
  const int ai = a.id(), self = t->size();
  return t->MakeNode(std::move(out), {a}, [ai, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    Matrix da = t->NewZero(av.rows(), av.cols());
    for (int64_t r = 0; r < av.rows(); ++r) {
      const double gv = g(r, 0);
      for (int64_t c = 0; c < av.cols(); ++c) da(r, c) = gv;
    }
    t->AccumulateGrad(ai, std::move(da));
  });
}

Var ColSum(Var a) {
  Tape* t = a.tape();
  SBRL_CHECK(a.valid());
  const Matrix& av = a.value();
  Matrix out = t->NewZero(1, av.cols());
  for (int64_t r = 0; r < av.rows(); ++r) {
    for (int64_t c = 0; c < av.cols(); ++c) out(0, c) += av(r, c);
  }
  const int ai = a.id(), self = t->size();
  return t->MakeNode(std::move(out), {a}, [ai, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    Matrix da = t->NewZero(av.rows(), av.cols());
    for (int64_t r = 0; r < av.rows(); ++r) {
      for (int64_t c = 0; c < av.cols(); ++c) da(r, c) = g(0, c);
    }
    t->AccumulateGrad(ai, std::move(da));
  });
}

Var RowMean(Var a) {
  SBRL_CHECK_GT(a.cols(), 0);
  return Scale(RowSum(a), 1.0 / static_cast<double>(a.cols()));
}

Var ColMean(Var a) {
  SBRL_CHECK_GT(a.rows(), 0);
  return Scale(ColSum(a), 1.0 / static_cast<double>(a.rows()));
}

Var Matmul(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK_EQ(a.cols(), b.rows());
  Matrix out = t->NewZero(a.rows(), b.cols());
  MatmulInto(a.value(), b.value(), &out);
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b}, [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    const Matrix& bv = t->value(bi);
    if (t->requires_grad(ai)) {
      Matrix da = t->NewZero(av.rows(), av.cols());
      MatmulTransBInto(g, bv, &da);
      t->AccumulateGrad(ai, std::move(da));
    }
    if (t->requires_grad(bi)) {
      Matrix db = t->NewZero(bv.rows(), bv.cols());
      MatmulTransAInto(av, g, &db);
      t->AccumulateGrad(bi, std::move(db));
    }
  });
}

Var MatmulTransA(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  Matrix out = t->NewZero(av.cols(), bv.cols());
  MatmulTransAInto(av, bv, &out);
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b}, [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);  // (q x r)
    const Matrix& av = t->value(ai);  // (p x q)
    const Matrix& bv = t->value(bi);  // (p x r)
    if (t->requires_grad(ai)) {
      Matrix da = t->NewZero(av.rows(), av.cols());
      MatmulTransBInto(bv, g, &da);  // da = b g^T
      t->AccumulateGrad(ai, std::move(da));
    }
    if (t->requires_grad(bi)) {
      Matrix db = t->NewZero(bv.rows(), bv.cols());
      MatmulInto(av, g, &db);  // db = a g
      t->AccumulateGrad(bi, std::move(db));
    }
  });
}

Var BlockMatmulTransA(Var a, Var b, int64_t block,
                      const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK_GT(block, 0);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const int64_t num_pairs = static_cast<int64_t>(pairs.size());
  SBRL_CHECK_GT(num_pairs, 0);
  Matrix out = t->NewZero(num_pairs * block, block);
  BlockPairMatmulTransAInto(a.value(), b.value(), block, pairs, &out);
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b},
                     [ai, bi, self, block, pairs](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& av = t->value(ai);
    const Matrix& bv = t->value(bi);
    const bool need_a = t->requires_grad(ai);
    const bool need_b = t->requires_grad(bi);
    Matrix da, db;
    if (need_a) da = t->NewZero(av.rows(), av.cols());
    if (need_b) db = t->NewZero(bv.rows(), bv.cols());
    BlockPairMatmulTransAGradInto(g, av, bv, block, pairs,
                                  need_a ? &da : nullptr,
                                  need_b ? &db : nullptr);
    if (need_a) t->AccumulateGrad(ai, std::move(da));
    if (need_b) t->AccumulateGrad(bi, std::move(db));
  });
}

Var BlockWeightedCrossCov(
    Var f, Var w, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  Tape* t = SameTape(f, w);
  SBRL_CHECK_GT(block, 0);
  SBRL_CHECK_EQ(w.cols(), 1);
  SBRL_CHECK_EQ(w.rows(), f.rows());
  const int64_t num_pairs = static_cast<int64_t>(pairs.size());
  SBRL_CHECK_GT(num_pairs, 0);
  Matrix out = t->NewZero(num_pairs * block, block);
  BlockPairWeightedCrossInto(f.value(), w.value(), block, pairs, &out);
  const int fi = f.id(), wi = w.id(), self = t->size();
  return t->MakeNode(std::move(out), {f, w},
                     [fi, wi, self, block, pairs](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& fv = t->value(fi);
    const Matrix& wv = t->value(wi);
    const bool need_f = t->requires_grad(fi);
    const bool need_w = t->requires_grad(wi);
    Matrix df, dw;
    if (need_f) df = t->NewZero(fv.rows(), fv.cols());
    if (need_w) dw = t->NewZero(wv.rows(), 1);
    BlockPairWeightedCrossGradInto(g, fv, wv, block, pairs,
                                   need_f ? &df : nullptr,
                                   need_w ? &dw : nullptr);
    if (need_f) t->AccumulateGrad(fi, std::move(df));
    if (need_w) t->AccumulateGrad(wi, std::move(dw));
  });
}

Var PairHsicFrobenius(Var cross, Var means, int64_t block,
                      const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  Tape* t = SameTape(cross, means);
  SBRL_CHECK_GT(block, 0);
  const int64_t num_pairs = static_cast<int64_t>(pairs.size());
  SBRL_CHECK(cross.rows() == num_pairs * block && cross.cols() == block)
      << "cross blocks shape " << cross.value().ShapeString();
  SBRL_CHECK_EQ(means.rows(), 1);
  for (const auto& [pa, pb] : pairs) {
    SBRL_CHECK(pa >= 0 && (pa + 1) * block <= means.cols());
    SBRL_CHECK(pb >= 0 && (pb + 1) * block <= means.cols());
  }
  const Matrix& cv = cross.value();
  const Matrix& mv = means.value();
  const double* cd = cv.data();
  const double* md = mv.data();
  Matrix out = t->NewZero(1, 1);
  double acc = 0.0;
  for (int64_t p = 0; p < num_pairs; ++p) {
    const double* ma = md + pairs[static_cast<size_t>(p)].first * block;
    const double* mb = md + pairs[static_cast<size_t>(p)].second * block;
    const double* cblock = cd + p * block * block;
    double sub = 0.0;
    for (int64_t r = 0; r < block; ++r) {
      const double mar = ma[r];
      const double* crow = cblock + r * block;
      for (int64_t c = 0; c < block; ++c) {
        const double v = crow[c] - mar * mb[c];
        sub += v * v;
      }
    }
    acc += sub;
  }
  out(0, 0) = acc;
  const int ci = cross.id(), mi = means.id(), self = t->size();
  return t->MakeNode(std::move(out), {cross, means},
                     [ci, mi, self, block, pairs](Tape* t) {
    const double g = t->grad(self).scalar();
    const Matrix& cv = t->value(ci);
    const Matrix& mv = t->value(mi);
    const double* cd = cv.data();
    const double* md = mv.data();
    const int64_t num_pairs = static_cast<int64_t>(pairs.size());
    const bool need_c = t->requires_grad(ci);
    const bool need_m = t->requires_grad(mi);
    Matrix dc, dm;
    if (need_c) dc = t->NewZero(cv.rows(), cv.cols());
    if (need_m) dm = t->NewZero(1, mv.cols());
    double* dcd = need_c ? dc.data() : nullptr;
    double* dmd = need_m ? dm.data() : nullptr;
    // d/d cross_p(r, c) = 2 g resid; d/d mu_a(r) = -2 g sum_c resid
    // mu_b(c) and symmetrically for mu_b. The residual is recomputed
    // from the stored forward values instead of being kept alive.
    for (int64_t p = 0; p < num_pairs; ++p) {
      const int64_t ca = pairs[static_cast<size_t>(p)].first * block;
      const int64_t cb = pairs[static_cast<size_t>(p)].second * block;
      const double* ma = md + ca;
      const double* mb = md + cb;
      const double* cblock = cd + p * block * block;
      for (int64_t r = 0; r < block; ++r) {
        const double mar = ma[r];
        const double* crow = cblock + r * block;
        double dma_acc = 0.0;
        for (int64_t c = 0; c < block; ++c) {
          const double resid = crow[c] - mar * mb[c];
          const double dresid = 2.0 * g * resid;
          if (need_c) dcd[p * block * block + r * block + c] = dresid;
          if (need_m) {
            dma_acc += dresid * mb[c];
            dmd[cb + c] -= dresid * mar;
          }
        }
        if (need_m) dmd[ca + r] -= dma_acc;
      }
    }
    if (need_c) t->AccumulateGrad(ci, std::move(dc));
    if (need_m) t->AccumulateGrad(mi, std::move(dm));
  });
}

Var Affine(Var x, Var w, Var b) {
  Tape* t = SameTape(x, w);
  SameTape(w, b);
  SBRL_CHECK_EQ(x.cols(), w.rows());
  SBRL_CHECK_EQ(b.rows(), 1);
  SBRL_CHECK_EQ(b.cols(), w.cols());
  const Matrix& xv = x.value();
  const Matrix& wv = w.value();
  const Matrix& bv = b.value();
  Matrix out = t->NewZero(xv.rows(), wv.cols());
  MatmulInto(xv, wv, &out);
  for (int64_t r = 0; r < out.rows(); ++r) {
    for (int64_t c = 0; c < out.cols(); ++c) out(r, c) += bv(0, c);
  }
  const int xi = x.id(), wi = w.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {x, w, b},
                     [xi, wi, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& xv = t->value(xi);
    const Matrix& wv = t->value(wi);
    // The first layer's input is a Constant: skip the full-batch dx
    // product (the largest single matmul of every backward pass) when
    // nothing upstream wants it.
    if (t->requires_grad(xi)) {
      Matrix dx = t->NewZero(xv.rows(), xv.cols());
      MatmulTransBInto(g, wv, &dx);
      t->AccumulateGrad(xi, std::move(dx));
    }
    if (t->requires_grad(wi)) {
      Matrix dw = t->NewZero(wv.rows(), wv.cols());
      MatmulTransAInto(xv, g, &dw);
      t->AccumulateGrad(wi, std::move(dw));
    }
    if (t->requires_grad(bi)) {
      Matrix db = t->NewZero(1, g.cols());
      for (int64_t r = 0; r < g.rows(); ++r) {
        for (int64_t c = 0; c < g.cols(); ++c) db(0, c) += g(r, c);
      }
      t->AccumulateGrad(bi, std::move(db));
    }
  });
}

namespace {

/// Shared backward tail of the fused network-step ops: given
/// d(pre-activation) `dpre`, emits dx / dW / db with the same
/// requires_grad gating as ops::Affine (a constant first-layer input
/// skips the full-batch dx matmul). Consumes `dpre` (recycled).
void AffineBackwardFromDpre(Tape* t, int xi, int wi, int bi, Matrix&& dpre) {
  const Matrix& xv = t->value(xi);
  const Matrix& wv = t->value(wi);
  if (t->requires_grad(xi)) {
    Matrix dx = t->NewZero(xv.rows(), xv.cols());
    MatmulTransBInto(dpre, wv, &dx);
    t->AccumulateGrad(xi, std::move(dx));
  }
  if (t->requires_grad(wi)) {
    Matrix dw = t->NewZero(wv.rows(), wv.cols());
    MatmulTransAInto(xv, dpre, &dw);
    t->AccumulateGrad(wi, std::move(dw));
  }
  if (t->requires_grad(bi)) {
    Matrix db = t->NewZero(1, dpre.cols());
    for (int64_t r = 0; r < dpre.rows(); ++r) {
      for (int64_t c = 0; c < dpre.cols(); ++c) db(0, c) += dpre(r, c);
    }
    t->AccumulateGrad(bi, std::move(db));
  }
  t->Recycle(std::move(dpre));
}

/// Broadcast-adds the (1 x m) row at `bd` to every row of the
/// (n x m) buffer at `pd`, in place. Shared by the tape ops and the
/// serving value kernels so both paths add the bias in the same order.
void AddRowBroadcastInPlace(int64_t n, int64_t m, double* pd,
                            const double* bd) {
  RowwiseFor(n, m, [pd, bd, m](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      double* prow = pd + r * m;
      for (int64_t c = 0; c < m; ++c) prow[c] += bd[c];
    }
  });
}

/// Bias add and activation in one pass over a matmul output at `od`,
/// in place; the pre-activation is overwritten and never kept. This is
/// THE fused-affine forward loop — AffineAct's tape node and
/// AffineActValue both run it, which is what makes serving forwards
/// bitwise identical to training-path inference forwards.
template <typename Act>
void BiasActInPlace(int64_t n, int64_t m, double* od, const double* bd) {
  RowwiseFor(n, m, [od, bd, m](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      double* orow = od + r * m;
      for (int64_t c = 0; c < m; ++c) {
        orow[c] = Act::F(orow[c] + bd[c]);
      }
    }
  });
}

/// Frozen-statistics batch-norm + activation pass over the biased
/// affine output at `od`, in place: h = (od - mean) * inv_std,
/// od = act(h * gamma + beta). When `hd` is non-null the normalized
/// activations are also stored there (the tape op keeps them for its
/// backward); the serving value kernel passes nullptr. Shared for the
/// same bitwise-parity reason as BiasActInPlace.
template <typename Act>
void BnInferActInPlace(int64_t n, int64_t m, double* od, double* hd,
                       const double* md, const double* sd, const double* gd,
                       const double* bd) {
  RowwiseFor(n, m, [hd, od, md, sd, gd, bd, m](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t c = 0; c < m; ++c) {
        const int64_t i = r * m + c;
        const double h = (od[i] + -1.0 * md[c]) * sd[c];
        if (hd != nullptr) hd[i] = h;
        od[i] = Act::F(h * gd[c] + bd[c]);
      }
    }
  });
}

/// Affine forward into a pooled buffer: x W + broadcast b.
Matrix AffineForwardInto(Tape* t, const Matrix& xv, const Matrix& wv,
                         const Matrix& bv) {
  const int64_t n = xv.rows(), m = wv.cols();
  Matrix pre = t->NewZero(n, m);
  MatmulInto(xv, wv, &pre);
  AddRowBroadcastInPlace(n, m, pre.data(), bv.data());
  return pre;
}

/// d(pre-activation) of a fused op, reconstructed from the upstream
/// gradient and the stored POST-activation output alone (see the Act
/// policy contract above). Returned in a pooled buffer.
template <typename Act>
Matrix DpreFromOutput(Tape* t, const Matrix& g, const Matrix& yv) {
  Matrix dpre = t->NewZero(yv.rows(), yv.cols());
  const double* gd = g.data();
  const double* yd = yv.data();
  double* pd = dpre.data();
  ElementwiseFor(yv.size(), [gd, yd, pd](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pd[i] = gd[i] * Act::D(yd[i]);
  });
  return dpre;
}

/// AffineAct body, templated on the activation policy so the
/// per-element calls inline like the reference UnaryOp lambdas.
template <typename Act>
Var AffineActImpl(Var x, Var w, Var b) {
  Tape* t = SameTape(x, w);
  SameTape(w, b);
  SBRL_CHECK_EQ(x.cols(), w.rows());
  SBRL_CHECK_EQ(b.rows(), 1);
  SBRL_CHECK_EQ(b.cols(), w.cols());
  const Matrix& xv = x.value();
  const Matrix& wv = w.value();
  const Matrix& bv = b.value();
  const int64_t n = xv.rows(), m = wv.cols();
  Matrix out = t->NewZero(n, m);
  MatmulInto(xv, wv, &out);
  BiasActInPlace<Act>(n, m, out.data(), bv.data());
  const int xi = x.id(), wi = w.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {x, w, b},
                     [xi, wi, bi, self](Tape* t) {
    AffineBackwardFromDpre(
        t, xi, wi, bi,
        DpreFromOutput<Act>(t, t->grad(self), t->value(self)));
  });
}

}  // namespace

Var AffineAct(Var x, Var w, Var b, ActKind act) {
  return DispatchAct(act, [&](auto policy) {
    return AffineActImpl<decltype(policy)>(x, w, b);
  });
}

namespace {

/// Tape/shape contract shared by the fused batch-norm ops; returns the
/// common tape.
Tape* CheckAffineBnShapes(Var x, Var w, Var b, Var gamma, Var beta) {
  Tape* t = SameTape(x, w);
  SameTape(w, b);
  SameTape(b, gamma);
  SameTape(gamma, beta);
  SBRL_CHECK_EQ(x.cols(), w.rows());
  SBRL_CHECK_EQ(b.rows(), 1);
  SBRL_CHECK_EQ(b.cols(), w.cols());
  SBRL_CHECK(gamma.rows() == 1 && gamma.cols() == w.cols());
  SBRL_CHECK(beta.rows() == 1 && beta.cols() == w.cols());
  return t;
}

/// dgamma / dbeta column sums of a fused batch-norm backward,
/// accumulated in ascending row order (g2 = dL/d(gamma*xhat + beta)).
void BnGammaBetaSums(const Matrix& g2, const Matrix& xhat, Matrix* dgamma,
                     Matrix* dbeta) {
  const int64_t n = g2.rows(), m = g2.cols();
  *dgamma = Matrix(1, m);
  *dbeta = Matrix(1, m);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < m; ++c) {
      (*dgamma)(0, c) += g2(r, c) * xhat(r, c);
      (*dbeta)(0, c) += g2(r, c);
    }
  }
}

/// Shared tail of both fused batch-norm backwards: emits the
/// gamma/beta gradients, runs the affine tail on `dpre`, and recycles
/// the closure-held buffers. Consumes every matrix argument.
void FinishBnBackward(Tape* t, int xi, int wi, int bi, int gi, int ti,
                      Matrix&& dgamma, Matrix&& dbeta, Matrix&& dpre,
                      Matrix&& xhat, Matrix&& inv_std) {
  t->AccumulateGrad(gi, std::move(dgamma));
  t->AccumulateGrad(ti, std::move(dbeta));
  AffineBackwardFromDpre(t, xi, wi, bi, std::move(dpre));
  t->Recycle(std::move(xhat));
  t->Recycle(std::move(inv_std));
}

/// AffineBatchNormAct body, templated on the activation policy.
template <typename Act>
Var AffineBatchNormActImpl(Var x, Var w, Var b, Var gamma, Var beta,
                           double eps, Matrix* batch_mean,
                           Matrix* batch_var) {
  Tape* t = CheckAffineBnShapes(x, w, b, gamma, beta);
  SBRL_CHECK(batch_mean != nullptr && batch_var != nullptr);
  SBRL_CHECK_GT(x.rows(), 1) << "batch norm needs more than one sample";
  const Matrix& xv = x.value();
  const Matrix& wv = w.value();
  const int64_t n = xv.rows(), m = wv.cols();

  Matrix pre = AffineForwardInto(t, xv, wv, b.value());
  // Batch statistics, accumulated in ascending row order — the same
  // left-fold the reference ColSum performs, so mu / var are bitwise
  // identical to the ops::ColMean composition.
  const double inv_n = 1.0 / static_cast<double>(n);
  Matrix mu(1, m);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < m; ++c) mu(0, c) += pre(r, c);
  }
  for (int64_t c = 0; c < m; ++c) mu(0, c) = inv_n * mu(0, c);
  // centered = pre + (-mu), written into the xhat buffer.
  Matrix xhat = t->NewZero(n, m);
  {
    double* hd = xhat.data();
    const double* pd = pre.data();
    const double* md = mu.data();
    RowwiseFor(n, m, [hd, pd, md, m](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        for (int64_t c = 0; c < m; ++c) {
          hd[r * m + c] = pd[r * m + c] + -1.0 * md[c];
        }
      }
    });
  }
  Matrix var(1, m);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < m; ++c) {
      var(0, c) += xhat(r, c) * xhat(r, c);
    }
  }
  for (int64_t c = 0; c < m; ++c) var(0, c) = inv_n * var(0, c);
  Matrix inv_std = t->NewZero(1, m);
  for (int64_t c = 0; c < m; ++c) {
    inv_std(0, c) = 1.0 / std::sqrt(var(0, c) + eps);
  }
  // xhat = centered * inv_std; out = act(xhat * gamma + beta) reuses
  // the pre buffer — the pre-activation is consumed, never recorded.
  {
    double* hd = xhat.data();
    double* od = pre.data();
    const double* sd = inv_std.data();
    const double* gd = gamma.value().data();
    const double* bd = beta.value().data();
    RowwiseFor(n, m, [hd, od, sd, gd, bd, m](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        for (int64_t c = 0; c < m; ++c) {
          const double h = hd[r * m + c] * sd[c];
          hd[r * m + c] = h;
          od[r * m + c] = Act::F(h * gd[c] + bd[c]);
        }
      }
    });
  }
  *batch_mean = std::move(mu);
  *batch_var = std::move(var);

  const int xi = x.id(), wi = w.id(), bi = b.id();
  const int gi = gamma.id(), ti = beta.id();
  const int self = t->size();
  return t->MakeNode(
      std::move(pre), {x, w, b, gamma, beta},
      [xi, wi, bi, gi, ti, self, xhat = std::move(xhat),
       inv_std = std::move(inv_std)](Tape* t) mutable {
        const Matrix& g = t->grad(self);
        const Matrix& yv = t->value(self);
        const Matrix& gv = t->value(gi);
        const int64_t n = yv.rows(), m = yv.cols();
        const double inv_n = 1.0 / static_cast<double>(n);
        // g2 = dL/d(gamma * xhat + beta), reconstructed from the
        // output; the buffer is reused in place for dpre below.
        Matrix tmp = DpreFromOutput<Act>(t, g, yv);
        Matrix dgamma, dbeta;
        BnGammaBetaSums(tmp, xhat, &dgamma, &dbeta);
        // Closed-form batch-norm gradient: with dxhat = g2 * gamma,
        //   dpre = inv_std * (dxhat - mean(dxhat) - xhat*mean(dxhat*xhat))
        // where the column means reuse the dgamma / dbeta sums.
        {
          double* td = tmp.data();
          const double* hd = xhat.data();
          const double* sd = inv_std.data();
          const double* gmd = gv.data();
          const double* dgd = dgamma.data();
          const double* dbd = dbeta.data();
          RowwiseFor(n, m,
                     [td, hd, sd, gmd, dgd, dbd, m, inv_n](int64_t r0,
                                                           int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
              for (int64_t c = 0; c < m; ++c) {
                const int64_t i = r * m + c;
                td[i] = sd[c] * (gmd[c] * td[i] - inv_n * gmd[c] * dbd[c] -
                                 hd[i] * inv_n * gmd[c] * dgd[c]);
              }
            }
          });
        }
        FinishBnBackward(t, xi, wi, bi, gi, ti, std::move(dgamma),
                         std::move(dbeta), std::move(tmp), std::move(xhat),
                         std::move(inv_std));
      });
}

/// AffineBatchNormInferAct body, templated on the activation policy.
template <typename Act>
Var AffineBatchNormInferActImpl(Var x, Var w, Var b, Var gamma, Var beta,
                                const Matrix& running_mean,
                                const Matrix& running_var, double eps) {
  Tape* t = CheckAffineBnShapes(x, w, b, gamma, beta);
  SBRL_CHECK(running_mean.rows() == 1 && running_mean.cols() == w.cols());
  SBRL_CHECK(running_var.same_shape(running_mean));
  const Matrix& xv = x.value();
  const Matrix& wv = w.value();
  const int64_t n = xv.rows(), m = wv.cols();

  Matrix pre = AffineForwardInto(t, xv, wv, b.value());
  Matrix inv_std = t->NewZero(1, m);
  for (int64_t c = 0; c < m; ++c) {
    inv_std(0, c) = 1.0 / std::sqrt(running_var(0, c) + eps);
  }
  Matrix xhat = t->NewZero(n, m);
  BnInferActInPlace<Act>(n, m, pre.data(), xhat.data(), running_mean.data(),
                         inv_std.data(), gamma.value().data(),
                         beta.value().data());
  const int xi = x.id(), wi = w.id(), bi = b.id();
  const int gi = gamma.id(), ti = beta.id();
  const int self = t->size();
  return t->MakeNode(
      std::move(pre), {x, w, b, gamma, beta},
      [xi, wi, bi, gi, ti, self, xhat = std::move(xhat),
       inv_std = std::move(inv_std)](Tape* t) mutable {
        const Matrix& g = t->grad(self);
        const Matrix& yv = t->value(self);
        const Matrix& gv = t->value(gi);
        const int64_t n = yv.rows(), m = yv.cols();
        // g2 = dL/d(gamma * xhat + beta), reconstructed from the
        // output; the buffer is reused in place for dpre below.
        Matrix tmp = DpreFromOutput<Act>(t, g, yv);
        Matrix dgamma, dbeta;
        BnGammaBetaSums(tmp, xhat, &dgamma, &dbeta);
        // Frozen statistics: dpre is a plain per-column rescale.
        {
          double* td = tmp.data();
          const double* sd = inv_std.data();
          const double* gmd = gv.data();
          RowwiseFor(n, m, [td, sd, gmd, m](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
              for (int64_t c = 0; c < m; ++c) {
                td[r * m + c] = td[r * m + c] * gmd[c] * sd[c];
              }
            }
          });
        }
        FinishBnBackward(t, xi, wi, bi, gi, ti, std::move(dgamma),
                         std::move(dbeta), std::move(tmp), std::move(xhat),
                         std::move(inv_std));
      });
}

}  // namespace

Var AffineBatchNormAct(Var x, Var w, Var b, Var gamma, Var beta, double eps,
                       ActKind act, Matrix* batch_mean, Matrix* batch_var) {
  return DispatchAct(act, [&](auto policy) {
    return AffineBatchNormActImpl<decltype(policy)>(x, w, b, gamma, beta,
                                                    eps, batch_mean,
                                                    batch_var);
  });
}

Var AffineBatchNormInferAct(Var x, Var w, Var b, Var gamma, Var beta,
                            const Matrix& running_mean,
                            const Matrix& running_var, double eps,
                            ActKind act) {
  return DispatchAct(act, [&](auto policy) {
    return AffineBatchNormInferActImpl<decltype(policy)>(
        x, w, b, gamma, beta, running_mean, running_var, eps);
  });
}

Matrix AffineActValue(const Matrix& x, const Matrix& w, const Matrix& b,
                      ActKind act) {
  SBRL_CHECK_EQ(x.cols(), w.rows());
  SBRL_CHECK(b.rows() == 1 && b.cols() == w.cols());
  const int64_t n = x.rows(), m = w.cols();
  Matrix out(n, m);
  MatmulInto(x, w, &out);
  DispatchAct(act, [&](auto policy) {
    BiasActInPlace<decltype(policy)>(n, m, out.data(), b.data());
  });
  return out;
}

Matrix AffineBatchNormInferActValue(const Matrix& x, const Matrix& w,
                                    const Matrix& b, const Matrix& gamma,
                                    const Matrix& beta,
                                    const Matrix& running_mean,
                                    const Matrix& running_var, double eps,
                                    ActKind act) {
  SBRL_CHECK_EQ(x.cols(), w.rows());
  SBRL_CHECK(b.rows() == 1 && b.cols() == w.cols());
  SBRL_CHECK(gamma.rows() == 1 && gamma.cols() == w.cols());
  SBRL_CHECK(beta.same_shape(gamma));
  SBRL_CHECK(running_mean.rows() == 1 && running_mean.cols() == w.cols());
  SBRL_CHECK(running_var.same_shape(running_mean));
  const int64_t n = x.rows(), m = w.cols();
  Matrix pre(n, m);
  MatmulInto(x, w, &pre);
  AddRowBroadcastInPlace(n, m, pre.data(), b.data());
  Matrix inv_std(1, m);
  for (int64_t c = 0; c < m; ++c) {
    inv_std(0, c) = 1.0 / std::sqrt(running_var(0, c) + eps);
  }
  DispatchAct(act, [&](auto policy) {
    BnInferActInPlace<decltype(policy)>(n, m, pre.data(), /*hd=*/nullptr,
                                        running_mean.data(), inv_std.data(),
                                        gamma.data(), beta.data());
  });
  return pre;
}

Matrix NormalizeRowsValue(const Matrix& a, double eps) {
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    // Ascending-column accumulation of the squared row, matching
    // Square -> RowSum exactly; then the same sqrt/reciprocal chain.
    double acc = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) acc += a(r, c) * a(r, c);
    const double inv = 1.0 / std::sqrt(acc + eps);
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) * inv;
  }
  return out;
}

Matrix ConcatColsValue(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const int64_t ac = a.cols(), bc = b.cols();
  Matrix out(a.rows(), ac + bc);
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < ac; ++c) out(r, c) = a(r, c);
    for (int64_t c = 0; c < bc; ++c) out(r, ac + c) = b(r, c);
  }
  return out;
}

Var MatmulTransACols(Var a, int64_t a_start, int64_t a_cols, Var b,
                     int64_t b_start, int64_t b_cols) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  SBRL_CHECK(a_start >= 0 && a_cols >= 1 && a_start + a_cols <= a.cols());
  SBRL_CHECK(b_start >= 0 && b_cols >= 1 && b_start + b_cols <= b.cols());
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  const int64_t p = av.rows();
  const int64_t a_stride = av.cols(), b_stride = bv.cols();
  Matrix out = t->NewZero(a_cols, b_cols);
  {
    const double* ad = av.data();
    const double* bd = bv.data();
    double* od = out.data();
    // Ascending-row accumulation per output element: bitwise identical
    // to MatmulTransA on copied column slices.
    for (int64_t r = 0; r < p; ++r) {
      const double* arow = ad + r * a_stride + a_start;
      const double* brow = bd + r * b_stride + b_start;
      for (int64_t i = 0; i < a_cols; ++i) {
        const double a_ri = arow[i];
        double* orow = od + i * b_cols;
        for (int64_t j = 0; j < b_cols; ++j) orow[j] += a_ri * brow[j];
      }
    }
  }
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(std::move(out), {a, b},
                     [ai, bi, self, a_start, a_cols, b_start,
                      b_cols](Tape* t) {
    const Matrix& g = t->grad(self);  // (a_cols x b_cols)
    const Matrix& av = t->value(ai);
    const Matrix& bv = t->value(bi);
    const int64_t p = av.rows();
    const int64_t a_stride = av.cols(), b_stride = bv.cols();
    if (t->requires_grad(ai)) {
      // da[:, a_window] = b[:, b_window] * g^T, window-sized only.
      Matrix da = t->NewZero(p, a_cols);
      for (int64_t r = 0; r < p; ++r) {
        const double* brow = bv.data() + r * b_stride + b_start;
        for (int64_t i = 0; i < a_cols; ++i) {
          double acc = 0.0;
          for (int64_t j = 0; j < b_cols; ++j) acc += brow[j] * g(i, j);
          da(r, i) = acc;
        }
      }
      t->AccumulateGradCols(ai, a_start, std::move(da));
    }
    if (t->requires_grad(bi)) {
      // db[:, b_window] = a[:, a_window] * g, window-sized only.
      Matrix db = t->NewZero(p, b_cols);
      for (int64_t r = 0; r < p; ++r) {
        const double* arow = av.data() + r * a_stride + a_start;
        for (int64_t j = 0; j < b_cols; ++j) {
          double acc = 0.0;
          for (int64_t i = 0; i < a_cols; ++i) acc += arow[i] * g(i, j);
          db(r, j) = acc;
        }
      }
      t->AccumulateGradCols(bi, b_start, std::move(db));
    }
  });
}

Var SigmoidCrossEntropyWithLogits(Var logits, const Matrix& labels) {
  Tape* t = logits.tape();
  SBRL_CHECK(logits.valid());
  SBRL_CHECK(logits.value().same_shape(labels));
  const Matrix& x = logits.value();
  Matrix out = t->NewZero(x.rows(), x.cols());
  for (int64_t i = 0; i < x.size(); ++i) {
    out[i] = std::max(x[i], 0.0) - x[i] * labels[i] +
             std::log1p(std::exp(-std::abs(x[i])));
  }
  const int ai = logits.id(), self = t->size();
  return t->MakeNode(std::move(out), {logits}, [ai, self, labels](Tape* t) {
    const Matrix& g = t->grad(self);
    const Matrix& x = t->value(ai);
    Matrix da = t->NewZero(x.rows(), x.cols());
    for (int64_t i = 0; i < x.size(); ++i) {
      da[i] = g[i] * (StableSigmoid(x[i]) - labels[i]);
    }
    t->AccumulateGrad(ai, std::move(da));
  });
}

Var PairwiseSqDist(Var a, Var b) {
  Tape* t = SameTape(a, b);
  SBRL_CHECK_EQ(a.cols(), b.cols());
  const int ai = a.id(), bi = b.id(), self = t->size();
  return t->MakeNode(PairwiseSquaredDistances(a.value(), b.value()), {a, b},
                     [ai, bi, self](Tape* t) {
    const Matrix& g = t->grad(self);  // (n x m)
    const Matrix& av = t->value(ai);  // (n x d)
    const Matrix& bv = t->value(bi);  // (m x d)
    // dD_ij/da_i = 2 (a_i - b_j)  =>  da = 2 diag(rowsum g) a - 2 g b
    Matrix grow = sbrl::RowSum(g);                     // (n x 1)
    Matrix da = MulColBroadcast(av, grow) * 2.0;       // 2 a_i sum_j g_ij
    da -= sbrl::Matmul(g, bv) * 2.0;
    // dD_ij/db_j = 2 (b_j - a_i)  =>  db = 2 diag(colsum g) b - 2 g^T a
    Matrix gcol = sbrl::Transpose(sbrl::ColSum(g));    // (m x 1)
    Matrix db = MulColBroadcast(bv, gcol) * 2.0;
    db -= MatmulTransA(g, av) * 2.0;
    t->AccumulateGrad(ai, std::move(da));
    t->AccumulateGrad(bi, std::move(db));
  });
}

Var NormalizeRows(Var a, double eps) {
  Var sq_norm = RowSum(Square(a));            // (n x 1)
  Var inv = Reciprocal(Sqrt(AddConst(sq_norm, eps)));
  return MulCol(a, inv);
}

Var WeightedMean(Var values, Var w) {
  SBRL_CHECK_EQ(values.cols(), 1);
  SBRL_CHECK_EQ(w.cols(), 1);
  SBRL_CHECK_EQ(values.rows(), w.rows());
  Var numer = SumAll(Mul(values, w));
  Var denom = SumAll(w);
  return DivScalar(numer, denom);
}

}  // namespace ops
}  // namespace sbrl

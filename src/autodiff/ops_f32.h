#ifndef SBRL_AUTODIFF_OPS_F32_H_
#define SBRL_AUTODIFF_OPS_F32_H_

#include "autodiff/ops.h"
#include "tensor/matrix_f32.h"

namespace sbrl {
namespace ops {

/// f32 twins of the tape-free serving value kernels (see the f64
/// originals in autodiff/ops.h). Each restates its f64 twin's loop
/// shape on floats — matmuls through the LinalgKernelsF32 tables,
/// activations and normalizations in float math — so the f32 serving
/// forward is deterministic per ISA level while tracking the f64
/// scorer only to the per-kernel budgets documented in
/// tests/precision_test.cc. Training never calls these.

/// f32 act(x W + b): the f32 fused-affine forward.
MatrixF32 AffineActValueF32(const MatrixF32& x, const MatrixF32& w,
                            const MatrixF32& b, ActKind act);

/// f32 frozen-statistics batch-norm affine forward:
/// act(((x W + b) - running_mean) * inv_std * gamma + beta), with
/// inv_std computed as 1/sqrt(var + eps) in float.
MatrixF32 AffineBatchNormInferActValueF32(
    const MatrixF32& x, const MatrixF32& w, const MatrixF32& b,
    const MatrixF32& gamma, const MatrixF32& beta,
    const MatrixF32& running_mean, const MatrixF32& running_var, double eps,
    ActKind act);

/// f32 row L2 normalization a(r, :) / sqrt(|a(r, :)|^2 + eps),
/// ascending-column accumulation like the f64 kernel.
MatrixF32 NormalizeRowsValueF32(const MatrixF32& a, double eps = 1e-9);

/// f32 horizontal concatenation [a | b].
MatrixF32 ConcatColsValueF32(const MatrixF32& a, const MatrixF32& b);

}  // namespace ops
}  // namespace sbrl

#endif  // SBRL_AUTODIFF_OPS_F32_H_

#include "data/synthetic.h"

#include <cmath>

#include "data/sampling.h"

namespace sbrl {

namespace {
double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

SyntheticModel::SyntheticModel(const SyntheticDims& dims, uint64_t seed,
                               int64_t calibration_pool)
    : dims_(dims) {
  SBRL_CHECK_GT(dims.m_i, 0);
  SBRL_CHECK_GT(dims.m_c, 0);
  SBRL_CHECK_GT(dims.m_a, 0);
  SBRL_CHECK_GT(dims.m_v, 0);
  Rng rng(seed);
  theta_t_ = rng.Rand(dims.m_i + dims.m_c, 1, 8.0, 16.0);
  theta_y0_ = rng.Rand(dims.m_c + dims.m_a, 1, 8.0, 16.0);
  theta_y1_ = rng.Rand(dims.m_c + dims.m_a, 1, 8.0, 16.0);

  // Calibrate the outcome thresholds on a large unbiased pool so the
  // structural equations (and hence P(Y|X)) are environment-invariant.
  SBRL_CHECK_GT(calibration_pool, 100);
  Rng cal_rng = rng.Fork();
  const double denom = 10.0 * static_cast<double>(dims.m_c + dims.m_a);
  double sum0 = 0.0, sum1 = 0.0;
  for (int64_t i = 0; i < calibration_pool; ++i) {
    double z0 = 0.0, z1 = 0.0;
    for (int64_t j = 0; j < dims.m_c + dims.m_a; ++j) {
      const double xj = cal_rng.Normal();
      z0 += theta_y0_(j, 0) * xj;
      z1 += theta_y1_(j, 0) * xj * xj;
    }
    sum0 += z0 / denom;
    sum1 += z1 / denom;
  }
  thr0_ = sum0 / static_cast<double>(calibration_pool);
  thr1_ = sum1 / static_cast<double>(calibration_pool);
}

SyntheticModel::Unit SyntheticModel::DrawUnit(Rng& rng) const {
  Unit unit;
  const int64_t m = dims_.total();
  unit.x.resize(static_cast<size_t>(m));
  for (int64_t j = 0; j < m; ++j) {
    unit.x[static_cast<size_t>(j)] = rng.Normal();
  }
  // Treatment from instruments + confounders (paper: z = theta_t.X_IC/10 + xi).
  double zt = 0.0;
  for (int64_t j = 0; j < dims_.m_i + dims_.m_c; ++j) {
    zt += theta_t_(j, 0) * unit.x[static_cast<size_t>(j)];
  }
  zt = zt / 10.0 + rng.Normal();
  unit.t = rng.Bernoulli(Sigmoid(zt)) ? 1 : 0;
  // Potential outcomes from confounders + adjusters.
  const double denom = 10.0 * static_cast<double>(dims_.m_c + dims_.m_a);
  double z0 = 0.0, z1 = 0.0;
  for (int64_t j = 0; j < dims_.m_c + dims_.m_a; ++j) {
    const double xj = unit.x[static_cast<size_t>(dims_.m_i + j)];
    z0 += theta_y0_(j, 0) * xj;
    z1 += theta_y1_(j, 0) * xj * xj;
  }
  unit.y0 = (z0 / denom > thr0_) ? 1.0 : 0.0;
  unit.y1 = (z1 / denom > thr1_) ? 1.0 : 0.0;
  return unit;
}

namespace {

/// splitmix64-style mix of (env_seed, chunk_index) into a chunk Rng
/// seed; a pure counter-based draw keyed the same way as the RFF slot
/// seeds, so chunk content is traversal-order independent.
uint64_t ChunkSeed(uint64_t env_seed, uint64_t chunk_index) {
  uint64_t z = env_seed + 0x9e3779b97f4a7c15ULL * (chunk_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

CausalDataset SyntheticModel::SampleEnvironmentChunk(
    int64_t rows, double rho, uint64_t env_seed, int64_t chunk_index) const {
  SBRL_CHECK_GE(chunk_index, 0);
  Rng rng(ChunkSeed(env_seed, static_cast<uint64_t>(chunk_index)));
  if (rho == 1.0) {
    return SampleWithRng(rows, /*biased=*/false, rho, rng);
  }
  SBRL_CHECK_GT(std::abs(rho), 1.0) << "bias rate must satisfy |rho| > 1";
  return SampleWithRng(rows, /*biased=*/true, rho, rng);
}

CausalDataset SyntheticModel::SampleEnvironment(int64_t n, double rho,
                                                uint64_t env_seed) const {
  SBRL_CHECK_GT(n, 0);
  SBRL_CHECK_GT(std::abs(rho), 1.0) << "bias rate must satisfy |rho| > 1";
  Rng rng(env_seed);
  return SampleWithRng(n, /*biased=*/true, rho, rng);
}

CausalDataset SyntheticModel::SampleWithRng(int64_t n, bool biased,
                                            double rho, Rng& rng) const {
  SBRL_CHECK_GT(n, 0);
  CausalDataset data;
  data.x = Matrix(n, dims_.total());
  data.y = Matrix(n, 1);
  data.mu0 = Matrix(n, 1);
  data.mu1 = Matrix(n, 1);
  data.t.resize(static_cast<size_t>(n));
  data.binary_outcome = true;

  const int64_t max_attempts = n * 100000;
  int64_t accepted = 0;
  int64_t attempts = 0;
  std::vector<double> unstable(static_cast<size_t>(dims_.m_v));
  while (accepted < n) {
    SBRL_CHECK_LT(attempts, max_attempts)
        << "rejection sampling failed to reach n=" << n
        << " at rho=" << rho << "; acceptance rate too low";
    ++attempts;
    Unit unit = DrawUnit(rng);
    if (biased) {
      for (int64_t v = 0; v < dims_.m_v; ++v) {
        unstable[static_cast<size_t>(v)] =
            unit.x[static_cast<size_t>(unstable_begin() + v)];
      }
      const double log_w =
          BiasedSelectionLogWeight(unit.y1 - unit.y0, unstable, rho);
      if (!AcceptWithLogProb(log_w, rng)) continue;
    }
    for (int64_t j = 0; j < dims_.total(); ++j) {
      data.x(accepted, j) = unit.x[static_cast<size_t>(j)];
    }
    data.t[static_cast<size_t>(accepted)] = unit.t;
    data.mu0(accepted, 0) = unit.y0;
    data.mu1(accepted, 0) = unit.y1;
    data.y(accepted, 0) = unit.t == 1 ? unit.y1 : unit.y0;
    ++accepted;
  }
  return data;
}

CausalDataset SyntheticModel::SampleUnbiased(int64_t n,
                                             uint64_t env_seed) const {
  SBRL_CHECK_GT(n, 0);
  Rng rng(env_seed);
  return SampleWithRng(n, /*biased=*/false, /*rho=*/1.0, rng);
}

}  // namespace sbrl

#ifndef SBRL_DATA_CSV_H_
#define SBRL_DATA_CSV_H_

#include <string>

#include "common/statusor.h"
#include "data/causal_dataset.h"

namespace sbrl {

/// Writes a CausalDataset to `path` as CSV with header
/// x0,...,x{d-1},t,y,mu0,mu1 and a leading metadata comment line
/// "# binary_outcome=<0|1>". Returns an error Status on I/O failure.
Status SaveCausalDatasetCsv(const CausalDataset& data,
                            const std::string& path);

/// Reads a CausalDataset previously written by SaveCausalDatasetCsv.
/// Returns InvalidArgument on malformed content and NotFound when the
/// file cannot be opened.
StatusOr<CausalDataset> LoadCausalDatasetCsv(const std::string& path);

}  // namespace sbrl

#endif  // SBRL_DATA_CSV_H_

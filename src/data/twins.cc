#include "data/twins.h"

#include <cmath>

#include "data/sampling.h"
#include "data/split.h"
#include "tensor/random.h"

namespace sbrl {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

RealWorldSplits MakeTwinsReplication(const TwinsConfig& config,
                                     uint64_t seed) {
  SBRL_CHECK_GT(config.n, 10);
  SBRL_CHECK_GT(config.real_covariates, 4);
  Rng rng(seed);
  const int64_t n = config.n;
  const int64_t d_real = config.real_covariates;
  const int64_t d = config.total_covariates();
  const int64_t n_bin = d_real * 2 / 3;  // most Twins covariates are coded

  // Latent-factor loadings shared by all units (fixed per replication).
  const int64_t n_factors = 3;
  Matrix loadings = rng.Randn(n_factors, d_real, 0.0, 0.8);
  Matrix bin_intercept = rng.Randn(1, d_real, 0.0, 0.5);

  // Outcome model: logistic mortality with shared main effects and a
  // small heterogeneous modifier so ITE varies across units. The
  // treated (heavier twin) intercept is lower: heavier twins die less.
  Matrix beta = rng.Randn(d_real, 1, 0.0, 0.35);
  Matrix beta_het = rng.Randn(d_real, 1, 0.0, 0.25);
  const double intercept0 = -1.6;  // ~17% base mortality for lighter twin
  const double intercept1 = -2.1;  // heavier twin lower base mortality

  // Treatment model (paper): w ~ U(-0.1, 0.1) over X_IC, eta ~ N(0, 0.1).
  Matrix w_t = rng.Rand(d_real + config.instruments, 1, -0.1, 0.1);

  CausalDataset all;
  all.x = Matrix(n, d);
  all.y = Matrix(n, 1);
  all.mu0 = Matrix(n, 1);
  all.mu1 = Matrix(n, 1);
  all.t.resize(static_cast<size_t>(n));
  all.binary_outcome = true;

  for (int64_t i = 0; i < n; ++i) {
    // Correlated real covariates via latent factors.
    Matrix f = rng.Randn(1, n_factors);
    for (int64_t j = 0; j < d_real; ++j) {
      double latent = 0.0;
      for (int64_t k = 0; k < n_factors; ++k) latent += f(0, k) * loadings(k, j);
      if (j < n_bin) {
        all.x(i, j) =
            rng.Bernoulli(Sigmoid(latent + bin_intercept(0, j))) ? 1.0 : 0.0;
      } else {
        all.x(i, j) = latent + rng.Normal(0.0, 0.6);
      }
    }
    // Paper-added instrumental and unstable blocks.
    for (int64_t j = d_real; j < d; ++j) all.x(i, j) = rng.Normal();

    // Potential mortality outcomes (realized binaries, as in the real
    // Twins data where both twins' outcomes are observed).
    double score = 0.0, het = 0.0;
    for (int64_t j = 0; j < d_real; ++j) {
      score += beta(j, 0) * all.x(i, j);
      het += beta_het(j, 0) * all.x(i, j);
    }
    const double p0 = Sigmoid(intercept0 + score);
    const double p1 = Sigmoid(intercept1 + score + 0.3 * het);
    all.mu0(i, 0) = rng.Bernoulli(p0) ? 1.0 : 0.0;
    all.mu1(i, 0) = rng.Bernoulli(p1) ? 1.0 : 0.0;

    // Treatment assignment over X_IC (real + instruments).
    double zt = rng.Normal(0.0, 0.1);
    for (int64_t j = 0; j < d_real + config.instruments; ++j) {
      zt += w_t(j, 0) * all.x(i, j);
    }
    const int ti = rng.Bernoulli(Sigmoid(zt)) ? 1 : 0;
    all.t[static_cast<size_t>(i)] = ti;
    all.y(i, 0) = ti == 1 ? all.mu1(i, 0) : all.mu0(i, 0);
  }

  // Biased OOD test split over the unstable block.
  std::vector<double> log_w(static_cast<size_t>(n));
  const int64_t v_begin = d_real + config.instruments;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> xv(static_cast<size_t>(config.unstable));
    for (int64_t v = 0; v < config.unstable; ++v) {
      xv[static_cast<size_t>(v)] = all.x(i, v_begin + v);
    }
    const double ite = all.mu1(i, 0) - all.mu0(i, 0);
    log_w[static_cast<size_t>(i)] =
        BiasedSelectionLogWeight(ite, xv, config.rho);
  }
  const int64_t n_test =
      static_cast<int64_t>(std::round(config.test_fraction *
                                      static_cast<double>(n)));
  std::vector<int64_t> test_idx =
      WeightedSampleWithoutReplacement(log_w, n_test, rng);
  std::vector<bool> in_test(static_cast<size_t>(n), false);
  for (int64_t idx : test_idx) in_test[static_cast<size_t>(idx)] = true;
  std::vector<int64_t> rest;
  rest.reserve(static_cast<size_t>(n - n_test));
  for (int64_t i = 0; i < n; ++i) {
    if (!in_test[static_cast<size_t>(i)]) rest.push_back(i);
  }

  RealWorldSplits splits;
  splits.test = all.Subset(test_idx);
  CausalDataset remainder = all.Subset(rest);
  TrainValid tv =
      SplitTrainValid(remainder, config.train_fraction_of_rest, rng);
  splits.train = std::move(tv.train);
  splits.valid = std::move(tv.valid);
  return splits;
}

}  // namespace sbrl

#ifndef SBRL_DATA_SPLIT_H_
#define SBRL_DATA_SPLIT_H_

#include <utility>
#include <vector>

#include "data/causal_dataset.h"
#include "tensor/random.h"

namespace sbrl {

/// A random train / validation partition of one dataset.
struct TrainValid {
  CausalDataset train;
  CausalDataset valid;
};

/// Random index partition of {0..n-1} with `fraction` of indices in the
/// first part (at least one element in each part when 0 < fraction < 1).
std::pair<std::vector<int64_t>, std::vector<int64_t>> SplitIndices(
    int64_t n, double fraction, Rng& rng);

/// Random row split of `data` with `train_fraction` of rows in train.
TrainValid SplitTrainValid(const CausalDataset& data, double train_fraction,
                           Rng& rng);

}  // namespace sbrl

#endif  // SBRL_DATA_SPLIT_H_

#include "data/ihdp.h"

#include <cmath>

#include "data/sampling.h"
#include "data/split.h"
#include "tensor/random.h"

namespace sbrl {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// Draws one beta coefficient from Hill's categorical prior.
double DrawBeta(Rng& rng) {
  const double u = rng.Uniform();
  if (u < 0.6) return 0.0;
  if (u < 0.7) return 0.1;
  if (u < 0.8) return 0.2;
  if (u < 0.9) return 0.3;
  return 0.4;
}

}  // namespace

RealWorldSplits MakeIhdpReplication(const IhdpConfig& config, uint64_t seed) {
  SBRL_CHECK_GT(config.n, 20);
  Rng rng(seed);
  const int64_t n = config.n;
  const int64_t d = config.total_covariates();

  // --- Covariates: correlated continuous block + binary block. ---
  const int64_t n_factors = 2;
  Matrix loadings = rng.Randn(n_factors, config.continuous, 0.0, 0.6);
  Matrix bin_p = rng.Rand(1, config.binary, 0.1, 0.9);
  Matrix x(n, d);
  for (int64_t i = 0; i < n; ++i) {
    Matrix f = rng.Randn(1, n_factors);
    for (int64_t j = 0; j < config.continuous; ++j) {
      double latent = 0.0;
      for (int64_t k = 0; k < n_factors; ++k) latent += f(0, k) * loadings(k, j);
      x(i, j) = latent + rng.Normal(0.0, 0.8);
    }
    for (int64_t j = 0; j < config.binary; ++j) {
      x(i, config.continuous + j) = rng.Bernoulli(bin_p(0, j)) ? 1.0 : 0.0;
    }
  }

  // --- Treatment with selection bias, calibrated to the IHDP treated
  // fraction (139 / 747) via bisection on the propensity intercept. ---
  Matrix gamma = rng.Randn(d, 1, 0.0, 0.3);
  Matrix score(n, 1);
  for (int64_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < d; ++j) s += gamma(j, 0) * x(i, j);
    score(i, 0) = s;
  }
  double lo = -10.0, hi = 10.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    double expected = 0.0;
    for (int64_t i = 0; i < n; ++i) expected += Sigmoid(score(i, 0) + mid);
    expected /= static_cast<double>(n);
    if (expected > config.target_treated_fraction) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double intercept = 0.5 * (lo + hi);

  // --- Outcomes: Hill's heterogeneous response surface. ---
  Matrix beta(d, 1);
  for (int64_t j = 0; j < d; ++j) beta(j, 0) = DrawBeta(rng);
  Matrix mu0(n, 1), mu1_raw(n, 1);
  for (int64_t i = 0; i < n; ++i) {
    double dot = 0.0, dot_shift = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      dot += beta(j, 0) * x(i, j);
      dot_shift += beta(j, 0) * (x(i, j) + 0.5);
    }
    mu0(i, 0) = std::exp(dot_shift);
    mu1_raw(i, 0) = dot;
  }
  // Calibrate omega so the sample ATE is exactly 4.
  const double omega = (mu1_raw.Mean() - mu0.Mean()) - 4.0;

  CausalDataset all;
  all.x = x;
  all.y = Matrix(n, 1);
  all.mu0 = mu0;
  all.mu1 = Matrix(n, 1);
  all.t.resize(static_cast<size_t>(n));
  all.binary_outcome = false;
  for (int64_t i = 0; i < n; ++i) {
    all.mu1(i, 0) = mu1_raw(i, 0) - omega;
    const int ti = rng.Bernoulli(Sigmoid(score(i, 0) + intercept)) ? 1 : 0;
    all.t[static_cast<size_t>(i)] = ti;
    const double mu = ti == 1 ? all.mu1(i, 0) : all.mu0(i, 0);
    all.y(i, 0) = mu + rng.Normal();
  }

  // --- Biased OOD test split over the continuous covariates. ---
  std::vector<double> log_w(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> xc(static_cast<size_t>(config.continuous));
    for (int64_t j = 0; j < config.continuous; ++j) {
      xc[static_cast<size_t>(j)] = x(i, j);
    }
    const double ite = all.mu1(i, 0) - all.mu0(i, 0);
    log_w[static_cast<size_t>(i)] =
        BiasedSelectionLogWeight(ite, xc, config.rho);
  }
  const int64_t n_test =
      static_cast<int64_t>(std::round(config.test_fraction *
                                      static_cast<double>(n)));
  std::vector<int64_t> test_idx =
      WeightedSampleWithoutReplacement(log_w, n_test, rng);
  std::vector<bool> in_test(static_cast<size_t>(n), false);
  for (int64_t idx : test_idx) in_test[static_cast<size_t>(idx)] = true;
  std::vector<int64_t> rest;
  rest.reserve(static_cast<size_t>(n - n_test));
  for (int64_t i = 0; i < n; ++i) {
    if (!in_test[static_cast<size_t>(i)]) rest.push_back(i);
  }

  RealWorldSplits splits;
  splits.test = all.Subset(test_idx);
  CausalDataset remainder = all.Subset(rest);
  TrainValid tv =
      SplitTrainValid(remainder, config.train_fraction_of_rest, rng);
  splits.train = std::move(tv.train);
  splits.valid = std::move(tv.valid);
  return splits;
}

}  // namespace sbrl

#ifndef SBRL_DATA_IHDP_H_
#define SBRL_DATA_IHDP_H_

#include <cstdint>

#include "data/twins.h"

namespace sbrl {

/// Configuration of the IHDP benchmark simulator.
///
/// The IHDP benchmark is a semi-synthetic dataset built by Hill (2011)
/// from the Infant Health and Development Program RCT: 747 units (139
/// treated / 608 control), 25 covariates (6 continuous, 19 binary),
/// with simulated outcomes from the NPCI package. The original RCT
/// covariates are not redistributable, so this module simulates
/// covariates with matched dimensions / types / treated fraction and
/// reproduces the published outcome recipe:
///   mu0 = exp((X + 0.5) . beta),  mu1 = X . beta - omega,
///   Y ~ N(mu_t, 1),
/// beta_j drawn from {0, .1, .2, .3, .4} w.p. {.6, .1, .1, .1, .1} and
/// omega calibrated per replication so the sample ATE is 4 (the
/// heterogeneous "factual/counterfactual" surface used by the CFR line
/// of work; continuous outcome, so heads train with MSE).
///
/// The paper's OOD twist (Sec. V-E): 10% of records are sampled into
/// the test split with probability prod_{Xi in X_cont} |rho|^(-10 D_i),
/// D_i = |ITE - sign(rho) X_i|, over the six CONTINUOUS covariates —
/// some of which genuinely affect Y, making the shift harder than the
/// synthetic setting. The remaining 90% split 70 / 30 train / valid.
struct IhdpConfig {
  int64_t n = 747;
  double target_treated_fraction = 139.0 / 747.0;
  int64_t continuous = 6;
  int64_t binary = 19;
  double rho = -2.5;
  double test_fraction = 0.1;
  double train_fraction_of_rest = 0.7;

  int64_t total_covariates() const { return continuous + binary; }
};

/// Generates one IHDP replication (the paper averages 100 of these).
RealWorldSplits MakeIhdpReplication(const IhdpConfig& config, uint64_t seed);

}  // namespace sbrl

#endif  // SBRL_DATA_IHDP_H_

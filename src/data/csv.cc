#include "data/csv.h"

#include <fstream>
#include <locale>

#include "data/streaming.h"

namespace sbrl {

Status SaveCausalDatasetCsv(const CausalDataset& data,
                            const std::string& path) {
  SBRL_RETURN_IF_ERROR(data.Validate());
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  // The writer must be locale-proof: a global comma-decimal locale
  // would otherwise imbue the stream and emit "1,5" — which the
  // (locale-independent) loader rightly rejects as a field-count
  // mismatch.
  out.imbue(std::locale::classic());
  out << "# binary_outcome=" << (data.binary_outcome ? 1 : 0) << "\n";
  for (int64_t j = 0; j < data.dim(); ++j) out << "x" << j << ",";
  out << "t,y,mu0,mu1\n";
  out.precision(17);
  for (int64_t i = 0; i < data.n(); ++i) {
    for (int64_t j = 0; j < data.dim(); ++j) out << data.x(i, j) << ",";
    out << data.t[static_cast<size_t>(i)] << "," << data.y(i, 0) << ","
        << data.mu0(i, 0) << "," << data.mu1(i, 0) << "\n";
  }
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<CausalDataset> LoadCausalDatasetCsv(const std::string& path) {
  // The in-core load is the streaming reader drained into flat
  // buffers: one parser for both paths, no vector-of-vectors staging
  // (the old loader held every row as its own heap vector, ~2x the
  // dataset's footprint at peak).
  SBRL_ASSIGN_OR_RETURN(const std::unique_ptr<CsvBlockReader> reader,
                        CsvBlockReader::Open(path));
  StatusOr<CausalDataset> data = ReadAllRows(*reader);
  if (!data.ok() && data.status().message() == "no data rows") {
    return Status::InvalidArgument("no data rows: " + path);
  }
  return data;
}

}  // namespace sbrl

#include "data/csv.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace sbrl {

Status SaveCausalDatasetCsv(const CausalDataset& data,
                            const std::string& path) {
  SBRL_RETURN_IF_ERROR(data.Validate());
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out << "# binary_outcome=" << (data.binary_outcome ? 1 : 0) << "\n";
  for (int64_t j = 0; j < data.dim(); ++j) out << "x" << j << ",";
  out << "t,y,mu0,mu1\n";
  out.precision(17);
  for (int64_t i = 0; i < data.n(); ++i) {
    for (int64_t j = 0; j < data.dim(); ++j) out << data.x(i, j) << ",";
    out << data.t[static_cast<size_t>(i)] << "," << data.y(i, 0) << ","
        << data.mu0(i, 0) << "," << data.mu1(i, 0) << "\n";
  }
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<CausalDataset> LoadCausalDatasetCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);

  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty file: " + path);
  }
  bool binary_outcome = true;
  if (StartsWith(line, "#")) {
    if (line.find("binary_outcome=0") != std::string::npos) {
      binary_outcome = false;
    }
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("missing header: " + path);
    }
  }
  const std::vector<std::string> header = Split(line, ',');
  if (header.size() < 5) {
    return Status::InvalidArgument("header needs x*,t,y,mu0,mu1: " + path);
  }
  const int64_t d = static_cast<int64_t>(header.size()) - 4;

  std::vector<std::vector<double>> rows;
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    const std::vector<std::string> fields = Split(line, ',');
    if (static_cast<int64_t>(fields.size()) != d + 4) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(d + 4) + " fields, got " +
          std::to_string(fields.size()));
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const std::string& f : fields) {
      char* end = nullptr;
      const std::string stripped = StripWhitespace(f);
      const double v = std::strtod(stripped.c_str(), &end);
      if (end == stripped.c_str() || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad number '" + f + "'");
      }
      // NaN/Inf parse fine through strtod but poison every downstream
      // statistic; reject them at the boundary with the line number.
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": non-finite value '" + f + "'");
      }
      row.push_back(v);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::InvalidArgument("no data rows: " + path);

  CausalDataset data;
  const int64_t n = static_cast<int64_t>(rows.size());
  data.x = Matrix(n, d);
  data.y = Matrix(n, 1);
  data.mu0 = Matrix(n, 1);
  data.mu1 = Matrix(n, 1);
  data.t.resize(static_cast<size_t>(n));
  data.binary_outcome = binary_outcome;
  for (int64_t i = 0; i < n; ++i) {
    const auto& row = rows[static_cast<size_t>(i)];
    for (int64_t j = 0; j < d; ++j) {
      data.x(i, j) = row[static_cast<size_t>(j)];
    }
    const double t_val = row[static_cast<size_t>(d)];
    if (t_val != 0.0 && t_val != 1.0) {
      return Status::InvalidArgument("treatment must be 0/1, got " +
                                     std::to_string(t_val));
    }
    data.t[static_cast<size_t>(i)] = static_cast<int>(t_val);
    data.y(i, 0) = row[static_cast<size_t>(d + 1)];
    data.mu0(i, 0) = row[static_cast<size_t>(d + 2)];
    data.mu1(i, 0) = row[static_cast<size_t>(d + 3)];
  }
  return data;
}

}  // namespace sbrl

#include "data/streaming.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/string_util.h"

#if defined(__cpp_lib_to_chars)
#include <charconv>
#else
#include <cstdlib>
#endif

namespace sbrl {

namespace {

// Locale-independent strict double parse of one CSV field (already
// whitespace-stripped). Returns false on empty/garbage/trailing junk.
// Overflowing magnitudes parse to +-inf and are caught by the caller's
// finiteness check.
bool ParseCsvDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  const char* begin = field.c_str();
  const char* end = begin + field.size();
  if (*begin == '+') ++begin;  // from_chars/strtod asymmetry: allow "+1.5"
#if defined(__cpp_lib_to_chars)
  const std::from_chars_result result = std::from_chars(begin, end, *out);
  if (result.ptr != end) return false;
  if (result.ec == std::errc::result_out_of_range) {
    // Out-of-range magnitudes become +-inf / +-0 per strtod convention
    // so the finiteness gate downstream reports them; from_chars leaves
    // *out untouched on this error.
    *out = field[0] == '-' ? -HUGE_VAL : HUGE_VAL;
    return true;
  }
  return result.ec == std::errc();
#else
  // Pre-C++17-library fallback: strtod is locale-sensitive for the
  // decimal separator, so this branch mis-parses under comma-decimal
  // LC_NUMERIC locales. Every supported toolchain (GCC >= 11,
  // Clang >= 14 with libstdc++) takes the from_chars branch above.
  char* parse_end = nullptr;
  *out = std::strtod(begin, &parse_end);
  return parse_end == end;
#endif
}

// Appends rows [begin, begin + count) of `src` to flat column staging.
void AppendRowRange(const CausalDataset& src, int64_t begin, int64_t count,
                    AlignedVector<double>* x_flat, std::vector<int>* t,
                    AlignedVector<double>* y, AlignedVector<double>* mu0,
                    AlignedVector<double>* mu1) {
  const int64_t d = src.dim();
  const double* x_rows = src.x.data() + begin * d;
  x_flat->insert(x_flat->end(), x_rows, x_rows + count * d);
  t->insert(t->end(), src.t.begin() + static_cast<size_t>(begin),
            src.t.begin() + static_cast<size_t>(begin + count));
  y->insert(y->end(), src.y.data() + begin, src.y.data() + begin + count);
  mu0->insert(mu0->end(), src.mu0.data() + begin,
              src.mu0.data() + begin + count);
  mu1->insert(mu1->end(), src.mu1.data() + begin,
              src.mu1.data() + begin + count);
}

// Builds `*block` from flat column staging (consuming it).
void BuildBlock(int64_t rows, int64_t d, bool binary_outcome,
                AlignedVector<double>&& x_flat, std::vector<int>&& t,
                AlignedVector<double>&& y, AlignedVector<double>&& mu0,
                AlignedVector<double>&& mu1, CausalDataset* block) {
  block->x = Matrix::FromFlat(rows, d, std::move(x_flat));
  block->t = std::move(t);
  block->y = Matrix::FromFlat(rows, 1, std::move(y));
  block->mu0 = Matrix::FromFlat(rows, 1, std::move(mu0));
  block->mu1 = Matrix::FromFlat(rows, 1, std::move(mu1));
  block->binary_outcome = binary_outcome;
}

// Copies rows [begin, begin + count) of `src` into `*block`, reusing
// the block's backing storage when shapes allow (ResetZero recycling).
void CopyRowRange(const CausalDataset& src, int64_t begin, int64_t count,
                  CausalDataset* block) {
  const int64_t d = src.dim();
  block->x.ResetZero(count, d);
  std::memcpy(block->x.data(), src.x.data() + begin * d,
              static_cast<size_t>(count * d) * sizeof(double));
  block->y.ResetZero(count, 1);
  std::memcpy(block->y.data(), src.y.data() + begin,
              static_cast<size_t>(count) * sizeof(double));
  block->mu0.ResetZero(count, 1);
  std::memcpy(block->mu0.data(), src.mu0.data() + begin,
              static_cast<size_t>(count) * sizeof(double));
  block->mu1.ResetZero(count, 1);
  std::memcpy(block->mu1.data(), src.mu1.data() + begin,
              static_cast<size_t>(count) * sizeof(double));
  block->t.assign(src.t.begin() + static_cast<size_t>(begin),
                  src.t.begin() + static_cast<size_t>(begin + count));
  block->binary_outcome = src.binary_outcome;
}

}  // namespace

// ---------------------------------------------------------------------------
// CsvBlockReader
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<CsvBlockReader>> CsvBlockReader::Open(
    const std::string& path) {
  std::unique_ptr<CsvBlockReader> reader(new CsvBlockReader());
  reader->path_ = path;
  reader->in_.open(path);
  if (!reader->in_.is_open()) {
    return Status::NotFound("cannot open: " + path);
  }
  std::string line;
  if (!std::getline(reader->in_, line)) {
    return Status::InvalidArgument("empty file: " + path);
  }
  ++reader->line_no_;
  if (StartsWith(line, "#")) {
    if (line.find("binary_outcome=0") != std::string::npos) {
      reader->binary_outcome_ = false;
    }
    if (!std::getline(reader->in_, line)) {
      return Status::InvalidArgument("missing header: " + path);
    }
    ++reader->line_no_;
  }
  const std::vector<std::string> header = Split(line, ',');
  if (header.size() < 5) {
    return Status::InvalidArgument("header needs x*,t,y,mu0,mu1: " + path);
  }
  reader->dim_ = static_cast<int64_t>(header.size()) - 4;
  reader->header_lines_ = reader->line_no_;
  reader->data_start_ = reader->in_.tellg();
  return reader;
}

StatusOr<int64_t> CsvBlockReader::NextBlock(int64_t max_rows,
                                            CausalDataset* block) {
  SBRL_CHECK_GE(max_rows, 1);
  SBRL_CHECK(block != nullptr);
  const int64_t d = dim_;
  x_flat_.clear();
  y_.clear();
  mu0_.clear();
  mu1_.clear();
  t_.clear();
  int64_t rows = 0;
  while (rows < max_rows && std::getline(in_, line_)) {
    ++line_no_;
    if (StripWhitespace(line_).empty()) continue;
    const std::vector<std::string> fields = Split(line_, ',');
    if (static_cast<int64_t>(fields.size()) != d + 4) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no_) + ": expected " +
          std::to_string(d + 4) + " fields, got " +
          std::to_string(fields.size()));
    }
    for (int64_t j = 0; j < d + 4; ++j) {
      const std::string stripped =
          StripWhitespace(fields[static_cast<size_t>(j)]);
      double v = 0.0;
      if (!ParseCsvDouble(stripped, &v)) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no_) + ": bad number '" +
            fields[static_cast<size_t>(j)] + "'");
      }
      // NaN/Inf parse fine but poison every downstream statistic;
      // reject them at the boundary with the line number.
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no_) + ": non-finite value '" +
            fields[static_cast<size_t>(j)] + "'");
      }
      if (j < d) {
        x_flat_.push_back(v);
      } else if (j == d) {
        if (v != 0.0 && v != 1.0) {
          return Status::InvalidArgument("treatment must be 0/1, got " +
                                         std::to_string(v));
        }
        t_.push_back(static_cast<int>(v));
      } else if (j == d + 1) {
        y_.push_back(v);
      } else if (j == d + 2) {
        mu0_.push_back(v);
      } else {
        mu1_.push_back(v);
      }
    }
    ++rows;
  }
  if (rows == 0) return static_cast<int64_t>(0);
  // Moving the staging out hands its storage to the block; the next
  // call re-grows fresh vectors (one allocation per column per block,
  // amortized over max_rows rows — the per-row vector<vector> churn
  // this loader replaced is gone either way).
  BuildBlock(rows, d, binary_outcome_, std::move(x_flat_), std::move(t_),
             std::move(y_), std::move(mu0_), std::move(mu1_), block);
  return rows;
}

Status CsvBlockReader::Reset() {
  in_.clear();
  in_.seekg(data_start_);
  if (!in_.good()) return Status::Internal("seek failed: " + path_);
  line_no_ = header_lines_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// InMemoryBlockReader
// ---------------------------------------------------------------------------

InMemoryBlockReader::InMemoryBlockReader(const CausalDataset* data)
    : data_(data) {
  SBRL_CHECK(data != nullptr);
}

StatusOr<int64_t> InMemoryBlockReader::NextBlock(int64_t max_rows,
                                                 CausalDataset* block) {
  SBRL_CHECK_GE(max_rows, 1);
  SBRL_CHECK(block != nullptr);
  const int64_t remaining = data_->n() - cursor_;
  if (remaining <= 0) return static_cast<int64_t>(0);
  const int64_t take = std::min(max_rows, remaining);
  CopyRowRange(*data_, cursor_, take, block);
  cursor_ += take;
  return take;
}

Status InMemoryBlockReader::Reset() {
  cursor_ = 0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SyntheticBlockReader
// ---------------------------------------------------------------------------

SyntheticBlockReader::SyntheticBlockReader(const SyntheticModel* model,
                                           int64_t total_rows, double rho,
                                           uint64_t env_seed,
                                           int64_t chunk_rows)
    : model_(model), total_rows_(total_rows), rho_(rho), env_seed_(env_seed),
      chunk_rows_(chunk_rows) {
  SBRL_CHECK(model != nullptr);
  SBRL_CHECK_GT(total_rows, 0);
  SBRL_CHECK_GE(chunk_rows, 1);
}

int64_t SyntheticBlockReader::dim() const { return model_->dims().total(); }

StatusOr<int64_t> SyntheticBlockReader::NextBlock(int64_t max_rows,
                                                  CausalDataset* block) {
  SBRL_CHECK_GE(max_rows, 1);
  SBRL_CHECK(block != nullptr);
  if (buffer_cursor_ >= buffer_.n()) {
    if (generated_rows_ >= total_rows_) return static_cast<int64_t>(0);
    const int64_t chunk =
        std::min(chunk_rows_, total_rows_ - generated_rows_);
    buffer_ = model_->SampleEnvironmentChunk(chunk, rho_, env_seed_,
                                             chunk_index_);
    ++chunk_index_;
    generated_rows_ += chunk;
    buffer_cursor_ = 0;
  }
  const int64_t take =
      std::min(max_rows, buffer_.n() - buffer_cursor_);
  CopyRowRange(buffer_, buffer_cursor_, take, block);
  buffer_cursor_ += take;
  return take;
}

Status SyntheticBlockReader::Reset() {
  buffer_ = CausalDataset();
  buffer_cursor_ = 0;
  generated_rows_ = 0;
  chunk_index_ = 0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// NextBlockF32
// ---------------------------------------------------------------------------

StatusOr<int64_t> NextBlockF32(DatasetBlockReader& reader, int64_t max_rows,
                               CausalDataset* stage, CausalBlockF32* block) {
  SBRL_CHECK(stage != nullptr);
  SBRL_CHECK(block != nullptr);
  SBRL_ASSIGN_OR_RETURN(const int64_t rows, reader.NextBlock(max_rows, stage));
  if (rows == 0) return rows;
  block->x.ResetNarrowOf(stage->x);
  block->t = stage->t;
  block->y.ResetCopyOf(stage->y);
  block->binary_outcome = stage->binary_outcome;
  return rows;
}

// ---------------------------------------------------------------------------
// ReadAllRows
// ---------------------------------------------------------------------------

StatusOr<CausalDataset> ReadAllRows(DatasetBlockReader& reader,
                                    int64_t block_rows) {
  SBRL_CHECK_GE(block_rows, 1);
  const int64_t d = reader.dim();
  AlignedVector<double> x_flat;
  std::vector<int> t;
  AlignedVector<double> y, mu0, mu1;
  CausalDataset block;
  int64_t total = 0;
  for (;;) {
    SBRL_ASSIGN_OR_RETURN(const int64_t rows,
                          reader.NextBlock(block_rows, &block));
    if (rows == 0) break;
    AppendRowRange(block, 0, rows, &x_flat, &t, &y, &mu0, &mu1);
    total += rows;
  }
  if (total == 0) return Status::InvalidArgument("no data rows");
  CausalDataset out;
  BuildBlock(total, d, reader.binary_outcome(), std::move(x_flat),
             std::move(t), std::move(y), std::move(mu0), std::move(mu1),
             &out);
  return out;
}

}  // namespace sbrl

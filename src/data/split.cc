#include "data/split.h"

#include <algorithm>
#include <cmath>

namespace sbrl {

std::pair<std::vector<int64_t>, std::vector<int64_t>> SplitIndices(
    int64_t n, double fraction, Rng& rng) {
  SBRL_CHECK_GT(n, 1);
  SBRL_CHECK(fraction > 0.0 && fraction < 1.0)
      << "fraction must lie strictly inside (0, 1)";
  int64_t n_first =
      static_cast<int64_t>(std::round(fraction * static_cast<double>(n)));
  n_first = std::clamp<int64_t>(n_first, 1, n - 1);
  std::vector<int64_t> perm = rng.Permutation(n);
  std::vector<int64_t> first(perm.begin(), perm.begin() + n_first);
  std::vector<int64_t> second(perm.begin() + n_first, perm.end());
  // Keep row order stable within each part for reproducible datasets.
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  return {std::move(first), std::move(second)};
}

TrainValid SplitTrainValid(const CausalDataset& data, double train_fraction,
                           Rng& rng) {
  auto [train_idx, valid_idx] = SplitIndices(data.n(), train_fraction, rng);
  TrainValid out;
  out.train = data.Subset(train_idx);
  out.valid = data.Subset(valid_idx);
  return out;
}

}  // namespace sbrl

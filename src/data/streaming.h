#ifndef SBRL_DATA_STREAMING_H_
#define SBRL_DATA_STREAMING_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/statusor.h"
#include "data/causal_dataset.h"
#include "data/synthetic.h"
#include "tensor/matrix_f32.h"

namespace sbrl {

/// Sequential block access to a `CausalDataset`-shaped row stream
/// without materializing the full (n x d) sample. This is the loading
/// seam of the sharded training path (core/sharded_trainer.h): the
/// trainer pulls fixed-size row shards, computes per-shard statistics,
/// and tree-reduces them in a fixed order.
///
/// Determinism contract: the concatenated row stream of a reader is a
/// pure function of its construction arguments — it does not depend on
/// the `max_rows` values callers pass, on how reads interleave with
/// other work, or on the thread that calls. `Reset()` replays the
/// identical stream. Readers are NOT thread-safe; one thread drives
/// `NextBlock`, and parallelism happens over the returned blocks.
class DatasetBlockReader {
 public:
  virtual ~DatasetBlockReader() = default;

  /// Covariate dimension of every block.
  virtual int64_t dim() const = 0;

  /// Outcome family flag copied into every block.
  virtual bool binary_outcome() const = 0;

  /// Overwrites `*block` with the next at-most-`max_rows` rows of the
  /// stream and returns how many were produced; 0 means end of stream.
  /// `max_rows` must be >= 1. Blocks are plain row ranges: no
  /// per-block validation of treatment-arm balance is implied (a tail
  /// block may hold a single arm).
  virtual StatusOr<int64_t> NextBlock(int64_t max_rows,
                                      CausalDataset* block) = 0;

  /// Rewinds to row 0 so the next `NextBlock` replays the identical
  /// stream (the sharded trainer calls this once per pass).
  virtual Status Reset() = 0;
};

/// An f32-staged covariate block — the unit of the f32 block-staging
/// mode (Precision::kF32 on stats/sharded.h's ShardedOptions):
/// covariates are held in f32 storage, half the resident bytes of a
/// CausalDataset block, while outcomes and treatment stay exact (y is
/// a single column; t is integral). Consumers either read the f32
/// covariates directly (the streamed moment accumulators) or widen
/// them once into lane-scoped scratch (the sharded trainer), so the
/// staging rounds each stored covariate exactly once.
struct CausalBlockF32 {
  MatrixF32 x;         ///< (n x d) covariates in f32 storage.
  std::vector<int> t;  ///< Treatment indicators (length n, each 0 or 1).
  Matrix y;            ///< (n x 1) factual outcome (exact, f64).
  bool binary_outcome = true;  ///< Outcome family flag of the stream.

  /// Rows in the block.
  int64_t n() const { return x.rows(); }
  /// Covariate dimension.
  int64_t dim() const { return x.cols(); }
};

/// The f32 block-staging pull of a reader: NextBlock into `*stage` (a
/// caller-owned f64 scratch block whose storage is reused across
/// pulls), then narrows the covariates into `block->x` in place
/// (MatrixF32::ResetNarrowOf) and copies the exact columns over —
/// steady state allocates nothing. Returns the rows produced (0 means
/// end of stream) or the stream error. The staged stream is a pure
/// function of the underlying reader's stream: the same rows, with
/// each covariate rounded once to float.
StatusOr<int64_t> NextBlockF32(DatasetBlockReader& reader, int64_t max_rows,
                               CausalDataset* stage, CausalBlockF32* block);

/// Streams a CSV written by `SaveCausalDatasetCsv` (or matching its
/// layout) in row blocks, holding one block plus one line in memory at
/// a time. Parsing is locale-independent (`std::from_chars`) and
/// rejects malformed, non-finite, and overflow fields with the
/// 1-based line number. `LoadCausalDatasetCsv` is this reader plus
/// `ReadAllRows` — the streaming path and the in-core path share one
/// parser by construction.
class CsvBlockReader : public DatasetBlockReader {
 public:
  /// Opens `path`, consumes the optional `# binary_outcome=` prologue
  /// and the header line, and validates the column count.
  static StatusOr<std::unique_ptr<CsvBlockReader>> Open(
      const std::string& path);

  int64_t dim() const override { return dim_; }
  bool binary_outcome() const override { return binary_outcome_; }
  StatusOr<int64_t> NextBlock(int64_t max_rows, CausalDataset* block) override;
  Status Reset() override;

 private:
  CsvBlockReader() = default;

  std::string path_;
  std::ifstream in_;
  int64_t dim_ = 0;
  bool binary_outcome_ = true;
  /// Stream offset of the first data row (Reset seeks back here).
  std::streampos data_start_;
  /// 1-based number of the last consumed line (prologue/header count).
  int64_t line_no_ = 0;
  int64_t header_lines_ = 0;

  /// Per-call staging, kept as members so their capacity is reused
  /// across blocks (no per-row or per-block allocation churn in the
  /// steady state). Aligned vectors because Matrix::FromFlat adopts
  /// them as matrix backing storage.
  std::string line_;
  AlignedVector<double> x_flat_;
  AlignedVector<double> y_, mu0_, mu1_;
  std::vector<int> t_;
};

/// Serves contiguous row ranges of an in-core dataset (not owned; must
/// outlive the reader). This is the bridge that lets one code path
/// serve both storage modes — the streaming-vs-in-core equality tests
/// run the sharded trainer over this reader and over `CsvBlockReader`
/// and require bitwise-identical fits.
class InMemoryBlockReader : public DatasetBlockReader {
 public:
  /// Wraps `data`; the caller keeps ownership.
  explicit InMemoryBlockReader(const CausalDataset* data);

  int64_t dim() const override { return data_->dim(); }
  bool binary_outcome() const override { return data_->binary_outcome; }
  StatusOr<int64_t> NextBlock(int64_t max_rows, CausalDataset* block) override;
  Status Reset() override;

 private:
  const CausalDataset* data_;
  int64_t cursor_ = 0;
};

/// Generates a synthetic environment of `total_rows` units on the fly,
/// one generation chunk at a time, via
/// `SyntheticModel::SampleEnvironmentChunk` — memory stays O(chunk),
/// which is what scales the generator to 10^6+ rows. Each chunk's Rng
/// is seeded purely by (env_seed, chunk_index), so the stream content
/// depends only on (total_rows, rho, env_seed, chunk_rows), never on
/// read granularity. `rho == 1.0` streams unbiased units; any
/// `|rho| > 1` applies the paper's biased selection per chunk.
class SyntheticBlockReader : public DatasetBlockReader {
 public:
  /// Wraps `model` (not owned; must outlive the reader). `chunk_rows`
  /// is the generation granularity — changing it changes the sampled
  /// units, so it is part of the stream identity.
  SyntheticBlockReader(const SyntheticModel* model, int64_t total_rows,
                       double rho, uint64_t env_seed,
                       int64_t chunk_rows = 8192);

  int64_t dim() const override;
  bool binary_outcome() const override { return true; }
  StatusOr<int64_t> NextBlock(int64_t max_rows, CausalDataset* block) override;
  Status Reset() override;

 private:
  const SyntheticModel* model_;
  int64_t total_rows_;
  double rho_;
  uint64_t env_seed_;
  int64_t chunk_rows_;

  CausalDataset buffer_;
  int64_t buffer_cursor_ = 0;
  int64_t generated_rows_ = 0;
  int64_t chunk_index_ = 0;
};

/// Drains `reader` (from its current position) into one in-core
/// dataset, pulling `block_rows` rows at a time and accumulating into
/// flat buffers that the result matrices adopt without a final copy.
/// Returns InvalidArgument when the stream holds no rows.
StatusOr<CausalDataset> ReadAllRows(DatasetBlockReader& reader,
                                    int64_t block_rows = 65536);

}  // namespace sbrl

#endif  // SBRL_DATA_STREAMING_H_

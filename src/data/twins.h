#ifndef SBRL_DATA_TWINS_H_
#define SBRL_DATA_TWINS_H_

#include <cstdint>

#include "data/causal_dataset.h"

namespace sbrl {

/// Train / validation / test environments of one real-world-style
/// replication. The test split is the biased (OOD) environment.
struct RealWorldSplits {
  CausalDataset train;
  CausalDataset valid;
  CausalDataset test;
};

/// Configuration of the Twins benchmark simulator.
///
/// The real Twins dataset (NBER linked birth / infant-death records,
/// same-sex twins under 2000 g, 1989-1991) is not redistributable, so
/// this module reproduces the paper's *construction* on a calibrated
/// simulator (see DESIGN.md substitution table):
///  - 28 parent / pregnancy / birth covariates X_C with realistic
///    mixed binary + correlated-continuous structure,
///  - 10 instrumental variables X_I ~ N(0,1) (paper-added),
///  - 5 unstable variables X_V ~ N(0,1) (paper-added),
///  - both potential mortality outcomes drawn from a logistic model
///    (t = 1 is the heavier twin; mortality ~17% base rate),
///  - treatment t ~ B(sigmoid(w . X_IC + eta)), w ~ U(-0.1, 0.1),
///    eta ~ N(0, 0.1) (paper Sec. V-E),
///  - 20% biased test split with bias rate rho = -2.5 over X_V, then a
///    70 / 30 train / validation split of the remainder.
struct TwinsConfig {
  int64_t n = 5271;
  double rho = -2.5;
  double test_fraction = 0.2;
  double train_fraction_of_rest = 0.7;

  int64_t real_covariates = 28;
  int64_t instruments = 10;
  int64_t unstable = 5;

  int64_t total_covariates() const {
    return real_covariates + instruments + unstable;
  }
};

/// Generates one Twins replication (the paper repeats this 10 times
/// with different seeds and reports mean ± std).
RealWorldSplits MakeTwinsReplication(const TwinsConfig& config,
                                     uint64_t seed);

}  // namespace sbrl

#endif  // SBRL_DATA_TWINS_H_

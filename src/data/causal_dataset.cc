#include "data/causal_dataset.h"

#include <cmath>

#include "tensor/linalg.h"

namespace sbrl {

std::vector<int64_t> CausalDataset::TreatedIndices() const {
  std::vector<int64_t> idx;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] == 1) idx.push_back(static_cast<int64_t>(i));
  }
  return idx;
}

std::vector<int64_t> CausalDataset::ControlIndices() const {
  std::vector<int64_t> idx;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] == 0) idx.push_back(static_cast<int64_t>(i));
  }
  return idx;
}

std::vector<double> CausalDataset::TrueIte() const {
  std::vector<double> ite(static_cast<size_t>(n()));
  for (int64_t i = 0; i < n(); ++i) {
    ite[static_cast<size_t>(i)] = mu1(i, 0) - mu0(i, 0);
  }
  return ite;
}

double CausalDataset::TrueAte() const {
  SBRL_CHECK_GT(n(), 0);
  double acc = 0.0;
  for (int64_t i = 0; i < n(); ++i) acc += mu1(i, 0) - mu0(i, 0);
  return acc / static_cast<double>(n());
}

std::vector<double> CausalDataset::CounterfactualOutcomes() const {
  std::vector<double> cf(static_cast<size_t>(n()));
  for (int64_t i = 0; i < n(); ++i) {
    cf[static_cast<size_t>(i)] =
        t[static_cast<size_t>(i)] == 1 ? mu0(i, 0) : mu1(i, 0);
  }
  return cf;
}

CausalDataset CausalDataset::Subset(const std::vector<int64_t>& rows) const {
  CausalDataset out;
  out.x = GatherRows(x, rows);
  out.y = GatherRows(y, rows);
  out.mu0 = GatherRows(mu0, rows);
  out.mu1 = GatherRows(mu1, rows);
  out.t.reserve(rows.size());
  for (int64_t r : rows) {
    SBRL_CHECK(r >= 0 && r < n());
    out.t.push_back(t[static_cast<size_t>(r)]);
  }
  out.binary_outcome = binary_outcome;
  return out;
}

Status CausalDataset::Validate() const {
  if (n() == 0) return Status::InvalidArgument("dataset is empty");
  if (static_cast<int64_t>(t.size()) != n()) {
    return Status::InvalidArgument("treatment length mismatch");
  }
  if (y.rows() != n() || y.cols() != 1) {
    return Status::InvalidArgument("outcome shape mismatch");
  }
  if (mu0.rows() != n() || mu0.cols() != 1 || mu1.rows() != n() ||
      mu1.cols() != 1) {
    return Status::InvalidArgument("potential outcome shape mismatch");
  }
  int64_t treated = 0;
  for (int v : t) {
    if (v != 0 && v != 1) {
      return Status::InvalidArgument("treatment must be binary 0/1");
    }
    treated += v;
  }
  if (treated == 0) {
    return Status::FailedPrecondition("no treated units (overlap violated)");
  }
  if (treated == n()) {
    return Status::FailedPrecondition("no control units (overlap violated)");
  }
  // Non-finite covariates or outcomes poison every loss and statistic
  // downstream; catch them here rather than as a NaN training run.
  const auto all_finite = [](const Matrix& m) {
    for (int64_t i = 0; i < m.size(); ++i) {
      if (!std::isfinite(m[i])) return false;
    }
    return true;
  };
  if (!all_finite(x)) {
    return Status::InvalidArgument("covariates contain non-finite values");
  }
  if (!all_finite(y)) {
    return Status::InvalidArgument("outcomes contain non-finite values");
  }
  if (!all_finite(mu0) || !all_finite(mu1)) {
    return Status::InvalidArgument(
        "potential outcomes contain non-finite values");
  }
  return Status::OK();
}

}  // namespace sbrl

#include "data/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sbrl {

double BiasedSelectionLogWeight(double ite,
                                const std::vector<double>& unstable_values,
                                double rho) {
  SBRL_CHECK_GT(std::abs(rho), 1.0) << "bias rate must satisfy |rho| > 1";
  const double sign = rho > 0.0 ? 1.0 : -1.0;
  const double log_abs_rho = std::log(std::abs(rho));
  double log_w = 0.0;
  for (double xv : unstable_values) {
    const double d = std::abs(ite - sign * xv);
    log_w += -10.0 * d * log_abs_rho;
  }
  return log_w;
}

std::vector<int64_t> WeightedSampleWithoutReplacement(
    const std::vector<double>& log_weights, int64_t k, Rng& rng) {
  const int64_t n = static_cast<int64_t>(log_weights.size());
  SBRL_CHECK_LE(k, n);
  SBRL_CHECK_GE(k, 0);
  // Efraimidis-Spirakis: rank by u^(1/w) descending, equivalently by
  // log(E)/1 - log(w) ascending with E ~ Exp(1):
  //   key_i = log(E_i) - log_weights[i], take the k smallest keys.
  std::vector<std::pair<double, int64_t>> keys;
  keys.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double u = rng.Uniform();
    if (u <= 0.0) u = 1e-300;
    const double e = -std::log(u);  // Exp(1)
    keys.emplace_back(std::log(e) - log_weights[static_cast<size_t>(i)], i);
  }
  std::partial_sort(keys.begin(), keys.begin() + static_cast<long>(k),
                    keys.end());
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    out.push_back(keys[static_cast<size_t>(i)].second);
  }
  return out;
}

bool AcceptWithLogProb(double log_prob, Rng& rng) {
  SBRL_CHECK_LE(log_prob, 1e-12) << "acceptance log-probability above 0";
  if (log_prob <= -700.0) return false;  // exp underflow: never accept
  return rng.Uniform() < std::exp(log_prob);
}

}  // namespace sbrl

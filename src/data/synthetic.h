#ifndef SBRL_DATA_SYNTHETIC_H_
#define SBRL_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/causal_dataset.h"
#include "tensor/random.h"

namespace sbrl {

/// Dimensions of the paper's synthetic covariate blocks
/// Syn_mI_mC_mA_mV: instruments I (affect T only), confounders C
/// (affect T and Y), adjusters A (affect Y only), and unstable noise V
/// (spuriously correlated with Y through biased environment sampling).
struct SyntheticDims {
  int64_t m_i = 8;
  int64_t m_c = 8;
  int64_t m_a = 8;
  int64_t m_v = 2;

  int64_t total() const { return m_i + m_c + m_a + m_v; }
};

/// The paper's synthetic structural causal model (Sec. V-D):
///   X ~ N(0, I_m)
///   T ~ Bernoulli(sigmoid(theta_t . X_IC / 10 + xi)),   xi ~ N(0,1)
///   z0 = theta_y0 . X_CA   / (10 (m_c + m_a))
///   z1 = theta_y1 . X_CA^2 / (10 (m_c + m_a))
///   Y0 = 1{z0 > mean(z0)},  Y1 = 1{z1 > mean(z1)}
/// with theta ~ U(8, 16) per coordinate. The thresholds mean(z0) /
/// mean(z1) are calibrated ONCE on a large unbiased reference pool so
/// that P(Y | X) is identical in every environment — the paper's
/// invariance requirement P^e(T, Y | X) = P^e'(T, Y | X).
///
/// Environments differ only by biased sampling with bias rate `rho`:
/// a unit is kept with probability prod_{Xv} |rho|^(-10 |ITE - sign(rho) Xv|),
/// which correlates the unstable block V with the ITE (positively for
/// rho > 1, negatively for rho < -1, more strongly for larger |rho|).
class SyntheticModel {
 public:
  /// Draws the structural coefficients and calibrates outcome
  /// thresholds from `calibration_pool` unbiased units.
  SyntheticModel(const SyntheticDims& dims, uint64_t seed,
                 int64_t calibration_pool = 20000);

  /// Samples an environment of `n` units with bias rate `rho`
  /// (requires |rho| > 1). Deterministic given `env_seed`.
  CausalDataset SampleEnvironment(int64_t n, double rho,
                                  uint64_t env_seed) const;

  /// Samples `n` units with NO biased selection (the rho -> 1 limit);
  /// useful for tests and diagnostics.
  CausalDataset SampleUnbiased(int64_t n, uint64_t env_seed) const;

  /// Chunk `chunk_index` of a streamed environment: `rows` units drawn
  /// from an Rng seeded purely by (env_seed, chunk_index), so chunk
  /// content never depends on how many chunks were generated before it
  /// or on which thread asks — the determinism requirement of the
  /// streaming reader (data/streaming.h). `rho == 1.0` means unbiased
  /// sampling; any `|rho| > 1` applies the paper's biased selection
  /// within the chunk. Note the concatenated chunk stream is a
  /// *different* (equally distributed) draw than one
  /// SampleEnvironment(n) call — chunking is part of the stream
  /// identity.
  CausalDataset SampleEnvironmentChunk(int64_t rows, double rho,
                                       uint64_t env_seed,
                                       int64_t chunk_index) const;

  const SyntheticDims& dims() const { return dims_; }
  double threshold0() const { return thr0_; }
  double threshold1() const { return thr1_; }

  /// Column index ranges of each block within X.
  int64_t instruments_begin() const { return 0; }
  int64_t confounders_begin() const { return dims_.m_i; }
  int64_t adjusters_begin() const { return dims_.m_i + dims_.m_c; }
  int64_t unstable_begin() const {
    return dims_.m_i + dims_.m_c + dims_.m_a;
  }

 private:
  struct Unit {
    std::vector<double> x;
    int t;
    double y0, y1;
  };

  Unit DrawUnit(Rng& rng) const;

  /// Shared sampling loop: draws until `n` units are accepted,
  /// applying the rho-biased rejection only when `biased` is set. The
  /// Rng consumption pattern per unit is identical to the pre-chunking
  /// loops, so SampleEnvironment / SampleUnbiased streams are
  /// unchanged bit for bit.
  CausalDataset SampleWithRng(int64_t n, bool biased, double rho,
                              Rng& rng) const;

  SyntheticDims dims_;
  Matrix theta_t_;   // (m_i + m_c) x 1
  Matrix theta_y0_;  // (m_c + m_a) x 1
  Matrix theta_y1_;  // (m_c + m_a) x 1
  double thr0_ = 0.0;
  double thr1_ = 0.0;
};

}  // namespace sbrl

#endif  // SBRL_DATA_SYNTHETIC_H_

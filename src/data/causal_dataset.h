#ifndef SBRL_DATA_CAUSAL_DATASET_H_
#define SBRL_DATA_CAUSAL_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace sbrl {

/// One observational sample for HTE estimation: covariates X, binary
/// treatment T, factual outcome Y, and (for synthetic / semi-synthetic
/// data) both true potential outcomes mu0 / mu1, which make PEHE and
/// eps-ATE computable.
struct CausalDataset {
  Matrix x;            // (n x d) covariates
  std::vector<int> t;  // length n, each 0 or 1
  Matrix y;            // (n x 1) factual outcome
  Matrix mu0;          // (n x 1) potential outcome under control
  Matrix mu1;          // (n x 1) potential outcome under treatment
  bool binary_outcome = true;

  int64_t n() const { return x.rows(); }
  int64_t dim() const { return x.cols(); }

  /// Indices of treated (t == 1) units, in order.
  std::vector<int64_t> TreatedIndices() const;
  /// Indices of control (t == 0) units, in order.
  std::vector<int64_t> ControlIndices() const;

  /// True individual treatment effects mu1 - mu0 (length n).
  std::vector<double> TrueIte() const;
  /// True average treatment effect.
  double TrueAte() const;

  /// Counterfactual outcome of each unit (mu0 for treated, mu1 for
  /// control), used by the Fig. 4 counterfactual-F1 evaluation.
  std::vector<double> CounterfactualOutcomes() const;

  /// Row subset (copies); `rows` may repeat or reorder.
  CausalDataset Subset(const std::vector<int64_t>& rows) const;

  /// Structural sanity: consistent sizes, both arms non-empty, t binary.
  Status Validate() const;
};

}  // namespace sbrl

#endif  // SBRL_DATA_CAUSAL_DATASET_H_

#ifndef SBRL_DATA_SAMPLING_H_
#define SBRL_DATA_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "tensor/random.h"

namespace sbrl {

/// Log of the paper's biased selection probability for one unit:
/// Pr = prod_{X_i in X_V} |rho|^(-10 * D_i),
/// D_i = |ITE - sign(rho) * X_i|   (paper Sec. V-D / V-E).
/// Returned in log space because the product underflows for large |rho|.
/// Requires |rho| > 1 so that Pr <= 1.
double BiasedSelectionLogWeight(double ite,
                                const std::vector<double>& unstable_values,
                                double rho);

/// Weighted sampling of `k` distinct indices with probability
/// proportional to exp(log_weights[i]) (Efraimidis-Spirakis reservoir
/// keys, computed in log space so astronomically small weights still
/// rank correctly).
std::vector<int64_t> WeightedSampleWithoutReplacement(
    const std::vector<double>& log_weights, int64_t k, Rng& rng);

/// Bernoulli acceptance with probability exp(log_prob) (log_prob <= 0).
bool AcceptWithLogProb(double log_prob, Rng& rng);

}  // namespace sbrl

#endif  // SBRL_DATA_SAMPLING_H_

#ifndef SBRL_CORE_SHARDED_TRAINER_H_
#define SBRL_CORE_SHARDED_TRAINER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/precision.h"
#include "common/statusor.h"
#include "core/backbone.h"
#include "core/config.h"
#include "data/streaming.h"
#include "stats/sharded.h"
#include "tensor/pool.h"

namespace sbrl {

/// Configuration of the sharded full-batch trainer. Deliberately a
/// subset of EstimatorConfig: the sharded path supports exactly the
/// row-separable configuration (TARNet backbone, vanilla framework,
/// no batch normalization), where the full-batch mean-loss gradient
/// equals (1/n) times the sum of per-shard gradient sums — the
/// algebraic identity that makes out-of-core training exact rather
/// than an approximation.
struct ShardedTrainerConfig {
  /// Backbone architecture. `batchnorm` must stay false: batch
  /// normalization couples rows within a batch, which breaks the
  /// per-shard decomposition (the constructor CHECK-enforces this).
  NetworkConfig network;
  /// Full passes over the stream (each pass = one full-batch
  /// gradient step, mirroring SbrlTrainer's iteration).
  int64_t iterations = 50;
  /// Initial Adam learning rate.
  double lr = 1e-3;
  /// Multiplicative factor of the exponential lr schedule.
  double lr_decay_rate = 0.97;
  /// Iterations between decay applications.
  int64_t lr_decay_steps = 100;
  /// L2 penalty on outcome-head weights (paper's R_l2).
  double l2 = 1e-4;
  /// Seed of parameter initialization.
  uint64_t seed = 1234;
  /// Outcome family: sigmoid cross-entropy when true, squared error
  /// otherwise.
  bool binary_outcome = true;
  /// Shard size / worker-lane / staging-tier knobs (see
  /// stats/sharded.h); resolved once at Train() entry so one fit uses
  /// one fixed decomposition. `sharding.precision == kF32` (or
  /// SBRL_PRECISION=f32) turns on f32 block staging: the wave's
  /// resident blocks hold f32 covariates — half the streaming bytes of
  /// the f64 wave — and each lane widens its shard into lane-scoped
  /// scratch just in time for the f64 tape, so the fit runs over
  /// float-rounded covariates. An opt-in tier: the bitwise
  /// golden-trace contract is stated on the default kF64 staging.
  ShardedOptions sharding;
  /// Log one line per pass.
  bool verbose = false;
};

/// Per-fit observability of the sharded trainer, including the
/// tree-reduced outcome-head statistics of the stream.
struct ShardedTrainDiagnostics {
  /// Mean factual loss per pass (loss sums reduced shard-wise, scaled
  /// by 1/n once at the root).
  std::vector<double> train_loss;
  /// Rows per pass over the stream.
  int64_t rows = 0;
  /// Shards per pass.
  int64_t shards = 0;
  /// Resolved rows-per-shard of the fit.
  int64_t shard_rows = 0;
  /// Resolved worker-lane count of the fit.
  int64_t workers = 0;
  /// Resolved block-staging tier of the fit (the bench JSON precision
  /// lane records this).
  Precision precision = Precision::kF64;
  /// Treated / control row counts (accumulated per shard).
  int64_t treated_rows = 0;
  /// See treated_rows.
  int64_t control_rows = 0;
  /// Factual outcome means per arm, from tree-reduced per-shard sums.
  double treated_outcome_mean = 0.0;
  /// See treated_outcome_mean.
  double control_outcome_mean = 0.0;
  /// Wall-clock seconds of Train().
  double train_seconds = 0.0;
  /// Rows processed per second across all passes.
  double rows_per_second = 0.0;
};

/// Full-batch trainer over a `DatasetBlockReader` stream: every pass
/// pulls fixed-size row shards, records each shard's forward/backward
/// on a private pooled tape (per-row loss SUMS, not means), reads the
/// per-shard gradient sums out of the shard's binder, and combines
/// shard results through a FixedOrderTreeReducer before one Adam step
/// on the mean-loss gradient.
///
/// Determinism contract (extends PR-1/PR-7, see docs/ARCHITECTURE.md
/// "Sharded deterministic training"): for a fixed stream and fixed
/// `sharding.shard_rows`, fitted parameters are bitwise identical for
/// every worker count, and identical whether the stream comes from
/// CSV, the chunked synthetic generator, or an in-core dataset with
/// the same rows. Peak memory is O(workers x shard_rows x d), never
/// O(n x d). Both invariances hold under the f32 staging tier too
/// (narrowing is per-element and source-independent), but an f32-staged
/// fit is a DIFFERENT fit than the f64 one — only the default kF64
/// staging is bitwise comparable to the in-core trainer.
class ShardedTrainer {
 public:
  /// Builds and initializes the backbone (TARNet, seeded by
  /// `config.seed`). CHECK-fails when `config.network.batchnorm` is
  /// set — that configuration is not row-separable.
  ShardedTrainer(const ShardedTrainerConfig& config, int64_t input_dim);

  /// Runs `config.iterations` full passes over `reader` (Reset() is
  /// called before each pass). Returns the first stream error;
  /// Internal when a gradient digest goes non-finite.
  Status Train(DatasetBlockReader& reader,
               ShardedTrainDiagnostics* diag = nullptr);

  /// Streamed ATE estimate after Train: mean predicted ITE over the
  /// stream, accumulated shard-wise (sigmoid-probability difference
  /// for binary outcomes, raw head difference otherwise). Resets the
  /// reader first. Bitwise worker-count invariant like Train.
  StatusOr<double> EstimateAte(DatasetBlockReader& reader);

  /// In-core ITE predictions (n x 1) for `x` (no sharding; for tests
  /// and small scoring batches).
  Matrix PredictIte(const Matrix& x);

  /// Appends a copy of every parameter value in canonical
  /// CollectParams order — the bitwise-comparison surface of the
  /// determinism tests.
  void CollectParamValues(std::vector<Matrix>* out) const;

  /// Covariate dimension the backbone was built for.
  int64_t input_dim() const { return input_dim_; }

 private:
  struct ShardStats;

  /// Forward/backward of one shard on the slot's pooled tape; returns
  /// loss/arm sums and per-param gradient sums aligned to `params_`.
  ShardStats ComputeShard(const CausalDataset& block, MatrixPool* pool);

  /// PredictIte recording on `pool` (nullable) — the shard-scoped
  /// scoring primitive behind EstimateAte.
  Matrix PredictIteWithPool(const Matrix& x, MatrixPool* pool);

  ShardedTrainerConfig config_;
  int64_t input_dim_ = 0;
  std::unique_ptr<Backbone> backbone_;
  /// Canonical parameter order (CollectParams); shard gradient vectors
  /// align to it.
  std::vector<Param*> params_;
  std::unordered_map<const Param*, size_t> param_index_;
  /// One value-transparent scratch pool per worker lane, reused across
  /// waves and passes.
  std::vector<std::unique_ptr<MatrixPool>> slot_pools_;
  /// Lane-scoped f64 widen scratch of the f32 block-staging tier: each
  /// lane re-materializes its shard's covariates here (storage reused
  /// across waves) right before the f64 tape consumes them.
  std::vector<CausalDataset> slot_stage_;
};

}  // namespace sbrl

#endif  // SBRL_CORE_SHARDED_TRAINER_H_

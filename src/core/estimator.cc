#include "core/estimator.h"

#include <cmath>

#include "common/cpu.h"
#include "core/dercfr.h"
#include "tensor/linalg.h"

namespace sbrl {

StatusOr<HteEstimator> HteEstimator::Create(const EstimatorConfig& config) {
  SBRL_RETURN_IF_ERROR(config.Validate());
  return HteEstimator(config);
}

Status HteEstimator::Fit(const CausalDataset& train,
                         const CausalDataset* valid, RunContext* ctx) {
  SBRL_RETURN_IF_ERROR(train.Validate());
  if (valid != nullptr) {
    SBRL_RETURN_IF_ERROR(valid->Validate());
    if (valid->dim() != train.dim()) {
      return Status::InvalidArgument(
          "validation covariate dimension differs from training");
    }
    if (valid->binary_outcome != train.binary_outcome) {
      return Status::InvalidArgument(
          "validation outcome type differs from training");
    }
  }
  binary_outcome_ = train.binary_outcome;

  // Standardize continuous outcomes for stable head training; the
  // statistics are inverted at prediction time.
  CausalDataset train_std = train;
  CausalDataset valid_std;
  if (!binary_outcome_) {
    y_mean_ = train.y.Mean();
    y_std_ = StdDev(train.y);
    if (y_std_ < 1e-12) {
      return Status::FailedPrecondition(
          "outcome has zero variance; nothing to learn");
    }
    for (int64_t i = 0; i < train_std.n(); ++i) {
      train_std.y(i, 0) = (train_std.y(i, 0) - y_mean_) / y_std_;
    }
    if (valid != nullptr) {
      valid_std = *valid;
      for (int64_t i = 0; i < valid_std.n(); ++i) {
        valid_std.y(i, 0) = (valid_std.y(i, 0) - y_mean_) / y_std_;
      }
      valid = &valid_std;
    }
  } else {
    y_mean_ = 0.0;
    y_std_ = 1.0;
  }

  Rng rng(config_.train.seed);
  backbone_ = CreateBackbone(config_, train.dim(), rng);
  if (auto* dercfr = dynamic_cast<DerCfrBackbone*>(backbone_.get())) {
    dercfr->SetOutcomes(train_std.y);
  }

  diag_ = TrainDiagnostics();
  SbrlTrainer trainer(config_, backbone_.get(), binary_outcome_, ctx);
  SBRL_RETURN_IF_ERROR(trainer.Train(train_std, valid, &diag_, &weights_));
  fitted_ = true;
  return Status::OK();
}

BackboneForward HteEstimator::PredictForward(ParamBinder& binder,
                                             const Matrix& x) const {
  SBRL_CHECK(fitted_) << "call Fit before predicting";
  SBRL_CHECK_EQ(x.cols(), backbone_->input_dim());
  Tape* tape = binder.tape();
  // Treatment assignment only affects factual-layer selection and
  // training-time losses; predictions for both arms are always emitted.
  std::vector<int> dummy_t(static_cast<size_t>(x.rows()), 0);
  Var w_uniform = tape->Constant(Matrix::Ones(x.rows(), 1));
  return backbone_->Forward(binder, x, dummy_t, w_uniform,
                            /*training=*/false);
}

Matrix HteEstimator::PredictPotentialOutcomes(const Matrix& x) const {
  // Predict with the same kernel level the estimator trained at, pinned
  // thread-locally (concurrent sweep evaluation must not depend on the
  // process-wide default).
  ScopedThreadIsa isa_scope(config_.sbrl.isa);
  Tape tape;
  ParamBinder binder(&tape);
  BackboneForward fwd = PredictForward(binder, x);
  Matrix out(x.rows(), 2);
  for (int64_t i = 0; i < x.rows(); ++i) {
    double y0 = fwd.y0.value()(i, 0);
    double y1 = fwd.y1.value()(i, 0);
    if (binary_outcome_) {
      y0 = 1.0 / (1.0 + std::exp(-y0));
      y1 = 1.0 / (1.0 + std::exp(-y1));
    } else {
      y0 = y0 * y_std_ + y_mean_;
      y1 = y1 * y_std_ + y_mean_;
    }
    out(i, 0) = y0;
    out(i, 1) = y1;
  }
  return out;
}

std::vector<double> HteEstimator::PredictIte(const Matrix& x) const {
  Matrix outcomes = PredictPotentialOutcomes(x);
  std::vector<double> ite(static_cast<size_t>(x.rows()));
  for (int64_t i = 0; i < x.rows(); ++i) {
    ite[static_cast<size_t>(i)] = outcomes(i, 1) - outcomes(i, 0);
  }
  return ite;
}

double HteEstimator::PredictAte(const Matrix& x) const {
  SBRL_CHECK_GT(x.rows(), 0);
  const std::vector<double> ite = PredictIte(x);
  double acc = 0.0;
  for (double v : ite) acc += v;
  return acc / static_cast<double>(ite.size());
}

Matrix HteEstimator::RepresentationOf(const Matrix& x) const {
  ScopedThreadIsa isa_scope(config_.sbrl.isa);
  Tape tape;
  ParamBinder binder(&tape);
  BackboneForward fwd = PredictForward(binder, x);
  return fwd.rep.value();
}

}  // namespace sbrl

#include "core/trainer.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/cpu.h"
#include "common/logging.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/hap.h"
#include "nn/lr_schedule.h"
#include "nn/optimizer.h"

namespace sbrl {

namespace {

/// Per-sample factual loss column (n x 1): sigmoid cross-entropy for
/// binary outcomes, squared error for continuous ones.
Var FactualLosses(Var y0, Var y1, const std::vector<int>& t,
                  const Matrix& y, bool binary) {
  Var pred = ops::SelectRowsByTreatment(y1, y0, t);
  if (binary) {
    return ops::SigmoidCrossEntropyWithLogits(pred, y);
  }
  Var target = pred.tape()->Constant(y);
  return ops::Square(ops::Sub(pred, target));
}

}  // namespace

SbrlTrainer::SbrlTrainer(const EstimatorConfig& config, Backbone* backbone,
                         bool binary_outcome)
    : config_(config), backbone_(backbone), binary_outcome_(binary_outcome) {
  SBRL_CHECK(backbone != nullptr);
  // Paper Table IV footnote: TARNet has no balancing term, so its SBRL
  // variants drop L_B (alpha = 0).
  effective_alpha_br_ =
      config.backbone == BackboneKind::kTarnet ? 0.0 : config.sbrl.alpha_br;
  if (config.backbone == BackboneKind::kDerCfr) {
    br_ipm_ = config.dercfr.ipm;
    br_rbf_bandwidth_ = config.dercfr.rbf_bandwidth;
  } else {
    br_ipm_ = config.cfr.ipm;
    br_rbf_bandwidth_ = config.cfr.rbf_bandwidth;
  }
}

double SbrlTrainer::EvalFactualLoss(const CausalDataset& data) {
  Tape tape(&tape_pool_);
  ParamBinder binder(&tape);
  Var w_uniform = tape.Constant(Matrix::Ones(data.n(), 1));
  BackboneForward fwd = backbone_->Forward(binder, data.x, data.t,
                                           w_uniform, /*training=*/false);
  Var losses = FactualLosses(fwd.y0, fwd.y1, data.t, data.y,
                             binary_outcome_);
  return ops::MeanAll(losses).value().scalar();
}

Status SbrlTrainer::Train(const CausalDataset& train,
                          const CausalDataset* valid, TrainDiagnostics* diag,
                          Matrix* out_weights) {
  SBRL_CHECK(diag != nullptr && out_weights != nullptr);
  Timer timer;
  // Resolve the kernel ISA for this run (SBRL_ISA env > config > auto,
  // clamped to the host; see common/cpu.h) and record what actually ran.
  diag->isa = IsaName(SetActiveIsa(config_.sbrl.isa));
  const double cos_seconds_at_start = CosSweepSecondsTotal();
  const int64_t n = train.n();
  const bool learn_weights =
      config_.framework != FrameworkKind::kVanilla;

  SampleWeights weights(n, config_.sbrl.weight_floor);

  std::vector<Param*> params;
  backbone_->CollectParams(&params);
  std::vector<Param*> decay_params = backbone_->DecayParams();
  std::unordered_set<Param*> decay_set(decay_params.begin(),
                                       decay_params.end());
  std::vector<Param*> plain_params;
  for (Param* p : params) {
    if (decay_set.find(p) == decay_set.end()) plain_params.push_back(p);
  }
  AdamConfig decay_config;
  decay_config.weight_decay = config_.train.l2;
  AdamOptimizer opt_decay(decay_params, decay_config);
  AdamOptimizer opt_plain(plain_params);
  AdamOptimizer opt_w({&weights.param()});
  ExponentialDecaySchedule schedule(config_.train.lr,
                                    config_.train.lr_decay_rate,
                                    config_.train.lr_decay_steps);

  Rng hsic_rng(config_.train.seed ^ 0x9e3779b97f4a7c15ULL);

  double best_valid = std::numeric_limits<double>::infinity();
  std::vector<Matrix> best_snapshot;
  int64_t bad_evals = 0;
  bool stopped_early = false;

  for (int64_t iter = 0; iter < config_.train.iterations; ++iter) {
    // ----- Step A (Algorithm 1 lines 4-5): network parameters. -----
    Timer net_timer;
    double weight_loss_value = 0.0;
    Matrix w_norm = weights.NormalizedToMeanOne();
    Tape tape(&tape_pool_);
    ParamBinder binder(&tape);
    Var w_const = tape.Constant(w_norm);
    BackboneForward fwd = backbone_->Forward(binder, train.x, train.t,
                                             w_const, /*training=*/true);
    Var losses = FactualLosses(fwd.y0, fwd.y1, train.t, train.y,
                               binary_outcome_);
    Var weighted = ops::MeanAll(ops::Mul(losses, w_const));
    Var loss = ops::Add(weighted, fwd.aux_loss);
    tape.Backward(loss);
    binder.FlushGrads();
    const double lr = schedule.LearningRate(iter);
    opt_decay.Step(lr);
    opt_plain.Step(lr);
    diag->net_step_seconds += net_timer.ElapsedSeconds();

    // ----- Step B (Algorithm 1 lines 6-7): sample weights. -----
    if (learn_weights && iter % config_.sbrl.weight_update_every == 0) {
      Timer weight_timer;
      WeightLossInputs inputs;
      inputs.z_p = fwd.z_p.value();
      inputs.z_r = fwd.rep.value();
      inputs.z_o.reserve(fwd.z_other.size());
      for (const Var& z : fwd.z_other) inputs.z_o.push_back(z.value());
      inputs.t = train.t;

      Tape w_tape(&tape_pool_);
      ParamBinder w_binder(&w_tape);
      Var w_var = w_binder.Bind(weights.param());
      Var w_loss = BuildWeightLoss(w_var, inputs, config_.sbrl,
                                   config_.framework, effective_alpha_br_,
                                   br_ipm_, br_rbf_bandwidth_, hsic_rng,
                                   config_.sbrl.rff_projection_cache
                                       ? &rff_proj_cache_
                                       : nullptr);
      weight_loss_value = w_loss.value().scalar();
      w_tape.Backward(w_loss);
      w_binder.FlushGrads();
      opt_w.Step(config_.sbrl.lr_w);
      weights.Project();
      diag->weight_step_seconds += weight_timer.ElapsedSeconds();
    }

    // ----- Early stopping / diagnostics. -----
    const bool eval_now =
        config_.train.eval_every > 0 &&
        ((iter + 1) % config_.train.eval_every == 0 ||
         iter + 1 == config_.train.iterations);
    if (eval_now) {
      diag->train_loss.push_back(loss.value().scalar());
      diag->weight_loss.push_back(weight_loss_value);
      if (valid != nullptr) {
        const double v = EvalFactualLoss(*valid);
        diag->valid_loss.push_back(v);
        if (v < best_valid - 1e-9) {
          best_valid = v;
          diag->best_iteration = iter;
          best_snapshot.clear();
          best_snapshot.reserve(params.size());
          for (Param* p : params) best_snapshot.push_back(p->value);
          bad_evals = 0;
        } else {
          ++bad_evals;
          if (config_.train.patience > 0 &&
              bad_evals >= config_.train.patience) {
            stopped_early = true;
          }
        }
      }
      if (config_.train.verbose) {
        SBRL_LOG(Info) << "iter " << iter + 1 << " loss "
                       << loss.value().scalar() << " L_w "
                       << weight_loss_value;
      }
    }
    if (stopped_early) break;
  }

  // Restore the best-validation parameters (paper: "report the
  // best-evaluated iterate with early stopping").
  if (!best_snapshot.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_snapshot[i];
    }
  }
  *out_weights = weights.raw();
  diag->train_seconds = timer.ElapsedSeconds();
  diag->rff_cos_seconds = CosSweepSecondsTotal() - cos_seconds_at_start;
  return Status::OK();
}

}  // namespace sbrl

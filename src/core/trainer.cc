#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_set>

#include "common/cpu.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/checkpoint.h"
#include "core/hap.h"
#include "nn/lr_schedule.h"
#include "nn/optimizer.h"

namespace sbrl {

namespace {

/// Per-sample factual loss column (n x 1): sigmoid cross-entropy for
/// binary outcomes, squared error for continuous ones.
Var FactualLosses(Var y0, Var y1, const std::vector<int>& t,
                  const Matrix& y, bool binary) {
  Var pred = ops::SelectRowsByTreatment(y1, y0, t);
  if (binary) {
    return ops::SigmoidCrossEntropyWithLogits(pred, y);
  }
  Var target = pred.tape()->Constant(y);
  return ops::Square(ops::Sub(pred, target));
}

/// Resolves the divergence-recovery mode: the SBRL_RECOVERY environment
/// variable ("off" / "rollback") wins over the config, mirroring the
/// SBRL_ISA precedence; an unrecognized value is ignored with a
/// warning rather than silently changing behavior.
RecoveryMode ResolveRecoveryMode(RecoveryMode config_mode) {
  const char* env = std::getenv("SBRL_RECOVERY");
  if (env == nullptr || *env == '\0') return config_mode;
  const std::string value(env);
  if (value == "off") return RecoveryMode::kOff;
  if (value == "rollback") return RecoveryMode::kRollback;
  SBRL_LOG(Warning) << "ignoring unrecognized SBRL_RECOVERY=\"" << value
                    << "\" (want \"off\" or \"rollback\")";
  return config_mode;
}

}  // namespace

SbrlTrainer::SbrlTrainer(const EstimatorConfig& config, Backbone* backbone,
                         bool binary_outcome, RunContext* ctx)
    : config_(config),
      backbone_(backbone),
      binary_outcome_(binary_outcome),
      tape_pool_(ctx != nullptr ? ctx->tape_pool : &owned_tape_pool_),
      rff_proj_cache_(ctx != nullptr ? ctx->rff_cache : &owned_rff_cache_) {
  SBRL_CHECK(backbone != nullptr);
  SBRL_CHECK(tape_pool_ != nullptr && rff_proj_cache_ != nullptr)
      << "RunContext with null resources";
  // Paper Table IV footnote: TARNet has no balancing term, so its SBRL
  // variants drop L_B (alpha = 0).
  effective_alpha_br_ =
      config.backbone == BackboneKind::kTarnet ? 0.0 : config.sbrl.alpha_br;
  if (config.backbone == BackboneKind::kDerCfr) {
    br_ipm_ = config.dercfr.ipm;
    br_rbf_bandwidth_ = config.dercfr.rbf_bandwidth;
  } else {
    br_ipm_ = config.cfr.ipm;
    br_rbf_bandwidth_ = config.cfr.rbf_bandwidth;
  }
}

double SbrlTrainer::EvalFactualLoss(const CausalDataset& data) {
  Tape tape(tape_pool_);
  ParamBinder binder(&tape);
  Var w_uniform = tape.Constant(Matrix::Ones(data.n(), 1));
  BackboneForward fwd = backbone_->Forward(binder, data.x, data.t,
                                           w_uniform, /*training=*/false);
  Var losses = FactualLosses(fwd.y0, fwd.y1, data.t, data.y,
                             binary_outcome_);
  return ops::MeanAll(losses).value().scalar();
}

Status SbrlTrainer::Train(const CausalDataset& train,
                          const CausalDataset* valid, TrainDiagnostics* diag,
                          Matrix* out_weights) {
  SBRL_CHECK(diag != nullptr && out_weights != nullptr);
  Timer timer;
  // Pin the kernel ISA for this run on THIS THREAD (SBRL_ISA env >
  // config > auto, clamped to the host; see common/cpu.h) and record
  // what actually ran. Thread-scoped rather than process-global so
  // concurrent runs with different configs neither race nor leak their
  // level into each other; ParallelFor propagates the pin to any pool
  // workers this run fans out to.
  ScopedThreadIsa isa_scope(config_.sbrl.isa);
  diag->isa = IsaName(isa_scope.resolved());
  const double cos_seconds_at_start = CosSweepSecondsThisThread();
  const int64_t n = train.n();
  const bool learn_weights =
      config_.framework != FrameworkKind::kVanilla;
  const RecoveryMode recovery =
      ResolveRecoveryMode(config_.sbrl.recovery_mode);
  const bool recovery_on = recovery == RecoveryMode::kRollback;

  SampleWeights weights(n, config_.sbrl.weight_floor);

  std::vector<Param*> params;
  backbone_->CollectParams(&params);
  std::vector<Param*> decay_params = backbone_->DecayParams();
  std::unordered_set<Param*> decay_set(decay_params.begin(),
                                       decay_params.end());
  std::vector<Param*> plain_params;
  for (Param* p : params) {
    if (decay_set.find(p) == decay_set.end()) plain_params.push_back(p);
  }
  AdamConfig decay_config;
  decay_config.weight_decay = config_.train.l2;
  AdamOptimizer opt_decay(decay_params, decay_config);
  AdamOptimizer opt_plain(plain_params);
  AdamOptimizer opt_w({&weights.param()});
  ExponentialDecaySchedule schedule(config_.train.lr,
                                    config_.train.lr_decay_rate,
                                    config_.train.lr_decay_steps);

  // Everything a checkpoint must capture beyond `params`: the learned
  // sample weights (a Param like any other) and the BatchNorm running
  // statistics (state outside the gradient path).
  std::vector<Param*> ckpt_params = params;
  ckpt_params.push_back(&weights.param());
  std::vector<NamedStateRef> state_refs;
  backbone_->CollectStateMatrices(&state_refs);

  Rng hsic_rng(config_.train.seed ^ 0x9e3779b97f4a7c15ULL);

  double best_valid = std::numeric_limits<double>::infinity();
  std::vector<Matrix> best_snapshot;
  int64_t bad_evals = 0;
  bool stopped_early = false;
  double loss_anchor = -1.0;  // |first finite train loss| + 1 once seen
  int64_t rollbacks = 0;

  // Snapshots the complete training state at an iteration boundary;
  // `next_iteration` is the first iteration a restore should execute.
  const auto capture = [&](int64_t next_iteration) {
    TrainingCheckpoint ckpt;
    ckpt.next_iteration = next_iteration;
    ckpt.opt_decay_steps = opt_decay.step_count();
    ckpt.opt_plain_steps = opt_plain.step_count();
    ckpt.opt_w_steps = opt_w.step_count();
    ckpt.best_valid = best_valid;
    ckpt.bad_evals = bad_evals;
    ckpt.best_iteration = diag->best_iteration;
    ckpt.first_bad_iteration = diag->first_bad_iteration;
    ckpt.rollbacks = rollbacks;
    ckpt.lr_scale = schedule.scale();
    ckpt.loss_anchor = loss_anchor;
    std::ostringstream rng_out;
    rng_out << hsic_rng.engine();
    ckpt.rng_state = rng_out.str();
    ckpt.params.reserve(ckpt_params.size());
    for (Param* p : ckpt_params) {
      ckpt.params.push_back({p->name, p->value, p->adam_m, p->adam_v});
    }
    ckpt.state.reserve(state_refs.size());
    for (const NamedStateRef& s : state_refs) {
      ckpt.state.push_back({s.name, *s.value});
    }
    ckpt.best_snapshot = best_snapshot;
    ckpt.train_loss = diag->train_loss;
    ckpt.valid_loss = diag->valid_loss;
    ckpt.weight_loss = diag->weight_loss;
    return ckpt;
  };

  // Applies a snapshot back onto the live training state. Structural
  // mismatches (a checkpoint from a different model or config) return
  // FailedPrecondition; an in-memory rollback snapshot can never
  // mismatch. Deliberately does NOT touch the recovery counters
  // (`rollbacks`, diag->first_bad_iteration): a rollback must not reset
  // its own budget. Disk resume restores those explicitly.
  const auto apply = [&](const TrainingCheckpoint& ckpt) -> Status {
    if (ckpt.params.size() != ckpt_params.size()) {
      return Status::FailedPrecondition(
          "checkpoint has " + std::to_string(ckpt.params.size()) +
          " params, model has " + std::to_string(ckpt_params.size()));
    }
    for (size_t i = 0; i < ckpt_params.size(); ++i) {
      const ParamCheckpoint& pc = ckpt.params[i];
      Param* p = ckpt_params[i];
      if (pc.name != p->name || pc.value.rows() != p->value.rows() ||
          pc.value.cols() != p->value.cols()) {
        return Status::FailedPrecondition(
            "checkpoint param \"" + pc.name + "\" (" +
            std::to_string(pc.value.rows()) + "x" +
            std::to_string(pc.value.cols()) +
            ") does not match model param \"" + p->name + "\" (" +
            std::to_string(p->value.rows()) + "x" +
            std::to_string(p->value.cols()) + ")");
      }
      p->value = pc.value;
      p->adam_m = pc.adam_m;
      p->adam_v = pc.adam_v;
      p->grad.Fill(0.0);
    }
    if (ckpt.state.size() != state_refs.size()) {
      return Status::FailedPrecondition(
          "checkpoint has " + std::to_string(ckpt.state.size()) +
          " state matrices, model has " +
          std::to_string(state_refs.size()));
    }
    for (size_t i = 0; i < state_refs.size(); ++i) {
      const StateCheckpoint& sc = ckpt.state[i];
      const NamedStateRef& ref = state_refs[i];
      if (sc.name != ref.name || sc.value.rows() != ref.value->rows() ||
          sc.value.cols() != ref.value->cols()) {
        return Status::FailedPrecondition(
            "checkpoint state \"" + sc.name +
            "\" does not match model state \"" + ref.name + "\"");
      }
      *ref.value = sc.value;
    }
    if (ckpt.next_iteration < 0 || ckpt.opt_decay_steps < 0 ||
        ckpt.opt_plain_steps < 0 || ckpt.opt_w_steps < 0 ||
        ckpt.bad_evals < 0 || !(ckpt.lr_scale > 0.0)) {
      return Status::FailedPrecondition(
          "checkpoint counters out of range");
    }
    if (!ckpt.best_snapshot.empty() &&
        ckpt.best_snapshot.size() != params.size()) {
      return Status::FailedPrecondition(
          "checkpoint best snapshot has " +
          std::to_string(ckpt.best_snapshot.size()) +
          " matrices, model has " + std::to_string(params.size()) +
          " params");
    }
    opt_decay.set_step_count(ckpt.opt_decay_steps);
    opt_plain.set_step_count(ckpt.opt_plain_steps);
    opt_w.set_step_count(ckpt.opt_w_steps);
    schedule.set_scale(ckpt.lr_scale);
    std::istringstream rng_in(ckpt.rng_state);
    rng_in >> hsic_rng.engine();
    if (rng_in.fail()) {
      return Status::FailedPrecondition("unreadable checkpoint rng state");
    }
    best_valid = ckpt.best_valid;
    bad_evals = ckpt.bad_evals;
    diag->best_iteration = ckpt.best_iteration;
    loss_anchor = ckpt.loss_anchor;
    best_snapshot = ckpt.best_snapshot;
    diag->train_loss = ckpt.train_loss;
    diag->valid_loss = ckpt.valid_loss;
    diag->weight_loss = ckpt.weight_loss;
    return Status::OK();
  };

  // ----- Resume from disk (TrainConfig::resume). A missing file is a
  // fresh start; a corrupt or mismatched file is an error (silently
  // retraining from scratch would mask data loss). -----
  int64_t start_iter = 0;
  if (config_.train.resume) {
    StatusOr<TrainingCheckpoint> loaded =
        LoadCheckpoint(config_.train.checkpoint_path);
    if (loaded.ok()) {
      SBRL_RETURN_IF_ERROR(apply(loaded.value()));
      rollbacks = loaded.value().rollbacks;
      diag->first_bad_iteration = loaded.value().first_bad_iteration;
      start_iter = loaded.value().next_iteration;
      diag->resumed_from_iteration = start_iter;
      if (config_.train.verbose) {
        SBRL_LOG(Info) << "resumed from " << config_.train.checkpoint_path
                       << " at iteration " << start_iter;
      }
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  // The rollback target: the last iteration boundary the health monitor
  // saw in a good state. Seeded before the loop so a fault at the very
  // first iteration still has a restore point.
  TrainingCheckpoint last_good;
  if (recovery_on) {
    Timer health_timer;
    last_good = capture(start_iter);
    diag->health_seconds += health_timer.ElapsedSeconds();
  }

  // Saves a periodic/final checkpoint; save failures are non-fatal (the
  // run warns, counts them, and keeps training on the live state).
  const auto save_to_disk = [&](const TrainingCheckpoint& ckpt) {
    Timer ckpt_timer;
    const Status saved = SaveCheckpoint(ckpt, config_.train.checkpoint_path);
    if (!saved.ok()) {
      ++diag->checkpoint_failures;
      SBRL_LOG(Warning) << "checkpoint save failed (continuing): "
                        << saved.ToString();
    }
    diag->checkpoint_seconds += ckpt_timer.ElapsedSeconds();
  };

  int64_t iter = start_iter;
  while (iter < config_.train.iterations) {
    // ----- Step A (Algorithm 1 lines 4-5): network parameters. -----
    Timer net_timer;
    double weight_loss_value = 0.0;
    Matrix w_norm = weights.NormalizedToMeanOne();
    Tape tape(tape_pool_);
    ParamBinder binder(&tape);
    Var w_const = tape.Constant(w_norm);
    BackboneForward fwd = backbone_->Forward(binder, train.x, train.t,
                                             w_const, /*training=*/true);
    Var losses = FactualLosses(fwd.y0, fwd.y1, train.t, train.y,
                               binary_outcome_);
    Var weighted = ops::MeanAll(ops::Mul(losses, w_const));
    Var loss = ops::Add(weighted, fwd.aux_loss);
    tape.Backward(loss);
    binder.FlushGrads();
    if (FaultPoint("trainer/nan_grad") && !params.empty()) {
      params[0]->grad[0] = std::numeric_limits<double>::quiet_NaN();
    }
    const double lr = schedule.LearningRate(iter);
    // The Step digests fuse the health monitor's non-finite scan into
    // the optimizer's own pass over the gradients (no extra sweep).
    double grad_digest = opt_decay.Step(lr) + opt_plain.Step(lr);
    double train_loss_value = loss.value().scalar();
    if (FaultPoint("trainer/poison_loss")) {
      train_loss_value = std::numeric_limits<double>::quiet_NaN();
    }
    diag->net_step_seconds += net_timer.ElapsedSeconds();

    // ----- Step B (Algorithm 1 lines 6-7): sample weights. -----
    if (learn_weights && iter % config_.sbrl.weight_update_every == 0) {
      Timer weight_timer;
      WeightLossInputs inputs;
      inputs.z_p = fwd.z_p.value();
      inputs.z_r = fwd.rep.value();
      inputs.z_o.reserve(fwd.z_other.size());
      for (const Var& z : fwd.z_other) inputs.z_o.push_back(z.value());
      inputs.t = train.t;

      Tape w_tape(tape_pool_);
      ParamBinder w_binder(&w_tape);
      Var w_var = w_binder.Bind(weights.param());
      Var w_loss = BuildWeightLoss(w_var, inputs, config_.sbrl,
                                   config_.framework, effective_alpha_br_,
                                   br_ipm_, br_rbf_bandwidth_, hsic_rng,
                                   config_.sbrl.rff_projection_cache
                                       ? rff_proj_cache_
                                       : nullptr);
      weight_loss_value = w_loss.value().scalar();
      w_tape.Backward(w_loss);
      w_binder.FlushGrads();
      grad_digest += opt_w.Step(config_.sbrl.lr_w);
      weights.Project();
      diag->weight_step_seconds += weight_timer.ElapsedSeconds();
    }

    // ----- Training-health monitor: non-finite and loss-explosion
    // guardrails over the signals this iteration already produced. -----
    Timer health_timer;
    bool healthy = std::isfinite(grad_digest) &&
                   std::isfinite(train_loss_value) &&
                   std::isfinite(weight_loss_value);
    if (healthy && loss_anchor >= 0.0 &&
        std::abs(train_loss_value) >
            loss_anchor * config_.sbrl.recovery_explosion_factor) {
      healthy = false;
    }
    if (healthy && loss_anchor < 0.0) {
      loss_anchor = std::abs(train_loss_value) + 1.0;
    }
    diag->health_seconds += health_timer.ElapsedSeconds();
    if (!healthy) {
      if (diag->first_bad_iteration < 0) diag->first_bad_iteration = iter;
      const std::string what =
          "unhealthy training state at iteration " + std::to_string(iter) +
          " (grad digest " + std::to_string(grad_digest) + ", train loss " +
          std::to_string(train_loss_value) + ", weight loss " +
          std::to_string(weight_loss_value) + ")";
      if (!recovery_on) {
        return Status::Internal(what + "; recovery is off");
      }
      if (rollbacks >= config_.sbrl.recovery_max_retries) {
        return Status::Internal(
            what + "; recovery budget exhausted after " +
            std::to_string(rollbacks) + " rollback(s), first bad iteration " +
            std::to_string(diag->first_bad_iteration));
      }
      ++rollbacks;
      diag->recovery_rollbacks = rollbacks;
      // Shrink from the CURRENT scale so repeated rollbacks to the same
      // snapshot keep compounding the backoff.
      const double shrunk_scale =
          schedule.scale() * config_.sbrl.recovery_lr_backoff;
      const Status restored = apply(last_good);
      SBRL_CHECK(restored.ok()) << restored.ToString();
      schedule.set_scale(shrunk_scale);
      SBRL_LOG(Warning) << what << "; rolling back to iteration "
                        << last_good.next_iteration << " with lr scale "
                        << shrunk_scale << " (rollback " << rollbacks << "/"
                        << config_.sbrl.recovery_max_retries << ")";
      iter = last_good.next_iteration;
      continue;
    }

    // ----- Early stopping / diagnostics. -----
    const bool eval_now =
        config_.train.eval_every > 0 &&
        ((iter + 1) % config_.train.eval_every == 0 ||
         iter + 1 == config_.train.iterations);
    if (eval_now) {
      diag->train_loss.push_back(train_loss_value);
      diag->weight_loss.push_back(weight_loss_value);
      if (valid != nullptr) {
        double v = EvalFactualLoss(*valid);
        if (FaultPoint("trainer/poison_valid")) {
          v = std::numeric_limits<double>::quiet_NaN();
        }
        diag->valid_loss.push_back(v);
        if (std::isfinite(v) && v < best_valid - 1e-9) {
          best_valid = v;
          diag->best_iteration = iter;
          best_snapshot.clear();
          best_snapshot.reserve(params.size());
          for (Param* p : params) best_snapshot.push_back(p->value);
          bad_evals = 0;
        } else {
          // NaN-aware: a non-finite validation loss compares false
          // against every threshold, so it must land here as a
          // non-improving evaluation — it can consume patience but can
          // never freeze or replace the tracked best parameters.
          ++bad_evals;
          if (config_.train.patience > 0 &&
              bad_evals >= config_.train.patience) {
            stopped_early = true;
          }
        }
      }
      if (config_.train.verbose) {
        SBRL_LOG(Info) << "iter " << iter + 1 << " loss "
                       << train_loss_value << " L_w "
                       << weight_loss_value;
      }
    }
    if (stopped_early) break;

    // The iteration ended healthy: advance the rollback target on the
    // snapshot cadence (a rollback replays at most that many
    // iterations — capturing every iteration would put the full-state
    // copy on the critical path and blow the <1% health budget), then
    // persist it on the periodic checkpoint cadence.
    const bool save_now =
        config_.train.checkpoint_every > 0 &&
        (iter + 1) % config_.train.checkpoint_every == 0;
    const bool snapshot_now =
        recovery_on &&
        (save_now ||
         (iter + 1) % config_.sbrl.recovery_snapshot_every == 0);
    if (snapshot_now) {
      Timer capture_timer;
      last_good = capture(iter + 1);
      diag->health_seconds += capture_timer.ElapsedSeconds();
      if (save_now) save_to_disk(last_good);
    } else if (save_now) {
      save_to_disk(capture(iter + 1));
    }
    ++iter;
  }

  // Final checkpoint BEFORE the best-parameter restore: a resumed run
  // re-enters here with the loop already complete and performs the
  // identical restore below, so kill points after training still
  // round-trip bit-for-bit.
  if (config_.train.checkpoint_every > 0) {
    save_to_disk(capture(config_.train.iterations));
  }

  // Restore the best-validation parameters (paper: "report the
  // best-evaluated iterate with early stopping").
  if (!best_snapshot.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_snapshot[i];
    }
  }
  diag->recovery_rollbacks = rollbacks;
  *out_weights = weights.raw();
  diag->train_seconds = timer.ElapsedSeconds();
  diag->rff_cos_seconds = CosSweepSecondsThisThread() - cos_seconds_at_start;
  return Status::OK();
}

}  // namespace sbrl

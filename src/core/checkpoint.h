#ifndef SBRL_CORE_CHECKPOINT_H_
#define SBRL_CORE_CHECKPOINT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "tensor/matrix.h"

namespace sbrl {

/// One trainable parameter's persistent slice of a checkpoint: the
/// value plus both Adam moment estimates, keyed by the Param's unique
/// name so load-time matching is structural, not positional-only.
struct ParamCheckpoint {
  /// Param::name of the captured parameter.
  std::string name;
  /// Param::value at the capture point.
  Matrix value;
  /// First Adam moment estimate (Param::adam_m).
  Matrix adam_m;
  /// Second Adam moment estimate (Param::adam_v).
  Matrix adam_v;
};

/// One named non-parameter state matrix (see NamedStateRef): BatchNorm
/// running statistics and any future module state outside the
/// gradient path.
struct StateCheckpoint {
  /// NamedStateRef::name of the captured matrix.
  std::string name;
  /// The captured state value.
  Matrix value;
};

/// Complete snapshot of an SbrlTrainer run at an iteration boundary.
///
/// The contract (locked by tests/golden_trace_test.cc): a run restored
/// from a TrainingCheckpoint continues BIT-FOR-BIT identically to the
/// uninterrupted run that produced it — every training-loop degree of
/// freedom is captured: parameter values, Adam moments and step
/// counts, the learned sample weights (a ParamCheckpoint like any
/// other), BatchNorm running statistics, the HSIC/RFF rng stream, the
/// learning-rate schedule position (iteration + recovery backoff
/// scale), early-stopping tracking including the best-parameter
/// snapshot, the divergence-recovery counters, and the
/// TrainDiagnostics loss traces recorded so far.
///
/// The same struct serves two transports: the in-memory rollback
/// snapshot of the divergence-recovery policy (never serialized) and
/// the versioned on-disk format of SaveCheckpoint/LoadCheckpoint.
struct TrainingCheckpoint {
  /// First iteration the restored run should execute (capture happens
  /// at the END of iteration next_iteration - 1).
  int64_t next_iteration = 0;
  /// AdamOptimizer::step_count of the decayed-parameter optimizer.
  int64_t opt_decay_steps = 0;
  /// AdamOptimizer::step_count of the plain-parameter optimizer.
  int64_t opt_plain_steps = 0;
  /// AdamOptimizer::step_count of the sample-weight optimizer.
  int64_t opt_w_steps = 0;
  /// Best validation loss seen so far (early stopping).
  double best_valid = std::numeric_limits<double>::infinity();
  /// Consecutive non-improving evaluations so far (early stopping).
  int64_t bad_evals = 0;
  /// Iteration whose parameters are the early-stopping best (-1 none).
  int64_t best_iteration = -1;
  /// First iteration a non-finite / exploded signal was observed
  /// (-1: none). Mirrors TrainDiagnostics::first_bad_iteration.
  int64_t first_bad_iteration = -1;
  /// Divergence rollbacks consumed so far (counts against
  /// SbrlConfig::recovery_max_retries).
  int64_t rollbacks = 0;
  /// Recovery learning-rate backoff scale in effect
  /// (ExponentialDecaySchedule::scale; 1.0 until a rollback).
  double lr_scale = 1.0;
  /// Loss-explosion reference scale (|first finite train loss| + 1);
  /// negative while unset.
  double loss_anchor = -1.0;
  /// Serialized std::mt19937_64 state of the trainer's HSIC rng
  /// stream (the textual form of its stream operators).
  std::string rng_state;
  /// Every trainable parameter incl. the sample weights, in collection
  /// order.
  std::vector<ParamCheckpoint> params;
  /// Non-parameter module state (BatchNorm running statistics).
  std::vector<StateCheckpoint> state;
  /// Early-stopping best parameter values, parallel to `params`
  /// (empty when no improving evaluation happened yet).
  std::vector<Matrix> best_snapshot;
  /// TrainDiagnostics::train_loss recorded so far.
  std::vector<double> train_loss;
  /// TrainDiagnostics::valid_loss recorded so far.
  std::vector<double> valid_loss;
  /// TrainDiagnostics::weight_loss recorded so far.
  std::vector<double> weight_loss;
};

/// The on-disk format version SaveCheckpoint writes. Bump on any
/// layout change; LoadCheckpoint rejects other versions with
/// FailedPrecondition (no silent cross-version reinterpretation).
constexpr uint32_t kCheckpointFormatVersion = 1;

/// Serializes `ckpt` to `path` atomically: the encoded bytes are
/// written to `path + ".tmp"` and renamed over `path` only after a
/// successful flush, so a crash mid-save can never leave a truncated
/// file at `path`. Layout: an 8-byte magic ("SBRLCKPT"), a u32 format
/// version, and length-prefixed sections each trailed by a CRC32 of
/// its payload (see docs/ARCHITECTURE.md "Failure handling &
/// recovery" for the exact layout). Returns Internal on I/O failure
/// (fault site "checkpoint/write" injects one).
Status SaveCheckpoint(const TrainingCheckpoint& ckpt,
                      const std::string& path);

/// Reads and validates a checkpoint written by SaveCheckpoint.
/// Returns NotFound when `path` does not exist, InvalidArgument when
/// it is not a checkpoint (bad magic), FailedPrecondition on a format
/// version mismatch, and Internal on truncation or a CRC mismatch
/// (fault site "checkpoint/read" injects a failure).
StatusOr<TrainingCheckpoint> LoadCheckpoint(const std::string& path);

}  // namespace sbrl

#endif  // SBRL_CORE_CHECKPOINT_H_

#ifndef SBRL_CORE_BLENDED_ESTIMATOR_H_
#define SBRL_CORE_BLENDED_ESTIMATOR_H_

#include <vector>

#include "core/estimator.h"
#include "core/ood_detector.h"

namespace sbrl {

/// The interpolation scheme sketched in the paper's conclusion: vanilla
/// backbones exploit unstable features and win in-distribution, while
/// SBRL-HAP discards them and wins out-of-distribution. This estimator
/// trains BOTH on the same data, measures each target population's OOD
/// level lambda with an OodLevelDetector, and predicts
///   ITE_hat = (1 - lambda) * ITE_vanilla + lambda * ITE_stable,
/// recovering the vanilla model's ID accuracy at lambda ~ 0 and the
/// stable model's OOD robustness at lambda ~ 1.
class BlendedHteEstimator {
 public:
  /// Builds the pair of estimators from `config` (its framework field
  /// selects the *stable* member; the vanilla member is the same
  /// backbone with FrameworkKind::kVanilla).
  static StatusOr<BlendedHteEstimator> Create(
      const EstimatorConfig& config,
      const OodLevelDetector::Options& detector_options);
  /// Same with default detector options.
  static StatusOr<BlendedHteEstimator> Create(const EstimatorConfig& config) {
    return Create(config, OodLevelDetector::Options());
  }

  /// Fits both members and calibrates the OOD detector on the training
  /// covariates.
  Status Fit(const CausalDataset& train,
             const CausalDataset* valid = nullptr);

  /// Population-level OOD degree of `x` in [0, 1].
  double OodLevel(const Matrix& x) const;

  /// Blended ITE predictions for the rows of `x`.
  std::vector<double> PredictIte(const Matrix& x) const;

  /// Blended ATE over the rows of `x`.
  double PredictAte(const Matrix& x) const;

  /// The in-distribution (vanilla-framework) member of the blend.
  const HteEstimator& vanilla() const { return vanilla_; }
  /// The OOD-robust (SBRL/SBRL-HAP) member of the blend.
  const HteEstimator& stable() const { return stable_; }

 private:
  BlendedHteEstimator(HteEstimator vanilla, HteEstimator stable,
                      OodLevelDetector::Options options)
      : vanilla_(std::move(vanilla)), stable_(std::move(stable)),
        detector_options_(options) {}

  HteEstimator vanilla_;
  HteEstimator stable_;
  OodLevelDetector::Options detector_options_;
  std::optional<OodLevelDetector> detector_;
};

}  // namespace sbrl

#endif  // SBRL_CORE_BLENDED_ESTIMATOR_H_

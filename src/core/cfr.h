#ifndef SBRL_CORE_CFR_H_
#define SBRL_CORE_CFR_H_

#include "core/tarnet.h"

namespace sbrl {

/// CFR (CounterFactual Regression; Shalit et al., 2017 / Johansson et
/// al., 2016): TARNet plus an IPM penalty dist(Phi_t, Phi_c) weighted
/// by alpha that balances the representation across treatment arms.
/// Under SBRL the same IPM expression is evaluated on the *weighted*
/// arm distributions (paper Eq. 4), which this backbone receives
/// through the `w` node of Forward.
class CfrBackbone : public TarnetBackbone {
 public:
  /// TARNet with the configured IPM weight (config.cfr.alpha_ipm)
  /// enabled — everything else is inherited.
  CfrBackbone(const EstimatorConfig& config, int64_t input_dim, Rng& rng)
      : TarnetBackbone(config, input_dim, rng, config.cfr.alpha_ipm) {}
};

}  // namespace sbrl

#endif  // SBRL_CORE_CFR_H_

#ifndef SBRL_CORE_BALANCING_REGULARIZER_H_
#define SBRL_CORE_BALANCING_REGULARIZER_H_

#include <vector>

#include "autodiff/ops.h"
#include "core/config.h"

namespace sbrl {

/// Differentiable weighted IPM between the treated-arm and control-arm
/// rows of `rep` under sample weights `w` (paper Eq. 4):
///   L_B = dist(P^w_{Phi_c}, P^w_{Phi_t}).
///
/// Both `rep` (n x d) and `w` (n x 1, non-negative) are tape nodes, so
/// the same expression serves two roles:
///  - in the network step, `rep` is differentiable and `w` constant —
///    the CFR-style balancing pressure on the representation;
///  - in the weight step, `rep` is constant and `w` differentiable —
///    the paper's Balancing Regularizer learning weights that balance
///    the arms (model-free, no gradient into the network).
///
/// kLinearMmd: squared distance between weighted arm means.
/// kRbfMmd: weighted biased MMD^2 with an RBF kernel of `rbf_bandwidth`.
Var WeightedIpmLoss(Var rep, Var w, const std::vector<int>& t, IpmKind kind,
                    double rbf_bandwidth);

/// Same metric with the arms and their weights already separated —
/// used by DeR-CFR's confounder balancing, where each arm carries its
/// own learned weighting network omega(C).
Var WeightedIpmLossSplit(Var rep_t, Var w_t, Var rep_c, Var w_c,
                         IpmKind kind, double rbf_bandwidth);

}  // namespace sbrl

#endif  // SBRL_CORE_BALANCING_REGULARIZER_H_

#ifndef SBRL_CORE_ESTIMATOR_H_
#define SBRL_CORE_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "core/backbone.h"
#include "core/trainer.h"
#include "data/causal_dataset.h"

namespace sbrl {

/// The library's public entry point: a heterogeneous-treatment-effect
/// estimator combining a backbone (TARNet / CFR / DeR-CFR) with a
/// stable-learning framework (vanilla / SBRL / SBRL-HAP).
///
/// Usage:
///   EstimatorConfig config;
///   config.backbone = BackboneKind::kCfr;
///   config.framework = FrameworkKind::kSbrlHap;
///   auto estimator = HteEstimator::Create(config);
///   if (!estimator.ok()) { ... }
///   estimator->Fit(train, &valid);
///   std::vector<double> ite = estimator->PredictIte(test.x);
///   double ate = estimator->PredictAte(test.x);
class HteEstimator {
 public:
  /// Validates `config` and constructs an unfitted estimator.
  static StatusOr<HteEstimator> Create(const EstimatorConfig& config);

  /// Trains on `train` with optional validation-based early stopping.
  /// Binary vs continuous outcome handling follows
  /// `train.binary_outcome`; continuous outcomes are standardized
  /// internally and de-standardized at prediction time. `ctx`, when
  /// non-null, supplies session-leased run resources (an
  /// ExperimentSession lease; see core/run_context.h) — results are
  /// bitwise identical with or without one.
  Status Fit(const CausalDataset& train, const CausalDataset* valid = nullptr,
             RunContext* ctx = nullptr);

  /// Predicted potential outcomes for each row of `x` -> (n x 2)
  /// matrix, column 0 = y0_hat, column 1 = y1_hat. Binary outcomes are
  /// returned as probabilities.
  Matrix PredictPotentialOutcomes(const Matrix& x) const;

  /// Predicted individual treatment effects y1_hat - y0_hat.
  std::vector<double> PredictIte(const Matrix& x) const;

  /// Predicted average treatment effect over the rows of `x`.
  double PredictAte(const Matrix& x) const;

  /// The balanced representation Z_r of `x` (for decorrelation
  /// diagnostics; paper Fig. 5).
  Matrix RepresentationOf(const Matrix& x) const;

  /// Learned sample weights (uniform for vanilla frameworks).
  const Matrix& sample_weights() const { return weights_; }

  /// Training record of the last Fit() (loss curves, timing shares).
  const TrainDiagnostics& diagnostics() const { return diag_; }
  /// The validated configuration this estimator was created with.
  const EstimatorConfig& config() const { return config_; }
  /// True once Fit() has succeeded; prediction requires it.
  bool fitted() const { return fitted_; }

  /// The fitted backbone, for export plumbing (serving-model capture of
  /// parameters and BatchNorm state); null before Fit(). Non-const
  /// because the parameter-collection interface is non-const.
  Backbone* fitted_backbone() { return backbone_.get(); }
  /// Whether the last Fit() saw a binary outcome (predictions are
  /// probabilities) or a continuous one (de-standardized).
  bool binary_outcome() const { return binary_outcome_; }
  /// Training-set outcome mean used for continuous de-standardization.
  double outcome_mean() const { return y_mean_; }
  /// Training-set outcome stddev used for continuous de-standardization.
  double outcome_std() const { return y_std_; }

 private:
  explicit HteEstimator(const EstimatorConfig& config) : config_(config) {}

  BackboneForward PredictForward(ParamBinder& binder,
                                 const Matrix& x) const;

  EstimatorConfig config_;
  std::shared_ptr<Backbone> backbone_;  // shared: keeps estimator movable
  Matrix weights_;
  TrainDiagnostics diag_;
  bool fitted_ = false;
  bool binary_outcome_ = true;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
};

}  // namespace sbrl

#endif  // SBRL_CORE_ESTIMATOR_H_

#ifndef SBRL_CORE_HAP_H_
#define SBRL_CORE_HAP_H_

#include <vector>

#include "core/config.h"
#include "stats/rff.h"
#include "tensor/random.h"

namespace sbrl {

/// Detached network activations captured from the latest network-step
/// forward pass, grouped by HAP priority.
struct WeightLossInputs {
  Matrix z_p;               ///< first priority: last hidden layer
  Matrix z_r;               ///< second priority: balanced representation
  std::vector<Matrix> z_o;  ///< third priority: all other hidden layers
  std::vector<int> t;       ///< treatment assignment (for L_B)
};

/// Records the sample-weight objective L_w (paper Eq. 11) on the tape
/// of the differentiable weight node `w`:
///   L_w = alpha_br * L_B                      (Balancing Regularizer)
///       + gamma1 * L_D(Z_p, w)                (Independence Regularizer)
///       + gamma2 * L_D(Z_r, w)                (HAP, second priority)
///       + gamma3 * sum_i L_D(Z_o_i, w)        (HAP, third priority)
///       + R_w                                  (mean (w_i - 1)^2)
/// For FrameworkKind::kSbrl the gamma2 / gamma3 tiers are dropped —
/// classic last-layer-only stable learning.
///
/// `alpha_br` is the *effective* balancing weight (already zeroed for
/// TARNet backbones); `ipm` / `rbf_bandwidth` choose the L_B metric.
///
/// One RFF draw epoch is derived from `rng` per call (i.e. per weight
/// step) and shared by every decorrelation tier, so tiers reuse the
/// per-column projection draws they have in common. `proj_cache`, when
/// non-null, memoizes those draws across the tiers (the trainer passes
/// its cache when SbrlConfig::rff_projection_cache is set); results
/// are bitwise identical with or without it.
Var BuildWeightLoss(Var w, const WeightLossInputs& inputs,
                    const SbrlConfig& config, FrameworkKind framework,
                    double alpha_br, IpmKind ipm, double rbf_bandwidth,
                    Rng& rng, RffProjectionCache* proj_cache = nullptr);

}  // namespace sbrl

#endif  // SBRL_CORE_HAP_H_

#include "core/tarnet.h"

#include "core/balancing_regularizer.h"

namespace sbrl {

namespace {

MlpConfig RepConfig(int64_t input_dim, const NetworkConfig& config) {
  MlpConfig rep;
  rep.input_dim = input_dim;
  rep.hidden.assign(static_cast<size_t>(config.rep_layers),
                    config.rep_width);
  rep.activation = config.activation;
  rep.batchnorm = config.batchnorm;
  return rep;
}

}  // namespace

TarnetBackbone::TarnetBackbone(const EstimatorConfig& config,
                               int64_t input_dim, Rng& rng, double alpha_ipm)
    : input_dim_(input_dim),
      network_(config.network),
      net_step_mode_(config.sbrl.net_step_mode),
      alpha_ipm_(alpha_ipm),
      ipm_kind_(config.cfr.ipm),
      rbf_bandwidth_(config.cfr.rbf_bandwidth),
      rep_net_("rep", RepConfig(input_dim, config.network), rng),
      heads_("heads", config.network.rep_width, config.network, rng) {}

BackboneForward TarnetBackbone::Forward(ParamBinder& binder, const Matrix& x,
                                        const std::vector<int>& t, Var w,
                                        bool training) {
  SBRL_CHECK_EQ(x.cols(), input_dim_);
  Tape* tape = binder.tape();
  Var input = tape->Constant(x);
  std::vector<Var> rep_layers =
      rep_net_.ForwardCollect(binder, input, training, net_step_mode_);
  Var rep = rep_layers.back();
  if (network_.rep_normalization) rep = ops::NormalizeRows(rep);

  OutcomeHeads::Result heads =
      heads_.Forward(binder, rep, t, training, net_step_mode_);

  BackboneForward out;
  out.y0 = heads.y0;
  out.y1 = heads.y1;
  out.rep = rep;
  out.z_p = heads.z_p;
  // Z_o: every rep layer before the balanced one + head hiddens before
  // the last.
  for (size_t i = 0; i + 1 < rep_layers.size(); ++i) {
    out.z_other.push_back(rep_layers[i]);
  }
  for (const Var& h : heads.hidden) out.z_other.push_back(h);

  if (training && alpha_ipm_ > 0.0) {
    out.aux_loss = ops::Scale(
        WeightedIpmLoss(rep, w, t, ipm_kind_, rbf_bandwidth_), alpha_ipm_);
  } else {
    out.aux_loss = tape->Constant(Matrix::Zeros(1, 1));
  }
  return out;
}

void TarnetBackbone::CollectParams(std::vector<Param*>* out) {
  rep_net_.CollectParams(out);
  heads_.CollectParams(out);
}

void TarnetBackbone::CollectStateMatrices(std::vector<NamedStateRef>* out) {
  rep_net_.CollectStateMatrices(out);
  heads_.CollectStateMatrices(out);
}

std::vector<Param*> TarnetBackbone::DecayParams() {
  return heads_.DecayParams();
}

}  // namespace sbrl

#ifndef SBRL_CORE_RUN_CONTEXT_H_
#define SBRL_CORE_RUN_CONTEXT_H_

#include "stats/rff.h"
#include "tensor/pool.h"

namespace sbrl {

/// The mutable per-run resources one training run owns exclusively for
/// its duration — everything a run would otherwise have to reach for
/// through process-global state. An ExperimentSession hands one out per
/// scheduled run (recycling resource sets across runs so steady-state
/// sweeps keep warm buffer pools); a standalone HteEstimator::Fit with
/// no context falls back to trainer-owned instances. Either way the
/// resources are touched by exactly one thread at a time (the run's),
/// which is what lets the not-thread-safe pool and cache stay lock-free
/// on the training hot path.
///
/// Resource recycling is value-transparent by construction:
/// MatrixPool::AcquireZero zeroes recycled buffers and the projection
/// cache's draws are pure functions of their keys, so which run
/// previously used a resource set can never change any bit of a later
/// run's result (the sweep-determinism contract, docs/ARCHITECTURE.md
/// "Experiment engine").
struct RunContext {
  /// Buffer arena for the run's autodiff tapes. Never null when the
  /// context comes from a session lease.
  MatrixPool* tape_pool = nullptr;
  /// Per-run RFF projection memoizer (possibly wired to the session's
  /// SharedRffProjectionCache behind it). Never null when the context
  /// comes from a session lease.
  RffProjectionCache* rff_cache = nullptr;
};

}  // namespace sbrl

#endif  // SBRL_CORE_RUN_CONTEXT_H_

#include "core/dercfr.h"

#include "core/balancing_regularizer.h"

namespace sbrl {

namespace {

MlpConfig RepConfig(const std::string&, int64_t input_dim,
                    const NetworkConfig& config) {
  MlpConfig rep;
  rep.input_dim = input_dim;
  rep.hidden.assign(static_cast<size_t>(config.rep_layers),
                    config.rep_width);
  rep.activation = config.activation;
  rep.batchnorm = config.batchnorm;
  return rep;
}

/// Normalized first-layer feature importance: p_j ~ sum_k |W1[j, k]|.
Var FeatureImportance(ParamBinder& binder, Mlp& net) {
  Var w1 = binder.Bind(net.mutable_layer(0).weight());
  Var mass = ops::RowSum(ops::Abs(w1));  // (input_dim x 1)
  return ops::DivScalar(mass, ops::AddConst(ops::SumAll(mass), 1e-12));
}

}  // namespace

DerCfrBackbone::DerCfrBackbone(const EstimatorConfig& config,
                               int64_t input_dim, Rng& rng)
    : input_dim_(input_dim),
      network_(config.network),
      net_step_mode_(config.sbrl.net_step_mode),
      config_(config.dercfr),
      i_net_("I", RepConfig("I", input_dim, config.network), rng),
      c_net_("C", RepConfig("C", input_dim, config.network), rng),
      a_net_("A", RepConfig("A", input_dim, config.network), rng),
      heads_("heads", 2 * config.network.rep_width, config.network, rng),
      t_head_("t_head", 2 * config.network.rep_width, 1, rng),
      weight_head_t_("omega_t", config.network.rep_width, 1, rng),
      weight_head_c_("omega_c", config.network.rep_width, 1, rng) {}

void DerCfrBackbone::SetOutcomes(const Matrix& y) {
  SBRL_CHECK_EQ(y.cols(), 1);
  y_ = y;
}

BackboneForward DerCfrBackbone::Forward(ParamBinder& binder, const Matrix& x,
                                        const std::vector<int>& t, Var w,
                                        bool training) {
  SBRL_CHECK_EQ(x.cols(), input_dim_);
  Tape* tape = binder.tape();
  Var input = tape->Constant(x);

  std::vector<Var> i_layers =
      i_net_.ForwardCollect(binder, input, training, net_step_mode_);
  std::vector<Var> c_layers =
      c_net_.ForwardCollect(binder, input, training, net_step_mode_);
  std::vector<Var> a_layers =
      a_net_.ForwardCollect(binder, input, training, net_step_mode_);
  Var rep_i = i_layers.back();
  Var rep_c = c_layers.back();
  Var rep_a = a_layers.back();
  if (network_.rep_normalization) {
    rep_i = ops::NormalizeRows(rep_i);
    rep_c = ops::NormalizeRows(rep_c);
    rep_a = ops::NormalizeRows(rep_a);
  }

  Var rep_ca = ops::ConcatCols(rep_c, rep_a);  // outcome representation
  OutcomeHeads::Result heads =
      heads_.Forward(binder, rep_ca, t, training, net_step_mode_);

  BackboneForward out;
  out.y0 = heads.y0;
  out.y1 = heads.y1;
  out.rep = rep_ca;
  out.z_p = heads.z_p;
  for (const Var& h : i_layers) out.z_other.push_back(h);
  for (size_t i = 0; i + 1 < c_layers.size(); ++i) {
    out.z_other.push_back(c_layers[i]);
  }
  for (size_t i = 0; i + 1 < a_layers.size(); ++i) {
    out.z_other.push_back(a_layers[i]);
  }
  for (const Var& h : heads.hidden) out.z_other.push_back(h);

  Var aux = tape->Constant(Matrix::Zeros(1, 1));
  if (training) {
    const int64_t n = x.rows();
    std::vector<int64_t> treated, control;
    for (size_t i = 0; i < t.size(); ++i) {
      (t[i] == 1 ? treated : control).push_back(static_cast<int64_t>(i));
    }
    SBRL_CHECK(!treated.empty() && !control.empty());

    // (1) mu: adjustment balance — A must not separate the arms.
    if (config_.adjustment_balance > 0.0) {
      aux = ops::Add(aux, ops::Scale(WeightedIpmLoss(rep_a, w, t,
                                                     config_.ipm,
                                                     config_.rbf_bandwidth),
                                     config_.adjustment_balance));
    }

    // (2) beta: instrument-outcome independence within each arm, via a
    // covariance penalty against the centered factual outcome.
    if (config_.instrument_indep > 0.0) {
      SBRL_CHECK_EQ(y_.rows(), n)
          << "DeR-CFR needs SetOutcomes before training forward";
      for (const auto* arm : {&treated, &control}) {
        const auto& idx = *arm;
        Matrix y_arm(static_cast<int64_t>(idx.size()), 1);
        double mean = 0.0;
        for (size_t i = 0; i < idx.size(); ++i) mean += y_(idx[i], 0);
        mean /= static_cast<double>(idx.size());
        for (size_t i = 0; i < idx.size(); ++i) {
          y_arm(static_cast<int64_t>(i), 0) = y_(idx[i], 0) - mean;
        }
        Var i_arm = ops::GatherRows(rep_i, idx);
        Var cov = ops::Matmul(ops::Transpose(i_arm), tape->Constant(y_arm));
        cov = ops::Scale(cov, 1.0 / static_cast<double>(idx.size()));
        aux = ops::Add(aux, ops::Scale(ops::SumAll(ops::Square(cov)),
                                       config_.instrument_indep));
      }
    }

    // (3) alpha: confounder balancing under learned per-arm weights
    // omega(C), anchored near 1.
    if (config_.confounder_balance > 0.0) {
      Var c_t = ops::GatherRows(rep_c, treated);
      Var c_c = ops::GatherRows(rep_c, control);
      Var omega_t = ops::Softplus(weight_head_t_.Forward(binder, c_t));
      Var omega_c = ops::Softplus(weight_head_c_.Forward(binder, c_c));
      Var balance = WeightedIpmLossSplit(c_t, omega_t, c_c, omega_c,
                                         config_.ipm, config_.rbf_bandwidth);
      Var anchor = ops::Add(
          ops::MeanAll(ops::Square(ops::AddConst(omega_t, -1.0))),
          ops::MeanAll(ops::Square(ops::AddConst(omega_c, -1.0))));
      aux = ops::Add(aux, ops::Scale(ops::Add(balance, anchor),
                                     config_.confounder_balance));
    }

    // (4) gamma: first-layer feature-importance orthogonality.
    if (config_.orthogonality > 0.0) {
      Var p_i = FeatureImportance(binder, i_net_);
      Var p_c = FeatureImportance(binder, c_net_);
      Var p_a = FeatureImportance(binder, a_net_);
      Var ortho = ops::Add(ops::Add(ops::SumAll(ops::Mul(p_i, p_c)),
                                    ops::SumAll(ops::Mul(p_i, p_a))),
                           ops::SumAll(ops::Mul(p_c, p_a)));
      aux = ops::Add(aux, ops::Scale(ortho, config_.orthogonality));
    }

    // (5) treatment prediction from [I, C].
    if (config_.treatment_loss > 0.0) {
      Var rep_ic = ops::ConcatCols(rep_i, rep_c);
      Var t_logit = t_head_.Forward(binder, rep_ic);
      Matrix t_labels(n, 1);
      for (int64_t i = 0; i < n; ++i) {
        t_labels(i, 0) = static_cast<double>(t[static_cast<size_t>(i)]);
      }
      Var t_loss = ops::MeanAll(
          ops::SigmoidCrossEntropyWithLogits(t_logit, t_labels));
      aux = ops::Add(aux, ops::Scale(t_loss, config_.treatment_loss));
    }
  }
  out.aux_loss = aux;
  return out;
}

void DerCfrBackbone::CollectParams(std::vector<Param*>* out) {
  i_net_.CollectParams(out);
  c_net_.CollectParams(out);
  a_net_.CollectParams(out);
  heads_.CollectParams(out);
  t_head_.CollectParams(out);
  weight_head_t_.CollectParams(out);
  weight_head_c_.CollectParams(out);
}

void DerCfrBackbone::CollectStateMatrices(std::vector<NamedStateRef>* out) {
  i_net_.CollectStateMatrices(out);
  c_net_.CollectStateMatrices(out);
  a_net_.CollectStateMatrices(out);
  heads_.CollectStateMatrices(out);
}

std::vector<Param*> DerCfrBackbone::DecayParams() {
  return heads_.DecayParams();
}

}  // namespace sbrl

#ifndef SBRL_CORE_CONFIG_H_
#define SBRL_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/cpu.h"
#include "common/simd.h"
#include "common/status.h"
#include "nn/mlp.h"

namespace sbrl {

/// Which backbone network estimates the potential outcomes. These are
/// the three baselines the paper plugs SBRL / SBRL-HAP into (Sec. V-A).
enum class BackboneKind {
  kTarnet,  ///< shared representation + two heads, no balancing
  kCfr,     ///< TARNet + IPM representation balancing
  kDerCfr,  ///< decomposed I/C/A representations (Wu et al., TKDE'22)
};

/// Which stable-learning framework wraps the backbone.
enum class FrameworkKind {
  kVanilla,  ///< the plain backbone
  kSbrl,     ///< + Balancing & Independence Regularizers (last layer only)
  kSbrlHap,  ///< + Hierarchical-Attention Paradigm (all layers)
};

/// Integral probability metric used for representation balancing.
enum class IpmKind { kLinearMmd, kRbfMmd };

/// How the pairwise HSIC-RFF decorrelation loss L_D is evaluated.
///
/// kBatched stacks every feature's RFF block into one n x (d*k) matrix
/// and measures all selected pairs through one block cross-covariance
/// kernel — the production path. kExact keeps the original per-pair op
/// loop as a reference. The two paths evaluate the same estimator on
/// the same pair set and RFF draws; only floating-point summation
/// order differs, so their losses agree to a relative tolerance of
/// 1e-9 (enforced by ctest; see README "Weight-loss batching").
enum class BatchedHsicMode {
  kExact,    ///< per-pair tape ops — the reference formulation
  kBatched,  ///< block-diagonal batched kernels (default)
};

/// How SbrlTrainer responds when its health monitor detects a
/// divergence (a non-finite loss term, a non-finite gradient digest,
/// or a loss explosion past SbrlConfig::recovery_explosion_factor).
///
/// kRollback (default) restores the last healthy in-memory snapshot —
/// parameters, optimizer moments, sample weights, BatchNorm running
/// statistics, the rng stream, and the early-stopping state — shrinks
/// the learning rate by SbrlConfig::recovery_lr_backoff, and replays
/// from the restored iteration, up to
/// SbrlConfig::recovery_max_retries rollbacks; an exhausted budget
/// fails the run with a typed kInternal Status carrying the
/// divergence diagnostics. kOff fails immediately on first detection.
/// Either way Train() never returns NaN results as if they were fine:
/// TrainDiagnostics::first_bad_iteration records the detection point.
///
/// The SBRL_RECOVERY environment variable ("off" / "rollback"), when
/// set, overrides this field — the same env > config resolution the
/// ISA knob uses. With no faults and no divergence the policy is
/// observation-only: training under kRollback is bitwise identical to
/// kOff (locked by tests/golden_trace_test.cc).
enum class RecoveryMode {
  kOff,       ///< fail fast: first detection returns kInternal
  kRollback,  ///< roll back + LR backoff + retry (default)
};

/// Human-readable backbone name ("TARNet" / "CFR" / "DeR-CFR").
const char* BackboneName(BackboneKind kind);
/// Human-readable framework suffix ("vanilla" / "+SBRL" / "+SBRL-HAP").
const char* FrameworkName(FrameworkKind kind);
/// Human-readable BatchedHsicMode name ("exact" / "batched").
const char* BatchedHsicModeName(BatchedHsicMode mode);
/// Human-readable RecoveryMode name ("off" / "rollback").
const char* RecoveryModeName(RecoveryMode mode);

/// Returns e.g. "CFR+SBRL-HAP" — the method names used in the paper's
/// tables.
std::string MethodName(BackboneKind backbone, FrameworkKind framework);

/// Architecture of the representation network and outcome heads
/// (paper Table IV notation: {d_r, d_y} depths, {h_r, h_y} widths).
struct NetworkConfig {
  /// Depth d_r of the representation network.
  int64_t rep_layers = 3;
  /// Width h_r of each representation layer.
  int64_t rep_width = 64;
  /// Depth d_y of each outcome head.
  int64_t head_layers = 3;
  /// Width h_y of each outcome-head layer.
  int64_t head_width = 32;
  /// Insert batch normalization after every hidden layer.
  bool batchnorm = false;
  /// Scale representation rows to unit L2 norm (CFR's rep normalization).
  bool rep_normalization = false;
  /// Hidden-layer nonlinearity.
  Activation activation = Activation::kElu;
};

/// CFR-specific knobs.
struct CfrConfig {
  /// Weight of the IPM balancing term (paper's alpha).
  double alpha_ipm = 1.0;
  /// IPM family of the balancing term.
  IpmKind ipm = IpmKind::kLinearMmd;
  /// Kernel bandwidth when `ipm` is kRbfMmd.
  double rbf_bandwidth = 1.0;
};

/// DeR-CFR-specific loss weights, mirroring the roles of the paper's
/// Table V hyper-parameters {alpha, beta, gamma, mu, lambda}.
struct DerCfrConfig {
  /// alpha: confounder balancing between arms with learned per-arm
  /// weights omega(C).
  double confounder_balance = 1.0;
  /// beta: instrument-outcome independence I _||_ Y | T.
  double instrument_indep = 0.1;
  /// gamma: first-layer feature-importance orthogonality among I/C/A.
  double orthogonality = 1.0;
  /// mu: adjustment balance IPM(A_t, A_c).
  double adjustment_balance = 1.0;
  /// Treatment-prediction loss weight for the t-head on [I, C].
  double treatment_loss = 0.5;
  /// IPM family of the balance terms.
  IpmKind ipm = IpmKind::kLinearMmd;
  /// Kernel bandwidth when `ipm` is kRbfMmd.
  double rbf_bandwidth = 1.0;
};

/// SBRL / SBRL-HAP framework knobs (paper Eq. 11).
struct SbrlConfig {
  /// alpha: weight of the Balancing Regularizer term L_B in L_w.
  /// Forced to 0 for TARNet backbones (paper Table IV footnote).
  double alpha_br = 1.0;
  /// gamma1: decorrelation of the last hidden layer Z_p (the classic
  /// stable-learning target).
  double gamma1 = 1.0;
  /// gamma2: decorrelation of the balanced representation Z_r
  /// (HAP only).
  double gamma2 = 1e-3;
  /// gamma3: decorrelation of every other hidden layer Z_o (HAP only).
  double gamma3 = 1e-3;
  /// n_A = n_B: random Fourier features per scalar variable (paper
  /// default 5).
  int64_t rff_features = 5;
  /// Random feature-pair subsample per decorrelation loss evaluation;
  /// 0 measures every pair (StableNet-style stochastic decorrelation).
  int64_t hsic_pair_budget = 48;
  /// Batched vs per-pair evaluation of L_D (see BatchedHsicMode).
  BatchedHsicMode hsic_mode = BatchedHsicMode::kBatched;
  /// Cosine path of the RFF feature sweeps inside L_D: the SIMD
  /// vectorized kernel (default) or the scalar std::cos reference.
  /// Mirrors hsic_mode: kExact evaluates every cosine with scalar
  /// std::cos, bit for bit (see CosineMode in common/simd.h). Note
  /// the projection DRAWS are slot-keyed per epoch either way, so
  /// neither mode reproduces the pre-PR-3 sequential-rng training
  /// trajectories — kExact pins down the evaluation, not history.
  CosineMode rff_cos_mode = CosineMode::kVectorized;
  /// How the network step records the head forward/backward chain:
  /// one fused tape node per layer (default) or the per-primitive
  /// reference formulation. Mirrors hsic_mode / rff_cos_mode. Without
  /// batch norm the two modes train bitwise identically; with batch
  /// norm they agree to rounding error in the backward pass (see
  /// NetStepMode in nn/net_step.h and tests/golden_trace_test.cc).
  NetStepMode net_step_mode = NetStepMode::kFused;
  /// Requested kernel instruction-set level (see Isa / IsaChoice in
  /// common/cpu.h). kAuto (default) resolves to the widest level the
  /// host CPU and this build support; kBaseline forces the portable
  /// pre-dispatch kernels bit for bit. The SBRL_ISA environment
  /// variable, when set to a valid level, overrides this field —
  /// resolution order: SBRL_ISA env > config > auto-detect, always
  /// clamped to what the host supports. The trainer applies the choice
  /// process-wide at Train() entry and records the resolved level in
  /// TrainDiagnostics::isa.
  IsaChoice isa = IsaChoice::kAuto;
  /// Memoize per-slot RFF projection draws across the HAP tiers of one
  /// weight step (they share the in_dim = 1, k = rff_features stream).
  /// Value-transparent: training is bitwise identical with the cache
  /// on or off — the flag only trades memory for repeated sampling
  /// work (see RffProjectionCache in stats/rff.h).
  bool rff_projection_cache = true;
  /// Divergence response of the training health monitor (see
  /// RecoveryMode). Mode knob following hsic_mode / rff_cos_mode /
  /// net_step_mode; overridable via the SBRL_RECOVERY env variable.
  RecoveryMode recovery_mode = RecoveryMode::kRollback;
  /// Multiplicative learning-rate shrink applied on every divergence
  /// rollback (in (0, 1]); compounds across rollbacks and applies to
  /// both the network and the sample-weight learning rates.
  double recovery_lr_backoff = 0.5;
  /// Divergence rollbacks tolerated before Train() gives up with a
  /// kInternal Status (>= 0; 0 makes kRollback behave like kOff).
  int64_t recovery_max_retries = 3;
  /// Loss-explosion threshold: the run is declared divergent when
  /// |train loss| exceeds this factor times (|first finite train
  /// loss| + 1). Must be > 1.
  double recovery_explosion_factor = 1e6;
  /// Iterations between in-memory last-good snapshot captures (>= 1).
  /// A rollback replays at most this many iterations; smaller values
  /// lose less work per divergence but pay the snapshot copy more
  /// often (the "/health" share of the Table VI bench, budgeted at
  /// under 1% of fit time at the default cadence).
  int64_t recovery_snapshot_every = 10;
  /// Learning rate of the sample-weight learner.
  double lr_w = 5e-2;
  /// Run the weight step every k-th network step.
  int64_t weight_update_every = 1;
  /// Lower clamp keeping weights non-negative after each update.
  double weight_floor = 1e-3;
};

/// Optimization loop settings (paper Sec. V-C: Adam, exponential decay,
/// early stopping, max 3000 iterations; full-batch).
struct TrainConfig {
  /// Maximum full-batch iterations of Algorithm 1.
  int64_t iterations = 600;
  /// Initial Adam learning rate of the network step.
  double lr = 1e-3;
  /// Multiplicative decay factor of the exponential lr schedule.
  double lr_decay_rate = 0.97;
  /// Iterations between decay applications.
  int64_t lr_decay_steps = 100;
  /// L2 penalty on outcome-head weights (paper's R_l2 / lambda).
  double l2 = 1e-4;
  /// Validation cadence for early stopping; 0 disables.
  int64_t eval_every = 25;
  /// Number of consecutive non-improving evaluations tolerated.
  int64_t patience = 10;
  /// Master seed of initialization, draws, and shuffles.
  uint64_t seed = 1234;
  /// Log per-evaluation progress lines.
  bool verbose = false;
  /// Durable-checkpoint file path; empty disables on-disk
  /// checkpointing. Saves are atomic (temp file + rename) and
  /// versioned/CRC-protected (see core/checkpoint.h). A failed save is
  /// non-fatal: the trainer logs a warning, counts it in
  /// TrainDiagnostics::checkpoint_failures, and keeps training.
  std::string checkpoint_path;
  /// Iterations between checkpoint saves (> 0 requires a
  /// checkpoint_path; 0 disables periodic saves). A final checkpoint
  /// is also written when training completes with checkpointing on.
  int64_t checkpoint_every = 0;
  /// Resume from checkpoint_path when it exists: restores the full
  /// training state and continues bit-for-bit identically to an
  /// uninterrupted run (see core/checkpoint.h). A missing file starts
  /// fresh; an unreadable/corrupt file fails Train() instead of
  /// silently retraining from scratch.
  bool resume = false;
};

/// Complete configuration of an HteEstimator.
struct EstimatorConfig {
  /// Potential-outcome backbone network.
  BackboneKind backbone = BackboneKind::kCfr;
  /// Stable-learning framework wrapped around it.
  FrameworkKind framework = FrameworkKind::kSbrlHap;
  /// Network architecture.
  NetworkConfig network;
  /// CFR knobs (used when backbone == kCfr).
  CfrConfig cfr;
  /// DeR-CFR knobs (used when backbone == kDerCfr).
  DerCfrConfig dercfr;
  /// SBRL / SBRL-HAP framework knobs.
  SbrlConfig sbrl;
  /// Optimization-loop settings.
  TrainConfig train;

  /// Structural validation; returns InvalidArgument with a reason when
  /// a setting is out of range.
  Status Validate() const;
};

}  // namespace sbrl

#endif  // SBRL_CORE_CONFIG_H_

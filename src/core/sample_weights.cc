#include "core/sample_weights.h"

namespace sbrl {

SampleWeights::SampleWeights(int64_t n, double floor)
    : param_("sample_weights", Matrix::Ones(n, 1)), floor_(floor) {
  SBRL_CHECK_GT(n, 0);
  SBRL_CHECK_GE(floor, 0.0);
}

void SampleWeights::Project() {
  for (int64_t i = 0; i < param_.value.size(); ++i) {
    if (param_.value[i] < floor_) param_.value[i] = floor_;
  }
}

Matrix SampleWeights::NormalizedToMeanOne() const {
  const double mean = param_.value.Mean();
  SBRL_CHECK_GT(mean, 0.0);
  return param_.value * (1.0 / mean);
}

}  // namespace sbrl

#ifndef SBRL_CORE_INDEPENDENCE_REGULARIZER_H_
#define SBRL_CORE_INDEPENDENCE_REGULARIZER_H_

#include <cstdint>

#include "autodiff/ops.h"
#include "core/config.h"
#include "stats/rff.h"
#include "tensor/random.h"

namespace sbrl {

/// Source of the RFF projection draws of one decorrelation-loss call.
/// The projections of a draw epoch are counter-based slot draws keyed
/// by (seed, in_dim, k, column index) — see RffSlotSeed — so every
/// evaluation sharing an epoch sees the same per-column projections
/// regardless of call order, threading, or whether a cache memoizes
/// the sampling work. BuildWeightLoss derives one epoch per weight
/// step so all HAP tiers share their draws.
struct RffDrawEpoch {
  /// Seed the epoch's slot streams derive from.
  uint64_t seed = 0;
  /// Optional memoizer for the epoch's draws; nullptr re-samples each
  /// slot on use (bitwise-identical results either way).
  RffProjectionCache* cache = nullptr;
};

/// Differentiable decorrelation loss L_D(Z, w) of the Independence
/// Regularizer (paper Eqs. 9-10): the sum over feature pairs (a, b) of
/// the weighted HSIC-RFF statistic
///   || Cov_w( u(Z_:,a), v(Z_:,b) ) ||_F^2,
/// where u, v are `rff_features` random cosine features (fresh draws
/// from `rng` on every call — the stochastic decorrelation estimator of
/// StableNet) and Cov_w uses the normalized sample weights.
///
/// `z` is a detached activation matrix (the weight step of Algorithm 1
/// holds the network fixed), while `w` (n x 1) is the differentiable
/// sample-weight node on the tape.
///
/// `pair_budget > 0` measures only that many uniformly sampled pairs
/// and rescales to the full-pair total, keeping the per-step cost
/// bounded for wide layers; 0 measures every pair.
///
/// `mode` selects the evaluation strategy. kBatched (default) stacks
/// all per-column RFF blocks into one n x (d*k) matrix and measures
/// every selected pair through one block cross-covariance node —
/// O(pairs) small tape ops collapse into three kernel dispatches.
/// kExact keeps the per-pair op loop as the reference. Both modes
/// consume `rng` identically (same pair subset, same epoch seed, hence
/// the same RFF draws) and agree to a relative tolerance of 1e-9 —
/// only FP summation order differs (see README "Weight-loss
/// batching").
///
/// `cos_mode` selects the cosine sweep of the feature evaluation
/// (SIMD vectorized vs scalar std::cos reference; see CosineMode).
///
/// `epoch` supplies the projection draw epoch. When null, the epoch
/// seed is drawn from `rng` (one engine draw after pair selection) and
/// slots are sampled uncached — the standalone-call path. When set,
/// the caller-provided seed/cache are used and `rng` is only consumed
/// for the pair subset — the path BuildWeightLoss uses to share one
/// epoch (and one cache) across all HAP tiers of a weight step.
Var HsicRffDecorrelationLoss(const Matrix& z, Var w, int64_t rff_features,
                             int64_t pair_budget, Rng& rng,
                             BatchedHsicMode mode = BatchedHsicMode::kBatched,
                             CosineMode cos_mode = CosineMode::kVectorized,
                             const RffDrawEpoch* epoch = nullptr);

}  // namespace sbrl

#endif  // SBRL_CORE_INDEPENDENCE_REGULARIZER_H_

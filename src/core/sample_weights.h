#ifndef SBRL_CORE_SAMPLE_WEIGHTS_H_
#define SBRL_CORE_SAMPLE_WEIGHTS_H_

#include <cstdint>

#include "nn/parameter.h"

namespace sbrl {

/// The learnable sample weights w in R^n_+ of SBRL (paper Eq. 4/9/11).
/// Initialized to 1 (uniform), updated by projected gradient steps: the
/// optimizer moves the raw values, then Project() clamps them to the
/// non-negative orthant (floor > 0 keeps every unit minimally present,
/// complementing the paper's R_w anchor).
class SampleWeights {
 public:
  /// n unit weights with the projection floor `floor` (>= 0).
  SampleWeights(int64_t n, double floor);

  /// The raw weight parameter (n x 1) for optimizer registration and
  /// tape binding.
  Param& param() { return param_; }
  /// Read-only view of the raw weight parameter.
  const Param& param() const { return param_; }

  /// Clamps weights to [floor, inf). Call after every optimizer step.
  void Project();

  /// Weights rescaled to mean 1 — the form consumed by the weighted
  /// prediction loss so the loss scale stays comparable to uniform.
  Matrix NormalizedToMeanOne() const;

  /// The raw (clamped, unnormalized) weights (n x 1).
  const Matrix& raw() const { return param_.value; }
  /// Number of weighted units.
  int64_t n() const { return param_.value.rows(); }

 private:
  Param param_;
  double floor_;
};

}  // namespace sbrl

#endif  // SBRL_CORE_SAMPLE_WEIGHTS_H_

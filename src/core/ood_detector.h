#ifndef SBRL_CORE_OOD_DETECTOR_H_
#define SBRL_CORE_OOD_DETECTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "tensor/matrix.h"
#include "tensor/random.h"

namespace sbrl {

/// Quantifies how far a target population's covariate distribution is
/// from the source (training) distribution — the module the paper's
/// conclusion proposes as future work ("incorporate a module that
/// measures the OOD level between the target domain and the source
/// domain").
///
/// Calibration: the detector bootstraps same-size resample pairs from
/// the source and records their sliced-Wasserstein distances, giving a
/// null distribution of "in-distribution" distances. A target
/// population's OOD level is the fraction by which its distance to the
/// source exceeds that null, squashed into [0, 1]:
///   level = 1 - exp(-max(0, d_target - q95_null) / scale_null).
/// 0 means statistically indistinguishable from the source; values
/// near 1 mean a shift many times larger than sampling noise.
class OodLevelDetector {
 public:
  /// Calibration and metric knobs of the detector.
  struct Options {
    /// Bootstrap pairs used to calibrate the null distance
    /// distribution.
    int64_t calibration_rounds = 20;
    /// Random projections per sliced-Wasserstein evaluation.
    int64_t projections = 32;
    /// Random coordinate-product features appended before measuring.
    /// The paper's bias-rate environments flip feature *correlations*
    /// while keeping marginals fixed; quadratic features expose such
    /// shifts to the (max-)sliced metric. 0 disables.
    int64_t quadratic_features = 64;
    uint64_t seed = 17;
  };

  /// Calibrates on the source covariates (n x d, n >= 10).
  static StatusOr<OodLevelDetector> Fit(const Matrix& source,
                                        const Options& options);
  /// Same with default options.
  static StatusOr<OodLevelDetector> Fit(const Matrix& source) {
    return Fit(source, Options());
  }

  /// The complete fitted state of a detector — everything FromState
  /// needs to reconstruct it exactly (the augmented-source cache is
  /// recomputed deterministically, not stored). This is what the
  /// serving model format serializes so OOD gating at score time uses
  /// the very detector calibrated at training time.
  struct State {
    /// Calibration knobs the detector was fitted with.
    Options options;
    /// Raw source covariates (n x d) the detector was fitted on.
    Matrix source;
    /// Quadratic coordinate-product feature pairs, in draw order.
    std::vector<std::pair<int64_t, int64_t>> quad_pairs;
    /// (1 x d_aug) per-column source means for standardization.
    Matrix col_mean;
    /// (1 x d_aug) per-column source stddevs (floored at fit time).
    Matrix col_std;
    /// 95th percentile of the calibrated null distances.
    double null_q95 = 0.0;
    /// Scale (mean) of the calibrated null distances.
    double null_scale = 1.0;
  };

  /// Captures the fitted state verbatim (see State).
  State ExportState() const;

  /// Reconstructs a detector from an exported State. Validates shape
  /// consistency (col_mean/col_std must be 1 x (d + |quad_pairs|) with
  /// in-range pair indices, col_std positive, null_scale positive) and
  /// returns InvalidArgument on any mismatch. The reconstructed
  /// detector's DistanceTo/LevelOf are bitwise identical to the
  /// original's: the projection stream is reseeded per call from the
  /// stored options seed.
  static StatusOr<OodLevelDetector> FromState(const State& state);

  /// Raw max-sliced-Wasserstein distance from `target` to the source.
  double DistanceTo(const Matrix& target) const;

  /// OOD level in [0, 1] (see class comment).
  double LevelOf(const Matrix& target) const;

  /// 95th percentile of the calibrated null distances.
  double null_q95() const { return null_q95_; }
  /// Scale (mean) of the calibrated null distances.
  double null_scale() const { return null_scale_; }

 private:
  OodLevelDetector() = default;

  /// Appends the configured quadratic features and standardizes every
  /// column by the source statistics.
  Matrix Augment(const Matrix& x) const;

  Matrix source_;            // raw source covariates
  Matrix source_augmented_;  // cached Augment(source_)
  Options options_;
  std::vector<std::pair<int64_t, int64_t>> quad_pairs_;
  Matrix col_mean_;  // (1 x d_aug) source statistics for standardization
  Matrix col_std_;   // (1 x d_aug)
  double null_q95_ = 0.0;
  double null_scale_ = 1.0;
};

}  // namespace sbrl

#endif  // SBRL_CORE_OOD_DETECTOR_H_

#include "core/independence_regularizer.h"

#include <utility>
#include <vector>

#include "stats/rff.h"

namespace sbrl {

namespace {

/// Weighted cross-covariance Frobenius norm between constant RFF
/// feature blocks `u`, `v` (n x k each) under normalized weights built
/// from the differentiable node `w`.
Var PairLoss(Tape* tape, const Matrix& u, const Matrix& v, Var w_norm) {
  Var u_const = tape->Constant(tape->NewCopy(u));
  Var v_const = tape->Constant(tape->NewCopy(v));
  // E_w[u_i v_j] = (u .* w)^T v with w normalized to sum 1. The fused
  // transpose-product op keeps the four a^T b products transpose-free.
  Var uw = ops::MulCol(u_const, w_norm);
  Var e_uv = ops::MatmulTransA(uw, v_const);        // (k x k)
  Var e_u = ops::MatmulTransA(w_norm, u_const);     // (1 x k)
  Var e_v = ops::MatmulTransA(w_norm, v_const);     // (1 x k)
  Var outer = ops::MatmulTransA(e_u, e_v);          // (k x k)
  return ops::SumAll(ops::Square(ops::Sub(e_uv, outer)));
}

}  // namespace

Var HsicRffDecorrelationLoss(const Matrix& z, Var w, int64_t rff_features,
                             int64_t pair_budget, Rng& rng) {
  Tape* tape = w.tape();
  SBRL_CHECK(w.valid());
  SBRL_CHECK_EQ(w.cols(), 1);
  SBRL_CHECK_EQ(w.rows(), z.rows());
  SBRL_CHECK_GT(rff_features, 0);
  const int64_t d = z.cols();
  if (d < 2) return tape->Constant(Matrix::Zeros(1, 1));

  // Normalized weights are shared by every pair term.
  Var w_norm = ops::DivScalar(w, ops::SumAll(w));

  // Random cosine features per column, drawn fresh for this evaluation
  // and read through strided column views (no Col copies).
  std::vector<Matrix> features(static_cast<size_t>(d));
  for (int64_t c = 0; c < d; ++c) {
    RffProjection proj = SampleRff(rng, 1, rff_features);
    features[static_cast<size_t>(c)] = ApplyRffToColumn(proj, z, c);
  }

  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t a = 0; a < d; ++a) {
    for (int64_t b = a + 1; b < d; ++b) pairs.emplace_back(a, b);
  }
  const int64_t total_pairs = static_cast<int64_t>(pairs.size());
  int64_t used_pairs = total_pairs;
  if (pair_budget > 0 && pair_budget < total_pairs) {
    used_pairs = pair_budget;
    std::vector<int64_t> chosen =
        rng.SampleWithoutReplacement(total_pairs, used_pairs);
    std::vector<std::pair<int64_t, int64_t>> subset;
    subset.reserve(static_cast<size_t>(used_pairs));
    for (int64_t idx : chosen) subset.push_back(pairs[static_cast<size_t>(idx)]);
    pairs.swap(subset);
  }

  Var loss = tape->Constant(Matrix::Zeros(1, 1));
  for (const auto& [a, b] : pairs) {
    loss = ops::Add(loss, PairLoss(tape, features[static_cast<size_t>(a)],
                                   features[static_cast<size_t>(b)], w_norm));
  }
  // Rescale a sampled subset to estimate the full pairwise sum.
  const double rescale =
      static_cast<double>(total_pairs) / static_cast<double>(used_pairs);
  return ops::Scale(loss, rescale);
}

}  // namespace sbrl

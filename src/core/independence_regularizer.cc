#include "core/independence_regularizer.h"

#include <utility>
#include <vector>

#include "stats/feature_pairs.h"
#include "stats/rff.h"

namespace sbrl {

namespace {

/// Copy of columns [start, start + count) of `m` — feeds the exact
/// reference path, which wants standalone (n x k) feature blocks.
Matrix CopyColumnBlock(const Matrix& m, int64_t start, int64_t count) {
  Matrix out(m.rows(), count);
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < count; ++c) out(r, c) = m(r, start + c);
  }
  return out;
}

/// Weighted cross-covariance Frobenius norm between constant RFF
/// feature blocks `u`, `v` (n x k each) under normalized weights built
/// from the differentiable node `w`. The seed per-pair formulation,
/// kept verbatim as the reference for BatchedHsicMode::kBatched.
Var PairLoss(Tape* tape, const Matrix& u, const Matrix& v, Var w_norm) {
  Var u_const = tape->Constant(tape->NewCopy(u));
  Var v_const = tape->Constant(tape->NewCopy(v));
  // E_w[u_i v_j] = (u .* w)^T v with w normalized to sum 1. The fused
  // transpose-product op keeps the four a^T b products transpose-free.
  Var uw = ops::MulCol(u_const, w_norm);
  Var e_uv = ops::MatmulTransA(uw, v_const);        // (k x k)
  Var e_u = ops::MatmulTransA(w_norm, u_const);     // (1 x k)
  Var e_v = ops::MatmulTransA(w_norm, v_const);     // (1 x k)
  Var outer = ops::MatmulTransA(e_u, e_v);          // (k x k)
  return ops::SumAll(ops::Square(ops::Sub(e_uv, outer)));
}

}  // namespace

Var HsicRffDecorrelationLoss(const Matrix& z, Var w, int64_t rff_features,
                             int64_t pair_budget, Rng& rng,
                             BatchedHsicMode mode, CosineMode cos_mode,
                             const RffDrawEpoch* epoch) {
  Tape* tape = w.tape();
  SBRL_CHECK(w.valid());
  SBRL_CHECK_EQ(w.cols(), 1);
  SBRL_CHECK_EQ(w.rows(), z.rows());
  SBRL_CHECK_GT(rff_features, 0);
  const int64_t d = z.cols();
  const int64_t k = rff_features;
  if (d < 2) return tape->Constant(Matrix::Zeros(1, 1));

  // Normalized weights are shared by every pair term.
  Var w_norm = ops::DivScalar(w, ops::SumAll(w));

  // Pair subset first — a small budget on a wide layer skips most of
  // the cosine work. Both modes consume `rng` in exactly this order
  // (pairs, then the epoch-seed draw of the standalone path), so they
  // see identical pairs and features.
  FeaturePairSelection sel = SelectFeaturePairs(d, pair_budget, rng);
  CompactPairBlocks blocks = CompactUsedColumns(d, sel.pairs);
  const std::vector<std::pair<int64_t, int64_t>>& block_pairs =
      blocks.block_pairs;

  // Projections are per-column slot draws of the epoch: slot index =
  // original column index, so every evaluation sharing the epoch (the
  // HAP tiers of one weight step) reuses the draws of the columns it
  // has in common with the others. The cache only memoizes — cached
  // and uncached slots are bitwise identical (see RffSlotSeed).
  const uint64_t epoch_seed =
      epoch != nullptr ? epoch->seed : rng.engine()();
  RffProjectionCache* cache = epoch != nullptr ? epoch->cache : nullptr;
  std::vector<RffProjection> drawn;       // uncached-path storage
  std::vector<const RffProjection*> projs;  // cached-path views
  if (cache != nullptr) {
    cache->BeginEpoch(epoch_seed);  // no-op when already current
    projs.reserve(blocks.used_cols.size());
    for (int64_t col : blocks.used_cols) {
      projs.push_back(&cache->Slot(1, k, col));
    }
  } else {
    drawn.reserve(blocks.used_cols.size());
    for (int64_t col : blocks.used_cols) {
      drawn.push_back(SampleRffSlot(epoch_seed, 1, k, col));
    }
  }
  // F = [u_c0 | u_c1 | ...] over the used columns (n x n_used*k):
  // angles land in one flat buffer, then a single vectorized (or
  // exact, per cos_mode) cosine sweep finishes every feature at once.
  Matrix stacked(z.rows(),
                 static_cast<int64_t>(blocks.used_cols.size()) * k);
  if (cache != nullptr) {
    StackRffColumnsWithProjections(z, blocks.used_cols, projs, k, &stacked,
                                   cos_mode);
  } else {
    StackRffColumnsWithProjections(z, blocks.used_cols, drawn, k, &stacked,
                                   cos_mode);
  }

  if (mode == BatchedHsicMode::kExact) {
    Var loss = tape->Constant(Matrix::Zeros(1, 1));
    for (const auto& [a, b] : block_pairs) {
      loss = ops::Add(loss, PairLoss(tape, CopyColumnBlock(stacked, a * k, k),
                                     CopyColumnBlock(stacked, b * k, k),
                                     w_norm));
    }
    // Rescale a sampled subset to estimate the full pairwise sum.
    return ops::Scale(loss, sel.Rescale());
  }

  // Batched block-diagonal path: E_w[U^T V], E_w[U] and E_w[V] for all
  // selected pairs land in two kernel dispatches — one fused
  // weighted block cross-product over every pair and one means product
  // — instead of O(pairs) sub-64K-flop tape ops.
  Var f_const = tape->Constant(std::move(stacked));
  Var cross = ops::BlockWeightedCrossCov(f_const, w_norm, k, block_pairs);
  Var means = ops::MatmulTransA(w_norm, f_const);  // 1 x n_used*k
  Var loss = ops::PairHsicFrobenius(cross, means, k, block_pairs);
  return ops::Scale(loss, sel.Rescale());
}

}  // namespace sbrl

#include "core/independence_regularizer.h"

#include <utility>
#include <vector>

#include "stats/feature_pairs.h"
#include "stats/rff.h"

namespace sbrl {

namespace {

/// Weighted cross-covariance Frobenius norm between the column blocks
/// [a*k, (a+1)*k) and [b*k, (b+1)*k) of the stacked feature constant
/// `f_const`, read in place through slice-view ops. `fw` is the
/// row-weighted stack MulCol(f_const, w_norm), built once and shared
/// by every pair — the per-pair math is the seed formulation
/// E_w[u^T v] - E_w[u]^T E_w[v], kept as the reference for
/// BatchedHsicMode::kBatched, but no per-pair feature block is ever
/// materialized (as a tape constant or otherwise).
Var PairLoss(Var f_const, Var fw, Var w_norm, int64_t a, int64_t b,
             int64_t k) {
  // E_w[u_i v_j] = (u .* w)^T v with w normalized to sum 1; the view
  // op keeps the three a^T b products transpose- and slice-free.
  Var e_uv = ops::MatmulTransACols(fw, a * k, k, f_const, b * k, k);
  Var e_u = ops::MatmulTransACols(w_norm, 0, 1, f_const, a * k, k);
  Var e_v = ops::MatmulTransACols(w_norm, 0, 1, f_const, b * k, k);
  Var outer = ops::MatmulTransA(e_u, e_v);          // (k x k)
  return ops::SumAll(ops::Square(ops::Sub(e_uv, outer)));
}

}  // namespace

Var HsicRffDecorrelationLoss(const Matrix& z, Var w, int64_t rff_features,
                             int64_t pair_budget, Rng& rng,
                             BatchedHsicMode mode, CosineMode cos_mode,
                             const RffDrawEpoch* epoch) {
  Tape* tape = w.tape();
  SBRL_CHECK(w.valid());
  SBRL_CHECK_EQ(w.cols(), 1);
  SBRL_CHECK_EQ(w.rows(), z.rows());
  SBRL_CHECK_GT(rff_features, 0);
  const int64_t d = z.cols();
  const int64_t k = rff_features;
  if (d < 2) return tape->Constant(Matrix::Zeros(1, 1));

  // Normalized weights are shared by every pair term.
  Var w_norm = ops::DivScalar(w, ops::SumAll(w));

  // Pair subset first — a small budget on a wide layer skips most of
  // the cosine work. Both modes consume `rng` in exactly this order
  // (pairs, then the epoch-seed draw of the standalone path), so they
  // see identical pairs and features.
  FeaturePairSelection sel = SelectFeaturePairs(d, pair_budget, rng);
  CompactPairBlocks blocks = CompactUsedColumns(d, sel.pairs);
  const std::vector<std::pair<int64_t, int64_t>>& block_pairs =
      blocks.block_pairs;

  // Projections are per-column slot draws of the epoch: slot index =
  // original column index, so every evaluation sharing the epoch (the
  // HAP tiers of one weight step) reuses the draws of the columns it
  // has in common with the others. The cache only memoizes — cached
  // and uncached slots are bitwise identical (see RffSlotSeed).
  const uint64_t epoch_seed =
      epoch != nullptr ? epoch->seed : rng.engine()();
  RffProjectionCache* cache = epoch != nullptr ? epoch->cache : nullptr;
  std::vector<RffProjection> drawn;       // uncached-path storage
  std::vector<const RffProjection*> projs;  // cached-path views
  if (cache != nullptr) {
    cache->BeginEpoch(epoch_seed);  // no-op when already current
    projs.reserve(blocks.used_cols.size());
    for (int64_t col : blocks.used_cols) {
      projs.push_back(&cache->Slot(1, k, col));
    }
  } else {
    drawn.reserve(blocks.used_cols.size());
    for (int64_t col : blocks.used_cols) {
      drawn.push_back(SampleRffSlot(epoch_seed, 1, k, col));
    }
  }
  // F = [u_c0 | u_c1 | ...] over the used columns (n x n_used*k):
  // angles land in one flat buffer, then a single vectorized (or
  // exact, per cos_mode) cosine sweep finishes every feature at once.
  Matrix stacked(z.rows(),
                 static_cast<int64_t>(blocks.used_cols.size()) * k);
  if (cache != nullptr) {
    StackRffColumnsWithProjections(z, blocks.used_cols, projs, k, &stacked,
                                   cos_mode);
  } else {
    StackRffColumnsWithProjections(z, blocks.used_cols, drawn, k, &stacked,
                                   cos_mode);
  }

  // Both modes share ONE stacked-feature constant; no other n-row node
  // scales with the pair count (asserted by hsic_batched_test).
  Var f_const = tape->Constant(std::move(stacked));

  if (mode == BatchedHsicMode::kExact) {
    // Per-pair reference formulation over slice views of f_const: the
    // only per-pair tape nodes are the (k x k) / (1 x k) op outputs.
    Var fw = ops::MulCol(f_const, w_norm);
    Var loss = tape->Constant(Matrix::Zeros(1, 1));
    for (const auto& [a, b] : block_pairs) {
      loss = ops::Add(loss, PairLoss(f_const, fw, w_norm, a, b, k));
    }
    // Rescale a sampled subset to estimate the full pairwise sum.
    return ops::Scale(loss, sel.Rescale());
  }

  // Batched block-diagonal path: E_w[U^T V], E_w[U] and E_w[V] for all
  // selected pairs land in two kernel dispatches — one fused
  // weighted block cross-product over every pair and one means product
  // — instead of O(pairs) sub-64K-flop tape ops.
  Var cross = ops::BlockWeightedCrossCov(f_const, w_norm, k, block_pairs);
  Var means = ops::MatmulTransA(w_norm, f_const);  // 1 x n_used*k
  Var loss = ops::PairHsicFrobenius(cross, means, k, block_pairs);
  return ops::Scale(loss, sel.Rescale());
}

}  // namespace sbrl

#include "core/balancing_regularizer.h"

namespace sbrl {

namespace {

/// Normalized weighted mean of rows: sum_i w_i rep_i / sum_i w_i -> (1 x d).
Var WeightedRowMean(Var rep, Var w) {
  Var weighted = ops::MulCol(rep, w);
  Var total = ops::SumAll(w);
  return ops::DivScalar(ops::ColSum(weighted), total);
}

Var WeightedRbfMmd2Loss(Var rep_t, Var w_t, Var rep_c, Var w_c,
                        double bandwidth) {
  const double scale = -0.5 / (bandwidth * bandwidth);
  Var w_t_n = ops::DivScalar(w_t, ops::SumAll(w_t));
  Var w_c_n = ops::DivScalar(w_c, ops::SumAll(w_c));
  auto kernel_term = [scale](Var a, Var wa, Var b, Var wb) {
    Var k = ops::Exp(ops::Scale(ops::PairwiseSqDist(a, b), scale));
    // wa^T K wb
    Var kwb = ops::Matmul(k, wb);
    return ops::SumAll(ops::Mul(wa, kwb));
  };
  Var term_tt = kernel_term(rep_t, w_t_n, rep_t, w_t_n);
  Var term_cc = kernel_term(rep_c, w_c_n, rep_c, w_c_n);
  Var term_tc = kernel_term(rep_t, w_t_n, rep_c, w_c_n);
  return ops::Sub(ops::Add(term_tt, term_cc), ops::Scale(term_tc, 2.0));
}

}  // namespace

Var WeightedIpmLoss(Var rep, Var w, const std::vector<int>& t, IpmKind kind,
                    double rbf_bandwidth) {
  SBRL_CHECK_EQ(static_cast<int64_t>(t.size()), rep.rows());
  SBRL_CHECK_EQ(w.rows(), rep.rows());
  SBRL_CHECK_EQ(w.cols(), 1);
  std::vector<int64_t> treated, control;
  for (size_t i = 0; i < t.size(); ++i) {
    (t[i] == 1 ? treated : control).push_back(static_cast<int64_t>(i));
  }
  SBRL_CHECK(!treated.empty() && !control.empty())
      << "weighted IPM needs both treatment arms";
  Var rep_t = ops::GatherRows(rep, treated);
  Var rep_c = ops::GatherRows(rep, control);
  Var w_t = ops::GatherRows(w, treated);
  Var w_c = ops::GatherRows(w, control);
  return WeightedIpmLossSplit(rep_t, w_t, rep_c, w_c, kind, rbf_bandwidth);
}

Var WeightedIpmLossSplit(Var rep_t, Var w_t, Var rep_c, Var w_c,
                         IpmKind kind, double rbf_bandwidth) {
  SBRL_CHECK_EQ(rep_t.cols(), rep_c.cols());
  SBRL_CHECK_EQ(w_t.rows(), rep_t.rows());
  SBRL_CHECK_EQ(w_c.rows(), rep_c.rows());
  switch (kind) {
    case IpmKind::kLinearMmd: {
      Var diff = ops::Sub(WeightedRowMean(rep_t, w_t),
                          WeightedRowMean(rep_c, w_c));
      return ops::SumAll(ops::Square(diff));
    }
    case IpmKind::kRbfMmd:
      return WeightedRbfMmd2Loss(rep_t, w_t, rep_c, w_c, rbf_bandwidth);
  }
  SBRL_CHECK(false) << "unreachable";
  return rep_t;
}

}  // namespace sbrl

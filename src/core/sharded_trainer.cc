#include "core/sharded_trainer.h"

#include <cmath>
#include <utility>

#include "autodiff/ops.h"
#include "common/logging.h"
#include "common/timer.h"
#include "nn/lr_schedule.h"
#include "nn/optimizer.h"

namespace sbrl {

namespace {

double StableSigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

// Factual per-row losses, mirroring SbrlTrainer's FactualLosses.
Var ShardFactualLosses(Var y0, Var y1, const std::vector<int>& t,
                       const Matrix& y, bool binary) {
  Var pred = ops::SelectRowsByTreatment(y1, y0, t);
  if (binary) {
    return ops::SigmoidCrossEntropyWithLogits(pred, y);
  }
  Var target = pred.tape()->Constant(y);
  return ops::Square(ops::Sub(pred, target));
}

}  // namespace

/// Everything one shard contributes to the pass: counts, loss and
/// outcome sums, and per-param gradient SUMS (d/dθ of the loss sum,
/// so shards combine by plain addition and the mean-loss gradient is
/// one 1/n scale at the root).
struct ShardedTrainer::ShardStats {
  int64_t rows = 0;
  double loss_sum = 0.0;
  int64_t treated = 0;
  double y_treated_sum = 0.0;
  double y_control_sum = 0.0;
  std::vector<Matrix> grads;
};

ShardedTrainer::ShardedTrainer(const ShardedTrainerConfig& config,
                               int64_t input_dim)
    : config_(config), input_dim_(input_dim) {
  SBRL_CHECK_GT(input_dim, 0);
  SBRL_CHECK_GT(config.iterations, 0);
  SBRL_CHECK(!config.network.batchnorm)
      << "sharded training requires batchnorm=false: batch "
         "normalization couples rows, so per-shard gradient sums would "
         "not compose into the full-batch gradient";
  EstimatorConfig backbone_config;
  backbone_config.backbone = BackboneKind::kTarnet;
  backbone_config.framework = FrameworkKind::kVanilla;
  backbone_config.network = config.network;
  Rng rng(config.seed);
  backbone_ = CreateBackbone(backbone_config, input_dim, rng);
  backbone_->CollectParams(&params_);
  for (size_t i = 0; i < params_.size(); ++i) {
    param_index_[params_[i]] = i;
  }
}

ShardedTrainer::ShardStats ShardedTrainer::ComputeShard(
    const CausalDataset& block, MatrixPool* pool) {
  Tape tape(pool);
  ParamBinder binder(&tape);
  Var w = tape.Constant(Matrix::Ones(block.n(), 1));
  BackboneForward fwd =
      backbone_->Forward(binder, block.x, block.t, w, /*training=*/true);
  Var losses = ShardFactualLosses(fwd.y0, fwd.y1, block.t, block.y,
                                  config_.binary_outcome);
  // SumAll, not MeanAll: the shard exports extensive quantities so the
  // reduction is a plain fixed-order addition.
  Var loss_sum = ops::SumAll(losses);
  tape.Backward(loss_sum);

  ShardStats stats;
  stats.rows = block.n();
  stats.loss_sum = loss_sum.value().scalar();
  for (int64_t i = 0; i < block.n(); ++i) {
    if (block.t[static_cast<size_t>(i)] == 1) {
      ++stats.treated;
      stats.y_treated_sum += block.y(i, 0);
    } else {
      stats.y_control_sum += block.y(i, 0);
    }
  }
  std::vector<std::pair<Param*, Matrix>> leaf_grads;
  binder.CollectLeafGrads(&leaf_grads);
  stats.grads.resize(params_.size());
  for (auto& [param, grad] : leaf_grads) {
    const auto it = param_index_.find(param);
    SBRL_CHECK(it != param_index_.end());
    stats.grads[it->second] = std::move(grad);
  }
  // Params outside this shard's gradient path (possible in degenerate
  // single-arm tail shards) contribute zero.
  for (size_t i = 0; i < params_.size(); ++i) {
    if (stats.grads[i].empty()) {
      stats.grads[i] =
          Matrix(params_[i]->value.rows(), params_[i]->value.cols());
    }
  }
  return stats;
}

Status ShardedTrainer::Train(DatasetBlockReader& reader,
                             ShardedTrainDiagnostics* diag) {
  SBRL_CHECK_EQ(reader.dim(), input_dim_);
  const ShardedOptions opts = ResolveShardedOptions(config_.sharding);
  while (static_cast<int64_t>(slot_pools_.size()) < opts.workers) {
    slot_pools_.push_back(std::make_unique<MatrixPool>());
  }

  std::vector<Param*> decay_params = backbone_->DecayParams();
  std::vector<Param*> plain_params;
  for (Param* p : params_) {
    bool decays = false;
    for (Param* d : decay_params) decays = decays || (d == p);
    if (!decays) plain_params.push_back(p);
  }
  AdamConfig decay_config;
  decay_config.weight_decay = config_.l2;
  AdamOptimizer opt_decay(decay_params, decay_config);
  AdamOptimizer opt_plain(plain_params);
  ExponentialDecaySchedule schedule(config_.lr, config_.lr_decay_rate,
                                    config_.lr_decay_steps);

  ShardedTrainDiagnostics local;
  if (diag == nullptr) diag = &local;
  diag->train_loss.clear();
  diag->shard_rows = opts.shard_rows;
  diag->workers = opts.workers;
  diag->precision = opts.precision;

  const auto leaf = [this](int64_t /*shard*/, int64_t slot,
                           const CausalDataset& block) {
    return ComputeShard(block,
                        slot_pools_[static_cast<size_t>(slot)].get());
  };
  // f32 block-staging leaf: widen this lane's shard into its scratch
  // just in time for the f64 tape — the wave itself stays f32, so the
  // fit consumes float-rounded covariates (the opt-in tier).
  const auto leaf32 = [this](int64_t /*shard*/, int64_t slot,
                             const CausalBlockF32& block) {
    CausalDataset& stage = slot_stage_[static_cast<size_t>(slot)];
    block.x.WidenInto(&stage.x);
    stage.t = block.t;
    stage.y.ResetCopyOf(block.y);
    stage.binary_outcome = block.binary_outcome;
    return ComputeShard(stage,
                        slot_pools_[static_cast<size_t>(slot)].get());
  };
  if (opts.precision == Precision::kF32) {
    slot_stage_.resize(static_cast<size_t>(opts.workers));
  }
  const auto combine = [](ShardStats a, ShardStats b) {
    a.rows += b.rows;
    a.loss_sum += b.loss_sum;
    a.treated += b.treated;
    a.y_treated_sum += b.y_treated_sum;
    a.y_control_sum += b.y_control_sum;
    SBRL_CHECK_EQ(a.grads.size(), b.grads.size());
    for (size_t i = 0; i < a.grads.size(); ++i) a.grads[i] += b.grads[i];
    return a;
  };

  Timer timer;
  for (int64_t iter = 0; iter < config_.iterations; ++iter) {
    SBRL_RETURN_IF_ERROR(reader.Reset());
    int64_t rows = 0;
    int64_t shards = 0;
    SBRL_ASSIGN_OR_RETURN(
        ShardStats total,
        opts.precision == Precision::kF32
            ? ShardedReduceF32<ShardStats>(reader, opts, leaf32, combine,
                                           &rows, &shards)
            : ShardedReduce<ShardStats>(reader, opts, leaf, combine, &rows,
                                        &shards));
    const double inv_n = 1.0 / static_cast<double>(rows);
    for (size_t i = 0; i < params_.size(); ++i) {
      total.grads[i] *= inv_n;
      params_[i]->grad = std::move(total.grads[i]);
    }
    const double lr = schedule.LearningRate(iter);
    const double grad_digest = opt_decay.Step(lr) + opt_plain.Step(lr);
    if (!std::isfinite(grad_digest)) {
      return Status::Internal("non-finite gradient digest at pass " +
                              std::to_string(iter));
    }
    diag->train_loss.push_back(total.loss_sum * inv_n);
    diag->rows = rows;
    diag->shards = shards;
    diag->treated_rows = total.treated;
    diag->control_rows = rows - total.treated;
    diag->treated_outcome_mean =
        total.treated > 0
            ? total.y_treated_sum / static_cast<double>(total.treated)
            : 0.0;
    diag->control_outcome_mean =
        diag->control_rows > 0
            ? total.y_control_sum / static_cast<double>(diag->control_rows)
            : 0.0;
    if (config_.verbose) {
      SBRL_LOG(Info) << "sharded pass " << iter << ": rows=" << rows
                     << " shards=" << shards
                     << " loss=" << diag->train_loss.back();
    }
  }
  diag->train_seconds = timer.ElapsedSeconds();
  diag->rows_per_second =
      diag->train_seconds > 0.0
          ? static_cast<double>(diag->rows * config_.iterations) /
                diag->train_seconds
          : 0.0;
  return Status::OK();
}

StatusOr<double> ShardedTrainer::EstimateAte(DatasetBlockReader& reader) {
  SBRL_CHECK_EQ(reader.dim(), input_dim_);
  const ShardedOptions opts = ResolveShardedOptions(config_.sharding);
  while (static_cast<int64_t>(slot_pools_.size()) < opts.workers) {
    slot_pools_.push_back(std::make_unique<MatrixPool>());
  }
  SBRL_RETURN_IF_ERROR(reader.Reset());
  struct IteSum {
    int64_t rows = 0;
    double sum = 0.0;
  };
  const auto combine = [](IteSum a, IteSum b) {
    a.rows += b.rows;
    a.sum += b.sum;
    return a;
  };
  if (opts.precision == Precision::kF32) {
    slot_stage_.resize(static_cast<size_t>(opts.workers));
    SBRL_ASSIGN_OR_RETURN(
        const IteSum total,
        ShardedReduceF32<IteSum>(
            reader, opts,
            [this](int64_t /*shard*/, int64_t slot,
                   const CausalBlockF32& block) {
              // Only the covariates are needed: widen them into this
              // lane's scratch matrix and score from there.
              Matrix& xs = slot_stage_[static_cast<size_t>(slot)].x;
              block.x.WidenInto(&xs);
              const Matrix ite = PredictIteWithPool(
                  xs, slot_pools_[static_cast<size_t>(slot)].get());
              IteSum s;
              s.rows = block.n();
              for (int64_t i = 0; i < ite.rows(); ++i) s.sum += ite(i, 0);
              return s;
            },
            combine));
    return total.sum / static_cast<double>(total.rows);
  }
  SBRL_ASSIGN_OR_RETURN(
      const IteSum total,
      ShardedReduce<IteSum>(
          reader, opts,
          [this](int64_t /*shard*/, int64_t slot,
                 const CausalDataset& block) {
            const Matrix ite = PredictIteWithPool(
                block.x, slot_pools_[static_cast<size_t>(slot)].get());
            IteSum s;
            s.rows = block.n();
            for (int64_t i = 0; i < ite.rows(); ++i) s.sum += ite(i, 0);
            return s;
          },
          combine));
  return total.sum / static_cast<double>(total.rows);
}

Matrix ShardedTrainer::PredictIte(const Matrix& x) {
  return PredictIteWithPool(x, nullptr);
}

Matrix ShardedTrainer::PredictIteWithPool(const Matrix& x, MatrixPool* pool) {
  SBRL_CHECK_EQ(x.cols(), input_dim_);
  Tape tape(pool);
  ParamBinder binder(&tape);
  const std::vector<int> t(static_cast<size_t>(x.rows()), 0);
  Var w = tape.Constant(Matrix::Ones(x.rows(), 1));
  BackboneForward fwd = backbone_->Forward(binder, x, t, w,
                                           /*training=*/false);
  const Matrix& y0 = fwd.y0.value();
  const Matrix& y1 = fwd.y1.value();
  Matrix ite(x.rows(), 1);
  for (int64_t i = 0; i < x.rows(); ++i) {
    if (config_.binary_outcome) {
      ite(i, 0) = StableSigmoid(y1(i, 0)) - StableSigmoid(y0(i, 0));
    } else {
      ite(i, 0) = y1(i, 0) - y0(i, 0);
    }
  }
  return ite;
}

void ShardedTrainer::CollectParamValues(std::vector<Matrix>* out) const {
  SBRL_CHECK(out != nullptr);
  for (const Param* p : params_) out->push_back(p->value);
}

}  // namespace sbrl

#ifndef SBRL_CORE_TARNET_H_
#define SBRL_CORE_TARNET_H_

#include <vector>

#include "core/backbone.h"

namespace sbrl {

/// TARNet (Shalit et al., 2017): a shared representation network
/// Phi(x) feeding two treatment-specific outcome heads. With
/// `alpha_ipm > 0` the representation additionally minimizes the
/// weighted IPM between arms, which is exactly CFR — CfrBackbone
/// derives from this class by fixing alpha.
class TarnetBackbone : public Backbone {
 public:
  /// Builds the representation network and outcome heads, sized by
  /// `config`, initialized from `rng`; `alpha_ipm > 0` adds the CFR
  /// balancing term.
  TarnetBackbone(const EstimatorConfig& config, int64_t input_dim, Rng& rng,
                 double alpha_ipm);

  /// Backbone::Forward with the (weighted) arm-balancing IPM attached
  /// to aux_loss when alpha_ipm > 0.
  BackboneForward Forward(ParamBinder& binder, const Matrix& x,
                          const std::vector<int>& t, Var w,
                          bool training) override;

  /// All trainable parameters of the representation and heads.
  void CollectParams(std::vector<Param*>* out) override;
  /// BatchNorm running statistics of the representation and heads.
  void CollectStateMatrices(std::vector<NamedStateRef>* out) override;
  /// Outcome-head weight matrices subject to R_l2.
  std::vector<Param*> DecayParams() override;
  /// Covariate dimension the backbone was built for.
  int64_t input_dim() const override { return input_dim_; }

 private:
  int64_t input_dim_;
  NetworkConfig network_;
  NetStepMode net_step_mode_;
  double alpha_ipm_;
  IpmKind ipm_kind_;
  double rbf_bandwidth_;
  Mlp rep_net_;
  OutcomeHeads heads_;
};

}  // namespace sbrl

#endif  // SBRL_CORE_TARNET_H_

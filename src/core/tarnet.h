#ifndef SBRL_CORE_TARNET_H_
#define SBRL_CORE_TARNET_H_

#include <vector>

#include "core/backbone.h"

namespace sbrl {

/// TARNet (Shalit et al., 2017): a shared representation network
/// Phi(x) feeding two treatment-specific outcome heads. With
/// `alpha_ipm > 0` the representation additionally minimizes the
/// weighted IPM between arms, which is exactly CFR — CfrBackbone
/// derives from this class by fixing alpha.
class TarnetBackbone : public Backbone {
 public:
  TarnetBackbone(const EstimatorConfig& config, int64_t input_dim, Rng& rng,
                 double alpha_ipm);

  BackboneForward Forward(ParamBinder& binder, const Matrix& x,
                          const std::vector<int>& t, Var w,
                          bool training) override;

  void CollectParams(std::vector<Param*>* out) override;
  std::vector<Param*> DecayParams() override;
  int64_t input_dim() const override { return input_dim_; }

 private:
  int64_t input_dim_;
  NetworkConfig network_;
  double alpha_ipm_;
  IpmKind ipm_kind_;
  double rbf_bandwidth_;
  Mlp rep_net_;
  OutcomeHeads heads_;
};

}  // namespace sbrl

#endif  // SBRL_CORE_TARNET_H_

#include "core/config.h"

namespace sbrl {

const char* BackboneName(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kTarnet: return "TARNet";
    case BackboneKind::kCfr: return "CFR";
    case BackboneKind::kDerCfr: return "DeR-CFR";
  }
  return "?";
}

const char* FrameworkName(FrameworkKind kind) {
  switch (kind) {
    case FrameworkKind::kVanilla: return "vanilla";
    case FrameworkKind::kSbrl: return "+SBRL";
    case FrameworkKind::kSbrlHap: return "+SBRL-HAP";
  }
  return "?";
}

const char* BatchedHsicModeName(BatchedHsicMode mode) {
  switch (mode) {
    case BatchedHsicMode::kExact: return "exact";
    case BatchedHsicMode::kBatched: return "batched";
  }
  return "?";
}

const char* RecoveryModeName(RecoveryMode mode) {
  switch (mode) {
    case RecoveryMode::kOff: return "off";
    case RecoveryMode::kRollback: return "rollback";
  }
  return "?";
}

std::string MethodName(BackboneKind backbone, FrameworkKind framework) {
  std::string name = BackboneName(backbone);
  if (framework != FrameworkKind::kVanilla) name += FrameworkName(framework);
  return name;
}

Status EstimatorConfig::Validate() const {
  if (network.rep_layers < 1 || network.rep_width < 1) {
    return Status::InvalidArgument("representation network needs >=1 layer "
                                   "of >=1 unit");
  }
  if (network.head_layers < 1 || network.head_width < 1) {
    return Status::InvalidArgument("head networks need >=1 layer of >=1 "
                                   "unit");
  }
  if (cfr.alpha_ipm < 0.0) {
    return Status::InvalidArgument("cfr.alpha_ipm must be >= 0");
  }
  if (cfr.ipm == IpmKind::kRbfMmd && cfr.rbf_bandwidth <= 0.0) {
    return Status::InvalidArgument("cfr.rbf_bandwidth must be > 0");
  }
  if (sbrl.rff_features < 1) {
    return Status::InvalidArgument("sbrl.rff_features must be >= 1");
  }
  if (sbrl.gamma1 < 0.0 || sbrl.gamma2 < 0.0 || sbrl.gamma3 < 0.0 ||
      sbrl.alpha_br < 0.0) {
    return Status::InvalidArgument("sbrl loss weights must be >= 0");
  }
  if (sbrl.hsic_pair_budget < 0) {
    return Status::InvalidArgument("sbrl.hsic_pair_budget must be >= 0");
  }
  if (sbrl.weight_update_every < 1) {
    return Status::InvalidArgument("sbrl.weight_update_every must be >= 1");
  }
  if (sbrl.lr_w <= 0.0 || sbrl.weight_floor < 0.0) {
    return Status::InvalidArgument("sbrl weight-learner settings out of "
                                   "range");
  }
  if (sbrl.recovery_lr_backoff <= 0.0 || sbrl.recovery_lr_backoff > 1.0) {
    return Status::InvalidArgument(
        "sbrl.recovery_lr_backoff must be in (0, 1]");
  }
  if (sbrl.recovery_max_retries < 0) {
    return Status::InvalidArgument("sbrl.recovery_max_retries must be >= 0");
  }
  if (sbrl.recovery_snapshot_every < 1) {
    return Status::InvalidArgument(
        "sbrl.recovery_snapshot_every must be >= 1");
  }
  if (sbrl.recovery_explosion_factor <= 1.0) {
    return Status::InvalidArgument(
        "sbrl.recovery_explosion_factor must be > 1");
  }
  if (train.iterations < 1) {
    return Status::InvalidArgument("train.iterations must be >= 1");
  }
  if (train.lr <= 0.0) {
    return Status::InvalidArgument("train.lr must be > 0");
  }
  if (train.lr_decay_rate <= 0.0 || train.lr_decay_rate > 1.0) {
    return Status::InvalidArgument("train.lr_decay_rate must be in (0, 1]");
  }
  if (train.lr_decay_steps < 1) {
    return Status::InvalidArgument("train.lr_decay_steps must be >= 1");
  }
  if (train.l2 < 0.0) {
    return Status::InvalidArgument("train.l2 must be >= 0");
  }
  if (train.eval_every < 0 || train.patience < 0) {
    return Status::InvalidArgument("early-stopping settings out of range");
  }
  if (train.checkpoint_every < 0) {
    return Status::InvalidArgument("train.checkpoint_every must be >= 0");
  }
  if (train.checkpoint_path.empty() &&
      (train.checkpoint_every > 0 || train.resume)) {
    return Status::InvalidArgument(
        "checkpoint_every/resume require train.checkpoint_path");
  }
  if (dercfr.confounder_balance < 0.0 || dercfr.instrument_indep < 0.0 ||
      dercfr.orthogonality < 0.0 || dercfr.adjustment_balance < 0.0 ||
      dercfr.treatment_loss < 0.0) {
    return Status::InvalidArgument("dercfr loss weights must be >= 0");
  }
  return Status::OK();
}

}  // namespace sbrl

#include "core/ood_detector.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/ipm.h"
#include "tensor/linalg.h"

namespace sbrl {

StatusOr<OodLevelDetector> OodLevelDetector::Fit(const Matrix& source,
                                                 const Options& options) {
  if (source.rows() < 10) {
    return Status::InvalidArgument(
        "OOD detector needs at least 10 source rows");
  }
  if (options.calibration_rounds < 2) {
    return Status::InvalidArgument("calibration_rounds must be >= 2");
  }
  if (options.projections < 1) {
    return Status::InvalidArgument("projections must be >= 1");
  }
  if (options.quadratic_features < 0) {
    return Status::InvalidArgument("quadratic_features must be >= 0");
  }
  OodLevelDetector detector;
  detector.source_ = source;
  detector.options_ = options;

  Rng rng(options.seed);
  const int64_t d = source.cols();
  if (d > 1) {
    for (int64_t k = 0; k < options.quadratic_features; ++k) {
      const int64_t i = rng.UniformInt(0, d - 1);
      int64_t j = rng.UniformInt(0, d - 2);
      if (j >= i) ++j;
      detector.quad_pairs_.emplace_back(i, j);
    }
  }

  // Standardization statistics come from the raw augmented source.
  auto raw_augment = [&detector](const Matrix& x) {
    Matrix out(x.rows(),
               x.cols() + static_cast<int64_t>(detector.quad_pairs_.size()));
    for (int64_t r = 0; r < x.rows(); ++r) {
      for (int64_t c = 0; c < x.cols(); ++c) out(r, c) = x(r, c);
      for (size_t q = 0; q < detector.quad_pairs_.size(); ++q) {
        const auto& [i, j] = detector.quad_pairs_[q];
        out(r, x.cols() + static_cast<int64_t>(q)) = x(r, i) * x(r, j);
      }
    }
    return out;
  };
  Matrix raw = raw_augment(source);
  detector.col_mean_ = ColMean(raw);
  detector.col_std_ = Matrix(1, raw.cols());
  for (int64_t c = 0; c < raw.cols(); ++c) {
    double var = 0.0;
    for (int64_t r = 0; r < raw.rows(); ++r) {
      const double dm = raw(r, c) - detector.col_mean_(0, c);
      var += dm * dm;
    }
    var /= static_cast<double>(raw.rows());
    detector.col_std_(0, c) = std::sqrt(var) > 1e-9 ? std::sqrt(var) : 1.0;
  }
  detector.source_augmented_ = detector.Augment(source);

  // Null distribution: distances between disjoint half-splits of the
  // source, which is what "same distribution" looks like at this n.
  std::vector<double> null_distances;
  null_distances.reserve(static_cast<size_t>(options.calibration_rounds));
  const int64_t n = source.rows();
  for (int64_t round = 0; round < options.calibration_rounds; ++round) {
    std::vector<int64_t> perm = rng.Permutation(n);
    std::vector<int64_t> a(perm.begin(), perm.begin() + n / 2);
    std::vector<int64_t> b(perm.begin() + n / 2, perm.end());
    Matrix half_a = GatherRows(detector.source_augmented_, a);
    Matrix half_b = GatherRows(detector.source_augmented_, b);
    Rng proj_rng(options.seed + 1000 + static_cast<uint64_t>(round));
    null_distances.push_back(
        MaxSlicedWasserstein1(half_a, half_b, options.projections, proj_rng));
  }
  std::sort(null_distances.begin(), null_distances.end());
  const size_t q95_idx = static_cast<size_t>(
      0.95 * static_cast<double>(null_distances.size() - 1));
  detector.null_q95_ = null_distances[q95_idx];
  double mean = 0.0;
  for (double v : null_distances) mean += v;
  mean /= static_cast<double>(null_distances.size());
  detector.null_scale_ = std::max(mean, 1e-9);
  return detector;
}

OodLevelDetector::State OodLevelDetector::ExportState() const {
  State state;
  state.options = options_;
  state.source = source_;
  state.quad_pairs = quad_pairs_;
  state.col_mean = col_mean_;
  state.col_std = col_std_;
  state.null_q95 = null_q95_;
  state.null_scale = null_scale_;
  return state;
}

StatusOr<OodLevelDetector> OodLevelDetector::FromState(const State& state) {
  const int64_t d = state.source.cols();
  const int64_t d_aug =
      d + static_cast<int64_t>(state.quad_pairs.size());
  if (state.source.rows() < 1 || d < 1) {
    return Status::InvalidArgument("OOD state: empty source matrix");
  }
  for (const auto& [i, j] : state.quad_pairs) {
    if (i < 0 || i >= d || j < 0 || j >= d) {
      return Status::InvalidArgument(
          "OOD state: quadratic pair index out of range");
    }
  }
  if (state.col_mean.rows() != 1 || state.col_mean.cols() != d_aug ||
      !state.col_std.same_shape(state.col_mean)) {
    return Status::InvalidArgument(
        "OOD state: standardization statistics shape mismatch");
  }
  for (int64_t c = 0; c < d_aug; ++c) {
    if (!(state.col_std(0, c) > 0.0)) {
      return Status::InvalidArgument("OOD state: non-positive column std");
    }
  }
  if (!(state.null_scale > 0.0)) {
    return Status::InvalidArgument("OOD state: non-positive null scale");
  }
  OodLevelDetector detector;
  detector.options_ = state.options;
  detector.source_ = state.source;
  detector.quad_pairs_ = state.quad_pairs;
  detector.col_mean_ = state.col_mean;
  detector.col_std_ = state.col_std;
  detector.null_q95_ = state.null_q95;
  detector.null_scale_ = state.null_scale;
  detector.source_augmented_ = detector.Augment(detector.source_);
  return detector;
}

Matrix OodLevelDetector::Augment(const Matrix& x) const {
  Matrix out(x.rows(),
             x.cols() + static_cast<int64_t>(quad_pairs_.size()));
  for (int64_t r = 0; r < x.rows(); ++r) {
    for (int64_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - col_mean_(0, c)) / col_std_(0, c);
    }
    for (size_t q = 0; q < quad_pairs_.size(); ++q) {
      const auto& [i, j] = quad_pairs_[q];
      const int64_t c = x.cols() + static_cast<int64_t>(q);
      out(r, c) = (x(r, i) * x(r, j) - col_mean_(0, c)) / col_std_(0, c);
    }
  }
  return out;
}

double OodLevelDetector::DistanceTo(const Matrix& target) const {
  SBRL_CHECK_EQ(target.cols(), source_.cols());
  SBRL_CHECK_GT(target.rows(), 0);
  Rng proj_rng(options_.seed + 999);
  return MaxSlicedWasserstein1(source_augmented_, Augment(target),
                               options_.projections, proj_rng);
}

double OodLevelDetector::LevelOf(const Matrix& target) const {
  const double distance = DistanceTo(target);
  const double excess = std::max(0.0, distance - null_q95_);
  return 1.0 - std::exp(-excess / null_scale_);
}

}  // namespace sbrl

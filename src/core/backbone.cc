#include "core/backbone.h"

#include "core/cfr.h"
#include "core/dercfr.h"
#include "core/tarnet.h"

namespace sbrl {

namespace {

MlpConfig HeadBodyConfig(int64_t in_dim, const NetworkConfig& config) {
  MlpConfig body;
  body.input_dim = in_dim;
  body.hidden.assign(static_cast<size_t>(config.head_layers),
                     config.head_width);
  body.activation = config.activation;
  body.batchnorm = config.batchnorm;
  return body;
}

}  // namespace

OutcomeHeads::OutcomeHeads(const std::string& name, int64_t in_dim,
                           const NetworkConfig& config, Rng& rng)
    : body0_(name + ".h0", HeadBodyConfig(in_dim, config), rng),
      body1_(name + ".h1", HeadBodyConfig(in_dim, config), rng),
      out0_(name + ".h0.out", config.head_width, 1, rng),
      out1_(name + ".h1.out", config.head_width, 1, rng) {}

OutcomeHeads::Result OutcomeHeads::Forward(ParamBinder& binder, Var rep,
                                           const std::vector<int>& t,
                                           bool training,
                                           NetStepMode mode) const {
  std::vector<int64_t> treated, control;
  if (mode == NetStepMode::kFused && training && !body0_.batchnorm()) {
    for (size_t i = 0; i < t.size(); ++i) {
      (t[i] == 1 ? treated : control).push_back(static_cast<int64_t>(i));
    }
  }
  // Arm-split fast path of the fused network step: during training
  // every head output is consumed on its FACTUAL rows only (the
  // Select below discards the counterfactual half, so its gradient is
  // identically zero), so each body runs on its own arm — half the
  // head-body compute — and the factual rows are scattered back.
  // Row-wise layers make the per-row values, and the zero rows make
  // the parameter gradients, bitwise identical to the full-batch
  // recording (golden_trace_test locks this down). Batch norm couples
  // rows through the batch statistics, so that configuration keeps the
  // full-batch path; inference needs both potential outcomes
  // everywhere and always runs full-batch.
  if (!treated.empty() && !control.empty()) {
    Tape* tape = binder.tape();
    Var rep_t = ops::GatherRows(rep, treated);
    Var rep_c = ops::GatherRows(rep, control);
    std::vector<Var> h1 = body1_.ForwardCollect(binder, rep_t, training,
                                                mode);
    std::vector<Var> h0 = body0_.ForwardCollect(binder, rep_c, training,
                                                mode);
    Result result;
    // The counterfactual halves of y0 / y1 were never computed; zero
    // constants stand in so downstream Select shapes are unchanged.
    Var zero_t = tape->Constant(
        Matrix::Zeros(static_cast<int64_t>(treated.size()), 1));
    Var zero_c = tape->Constant(
        Matrix::Zeros(static_cast<int64_t>(control.size()), 1));
    result.y1 = ops::ScatterRowsByTreatment(
        out1_.Forward(binder, h1.back()), zero_c, t);
    result.y0 = ops::ScatterRowsByTreatment(
        zero_t, out0_.Forward(binder, h0.back()), t);
    result.z_p = ops::ScatterRowsByTreatment(h1.back(), h0.back(), t);
    for (size_t i = 0; i + 1 < h0.size(); ++i) {
      result.hidden.push_back(
          ops::ScatterRowsByTreatment(h1[i], h0[i], t));
    }
    return result;
  }
  // Intentional const_cast-free design: Mlp::ForwardCollect is const.
  std::vector<Var> h0 = body0_.ForwardCollect(binder, rep, training, mode);
  std::vector<Var> h1 = body1_.ForwardCollect(binder, rep, training, mode);
  Result result;
  result.y0 = out0_.Forward(binder, h0.back());
  result.y1 = out1_.Forward(binder, h1.back());
  result.z_p = ops::SelectRowsByTreatment(h1.back(), h0.back(), t);
  for (size_t i = 0; i + 1 < h0.size(); ++i) {
    result.hidden.push_back(ops::SelectRowsByTreatment(h1[i], h0[i], t));
  }
  return result;
}

void OutcomeHeads::CollectParams(std::vector<Param*>* out) {
  body0_.CollectParams(out);
  body1_.CollectParams(out);
  out0_.CollectParams(out);
  out1_.CollectParams(out);
}

void OutcomeHeads::CollectStateMatrices(std::vector<NamedStateRef>* out) {
  body0_.CollectStateMatrices(out);
  body1_.CollectStateMatrices(out);
}

std::vector<Param*> OutcomeHeads::DecayParams() {
  // Weight matrices only (Google-style: biases are not decayed, and the
  // CFR reference code applies R_l2 to head weights).
  std::vector<Param*> all;
  CollectParams(&all);
  std::vector<Param*> weights;
  for (Param* p : all) {
    if (p->value.rows() > 1) weights.push_back(p);  // (in x out) matrices
  }
  return weights;
}

std::unique_ptr<Backbone> CreateBackbone(const EstimatorConfig& config,
                                         int64_t input_dim, Rng& rng) {
  switch (config.backbone) {
    case BackboneKind::kTarnet:
      return std::make_unique<TarnetBackbone>(config, input_dim, rng,
                                              /*alpha_ipm=*/0.0);
    case BackboneKind::kCfr:
      return std::make_unique<CfrBackbone>(config, input_dim, rng);
    case BackboneKind::kDerCfr:
      return std::make_unique<DerCfrBackbone>(config, input_dim, rng);
  }
  SBRL_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace sbrl

#include "core/backbone.h"

#include "core/cfr.h"
#include "core/dercfr.h"
#include "core/tarnet.h"

namespace sbrl {

namespace {

MlpConfig HeadBodyConfig(int64_t in_dim, const NetworkConfig& config) {
  MlpConfig body;
  body.input_dim = in_dim;
  body.hidden.assign(static_cast<size_t>(config.head_layers),
                     config.head_width);
  body.activation = config.activation;
  body.batchnorm = config.batchnorm;
  return body;
}

}  // namespace

OutcomeHeads::OutcomeHeads(const std::string& name, int64_t in_dim,
                           const NetworkConfig& config, Rng& rng)
    : body0_(name + ".h0", HeadBodyConfig(in_dim, config), rng),
      body1_(name + ".h1", HeadBodyConfig(in_dim, config), rng),
      out0_(name + ".h0.out", config.head_width, 1, rng),
      out1_(name + ".h1.out", config.head_width, 1, rng) {}

OutcomeHeads::Result OutcomeHeads::Forward(ParamBinder& binder, Var rep,
                                           const std::vector<int>& t,
                                           bool training) const {
  // Intentional const_cast-free design: Mlp::ForwardCollect is const.
  std::vector<Var> h0 = body0_.ForwardCollect(binder, rep, training);
  std::vector<Var> h1 = body1_.ForwardCollect(binder, rep, training);
  Result result;
  result.y0 = out0_.Forward(binder, h0.back());
  result.y1 = out1_.Forward(binder, h1.back());
  result.z_p = ops::SelectRowsByTreatment(h1.back(), h0.back(), t);
  for (size_t i = 0; i + 1 < h0.size(); ++i) {
    result.hidden.push_back(ops::SelectRowsByTreatment(h1[i], h0[i], t));
  }
  return result;
}

void OutcomeHeads::CollectParams(std::vector<Param*>* out) {
  body0_.CollectParams(out);
  body1_.CollectParams(out);
  out0_.CollectParams(out);
  out1_.CollectParams(out);
}

std::vector<Param*> OutcomeHeads::DecayParams() {
  // Weight matrices only (Google-style: biases are not decayed, and the
  // CFR reference code applies R_l2 to head weights).
  std::vector<Param*> all;
  CollectParams(&all);
  std::vector<Param*> weights;
  for (Param* p : all) {
    if (p->value.rows() > 1) weights.push_back(p);  // (in x out) matrices
  }
  return weights;
}

std::unique_ptr<Backbone> CreateBackbone(const EstimatorConfig& config,
                                         int64_t input_dim, Rng& rng) {
  switch (config.backbone) {
    case BackboneKind::kTarnet:
      return std::make_unique<TarnetBackbone>(config, input_dim, rng,
                                              /*alpha_ipm=*/0.0);
    case BackboneKind::kCfr:
      return std::make_unique<CfrBackbone>(config, input_dim, rng);
    case BackboneKind::kDerCfr:
      return std::make_unique<DerCfrBackbone>(config, input_dim, rng);
  }
  SBRL_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace sbrl

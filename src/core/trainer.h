#ifndef SBRL_CORE_TRAINER_H_
#define SBRL_CORE_TRAINER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/backbone.h"
#include "core/run_context.h"
#include "core/sample_weights.h"
#include "data/causal_dataset.h"
#include "stats/rff.h"
#include "tensor/pool.h"

namespace sbrl {

/// Observable record of one training run.
struct TrainDiagnostics {
  /// Weighted factual training loss at each evaluation point.
  std::vector<double> train_loss;
  /// Unweighted factual validation loss at each evaluation point
  /// (empty when no validation set was supplied).
  std::vector<double> valid_loss;
  /// Sample-weight objective L_w at each evaluation point.
  std::vector<double> weight_loss;
  /// Iteration whose parameters were kept (early stopping).
  int64_t best_iteration = -1;
  /// Wall-clock seconds spent inside Train().
  double train_seconds = 0.0;
  /// Wall-clock seconds of `train_seconds` spent inside the
  /// sample-weight step (Algorithm 1 step B: building, differentiating
  /// and applying L_w). The weight-loss share of training is
  /// weight_step_seconds / train_seconds; BENCH_table6.json records
  /// both so the batched-HSIC win is tracked across PRs.
  double weight_step_seconds = 0.0;
  /// Wall-clock seconds of `train_seconds` spent inside the network
  /// step (Algorithm 1 step A: recording the head forward chain,
  /// differentiating the weighted factual loss, and applying the Adam
  /// updates). The share the fused network-step engine targets
  /// (SbrlConfig::net_step_mode); BENCH_table6.json records it as
  /// `<method>/net_step` so the fusion win is tracked across PRs.
  double net_step_seconds = 0.0;
  /// Wall-clock seconds of `train_seconds` spent inside the RFF cosine
  /// sweeps (the sqrt(2) cos epilogue of every decorrelation-loss
  /// feature evaluation) — the delta of the run thread's
  /// CosSweepSecondsThisThread() across Train(), so overlapping runs of
  /// a concurrent sweep never leak sweep time into each other and
  /// rff_cos_seconds <= train_seconds always holds. The dominant slice
  /// of `weight_step_seconds` that the
  /// vectorized CosineMode targets; BENCH_table6.json records it as
  /// `<method>/rff_cos` so the cosine share is tracked across PRs.
  double rff_cos_seconds = 0.0;
  /// Resolved kernel ISA level this run trained with ("baseline" /
  /// "avx2" / "avx512") — SbrlConfig::isa after clamping to the host
  /// and applying any SBRL_ISA override (see common/cpu.h). Recorded
  /// so perf numbers are attributable to the kernel set that produced
  /// them; BenchJsonWriter stamps the same value into BENCH_*.json.
  std::string isa;
  /// First iteration at which the training-health monitor observed a
  /// non-finite or exploded signal (-1: the run stayed healthy). With
  /// recovery on, the run may still finish successfully after rolling
  /// back from here.
  int64_t first_bad_iteration = -1;
  /// Divergence rollbacks performed by the recovery policy (each one
  /// restores the last healthy snapshot and shrinks the learning rate
  /// by SbrlConfig::recovery_lr_backoff).
  int64_t recovery_rollbacks = 0;
  /// Iteration this run resumed from when TrainConfig::resume loaded a
  /// checkpoint (-1: the run started fresh).
  int64_t resumed_from_iteration = -1;
  /// Wall-clock seconds of `train_seconds` spent in the per-iteration
  /// health monitor plus (when recovery is on) capturing the in-memory
  /// rollback snapshot. BENCH_table6.json records it as
  /// `<method>/health`; the acceptance target is < 1% of
  /// train_seconds.
  double health_seconds = 0.0;
  /// Wall-clock seconds spent saving periodic disk checkpoints
  /// (0 unless TrainConfig::checkpoint_every > 0).
  double checkpoint_seconds = 0.0;
  /// Periodic checkpoint saves that failed (saves are non-fatal: the
  /// run logs a warning, counts the failure, and keeps training).
  int64_t checkpoint_failures = 0;
};

/// Runs the paper's Algorithm 1: alternating full-batch optimization of
/// the network parameters under the weighted factual loss L^w_Y
/// (Eq. 13) and of the sample weights under L_w (Eq. 11), with
/// exponential learning-rate decay and validation early stopping.
class SbrlTrainer {
 public:
  /// `backbone` must outlive the trainer. `binary_outcome` selects
  /// cross-entropy vs squared-error heads. `ctx`, when non-null, makes
  /// the trainer borrow the run's session-leased resources (tape pool,
  /// RFF projection cache) instead of owning fresh ones — both must
  /// outlive the trainer; null keeps the self-contained standalone
  /// behavior. Borrowed and owned resources produce bitwise identical
  /// training (value-transparent pooling; see core/run_context.h).
  SbrlTrainer(const EstimatorConfig& config, Backbone* backbone,
              bool binary_outcome, RunContext* ctx = nullptr);

  /// Trains on `train`, early-stopping on `valid` (optional). On
  /// success writes the learned sample weights (uniform for vanilla
  /// frameworks) to `out_weights` and fills `diag`.
  Status Train(const CausalDataset& train, const CausalDataset* valid,
               TrainDiagnostics* diag, Matrix* out_weights);

 private:
  double EvalFactualLoss(const CausalDataset& data);

  EstimatorConfig config_;
  Backbone* backbone_;
  bool binary_outcome_;
  double effective_alpha_br_;
  IpmKind br_ipm_;
  double br_rbf_bandwidth_;
  /// Standalone fallback instances behind the pointers below, used only
  /// when no RunContext was supplied at construction.
  MatrixPool owned_tape_pool_;
  RffProjectionCache owned_rff_cache_;
  /// Buffer arena shared by every per-iteration tape: node shapes repeat
  /// across iterations, so steady-state training reuses buffers instead
  /// of reallocating them. Session-leased (RunContext) or owned.
  MatrixPool* tape_pool_;
  /// Per-weight-step memoizer of the RFF projection draws shared by the
  /// HAP tiers; handed to BuildWeightLoss when
  /// SbrlConfig::rff_projection_cache is set (value-transparent either
  /// way). Session-leased (RunContext) or owned.
  RffProjectionCache* rff_proj_cache_;
};

}  // namespace sbrl

#endif  // SBRL_CORE_TRAINER_H_

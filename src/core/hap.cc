#include "core/hap.h"

#include "core/balancing_regularizer.h"
#include "core/independence_regularizer.h"

namespace sbrl {

Var BuildWeightLoss(Var w, const WeightLossInputs& inputs,
                    const SbrlConfig& config, FrameworkKind framework,
                    double alpha_br, IpmKind ipm, double rbf_bandwidth,
                    Rng& rng, RffProjectionCache* proj_cache) {
  SBRL_CHECK(framework != FrameworkKind::kVanilla)
      << "vanilla models learn no sample weights";
  Tape* tape = w.tape();

  // One projection-draw epoch per weight step, shared by every
  // decorrelation tier below: tiers decorrelate with the same
  // (in_dim = 1, k) stream, so common column indices reuse the same
  // slot draws — and the cache, when present, samples each slot once
  // instead of once per tier. The epoch seed is drawn unconditionally
  // so the rng stream position never depends on the tier set or on
  // whether a cache is plugged in.
  const uint64_t epoch_seed = rng.engine()();
  if (proj_cache != nullptr) proj_cache->BeginEpoch(epoch_seed);
  const RffDrawEpoch epoch{epoch_seed, proj_cache};
  const auto decorrelation = [&](const Matrix& z) {
    return HsicRffDecorrelationLoss(z, w, config.rff_features,
                                    config.hsic_pair_budget, rng,
                                    config.hsic_mode, config.rff_cos_mode,
                                    &epoch);
  };

  // R_w anchor: keeps weights near 1 so no unit dominates or vanishes.
  Var loss = ops::MeanAll(ops::Square(ops::AddConst(w, -1.0)));

  // Balancing Regularizer on the (detached) representation.
  if (alpha_br > 0.0) {
    Var rep_const = tape->Constant(inputs.z_r);
    loss = ops::Add(loss, ops::Scale(WeightedIpmLoss(rep_const, w, inputs.t,
                                                     ipm, rbf_bandwidth),
                                     alpha_br));
  }

  // Independence Regularizer: first priority, the last hidden layer.
  if (config.gamma1 > 0.0) {
    loss = ops::Add(loss, ops::Scale(decorrelation(inputs.z_p),
                                     config.gamma1));
  }

  if (framework == FrameworkKind::kSbrlHap) {
    // Second priority: the balanced representation layer.
    if (config.gamma2 > 0.0) {
      loss = ops::Add(loss, ops::Scale(decorrelation(inputs.z_r),
                                       config.gamma2));
    }
    // Third priority: every remaining hidden layer.
    if (config.gamma3 > 0.0) {
      for (const Matrix& z : inputs.z_o) {
        loss = ops::Add(loss, ops::Scale(decorrelation(z), config.gamma3));
      }
    }
  }
  return loss;
}

}  // namespace sbrl

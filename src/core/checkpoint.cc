#include "core/checkpoint.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/fault.h"

namespace sbrl {

namespace {

// ---------------------------------------------------------------------------
// Byte-level encoding. Fixed-width little-endian scalars, length-
// prefixed strings, shape-prefixed raw f64 matrices. Encoding goes
// through memcpy so the format is byte-stable regardless of alignment;
// the file is only portable between same-endian hosts, which the CRC
// and shape checks turn into a load error rather than silent garbage.
// ---------------------------------------------------------------------------

constexpr char kMagic[8] = {'S', 'B', 'R', 'L', 'C', 'K', 'P', 'T'};

// Section tags. A section is (u32 tag, u64 payload_size, payload,
// u32 crc32(payload)).
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionParams = 2;
constexpr uint32_t kSectionState = 3;
constexpr uint32_t kSectionBestSnapshot = 4;

uint32_t Crc32(const char* data, size_t size) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

template <typename T>
void AppendScalar(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

void AppendString(std::string* out, const std::string& s) {
  AppendScalar<uint64_t>(out, s.size());
  out->append(s);
}

void AppendMatrix(std::string* out, const Matrix& m) {
  AppendScalar<uint64_t>(out, static_cast<uint64_t>(m.rows()));
  AppendScalar<uint64_t>(out, static_cast<uint64_t>(m.cols()));
  out->append(reinterpret_cast<const char*>(m.data()),
              static_cast<size_t>(m.size()) * sizeof(double));
}

void AppendDoubleVector(std::string* out, const std::vector<double>& v) {
  AppendScalar<uint64_t>(out, v.size());
  out->append(reinterpret_cast<const char*>(v.data()),
              v.size() * sizeof(double));
}

// Bounds-checked sequential reader over an encoded byte range. Every
// read returns false once the range is exhausted, which the callers
// translate into a corruption Status — a truncated or bit-flipped
// payload can fail shape checks before the CRC catches it, so both
// layers report instead of reading out of bounds.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool ReadScalar(T* out) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string* out) {
    uint64_t size = 0;
    if (!ReadScalar(&size) || size_ - pos_ < size) return false;
    out->assign(data_ + pos_, size);
    pos_ += size;
    return true;
  }

  bool ReadMatrix(Matrix* out) {
    uint64_t rows = 0, cols = 0;
    if (!ReadScalar(&rows) || !ReadScalar(&cols)) return false;
    // Guard the size multiplication against overflow from corrupted
    // shapes: no legitimate checkpoint tensor approaches 2^30 per dim.
    if (rows > (1ull << 30) || cols > (1ull << 30)) return false;
    const uint64_t bytes = rows * cols * sizeof(double);
    if (size_ - pos_ < bytes) return false;
    *out = Matrix(static_cast<int64_t>(rows), static_cast<int64_t>(cols));
    std::memcpy(out->data(), data_ + pos_, bytes);
    pos_ += bytes;
    return true;
  }

  bool ReadDoubleVector(std::vector<double>* out) {
    uint64_t size = 0;
    if (!ReadScalar(&size) || size > (1ull << 40) ||
        size_ - pos_ < size * sizeof(double)) {
      return false;
    }
    out->resize(size);
    std::memcpy(out->data(), data_ + pos_, size * sizeof(double));
    pos_ += size * sizeof(double);
    return true;
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

std::string EncodeMeta(const TrainingCheckpoint& ckpt) {
  std::string out;
  AppendScalar<int64_t>(&out, ckpt.next_iteration);
  AppendScalar<int64_t>(&out, ckpt.opt_decay_steps);
  AppendScalar<int64_t>(&out, ckpt.opt_plain_steps);
  AppendScalar<int64_t>(&out, ckpt.opt_w_steps);
  AppendScalar<double>(&out, ckpt.best_valid);
  AppendScalar<int64_t>(&out, ckpt.bad_evals);
  AppendScalar<int64_t>(&out, ckpt.best_iteration);
  AppendScalar<int64_t>(&out, ckpt.first_bad_iteration);
  AppendScalar<int64_t>(&out, ckpt.rollbacks);
  AppendScalar<double>(&out, ckpt.lr_scale);
  AppendScalar<double>(&out, ckpt.loss_anchor);
  AppendString(&out, ckpt.rng_state);
  AppendDoubleVector(&out, ckpt.train_loss);
  AppendDoubleVector(&out, ckpt.valid_loss);
  AppendDoubleVector(&out, ckpt.weight_loss);
  return out;
}

bool DecodeMeta(ByteReader* reader, TrainingCheckpoint* ckpt) {
  return reader->ReadScalar(&ckpt->next_iteration) &&
         reader->ReadScalar(&ckpt->opt_decay_steps) &&
         reader->ReadScalar(&ckpt->opt_plain_steps) &&
         reader->ReadScalar(&ckpt->opt_w_steps) &&
         reader->ReadScalar(&ckpt->best_valid) &&
         reader->ReadScalar(&ckpt->bad_evals) &&
         reader->ReadScalar(&ckpt->best_iteration) &&
         reader->ReadScalar(&ckpt->first_bad_iteration) &&
         reader->ReadScalar(&ckpt->rollbacks) &&
         reader->ReadScalar(&ckpt->lr_scale) &&
         reader->ReadScalar(&ckpt->loss_anchor) &&
         reader->ReadString(&ckpt->rng_state) &&
         reader->ReadDoubleVector(&ckpt->train_loss) &&
         reader->ReadDoubleVector(&ckpt->valid_loss) &&
         reader->ReadDoubleVector(&ckpt->weight_loss) && reader->exhausted();
}

std::string EncodeParams(const std::vector<ParamCheckpoint>& params) {
  std::string out;
  AppendScalar<uint64_t>(&out, params.size());
  for (const ParamCheckpoint& p : params) {
    AppendString(&out, p.name);
    AppendMatrix(&out, p.value);
    AppendMatrix(&out, p.adam_m);
    AppendMatrix(&out, p.adam_v);
  }
  return out;
}

bool DecodeParams(ByteReader* reader, std::vector<ParamCheckpoint>* out) {
  uint64_t count = 0;
  if (!reader->ReadScalar(&count)) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ParamCheckpoint p;
    if (!reader->ReadString(&p.name) || !reader->ReadMatrix(&p.value) ||
        !reader->ReadMatrix(&p.adam_m) || !reader->ReadMatrix(&p.adam_v)) {
      return false;
    }
    out->push_back(std::move(p));
  }
  return reader->exhausted();
}

std::string EncodeState(const std::vector<StateCheckpoint>& state) {
  std::string out;
  AppendScalar<uint64_t>(&out, state.size());
  for (const StateCheckpoint& s : state) {
    AppendString(&out, s.name);
    AppendMatrix(&out, s.value);
  }
  return out;
}

bool DecodeState(ByteReader* reader, std::vector<StateCheckpoint>* out) {
  uint64_t count = 0;
  if (!reader->ReadScalar(&count)) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    StateCheckpoint s;
    if (!reader->ReadString(&s.name) || !reader->ReadMatrix(&s.value)) {
      return false;
    }
    out->push_back(std::move(s));
  }
  return reader->exhausted();
}

std::string EncodeBestSnapshot(const std::vector<Matrix>& snapshot) {
  std::string out;
  AppendScalar<uint64_t>(&out, snapshot.size());
  for (const Matrix& m : snapshot) AppendMatrix(&out, m);
  return out;
}

bool DecodeBestSnapshot(ByteReader* reader, std::vector<Matrix>* out) {
  uint64_t count = 0;
  if (!reader->ReadScalar(&count)) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Matrix m;
    if (!reader->ReadMatrix(&m)) return false;
    out->push_back(std::move(m));
  }
  return reader->exhausted();
}

void AppendSection(std::string* out, uint32_t tag,
                   const std::string& payload) {
  AppendScalar<uint32_t>(out, tag);
  AppendScalar<uint64_t>(out, payload.size());
  out->append(payload);
  AppendScalar<uint32_t>(out, Crc32(payload.data(), payload.size()));
}

}  // namespace

Status SaveCheckpoint(const TrainingCheckpoint& ckpt,
                      const std::string& path) {
  std::string encoded;
  encoded.append(kMagic, sizeof(kMagic));
  AppendScalar<uint32_t>(&encoded, kCheckpointFormatVersion);
  AppendScalar<uint32_t>(&encoded, 4);  // section count
  AppendSection(&encoded, kSectionMeta, EncodeMeta(ckpt));
  AppendSection(&encoded, kSectionParams, EncodeParams(ckpt.params));
  AppendSection(&encoded, kSectionState, EncodeState(ckpt.state));
  AppendSection(&encoded, kSectionBestSnapshot,
                EncodeBestSnapshot(ckpt.best_snapshot));

  if (FaultPoint("checkpoint/write")) {
    return Status::Internal("injected fault at checkpoint/write: " + path);
  }

  // Atomic commit: a crash between here and the rename leaves at most a
  // stale .tmp next to an intact previous checkpoint.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("cannot open for writing: " + tmp);
    }
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::Internal("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

StatusOr<TrainingCheckpoint> LoadCheckpoint(const std::string& path) {
  if (FaultPoint("checkpoint/read")) {
    return Status::Internal("injected fault at checkpoint/read: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("read failed: " + path);
  }

  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a checkpoint (bad magic): " + path);
  }
  size_t pos = sizeof(kMagic);
  auto read_u32 = [&](uint32_t* out) {
    if (bytes.size() - pos < sizeof(uint32_t)) return false;
    std::memcpy(out, bytes.data() + pos, sizeof(uint32_t));
    pos += sizeof(uint32_t);
    return true;
  };
  auto read_u64 = [&](uint64_t* out) {
    if (bytes.size() - pos < sizeof(uint64_t)) return false;
    std::memcpy(out, bytes.data() + pos, sizeof(uint64_t));
    pos += sizeof(uint64_t);
    return true;
  };

  uint32_t version = 0, section_count = 0;
  if (!read_u32(&version)) {
    return Status::Internal("truncated checkpoint header: " + path);
  }
  if (version != kCheckpointFormatVersion) {
    return Status::FailedPrecondition(
        "checkpoint format version " + std::to_string(version) +
        " (this build reads " + std::to_string(kCheckpointFormatVersion) +
        "): " + path);
  }
  if (!read_u32(&section_count)) {
    return Status::Internal("truncated checkpoint header: " + path);
  }

  TrainingCheckpoint ckpt;
  bool seen_meta = false, seen_params = false;
  for (uint32_t s = 0; s < section_count; ++s) {
    uint32_t tag = 0, crc = 0;
    uint64_t payload_size = 0;
    if (!read_u32(&tag) || !read_u64(&payload_size) ||
        bytes.size() - pos < payload_size) {
      return Status::Internal("truncated checkpoint section: " + path);
    }
    const char* payload = bytes.data() + pos;
    pos += payload_size;
    if (!read_u32(&crc)) {
      return Status::Internal("truncated checkpoint section: " + path);
    }
    if (Crc32(payload, payload_size) != crc) {
      return Status::Internal("checkpoint CRC mismatch in section " +
                              std::to_string(tag) + ": " + path);
    }
    ByteReader reader(payload, payload_size);
    bool decoded = true;
    switch (tag) {
      case kSectionMeta:
        decoded = DecodeMeta(&reader, &ckpt);
        seen_meta = decoded;
        break;
      case kSectionParams:
        decoded = DecodeParams(&reader, &ckpt.params);
        seen_params = decoded;
        break;
      case kSectionState:
        decoded = DecodeState(&reader, &ckpt.state);
        break;
      case kSectionBestSnapshot:
        decoded = DecodeBestSnapshot(&reader, &ckpt.best_snapshot);
        break;
      default:
        // Unknown sections are a forward-compat error at version parity:
        // same version must mean same sections.
        return Status::Internal("unknown checkpoint section tag " +
                                std::to_string(tag) + ": " + path);
    }
    if (!decoded) {
      return Status::Internal("corrupt checkpoint section " +
                              std::to_string(tag) + ": " + path);
    }
  }
  if (!seen_meta || !seen_params) {
    return Status::Internal("checkpoint missing required sections: " + path);
  }
  return ckpt;
}

}  // namespace sbrl

#include "core/checkpoint.h"

#include "common/serial.h"

namespace sbrl {

namespace {

// Byte-level encoding is delegated to the shared sectioned-file codec
// in common/serial.h (magic + u32 version + CRC32-trailed sections,
// atomic tmp+rename commit). This file owns only the checkpoint's
// section tags and per-section payload codecs.

using serial::AppendDoubleVector;
using serial::AppendMatrix;
using serial::AppendScalar;
using serial::AppendString;
using serial::ByteReader;

constexpr serial::FormatSpec kCheckpointFormat = {
    /*magic=*/"SBRLCKPT",
    /*version=*/kCheckpointFormatVersion,
    /*what=*/"checkpoint",
    /*write_fault=*/"checkpoint/write",
    /*read_fault=*/"checkpoint/read",
};

// Section tags. A section is (u32 tag, u64 payload_size, payload,
// u32 crc32(payload)).
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionParams = 2;
constexpr uint32_t kSectionState = 3;
constexpr uint32_t kSectionBestSnapshot = 4;

std::string EncodeMeta(const TrainingCheckpoint& ckpt) {
  std::string out;
  AppendScalar<int64_t>(&out, ckpt.next_iteration);
  AppendScalar<int64_t>(&out, ckpt.opt_decay_steps);
  AppendScalar<int64_t>(&out, ckpt.opt_plain_steps);
  AppendScalar<int64_t>(&out, ckpt.opt_w_steps);
  AppendScalar<double>(&out, ckpt.best_valid);
  AppendScalar<int64_t>(&out, ckpt.bad_evals);
  AppendScalar<int64_t>(&out, ckpt.best_iteration);
  AppendScalar<int64_t>(&out, ckpt.first_bad_iteration);
  AppendScalar<int64_t>(&out, ckpt.rollbacks);
  AppendScalar<double>(&out, ckpt.lr_scale);
  AppendScalar<double>(&out, ckpt.loss_anchor);
  AppendString(&out, ckpt.rng_state);
  AppendDoubleVector(&out, ckpt.train_loss);
  AppendDoubleVector(&out, ckpt.valid_loss);
  AppendDoubleVector(&out, ckpt.weight_loss);
  return out;
}

bool DecodeMeta(ByteReader* reader, TrainingCheckpoint* ckpt) {
  return reader->ReadScalar(&ckpt->next_iteration) &&
         reader->ReadScalar(&ckpt->opt_decay_steps) &&
         reader->ReadScalar(&ckpt->opt_plain_steps) &&
         reader->ReadScalar(&ckpt->opt_w_steps) &&
         reader->ReadScalar(&ckpt->best_valid) &&
         reader->ReadScalar(&ckpt->bad_evals) &&
         reader->ReadScalar(&ckpt->best_iteration) &&
         reader->ReadScalar(&ckpt->first_bad_iteration) &&
         reader->ReadScalar(&ckpt->rollbacks) &&
         reader->ReadScalar(&ckpt->lr_scale) &&
         reader->ReadScalar(&ckpt->loss_anchor) &&
         reader->ReadString(&ckpt->rng_state) &&
         reader->ReadDoubleVector(&ckpt->train_loss) &&
         reader->ReadDoubleVector(&ckpt->valid_loss) &&
         reader->ReadDoubleVector(&ckpt->weight_loss) && reader->exhausted();
}

std::string EncodeParams(const std::vector<ParamCheckpoint>& params) {
  std::string out;
  AppendScalar<uint64_t>(&out, params.size());
  for (const ParamCheckpoint& p : params) {
    AppendString(&out, p.name);
    AppendMatrix(&out, p.value);
    AppendMatrix(&out, p.adam_m);
    AppendMatrix(&out, p.adam_v);
  }
  return out;
}

bool DecodeParams(ByteReader* reader, std::vector<ParamCheckpoint>* out) {
  uint64_t count = 0;
  if (!reader->ReadScalar(&count)) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ParamCheckpoint p;
    if (!reader->ReadString(&p.name) || !reader->ReadMatrix(&p.value) ||
        !reader->ReadMatrix(&p.adam_m) || !reader->ReadMatrix(&p.adam_v)) {
      return false;
    }
    out->push_back(std::move(p));
  }
  return reader->exhausted();
}

std::string EncodeState(const std::vector<StateCheckpoint>& state) {
  std::string out;
  AppendScalar<uint64_t>(&out, state.size());
  for (const StateCheckpoint& s : state) {
    AppendString(&out, s.name);
    AppendMatrix(&out, s.value);
  }
  return out;
}

bool DecodeState(ByteReader* reader, std::vector<StateCheckpoint>* out) {
  uint64_t count = 0;
  if (!reader->ReadScalar(&count)) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    StateCheckpoint s;
    if (!reader->ReadString(&s.name) || !reader->ReadMatrix(&s.value)) {
      return false;
    }
    out->push_back(std::move(s));
  }
  return reader->exhausted();
}

std::string EncodeBestSnapshot(const std::vector<Matrix>& snapshot) {
  std::string out;
  AppendScalar<uint64_t>(&out, snapshot.size());
  for (const Matrix& m : snapshot) AppendMatrix(&out, m);
  return out;
}

bool DecodeBestSnapshot(ByteReader* reader, std::vector<Matrix>* out) {
  uint64_t count = 0;
  if (!reader->ReadScalar(&count)) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Matrix m;
    if (!reader->ReadMatrix(&m)) return false;
    out->push_back(std::move(m));
  }
  return reader->exhausted();
}

}  // namespace

Status SaveCheckpoint(const TrainingCheckpoint& ckpt,
                      const std::string& path) {
  std::vector<serial::Section> sections;
  sections.push_back({kSectionMeta, EncodeMeta(ckpt)});
  sections.push_back({kSectionParams, EncodeParams(ckpt.params)});
  sections.push_back({kSectionState, EncodeState(ckpt.state)});
  sections.push_back({kSectionBestSnapshot,
                      EncodeBestSnapshot(ckpt.best_snapshot)});
  return serial::WriteSectionedFile(kCheckpointFormat, sections, path);
}

StatusOr<TrainingCheckpoint> LoadCheckpoint(const std::string& path) {
  SBRL_ASSIGN_OR_RETURN(std::vector<serial::Section> sections,
                        serial::ReadSectionedFile(kCheckpointFormat, path));

  TrainingCheckpoint ckpt;
  bool seen_meta = false, seen_params = false;
  for (const serial::Section& section : sections) {
    ByteReader reader(section.payload.data(), section.payload.size());
    bool decoded = true;
    switch (section.tag) {
      case kSectionMeta:
        decoded = DecodeMeta(&reader, &ckpt);
        seen_meta = decoded;
        break;
      case kSectionParams:
        decoded = DecodeParams(&reader, &ckpt.params);
        seen_params = decoded;
        break;
      case kSectionState:
        decoded = DecodeState(&reader, &ckpt.state);
        break;
      case kSectionBestSnapshot:
        decoded = DecodeBestSnapshot(&reader, &ckpt.best_snapshot);
        break;
      default:
        // Unknown sections are a forward-compat error at version parity:
        // same version must mean same sections.
        return Status::Internal("unknown checkpoint section tag " +
                                std::to_string(section.tag) + ": " + path);
    }
    if (!decoded) {
      return Status::Internal("corrupt checkpoint section " +
                              std::to_string(section.tag) + ": " + path);
    }
  }
  if (!seen_meta || !seen_params) {
    return Status::Internal("checkpoint missing required sections: " + path);
  }
  return ckpt;
}

}  // namespace sbrl

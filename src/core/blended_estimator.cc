#include "core/blended_estimator.h"

namespace sbrl {

StatusOr<BlendedHteEstimator> BlendedHteEstimator::Create(
    const EstimatorConfig& config,
    const OodLevelDetector::Options& detector_options) {
  if (config.framework == FrameworkKind::kVanilla) {
    return Status::InvalidArgument(
        "blended estimation needs a stable framework (SBRL or SBRL-HAP) "
        "as the second member");
  }
  EstimatorConfig vanilla_config = config;
  vanilla_config.framework = FrameworkKind::kVanilla;
  SBRL_ASSIGN_OR_RETURN(HteEstimator vanilla,
                        HteEstimator::Create(vanilla_config));
  SBRL_ASSIGN_OR_RETURN(HteEstimator stable, HteEstimator::Create(config));
  return BlendedHteEstimator(std::move(vanilla), std::move(stable),
                             detector_options);
}

Status BlendedHteEstimator::Fit(const CausalDataset& train,
                                const CausalDataset* valid) {
  SBRL_RETURN_IF_ERROR(vanilla_.Fit(train, valid));
  SBRL_RETURN_IF_ERROR(stable_.Fit(train, valid));
  SBRL_ASSIGN_OR_RETURN(OodLevelDetector detector,
                        OodLevelDetector::Fit(train.x, detector_options_));
  detector_ = std::move(detector);
  return Status::OK();
}

double BlendedHteEstimator::OodLevel(const Matrix& x) const {
  SBRL_CHECK(detector_.has_value()) << "call Fit before OodLevel";
  return detector_->LevelOf(x);
}

std::vector<double> BlendedHteEstimator::PredictIte(const Matrix& x) const {
  const double lambda = OodLevel(x);
  const std::vector<double> ite_vanilla = vanilla_.PredictIte(x);
  const std::vector<double> ite_stable = stable_.PredictIte(x);
  std::vector<double> blended(ite_vanilla.size());
  for (size_t i = 0; i < blended.size(); ++i) {
    blended[i] = (1.0 - lambda) * ite_vanilla[i] + lambda * ite_stable[i];
  }
  return blended;
}

double BlendedHteEstimator::PredictAte(const Matrix& x) const {
  const std::vector<double> ite = PredictIte(x);
  SBRL_CHECK(!ite.empty());
  double acc = 0.0;
  for (double v : ite) acc += v;
  return acc / static_cast<double>(ite.size());
}

}  // namespace sbrl

#ifndef SBRL_CORE_BACKBONE_H_
#define SBRL_CORE_BACKBONE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "nn/dense.h"
#include "nn/mlp.h"

namespace sbrl {

/// Everything a backbone exposes from one forward pass. The hierarchy
/// of activations feeds the SBRL-HAP weight loss:
///   z_p     — first priority: factual last hidden layer of the heads,
///   rep     — second priority: the balanced representation Z_r,
///   z_other — third priority: every remaining hidden layer Z_o.
struct BackboneForward {
  /// Potential-outcome predictions (n x 1): logits for binary outcomes,
  /// raw values for continuous outcomes.
  Var y0;
  Var y1;
  /// Balanced representation Z_r (n x d_rep).
  Var rep;
  /// Factual last hidden layer Z_p of the outcome heads (n x h_y).
  Var z_p;
  /// All other hidden layers Z_o, outer to inner.
  std::vector<Var> z_other;
  /// Backbone-specific regularizers (IPM balance, decomposition
  /// losses), already scaled by their configured weights; scalar.
  Var aux_loss;
};

/// A potential-outcome network that SBRL / SBRL-HAP can wrap. The
/// framework only assumes this interface, which is what makes the
/// paper's method model-agnostic (any representation-balancing
/// architecture plugs in).
class Backbone {
 public:
  virtual ~Backbone() = default;

  /// Records one full forward pass on the binder's tape. `w` is the
  /// current (n x 1) sample-weight node — constant during the network
  /// step — consumed by backbones whose internal losses are weighted
  /// (e.g. CFR's IPM, per paper Eq. 4).
  virtual BackboneForward Forward(ParamBinder& binder, const Matrix& x,
                                  const std::vector<int>& t, Var w,
                                  bool training) = 0;

  /// All trainable parameters.
  virtual void CollectParams(std::vector<Param*>* out) = 0;

  /// Appends named references to every non-Param training state matrix
  /// (BatchNorm running statistics) so the checkpoint layer can
  /// snapshot and restore it. Default: no state.
  virtual void CollectStateMatrices(std::vector<NamedStateRef>* out) {
    (void)out;
  }

  /// Parameters subject to the paper's R_l2 head regularizer (outcome
  /// head weight matrices, excluding biases).
  virtual std::vector<Param*> DecayParams() = 0;

  /// Covariate dimension the backbone was built for.
  virtual int64_t input_dim() const = 0;
};

/// Two-head potential-outcome module shared by every backbone: h0 and
/// h1 are depth-d_y MLPs over the representation, each followed by a
/// linear output unit.
class OutcomeHeads {
 public:
  OutcomeHeads() = default;

  /// Builds both heads (`name`.h0 / `name`.h1) over an `in_dim`-wide
  /// representation, sized by `config`, initialized from `rng`.
  OutcomeHeads(const std::string& name, int64_t in_dim,
               const NetworkConfig& config, Rng& rng);

  /// Outputs of one two-head pass, plus the factual activations the
  /// HAP tiers decorrelate.
  struct Result {
    Var y0;                   ///< control-head prediction (n x 1)
    Var y1;                   ///< treated-head prediction (n x 1)
    Var z_p;                  ///< factual last hidden (n x h_y)
    std::vector<Var> hidden;  ///< factual hiddens at all other depths
  };

  /// Forward through both heads; `t` selects each unit's factual head
  /// when assembling z_p / hidden. `mode` selects the fused or
  /// reference network-step recording for the head bodies (see
  /// NetStepMode in nn/net_step.h).
  Result Forward(ParamBinder& binder, Var rep, const std::vector<int>& t,
                 bool training,
                 NetStepMode mode = NetStepMode::kReference) const;

  /// Appends all trainable parameters of both heads to `*out`.
  void CollectParams(std::vector<Param*>* out);
  /// Appends BatchNorm running statistics of both head bodies (see
  /// Backbone::CollectStateMatrices).
  void CollectStateMatrices(std::vector<NamedStateRef>* out);
  /// Head weight matrices subject to the paper's R_l2 regularizer.
  std::vector<Param*> DecayParams();

 private:
  Mlp body0_;
  Mlp body1_;
  Dense out0_;
  Dense out1_;
};

/// Instantiates the backbone selected by `config.backbone`.
std::unique_ptr<Backbone> CreateBackbone(const EstimatorConfig& config,
                                         int64_t input_dim, Rng& rng);

}  // namespace sbrl

#endif  // SBRL_CORE_BACKBONE_H_

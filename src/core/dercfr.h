#ifndef SBRL_CORE_DERCFR_H_
#define SBRL_CORE_DERCFR_H_

#include <vector>

#include "core/backbone.h"

namespace sbrl {

/// DeR-CFR (Wu et al., TKDE 2022): decomposes covariates into three
/// learned representations —
///   I(x)  instrumental factors (drive treatment, not outcome),
///   C(x)  confounding factors (drive both),
///   A(x)  adjustment factors (drive outcome, not treatment) —
/// and enforces the decomposition with four structural losses:
///   1. adjustment balance      IPM(A_t, A_c)            (A _||_ T),
///   2. instrument independence Cov(I, Y | T = t) -> 0   (I _||_ Y | T),
///   3. confounder balancing    IPM of C between arms under a learned
///      per-arm weighting network omega(C) with a mean-1 anchor,
///   4. feature-importance orthogonality of the three first-layer
///      weight matrices (each input feature should feed mostly one of
///      I / C / A).
/// Outcome heads read [C, A]; a treatment head reads [I, C].
///
/// The loss weights mirror the paper's Table V hyper-parameters
/// {alpha, beta, gamma, mu, lambda}; see DerCfrConfig. The instrument
/// independence penalty uses within-arm covariance (a linear HSIC
/// surrogate) rather than the full kernel statistic — a documented
/// simplification (DESIGN.md §5.1) that preserves the decomposition
/// pressure at a fraction of the cost.
class DerCfrBackbone : public Backbone {
 public:
  /// Builds the three decomposed representation networks and both
  /// outcome heads, sized by `config`, initialized from `rng`.
  DerCfrBackbone(const EstimatorConfig& config, int64_t input_dim, Rng& rng);

  /// Backbone::Forward with the DeR-CFR decomposition losses attached
  /// to aux_loss (confounder balance, instrument independence,
  /// orthogonality, adjustment balance, treatment head).
  BackboneForward Forward(ParamBinder& binder, const Matrix& x,
                          const std::vector<int>& t, Var w,
                          bool training) override;

  /// Factual outcomes must be provided before Forward so the
  /// instrument-independence penalty can see Y. The trainer calls this
  /// once per fit; prediction-time forwards pass zero outcomes (the
  /// penalty is ignored when `training` is false).
  void SetOutcomes(const Matrix& y);

  /// All trainable parameters of the three networks and both heads.
  void CollectParams(std::vector<Param*>* out) override;
  /// BatchNorm running statistics of the three networks and heads.
  void CollectStateMatrices(std::vector<NamedStateRef>* out) override;
  /// Outcome-head weight matrices subject to R_l2.
  std::vector<Param*> DecayParams() override;
  /// Covariate dimension the backbone was built for.
  int64_t input_dim() const override { return input_dim_; }

 private:
  int64_t input_dim_;
  NetworkConfig network_;
  NetStepMode net_step_mode_;
  DerCfrConfig config_;
  Mlp i_net_;
  Mlp c_net_;
  Mlp a_net_;
  OutcomeHeads heads_;
  Dense t_head_;
  Dense weight_head_t_;  // omega(C) for the treated arm
  Dense weight_head_c_;  // omega(C) for the control arm
  Matrix y_;             // factual outcomes for the independence penalty
};

}  // namespace sbrl

#endif  // SBRL_CORE_DERCFR_H_

#ifndef SBRL_TENSOR_POOL_H_
#define SBRL_TENSOR_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tensor/matrix.h"

namespace sbrl {

/// Free-list of Matrix buffers keyed by element count.
///
/// The training loop rebuilds an autodiff tape every iteration with the
/// same node shapes; without recycling, every node value, gradient, and
/// backward temporary is a fresh heap allocation. A MatrixPool owned by
/// the trainer outlives the per-iteration tapes: each Tape hands its
/// buffers back on destruction and the next iteration's tape re-acquires
/// them, so steady-state training performs no matrix allocations at all.
///
/// Not thread-safe: a pool belongs to the single thread that builds and
/// destroys tapes (kernels parallelize *inside* ops, never across them).
class MatrixPool {
 public:
  MatrixPool() = default;
  MatrixPool(const MatrixPool&) = delete;
  MatrixPool& operator=(const MatrixPool&) = delete;

  /// Zeroed (rows x cols) matrix, recycling a free buffer of the same
  /// element count when one exists.
  Matrix AcquireZero(int64_t rows, int64_t cols);

  /// Copy of `src`, recycling a free buffer when one exists.
  Matrix AcquireCopy(const Matrix& src);

  /// Returns a matrix's storage to the free list. Accepts empty
  /// matrices (no-op) so callers can release unconditionally.
  void Release(Matrix&& m);

  /// Buffers currently parked in the free list.
  int64_t free_count() const { return free_count_; }
  /// Acquires served from the free list / via fresh allocation.
  int64_t reuse_count() const { return reuse_count_; }
  /// Acquires that had to allocate fresh storage.
  int64_t alloc_count() const { return alloc_count_; }

 private:
  /// Pops a free buffer with exactly `size` elements, or an empty
  /// matrix when none is available.
  Matrix Take(int64_t size);

  // Per-size cap so a one-off giant tape cannot pin memory forever.
  static constexpr size_t kMaxFreePerSize = 256;

  std::unordered_map<int64_t, std::vector<Matrix>> free_;
  int64_t free_count_ = 0;
  int64_t reuse_count_ = 0;
  int64_t alloc_count_ = 0;
};

}  // namespace sbrl

#endif  // SBRL_TENSOR_POOL_H_

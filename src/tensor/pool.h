#ifndef SBRL_TENSOR_POOL_H_
#define SBRL_TENSOR_POOL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "tensor/matrix.h"

namespace sbrl {

/// Free-list of Matrix buffers keyed by storage capacity, served
/// best-fit (smallest parked capacity that holds the request).
///
/// The training loop rebuilds an autodiff tape every iteration with the
/// same node shapes; without recycling, every node value, gradient, and
/// backward temporary is a fresh heap allocation. A MatrixPool owned by
/// the trainer outlives the per-iteration tapes: each Tape hands its
/// buffers back on destruction and the next iteration's tape re-acquires
/// them, so steady-state training performs no matrix allocations at all.
///
/// Best-fit (rather than exact-size) matching matters for shapes that
/// vary between tapes: TARNet-style backbones split rows by treatment
/// arm, so consecutive shards of the out-of-core path request
/// (treated_k x width) buffers whose element counts almost never
/// repeat. An exact-size free list parks every one of them forever —
/// unbounded growth — while best-fit keeps serving the varying
/// requests from the same parked storage, so the free list saturates
/// at roughly one tape's working set.
///
/// The parked total is additionally bounded by DEMAND, not by a fixed
/// constant: the pool tracks the high-water mark of concurrently
/// checked-out elements (one tape's working set) and refuses to park
/// beyond a small multiple of it. Buffers that entered the tape from
/// plain allocations (e.g. `Tape::Constant(Matrix::Ones(...))`) arrive
/// at Release without a matching Take; without the demand bound they
/// would grow the free list by a few buffers per tape forever — the
/// O(n) creep that broke the out-of-core path's "peak RSS bounded by
/// shard size" guarantee. Dropped buffers simply return to the
/// allocator; values are never affected (pool storage is
/// value-transparent by contract).
///
/// Not thread-safe: a pool belongs to the single thread that builds and
/// destroys tapes (kernels parallelize *inside* ops, never across them).
class MatrixPool {
 public:
  MatrixPool() = default;
  MatrixPool(const MatrixPool&) = delete;
  MatrixPool& operator=(const MatrixPool&) = delete;

  /// Zeroed (rows x cols) matrix, recycling the best-fitting free
  /// buffer when one exists.
  Matrix AcquireZero(int64_t rows, int64_t cols);

  /// Copy of `src`, recycling the best-fitting free buffer when one
  /// exists.
  Matrix AcquireCopy(const Matrix& src);

  /// Returns a matrix's storage to the free list (keyed by its
  /// capacity). Accepts empty matrices (no-op) so callers can release
  /// unconditionally.
  void Release(Matrix&& m);

  /// Buffers currently parked in the free list.
  int64_t free_count() const { return free_count_; }
  /// Elements currently parked in the free list (capacity sum).
  int64_t free_elements() const { return free_elements_; }
  /// Acquires served from the free list / via fresh allocation.
  int64_t reuse_count() const { return reuse_count_; }
  /// Acquires that had to allocate fresh storage.
  int64_t alloc_count() const { return alloc_count_; }

  /// High-water mark of concurrently checked-out elements — the
  /// demand estimate that bounds how much the free list may park.
  int64_t demand_high_water() const { return demand_high_water_; }

 private:
  /// Pops the free buffer with the smallest capacity >= `size`, or an
  /// empty matrix when none is available.
  Matrix Take(int64_t size);

  // Per-capacity cap so a one-off giant tape cannot pin memory forever.
  static constexpr size_t kMaxFreePerSize = 256;
  // Park at most this multiple of the demand high-water mark...
  static constexpr int64_t kFreeBudgetFactor = 2;
  // ...but never refuse below this floor (tiny pools shouldn't thrash).
  static constexpr int64_t kMinFreeElements = int64_t{1} << 20;  // 8 MiB

  /// Ordered by capacity so Take can lower_bound the best fit.
  std::map<int64_t, std::vector<Matrix>> free_;
  int64_t free_count_ = 0;
  int64_t free_elements_ = 0;
  int64_t reuse_count_ = 0;
  int64_t alloc_count_ = 0;
  /// Elements currently checked out (Takes minus Releases, floored at
  /// zero — plain-allocated buffers released without a matching Take
  /// must not drive it negative).
  int64_t outstanding_ = 0;
  int64_t demand_high_water_ = 0;
};

}  // namespace sbrl

#endif  // SBRL_TENSOR_POOL_H_

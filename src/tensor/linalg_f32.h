#ifndef SBRL_TENSOR_LINALG_F32_H_
#define SBRL_TENSOR_LINALG_F32_H_

#include "tensor/matrix_f32.h"

namespace sbrl {

/// f32-tier dense matmul entry points (see common/precision.h). Same
/// shape checks, serial cutoffs, and ParallelFor chunking as the f64
/// entry points in tensor/linalg.h — the arithmetic runs through the
/// LinalgKernelsF32 per-ISA tables, so Matmul/MatmulTransA results are
/// bitwise identical across ISA levels while MatmulTransB is
/// tolerance-bounded vs the f32 baseline (tensor/kernels.h). Used by
/// the f32 serving path and benchmarks only; training stays f64.

/// Dense product a(n x k) * b(k x m) -> (n x m) in f32 storage.
MatrixF32 MatmulF32(const MatrixF32& a, const MatrixF32& b);

/// a^T * b where a is (k x n): (n x m) without materializing a^T.
MatrixF32 MatmulTransAF32(const MatrixF32& a, const MatrixF32& b);

/// a * b^T where b is (m x k): (n x m) without materializing b^T.
MatrixF32 MatmulTransBF32(const MatrixF32& a, const MatrixF32& b);

/// Accumulating in-place variants: the product is ADDED into `*out`
/// (same contract as the f64 *Into family).
void MatmulF32Into(const MatrixF32& a, const MatrixF32& b, MatrixF32* out);
/// Accumulating in-place a^T * b.
void MatmulTransAF32Into(const MatrixF32& a, const MatrixF32& b,
                         MatrixF32* out);
/// Accumulating in-place a * b^T.
void MatmulTransBF32Into(const MatrixF32& a, const MatrixF32& b,
                         MatrixF32* out);

}  // namespace sbrl

#endif  // SBRL_TENSOR_LINALG_F32_H_

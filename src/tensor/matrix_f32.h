#ifndef SBRL_TENSOR_MATRIX_F32_H_
#define SBRL_TENSOR_MATRIX_F32_H_

#include <cstdint>
#include <string>

#include "common/aligned.h"
#include "common/check.h"
#include "tensor/matrix.h"

namespace sbrl {

/// Dense row-major matrix of floats — the storage type of the f32
/// precision tier (common/precision.h). Deliberately a separate type
/// rather than a template parameter on Matrix: the autodiff tape, the
/// pools, and every training-path contract stay double-only by
/// construction, and the few f32-eligible paths (serving forwards,
/// streamed-stats staging, the f32 kernel family in
/// tensor/linalg_f32.h) opt in explicitly by naming this type.
///
/// Same layout and alignment contract as Matrix: contiguous row-major
/// storage, 64-byte-aligned (IsTensorAligned(data()) always holds).
/// The surface is the subset the f32 paths need — conversions to and
/// from Matrix are the bridge back to the reference tier.
class MatrixF32 {
 public:
  /// Empty 0x0 matrix.
  MatrixF32() : rows_(0), cols_(0) {}

  /// Zero-filled matrix of shape (rows x cols).
  MatrixF32(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0f) {
    SBRL_CHECK_GE(rows, 0);
    SBRL_CHECK_GE(cols, 0);
  }

  /// Constant-filled matrix of shape (rows x cols).
  MatrixF32(int64_t rows, int64_t cols, float fill)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), fill) {
    SBRL_CHECK_GE(rows, 0);
    SBRL_CHECK_GE(cols, 0);
  }

  /// Narrowing conversion from the reference tier: every element cast
  /// float(src(r, c)) (round-to-nearest-even, the only rounding step
  /// an f32 path introduces over its f64 twin for stored values).
  static MatrixF32 FromF64(const Matrix& src);

  /// Number of rows.
  int64_t rows() const { return rows_; }
  /// Number of columns.
  int64_t cols() const { return cols_; }
  /// Total element count (rows * cols).
  int64_t size() const { return rows_ * cols_; }
  /// True when the matrix holds no elements.
  bool empty() const { return size() == 0; }

  /// Element access by (row, column); bounds-DCHECKed.
  float& operator()(int64_t r, int64_t c) {
    SBRL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  /// See the mutable overload.
  float operator()(int64_t r, int64_t c) const {
    SBRL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// Flat element access in row-major order.
  float& operator[](int64_t i) {
    SBRL_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }
  /// See the mutable overload.
  float operator[](int64_t i) const {
    SBRL_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }

  /// Raw pointer to the contiguous row-major storage.
  float* data() { return data_.data(); }
  /// See the mutable overload.
  const float* data() const { return data_.data(); }

  /// True when `other` has the same (rows x cols) shape.
  bool same_shape(const MatrixF32& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// "(3x4)" — used in CHECK diagnostics.
  std::string ShapeString() const;

  /// Fills every element with `v`.
  void Fill(float v);

  /// Reshapes in place to (rows x cols) with every element zero,
  /// reusing the backing storage when its capacity suffices — the
  /// recycling primitive the f32 block-staging wave relies on.
  void ResetZero(int64_t rows, int64_t cols);

  /// Reshapes to `src`'s shape and narrows its contents in one pass,
  /// reusing the backing storage when possible. The in-place twin of
  /// FromF64 for steady-state staging loops.
  void ResetNarrowOf(const Matrix& src);

  /// Elements the backing storage can hold without reallocating
  /// (>= size(); survives shrinking Resets).
  int64_t capacity() const { return static_cast<int64_t>(data_.capacity()); }

  /// Widening conversion back to the reference tier (exact — every
  /// float is representable as a double).
  Matrix ToF64() const;

  /// Widens into `*out` via ResetZero-style storage reuse.
  void WidenInto(Matrix* out) const;

 private:
  int64_t rows_;
  int64_t cols_;
  /// 64-byte-aligned backing storage (see common/aligned.h).
  AlignedVector<float> data_;
};

/// True when shapes match and all elements differ by at most `tol`.
bool AllClose(const MatrixF32& a, const MatrixF32& b, double tol = 1e-5);

}  // namespace sbrl

#endif  // SBRL_TENSOR_MATRIX_F32_H_

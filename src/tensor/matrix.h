#ifndef SBRL_TENSOR_MATRIX_H_
#define SBRL_TENSOR_MATRIX_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"

namespace sbrl {

/// Dense row-major matrix of doubles. This is the single numeric
/// container used across the library: network activations are (n x d)
/// matrices, vectors are (n x 1) or (1 x d) matrices, and scalars are
/// (1 x 1). Double precision is deliberate — the HSIC / IPM statistics at
/// the heart of SBRL-HAP involve small differences of large sums.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Uninitialized-to-zero matrix of shape (rows x cols).
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.0) {
    SBRL_CHECK_GE(rows, 0);
    SBRL_CHECK_GE(cols, 0);
  }

  /// Constant-filled matrix of shape (rows x cols).
  Matrix(int64_t rows, int64_t cols, double fill)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), fill) {
    SBRL_CHECK_GE(rows, 0);
    SBRL_CHECK_GE(cols, 0);
  }

  /// Builds a matrix from nested braces: Matrix::FromRows({{1,2},{3,4}}).
  static Matrix FromRows(
      std::initializer_list<std::initializer_list<double>> rows);

  /// Builds an (n x 1) column vector from a flat vector.
  static Matrix ColumnVector(const std::vector<double>& values);

  /// Adopts `values` (row-major, size rows*cols) as the backing storage
  /// of a (rows x cols) matrix — no copy. This is the zero-copy seam
  /// the streaming/flat-buffer CSV loader hands its accumulation
  /// buffers through; it takes the aligned vector type so adopted
  /// storage meets the same kTensorAlignment contract as constructed
  /// storage.
  static Matrix FromFlat(int64_t rows, int64_t cols,
                         AlignedVector<double>&& values);

  /// Builds a (1 x n) row vector from a flat vector.
  static Matrix RowVector(const std::vector<double>& values);

  /// All-zero matrix of shape (rows x cols).
  static Matrix Zeros(int64_t rows, int64_t cols) {
    return Matrix(rows, cols);
  }
  /// All-one matrix of shape (rows x cols).
  static Matrix Ones(int64_t rows, int64_t cols) {
    return Matrix(rows, cols, 1.0);
  }
  /// Matrix of shape (rows x cols) with every element `v`.
  static Matrix Constant(int64_t rows, int64_t cols, double v) {
    return Matrix(rows, cols, v);
  }
  /// The (n x n) identity matrix.
  static Matrix Identity(int64_t n);

  /// Number of rows.
  int64_t rows() const { return rows_; }
  /// Number of columns.
  int64_t cols() const { return cols_; }
  /// Total element count (rows * cols).
  int64_t size() const { return rows_ * cols_; }
  /// True when the matrix holds no elements.
  bool empty() const { return size() == 0; }

  /// True if shape is exactly (1 x 1).
  bool is_scalar() const { return rows_ == 1 && cols_ == 1; }

  /// Value of a (1 x 1) matrix; CHECK-fails otherwise.
  double scalar() const {
    SBRL_CHECK(is_scalar()) << "shape " << ShapeString();
    return data_[0];
  }

  /// Element access by (row, column); bounds-DCHECKed.
  double& operator()(int64_t r, int64_t c) {
    SBRL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  /// See the mutable overload.
  double operator()(int64_t r, int64_t c) const {
    SBRL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// Flat element access in row-major order.
  double& operator[](int64_t i) {
    SBRL_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }
  /// See the mutable overload.
  double operator[](int64_t i) const {
    SBRL_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }

  /// Raw pointer to the contiguous row-major storage.
  double* data() { return data_.data(); }
  /// See the mutable overload.
  const double* data() const { return data_.data(); }

  /// True when `other` has the same (rows x cols) shape.
  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// "(3x4)" — used in CHECK diagnostics.
  std::string ShapeString() const;

  /// Fills every element with `v`.
  void Fill(double v);

  /// Reshapes in place to (rows x cols) with every element zero. The
  /// backing storage is reused when its capacity suffices — this is the
  /// recycling primitive behind MatrixPool.
  void ResetZero(int64_t rows, int64_t cols);

  /// Reshapes in place to `src`'s shape and copies its contents in one
  /// pass, reusing the backing storage when possible.
  void ResetCopyOf(const Matrix& src);

  /// Elements the backing storage can hold without reallocating (>=
  /// size(); survives shrinking Resets). MatrixPool keys its free list
  /// by this, so recycled buffers keep serving smaller shapes.
  int64_t capacity() const { return static_cast<int64_t>(data_.capacity()); }

  /// In-place elementwise operations (shape must match exactly).
  Matrix& operator+=(const Matrix& other);
  /// See operator+=.
  Matrix& operator-=(const Matrix& other);
  /// In-place multiplication of every element by `s`.
  Matrix& operator*=(double s);

  /// Elementwise arithmetic (shape must match exactly).
  friend Matrix operator+(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);
  friend Matrix operator*(const Matrix& a, double s);
  friend Matrix operator*(double s, const Matrix& a);

  /// Sum of all elements.
  double Sum() const;
  /// Mean of all elements; CHECK-fails on empty matrices.
  double Mean() const;
  /// Maximum / minimum element; CHECK-fails on empty matrices.
  double MaxValue() const;
  /// See MaxValue.
  double MinValue() const;
  /// Frobenius norm.
  double Norm() const;

  /// Copy of column `c` as an (n x 1) matrix.
  Matrix Col(int64_t c) const;
  /// Copy of row `r` as a (1 x m) matrix.
  Matrix Row(int64_t r) const;

  /// Flattens to a std::vector in row-major order (copies — the
  /// backing storage itself is an AlignedVector).
  std::vector<double> ToVector() const;

  /// Multi-line human-readable rendering (for debugging / examples).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  int64_t rows_;
  int64_t cols_;
  /// 64-byte-aligned backing storage (see common/aligned.h): fresh,
  /// pool-recycled, and FromFlat-adopted buffers all satisfy
  /// IsTensorAligned(data()).
  AlignedVector<double> data_;
};

/// True when shapes match and all elements differ by at most `tol`.
bool AllClose(const Matrix& a, const Matrix& b, double tol = 1e-9);

}  // namespace sbrl

#endif  // SBRL_TENSOR_MATRIX_H_

#include "tensor/linalg_f32.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "tensor/kernels.h"

namespace sbrl {

namespace {

// Mirror of the f64 layer's chunking (tensor/linalg.cc): the serial
// cutoff and grain sizes are flop-based and identical for both tiers,
// so tile boundaries never depend on the precision tier either.

/// Rows per parallel chunk so one chunk carries ~SerialCutoff() flops.
int64_t GrainRows(int64_t flops_per_row) {
  return std::max<int64_t>(
      1, SerialCutoff() / std::max<int64_t>(1, flops_per_row));
}

}  // namespace

void MatmulF32Into(const MatrixF32& a, const MatrixF32& b, MatrixF32* out) {
  SBRL_CHECK_EQ(a.cols(), b.rows())
      << "MatmulF32 shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString();
  SBRL_CHECK(out->rows() == a.rows() && out->cols() == b.cols())
      << "MatmulF32 output shape " << out->ShapeString();
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data();
  const auto kernel = ActiveLinalgKernelsF32().matmul_rows;
  if (n * k * m <= SerialCutoff()) {
    kernel(ad, bd, od, k, m, 0, n);
    return;
  }
  ParallelFor(0, n, GrainRows(k * m), [=](int64_t r0, int64_t r1) {
    kernel(ad, bd, od, k, m, r0, r1);
  });
}

MatrixF32 MatmulF32(const MatrixF32& a, const MatrixF32& b) {
  MatrixF32 out(a.rows(), b.cols());
  MatmulF32Into(a, b, &out);
  return out;
}

void MatmulTransAF32Into(const MatrixF32& a, const MatrixF32& b,
                         MatrixF32* out) {
  SBRL_CHECK_EQ(a.rows(), b.rows())
      << "MatmulTransAF32 shape mismatch " << a.ShapeString() << "^T * "
      << b.ShapeString();
  SBRL_CHECK(out->rows() == a.cols() && out->cols() == b.cols())
      << "MatmulTransAF32 output shape " << out->ShapeString();
  const int64_t k = a.rows(), n = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data();
  const auto kernel = ActiveLinalgKernelsF32().matmul_trans_a_rows;
  if (n * k * m <= SerialCutoff()) {
    kernel(ad, bd, od, k, n, m, 0, n);
    return;
  }
  ParallelFor(0, n, GrainRows(k * m), [=](int64_t r0, int64_t r1) {
    kernel(ad, bd, od, k, n, m, r0, r1);
  });
}

MatrixF32 MatmulTransAF32(const MatrixF32& a, const MatrixF32& b) {
  MatrixF32 out(a.cols(), b.cols());
  MatmulTransAF32Into(a, b, &out);
  return out;
}

void MatmulTransBF32Into(const MatrixF32& a, const MatrixF32& b,
                         MatrixF32* out) {
  SBRL_CHECK_EQ(a.cols(), b.cols())
      << "MatmulTransBF32 shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString() << "^T";
  SBRL_CHECK(out->rows() == a.rows() && out->cols() == b.rows())
      << "MatmulTransBF32 output shape " << out->ShapeString();
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  if (n == 0 || k == 0 || m == 0) return;
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data();
  const auto kernel = ActiveLinalgKernelsF32().matmul_trans_b_rows;
  if (n * k * m <= SerialCutoff()) {
    kernel(ad, bd, od, k, m, 0, n);
    return;
  }
  ParallelFor(0, n, GrainRows(k * m), [=](int64_t r0, int64_t r1) {
    kernel(ad, bd, od, k, m, r0, r1);
  });
}

MatrixF32 MatmulTransBF32(const MatrixF32& a, const MatrixF32& b) {
  MatrixF32 out(a.rows(), b.rows());
  MatmulTransBF32Into(a, b, &out);
  return out;
}

}  // namespace sbrl

#ifndef SBRL_TENSOR_LINALG_H_
#define SBRL_TENSOR_LINALG_H_

#include <functional>
#include <utility>
#include <vector>

#include "tensor/matrix.h"

namespace sbrl {

/// Dense matrix product a(n x k) * b(k x m) -> (n x m). Cache-blocked
/// and multi-threaded (see ParallelFor); this is the hot kernel of the
/// whole library. Every output element accumulates over k in ascending
/// order, so the result is bitwise independent of tiling and worker
/// count and matches the naive i-k-j reference.
Matrix Matmul(const Matrix& a, const Matrix& b);

/// a^T * b where a is (k x n): (n x m) result without materializing a^T.
Matrix MatmulTransA(const Matrix& a, const Matrix& b);

/// a * b^T where b is (m x k): (n x m) result without materializing b^T.
Matrix MatmulTransB(const Matrix& a, const Matrix& b);

/// Accumulating in-place variants for pooled output buffers: the product
/// is ADDED into `*out`, which must already have the result shape.
/// Callers that want `out = a * b` pass a zeroed buffer (Tape/MatrixPool
/// buffers arrive zeroed).
void MatmulInto(const Matrix& a, const Matrix& b, Matrix* out);
/// Accumulating in-place a^T * b (see MatmulInto for the contract).
void MatmulTransAInto(const Matrix& a, const Matrix& b, Matrix* out);
/// Accumulating in-place a * b^T (see MatmulInto for the contract).
void MatmulTransBInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Batched block cross-products for the HSIC-RFF pair loss. `a` and `b`
/// are (n x d*block) stacks of d per-feature column blocks of `block`
/// columns each. For pair index p with `pairs[p] = (ai, bi)`, the
/// (block x block) product a[:, ai-block]^T * b[:, bi-block] is ADDED
/// into rows [p*block, (p+1)*block) of `*out`, which must be
/// (pairs.size()*block x block). All pairs run in ONE parallel
/// dispatch; every output element accumulates its n terms in ascending
/// row order, so each pair's block is bitwise identical to
/// MatmulTransA on the corresponding column slices, independent of
/// thread count.
void BlockPairMatmulTransAInto(
    const Matrix& a, const Matrix& b, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* out);

/// Adjoint of BlockPairMatmulTransAInto: given the upstream gradient
/// `g` (pairs.size()*block x block), accumulates
///   da[:, ai-block] += b[:, bi-block] * g_p^T
///   db[:, bi-block] += a[:, ai-block] * g_p
/// for every pair p = (ai, bi). `da` / `db` may be null to skip that
/// side. Parallel over sample rows — each worker owns disjoint rows of
/// da/db, so pairs that share a feature block never race.
void BlockPairMatmulTransAGradInto(
    const Matrix& g, const Matrix& a, const Matrix& b, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* da,
    Matrix* db);

/// Weighted block cross-products E_w[U^T V] for every pair in one
/// dispatch: ADDs (f[:, ai-block] .* w)^T * f[:, bi-block] into rows
/// [p*block, (p+1)*block) of `*out` for each pair p = (ai, bi), where
/// `w` is an (n x 1) weight column scaling each sample row. Fuses the
/// row scaling into the product, so no weighted copy of `f` is ever
/// materialized. Each scalar term is (f(i, ar) * w(i)) * f(i, bc) with
/// the n terms accumulated in ascending row order. On a
/// ZERO-INITIALIZED `*out` (how every in-tree caller uses it) the
/// result is bitwise identical to MulColBroadcast followed by
/// MatmulTransA on the column slices, for specialized and generic
/// block sizes alike; accumulating into a nonzero `*out` is still
/// correct but the specialized sizes (see linalg.cc) group the added
/// terms differently, so only values-within-rounding is guaranteed.
void BlockPairWeightedCrossInto(
    const Matrix& f, const Matrix& w, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* out);

/// Adjoint of BlockPairWeightedCrossInto. Given upstream gradient `g`
/// (pairs.size()*block x block), accumulates
///   dw(i)          += sum_p sum_{r,c} g_p(r,c) f(i, ar) f(i, bc)
///   df[:, ai-block] += w .* (f[:, bi-block] * g_p^T)
///   df[:, bi-block] += w .* (f[:, ai-block] * g_p)
/// `df` / `dw` may be null to skip that side. Parallel over sample
/// rows (disjoint rows per worker, no races across pairs).
void BlockPairWeightedCrossGradInto(
    const Matrix& g, const Matrix& f, const Matrix& w, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* df,
    Matrix* dw);

/// The seed repo's single-threaded triple-loop matmul, kept as the
/// ground-truth reference for the tiled kernels' randomized tests and
/// the before/after microbenchmark. Not for production use.
Matrix MatmulReference(const Matrix& a, const Matrix& b);

/// Out-of-place transpose (tiled, parallel over output row blocks).
Matrix Transpose(const Matrix& a);

/// Row-wise sum: (n x d) -> (n x 1).
Matrix RowSum(const Matrix& a);
/// Column-wise sum: (n x d) -> (1 x d).
Matrix ColSum(const Matrix& a);
/// Row-wise mean: (n x d) -> (n x 1).
Matrix RowMean(const Matrix& a);
/// Column-wise mean: (n x d) -> (1 x d).
Matrix ColMean(const Matrix& a);

/// Elementwise Hadamard product (shapes must match).
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// Applies `f` to each element, returning a new matrix. Large inputs
/// are mapped in parallel; `f` must be pure (no shared mutable state).
Matrix Map(const Matrix& a, const std::function<double(double)>& f);

/// Broadcast add of a (1 x d) row vector to every row of (n x d).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);
/// Broadcast multiply of every column of (n x d) by an (n x 1) column.
Matrix MulColBroadcast(const Matrix& a, const Matrix& col);

/// Gathers rows by index: out.row(i) = a.row(idx[i]).
Matrix GatherRows(const Matrix& a, const std::vector<int64_t>& idx);

/// Scatter-add of rows: out.row(idx[i]) += a.row(i), with `rows` output
/// rows. The adjoint of GatherRows.
Matrix ScatterAddRows(const Matrix& a, const std::vector<int64_t>& idx,
                      int64_t rows);

/// Horizontal concatenation [a | b] (row counts must match).
Matrix ConcatCols(const Matrix& a, const Matrix& b);

/// Vertical concatenation [a ; b] (column counts must match).
Matrix ConcatRows(const Matrix& a, const Matrix& b);

/// Pairwise squared Euclidean distances between rows of a (n x d) and
/// rows of b (m x d): (n x m). Parallel over output rows.
Matrix PairwiseSquaredDistances(const Matrix& a, const Matrix& b);

/// Dot product of two equal-shaped matrices viewed as flat vectors.
double Dot(const Matrix& a, const Matrix& b);

/// Standard deviation over all elements (population, i.e. divides by N).
double StdDev(const Matrix& a);

}  // namespace sbrl

#endif  // SBRL_TENSOR_LINALG_H_

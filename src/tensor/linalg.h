#ifndef SBRL_TENSOR_LINALG_H_
#define SBRL_TENSOR_LINALG_H_

#include <functional>
#include <vector>

#include "tensor/matrix.h"

namespace sbrl {

/// Dense matrix product a(n x k) * b(k x m) -> (n x m). Cache-blocked
/// and multi-threaded (see ParallelFor); this is the hot kernel of the
/// whole library. Every output element accumulates over k in ascending
/// order, so the result is bitwise independent of tiling and worker
/// count and matches the naive i-k-j reference.
Matrix Matmul(const Matrix& a, const Matrix& b);

/// a^T * b where a is (k x n): (n x m) result without materializing a^T.
Matrix MatmulTransA(const Matrix& a, const Matrix& b);

/// a * b^T where b is (m x k): (n x m) result without materializing b^T.
Matrix MatmulTransB(const Matrix& a, const Matrix& b);

/// Accumulating in-place variants for pooled output buffers: the product
/// is ADDED into `*out`, which must already have the result shape.
/// Callers that want `out = a * b` pass a zeroed buffer (Tape/MatrixPool
/// buffers arrive zeroed).
void MatmulInto(const Matrix& a, const Matrix& b, Matrix* out);
void MatmulTransAInto(const Matrix& a, const Matrix& b, Matrix* out);
void MatmulTransBInto(const Matrix& a, const Matrix& b, Matrix* out);

/// The seed repo's single-threaded triple-loop matmul, kept as the
/// ground-truth reference for the tiled kernels' randomized tests and
/// the before/after microbenchmark. Not for production use.
Matrix MatmulReference(const Matrix& a, const Matrix& b);

/// Out-of-place transpose (tiled, parallel over output row blocks).
Matrix Transpose(const Matrix& a);

/// Row-wise sum: (n x d) -> (n x 1).
Matrix RowSum(const Matrix& a);
/// Column-wise sum: (n x d) -> (1 x d).
Matrix ColSum(const Matrix& a);
/// Row-wise mean: (n x d) -> (n x 1).
Matrix RowMean(const Matrix& a);
/// Column-wise mean: (n x d) -> (1 x d).
Matrix ColMean(const Matrix& a);

/// Elementwise Hadamard product (shapes must match).
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// Applies `f` to each element, returning a new matrix. Large inputs
/// are mapped in parallel; `f` must be pure (no shared mutable state).
Matrix Map(const Matrix& a, const std::function<double(double)>& f);

/// Broadcast add of a (1 x d) row vector to every row of (n x d).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);
/// Broadcast multiply of every column of (n x d) by an (n x 1) column.
Matrix MulColBroadcast(const Matrix& a, const Matrix& col);

/// Gathers rows by index: out.row(i) = a.row(idx[i]).
Matrix GatherRows(const Matrix& a, const std::vector<int64_t>& idx);

/// Scatter-add of rows: out.row(idx[i]) += a.row(i), with `rows` output
/// rows. The adjoint of GatherRows.
Matrix ScatterAddRows(const Matrix& a, const std::vector<int64_t>& idx,
                      int64_t rows);

/// Horizontal concatenation [a | b] (row counts must match).
Matrix ConcatCols(const Matrix& a, const Matrix& b);

/// Vertical concatenation [a ; b] (column counts must match).
Matrix ConcatRows(const Matrix& a, const Matrix& b);

/// Pairwise squared Euclidean distances between rows of a (n x d) and
/// rows of b (m x d): (n x m). Parallel over output rows.
Matrix PairwiseSquaredDistances(const Matrix& a, const Matrix& b);

/// Dot product of two equal-shaped matrices viewed as flat vectors.
double Dot(const Matrix& a, const Matrix& b);

/// Standard deviation over all elements (population, i.e. divides by N).
double StdDev(const Matrix& a);

}  // namespace sbrl

#endif  // SBRL_TENSOR_LINALG_H_

#ifndef SBRL_TENSOR_KERNELS_H_
#define SBRL_TENSOR_KERNELS_H_

#include <cstdint>
#include <utility>

#include "common/cpu.h"

namespace sbrl {

/// Function-pointer table of the per-tile linear-algebra kernels behind
/// the three hot kernel families (dense matmuls, the block-pair HSIC
/// cross kernels, and — resolved separately in common/simd.cc for
/// layering — the RFF cosine sweep). One table exists per Isa level;
/// tensor/linalg.cc fetches ActiveLinalgKernels() at each public entry
/// point and hands tiles to the resolved kernels, so the shape checks,
/// serial cutoffs, and ParallelFor chunking live in exactly one place
/// while the arithmetic inner loops are ISA-specialized.
///
/// Determinism contract (docs/ARCHITECTURE.md "ISA dispatch"):
///  - The baseline table is the pre-dispatch scalar code verbatim:
///    under SBRL_ISA=baseline every result is bit for bit the
///    pre-dispatch value.
///  - matmul_rows / matmul_trans_a_rows / block_cross_fwd preserve the
///    exact per-element multiply-then-add chain in ascending reduction
///    order AT EVERY LEVEL (wider tables vectorize only the independent
///    output dimension and are compiled with -ffp-contract=off), so
///    these three are bitwise identical across every Isa level.
///  - matmul_trans_b_rows and block_cross_grad_dw are dot-product
///    shaped; wider levels use FMA lanes plus a fixed-shape horizontal
///    sum, so they are deterministic and thread-count-invariant WITHIN
///    a level but agree with baseline only to rounding (bounded by
///    tests/cpu_dispatch_test.cc).
struct LinalgKernels {
  /// Rows [r0, r1) of out += a * b, a (n x k), b (k x m): each output
  /// element accumulates its k terms in ascending order.
  using MatmulRowsFn = void (*)(const double* a, const double* b, double* o,
                                int64_t k, int64_t m, int64_t r0, int64_t r1);
  /// Rows [r0, r1) of out += a^T * b, a (k x n), b (k x m): the
  /// reduction index stays outermost-ascending for every element.
  using MatmulTransARowsFn = void (*)(const double* a, const double* b,
                                      double* o, int64_t k, int64_t n,
                                      int64_t m, int64_t r0, int64_t r1);
  /// Rows [r0, r1) of out += a * b^T, a (n x k), b (m x k): per-element
  /// dot products over k.
  using MatmulTransBRowsFn = void (*)(const double* a, const double* b,
                                      double* o, int64_t k, int64_t m,
                                      int64_t r0, int64_t r1);
  /// Specialized-block-size weighted cross forward over pairs [p0, p1)
  /// (see BlockPairWeightedCrossInto); returns false when `block` has
  /// no specialization at this level so the caller falls back to the
  /// generic loop.
  using BlockCrossFwdFn = bool (*)(int64_t block, const double* fd,
                                   const double* wd, double* od, int64_t n,
                                   int64_t fcols,
                                   const std::pair<int64_t, int64_t>* pd,
                                   int64_t p0, int64_t p1);
  /// Specialized-block-size dw-only backward over rows [r0, r1) (see
  /// BlockPairWeightedCrossGradInto); returns false when `block` has no
  /// specialization at this level.
  using BlockCrossGradDwFn = bool (*)(int64_t block, const double* gd,
                                      const double* fd, double* dwd,
                                      int64_t fcols,
                                      const std::pair<int64_t, int64_t>* pd,
                                      int64_t num_pairs, int64_t r0,
                                      int64_t r1);

  /// Matmul tile kernel of this level.
  MatmulRowsFn matmul_rows;
  /// MatmulTransA tile kernel of this level.
  MatmulTransARowsFn matmul_trans_a_rows;
  /// MatmulTransB tile kernel of this level.
  MatmulTransBRowsFn matmul_trans_b_rows;
  /// Specialized block-pair weighted-cross forward of this level.
  BlockCrossFwdFn block_cross_fwd;
  /// Specialized block-pair dw-only backward of this level.
  BlockCrossGradDwFn block_cross_grad_dw;
};

/// The kernel table of one Isa level. Levels not compiled into this
/// binary alias the baseline table (but ActiveIsa can never resolve to
/// them — see MaxSupportedIsa). Exposed so tests can compare levels
/// directly without flipping process state.
const LinalgKernels& LinalgKernelsForIsa(Isa isa);

/// The table of the currently active ISA (one atomic load + array
/// index; called once per public linalg entry point, not per tile).
const LinalgKernels& ActiveLinalgKernels();

}  // namespace sbrl

#endif  // SBRL_TENSOR_KERNELS_H_

#ifndef SBRL_TENSOR_KERNELS_H_
#define SBRL_TENSOR_KERNELS_H_

#include <cstdint>
#include <utility>

#include "common/cpu.h"

namespace sbrl {

/// Function-pointer table of the per-tile linear-algebra kernels behind
/// the three hot kernel families (dense matmuls, the block-pair HSIC
/// cross kernels, and — resolved separately in common/simd.cc for
/// layering — the RFF cosine sweep). One table exists per Isa level;
/// tensor/linalg.cc fetches ActiveLinalgKernels() at each public entry
/// point and hands tiles to the resolved kernels, so the shape checks,
/// serial cutoffs, and ParallelFor chunking live in exactly one place
/// while the arithmetic inner loops are ISA-specialized.
///
/// Determinism contract (docs/ARCHITECTURE.md "ISA dispatch"):
///  - The baseline table is the pre-dispatch scalar code verbatim:
///    under SBRL_ISA=baseline every result is bit for bit the
///    pre-dispatch value.
///  - matmul_rows / matmul_trans_a_rows / block_cross_fwd preserve the
///    exact per-element multiply-then-add chain in ascending reduction
///    order AT EVERY LEVEL (wider tables vectorize only the independent
///    output dimension and are compiled with -ffp-contract=off), so
///    these three are bitwise identical across every Isa level.
///  - matmul_trans_b_rows and block_cross_grad_dw are dot-product
///    shaped; wider levels use FMA lanes plus a fixed-shape horizontal
///    sum, so they are deterministic and thread-count-invariant WITHIN
///    a level but agree with baseline only to rounding (bounded by
///    tests/cpu_dispatch_test.cc).
struct LinalgKernels {
  /// Rows [r0, r1) of out += a * b, a (n x k), b (k x m): each output
  /// element accumulates its k terms in ascending order.
  using MatmulRowsFn = void (*)(const double* a, const double* b, double* o,
                                int64_t k, int64_t m, int64_t r0, int64_t r1);
  /// Rows [r0, r1) of out += a^T * b, a (k x n), b (k x m): the
  /// reduction index stays outermost-ascending for every element.
  using MatmulTransARowsFn = void (*)(const double* a, const double* b,
                                      double* o, int64_t k, int64_t n,
                                      int64_t m, int64_t r0, int64_t r1);
  /// Rows [r0, r1) of out += a * b^T, a (n x k), b (m x k): per-element
  /// dot products over k.
  using MatmulTransBRowsFn = void (*)(const double* a, const double* b,
                                      double* o, int64_t k, int64_t m,
                                      int64_t r0, int64_t r1);
  /// Specialized-block-size weighted cross forward over pairs [p0, p1)
  /// (see BlockPairWeightedCrossInto); returns false when `block` has
  /// no specialization at this level so the caller falls back to the
  /// generic loop.
  using BlockCrossFwdFn = bool (*)(int64_t block, const double* fd,
                                   const double* wd, double* od, int64_t n,
                                   int64_t fcols,
                                   const std::pair<int64_t, int64_t>* pd,
                                   int64_t p0, int64_t p1);
  /// Specialized-block-size dw-only backward over rows [r0, r1) (see
  /// BlockPairWeightedCrossGradInto); returns false when `block` has no
  /// specialization at this level.
  using BlockCrossGradDwFn = bool (*)(int64_t block, const double* gd,
                                      const double* fd, double* dwd,
                                      int64_t fcols,
                                      const std::pair<int64_t, int64_t>* pd,
                                      int64_t num_pairs, int64_t r0,
                                      int64_t r1);
  /// Generic (any-block-size) pair forward over pairs [p0, p1): out
  /// block p += sum_i [w_i] a(i, ca:ca+block)^T b(i, cb:cb+block) with
  /// `wd` nullable (treated as all-ones without the multiply, which is
  /// how BlockPairMatmulTransAInto shares this kernel with the
  /// weighted cross). Always succeeds; used when block_cross_fwd has
  /// no specialization. Wider levels vectorize only the independent
  /// output column dimension, so every level is bitwise == the sliced
  /// MatmulTransA reference.
  using BlockCrossFwdGenericFn = void (*)(const double* ad, int64_t acols,
                                          const double* bd, int64_t bcols,
                                          const double* wd, double* od,
                                          int64_t n, int64_t block,
                                          const std::pair<int64_t, int64_t>* pd,
                                          int64_t p0, int64_t p1);

  /// Matmul tile kernel of this level.
  MatmulRowsFn matmul_rows;
  /// MatmulTransA tile kernel of this level.
  MatmulTransARowsFn matmul_trans_a_rows;
  /// MatmulTransB tile kernel of this level.
  MatmulTransBRowsFn matmul_trans_b_rows;
  /// Specialized block-pair weighted-cross forward of this level.
  BlockCrossFwdFn block_cross_fwd;
  /// Specialized block-pair dw-only backward of this level.
  BlockCrossGradDwFn block_cross_grad_dw;
  /// Generic block-pair forward fallback of this level.
  BlockCrossFwdGenericFn block_cross_fwd_generic;
};

/// The kernel table of one Isa level. Levels not compiled into this
/// binary alias the baseline table (but ActiveIsa can never resolve to
/// them — see MaxSupportedIsa). Exposed so tests can compare levels
/// directly without flipping process state.
const LinalgKernels& LinalgKernelsForIsa(Isa isa);

/// The table of the currently active ISA (one atomic load + array
/// index; called once per public linalg entry point, not per tile).
const LinalgKernels& ActiveLinalgKernels();

/// Function-pointer table of the f32-tier matmul kernels (see
/// common/precision.h). Same dispatch mechanics as LinalgKernels —
/// one table per Isa level, resolved per public entry point in
/// tensor/linalg_f32.cc — and the same per-kernel determinism split
/// restated on floats:
///  - matmul_rows / matmul_trans_a_rows vectorize only the independent
///    output dimension with each element's multiply-then-add chain in
///    ascending reduction order, so the f32 result is bitwise
///    identical across every Isa level (it tracks the f64 kernels only
///    to f32 rounding — the cross-TIER budget lives in
///    tests/precision_test.cc).
///  - matmul_trans_b_rows is dot-shaped: wider levels use f32 FMA
///    lanes plus a fixed-shape horizontal sum, deterministic and
///    chunk-invariant within a level, tolerance-bounded vs baseline.
struct LinalgKernelsF32 {
  /// Rows [r0, r1) of out += a * b, a (n x k), b (k x m), all float.
  using MatmulRowsF32Fn = void (*)(const float* a, const float* b, float* o,
                                   int64_t k, int64_t m, int64_t r0,
                                   int64_t r1);
  /// Rows [r0, r1) of out += a^T * b, a (k x n), b (k x m), all float.
  using MatmulTransARowsF32Fn = void (*)(const float* a, const float* b,
                                         float* o, int64_t k, int64_t n,
                                         int64_t m, int64_t r0, int64_t r1);
  /// Rows [r0, r1) of out += a * b^T, a (n x k), b (m x k), all float.
  using MatmulTransBRowsF32Fn = void (*)(const float* a, const float* b,
                                         float* o, int64_t k, int64_t m,
                                         int64_t r0, int64_t r1);

  /// f32 matmul tile kernel of this level.
  MatmulRowsF32Fn matmul_rows;
  /// f32 MatmulTransA tile kernel of this level.
  MatmulTransARowsF32Fn matmul_trans_a_rows;
  /// f32 MatmulTransB tile kernel of this level.
  MatmulTransBRowsF32Fn matmul_trans_b_rows;
};

/// The f32 kernel table of one Isa level (levels not compiled in alias
/// baseline, exactly like LinalgKernelsForIsa).
const LinalgKernelsF32& LinalgKernelsF32ForIsa(Isa isa);

/// The f32 table of the currently active ISA.
const LinalgKernelsF32& ActiveLinalgKernelsF32();

}  // namespace sbrl

#endif  // SBRL_TENSOR_KERNELS_H_

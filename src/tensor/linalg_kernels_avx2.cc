// AVX2 (x86-64-v3) kernel set of the ISA-dispatch tables. Compiled with
// -march=x86-64-v3 -ffp-contract=off (see CMakeLists.txt): the contract
// flag matters — GCC lowers _mm256_add_pd(_mm256_mul_pd(x, y), z) to a
// source-level (x*y)+z vector expression and would otherwise fuse it
// into an FMA, silently changing bits.
//
// Determinism split (tensor/kernels.h):
//  - MatmulRows / MatmulTransARows / BlockCrossFwd vectorize ONLY the
//    independent output dimension and keep each output element's
//    multiply-then-add chain in the baseline's ascending reduction
//    order, so they are bitwise identical to the baseline kernels
//    (vector lanes are IEEE-correctly-rounded per element, exactly like
//    the scalar ops). Scalar tails repeat the same chain.
//  - MatmulTransBRows / BlockCrossGradDw are dot-product shaped: lanes
//    accumulate with explicit FMA and collapse through a fixed-shape
//    horizontal sum, so they agree with baseline to rounding only
//    (bounded by tests/cpu_dispatch_test.cc) but are deterministic and
//    chunk-invariant within this level: every output element is
//    computed by the identical operation sequence no matter how
//    ParallelFor split the range.

#include "tensor/kernels_impl.h"

#if defined(SBRL_HAVE_ISA_AVX2) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

namespace sbrl {
namespace linalg_kernels {

namespace {

// Same j-panel width as the baseline kernel: a (k x 128) slab of B
// stays hot in L2 across the rows of an i-range.
constexpr int64_t kJBlock = 128;

/// Fixed-shape horizontal sum: (v0 + v2) + (v1 + v3). Every dot-shaped
/// kernel in this file collapses its lanes through this exact tree, so
/// a given element's bits never depend on the call site.
inline double Hsum256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // (v0+v2, v1+v3)
  const __m128d swap = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
}

}  // namespace

// The matmul tile kernel is the shared baseline SOURCE, auto-vectorized
// at this TU's -march level — measured faster here than a hand-written
// register-accumulator AVX kernel (whose serialized accumulator chains
// defeat out-of-order overlap across tiles) and bitwise identical to
// baseline by construction.
#define SBRL_MATMUL_ROWS_KERNEL_NAME Avx2MatmulRows
#include "tensor/matmul_rows_kernel.inc"
#undef SBRL_MATMUL_ROWS_KERNEL_NAME

void Avx2MatmulTransARows(const double* __restrict ad,
                          const double* __restrict bd, double* __restrict od,
                          int64_t k, int64_t n, int64_t m, int64_t r0,
                          int64_t r1) {
  // Baseline loop order (p outermost-ascending), vector lanes over the
  // independent j dimension.
  for (int64_t p = 0; p < k; ++p) {
    const double* acol = ad + p * n;
    const double* brow = bd + p * m;
    for (int64_t i = r0; i < r1; ++i) {
      const __m256d av = _mm256_set1_pd(acol[i]);
      double* orow = od + i * m;
      int64_t j = 0;
      for (; j + 4 <= m; j += 4) {
        const __m256d bv = _mm256_loadu_pd(brow + j);
        const __m256d ov = _mm256_loadu_pd(orow + j);
        _mm256_storeu_pd(orow + j, _mm256_add_pd(ov, _mm256_mul_pd(av, bv)));
      }
      const double avs = acol[i];
      for (; j < m; ++j) orow[j] += avs * brow[j];
    }
  }
}

namespace {

/// One (i, j) dot product over k: FMA lanes ascending p, Hsum256, then
/// the scalar remainder added last — the fixed evaluation order of
/// every TransB output element at this level.
inline double DotAvx2(const double* __restrict a, const double* __restrict b,
                      int64_t k) {
  __m256d acc = _mm256_setzero_pd();
  int64_t p = 0;
  for (; p + 4 <= k; p += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + p), _mm256_loadu_pd(b + p),
                          acc);
  }
  double total = Hsum256(acc);
  for (; p < k; ++p) total += a[p] * b[p];
  return total;
}

}  // namespace

void Avx2MatmulTransBRows(const double* __restrict ad,
                          const double* __restrict bd, double* __restrict od,
                          int64_t k, int64_t m, int64_t r0, int64_t r1) {
  // 2x2 blocks share the A/B row loads; every element runs the same
  // DotAvx2 sequence, so the blocked and remainder paths agree bitwise.
  int64_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const double* a0 = ad + i * k;
    const double* a1 = a0 + k;
    double* o0 = od + i * m;
    double* o1 = o0 + m;
    int64_t j = 0;
    for (; j + 2 <= m; j += 2) {
      const double* b0 = bd + j * k;
      const double* b1 = b0 + k;
      o0[j] += DotAvx2(a0, b0, k);
      o0[j + 1] += DotAvx2(a0, b1, k);
      o1[j] += DotAvx2(a1, b0, k);
      o1[j + 1] += DotAvx2(a1, b1, k);
    }
    for (; j < m; ++j) {
      const double* brow = bd + j * k;
      o0[j] += DotAvx2(a0, brow, k);
      o1[j] += DotAvx2(a1, brow, k);
    }
  }
  for (; i < r1; ++i) {
    const double* arow = ad + i * k;
    double* orow = od + i * m;
    for (int64_t j = 0; j < m; ++j) {
      orow[j] += DotAvx2(arow, bd + j * k, k);
    }
  }
}

namespace {

/// Forward weighted cross for B = 4: per pair, four 4-lane register
/// accumulators swept over the rows in ascending order (bitwise the
/// baseline chain) and flushed once.
void BlockCrossFwd4(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 4;
    const int64_t cb = pd[p].second * 4;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const __m256d bv = _mm256_loadu_pd(frow + cb);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_set1_pd(arow[0] * wi), bv));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_set1_pd(arow[1] * wi), bv));
      acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(_mm256_set1_pd(arow[2] * wi), bv));
      acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(_mm256_set1_pd(arow[3] * wi), bv));
    }
    double* ob = od + p * 16;
    _mm256_storeu_pd(ob, _mm256_add_pd(_mm256_loadu_pd(ob), acc0));
    _mm256_storeu_pd(ob + 4, _mm256_add_pd(_mm256_loadu_pd(ob + 4), acc1));
    _mm256_storeu_pd(ob + 8, _mm256_add_pd(_mm256_loadu_pd(ob + 8), acc2));
    _mm256_storeu_pd(ob + 12, _mm256_add_pd(_mm256_loadu_pd(ob + 12), acc3));
  }
}

/// Forward weighted cross for B = 5: a 4-lane vector plus one scalar
/// column per output row, same ascending-row chains as baseline.
void BlockCrossFwd5(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 5;
    const int64_t cb = pd[p].second * 5;
    __m256d accv[5];
    double accs[5];
    for (int r = 0; r < 5; ++r) {
      accv[r] = _mm256_setzero_pd();
      accs[r] = 0.0;
    }
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const double* brow = frow + cb;
      const __m256d bv = _mm256_loadu_pd(brow);
      const double b4 = brow[4];
      for (int r = 0; r < 5; ++r) {
        const double av = arow[r] * wi;
        accv[r] = _mm256_add_pd(accv[r], _mm256_mul_pd(_mm256_set1_pd(av), bv));
        accs[r] += av * b4;
      }
    }
    double* ob = od + p * 25;
    for (int r = 0; r < 5; ++r) {
      double* orow = ob + r * 5;
      _mm256_storeu_pd(orow, _mm256_add_pd(_mm256_loadu_pd(orow), accv[r]));
      orow[4] += accs[r];
    }
  }
}

/// Forward weighted cross for B = 8: two column-half passes per pair so
/// the eight row accumulators of each half fit the register file. Each
/// output element still receives its row terms in one ascending chain.
void BlockCrossFwd8(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 8;
    const int64_t cb = pd[p].second * 8;
    for (int half = 0; half < 2; ++half) {
      const int64_t coff = cb + half * 4;
      __m256d acc[8];
      for (int r = 0; r < 8; ++r) acc[r] = _mm256_setzero_pd();
      for (int64_t i = 0; i < n; ++i) {
        const double* frow = fd + i * fcols;
        const double wi = wd[i];
        const double* arow = frow + ca;
        const __m256d bv = _mm256_loadu_pd(frow + coff);
        for (int r = 0; r < 8; ++r) {
          acc[r] = _mm256_add_pd(
              acc[r], _mm256_mul_pd(_mm256_set1_pd(arow[r] * wi), bv));
        }
      }
      double* ob = od + p * 64 + half * 4;
      for (int r = 0; r < 8; ++r) {
        double* orow = ob + r * 8;
        _mm256_storeu_pd(orow, _mm256_add_pd(_mm256_loadu_pd(orow), acc[r]));
      }
    }
  }
}

/// dw-only backward, vector core shared by B in {4, 5, 8}: per pair,
/// the gradient block is transposed once (it is constant across the row
/// range), then every row computes S_r = sum_c g(r, c) b(c) as an
/// ascending-c FMA chain over column vectors and collapses
/// sum_r a(r) S_r through Hsum256. dwd[i] accumulates one pair
/// contribution at a time (ascending p), which regroups the baseline's
/// flat sum — tolerance-bounded, chunk-invariant.
template <int B>
void BlockCrossGradDwImpl(const double* __restrict gd,
                          const double* __restrict fd, double* __restrict dwd,
                          int64_t fcols, const std::pair<int64_t, int64_t>* pd,
                          int64_t num_pairs, int64_t r0, int64_t r1) {
  static_assert(B == 4 || B == 5 || B == 8, "unsupported block");
  for (int64_t p = 0; p < num_pairs; ++p) {
    const int64_t ca = pd[p].first * B;
    const int64_t cb = pd[p].second * B;
    const double* gblock = gd + p * B * B;
    // gt[c][r] = g(r, c): column c of the block as a contiguous row.
    double gt[B * B];
    for (int r = 0; r < B; ++r) {
      for (int c = 0; c < B; ++c) gt[c * B + r] = gblock[r * B + c];
    }
    for (int64_t i = r0; i < r1; ++i) {
      const double* frow = fd + i * fcols;
      const double* arow = frow + ca;
      const double* brow = frow + cb;
      __m256d s_lo = _mm256_setzero_pd();          // S_r for r = 0..3
      __m256d s_hi = _mm256_setzero_pd();          // S_r for r = 4..7
      double s4 = 0.0;                             // S_4 when B == 5
      for (int c = 0; c < B; ++c) {
        const __m256d bc = _mm256_set1_pd(brow[c]);
        const double* gcol = gt + c * B;
        s_lo = _mm256_fmadd_pd(bc, _mm256_loadu_pd(gcol), s_lo);
        if (B == 8) {
          s_hi = _mm256_fmadd_pd(bc, _mm256_loadu_pd(gcol + 4), s_hi);
        } else if (B == 5) {
          s4 += brow[c] * gcol[4];
        }
      }
      __m256d acc = _mm256_mul_pd(_mm256_loadu_pd(arow), s_lo);
      if (B == 8) {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(arow + 4), s_hi, acc);
      }
      double contrib = Hsum256(acc);
      if (B == 5) contrib += arow[4] * s4;
      dwd[i] += contrib;
    }
  }
}

}  // namespace

bool Avx2BlockCrossFwd(int64_t block, const double* fd, const double* wd,
                       double* od, int64_t n, int64_t fcols,
                       const std::pair<int64_t, int64_t>* pd, int64_t p0,
                       int64_t p1) {
  switch (block) {
    case 4: BlockCrossFwd4(fd, wd, od, n, fcols, pd, p0, p1); return true;
    case 5: BlockCrossFwd5(fd, wd, od, n, fcols, pd, p0, p1); return true;
    case 8: BlockCrossFwd8(fd, wd, od, n, fcols, pd, p0, p1); return true;
    default: return false;  // kernels.cc falls back to baseline
  }
}

bool Avx2BlockCrossGradDw(int64_t block, const double* gd, const double* fd,
                          double* dwd, int64_t fcols,
                          const std::pair<int64_t, int64_t>* pd,
                          int64_t num_pairs, int64_t r0, int64_t r1) {
  switch (block) {
    case 4:
      BlockCrossGradDwImpl<4>(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    case 5:
      BlockCrossGradDwImpl<5>(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    case 8:
      BlockCrossGradDwImpl<8>(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    default: return false;
  }
}

}  // namespace linalg_kernels
}  // namespace sbrl

#endif  // SBRL_HAVE_ISA_AVX2 && __AVX2__ && __FMA__

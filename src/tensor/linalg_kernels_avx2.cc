// AVX2 (x86-64-v3) kernel set of the ISA-dispatch tables. Compiled with
// -march=x86-64-v3 -ffp-contract=off (see CMakeLists.txt): the contract
// flag matters — GCC lowers _mm256_add_pd(_mm256_mul_pd(x, y), z) to a
// source-level (x*y)+z vector expression and would otherwise fuse it
// into an FMA, silently changing bits.
//
// Determinism split (tensor/kernels.h):
//  - MatmulRows / MatmulTransARows / BlockCrossFwd vectorize ONLY the
//    independent output dimension and keep each output element's
//    multiply-then-add chain in the baseline's ascending reduction
//    order, so they are bitwise identical to the baseline kernels
//    (vector lanes are IEEE-correctly-rounded per element, exactly like
//    the scalar ops). Scalar tails repeat the same chain.
//  - MatmulTransBRows / BlockCrossGradDw are dot-product shaped: lanes
//    accumulate with explicit FMA and collapse through a fixed-shape
//    horizontal sum, so they agree with baseline to rounding only
//    (bounded by tests/cpu_dispatch_test.cc) but are deterministic and
//    chunk-invariant within this level: every output element is
//    computed by the identical operation sequence no matter how
//    ParallelFor split the range.

#include "tensor/kernels_impl.h"

#if defined(SBRL_HAVE_ISA_AVX2) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

namespace sbrl {
namespace linalg_kernels {

namespace {

// Same j-panel width as the baseline kernel: a (k x 128) slab of B
// stays hot in L2 across the rows of an i-range.
constexpr int64_t kJBlock = 128;

/// Fixed-shape horizontal sum: (v0 + v2) + (v1 + v3). Every dot-shaped
/// kernel in this file collapses its lanes through this exact tree, so
/// a given element's bits never depend on the call site.
inline double Hsum256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // (v0+v2, v1+v3)
  const __m128d swap = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
}

/// Fixed-shape f32 horizontal sum of 8 lanes: halves fold
/// ((v0+v4)+(v2+v6)) + ((v1+v5)+(v3+v7)) — the one tree every f32
/// dot-shaped kernel at this level collapses through.
inline float Hsum256Ps(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 quad = _mm_add_ps(lo, hi);
  const __m128 pair = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
  const __m128 one = _mm_add_ss(pair, _mm_shuffle_ps(pair, pair, 0x1));
  return _mm_cvtss_f32(one);
}

}  // namespace

// The matmul tile kernel is the shared baseline SOURCE, auto-vectorized
// at this TU's -march level — measured faster here than a hand-written
// register-accumulator AVX kernel (whose serialized accumulator chains
// defeat out-of-order overlap across tiles) and bitwise identical to
// baseline by construction.
#define SBRL_MATMUL_ROWS_KERNEL_NAME Avx2MatmulRows
#include "tensor/matmul_rows_kernel.inc"
#undef SBRL_MATMUL_ROWS_KERNEL_NAME

// f32 matmul tile: the same shared source on floats, auto-vectorized
// to 8-lane ymm at this TU's -march level — bitwise identical to the
// f32 baseline by the same argument as the f64 pair.
#define SBRL_MATMUL_ROWS_KERNEL_NAME Avx2MatmulRowsF32
#define SBRL_MATMUL_ROWS_KERNEL_TYPE float
#include "tensor/matmul_rows_kernel.inc"
#undef SBRL_MATMUL_ROWS_KERNEL_TYPE
#undef SBRL_MATMUL_ROWS_KERNEL_NAME

void Avx2MatmulTransARows(const double* __restrict ad,
                          const double* __restrict bd, double* __restrict od,
                          int64_t k, int64_t n, int64_t m, int64_t r0,
                          int64_t r1) {
  // Baseline loop order (p outermost-ascending), vector lanes over the
  // independent j dimension.
  for (int64_t p = 0; p < k; ++p) {
    const double* acol = ad + p * n;
    const double* brow = bd + p * m;
    for (int64_t i = r0; i < r1; ++i) {
      const __m256d av = _mm256_set1_pd(acol[i]);
      double* orow = od + i * m;
      int64_t j = 0;
      for (; j + 4 <= m; j += 4) {
        const __m256d bv = _mm256_loadu_pd(brow + j);
        const __m256d ov = _mm256_loadu_pd(orow + j);
        _mm256_storeu_pd(orow + j, _mm256_add_pd(ov, _mm256_mul_pd(av, bv)));
      }
      const double avs = acol[i];
      for (; j < m; ++j) orow[j] += avs * brow[j];
    }
  }
}

namespace {

/// One (i, j) dot product over k: FMA lanes ascending p, Hsum256, then
/// the scalar remainder added last — the fixed evaluation order of
/// every TransB output element at this level.
inline double DotAvx2(const double* __restrict a, const double* __restrict b,
                      int64_t k) {
  __m256d acc = _mm256_setzero_pd();
  int64_t p = 0;
  for (; p + 4 <= k; p += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + p), _mm256_loadu_pd(b + p),
                          acc);
  }
  double total = Hsum256(acc);
  for (; p < k; ++p) total += a[p] * b[p];
  return total;
}

}  // namespace

void Avx2MatmulTransBRows(const double* __restrict ad,
                          const double* __restrict bd, double* __restrict od,
                          int64_t k, int64_t m, int64_t r0, int64_t r1) {
  // Blocked panel: 2 A rows x 4 B rows share one ascending-k pass, so
  // each 4-lane A load feeds four FMA chains and each B load two —
  // 6 loads per 8 FMAs instead of DotAvx2's 2 per 1. Every output
  // element still runs EXACTLY DotAvx2's operation sequence (its own
  // FMA-lane chain over ascending p, Hsum256, scalar remainder added
  // last), so the panel kernel is bitwise identical to the 2x2-of-dots
  // kernel it replaces and stays inside the TransB tolerance contract.
  int64_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const double* a0 = ad + i * k;
    const double* a1 = a0 + k;
    double* o0 = od + i * m;
    double* o1 = o0 + m;
    int64_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const double* b0 = bd + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
      __m256d c02 = _mm256_setzero_pd(), c03 = _mm256_setzero_pd();
      __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
      __m256d c12 = _mm256_setzero_pd(), c13 = _mm256_setzero_pd();
      int64_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const __m256d va0 = _mm256_loadu_pd(a0 + p);
        const __m256d va1 = _mm256_loadu_pd(a1 + p);
        const __m256d vb0 = _mm256_loadu_pd(b0 + p);
        c00 = _mm256_fmadd_pd(va0, vb0, c00);
        c10 = _mm256_fmadd_pd(va1, vb0, c10);
        const __m256d vb1 = _mm256_loadu_pd(b1 + p);
        c01 = _mm256_fmadd_pd(va0, vb1, c01);
        c11 = _mm256_fmadd_pd(va1, vb1, c11);
        const __m256d vb2 = _mm256_loadu_pd(b2 + p);
        c02 = _mm256_fmadd_pd(va0, vb2, c02);
        c12 = _mm256_fmadd_pd(va1, vb2, c12);
        const __m256d vb3 = _mm256_loadu_pd(b3 + p);
        c03 = _mm256_fmadd_pd(va0, vb3, c03);
        c13 = _mm256_fmadd_pd(va1, vb3, c13);
      }
      double t00 = Hsum256(c00), t01 = Hsum256(c01);
      double t02 = Hsum256(c02), t03 = Hsum256(c03);
      double t10 = Hsum256(c10), t11 = Hsum256(c11);
      double t12 = Hsum256(c12), t13 = Hsum256(c13);
      for (; p < k; ++p) {
        const double a0p = a0[p], a1p = a1[p];
        t00 += a0p * b0[p]; t01 += a0p * b1[p];
        t02 += a0p * b2[p]; t03 += a0p * b3[p];
        t10 += a1p * b0[p]; t11 += a1p * b1[p];
        t12 += a1p * b2[p]; t13 += a1p * b3[p];
      }
      o0[j] += t00; o0[j + 1] += t01; o0[j + 2] += t02; o0[j + 3] += t03;
      o1[j] += t10; o1[j + 1] += t11; o1[j + 2] += t12; o1[j + 3] += t13;
    }
    for (; j < m; ++j) {
      const double* brow = bd + j * k;
      o0[j] += DotAvx2(a0, brow, k);
      o1[j] += DotAvx2(a1, brow, k);
    }
  }
  for (; i < r1; ++i) {
    const double* arow = ad + i * k;
    double* orow = od + i * m;
    for (int64_t j = 0; j < m; ++j) {
      orow[j] += DotAvx2(arow, bd + j * k, k);
    }
  }
}

namespace {

/// Forward weighted cross for B = 4: per pair, four 4-lane register
/// accumulators swept over the rows in ascending order (bitwise the
/// baseline chain) and flushed once.
void BlockCrossFwd4(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 4;
    const int64_t cb = pd[p].second * 4;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const __m256d bv = _mm256_loadu_pd(frow + cb);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_set1_pd(arow[0] * wi), bv));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_set1_pd(arow[1] * wi), bv));
      acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(_mm256_set1_pd(arow[2] * wi), bv));
      acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(_mm256_set1_pd(arow[3] * wi), bv));
    }
    double* ob = od + p * 16;
    _mm256_storeu_pd(ob, _mm256_add_pd(_mm256_loadu_pd(ob), acc0));
    _mm256_storeu_pd(ob + 4, _mm256_add_pd(_mm256_loadu_pd(ob + 4), acc1));
    _mm256_storeu_pd(ob + 8, _mm256_add_pd(_mm256_loadu_pd(ob + 8), acc2));
    _mm256_storeu_pd(ob + 12, _mm256_add_pd(_mm256_loadu_pd(ob + 12), acc3));
  }
}

/// Forward weighted cross for B = 5: a 4-lane vector plus one scalar
/// column per output row, same ascending-row chains as baseline.
void BlockCrossFwd5(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 5;
    const int64_t cb = pd[p].second * 5;
    __m256d accv[5];
    double accs[5];
    for (int r = 0; r < 5; ++r) {
      accv[r] = _mm256_setzero_pd();
      accs[r] = 0.0;
    }
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const double* brow = frow + cb;
      const __m256d bv = _mm256_loadu_pd(brow);
      const double b4 = brow[4];
      for (int r = 0; r < 5; ++r) {
        const double av = arow[r] * wi;
        accv[r] = _mm256_add_pd(accv[r], _mm256_mul_pd(_mm256_set1_pd(av), bv));
        accs[r] += av * b4;
      }
    }
    double* ob = od + p * 25;
    for (int r = 0; r < 5; ++r) {
      double* orow = ob + r * 5;
      _mm256_storeu_pd(orow, _mm256_add_pd(_mm256_loadu_pd(orow), accv[r]));
      orow[4] += accs[r];
    }
  }
}

/// Forward weighted cross for B = 8: two column-half passes per pair so
/// the eight row accumulators of each half fit the register file. Each
/// output element still receives its row terms in one ascending chain.
void BlockCrossFwd8(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 8;
    const int64_t cb = pd[p].second * 8;
    for (int half = 0; half < 2; ++half) {
      const int64_t coff = cb + half * 4;
      __m256d acc[8];
      for (int r = 0; r < 8; ++r) acc[r] = _mm256_setzero_pd();
      for (int64_t i = 0; i < n; ++i) {
        const double* frow = fd + i * fcols;
        const double wi = wd[i];
        const double* arow = frow + ca;
        const __m256d bv = _mm256_loadu_pd(frow + coff);
        for (int r = 0; r < 8; ++r) {
          acc[r] = _mm256_add_pd(
              acc[r], _mm256_mul_pd(_mm256_set1_pd(arow[r] * wi), bv));
        }
      }
      double* ob = od + p * 64 + half * 4;
      for (int r = 0; r < 8; ++r) {
        double* orow = ob + r * 8;
        _mm256_storeu_pd(orow, _mm256_add_pd(_mm256_loadu_pd(orow), acc[r]));
      }
    }
  }
}

/// dw-only backward, vector core shared by B in {4, 5, 8}: per pair,
/// the gradient block is transposed once (it is constant across the row
/// range), then every row computes S_r = sum_c g(r, c) b(c) as an
/// ascending-c FMA chain over column vectors and collapses
/// sum_r a(r) S_r through Hsum256. dwd[i] accumulates one pair
/// contribution at a time (ascending p), which regroups the baseline's
/// flat sum — tolerance-bounded, chunk-invariant.
template <int B>
void BlockCrossGradDwImpl(const double* __restrict gd,
                          const double* __restrict fd, double* __restrict dwd,
                          int64_t fcols, const std::pair<int64_t, int64_t>* pd,
                          int64_t num_pairs, int64_t r0, int64_t r1) {
  static_assert(B == 4 || B == 5 || B == 8, "unsupported block");
  for (int64_t p = 0; p < num_pairs; ++p) {
    const int64_t ca = pd[p].first * B;
    const int64_t cb = pd[p].second * B;
    const double* gblock = gd + p * B * B;
    // gt[c][r] = g(r, c): column c of the block as a contiguous row.
    double gt[B * B];
    for (int r = 0; r < B; ++r) {
      for (int c = 0; c < B; ++c) gt[c * B + r] = gblock[r * B + c];
    }
    for (int64_t i = r0; i < r1; ++i) {
      const double* frow = fd + i * fcols;
      const double* arow = frow + ca;
      const double* brow = frow + cb;
      __m256d s_lo = _mm256_setzero_pd();          // S_r for r = 0..3
      __m256d s_hi = _mm256_setzero_pd();          // S_r for r = 4..7
      double s4 = 0.0;                             // S_4 when B == 5
      for (int c = 0; c < B; ++c) {
        const __m256d bc = _mm256_set1_pd(brow[c]);
        const double* gcol = gt + c * B;
        s_lo = _mm256_fmadd_pd(bc, _mm256_loadu_pd(gcol), s_lo);
        if (B == 8) {
          s_hi = _mm256_fmadd_pd(bc, _mm256_loadu_pd(gcol + 4), s_hi);
        } else if (B == 5) {
          s4 += brow[c] * gcol[4];
        }
      }
      __m256d acc = _mm256_mul_pd(_mm256_loadu_pd(arow), s_lo);
      if (B == 8) {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(arow + 4), s_hi, acc);
      }
      double contrib = Hsum256(acc);
      if (B == 5) contrib += arow[4] * s4;
      dwd[i] += contrib;
    }
  }
}

}  // namespace

void Avx2BlockCrossFwdGeneric(const double* ad, int64_t acols,
                              const double* bd, int64_t bcols,
                              const double* wd, double* od, int64_t n,
                              int64_t block,
                              const std::pair<int64_t, int64_t>* pd,
                              int64_t p0, int64_t p1) {
  // Generic any-block-size pair forward: baseline loop order with
  // 4-lane vectors over the independent output columns only (separate
  // multiply and add, scalar tail repeating the same chain), so every
  // output element keeps the baseline's ascending-(i, r) accumulation
  // chain — bitwise == sliced MatmulTransA.
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * block;
    const int64_t cb = pd[p].second * block;
    double* oblock = od + p * block * block;
    for (int64_t i = 0; i < n; ++i) {
      const double* arow = ad + i * acols + ca;
      const double* brow = bd + i * bcols + cb;
      const double wi = wd != nullptr ? wd[i] : 0.0;
      for (int64_t r = 0; r < block; ++r) {
        const double av = wd != nullptr ? arow[r] * wi : arow[r];
        const __m256d avv = _mm256_set1_pd(av);
        double* orow = oblock + r * block;
        int64_t c = 0;
        for (; c + 4 <= block; c += 4) {
          const __m256d bv = _mm256_loadu_pd(brow + c);
          const __m256d ov = _mm256_loadu_pd(orow + c);
          _mm256_storeu_pd(orow + c,
                           _mm256_add_pd(ov, _mm256_mul_pd(avv, bv)));
        }
        for (; c < block; ++c) orow[c] += av * brow[c];
      }
    }
  }
}

bool Avx2BlockCrossFwd(int64_t block, const double* fd, const double* wd,
                       double* od, int64_t n, int64_t fcols,
                       const std::pair<int64_t, int64_t>* pd, int64_t p0,
                       int64_t p1) {
  switch (block) {
    case 4: BlockCrossFwd4(fd, wd, od, n, fcols, pd, p0, p1); return true;
    case 5: BlockCrossFwd5(fd, wd, od, n, fcols, pd, p0, p1); return true;
    case 8: BlockCrossFwd8(fd, wd, od, n, fcols, pd, p0, p1); return true;
    default: return false;  // kernels.cc falls back to baseline
  }
}

bool Avx2BlockCrossGradDw(int64_t block, const double* gd, const double* fd,
                          double* dwd, int64_t fcols,
                          const std::pair<int64_t, int64_t>* pd,
                          int64_t num_pairs, int64_t r0, int64_t r1) {
  switch (block) {
    case 4:
      BlockCrossGradDwImpl<4>(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    case 5:
      BlockCrossGradDwImpl<5>(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    case 8:
      BlockCrossGradDwImpl<8>(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    default: return false;
  }
}

// ---------------------------------------------------------------------------
// f32 tier (8-lane ymm). Same determinism split as the f64 kernels
// above: trans-A widens the independent j dimension only (bitwise the
// f32 baseline); trans-B uses f32 FMA lanes + the fixed Hsum256Ps
// tree (tolerance vs the f32 baseline, chunk-invariant within level).
// ---------------------------------------------------------------------------

void Avx2MatmulTransARowsF32(const float* __restrict ad,
                             const float* __restrict bd,
                             float* __restrict od, int64_t k, int64_t n,
                             int64_t m, int64_t r0, int64_t r1) {
  for (int64_t p = 0; p < k; ++p) {
    const float* acol = ad + p * n;
    const float* brow = bd + p * m;
    for (int64_t i = r0; i < r1; ++i) {
      const __m256 av = _mm256_set1_ps(acol[i]);
      float* orow = od + i * m;
      int64_t j = 0;
      for (; j + 8 <= m; j += 8) {
        const __m256 bv = _mm256_loadu_ps(brow + j);
        const __m256 ov = _mm256_loadu_ps(orow + j);
        _mm256_storeu_ps(orow + j, _mm256_add_ps(ov, _mm256_mul_ps(av, bv)));
      }
      const float avs = acol[i];
      for (; j < m; ++j) orow[j] += avs * brow[j];
    }
  }
}

namespace {

/// One f32 (i, j) dot product over k: 8-lane FMA chain ascending p,
/// Hsum256Ps, then the scalar remainder added last.
inline float DotAvx2F32(const float* __restrict a, const float* __restrict b,
                        int64_t k) {
  __m256 acc = _mm256_setzero_ps();
  int64_t p = 0;
  for (; p + 8 <= k; p += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p),
                          acc);
  }
  float total = Hsum256Ps(acc);
  for (; p < k; ++p) total += a[p] * b[p];
  return total;
}

}  // namespace

void Avx2MatmulTransBRowsF32(const float* __restrict ad,
                             const float* __restrict bd,
                             float* __restrict od, int64_t k, int64_t m,
                             int64_t r0, int64_t r1) {
  // Same blocked-panel shape as the f64 kernel (2 A rows x 4 B rows
  // per ascending-k pass); every element runs DotAvx2F32's sequence.
  int64_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const float* a0 = ad + i * k;
    const float* a1 = a0 + k;
    float* o0 = od + i * m;
    float* o1 = o0 + m;
    int64_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const float* b0 = bd + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
      __m256 c02 = _mm256_setzero_ps(), c03 = _mm256_setzero_ps();
      __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
      __m256 c12 = _mm256_setzero_ps(), c13 = _mm256_setzero_ps();
      int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m256 va0 = _mm256_loadu_ps(a0 + p);
        const __m256 va1 = _mm256_loadu_ps(a1 + p);
        const __m256 vb0 = _mm256_loadu_ps(b0 + p);
        c00 = _mm256_fmadd_ps(va0, vb0, c00);
        c10 = _mm256_fmadd_ps(va1, vb0, c10);
        const __m256 vb1 = _mm256_loadu_ps(b1 + p);
        c01 = _mm256_fmadd_ps(va0, vb1, c01);
        c11 = _mm256_fmadd_ps(va1, vb1, c11);
        const __m256 vb2 = _mm256_loadu_ps(b2 + p);
        c02 = _mm256_fmadd_ps(va0, vb2, c02);
        c12 = _mm256_fmadd_ps(va1, vb2, c12);
        const __m256 vb3 = _mm256_loadu_ps(b3 + p);
        c03 = _mm256_fmadd_ps(va0, vb3, c03);
        c13 = _mm256_fmadd_ps(va1, vb3, c13);
      }
      float t00 = Hsum256Ps(c00), t01 = Hsum256Ps(c01);
      float t02 = Hsum256Ps(c02), t03 = Hsum256Ps(c03);
      float t10 = Hsum256Ps(c10), t11 = Hsum256Ps(c11);
      float t12 = Hsum256Ps(c12), t13 = Hsum256Ps(c13);
      for (; p < k; ++p) {
        const float a0p = a0[p], a1p = a1[p];
        t00 += a0p * b0[p]; t01 += a0p * b1[p];
        t02 += a0p * b2[p]; t03 += a0p * b3[p];
        t10 += a1p * b0[p]; t11 += a1p * b1[p];
        t12 += a1p * b2[p]; t13 += a1p * b3[p];
      }
      o0[j] += t00; o0[j + 1] += t01; o0[j + 2] += t02; o0[j + 3] += t03;
      o1[j] += t10; o1[j + 1] += t11; o1[j + 2] += t12; o1[j + 3] += t13;
    }
    for (; j < m; ++j) {
      const float* brow = bd + j * k;
      o0[j] += DotAvx2F32(a0, brow, k);
      o1[j] += DotAvx2F32(a1, brow, k);
    }
  }
  for (; i < r1; ++i) {
    const float* arow = ad + i * k;
    float* orow = od + i * m;
    for (int64_t j = 0; j < m; ++j) {
      orow[j] += DotAvx2F32(arow, bd + j * k, k);
    }
  }
}

}  // namespace linalg_kernels
}  // namespace sbrl

#endif  // SBRL_HAVE_ISA_AVX2 && __AVX2__ && __FMA__

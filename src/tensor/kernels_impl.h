#ifndef SBRL_TENSOR_KERNELS_IMPL_H_
#define SBRL_TENSOR_KERNELS_IMPL_H_

// Private declarations of the per-ISA kernel entry points that fill the
// LinalgKernels tables (tensor/kernels.h). Each set is defined in its
// own translation unit compiled with that ISA's -march flags
// (linalg_kernels_baseline.cc / _avx2.cc / _avx512.cc); only
// tensor/kernels.cc includes this header. Signatures mirror the
// function-pointer types on LinalgKernels exactly.

#include <cstdint>
#include <utility>

namespace sbrl {
namespace linalg_kernels {

/// Baseline (portable x86-64) kernels: the pre-dispatch code verbatim,
/// compiled with the project's default flags — the bitwise reference of
/// the determinism contract.
void BaselineMatmulRows(const double* a, const double* b, double* o,
                        int64_t k, int64_t m, int64_t r0, int64_t r1);
/// See LinalgKernels::MatmulTransARowsFn.
void BaselineMatmulTransARows(const double* a, const double* b, double* o,
                              int64_t k, int64_t n, int64_t m, int64_t r0,
                              int64_t r1);
/// See LinalgKernels::MatmulTransBRowsFn.
void BaselineMatmulTransBRows(const double* a, const double* b, double* o,
                              int64_t k, int64_t m, int64_t r0, int64_t r1);
/// See LinalgKernels::BlockCrossFwdFn. Specializes block in {3, 4, 5, 8}.
bool BaselineBlockCrossFwd(int64_t block, const double* fd, const double* wd,
                           double* od, int64_t n, int64_t fcols,
                           const std::pair<int64_t, int64_t>* pd, int64_t p0,
                           int64_t p1);
/// See LinalgKernels::BlockCrossGradDwFn. Specializes block in {3, 4, 5, 8}.
bool BaselineBlockCrossGradDw(int64_t block, const double* gd,
                              const double* fd, double* dwd, int64_t fcols,
                              const std::pair<int64_t, int64_t>* pd,
                              int64_t num_pairs, int64_t r0, int64_t r1);
/// See LinalgKernels::BlockCrossFwdGenericFn: the pre-dispatch generic
/// pair loop verbatim (scalar, any block size, nullable weights).
void BaselineBlockCrossFwdGeneric(const double* ad, int64_t acols,
                                  const double* bd, int64_t bcols,
                                  const double* wd, double* od, int64_t n,
                                  int64_t block,
                                  const std::pair<int64_t, int64_t>* pd,
                                  int64_t p0, int64_t p1);
/// f32-tier baseline kernels: the same loop shapes as the f64 baseline
/// set restated on floats.
void BaselineMatmulRowsF32(const float* a, const float* b, float* o,
                           int64_t k, int64_t m, int64_t r0, int64_t r1);
/// See LinalgKernelsF32::MatmulTransARowsF32Fn.
void BaselineMatmulTransARowsF32(const float* a, const float* b, float* o,
                                 int64_t k, int64_t n, int64_t m, int64_t r0,
                                 int64_t r1);
/// See LinalgKernelsF32::MatmulTransBRowsF32Fn.
void BaselineMatmulTransBRowsF32(const float* a, const float* b, float* o,
                                 int64_t k, int64_t m, int64_t r0,
                                 int64_t r1);

#if defined(SBRL_HAVE_ISA_AVX2)
/// AVX2 (x86-64-v3, -ffp-contract=off) kernels. The matmul / trans-A /
/// block-cross-forward kernels are bitwise identical to baseline (wide
/// lanes over the independent output dimension only); trans-B and the
/// dw backward use FMA lanes + horizontal sums.
void Avx2MatmulRows(const double* a, const double* b, double* o, int64_t k,
                    int64_t m, int64_t r0, int64_t r1);
/// See LinalgKernels::MatmulTransARowsFn.
void Avx2MatmulTransARows(const double* a, const double* b, double* o,
                          int64_t k, int64_t n, int64_t m, int64_t r0,
                          int64_t r1);
/// See LinalgKernels::MatmulTransBRowsFn.
void Avx2MatmulTransBRows(const double* a, const double* b, double* o,
                          int64_t k, int64_t m, int64_t r0, int64_t r1);
/// See LinalgKernels::BlockCrossFwdFn. Vectorizes block in {4, 5, 8};
/// other sizes return false (kernels.cc falls back to baseline).
bool Avx2BlockCrossFwd(int64_t block, const double* fd, const double* wd,
                       double* od, int64_t n, int64_t fcols,
                       const std::pair<int64_t, int64_t>* pd, int64_t p0,
                       int64_t p1);
/// See LinalgKernels::BlockCrossGradDwFn. Vectorizes block in {4, 5, 8}.
bool Avx2BlockCrossGradDw(int64_t block, const double* gd, const double* fd,
                          double* dwd, int64_t fcols,
                          const std::pair<int64_t, int64_t>* pd,
                          int64_t num_pairs, int64_t r0, int64_t r1);
/// See LinalgKernels::BlockCrossFwdGenericFn: 4-lane vectors over the
/// independent output columns, bitwise identical to baseline.
void Avx2BlockCrossFwdGeneric(const double* ad, int64_t acols,
                              const double* bd, int64_t bcols,
                              const double* wd, double* od, int64_t n,
                              int64_t block,
                              const std::pair<int64_t, int64_t>* pd,
                              int64_t p0, int64_t p1);
/// f32-tier AVX2 kernels (8-lane ymm): matmul / trans-A bitwise equal
/// to the f32 baseline, trans-B FMA lanes + fixed horizontal sum.
void Avx2MatmulRowsF32(const float* a, const float* b, float* o, int64_t k,
                       int64_t m, int64_t r0, int64_t r1);
/// See LinalgKernelsF32::MatmulTransARowsF32Fn.
void Avx2MatmulTransARowsF32(const float* a, const float* b, float* o,
                             int64_t k, int64_t n, int64_t m, int64_t r0,
                             int64_t r1);
/// See LinalgKernelsF32::MatmulTransBRowsF32Fn.
void Avx2MatmulTransBRowsF32(const float* a, const float* b, float* o,
                             int64_t k, int64_t m, int64_t r0, int64_t r1);
#endif  // SBRL_HAVE_ISA_AVX2

#if defined(SBRL_HAVE_ISA_AVX512)
/// AVX-512 (x86-64-v4, -ffp-contract=off) kernels; same per-kernel
/// bitwise/bounded split as the AVX2 set, with 8-lane zmm tiles.
void Avx512MatmulRows(const double* a, const double* b, double* o, int64_t k,
                      int64_t m, int64_t r0, int64_t r1);
/// See LinalgKernels::MatmulTransARowsFn.
void Avx512MatmulTransARows(const double* a, const double* b, double* o,
                            int64_t k, int64_t n, int64_t m, int64_t r0,
                            int64_t r1);
/// See LinalgKernels::MatmulTransBRowsFn.
void Avx512MatmulTransBRows(const double* a, const double* b, double* o,
                            int64_t k, int64_t m, int64_t r0, int64_t r1);
/// See LinalgKernels::BlockCrossFwdFn. Vectorizes block in {4, 5, 8}.
bool Avx512BlockCrossFwd(int64_t block, const double* fd, const double* wd,
                         double* od, int64_t n, int64_t fcols,
                         const std::pair<int64_t, int64_t>* pd, int64_t p0,
                         int64_t p1);
/// See LinalgKernels::BlockCrossGradDwFn. Vectorizes block in {4, 5, 8}.
bool Avx512BlockCrossGradDw(int64_t block, const double* gd, const double* fd,
                            double* dwd, int64_t fcols,
                            const std::pair<int64_t, int64_t>* pd,
                            int64_t num_pairs, int64_t r0, int64_t r1);
/// See LinalgKernels::BlockCrossFwdGenericFn: 8-lane zmm over the
/// independent output columns, bitwise identical to baseline.
void Avx512BlockCrossFwdGeneric(const double* ad, int64_t acols,
                                const double* bd, int64_t bcols,
                                const double* wd, double* od, int64_t n,
                                int64_t block,
                                const std::pair<int64_t, int64_t>* pd,
                                int64_t p0, int64_t p1);
/// f32-tier AVX-512 kernels (16-lane zmm); same split as the AVX2 f32
/// set.
void Avx512MatmulRowsF32(const float* a, const float* b, float* o, int64_t k,
                         int64_t m, int64_t r0, int64_t r1);
/// See LinalgKernelsF32::MatmulTransARowsF32Fn.
void Avx512MatmulTransARowsF32(const float* a, const float* b, float* o,
                               int64_t k, int64_t n, int64_t m, int64_t r0,
                               int64_t r1);
/// See LinalgKernelsF32::MatmulTransBRowsF32Fn.
void Avx512MatmulTransBRowsF32(const float* a, const float* b, float* o,
                               int64_t k, int64_t m, int64_t r0, int64_t r1);
#endif  // SBRL_HAVE_ISA_AVX512

}  // namespace linalg_kernels
}  // namespace sbrl

#endif  // SBRL_TENSOR_KERNELS_IMPL_H_

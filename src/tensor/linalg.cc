#include "tensor/linalg.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/thread_pool.h"

namespace sbrl {

namespace {

// The j-panel keeps a (k x kJBlock) slab of B hot in L2 across every
// row of an i-range.
constexpr int64_t kJBlock = 128;
constexpr int64_t kTransposeTile = 32;

// Compile-time-specialized inner kernels of the block-diagonal cross
// ops: the runtime `block` (= SbrlConfig::rff_features, default 5) is
// small, so the generic loops spend as much time on loop control as on
// arithmetic. Dispatching the common sizes to a template instantiation
// lets the compiler fully unroll the block x block body and keep the
// per-pair accumulators in registers. Each output element receives its
// terms in exactly the same ascending order as the generic loop, so
// specialized and generic paths are bitwise identical.

/// Forward pairs [p0, p1): out block p += sum_i w_i u_a(i,:)^T u_b(i,:)
/// with the (B x B) accumulator held in registers across the row sweep
/// and flushed once. Flushing "+=" onto the zero-initialized output
/// reproduces the generic element-by-element accumulation bitwise
/// (both start the sum at +0.0 and add the same terms in order).
template <int64_t B>
void BlockCrossFwdPairsKernel(const double* __restrict fd,
                              const double* __restrict wd,
                              double* __restrict od, int64_t n,
                              int64_t fcols,
                              const std::pair<int64_t, int64_t>* pd,
                              int64_t p0, int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * B;
    const int64_t cb = pd[p].second * B;
    double acc[B * B] = {};
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const double* brow = frow + cb;
      for (int64_t r = 0; r < B; ++r) {
        const double av = arow[r] * wi;
        for (int64_t c = 0; c < B; ++c) acc[r * B + c] += av * brow[c];
      }
    }
    double* oblock = od + p * B * B;
    for (int64_t e = 0; e < B * B; ++e) oblock[e] += acc[e];
  }
}

/// Weight-gradient-only backward over rows [r0, r1): the hot case of
/// the decorrelation loss, where the stacked features are tape
/// constants and only dw is needed. dw_i = sum_p u_a(i,:) g_p u_b(i,:)^T
/// (the sample weight itself does not enter its own gradient). Same
/// flat ascending-p summation as the generic loop, minus its per-
/// element df branch.
template <int64_t B>
void BlockCrossGradDwRowsKernel(const double* __restrict gd,
                                const double* __restrict fd,
                                double* __restrict dwd, int64_t fcols,
                                const std::pair<int64_t, int64_t>* pd,
                                int64_t num_pairs, int64_t r0, int64_t r1) {
  for (int64_t i = r0; i < r1; ++i) {
    const double* frow = fd + i * fcols;
    double dw_acc = 0.0;
    for (int64_t p = 0; p < num_pairs; ++p) {
      const double* arow = frow + pd[p].first * B;
      const double* brow = frow + pd[p].second * B;
      const double* gblock = gd + p * B * B;
      for (int64_t r = 0; r < B; ++r) {
        const double* grow = gblock + r * B;
        double s = 0.0;
        for (int64_t c = 0; c < B; ++c) s += grow[c] * brow[c];
        dw_acc += arow[r] * s;
      }
    }
    dwd[i] += dw_acc;
  }
}

/// Specialized-size dispatch for the two kernels above; returns false
/// when `block` has no instantiation (callers fall back to the generic
/// loop). 3..5 covers the test grid and the paper default k = 5; 8 the
/// wider-feature configs.
bool BlockCrossFwdDispatch(int64_t block, const double* fd,
                           const double* wd, double* od, int64_t n,
                           int64_t fcols,
                           const std::pair<int64_t, int64_t>* pd,
                           int64_t p0, int64_t p1) {
  switch (block) {
    case 3: BlockCrossFwdPairsKernel<3>(fd, wd, od, n, fcols, pd, p0, p1);
            return true;
    case 4: BlockCrossFwdPairsKernel<4>(fd, wd, od, n, fcols, pd, p0, p1);
            return true;
    case 5: BlockCrossFwdPairsKernel<5>(fd, wd, od, n, fcols, pd, p0, p1);
            return true;
    case 8: BlockCrossFwdPairsKernel<8>(fd, wd, od, n, fcols, pd, p0, p1);
            return true;
    default: return false;
  }
}

bool BlockCrossGradDwDispatch(int64_t block, const double* gd,
                              const double* fd, double* dwd, int64_t fcols,
                              const std::pair<int64_t, int64_t>* pd,
                              int64_t num_pairs, int64_t r0, int64_t r1) {
  switch (block) {
    case 3: BlockCrossGradDwRowsKernel<3>(gd, fd, dwd, fcols, pd,
                                          num_pairs, r0, r1);
            return true;
    case 4: BlockCrossGradDwRowsKernel<4>(gd, fd, dwd, fcols, pd,
                                          num_pairs, r0, r1);
            return true;
    case 5: BlockCrossGradDwRowsKernel<5>(gd, fd, dwd, fcols, pd,
                                          num_pairs, r0, r1);
            return true;
    case 8: BlockCrossGradDwRowsKernel<8>(gd, fd, dwd, fcols, pd,
                                          num_pairs, r0, r1);
            return true;
    default: return false;
  }
}

// See common/thread_pool.h: shared serial-inline threshold.
constexpr int64_t kSerialCutoff = kParallelSerialCutoff;

/// Rows per parallel chunk so one chunk carries ~kSerialCutoff flops.
int64_t GrainRows(int64_t flops_per_row) {
  return std::max<int64_t>(1, kSerialCutoff / std::max<int64_t>(1, flops_per_row));
}

// The hot kernels live in free functions with __restrict parameters
// rather than inside the ParallelFor lambdas: stores through a pointer
// captured in a closure could alias the closure itself, which blocks
// vectorization and register-caching of the loop state.

/// Rows [r0, r1) of out += a * b. Blocked: a j-panel of B is reused
/// across every row of the range, rows are unrolled 4-wide so each B
/// load feeds four rows, and the k loop is unrolled 4-wide with the
/// output element held in a register across the four multiply-adds.
/// Each output element receives its k terms one at a time in ascending
/// order, so the result is identical to the naive i-k-j reference on a
/// zeroed output, independent of tiling and thread count.
void MatmulRowsKernel(const double* __restrict ad, const double* __restrict bd,
                      double* __restrict od, int64_t k, int64_t m, int64_t r0,
                      int64_t r1) {
  for (int64_t jb = 0; jb < m; jb += kJBlock) {
    const int64_t je = std::min(jb + kJBlock, m);
    int64_t i = r0;
    for (; i + 4 <= r1; i += 4) {
      const double* a0 = ad + i * k;
      const double* a1 = a0 + k;
      const double* a2 = a1 + k;
      const double* a3 = a2 + k;
      double* o0 = od + i * m;
      double* o1 = o0 + m;
      double* o2 = o1 + m;
      double* o3 = o2 + m;
      int64_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const double* br0 = bd + p * m;
        const double* br1 = br0 + m;
        const double* br2 = br1 + m;
        const double* br3 = br2 + m;
        for (int64_t j = jb; j < je; ++j) {
          const double b0 = br0[j], b1 = br1[j], b2 = br2[j], b3 = br3[j];
          double x0 = o0[j];
          x0 += a0[p] * b0; x0 += a0[p + 1] * b1;
          x0 += a0[p + 2] * b2; x0 += a0[p + 3] * b3;
          o0[j] = x0;
          double x1 = o1[j];
          x1 += a1[p] * b0; x1 += a1[p + 1] * b1;
          x1 += a1[p + 2] * b2; x1 += a1[p + 3] * b3;
          o1[j] = x1;
          double x2 = o2[j];
          x2 += a2[p] * b0; x2 += a2[p + 1] * b1;
          x2 += a2[p + 2] * b2; x2 += a2[p + 3] * b3;
          o2[j] = x2;
          double x3 = o3[j];
          x3 += a3[p] * b0; x3 += a3[p + 1] * b1;
          x3 += a3[p + 2] * b2; x3 += a3[p + 3] * b3;
          o3[j] = x3;
        }
      }
      for (; p < k; ++p) {
        const double* brow = bd + p * m;
        const double v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        for (int64_t j = jb; j < je; ++j) {
          const double bv = brow[j];
          o0[j] += v0 * bv;
          o1[j] += v1 * bv;
          o2[j] += v2 * bv;
          o3[j] += v3 * bv;
        }
      }
    }
    for (; i < r1; ++i) {
      const double* arow = ad + i * k;
      double* orow = od + i * m;
      int64_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const double* br0 = bd + p * m;
        const double* br1 = br0 + m;
        const double* br2 = br1 + m;
        const double* br3 = br2 + m;
        const double v0 = arow[p], v1 = arow[p + 1];
        const double v2 = arow[p + 2], v3 = arow[p + 3];
        for (int64_t j = jb; j < je; ++j) {
          double x = orow[j];
          x += v0 * br0[j]; x += v1 * br1[j];
          x += v2 * br2[j]; x += v3 * br3[j];
          orow[j] = x;
        }
      }
      for (; p < k; ++p) {
        const double* brow = bd + p * m;
        const double av = arow[p];
        for (int64_t j = jb; j < je; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

/// Rows [r0, r1) of out += a^T * b where a is (k x n): the reduction
/// index p stays outermost and ascending for every element.
void MatmulTransARowsKernel(const double* __restrict ad,
                            const double* __restrict bd,
                            double* __restrict od, int64_t k, int64_t n,
                            int64_t m, int64_t r0, int64_t r1) {
  for (int64_t p = 0; p < k; ++p) {
    const double* acol = ad + p * n;
    const double* brow = bd + p * m;
    for (int64_t i = r0; i < r1; ++i) {
      const double av = acol[i];
      double* orow = od + i * m;
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
}

/// Rows [r0, r1) of out += a * b^T where b is (m x k). 2x2 micro-kernel:
/// each loaded A/B row segment feeds two dot products; accumulators are
/// per-element, k ascending.
void MatmulTransBRowsKernel(const double* __restrict ad,
                            const double* __restrict bd,
                            double* __restrict od, int64_t k, int64_t m,
                            int64_t r0, int64_t r1) {
  int64_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const double* a0 = ad + i * k;
    const double* a1 = a0 + k;
    double* o0 = od + i * m;
    double* o1 = o0 + m;
    int64_t j = 0;
    for (; j + 2 <= m; j += 2) {
      const double* b0 = bd + j * k;
      const double* b1 = b0 + k;
      double acc00 = 0.0, acc01 = 0.0, acc10 = 0.0, acc11 = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const double a0p = a0[p], a1p = a1[p];
        const double b0p = b0[p], b1p = b1[p];
        acc00 += a0p * b0p;
        acc01 += a0p * b1p;
        acc10 += a1p * b0p;
        acc11 += a1p * b1p;
      }
      o0[j] += acc00;
      o0[j + 1] += acc01;
      o1[j] += acc10;
      o1[j + 1] += acc11;
    }
    for (; j < m; ++j) {
      const double* brow = bd + j * k;
      double acc0 = 0.0, acc1 = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        acc0 += a0[p] * brow[p];
        acc1 += a1[p] * brow[p];
      }
      o0[j] += acc0;
      o1[j] += acc1;
    }
  }
  for (; i < r1; ++i) {
    const double* arow = ad + i * k;
    double* orow = od + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const double* brow = bd + j * k;
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] += acc;
    }
  }
}

}  // namespace

void MatmulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SBRL_CHECK_EQ(a.cols(), b.rows())
      << "Matmul shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString();
  SBRL_CHECK(out->rows() == a.rows() && out->cols() == b.cols())
      << "Matmul output shape " << out->ShapeString();
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out->data();
  // Small products skip thread dispatch entirely (no std::function is
  // even constructed): the HSIC weight loss issues tens of thousands of
  // tiny matmuls per training run.
  if (n * k * m <= kSerialCutoff) {
    MatmulRowsKernel(ad, bd, od, k, m, 0, n);
    return;
  }
  ParallelFor(0, n, GrainRows(k * m), [=](int64_t r0, int64_t r1) {
    MatmulRowsKernel(ad, bd, od, k, m, r0, r1);
  });
}

Matrix Matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  MatmulInto(a, b, &out);
  return out;
}

Matrix MatmulReference(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.cols(), b.rows())
      << "Matmul shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString();
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  Matrix out(n, m);
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const double* arow = ad + i * k;
    double* orow = od + i * m;
    for (int64_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = bd + p * m;
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

void MatmulTransAInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SBRL_CHECK_EQ(a.rows(), b.rows())
      << "MatmulTransA shape mismatch " << a.ShapeString() << "^T * "
      << b.ShapeString();
  SBRL_CHECK(out->rows() == a.cols() && out->cols() == b.cols())
      << "MatmulTransA output shape " << out->ShapeString();
  const int64_t k = a.rows(), n = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out->data();
  if (n * k * m <= kSerialCutoff) {
    MatmulTransARowsKernel(ad, bd, od, k, n, m, 0, n);
    return;
  }
  // Threads own disjoint ranges of output rows (columns of A).
  ParallelFor(0, n, GrainRows(k * m), [=](int64_t r0, int64_t r1) {
    MatmulTransARowsKernel(ad, bd, od, k, n, m, r0, r1);
  });
}

Matrix MatmulTransA(const Matrix& a, const Matrix& b) {
  Matrix out(a.cols(), b.cols());
  MatmulTransAInto(a, b, &out);
  return out;
}

void BlockPairMatmulTransAInto(
    const Matrix& a, const Matrix& b, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* out) {
  SBRL_CHECK_GT(block, 0);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const int64_t n = a.rows();
  const int64_t num_pairs = static_cast<int64_t>(pairs.size());
  SBRL_CHECK(out->rows() == num_pairs * block && out->cols() == block)
      << "BlockPairMatmulTransA output shape " << out->ShapeString();
  for (const auto& [pa, pb] : pairs) {
    SBRL_CHECK(pa >= 0 && (pa + 1) * block <= a.cols())
        << "pair block " << pa << " out of range for " << a.ShapeString();
    SBRL_CHECK(pb >= 0 && (pb + 1) * block <= b.cols())
        << "pair block " << pb << " out of range for " << b.ShapeString();
  }
  if (n == 0 || num_pairs == 0) return;
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out->data();
  const int64_t acols = a.cols(), bcols = b.cols();
  const std::pair<int64_t, int64_t>* pd = pairs.data();
  // Each pair's (block x block) slab is contiguous in the stacked
  // output, and the reduction over n stays innermost-ascending per
  // element (bitwise MatmulTransA-identical).
  const auto run_pairs = [=](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t ca = pd[p].first * block;
      const int64_t cb = pd[p].second * block;
      double* oblock = od + p * block * block;
      for (int64_t i = 0; i < n; ++i) {
        const double* arow = ad + i * acols + ca;
        const double* brow = bd + i * bcols + cb;
        for (int64_t r = 0; r < block; ++r) {
          const double av = arow[r];
          double* orow = oblock + r * block;
          for (int64_t c = 0; c < block; ++c) orow[c] += av * brow[c];
        }
      }
    }
  };
  const int64_t flops_per_pair = n * block * block;
  if (num_pairs * flops_per_pair <= kSerialCutoff) {
    run_pairs(0, num_pairs);
    return;
  }
  ParallelFor(0, num_pairs, GrainRows(flops_per_pair), run_pairs);
}

void BlockPairMatmulTransAGradInto(
    const Matrix& g, const Matrix& a, const Matrix& b, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* da,
    Matrix* db) {
  SBRL_CHECK_GT(block, 0);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const int64_t n = a.rows();
  const int64_t num_pairs = static_cast<int64_t>(pairs.size());
  SBRL_CHECK(g.rows() == num_pairs * block && g.cols() == block)
      << "BlockPairMatmulTransAGrad gradient shape " << g.ShapeString();
  if (da != nullptr) SBRL_CHECK(da->same_shape(a));
  if (db != nullptr) SBRL_CHECK(db->same_shape(b));
  if (n == 0 || num_pairs == 0 || (da == nullptr && db == nullptr)) return;
  const double* gd = g.data();
  const double* ad = a.data();
  const double* bd = b.data();
  double* dad = da != nullptr ? da->data() : nullptr;
  double* dbd = db != nullptr ? db->data() : nullptr;
  const int64_t acols = a.cols(), bcols = b.cols();
  const std::pair<int64_t, int64_t>* pd = pairs.data();
  // Row-parallel: a worker owns whole rows of da/db, so two pairs that
  // touch the same feature block accumulate without racing.
  const int64_t flops_per_row = num_pairs * block * block;
  const auto run_rows = [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      for (int64_t p = 0; p < num_pairs; ++p) {
        const int64_t ca = pd[p].first * block;
        const int64_t cb = pd[p].second * block;
        const double* gblock = gd + p * block * block;
        const double* arow = ad + i * acols + ca;
        const double* brow = bd + i * bcols + cb;
        if (dad != nullptr) {
          double* darow = dad + i * acols + ca;
          for (int64_t r = 0; r < block; ++r) {
            const double* grow = gblock + r * block;
            double acc = 0.0;
            for (int64_t c = 0; c < block; ++c) acc += grow[c] * brow[c];
            darow[r] += acc;
          }
        }
        if (dbd != nullptr) {
          double* dbrow = dbd + i * bcols + cb;
          for (int64_t r = 0; r < block; ++r) {
            const double av = arow[r];
            const double* grow = gblock + r * block;
            for (int64_t c = 0; c < block; ++c) dbrow[c] += av * grow[c];
          }
        }
      }
    }
  };
  if (n * flops_per_row <= kSerialCutoff) {
    run_rows(0, n);
    return;
  }
  ParallelFor(0, n, GrainRows(flops_per_row), run_rows);
}

void BlockPairWeightedCrossInto(
    const Matrix& f, const Matrix& w, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* out) {
  SBRL_CHECK_GT(block, 0);
  SBRL_CHECK_EQ(w.cols(), 1);
  SBRL_CHECK_EQ(w.rows(), f.rows());
  const int64_t n = f.rows();
  const int64_t num_pairs = static_cast<int64_t>(pairs.size());
  SBRL_CHECK(out->rows() == num_pairs * block && out->cols() == block)
      << "BlockPairWeightedCross output shape " << out->ShapeString();
  for (const auto& [pa, pb] : pairs) {
    SBRL_CHECK(pa >= 0 && (pa + 1) * block <= f.cols())
        << "pair block " << pa << " out of range for " << f.ShapeString();
    SBRL_CHECK(pb >= 0 && (pb + 1) * block <= f.cols())
        << "pair block " << pb << " out of range for " << f.ShapeString();
  }
  if (n == 0 || num_pairs == 0) return;
  const double* fd = f.data();
  const double* wd = w.data();
  double* od = out->data();
  const int64_t fcols = f.cols();
  const std::pair<int64_t, int64_t>* pd = pairs.data();
  // Specialized block sizes run the fully unrolled register-accumulator
  // kernel; other sizes fall back to the generic loop. Both accumulate
  // each output element's row terms in the same ascending order, so the
  // paths are bitwise identical (and == sliced MatmulTransA).
  const auto run_pairs = [=](int64_t p0, int64_t p1) {
    if (BlockCrossFwdDispatch(block, fd, wd, od, n, fcols, pd, p0, p1)) {
      return;
    }
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t ca = pd[p].first * block;
      const int64_t cb = pd[p].second * block;
      double* oblock = od + p * block * block;
      for (int64_t i = 0; i < n; ++i) {
        const double* frow = fd + i * fcols;
        const double wi = wd[i];
        for (int64_t r = 0; r < block; ++r) {
          const double av = frow[ca + r] * wi;
          const double* brow = frow + cb;
          double* orow = oblock + r * block;
          for (int64_t c = 0; c < block; ++c) orow[c] += av * brow[c];
        }
      }
    }
  };
  const int64_t flops_per_pair = n * block * block;
  if (num_pairs * flops_per_pair <= kSerialCutoff) {
    run_pairs(0, num_pairs);
    return;
  }
  ParallelFor(0, num_pairs, GrainRows(flops_per_pair), run_pairs);
}

void BlockPairWeightedCrossGradInto(
    const Matrix& g, const Matrix& f, const Matrix& w, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* df,
    Matrix* dw) {
  SBRL_CHECK_GT(block, 0);
  SBRL_CHECK_EQ(w.cols(), 1);
  SBRL_CHECK_EQ(w.rows(), f.rows());
  const int64_t n = f.rows();
  const int64_t num_pairs = static_cast<int64_t>(pairs.size());
  SBRL_CHECK(g.rows() == num_pairs * block && g.cols() == block)
      << "BlockPairWeightedCrossGrad gradient shape " << g.ShapeString();
  if (df != nullptr) SBRL_CHECK(df->same_shape(f));
  if (dw != nullptr) SBRL_CHECK(dw->same_shape(w));
  if (n == 0 || num_pairs == 0 || (df == nullptr && dw == nullptr)) return;
  const double* gd = g.data();
  const double* fd = f.data();
  const double* wd = w.data();
  double* dfd = df != nullptr ? df->data() : nullptr;
  double* dwd = dw != nullptr ? dw->data() : nullptr;
  const int64_t fcols = f.cols();
  const std::pair<int64_t, int64_t>* pd = pairs.data();
  const int64_t flops_per_row = num_pairs * block * block;
  // The decorrelation loss differentiates only through the sample
  // weight (the stacked features are tape constants), so the dw-only
  // case gets a dedicated branch-free specialized kernel; the general
  // case keeps the fused loop. Summation orders are identical.
  const auto run_rows = [=](int64_t r0, int64_t r1) {
    if (dfd == nullptr && dwd != nullptr &&
        BlockCrossGradDwDispatch(block, gd, fd, dwd, fcols, pd, num_pairs,
                                 r0, r1)) {
      return;
    }
    for (int64_t i = r0; i < r1; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      double dw_acc = 0.0;
      for (int64_t p = 0; p < num_pairs; ++p) {
        const int64_t ca = pd[p].first * block;
        const int64_t cb = pd[p].second * block;
        const double* gblock = gd + p * block * block;
        for (int64_t r = 0; r < block; ++r) {
          const double* grow = gblock + r * block;
          // s_r = sum_c g_p(r, c) f(i, bc) feeds both dw and df.
          double s = 0.0;
          for (int64_t c = 0; c < block; ++c) s += grow[c] * frow[cb + c];
          dw_acc += frow[ca + r] * s;
          if (dfd != nullptr) {
            double* dfrow = dfd + i * fcols;
            dfrow[ca + r] += wi * s;
            const double av = wi * frow[ca + r];
            for (int64_t c = 0; c < block; ++c) {
              dfrow[cb + c] += av * grow[c];
            }
          }
        }
      }
      if (dwd != nullptr) dwd[i] += dw_acc;
    }
  };
  if (n * flops_per_row <= kSerialCutoff) {
    run_rows(0, n);
    return;
  }
  ParallelFor(0, n, GrainRows(flops_per_row), run_rows);
}

void MatmulTransBInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SBRL_CHECK_EQ(a.cols(), b.cols())
      << "MatmulTransB shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString() << "^T";
  SBRL_CHECK(out->rows() == a.rows() && out->cols() == b.rows())
      << "MatmulTransB output shape " << out->ShapeString();
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  if (n == 0 || k == 0 || m == 0) return;
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out->data();
  if (n * k * m <= kSerialCutoff) {
    MatmulTransBRowsKernel(ad, bd, od, k, m, 0, n);
    return;
  }
  ParallelFor(0, n, GrainRows(k * m), [=](int64_t r0, int64_t r1) {
    MatmulTransBRowsKernel(ad, bd, od, k, m, r0, r1);
  });
}

Matrix MatmulTransB(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  MatmulTransBInto(a, b, &out);
  return out;
}

Matrix Transpose(const Matrix& a) {
  const int64_t n = a.rows(), m = a.cols();
  Matrix out(m, n);
  const double* ad = a.data();
  double* od = out.data();
  if (n * m <= kSerialCutoff) {
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t c = 0; c < m; ++c) od[c * n + r] = ad[r * m + c];
    }
    return out;
  }
  // Tiled over (row, col) blocks so both the read and write streams stay
  // within cache lines; parallel over output row blocks.
  ParallelFor(0, m, GrainRows(n), [=](int64_t c0, int64_t c1) {
    for (int64_t cb = c0; cb < c1; cb += kTransposeTile) {
      const int64_t ce = std::min(cb + kTransposeTile, c1);
      for (int64_t rb = 0; rb < n; rb += kTransposeTile) {
        const int64_t re = std::min(rb + kTransposeTile, n);
        for (int64_t c = cb; c < ce; ++c) {
          double* orow = od + c * n;
          for (int64_t r = rb; r < re; ++r) orow[r] = ad[r * m + c];
        }
      }
    }
  });
  return out;
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) acc += a(r, c);
    out(r, 0) = acc;
  }
  return out;
}

Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(0, c) += a(r, c);
  }
  return out;
}

Matrix RowMean(const Matrix& a) {
  SBRL_CHECK_GT(a.cols(), 0);
  Matrix out = RowSum(a);
  out *= 1.0 / static_cast<double>(a.cols());
  return out;
}

Matrix ColMean(const Matrix& a) {
  SBRL_CHECK_GT(a.rows(), 0);
  Matrix out = ColSum(a);
  out *= 1.0 / static_cast<double>(a.rows());
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  SBRL_CHECK(a.same_shape(b))
      << a.ShapeString() << " vs " << b.ShapeString();
  Matrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix out(a.rows(), a.cols());
  const double* ad = a.data();
  double* od = out.data();
  if (a.size() <= kSerialCutoff) {
    for (int64_t i = 0; i < a.size(); ++i) od[i] = f(ad[i]);
    return out;
  }
  ParallelFor(0, a.size(), kSerialCutoff,
              [ad, od, &f](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) od[i] = f(ad[i]);
              });
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  SBRL_CHECK_EQ(row.rows(), 1);
  SBRL_CHECK_EQ(row.cols(), a.cols());
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) + row(0, c);
  }
  return out;
}

Matrix MulColBroadcast(const Matrix& a, const Matrix& col) {
  SBRL_CHECK_EQ(col.cols(), 1);
  SBRL_CHECK_EQ(col.rows(), a.rows());
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const double s = col(r, 0);
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) * s;
  }
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<int64_t>& idx) {
  const int64_t m = a.cols();
  Matrix out(static_cast<int64_t>(idx.size()), m);
  const size_t row_bytes = static_cast<size_t>(m) * sizeof(double);
  const double* ad = a.data();
  double* od = out.data();
  for (size_t i = 0; i < idx.size(); ++i) {
    SBRL_CHECK(idx[i] >= 0 && idx[i] < a.rows())
        << "gather index " << idx[i] << " out of range " << a.rows();
    if (row_bytes == 0) continue;  // still validates every index
    std::memcpy(od + static_cast<int64_t>(i) * m, ad + idx[i] * m, row_bytes);
  }
  return out;
}

Matrix ScatterAddRows(const Matrix& a, const std::vector<int64_t>& idx,
                      int64_t rows) {
  SBRL_CHECK_EQ(static_cast<int64_t>(idx.size()), a.rows());
  Matrix out(rows, a.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    SBRL_CHECK(idx[i] >= 0 && idx[i] < rows);
    for (int64_t c = 0; c < a.cols(); ++c) {
      out(idx[i], c) += a(static_cast<int64_t>(i), c);
    }
  }
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const int64_t ac = a.cols(), bc = b.cols();
  Matrix out(a.rows(), ac + bc);
  const size_t a_bytes = static_cast<size_t>(ac) * sizeof(double);
  const size_t b_bytes = static_cast<size_t>(bc) * sizeof(double);
  double* od = out.data();
  for (int64_t r = 0; r < a.rows(); ++r) {
    std::memcpy(od + r * (ac + bc), a.data() + r * ac, a_bytes);
    std::memcpy(od + r * (ac + bc) + ac, b.data() + r * bc, b_bytes);
  }
  return out;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  std::memcpy(out.data(), a.data(),
              static_cast<size_t>(a.size()) * sizeof(double));
  std::memcpy(out.data() + a.size(), b.data(),
              static_cast<size_t>(b.size()) * sizeof(double));
  return out;
}

Matrix PairwiseSquaredDistances(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.cols(), b.cols());
  Matrix cross = MatmulTransB(a, b);   // (n x m)
  Matrix a2 = RowSum(Hadamard(a, a));  // (n x 1)
  Matrix b2 = RowSum(Hadamard(b, b));  // (m x 1)
  const int64_t n = a.rows(), m = b.rows();
  Matrix out(n, m);
  const double* cd = cross.data();
  const double* a2d = a2.data();
  const double* b2d = b2.data();
  double* od = out.data();
  const auto fill_rows = [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double ai = a2d[i];
      const double* crow = cd + i * m;
      double* orow = od + i * m;
      for (int64_t j = 0; j < m; ++j) {
        const double d = ai + b2d[j] - 2.0 * crow[j];
        orow[j] = d > 0.0 ? d : 0.0;  // guard tiny negative round-off
      }
    }
  };
  if (n * m <= kSerialCutoff) {
    fill_rows(0, n);
  } else {
    ParallelFor(0, n, GrainRows(m), fill_rows);
  }
  return out;
}

double Dot(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double StdDev(const Matrix& a) {
  SBRL_CHECK_GT(a.size(), 0);
  const double mu = a.Mean();
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace sbrl

#include "tensor/linalg.h"

#include <cmath>

namespace sbrl {

Matrix Matmul(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.cols(), b.rows())
      << "Matmul shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString();
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  Matrix out(n, m);
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const double* arow = ad + i * k;
    double* orow = od + i * m;
    for (int64_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = bd + p * m;
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatmulTransA(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.rows(), b.rows())
      << "MatmulTransA shape mismatch " << a.ShapeString() << "^T * "
      << b.ShapeString();
  const int64_t k = a.rows(), n = a.cols(), m = b.cols();
  Matrix out(n, m);
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out.data();
  for (int64_t p = 0; p < k; ++p) {
    const double* arow = ad + p * n;
    const double* brow = bd + p * m;
    for (int64_t i = 0; i < n; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = od + i * m;
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatmulTransB(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.cols(), b.cols())
      << "MatmulTransB shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString() << "^T";
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  Matrix out(n, m);
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const double* arow = ad + i * k;
    double* orow = od + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const double* brow = bd + j * k;
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(c, r) = a(r, c);
  }
  return out;
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) acc += a(r, c);
    out(r, 0) = acc;
  }
  return out;
}

Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(0, c) += a(r, c);
  }
  return out;
}

Matrix RowMean(const Matrix& a) {
  SBRL_CHECK_GT(a.cols(), 0);
  Matrix out = RowSum(a);
  out *= 1.0 / static_cast<double>(a.cols());
  return out;
}

Matrix ColMean(const Matrix& a) {
  SBRL_CHECK_GT(a.rows(), 0);
  Matrix out = ColSum(a);
  out *= 1.0 / static_cast<double>(a.rows());
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  SBRL_CHECK(a.same_shape(b))
      << a.ShapeString() << " vs " << b.ShapeString();
  Matrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) out[i] = f(a[i]);
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  SBRL_CHECK_EQ(row.rows(), 1);
  SBRL_CHECK_EQ(row.cols(), a.cols());
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) + row(0, c);
  }
  return out;
}

Matrix MulColBroadcast(const Matrix& a, const Matrix& col) {
  SBRL_CHECK_EQ(col.cols(), 1);
  SBRL_CHECK_EQ(col.rows(), a.rows());
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const double s = col(r, 0);
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) * s;
  }
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<int64_t>& idx) {
  Matrix out(static_cast<int64_t>(idx.size()), a.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    SBRL_CHECK(idx[i] >= 0 && idx[i] < a.rows())
        << "gather index " << idx[i] << " out of range " << a.rows();
    for (int64_t c = 0; c < a.cols(); ++c) {
      out(static_cast<int64_t>(i), c) = a(idx[i], c);
    }
  }
  return out;
}

Matrix ScatterAddRows(const Matrix& a, const std::vector<int64_t>& idx,
                      int64_t rows) {
  SBRL_CHECK_EQ(static_cast<int64_t>(idx.size()), a.rows());
  Matrix out(rows, a.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    SBRL_CHECK(idx[i] >= 0 && idx[i] < rows);
    for (int64_t c = 0; c < a.cols(); ++c) {
      out(idx[i], c) += a(static_cast<int64_t>(i), c);
    }
  }
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c);
    for (int64_t c = 0; c < b.cols(); ++c) out(r, a.cols() + c) = b(r, c);
  }
  return out;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c);
  }
  for (int64_t r = 0; r < b.rows(); ++r) {
    for (int64_t c = 0; c < b.cols(); ++c) out(a.rows() + r, c) = b(r, c);
  }
  return out;
}

Matrix PairwiseSquaredDistances(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.cols(), b.cols());
  Matrix cross = MatmulTransB(a, b);  // (n x m)
  Matrix a2 = RowSum(Hadamard(a, a));  // (n x 1)
  Matrix b2 = RowSum(Hadamard(b, b));  // (m x 1)
  Matrix out(a.rows(), b.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.rows(); ++j) {
      double d = a2(i, 0) + b2(j, 0) - 2.0 * cross(i, j);
      out(i, j) = d > 0.0 ? d : 0.0;  // guard tiny negative round-off
    }
  }
  return out;
}

double Dot(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double StdDev(const Matrix& a) {
  SBRL_CHECK_GT(a.size(), 0);
  const double mu = a.Mean();
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace sbrl

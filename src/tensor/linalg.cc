#include "tensor/linalg.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/thread_pool.h"
#include "tensor/kernels.h"

namespace sbrl {

namespace {

constexpr int64_t kTransposeTile = 32;

// The arithmetic inner loops (matmul row tiles and the specialized
// block-cross kernels) live in per-ISA translation units behind the
// LinalgKernels table (tensor/kernels.h): every public entry point
// below fetches ActiveLinalgKernels() once and hands disjoint output
// tiles to the resolved kernels. Shape checks, serial cutoffs, and
// ParallelFor chunking stay here, identical for every ISA level, so
// tile/block boundaries never depend on the resolved vector width.

/// Rows per parallel chunk so one chunk carries ~SerialCutoff() flops.
int64_t GrainRows(int64_t flops_per_row) {
  return std::max<int64_t>(
      1, SerialCutoff() / std::max<int64_t>(1, flops_per_row));
}

}  // namespace

void MatmulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SBRL_CHECK_EQ(a.cols(), b.rows())
      << "Matmul shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString();
  SBRL_CHECK(out->rows() == a.rows() && out->cols() == b.cols())
      << "Matmul output shape " << out->ShapeString();
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out->data();
  // Small products skip thread dispatch entirely (no std::function is
  // even constructed): the HSIC weight loss issues tens of thousands of
  // tiny matmuls per training run.
  const auto kernel = ActiveLinalgKernels().matmul_rows;
  if (n * k * m <= SerialCutoff()) {
    kernel(ad, bd, od, k, m, 0, n);
    return;
  }
  ParallelFor(0, n, GrainRows(k * m), [=](int64_t r0, int64_t r1) {
    kernel(ad, bd, od, k, m, r0, r1);
  });
}

Matrix Matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  MatmulInto(a, b, &out);
  return out;
}

Matrix MatmulReference(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.cols(), b.rows())
      << "Matmul shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString();
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  Matrix out(n, m);
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const double* arow = ad + i * k;
    double* orow = od + i * m;
    for (int64_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = bd + p * m;
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

void MatmulTransAInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SBRL_CHECK_EQ(a.rows(), b.rows())
      << "MatmulTransA shape mismatch " << a.ShapeString() << "^T * "
      << b.ShapeString();
  SBRL_CHECK(out->rows() == a.cols() && out->cols() == b.cols())
      << "MatmulTransA output shape " << out->ShapeString();
  const int64_t k = a.rows(), n = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out->data();
  const auto kernel = ActiveLinalgKernels().matmul_trans_a_rows;
  if (n * k * m <= SerialCutoff()) {
    kernel(ad, bd, od, k, n, m, 0, n);
    return;
  }
  // Threads own disjoint ranges of output rows (columns of A).
  ParallelFor(0, n, GrainRows(k * m), [=](int64_t r0, int64_t r1) {
    kernel(ad, bd, od, k, n, m, r0, r1);
  });
}

Matrix MatmulTransA(const Matrix& a, const Matrix& b) {
  Matrix out(a.cols(), b.cols());
  MatmulTransAInto(a, b, &out);
  return out;
}

void BlockPairMatmulTransAInto(
    const Matrix& a, const Matrix& b, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* out) {
  SBRL_CHECK_GT(block, 0);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const int64_t n = a.rows();
  const int64_t num_pairs = static_cast<int64_t>(pairs.size());
  SBRL_CHECK(out->rows() == num_pairs * block && out->cols() == block)
      << "BlockPairMatmulTransA output shape " << out->ShapeString();
  for (const auto& [pa, pb] : pairs) {
    SBRL_CHECK(pa >= 0 && (pa + 1) * block <= a.cols())
        << "pair block " << pa << " out of range for " << a.ShapeString();
    SBRL_CHECK(pb >= 0 && (pb + 1) * block <= b.cols())
        << "pair block " << pb << " out of range for " << b.ShapeString();
  }
  if (n == 0 || num_pairs == 0) return;
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out->data();
  const int64_t acols = a.cols(), bcols = b.cols();
  const std::pair<int64_t, int64_t>* pd = pairs.data();
  // Each pair's (block x block) slab is contiguous in the stacked
  // output, and the reduction over n stays innermost-ascending per
  // element (bitwise MatmulTransA-identical). The resolved ISA's
  // generic pair kernel (nullable weights) widens only the independent
  // output columns, preserving that contract at every level.
  const auto fwd_generic = ActiveLinalgKernels().block_cross_fwd_generic;
  const auto run_pairs = [=](int64_t p0, int64_t p1) {
    fwd_generic(ad, acols, bd, bcols, /*wd=*/nullptr, od, n, block, pd, p0,
                p1);
  };
  const int64_t flops_per_pair = n * block * block;
  if (num_pairs * flops_per_pair <= SerialCutoff()) {
    run_pairs(0, num_pairs);
    return;
  }
  ParallelFor(0, num_pairs, GrainRows(flops_per_pair), run_pairs);
}

void BlockPairMatmulTransAGradInto(
    const Matrix& g, const Matrix& a, const Matrix& b, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* da,
    Matrix* db) {
  SBRL_CHECK_GT(block, 0);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const int64_t n = a.rows();
  const int64_t num_pairs = static_cast<int64_t>(pairs.size());
  SBRL_CHECK(g.rows() == num_pairs * block && g.cols() == block)
      << "BlockPairMatmulTransAGrad gradient shape " << g.ShapeString();
  if (da != nullptr) SBRL_CHECK(da->same_shape(a));
  if (db != nullptr) SBRL_CHECK(db->same_shape(b));
  if (n == 0 || num_pairs == 0 || (da == nullptr && db == nullptr)) return;
  const double* gd = g.data();
  const double* ad = a.data();
  const double* bd = b.data();
  double* dad = da != nullptr ? da->data() : nullptr;
  double* dbd = db != nullptr ? db->data() : nullptr;
  const int64_t acols = a.cols(), bcols = b.cols();
  const std::pair<int64_t, int64_t>* pd = pairs.data();
  // Row-parallel: a worker owns whole rows of da/db, so two pairs that
  // touch the same feature block accumulate without racing.
  const int64_t flops_per_row = num_pairs * block * block;
  const auto run_rows = [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      for (int64_t p = 0; p < num_pairs; ++p) {
        const int64_t ca = pd[p].first * block;
        const int64_t cb = pd[p].second * block;
        const double* gblock = gd + p * block * block;
        const double* arow = ad + i * acols + ca;
        const double* brow = bd + i * bcols + cb;
        if (dad != nullptr) {
          double* darow = dad + i * acols + ca;
          for (int64_t r = 0; r < block; ++r) {
            const double* grow = gblock + r * block;
            double acc = 0.0;
            for (int64_t c = 0; c < block; ++c) acc += grow[c] * brow[c];
            darow[r] += acc;
          }
        }
        if (dbd != nullptr) {
          double* dbrow = dbd + i * bcols + cb;
          for (int64_t r = 0; r < block; ++r) {
            const double av = arow[r];
            const double* grow = gblock + r * block;
            for (int64_t c = 0; c < block; ++c) dbrow[c] += av * grow[c];
          }
        }
      }
    }
  };
  if (n * flops_per_row <= SerialCutoff()) {
    run_rows(0, n);
    return;
  }
  ParallelFor(0, n, GrainRows(flops_per_row), run_rows);
}

void BlockPairWeightedCrossInto(
    const Matrix& f, const Matrix& w, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* out) {
  SBRL_CHECK_GT(block, 0);
  SBRL_CHECK_EQ(w.cols(), 1);
  SBRL_CHECK_EQ(w.rows(), f.rows());
  const int64_t n = f.rows();
  const int64_t num_pairs = static_cast<int64_t>(pairs.size());
  SBRL_CHECK(out->rows() == num_pairs * block && out->cols() == block)
      << "BlockPairWeightedCross output shape " << out->ShapeString();
  for (const auto& [pa, pb] : pairs) {
    SBRL_CHECK(pa >= 0 && (pa + 1) * block <= f.cols())
        << "pair block " << pa << " out of range for " << f.ShapeString();
    SBRL_CHECK(pb >= 0 && (pb + 1) * block <= f.cols())
        << "pair block " << pb << " out of range for " << f.ShapeString();
  }
  if (n == 0 || num_pairs == 0) return;
  const double* fd = f.data();
  const double* wd = w.data();
  double* od = out->data();
  const int64_t fcols = f.cols();
  const std::pair<int64_t, int64_t>* pd = pairs.data();
  // Specialized block sizes run the resolved ISA's register-accumulator
  // kernel; other sizes fall back to the generic loop. All paths
  // accumulate each output element's row terms in the same ascending
  // order, so they are bitwise identical across specializations AND
  // ISA levels (and == sliced MatmulTransA).
  const LinalgKernels& kernels = ActiveLinalgKernels();
  const auto block_cross_fwd = kernels.block_cross_fwd;
  const auto fwd_generic = kernels.block_cross_fwd_generic;
  const auto run_pairs = [=](int64_t p0, int64_t p1) {
    if (block_cross_fwd(block, fd, wd, od, n, fcols, pd, p0, p1)) {
      return;
    }
    fwd_generic(fd, fcols, fd, fcols, wd, od, n, block, pd, p0, p1);
  };
  const int64_t flops_per_pair = n * block * block;
  if (num_pairs * flops_per_pair <= SerialCutoff()) {
    run_pairs(0, num_pairs);
    return;
  }
  ParallelFor(0, num_pairs, GrainRows(flops_per_pair), run_pairs);
}

void BlockPairWeightedCrossGradInto(
    const Matrix& g, const Matrix& f, const Matrix& w, int64_t block,
    const std::vector<std::pair<int64_t, int64_t>>& pairs, Matrix* df,
    Matrix* dw) {
  SBRL_CHECK_GT(block, 0);
  SBRL_CHECK_EQ(w.cols(), 1);
  SBRL_CHECK_EQ(w.rows(), f.rows());
  const int64_t n = f.rows();
  const int64_t num_pairs = static_cast<int64_t>(pairs.size());
  SBRL_CHECK(g.rows() == num_pairs * block && g.cols() == block)
      << "BlockPairWeightedCrossGrad gradient shape " << g.ShapeString();
  if (df != nullptr) SBRL_CHECK(df->same_shape(f));
  if (dw != nullptr) SBRL_CHECK(dw->same_shape(w));
  if (n == 0 || num_pairs == 0 || (df == nullptr && dw == nullptr)) return;
  const double* gd = g.data();
  const double* fd = f.data();
  const double* wd = w.data();
  double* dfd = df != nullptr ? df->data() : nullptr;
  double* dwd = dw != nullptr ? dw->data() : nullptr;
  const int64_t fcols = f.cols();
  const std::pair<int64_t, int64_t>* pd = pairs.data();
  const int64_t flops_per_row = num_pairs * block * block;
  // The decorrelation loss differentiates only through the sample
  // weight (the stacked features are tape constants), so the dw-only
  // case gets a dedicated branch-free kernel from the resolved ISA
  // table; the general case keeps the fused loop. The baseline dw
  // kernel keeps the generic summation order bitwise; wider ISAs
  // regroup the dot products (deterministic within a level, bounded
  // against baseline — see tensor/kernels.h).
  const auto block_cross_grad_dw = ActiveLinalgKernels().block_cross_grad_dw;
  const auto run_rows = [=](int64_t r0, int64_t r1) {
    if (dfd == nullptr && dwd != nullptr &&
        block_cross_grad_dw(block, gd, fd, dwd, fcols, pd, num_pairs,
                            r0, r1)) {
      return;
    }
    for (int64_t i = r0; i < r1; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      double dw_acc = 0.0;
      for (int64_t p = 0; p < num_pairs; ++p) {
        const int64_t ca = pd[p].first * block;
        const int64_t cb = pd[p].second * block;
        const double* gblock = gd + p * block * block;
        for (int64_t r = 0; r < block; ++r) {
          const double* grow = gblock + r * block;
          // s_r = sum_c g_p(r, c) f(i, bc) feeds both dw and df.
          double s = 0.0;
          for (int64_t c = 0; c < block; ++c) s += grow[c] * frow[cb + c];
          dw_acc += frow[ca + r] * s;
          if (dfd != nullptr) {
            double* dfrow = dfd + i * fcols;
            dfrow[ca + r] += wi * s;
            const double av = wi * frow[ca + r];
            for (int64_t c = 0; c < block; ++c) {
              dfrow[cb + c] += av * grow[c];
            }
          }
        }
      }
      if (dwd != nullptr) dwd[i] += dw_acc;
    }
  };
  if (n * flops_per_row <= SerialCutoff()) {
    run_rows(0, n);
    return;
  }
  ParallelFor(0, n, GrainRows(flops_per_row), run_rows);
}

void MatmulTransBInto(const Matrix& a, const Matrix& b, Matrix* out) {
  SBRL_CHECK_EQ(a.cols(), b.cols())
      << "MatmulTransB shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString() << "^T";
  SBRL_CHECK(out->rows() == a.rows() && out->cols() == b.rows())
      << "MatmulTransB output shape " << out->ShapeString();
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  if (n == 0 || k == 0 || m == 0) return;
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out->data();
  const auto kernel = ActiveLinalgKernels().matmul_trans_b_rows;
  if (n * k * m <= SerialCutoff()) {
    kernel(ad, bd, od, k, m, 0, n);
    return;
  }
  ParallelFor(0, n, GrainRows(k * m), [=](int64_t r0, int64_t r1) {
    kernel(ad, bd, od, k, m, r0, r1);
  });
}

Matrix MatmulTransB(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  MatmulTransBInto(a, b, &out);
  return out;
}

Matrix Transpose(const Matrix& a) {
  const int64_t n = a.rows(), m = a.cols();
  Matrix out(m, n);
  const double* ad = a.data();
  double* od = out.data();
  if (n * m <= SerialCutoff()) {
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t c = 0; c < m; ++c) od[c * n + r] = ad[r * m + c];
    }
    return out;
  }
  // Tiled over (row, col) blocks so both the read and write streams stay
  // within cache lines; parallel over output row blocks.
  ParallelFor(0, m, GrainRows(n), [=](int64_t c0, int64_t c1) {
    for (int64_t cb = c0; cb < c1; cb += kTransposeTile) {
      const int64_t ce = std::min(cb + kTransposeTile, c1);
      for (int64_t rb = 0; rb < n; rb += kTransposeTile) {
        const int64_t re = std::min(rb + kTransposeTile, n);
        for (int64_t c = cb; c < ce; ++c) {
          double* orow = od + c * n;
          for (int64_t r = rb; r < re; ++r) orow[r] = ad[r * m + c];
        }
      }
    }
  });
  return out;
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) acc += a(r, c);
    out(r, 0) = acc;
  }
  return out;
}

Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(0, c) += a(r, c);
  }
  return out;
}

Matrix RowMean(const Matrix& a) {
  SBRL_CHECK_GT(a.cols(), 0);
  Matrix out = RowSum(a);
  out *= 1.0 / static_cast<double>(a.cols());
  return out;
}

Matrix ColMean(const Matrix& a) {
  SBRL_CHECK_GT(a.rows(), 0);
  Matrix out = ColSum(a);
  out *= 1.0 / static_cast<double>(a.rows());
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  SBRL_CHECK(a.same_shape(b))
      << a.ShapeString() << " vs " << b.ShapeString();
  Matrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix out(a.rows(), a.cols());
  const double* ad = a.data();
  double* od = out.data();
  if (a.size() <= SerialCutoff()) {
    for (int64_t i = 0; i < a.size(); ++i) od[i] = f(ad[i]);
    return out;
  }
  ParallelFor(0, a.size(), SerialCutoff(),
              [ad, od, &f](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) od[i] = f(ad[i]);
              });
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  SBRL_CHECK_EQ(row.rows(), 1);
  SBRL_CHECK_EQ(row.cols(), a.cols());
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) + row(0, c);
  }
  return out;
}

Matrix MulColBroadcast(const Matrix& a, const Matrix& col) {
  SBRL_CHECK_EQ(col.cols(), 1);
  SBRL_CHECK_EQ(col.rows(), a.rows());
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const double s = col(r, 0);
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) * s;
  }
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<int64_t>& idx) {
  const int64_t m = a.cols();
  Matrix out(static_cast<int64_t>(idx.size()), m);
  const size_t row_bytes = static_cast<size_t>(m) * sizeof(double);
  const double* ad = a.data();
  double* od = out.data();
  for (size_t i = 0; i < idx.size(); ++i) {
    SBRL_CHECK(idx[i] >= 0 && idx[i] < a.rows())
        << "gather index " << idx[i] << " out of range " << a.rows();
    if (row_bytes == 0) continue;  // still validates every index
    std::memcpy(od + static_cast<int64_t>(i) * m, ad + idx[i] * m, row_bytes);
  }
  return out;
}

Matrix ScatterAddRows(const Matrix& a, const std::vector<int64_t>& idx,
                      int64_t rows) {
  SBRL_CHECK_EQ(static_cast<int64_t>(idx.size()), a.rows());
  Matrix out(rows, a.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    SBRL_CHECK(idx[i] >= 0 && idx[i] < rows);
    for (int64_t c = 0; c < a.cols(); ++c) {
      out(idx[i], c) += a(static_cast<int64_t>(i), c);
    }
  }
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.rows(), b.rows());
  const int64_t ac = a.cols(), bc = b.cols();
  Matrix out(a.rows(), ac + bc);
  const size_t a_bytes = static_cast<size_t>(ac) * sizeof(double);
  const size_t b_bytes = static_cast<size_t>(bc) * sizeof(double);
  double* od = out.data();
  for (int64_t r = 0; r < a.rows(); ++r) {
    std::memcpy(od + r * (ac + bc), a.data() + r * ac, a_bytes);
    std::memcpy(od + r * (ac + bc) + ac, b.data() + r * bc, b_bytes);
  }
  return out;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  std::memcpy(out.data(), a.data(),
              static_cast<size_t>(a.size()) * sizeof(double));
  std::memcpy(out.data() + a.size(), b.data(),
              static_cast<size_t>(b.size()) * sizeof(double));
  return out;
}

Matrix PairwiseSquaredDistances(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.cols(), b.cols());
  Matrix cross = MatmulTransB(a, b);   // (n x m)
  Matrix a2 = RowSum(Hadamard(a, a));  // (n x 1)
  Matrix b2 = RowSum(Hadamard(b, b));  // (m x 1)
  const int64_t n = a.rows(), m = b.rows();
  Matrix out(n, m);
  const double* cd = cross.data();
  const double* a2d = a2.data();
  const double* b2d = b2.data();
  double* od = out.data();
  const auto fill_rows = [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double ai = a2d[i];
      const double* crow = cd + i * m;
      double* orow = od + i * m;
      for (int64_t j = 0; j < m; ++j) {
        const double d = ai + b2d[j] - 2.0 * crow[j];
        orow[j] = d > 0.0 ? d : 0.0;  // guard tiny negative round-off
      }
    }
  };
  if (n * m <= SerialCutoff()) {
    fill_rows(0, n);
  } else {
    ParallelFor(0, n, GrainRows(m), fill_rows);
  }
  return out;
}

double Dot(const Matrix& a, const Matrix& b) {
  SBRL_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double StdDev(const Matrix& a) {
  SBRL_CHECK_GT(a.size(), 0);
  const double mu = a.Mean();
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace sbrl

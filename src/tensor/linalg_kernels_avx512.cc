// AVX-512 (x86-64-v4) kernel set of the ISA-dispatch tables. Compiled
// with -march=x86-64-v4 -ffp-contract=off; see linalg_kernels_avx2.cc
// for why the contract flag is load-bearing. Same determinism split:
// MatmulRows / MatmulTransARows / BlockCrossFwd are bitwise identical
// to baseline (8-lane zmm over the independent output dimension,
// separate multiply and add, scalar tails repeating the same chain);
// MatmulTransBRows / BlockCrossGradDw collapse FMA lanes through
// _mm512_reduce_add_pd — a fixed reduction tree per build — so they
// are deterministic and chunk-invariant within this level but agree
// with baseline only to rounding.

#include "tensor/kernels_impl.h"

#if defined(SBRL_HAVE_ISA_AVX512) && defined(__AVX512F__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include <algorithm>

namespace sbrl {
namespace linalg_kernels {

namespace {

// Same j-panel width as the baseline kernel.
constexpr int64_t kJBlock = 128;

/// Lane mask selecting the low 5 doubles of a zmm — the B = 5 block
/// kernels below keep 5-wide rows in masked 8-lane registers.
constexpr __mmask8 kMask5 = 0x1F;

}  // namespace

// The matmul tile kernel is the shared baseline SOURCE, auto-vectorized
// at this TU's -march level; see linalg_kernels_avx2.cc for why this
// beats a hand-written register-accumulator kernel.
#define SBRL_MATMUL_ROWS_KERNEL_NAME Avx512MatmulRows
#include "tensor/matmul_rows_kernel.inc"
#undef SBRL_MATMUL_ROWS_KERNEL_NAME

void Avx512MatmulTransARows(const double* __restrict ad,
                            const double* __restrict bd, double* __restrict od,
                            int64_t k, int64_t n, int64_t m, int64_t r0,
                            int64_t r1) {
  for (int64_t p = 0; p < k; ++p) {
    const double* acol = ad + p * n;
    const double* brow = bd + p * m;
    for (int64_t i = r0; i < r1; ++i) {
      const __m512d av = _mm512_set1_pd(acol[i]);
      double* orow = od + i * m;
      int64_t j = 0;
      for (; j + 8 <= m; j += 8) {
        const __m512d bv = _mm512_loadu_pd(brow + j);
        const __m512d ov = _mm512_loadu_pd(orow + j);
        _mm512_storeu_pd(orow + j, _mm512_add_pd(ov, _mm512_mul_pd(av, bv)));
      }
      const double avs = acol[i];
      for (; j < m; ++j) orow[j] += avs * brow[j];
    }
  }
}

namespace {

/// One (i, j) dot product over k: 8-lane FMA chain ascending p,
/// _mm512_reduce_add_pd, then the scalar remainder added last.
inline double DotAvx512(const double* __restrict a, const double* __restrict b,
                        int64_t k) {
  __m512d acc = _mm512_setzero_pd();
  int64_t p = 0;
  for (; p + 8 <= k; p += 8) {
    acc = _mm512_fmadd_pd(_mm512_loadu_pd(a + p), _mm512_loadu_pd(b + p),
                          acc);
  }
  double total = _mm512_reduce_add_pd(acc);
  for (; p < k; ++p) total += a[p] * b[p];
  return total;
}

}  // namespace

void Avx512MatmulTransBRows(const double* __restrict ad,
                            const double* __restrict bd, double* __restrict od,
                            int64_t k, int64_t m, int64_t r0, int64_t r1) {
  int64_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const double* a0 = ad + i * k;
    const double* a1 = a0 + k;
    double* o0 = od + i * m;
    double* o1 = o0 + m;
    int64_t j = 0;
    for (; j + 2 <= m; j += 2) {
      const double* b0 = bd + j * k;
      const double* b1 = b0 + k;
      o0[j] += DotAvx512(a0, b0, k);
      o0[j + 1] += DotAvx512(a0, b1, k);
      o1[j] += DotAvx512(a1, b0, k);
      o1[j + 1] += DotAvx512(a1, b1, k);
    }
    for (; j < m; ++j) {
      const double* brow = bd + j * k;
      o0[j] += DotAvx512(a0, brow, k);
      o1[j] += DotAvx512(a1, brow, k);
    }
  }
  for (; i < r1; ++i) {
    const double* arow = ad + i * k;
    double* orow = od + i * m;
    for (int64_t j = 0; j < m; ++j) {
      orow[j] += DotAvx512(arow, bd + j * k, k);
    }
  }
}

namespace {

/// Forward weighted cross for B = 4 (256-bit lanes; VL encodings keep
/// IEEE semantics, so the chain is bitwise the baseline's).
void BlockCrossFwd4(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 4;
    const int64_t cb = pd[p].second * 4;
    __m256d acc[4];
    for (int r = 0; r < 4; ++r) acc[r] = _mm256_setzero_pd();
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const __m256d bv = _mm256_loadu_pd(frow + cb);
      for (int r = 0; r < 4; ++r) {
        acc[r] = _mm256_add_pd(
            acc[r], _mm256_mul_pd(_mm256_set1_pd(arow[r] * wi), bv));
      }
    }
    double* ob = od + p * 16;
    for (int r = 0; r < 4; ++r) {
      double* orow = ob + r * 4;
      _mm256_storeu_pd(orow, _mm256_add_pd(_mm256_loadu_pd(orow), acc[r]));
    }
  }
}

/// Forward weighted cross for B = 5: masked 8-lane rows, five register
/// accumulators per pair, ascending-row chains bitwise the baseline's.
void BlockCrossFwd5(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 5;
    const int64_t cb = pd[p].second * 5;
    __m512d acc[5];
    for (int r = 0; r < 5; ++r) acc[r] = _mm512_setzero_pd();
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const __m512d bv = _mm512_maskz_loadu_pd(kMask5, frow + cb);
      for (int r = 0; r < 5; ++r) {
        acc[r] = _mm512_add_pd(
            acc[r], _mm512_mul_pd(_mm512_set1_pd(arow[r] * wi), bv));
      }
    }
    double* ob = od + p * 25;
    for (int r = 0; r < 5; ++r) {
      double* orow = ob + r * 5;
      const __m512d ov = _mm512_maskz_loadu_pd(kMask5, orow);
      _mm512_mask_storeu_pd(orow, kMask5, _mm512_add_pd(ov, acc[r]));
    }
  }
}

/// Forward weighted cross for B = 8: one zmm accumulator per output
/// row, the natural shape of this level.
void BlockCrossFwd8(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 8;
    const int64_t cb = pd[p].second * 8;
    __m512d acc[8];
    for (int r = 0; r < 8; ++r) acc[r] = _mm512_setzero_pd();
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const __m512d bv = _mm512_loadu_pd(frow + cb);
      for (int r = 0; r < 8; ++r) {
        acc[r] = _mm512_add_pd(
            acc[r], _mm512_mul_pd(_mm512_set1_pd(arow[r] * wi), bv));
      }
    }
    double* ob = od + p * 64;
    for (int r = 0; r < 8; ++r) {
      double* orow = ob + r * 8;
      _mm512_storeu_pd(orow, _mm512_add_pd(_mm512_loadu_pd(orow), acc[r]));
    }
  }
}

/// dw-only backward for B in {4, 5, 8}: per pair, transpose the
/// gradient block once, then every row builds S_r = sum_c g(r, c) b(c)
/// as an ascending-c FMA chain over column vectors and collapses
/// sum_r a(r) S_r through the fixed _mm512_reduce_add_pd tree.
/// dwd[i] accumulates one pair contribution at a time (ascending p) —
/// tolerance-bounded against baseline, chunk-invariant within level.
template <int B>
void BlockCrossGradDwImpl(const double* __restrict gd,
                          const double* __restrict fd, double* __restrict dwd,
                          int64_t fcols, const std::pair<int64_t, int64_t>* pd,
                          int64_t num_pairs, int64_t r0, int64_t r1) {
  static_assert(B == 5 || B == 8, "unsupported block");
  const __mmask8 mask = B == 8 ? static_cast<__mmask8>(0xFF) : kMask5;
  for (int64_t p = 0; p < num_pairs; ++p) {
    const int64_t ca = pd[p].first * B;
    const int64_t cb = pd[p].second * B;
    const double* gblock = gd + p * B * B;
    double gt[B * B];
    for (int r = 0; r < B; ++r) {
      for (int c = 0; c < B; ++c) gt[c * B + r] = gblock[r * B + c];
    }
    for (int64_t i = r0; i < r1; ++i) {
      const double* frow = fd + i * fcols;
      const double* brow = frow + cb;
      __m512d s = _mm512_setzero_pd();
      for (int c = 0; c < B; ++c) {
        const __m512d gcol = _mm512_maskz_loadu_pd(mask, gt + c * B);
        s = _mm512_fmadd_pd(_mm512_set1_pd(brow[c]), gcol, s);
      }
      const __m512d av = _mm512_maskz_loadu_pd(mask, frow + ca);
      dwd[i] += _mm512_reduce_add_pd(_mm512_mul_pd(av, s));
    }
  }
}

/// dw-only backward for B = 4 with 256-bit lanes and the AVX2
/// fixed-shape horizontal sum (v0+v2)+(v1+v3).
void BlockCrossGradDw4(const double* __restrict gd,
                       const double* __restrict fd, double* __restrict dwd,
                       int64_t fcols, const std::pair<int64_t, int64_t>* pd,
                       int64_t num_pairs, int64_t r0, int64_t r1) {
  for (int64_t p = 0; p < num_pairs; ++p) {
    const int64_t ca = pd[p].first * 4;
    const int64_t cb = pd[p].second * 4;
    const double* gblock = gd + p * 16;
    double gt[16];
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) gt[c * 4 + r] = gblock[r * 4 + c];
    }
    for (int64_t i = r0; i < r1; ++i) {
      const double* frow = fd + i * fcols;
      const double* brow = frow + cb;
      __m256d s = _mm256_setzero_pd();
      for (int c = 0; c < 4; ++c) {
        s = _mm256_fmadd_pd(_mm256_set1_pd(brow[c]),
                            _mm256_loadu_pd(gt + c * 4), s);
      }
      const __m256d acc = _mm256_mul_pd(_mm256_loadu_pd(frow + ca), s);
      const __m128d lo = _mm256_castpd256_pd128(acc);
      const __m128d hi = _mm256_extractf128_pd(acc, 1);
      const __m128d pair = _mm_add_pd(lo, hi);
      const __m128d swap = _mm_unpackhi_pd(pair, pair);
      dwd[i] += _mm_cvtsd_f64(_mm_add_sd(pair, swap));
    }
  }
}

}  // namespace

bool Avx512BlockCrossFwd(int64_t block, const double* fd, const double* wd,
                         double* od, int64_t n, int64_t fcols,
                         const std::pair<int64_t, int64_t>* pd, int64_t p0,
                         int64_t p1) {
  switch (block) {
    case 4: BlockCrossFwd4(fd, wd, od, n, fcols, pd, p0, p1); return true;
    case 5: BlockCrossFwd5(fd, wd, od, n, fcols, pd, p0, p1); return true;
    case 8: BlockCrossFwd8(fd, wd, od, n, fcols, pd, p0, p1); return true;
    default: return false;  // kernels.cc falls back to baseline
  }
}

bool Avx512BlockCrossGradDw(int64_t block, const double* gd, const double* fd,
                            double* dwd, int64_t fcols,
                            const std::pair<int64_t, int64_t>* pd,
                            int64_t num_pairs, int64_t r0, int64_t r1) {
  switch (block) {
    case 4:
      BlockCrossGradDw4(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    case 5:
      BlockCrossGradDwImpl<5>(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    case 8:
      BlockCrossGradDwImpl<8>(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    default: return false;
  }
}

}  // namespace linalg_kernels
}  // namespace sbrl

#endif  // SBRL_HAVE_ISA_AVX512 && __AVX512F__ && __AVX512VL__

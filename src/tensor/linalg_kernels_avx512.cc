// AVX-512 (x86-64-v4) kernel set of the ISA-dispatch tables. Compiled
// with -march=x86-64-v4 -ffp-contract=off; see linalg_kernels_avx2.cc
// for why the contract flag is load-bearing. Same determinism split:
// MatmulRows / MatmulTransARows / BlockCrossFwd are bitwise identical
// to baseline (8-lane zmm over the independent output dimension,
// separate multiply and add, scalar tails repeating the same chain);
// MatmulTransBRows / BlockCrossGradDw collapse FMA lanes through
// _mm512_reduce_add_pd — a fixed reduction tree per build — so they
// are deterministic and chunk-invariant within this level but agree
// with baseline only to rounding.

#include "tensor/kernels_impl.h"

#if defined(SBRL_HAVE_ISA_AVX512) && defined(__AVX512F__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include <algorithm>

namespace sbrl {
namespace linalg_kernels {

namespace {

// Same j-panel width as the baseline kernel.
constexpr int64_t kJBlock = 128;

/// Lane mask selecting the low 5 doubles of a zmm — the B = 5 block
/// kernels below keep 5-wide rows in masked 8-lane registers.
constexpr __mmask8 kMask5 = 0x1F;

}  // namespace

// The matmul tile kernel is the shared baseline SOURCE, auto-vectorized
// at this TU's -march level; see linalg_kernels_avx2.cc for why this
// beats a hand-written register-accumulator kernel.
#define SBRL_MATMUL_ROWS_KERNEL_NAME Avx512MatmulRows
#include "tensor/matmul_rows_kernel.inc"
#undef SBRL_MATMUL_ROWS_KERNEL_NAME

// f32 matmul tile: the shared source on floats, auto-vectorized to
// 16-lane zmm — bitwise identical to the f32 baseline by the same
// argument as the f64 pair.
#define SBRL_MATMUL_ROWS_KERNEL_NAME Avx512MatmulRowsF32
#define SBRL_MATMUL_ROWS_KERNEL_TYPE float
#include "tensor/matmul_rows_kernel.inc"
#undef SBRL_MATMUL_ROWS_KERNEL_TYPE
#undef SBRL_MATMUL_ROWS_KERNEL_NAME

void Avx512MatmulTransARows(const double* __restrict ad,
                            const double* __restrict bd, double* __restrict od,
                            int64_t k, int64_t n, int64_t m, int64_t r0,
                            int64_t r1) {
  for (int64_t p = 0; p < k; ++p) {
    const double* acol = ad + p * n;
    const double* brow = bd + p * m;
    for (int64_t i = r0; i < r1; ++i) {
      const __m512d av = _mm512_set1_pd(acol[i]);
      double* orow = od + i * m;
      int64_t j = 0;
      for (; j + 8 <= m; j += 8) {
        const __m512d bv = _mm512_loadu_pd(brow + j);
        const __m512d ov = _mm512_loadu_pd(orow + j);
        _mm512_storeu_pd(orow + j, _mm512_add_pd(ov, _mm512_mul_pd(av, bv)));
      }
      const double avs = acol[i];
      for (; j < m; ++j) orow[j] += avs * brow[j];
    }
  }
}

namespace {

/// One (i, j) dot product over k: 8-lane FMA chain ascending p,
/// _mm512_reduce_add_pd, then the scalar remainder added last.
inline double DotAvx512(const double* __restrict a, const double* __restrict b,
                        int64_t k) {
  __m512d acc = _mm512_setzero_pd();
  int64_t p = 0;
  for (; p + 8 <= k; p += 8) {
    acc = _mm512_fmadd_pd(_mm512_loadu_pd(a + p), _mm512_loadu_pd(b + p),
                          acc);
  }
  double total = _mm512_reduce_add_pd(acc);
  for (; p < k; ++p) total += a[p] * b[p];
  return total;
}

}  // namespace

void Avx512MatmulTransBRows(const double* __restrict ad,
                            const double* __restrict bd, double* __restrict od,
                            int64_t k, int64_t m, int64_t r0, int64_t r1) {
  // Blocked panel: 2 A rows x 4 B rows share one ascending-k pass (see
  // the AVX2 kernel for the load-reuse arithmetic). Every output
  // element still runs EXACTLY DotAvx512's operation sequence, so the
  // panel kernel is bitwise identical to the 2x2-of-dots kernel it
  // replaces and chunk-invariant within this level.
  int64_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const double* a0 = ad + i * k;
    const double* a1 = a0 + k;
    double* o0 = od + i * m;
    double* o1 = o0 + m;
    int64_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const double* b0 = bd + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      __m512d c00 = _mm512_setzero_pd(), c01 = _mm512_setzero_pd();
      __m512d c02 = _mm512_setzero_pd(), c03 = _mm512_setzero_pd();
      __m512d c10 = _mm512_setzero_pd(), c11 = _mm512_setzero_pd();
      __m512d c12 = _mm512_setzero_pd(), c13 = _mm512_setzero_pd();
      int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m512d va0 = _mm512_loadu_pd(a0 + p);
        const __m512d va1 = _mm512_loadu_pd(a1 + p);
        const __m512d vb0 = _mm512_loadu_pd(b0 + p);
        c00 = _mm512_fmadd_pd(va0, vb0, c00);
        c10 = _mm512_fmadd_pd(va1, vb0, c10);
        const __m512d vb1 = _mm512_loadu_pd(b1 + p);
        c01 = _mm512_fmadd_pd(va0, vb1, c01);
        c11 = _mm512_fmadd_pd(va1, vb1, c11);
        const __m512d vb2 = _mm512_loadu_pd(b2 + p);
        c02 = _mm512_fmadd_pd(va0, vb2, c02);
        c12 = _mm512_fmadd_pd(va1, vb2, c12);
        const __m512d vb3 = _mm512_loadu_pd(b3 + p);
        c03 = _mm512_fmadd_pd(va0, vb3, c03);
        c13 = _mm512_fmadd_pd(va1, vb3, c13);
      }
      double t00 = _mm512_reduce_add_pd(c00);
      double t01 = _mm512_reduce_add_pd(c01);
      double t02 = _mm512_reduce_add_pd(c02);
      double t03 = _mm512_reduce_add_pd(c03);
      double t10 = _mm512_reduce_add_pd(c10);
      double t11 = _mm512_reduce_add_pd(c11);
      double t12 = _mm512_reduce_add_pd(c12);
      double t13 = _mm512_reduce_add_pd(c13);
      for (; p < k; ++p) {
        const double a0p = a0[p], a1p = a1[p];
        t00 += a0p * b0[p]; t01 += a0p * b1[p];
        t02 += a0p * b2[p]; t03 += a0p * b3[p];
        t10 += a1p * b0[p]; t11 += a1p * b1[p];
        t12 += a1p * b2[p]; t13 += a1p * b3[p];
      }
      o0[j] += t00; o0[j + 1] += t01; o0[j + 2] += t02; o0[j + 3] += t03;
      o1[j] += t10; o1[j + 1] += t11; o1[j + 2] += t12; o1[j + 3] += t13;
    }
    for (; j < m; ++j) {
      const double* brow = bd + j * k;
      o0[j] += DotAvx512(a0, brow, k);
      o1[j] += DotAvx512(a1, brow, k);
    }
  }
  for (; i < r1; ++i) {
    const double* arow = ad + i * k;
    double* orow = od + i * m;
    for (int64_t j = 0; j < m; ++j) {
      orow[j] += DotAvx512(arow, bd + j * k, k);
    }
  }
}

namespace {

/// Forward weighted cross for B = 4 (256-bit lanes; VL encodings keep
/// IEEE semantics, so the chain is bitwise the baseline's).
void BlockCrossFwd4(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 4;
    const int64_t cb = pd[p].second * 4;
    __m256d acc[4];
    for (int r = 0; r < 4; ++r) acc[r] = _mm256_setzero_pd();
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const __m256d bv = _mm256_loadu_pd(frow + cb);
      for (int r = 0; r < 4; ++r) {
        acc[r] = _mm256_add_pd(
            acc[r], _mm256_mul_pd(_mm256_set1_pd(arow[r] * wi), bv));
      }
    }
    double* ob = od + p * 16;
    for (int r = 0; r < 4; ++r) {
      double* orow = ob + r * 4;
      _mm256_storeu_pd(orow, _mm256_add_pd(_mm256_loadu_pd(orow), acc[r]));
    }
  }
}

/// Forward weighted cross for B = 5: masked 8-lane rows, five register
/// accumulators per pair, ascending-row chains bitwise the baseline's.
void BlockCrossFwd5(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 5;
    const int64_t cb = pd[p].second * 5;
    __m512d acc[5];
    for (int r = 0; r < 5; ++r) acc[r] = _mm512_setzero_pd();
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const __m512d bv = _mm512_maskz_loadu_pd(kMask5, frow + cb);
      for (int r = 0; r < 5; ++r) {
        acc[r] = _mm512_add_pd(
            acc[r], _mm512_mul_pd(_mm512_set1_pd(arow[r] * wi), bv));
      }
    }
    double* ob = od + p * 25;
    for (int r = 0; r < 5; ++r) {
      double* orow = ob + r * 5;
      const __m512d ov = _mm512_maskz_loadu_pd(kMask5, orow);
      _mm512_mask_storeu_pd(orow, kMask5, _mm512_add_pd(ov, acc[r]));
    }
  }
}

/// Forward weighted cross for B = 8: one zmm accumulator per output
/// row, the natural shape of this level.
void BlockCrossFwd8(const double* __restrict fd, const double* __restrict wd,
                    double* __restrict od, int64_t n, int64_t fcols,
                    const std::pair<int64_t, int64_t>* pd, int64_t p0,
                    int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * 8;
    const int64_t cb = pd[p].second * 8;
    __m512d acc[8];
    for (int r = 0; r < 8; ++r) acc[r] = _mm512_setzero_pd();
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const __m512d bv = _mm512_loadu_pd(frow + cb);
      for (int r = 0; r < 8; ++r) {
        acc[r] = _mm512_add_pd(
            acc[r], _mm512_mul_pd(_mm512_set1_pd(arow[r] * wi), bv));
      }
    }
    double* ob = od + p * 64;
    for (int r = 0; r < 8; ++r) {
      double* orow = ob + r * 8;
      _mm512_storeu_pd(orow, _mm512_add_pd(_mm512_loadu_pd(orow), acc[r]));
    }
  }
}

/// dw-only backward for B in {4, 5, 8}: per pair, transpose the
/// gradient block once, then every row builds S_r = sum_c g(r, c) b(c)
/// as an ascending-c FMA chain over column vectors and collapses
/// sum_r a(r) S_r through the fixed _mm512_reduce_add_pd tree.
/// dwd[i] accumulates one pair contribution at a time (ascending p) —
/// tolerance-bounded against baseline, chunk-invariant within level.
template <int B>
void BlockCrossGradDwImpl(const double* __restrict gd,
                          const double* __restrict fd, double* __restrict dwd,
                          int64_t fcols, const std::pair<int64_t, int64_t>* pd,
                          int64_t num_pairs, int64_t r0, int64_t r1) {
  static_assert(B == 5 || B == 8, "unsupported block");
  const __mmask8 mask = B == 8 ? static_cast<__mmask8>(0xFF) : kMask5;
  for (int64_t p = 0; p < num_pairs; ++p) {
    const int64_t ca = pd[p].first * B;
    const int64_t cb = pd[p].second * B;
    const double* gblock = gd + p * B * B;
    double gt[B * B];
    for (int r = 0; r < B; ++r) {
      for (int c = 0; c < B; ++c) gt[c * B + r] = gblock[r * B + c];
    }
    for (int64_t i = r0; i < r1; ++i) {
      const double* frow = fd + i * fcols;
      const double* brow = frow + cb;
      __m512d s = _mm512_setzero_pd();
      for (int c = 0; c < B; ++c) {
        const __m512d gcol = _mm512_maskz_loadu_pd(mask, gt + c * B);
        s = _mm512_fmadd_pd(_mm512_set1_pd(brow[c]), gcol, s);
      }
      const __m512d av = _mm512_maskz_loadu_pd(mask, frow + ca);
      dwd[i] += _mm512_reduce_add_pd(_mm512_mul_pd(av, s));
    }
  }
}

/// dw-only backward for B = 4 with 256-bit lanes and the AVX2
/// fixed-shape horizontal sum (v0+v2)+(v1+v3).
void BlockCrossGradDw4(const double* __restrict gd,
                       const double* __restrict fd, double* __restrict dwd,
                       int64_t fcols, const std::pair<int64_t, int64_t>* pd,
                       int64_t num_pairs, int64_t r0, int64_t r1) {
  for (int64_t p = 0; p < num_pairs; ++p) {
    const int64_t ca = pd[p].first * 4;
    const int64_t cb = pd[p].second * 4;
    const double* gblock = gd + p * 16;
    double gt[16];
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) gt[c * 4 + r] = gblock[r * 4 + c];
    }
    for (int64_t i = r0; i < r1; ++i) {
      const double* frow = fd + i * fcols;
      const double* brow = frow + cb;
      __m256d s = _mm256_setzero_pd();
      for (int c = 0; c < 4; ++c) {
        s = _mm256_fmadd_pd(_mm256_set1_pd(brow[c]),
                            _mm256_loadu_pd(gt + c * 4), s);
      }
      const __m256d acc = _mm256_mul_pd(_mm256_loadu_pd(frow + ca), s);
      const __m128d lo = _mm256_castpd256_pd128(acc);
      const __m128d hi = _mm256_extractf128_pd(acc, 1);
      const __m128d pair = _mm_add_pd(lo, hi);
      const __m128d swap = _mm_unpackhi_pd(pair, pair);
      dwd[i] += _mm_cvtsd_f64(_mm_add_sd(pair, swap));
    }
  }
}

}  // namespace

void Avx512BlockCrossFwdGeneric(const double* ad, int64_t acols,
                                const double* bd, int64_t bcols,
                                const double* wd, double* od, int64_t n,
                                int64_t block,
                                const std::pair<int64_t, int64_t>* pd,
                                int64_t p0, int64_t p1) {
  // Generic any-block-size pair forward: baseline loop order with
  // 8-lane zmm vectors over the independent output columns only
  // (separate multiply and add, scalar tail repeating the same chain),
  // so every output element keeps the baseline's ascending-(i, r)
  // accumulation chain — bitwise == sliced MatmulTransA.
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * block;
    const int64_t cb = pd[p].second * block;
    double* oblock = od + p * block * block;
    for (int64_t i = 0; i < n; ++i) {
      const double* arow = ad + i * acols + ca;
      const double* brow = bd + i * bcols + cb;
      const double wi = wd != nullptr ? wd[i] : 0.0;
      for (int64_t r = 0; r < block; ++r) {
        const double av = wd != nullptr ? arow[r] * wi : arow[r];
        const __m512d avv = _mm512_set1_pd(av);
        double* orow = oblock + r * block;
        int64_t c = 0;
        for (; c + 8 <= block; c += 8) {
          const __m512d bv = _mm512_loadu_pd(brow + c);
          const __m512d ov = _mm512_loadu_pd(orow + c);
          _mm512_storeu_pd(orow + c,
                           _mm512_add_pd(ov, _mm512_mul_pd(avv, bv)));
        }
        for (; c < block; ++c) orow[c] += av * brow[c];
      }
    }
  }
}

bool Avx512BlockCrossFwd(int64_t block, const double* fd, const double* wd,
                         double* od, int64_t n, int64_t fcols,
                         const std::pair<int64_t, int64_t>* pd, int64_t p0,
                         int64_t p1) {
  switch (block) {
    case 4: BlockCrossFwd4(fd, wd, od, n, fcols, pd, p0, p1); return true;
    case 5: BlockCrossFwd5(fd, wd, od, n, fcols, pd, p0, p1); return true;
    case 8: BlockCrossFwd8(fd, wd, od, n, fcols, pd, p0, p1); return true;
    default: return false;  // kernels.cc falls back to baseline
  }
}

bool Avx512BlockCrossGradDw(int64_t block, const double* gd, const double* fd,
                            double* dwd, int64_t fcols,
                            const std::pair<int64_t, int64_t>* pd,
                            int64_t num_pairs, int64_t r0, int64_t r1) {
  switch (block) {
    case 4:
      BlockCrossGradDw4(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    case 5:
      BlockCrossGradDwImpl<5>(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    case 8:
      BlockCrossGradDwImpl<8>(gd, fd, dwd, fcols, pd, num_pairs, r0, r1);
      return true;
    default: return false;
  }
}

void Avx512MatmulTransARowsF32(const float* __restrict ad,
                               const float* __restrict bd,
                               float* __restrict od, int64_t k, int64_t n,
                               int64_t m, int64_t r0, int64_t r1) {
  // f32 restatement of Avx512MatmulTransARows: reduction index p stays
  // outermost-ascending, 16-lane zmm over the independent output
  // columns with separate multiply and add — bitwise identical to the
  // f32 baseline.
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = ad + p * n;
    const float* brow = bd + p * m;
    for (int64_t i = r0; i < r1; ++i) {
      const float av = arow[i];
      const __m512 avv = _mm512_set1_ps(av);
      float* orow = od + i * m;
      int64_t j = 0;
      for (; j + 16 <= m; j += 16) {
        const __m512 bv = _mm512_loadu_ps(brow + j);
        const __m512 ov = _mm512_loadu_ps(orow + j);
        _mm512_storeu_ps(orow + j, _mm512_add_ps(ov, _mm512_mul_ps(avv, bv)));
      }
      for (; j < m; ++j) orow[j] += av * brow[j];
    }
  }
}

namespace {

/// 16-lane f32 dot product: FMA accumulator lanes in ascending p, one
/// fixed-shape _mm512_reduce_add_ps, scalar remainder last. The f32
/// trans-B determinism shape (chunk-invariant within this level,
/// tolerance vs the f32 baseline).
inline float DotAvx512F32(const float* __restrict a,
                          const float* __restrict b, int64_t k) {
  __m512 acc = _mm512_setzero_ps();
  int64_t p = 0;
  for (; p + 16 <= k; p += 16) {
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + p), _mm512_loadu_ps(b + p),
                          acc);
  }
  float t = _mm512_reduce_add_ps(acc);
  for (; p < k; ++p) t += a[p] * b[p];
  return t;
}

}  // namespace

void Avx512MatmulTransBRowsF32(const float* __restrict ad,
                               const float* __restrict bd,
                               float* __restrict od, int64_t k, int64_t m,
                               int64_t r0, int64_t r1) {
  // f32 blocked panel, same shape as the f64 kernel above: 2 A rows x
  // 4 B rows share one ascending-p FMA pass; each element runs exactly
  // DotAvx512F32's operation sequence.
  int64_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const float* a0 = ad + i * k;
    const float* a1 = a0 + k;
    float* o0 = od + i * m;
    float* o1 = o0 + m;
    int64_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const float* b0 = bd + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      __m512 c00 = _mm512_setzero_ps(), c01 = _mm512_setzero_ps();
      __m512 c02 = _mm512_setzero_ps(), c03 = _mm512_setzero_ps();
      __m512 c10 = _mm512_setzero_ps(), c11 = _mm512_setzero_ps();
      __m512 c12 = _mm512_setzero_ps(), c13 = _mm512_setzero_ps();
      int64_t p = 0;
      for (; p + 16 <= k; p += 16) {
        const __m512 va0 = _mm512_loadu_ps(a0 + p);
        const __m512 va1 = _mm512_loadu_ps(a1 + p);
        const __m512 vb0 = _mm512_loadu_ps(b0 + p);
        c00 = _mm512_fmadd_ps(va0, vb0, c00);
        c10 = _mm512_fmadd_ps(va1, vb0, c10);
        const __m512 vb1 = _mm512_loadu_ps(b1 + p);
        c01 = _mm512_fmadd_ps(va0, vb1, c01);
        c11 = _mm512_fmadd_ps(va1, vb1, c11);
        const __m512 vb2 = _mm512_loadu_ps(b2 + p);
        c02 = _mm512_fmadd_ps(va0, vb2, c02);
        c12 = _mm512_fmadd_ps(va1, vb2, c12);
        const __m512 vb3 = _mm512_loadu_ps(b3 + p);
        c03 = _mm512_fmadd_ps(va0, vb3, c03);
        c13 = _mm512_fmadd_ps(va1, vb3, c13);
      }
      float t00 = _mm512_reduce_add_ps(c00);
      float t01 = _mm512_reduce_add_ps(c01);
      float t02 = _mm512_reduce_add_ps(c02);
      float t03 = _mm512_reduce_add_ps(c03);
      float t10 = _mm512_reduce_add_ps(c10);
      float t11 = _mm512_reduce_add_ps(c11);
      float t12 = _mm512_reduce_add_ps(c12);
      float t13 = _mm512_reduce_add_ps(c13);
      for (; p < k; ++p) {
        const float a0p = a0[p], a1p = a1[p];
        t00 += a0p * b0[p]; t01 += a0p * b1[p];
        t02 += a0p * b2[p]; t03 += a0p * b3[p];
        t10 += a1p * b0[p]; t11 += a1p * b1[p];
        t12 += a1p * b2[p]; t13 += a1p * b3[p];
      }
      o0[j] += t00; o0[j + 1] += t01; o0[j + 2] += t02; o0[j + 3] += t03;
      o1[j] += t10; o1[j + 1] += t11; o1[j + 2] += t12; o1[j + 3] += t13;
    }
    for (; j < m; ++j) {
      const float* brow = bd + j * k;
      o0[j] += DotAvx512F32(a0, brow, k);
      o1[j] += DotAvx512F32(a1, brow, k);
    }
  }
  for (; i < r1; ++i) {
    const float* arow = ad + i * k;
    float* orow = od + i * m;
    for (int64_t j = 0; j < m; ++j) {
      orow[j] += DotAvx512F32(arow, bd + j * k, k);
    }
  }
}

}  // namespace linalg_kernels
}  // namespace sbrl

#endif  // SBRL_HAVE_ISA_AVX512 && __AVX512F__ && __AVX512VL__

#include "tensor/random.h"

#include <algorithm>
#include <numeric>

namespace sbrl {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

Matrix Rng::Randn(int64_t rows, int64_t cols, double mean, double stddev) {
  Matrix out(rows, cols);
  std::normal_distribution<double> dist(mean, stddev);
  for (int64_t i = 0; i < out.size(); ++i) out[i] = dist(engine_);
  return out;
}

Matrix Rng::Rand(int64_t rows, int64_t cols, double lo, double hi) {
  Matrix out(rows, cols);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (int64_t i = 0; i < out.size(); ++i) out[i] = dist(engine_);
  return out;
}

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> idx(static_cast<size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  std::shuffle(idx.begin(), idx.end(), engine_);
  return idx;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  SBRL_CHECK_LE(k, n);
  std::vector<int64_t> idx = Permutation(n);
  idx.resize(static_cast<size_t>(k));
  return idx;
}

Rng Rng::Fork() {
  // Mix the parent stream into a fresh seed; splitting by drawing a
  // 64-bit value keeps parent and child streams decorrelated.
  return Rng(engine_());
}

}  // namespace sbrl

#include "tensor/matrix_f32.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sbrl {

MatrixF32 MatrixF32::FromF64(const Matrix& src) {
  MatrixF32 out;
  out.ResetNarrowOf(src);
  return out;
}

std::string MatrixF32::ShapeString() const {
  std::ostringstream os;
  os << "(" << rows_ << "x" << cols_ << ")";
  return os.str();
}

void MatrixF32::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void MatrixF32::ResetZero(int64_t rows, int64_t cols) {
  SBRL_CHECK_GE(rows, 0);
  SBRL_CHECK_GE(cols, 0);
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<size_t>(rows * cols), 0.0f);
}

void MatrixF32::ResetNarrowOf(const Matrix& src) {
  rows_ = src.rows();
  cols_ = src.cols();
  data_.resize(static_cast<size_t>(src.size()));
  const double* sd = src.data();
  float* od = data_.data();
  const int64_t n = src.size();
  for (int64_t i = 0; i < n; ++i) od[i] = static_cast<float>(sd[i]);
}

Matrix MatrixF32::ToF64() const {
  Matrix out(rows_, cols_);
  WidenInto(&out);
  return out;
}

void MatrixF32::WidenInto(Matrix* out) const {
  SBRL_CHECK(out != nullptr);
  out->ResetZero(rows_, cols_);
  const float* sd = data_.data();
  double* od = out->data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) od[i] = static_cast<double>(sd[i]);
}

bool AllClose(const MatrixF32& a, const MatrixF32& b, double tol) {
  if (!a.same_shape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])) > tol) {
      return false;
    }
  }
  return true;
}

}  // namespace sbrl

#ifndef SBRL_TENSOR_RANDOM_H_
#define SBRL_TENSOR_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "tensor/matrix.h"

namespace sbrl {

/// Deterministic random number generator. All stochastic components
/// (data generation, initialization, RFF draws, pair subsampling) take an
/// Rng so experiments and tests are exactly reproducible from a seed.
class Rng {
 public:
  /// Generator seeded deterministically with `seed`.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (or N(mean, stddev)) draw.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Matrix of iid N(mean, stddev) entries.
  Matrix Randn(int64_t rows, int64_t cols, double mean = 0.0,
               double stddev = 1.0);

  /// Matrix of iid Uniform[lo, hi) entries.
  Matrix Rand(int64_t rows, int64_t cols, double lo = 0.0, double hi = 1.0);

  /// Random permutation of {0, ..., n-1}.
  std::vector<int64_t> Permutation(int64_t n);

  /// k distinct indices sampled uniformly from {0, ..., n-1}, k <= n.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Derives an independent child generator; used to give each
  /// replication / module its own stream without coupling.
  Rng Fork();

  /// Direct access to the underlying engine (for std distributions).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sbrl

#endif  // SBRL_TENSOR_RANDOM_H_

#include "tensor/pool.h"

#include <algorithm>
#include <utility>

namespace sbrl {

Matrix MatrixPool::Take(int64_t size) {
  outstanding_ += size;
  if (outstanding_ > demand_high_water_) demand_high_water_ = outstanding_;
  // Smallest parked capacity that can hold the request. An oversized
  // buffer shrinks in the caller's Reset* without reallocating and
  // returns here keyed by its (unchanged) capacity.
  auto it = free_.lower_bound(size);
  if (it == free_.end()) {
    ++alloc_count_;
    return Matrix();
  }
  Matrix m = std::move(it->second.back());
  it->second.pop_back();
  free_elements_ -= it->first;
  if (it->second.empty()) free_.erase(it);
  --free_count_;
  ++reuse_count_;
  return m;
}

Matrix MatrixPool::AcquireZero(int64_t rows, int64_t cols) {
  Matrix m = Take(rows * cols);
  m.ResetZero(rows, cols);
  return m;
}

Matrix MatrixPool::AcquireCopy(const Matrix& src) {
  Matrix m = Take(src.size());
  m.ResetCopyOf(src);
  return m;
}

void MatrixPool::Release(Matrix&& m) {
  const int64_t capacity = m.capacity();
  if (capacity == 0) return;
  outstanding_ -= capacity;
  if (outstanding_ < 0) outstanding_ = 0;
  // Demand-bounded parking: beyond a small multiple of the largest
  // working set ever observed, returned storage goes back to the
  // allocator instead of the free list (see the class comment).
  const int64_t budget =
      std::max(kMinFreeElements, kFreeBudgetFactor * demand_high_water_);
  if (free_elements_ + capacity > budget) return;
  std::vector<Matrix>& list = free_[capacity];
  if (list.size() >= kMaxFreePerSize) return;  // drop: bounded memory
  list.push_back(std::move(m));
  ++free_count_;
  free_elements_ += capacity;
}

}  // namespace sbrl

#include "tensor/pool.h"

#include <utility>

namespace sbrl {

Matrix MatrixPool::Take(int64_t size) {
  auto it = free_.find(size);
  if (it == free_.end() || it->second.empty()) {
    ++alloc_count_;
    return Matrix();
  }
  Matrix m = std::move(it->second.back());
  it->second.pop_back();
  --free_count_;
  ++reuse_count_;
  return m;
}

Matrix MatrixPool::AcquireZero(int64_t rows, int64_t cols) {
  Matrix m = Take(rows * cols);
  m.ResetZero(rows, cols);
  return m;
}

Matrix MatrixPool::AcquireCopy(const Matrix& src) {
  Matrix m = Take(src.size());
  m.ResetCopyOf(src);
  return m;
}

void MatrixPool::Release(Matrix&& m) {
  if (m.size() == 0) return;
  std::vector<Matrix>& list = free_[m.size()];
  if (list.size() >= kMaxFreePerSize) return;  // drop: bounded memory
  list.push_back(std::move(m));
  ++free_count_;
}

}  // namespace sbrl

#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace sbrl {

Matrix Matrix::FromRows(
    std::initializer_list<std::initializer_list<double>> rows) {
  int64_t n = static_cast<int64_t>(rows.size());
  int64_t m = n == 0 ? 0 : static_cast<int64_t>(rows.begin()->size());
  Matrix out(n, m);
  int64_t r = 0;
  for (const auto& row : rows) {
    SBRL_CHECK_EQ(static_cast<int64_t>(row.size()), m)
        << "ragged rows in Matrix::FromRows";
    int64_t c = 0;
    for (double v : row) out(r, c++) = v;
    ++r;
  }
  return out;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix out(static_cast<int64_t>(values.size()), 1);
  std::copy(values.begin(), values.end(), out.data());
  return out;
}

Matrix Matrix::FromFlat(int64_t rows, int64_t cols,
                        AlignedVector<double>&& values) {
  SBRL_CHECK_GE(rows, 0);
  SBRL_CHECK_GE(cols, 0);
  SBRL_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  Matrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.data_ = std::move(values);
  return out;
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  Matrix out(1, static_cast<int64_t>(values.size()));
  std::copy(values.begin(), values.end(), out.data());
  return out;
}

Matrix Matrix::Identity(int64_t n) {
  Matrix out(n, n);
  for (int64_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

std::string Matrix::ShapeString() const {
  std::ostringstream os;
  os << "(" << rows_ << "x" << cols_ << ")";
  return os.str();
}

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::ResetZero(int64_t rows, int64_t cols) {
  SBRL_CHECK_GE(rows, 0);
  SBRL_CHECK_GE(cols, 0);
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<size_t>(rows * cols), 0.0);
}

void Matrix::ResetCopyOf(const Matrix& src) {
  rows_ = src.rows_;
  cols_ = src.cols_;
  data_.assign(src.data_.begin(), src.data_.end());
}

Matrix& Matrix::operator+=(const Matrix& other) {
  SBRL_CHECK(same_shape(other))
      << ShapeString() << " vs " << other.ShapeString();
  for (int64_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  SBRL_CHECK(same_shape(other))
      << ShapeString() << " vs " << other.ShapeString();
  for (int64_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (int64_t i = 0; i < size(); ++i) data_[i] *= s;
  return *this;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& a, double s) {
  Matrix out = a;
  out *= s;
  return out;
}

Matrix operator*(double s, const Matrix& a) { return a * s; }

double Matrix::Sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

double Matrix::Mean() const {
  SBRL_CHECK_GT(size(), 0);
  return Sum() / static_cast<double>(size());
}

double Matrix::MaxValue() const {
  SBRL_CHECK_GT(size(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

double Matrix::MinValue() const {
  SBRL_CHECK_GT(size(), 0);
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::Norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

Matrix Matrix::Col(int64_t c) const {
  SBRL_CHECK(c >= 0 && c < cols_);
  Matrix out(rows_, 1);
  for (int64_t r = 0; r < rows_; ++r) out(r, 0) = (*this)(r, c);
  return out;
}

Matrix Matrix::Row(int64_t r) const {
  SBRL_CHECK(r >= 0 && r < rows_);
  Matrix out(1, cols_);
  for (int64_t c = 0; c < cols_; ++c) out(0, c) = (*this)(r, c);
  return out;
}

std::vector<double> Matrix::ToVector() const {
  return std::vector<double>(data_.begin(), data_.end());
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix" << ShapeString() << " [\n";
  int64_t show_r = std::min<int64_t>(rows_, max_rows);
  int64_t show_c = std::min<int64_t>(cols_, max_cols);
  for (int64_t r = 0; r < show_r; ++r) {
    os << "  ";
    for (int64_t c = 0; c < show_c; ++c) {
      os << FormatDouble((*this)(r, c), 4);
      if (c + 1 < show_c) os << ", ";
    }
    if (show_c < cols_) os << ", ...";
    os << "\n";
  }
  if (show_r < rows_) os << "  ...\n";
  os << "]";
  return os.str();
}

bool AllClose(const Matrix& a, const Matrix& b, double tol) {
  if (!a.same_shape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace sbrl

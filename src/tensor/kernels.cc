// Kernel-table resolution for the ISA dispatch layer (tensor/kernels.h).
// This TU is compiled with the project's default flags; it only wires
// per-ISA entry points (defined in linalg_kernels_{baseline,avx2,
// avx512}.cc) into tables and picks one by the active Isa. The wide
// block-cross entries compose with the baseline ones: a wide table
// first offers the vectorized sizes and falls back to the baseline
// specializations for the rest, so forcing a wider ISA never loses the
// scalar-specialized sizes.

#include "tensor/kernels.h"

#include "tensor/kernels_impl.h"

namespace sbrl {

namespace {

namespace lk = linalg_kernels;

constexpr LinalgKernels kBaselineTable = {
    lk::BaselineMatmulRows,      lk::BaselineMatmulTransARows,
    lk::BaselineMatmulTransBRows, lk::BaselineBlockCrossFwd,
    lk::BaselineBlockCrossGradDw, lk::BaselineBlockCrossFwdGeneric,
};

constexpr LinalgKernelsF32 kBaselineTableF32 = {
    lk::BaselineMatmulRowsF32,
    lk::BaselineMatmulTransARowsF32,
    lk::BaselineMatmulTransBRowsF32,
};

#if defined(SBRL_HAVE_ISA_AVX2)

bool Avx2BlockCrossFwdOrBaseline(int64_t block, const double* fd,
                                 const double* wd, double* od, int64_t n,
                                 int64_t fcols,
                                 const std::pair<int64_t, int64_t>* pd,
                                 int64_t p0, int64_t p1) {
  if (lk::Avx2BlockCrossFwd(block, fd, wd, od, n, fcols, pd, p0, p1)) {
    return true;
  }
  return lk::BaselineBlockCrossFwd(block, fd, wd, od, n, fcols, pd, p0, p1);
}

bool Avx2BlockCrossGradDwOrBaseline(int64_t block, const double* gd,
                                    const double* fd, double* dwd,
                                    int64_t fcols,
                                    const std::pair<int64_t, int64_t>* pd,
                                    int64_t num_pairs, int64_t r0,
                                    int64_t r1) {
  if (lk::Avx2BlockCrossGradDw(block, gd, fd, dwd, fcols, pd, num_pairs, r0,
                               r1)) {
    return true;
  }
  return lk::BaselineBlockCrossGradDw(block, gd, fd, dwd, fcols, pd,
                                      num_pairs, r0, r1);
}

constexpr LinalgKernels kAvx2Table = {
    lk::Avx2MatmulRows,      lk::Avx2MatmulTransARows,
    lk::Avx2MatmulTransBRows, Avx2BlockCrossFwdOrBaseline,
    Avx2BlockCrossGradDwOrBaseline, lk::Avx2BlockCrossFwdGeneric,
};

constexpr LinalgKernelsF32 kAvx2TableF32 = {
    lk::Avx2MatmulRowsF32,
    lk::Avx2MatmulTransARowsF32,
    lk::Avx2MatmulTransBRowsF32,
};

#else
constexpr LinalgKernels kAvx2Table = kBaselineTable;
constexpr LinalgKernelsF32 kAvx2TableF32 = kBaselineTableF32;
#endif  // SBRL_HAVE_ISA_AVX2

#if defined(SBRL_HAVE_ISA_AVX512)

bool Avx512BlockCrossFwdOrBaseline(int64_t block, const double* fd,
                                   const double* wd, double* od, int64_t n,
                                   int64_t fcols,
                                   const std::pair<int64_t, int64_t>* pd,
                                   int64_t p0, int64_t p1) {
  if (lk::Avx512BlockCrossFwd(block, fd, wd, od, n, fcols, pd, p0, p1)) {
    return true;
  }
  return lk::BaselineBlockCrossFwd(block, fd, wd, od, n, fcols, pd, p0, p1);
}

bool Avx512BlockCrossGradDwOrBaseline(int64_t block, const double* gd,
                                      const double* fd, double* dwd,
                                      int64_t fcols,
                                      const std::pair<int64_t, int64_t>* pd,
                                      int64_t num_pairs, int64_t r0,
                                      int64_t r1) {
  // k=5 leaves a 512-bit lane 3/8 empty; the 256-bit AVX2 shape (4+1
  // split) wins there, so route that block size down a level. Cross-
  // level dw agreement is tolerance-bounded, not bitwise, so the
  // routing stays inside the existing grad_dw contract.
  if (block == 5 && lk::Avx2BlockCrossGradDw(block, gd, fd, dwd, fcols, pd,
                                             num_pairs, r0, r1)) {
    return true;
  }
  if (lk::Avx512BlockCrossGradDw(block, gd, fd, dwd, fcols, pd, num_pairs,
                                 r0, r1)) {
    return true;
  }
  return lk::BaselineBlockCrossGradDw(block, gd, fd, dwd, fcols, pd,
                                      num_pairs, r0, r1);
}

constexpr LinalgKernels kAvx512Table = {
    lk::Avx512MatmulRows,      lk::Avx512MatmulTransARows,
    lk::Avx512MatmulTransBRows, Avx512BlockCrossFwdOrBaseline,
    Avx512BlockCrossGradDwOrBaseline, lk::Avx512BlockCrossFwdGeneric,
};

constexpr LinalgKernelsF32 kAvx512TableF32 = {
    lk::Avx512MatmulRowsF32,
    lk::Avx512MatmulTransARowsF32,
    lk::Avx512MatmulTransBRowsF32,
};

#else
constexpr LinalgKernels kAvx512Table = kAvx2Table;
constexpr LinalgKernelsF32 kAvx512TableF32 = kAvx2TableF32;
#endif  // SBRL_HAVE_ISA_AVX512

}  // namespace

const LinalgKernels& LinalgKernelsForIsa(Isa isa) {
  switch (isa) {
    case Isa::kBaseline: return kBaselineTable;
    case Isa::kAvx2: return kAvx2Table;
    case Isa::kAvx512: return kAvx512Table;
  }
  return kBaselineTable;
}

const LinalgKernels& ActiveLinalgKernels() {
  return LinalgKernelsForIsa(ActiveIsa());
}

const LinalgKernelsF32& LinalgKernelsF32ForIsa(Isa isa) {
  switch (isa) {
    case Isa::kBaseline: return kBaselineTableF32;
    case Isa::kAvx2: return kAvx2TableF32;
    case Isa::kAvx512: return kAvx512TableF32;
  }
  return kBaselineTableF32;
}

const LinalgKernelsF32& ActiveLinalgKernelsF32() {
  return LinalgKernelsF32ForIsa(ActiveIsa());
}

}  // namespace sbrl

// Baseline (portable x86-64 / SSE2) kernel set of the ISA-dispatch
// tables: the pre-dispatch inner loops of tensor/linalg.cc, moved here
// VERBATIM and compiled with the project's default flags. This file is
// the bitwise anchor of the determinism contract — SBRL_ISA=baseline
// must reproduce the pre-dispatch kernels bit for bit, so nothing in
// here may be "improved". Wider-ISA variants live in
// linalg_kernels_avx2.cc / linalg_kernels_avx512.cc.

#include <algorithm>
#include <cstdint>
#include <utility>

#include "tensor/kernels_impl.h"

namespace sbrl {
namespace linalg_kernels {

namespace {

// The j-panel keeps a (k x kJBlock) slab of B hot in L2 across every
// row of an i-range.
constexpr int64_t kJBlock = 128;

// Compile-time-specialized inner kernels of the block-diagonal cross
// ops: the runtime `block` (= SbrlConfig::rff_features, default 5) is
// small, so the generic loops spend as much time on loop control as on
// arithmetic. Dispatching the common sizes to a template instantiation
// lets the compiler fully unroll the block x block body and keep the
// per-pair accumulators in registers. Each output element receives its
// terms in exactly the same ascending order as the generic loop, so
// specialized and generic paths are bitwise identical.

/// Forward pairs [p0, p1): out block p += sum_i w_i u_a(i,:)^T u_b(i,:)
/// with the (B x B) accumulator held in registers across the row sweep
/// and flushed once. Flushing "+=" onto the zero-initialized output
/// reproduces the generic element-by-element accumulation bitwise
/// (both start the sum at +0.0 and add the same terms in order).
template <int64_t B>
void BlockCrossFwdPairsKernel(const double* __restrict fd,
                              const double* __restrict wd,
                              double* __restrict od, int64_t n,
                              int64_t fcols,
                              const std::pair<int64_t, int64_t>* pd,
                              int64_t p0, int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * B;
    const int64_t cb = pd[p].second * B;
    double acc[B * B] = {};
    for (int64_t i = 0; i < n; ++i) {
      const double* frow = fd + i * fcols;
      const double wi = wd[i];
      const double* arow = frow + ca;
      const double* brow = frow + cb;
      for (int64_t r = 0; r < B; ++r) {
        const double av = arow[r] * wi;
        for (int64_t c = 0; c < B; ++c) acc[r * B + c] += av * brow[c];
      }
    }
    double* oblock = od + p * B * B;
    for (int64_t e = 0; e < B * B; ++e) oblock[e] += acc[e];
  }
}

/// Weight-gradient-only backward over rows [r0, r1): the hot case of
/// the decorrelation loss, where the stacked features are tape
/// constants and only dw is needed. dw_i = sum_p u_a(i,:) g_p u_b(i,:)^T
/// (the sample weight itself does not enter its own gradient). Same
/// flat ascending-p summation as the generic loop, minus its per-
/// element df branch.
template <int64_t B>
void BlockCrossGradDwRowsKernel(const double* __restrict gd,
                                const double* __restrict fd,
                                double* __restrict dwd, int64_t fcols,
                                const std::pair<int64_t, int64_t>* pd,
                                int64_t num_pairs, int64_t r0, int64_t r1) {
  for (int64_t i = r0; i < r1; ++i) {
    const double* frow = fd + i * fcols;
    double dw_acc = 0.0;
    for (int64_t p = 0; p < num_pairs; ++p) {
      const double* arow = frow + pd[p].first * B;
      const double* brow = frow + pd[p].second * B;
      const double* gblock = gd + p * B * B;
      for (int64_t r = 0; r < B; ++r) {
        const double* grow = gblock + r * B;
        double s = 0.0;
        for (int64_t c = 0; c < B; ++c) s += grow[c] * brow[c];
        dw_acc += arow[r] * s;
      }
    }
    dwd[i] += dw_acc;
  }
}

}  // namespace

bool BaselineBlockCrossFwd(int64_t block, const double* fd, const double* wd,
                           double* od, int64_t n, int64_t fcols,
                           const std::pair<int64_t, int64_t>* pd, int64_t p0,
                           int64_t p1) {
  switch (block) {
    case 3: BlockCrossFwdPairsKernel<3>(fd, wd, od, n, fcols, pd, p0, p1);
            return true;
    case 4: BlockCrossFwdPairsKernel<4>(fd, wd, od, n, fcols, pd, p0, p1);
            return true;
    case 5: BlockCrossFwdPairsKernel<5>(fd, wd, od, n, fcols, pd, p0, p1);
            return true;
    case 8: BlockCrossFwdPairsKernel<8>(fd, wd, od, n, fcols, pd, p0, p1);
            return true;
    default: return false;
  }
}

bool BaselineBlockCrossGradDw(int64_t block, const double* gd,
                              const double* fd, double* dwd, int64_t fcols,
                              const std::pair<int64_t, int64_t>* pd,
                              int64_t num_pairs, int64_t r0, int64_t r1) {
  switch (block) {
    case 3: BlockCrossGradDwRowsKernel<3>(gd, fd, dwd, fcols, pd,
                                          num_pairs, r0, r1);
            return true;
    case 4: BlockCrossGradDwRowsKernel<4>(gd, fd, dwd, fcols, pd,
                                          num_pairs, r0, r1);
            return true;
    case 5: BlockCrossGradDwRowsKernel<5>(gd, fd, dwd, fcols, pd,
                                          num_pairs, r0, r1);
            return true;
    case 8: BlockCrossGradDwRowsKernel<8>(gd, fd, dwd, fcols, pd,
                                          num_pairs, r0, r1);
            return true;
    default: return false;
  }
}

void BaselineBlockCrossFwdGeneric(const double* ad, int64_t acols,
                                  const double* bd, int64_t bcols,
                                  const double* wd, double* od, int64_t n,
                                  int64_t block,
                                  const std::pair<int64_t, int64_t>* pd,
                                  int64_t p0, int64_t p1) {
  // The pre-dispatch generic pair loops of tensor/linalg.cc, verbatim:
  // the weighted branch is BlockPairWeightedCrossInto's fallback, the
  // unweighted branch BlockPairMatmulTransAInto's pair loop (no w
  // multiply — not a *1.0, so the arithmetic is untouched).
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t ca = pd[p].first * block;
    const int64_t cb = pd[p].second * block;
    double* oblock = od + p * block * block;
    for (int64_t i = 0; i < n; ++i) {
      const double* arow = ad + i * acols + ca;
      const double* brow = bd + i * bcols + cb;
      if (wd != nullptr) {
        const double wi = wd[i];
        for (int64_t r = 0; r < block; ++r) {
          const double av = arow[r] * wi;
          double* orow = oblock + r * block;
          for (int64_t c = 0; c < block; ++c) orow[c] += av * brow[c];
        }
      } else {
        for (int64_t r = 0; r < block; ++r) {
          const double av = arow[r];
          double* orow = oblock + r * block;
          for (int64_t c = 0; c < block; ++c) orow[c] += av * brow[c];
        }
      }
    }
  }
}

// The hot kernels keep __restrict parameters rather than lambda
// captures: stores through a pointer captured in a closure could alias
// the closure itself, which blocks vectorization and register-caching
// of the loop state.

#define SBRL_MATMUL_ROWS_KERNEL_NAME BaselineMatmulRows
#include "tensor/matmul_rows_kernel.inc"
#undef SBRL_MATMUL_ROWS_KERNEL_NAME

// The f32 matmul tile kernel reuses the shared source with the scalar
// type switched to float — the identical chain structure is what makes
// the f32 tier bitwise invariant across ISA levels (tensor/kernels.h).
#define SBRL_MATMUL_ROWS_KERNEL_NAME BaselineMatmulRowsF32
#define SBRL_MATMUL_ROWS_KERNEL_TYPE float
#include "tensor/matmul_rows_kernel.inc"
#undef SBRL_MATMUL_ROWS_KERNEL_TYPE
#undef SBRL_MATMUL_ROWS_KERNEL_NAME

void BaselineMatmulTransARows(const double* __restrict ad,
                              const double* __restrict bd,
                              double* __restrict od, int64_t k, int64_t n,
                              int64_t m, int64_t r0, int64_t r1) {
  // The reduction index p stays outermost and ascending for every
  // element.
  for (int64_t p = 0; p < k; ++p) {
    const double* acol = ad + p * n;
    const double* brow = bd + p * m;
    for (int64_t i = r0; i < r1; ++i) {
      const double av = acol[i];
      double* orow = od + i * m;
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
}

void BaselineMatmulTransBRows(const double* __restrict ad,
                              const double* __restrict bd,
                              double* __restrict od, int64_t k, int64_t m,
                              int64_t r0, int64_t r1) {
  // 2x2 micro-kernel: each loaded A/B row segment feeds two dot
  // products; accumulators are per-element, k ascending.
  int64_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const double* a0 = ad + i * k;
    const double* a1 = a0 + k;
    double* o0 = od + i * m;
    double* o1 = o0 + m;
    int64_t j = 0;
    for (; j + 2 <= m; j += 2) {
      const double* b0 = bd + j * k;
      const double* b1 = b0 + k;
      double acc00 = 0.0, acc01 = 0.0, acc10 = 0.0, acc11 = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const double a0p = a0[p], a1p = a1[p];
        const double b0p = b0[p], b1p = b1[p];
        acc00 += a0p * b0p;
        acc01 += a0p * b1p;
        acc10 += a1p * b0p;
        acc11 += a1p * b1p;
      }
      o0[j] += acc00;
      o0[j + 1] += acc01;
      o1[j] += acc10;
      o1[j + 1] += acc11;
    }
    for (; j < m; ++j) {
      const double* brow = bd + j * k;
      double acc0 = 0.0, acc1 = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        acc0 += a0[p] * brow[p];
        acc1 += a1[p] * brow[p];
      }
      o0[j] += acc0;
      o1[j] += acc1;
    }
  }
  for (; i < r1; ++i) {
    const double* arow = ad + i * k;
    double* orow = od + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const double* brow = bd + j * k;
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] += acc;
    }
  }
}

// ---------------------------------------------------------------------------
// f32 tier: the f64 baseline loop shapes restated on floats. These are
// the bitwise anchors of the f32 tier's cross-ISA contract, exactly as
// the f64 kernels above anchor theirs.
// ---------------------------------------------------------------------------

void BaselineMatmulTransARowsF32(const float* __restrict ad,
                                 const float* __restrict bd,
                                 float* __restrict od, int64_t k, int64_t n,
                                 int64_t m, int64_t r0, int64_t r1) {
  // Same structure as BaselineMatmulTransARows: the reduction index p
  // stays outermost and ascending for every element.
  for (int64_t p = 0; p < k; ++p) {
    const float* acol = ad + p * n;
    const float* brow = bd + p * m;
    for (int64_t i = r0; i < r1; ++i) {
      const float av = acol[i];
      float* orow = od + i * m;
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
}

void BaselineMatmulTransBRowsF32(const float* __restrict ad,
                                 const float* __restrict bd,
                                 float* __restrict od, int64_t k, int64_t m,
                                 int64_t r0, int64_t r1) {
  // Same 2x2 micro-kernel as BaselineMatmulTransBRows: per-element
  // accumulators, k ascending.
  int64_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const float* a0 = ad + i * k;
    const float* a1 = a0 + k;
    float* o0 = od + i * m;
    float* o1 = o0 + m;
    int64_t j = 0;
    for (; j + 2 <= m; j += 2) {
      const float* b0 = bd + j * k;
      const float* b1 = b0 + k;
      float acc00 = 0.0f, acc01 = 0.0f, acc10 = 0.0f, acc11 = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        const float a0p = a0[p], a1p = a1[p];
        const float b0p = b0[p], b1p = b1[p];
        acc00 += a0p * b0p;
        acc01 += a0p * b1p;
        acc10 += a1p * b0p;
        acc11 += a1p * b1p;
      }
      o0[j] += acc00;
      o0[j + 1] += acc01;
      o1[j] += acc10;
      o1[j + 1] += acc11;
    }
    for (; j < m; ++j) {
      const float* brow = bd + j * k;
      float acc0 = 0.0f, acc1 = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc0 += a0[p] * brow[p];
        acc1 += a1[p] * brow[p];
      }
      o0[j] += acc0;
      o1[j] += acc1;
    }
  }
  for (; i < r1; ++i) {
    const float* arow = ad + i * k;
    float* orow = od + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const float* brow = bd + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] += acc;
    }
  }
}

}  // namespace linalg_kernels
}  // namespace sbrl

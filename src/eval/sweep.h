#ifndef SBRL_EVAL_SWEEP_H_
#define SBRL_EVAL_SWEEP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/estimator.h"
#include "data/causal_dataset.h"
#include "eval/experiment.h"
#include "eval/session.h"

namespace sbrl {

/// The read-only dataset bundle one replication seed trains and
/// evaluates against. Generated ONCE per seed by RunPlan::make_datasets
/// and shared by every method's run at that seed — runs only read it.
struct SweepDatasets {
  CausalDataset train;
  /// Early-stopping split; ignored when `use_valid` is false (methods
  /// then train without validation, e.g. fig. 5/6 decorrelation runs).
  CausalDataset valid;
  bool use_valid = true;
  /// Evaluation populations, one EvalResult each per run — e.g. the
  /// paper's rho grid (Table I) or {train, valid, test} (Table III).
  std::vector<CausalDataset> tests;
};

/// Outcome of one (method, seed) cell of a sweep.
struct RunResult {
  /// Why the run failed; OK when `evals` / `diag` are meaningful.
  /// A failed cell never aborts the sweep — callers filter on ok().
  Status status = Status::OK();
  /// One entry per SweepDatasets::tests population, in test order.
  std::vector<EvalResult> evals;
  /// The fitted estimator's training record (timings, loss curves).
  TrainDiagnostics diag;
  /// Free-form per-run values filled by RunPlan::post_fit (e.g. fig. 5
  /// off-diagonal HSIC statistics). Empty when no post_fit hook is set.
  std::vector<double> extra;
};

/// Declarative description of a methods x seeds experiment grid.
///
/// `make_datasets` / `make_config` receive the replication coordinates,
/// never schedule state, so a plan is deterministic by construction:
/// the engine may execute cells in any order on any worker without
/// changing what each cell computes.
struct RunPlan {
  /// The method axis (rows of the result grid).
  std::vector<MethodSpec> methods;
  /// The replication axis; seeds[i] drives datasets and training RNG of
  /// replication i.
  std::vector<uint64_t> seeds;
  /// Builds replication `seed_index`'s datasets from its seed. Called
  /// once per seed, sequentially in seed order, BEFORE any run starts.
  std::function<SweepDatasets(int64_t seed_index, uint64_t seed)>
      make_datasets;
  /// Builds the full estimator configuration of cell
  /// (method_index, seed_index). Must be pure in its arguments.
  std::function<EstimatorConfig(int64_t method_index, int64_t seed_index,
                                uint64_t seed)>
      make_config;
  /// Optional hook run on the fitted estimator of each successful cell
  /// (on that cell's worker, before the run's lease is returned); fills
  /// RunResult::extra with per-run diagnostics. Must only touch `out`
  /// and read-only state.
  std::function<void(int64_t method_index, int64_t seed_index,
                     const HteEstimator& estimator, RunResult* out)>
      post_fit;
};

/// Knobs of one RunSweep call.
struct SweepOptions {
  /// Outer scheduler lanes: how many runs may train concurrently.
  /// 0 = resolve from the SBRL_SWEEP_WORKERS environment variable, else
  /// the global pool parallelism. Whatever the value, results are
  /// bitwise identical (see RunSweep).
  int outer_workers = 0;
  /// Emit one stderr line per completed run (bench progress).
  bool progress = false;
};

/// The filled methods x seeds grid plus scheduler telemetry.
struct SweepResult {
  /// runs[method_index][seed_index] — always fully sized, failed cells
  /// carry their non-OK status.
  std::vector<std::vector<RunResult>> runs;
  /// Wall-clock seconds of the whole sweep (dataset generation through
  /// last run).
  double wall_seconds = 0.0;
  /// The resolved lane count the sweep actually scheduled with.
  int outer_workers_used = 0;
};

/// Mean +- std over the successful replications of one
/// (method, test population) cell; CHECK-fails if every replication of
/// the cell failed.
ReplicationStats AggregateCell(const SweepResult& result,
                               int64_t method_index, int64_t test_index);

/// Executes `plan` on the experiment engine: datasets are generated once
/// per seed, then the methods x seeds run grid is scheduled over the
/// global thread pool with `options.outer_workers` concurrent runs, each
/// run training single-threaded on session-leased resources (nested
/// ParallelFor serial-inlines, so lanes never oversubscribe the host).
/// With one lane the runs execute sequentially in grid order and each
/// run keeps its inner kernel parallelism.
///
/// Determinism contract: the returned grid is BITWISE IDENTICAL for any
/// `outer_workers` value and any run completion order, and identical to
/// fitting each cell standalone (kernels are thread-count invariant and
/// every mutable resource is run-scoped through `session`; see
/// docs/ARCHITECTURE.md "Experiment engine").
SweepResult RunSweep(const RunPlan& plan, ExperimentSession* session,
                     const SweepOptions& options = SweepOptions());

}  // namespace sbrl

#endif  // SBRL_EVAL_SWEEP_H_

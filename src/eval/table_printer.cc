#include "eval/table_printer.h"

#include <algorithm>

#include "common/check.h"

namespace sbrl {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SBRL_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SBRL_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_line = [&os, &widths]() {
    for (size_t c = 0; c < widths.size(); ++c) {
      os << "+" << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_row = [&os, &widths](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : "";
      os << "| " << text << std::string(widths[c] - text.size() + 1, ' ');
    }
    os << "|\n";
  };
  print_line();
  print_row(headers_);
  print_line();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_line();
    } else {
      print_row(row);
    }
  }
  print_line();
}

}  // namespace sbrl

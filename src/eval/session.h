#ifndef SBRL_EVAL_SESSION_H_
#define SBRL_EVAL_SESSION_H_

#include <memory>
#include <mutex>
#include <vector>

#include "core/run_context.h"
#include "stats/rff.h"

namespace sbrl {

/// Owner of every resource an in-process experiment sweep shares or
/// recycles across runs — the session-scoped home of state that used to
/// be process-global or trainer-owned:
///
///   resource                     | scope      | concurrency
///   -----------------------------|------------|---------------------------
///   SharedRffProjectionCache     | session    | mutex-protected, shared by
///                                |            | every run's local cache
///   MatrixPool (tape arena)      | per run    | exclusive to one run at a
///                                |            | time, recycled via leases
///   RffProjectionCache (local)   | per run    | exclusive, recycled, wired
///                                |            | to the shared cache
///
/// Runs check resources out through AcquireRun() leases; returning a
/// lease parks the resource set for the next run, so a steady-state
/// sweep keeps warm buffer pools instead of reallocating per run.
/// Which run gets which recycled set is schedule-dependent, but
/// recycling is value-transparent (zeroed-on-acquire buffers, pure
/// slot-keyed draws), so results stay bitwise independent of the
/// schedule — the sweep-determinism contract (docs/ARCHITECTURE.md
/// "Experiment engine").
///
/// Thread-safe: AcquireRun() / lease release may be called from any
/// thread; the resources INSIDE a lease belong to exactly one run.
class ExperimentSession {
 public:
  ExperimentSession();
  ~ExperimentSession();  // out of line: ResourceSet is private/opaque
  ExperimentSession(const ExperimentSession&) = delete;
  ExperimentSession& operator=(const ExperimentSession&) = delete;

  /// RAII lease of one run's resource set; returns it to the session's
  /// free list on destruction. Move-only. The lease must not outlive
  /// the session.
  class RunLease {
   public:
    RunLease(RunLease&& other) noexcept
        : session_(other.session_), set_(other.set_) {
      other.session_ = nullptr;
      other.set_ = nullptr;
    }
    RunLease& operator=(RunLease&&) = delete;
    RunLease(const RunLease&) = delete;
    RunLease& operator=(const RunLease&) = delete;
    ~RunLease();

    /// The leased run resources, valid for the lease lifetime.
    RunContext* context();

   private:
    friend class ExperimentSession;
    RunLease(ExperimentSession* session, void* set)
        : session_(session), set_(set) {}

    ExperimentSession* session_;
    void* set_;  // ResourceSet*, opaque to keep the type private
  };

  /// Checks out a resource set for one run: a recycled set when one is
  /// parked, else a freshly created one (its local projection cache
  /// wired to the session's shared cache).
  RunLease AcquireRun();

  /// The session-wide projection store every leased run cache consults
  /// on local misses. Exposed for tests and diagnostics.
  SharedRffProjectionCache* shared_rff_cache() { return &shared_rff_; }

  /// Resource sets created so far — equals the peak number of
  /// concurrently leased runs, letting tests assert recycling happens.
  int64_t resource_sets_created() const;

 private:
  struct ResourceSet;

  void Release(void* set);

  mutable std::mutex mu_;
  SharedRffProjectionCache shared_rff_;
  std::vector<std::unique_ptr<ResourceSet>> all_sets_;
  std::vector<ResourceSet*> free_sets_;
};

}  // namespace sbrl

#endif  // SBRL_EVAL_SESSION_H_

#include "eval/session.h"

#include "common/check.h"
#include "tensor/pool.h"

namespace sbrl {

// The unit of recycling: one run's worth of exclusive mutable state.
struct ExperimentSession::ResourceSet {
  MatrixPool tape_pool;
  RffProjectionCache rff_cache;
  RunContext ctx;
};

ExperimentSession::ExperimentSession() = default;
ExperimentSession::~ExperimentSession() = default;

ExperimentSession::RunLease::~RunLease() {
  if (session_ != nullptr) session_->Release(set_);
}

RunContext* ExperimentSession::RunLease::context() {
  SBRL_CHECK(set_ != nullptr) << "lease was moved from";
  return &static_cast<ResourceSet*>(set_)->ctx;
}

ExperimentSession::RunLease ExperimentSession::AcquireRun() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_sets_.empty()) {
    ResourceSet* set = free_sets_.back();
    free_sets_.pop_back();
    return RunLease(this, set);
  }
  auto set = std::make_unique<ResourceSet>();
  set->rff_cache.set_shared(&shared_rff_);
  set->ctx.tape_pool = &set->tape_pool;
  set->ctx.rff_cache = &set->rff_cache;
  ResourceSet* raw = set.get();
  all_sets_.push_back(std::move(set));
  return RunLease(this, raw);
}

void ExperimentSession::Release(void* set) {
  std::lock_guard<std::mutex> lock(mu_);
  free_sets_.push_back(static_cast<ResourceSet*>(set));
}

int64_t ExperimentSession::resource_sets_created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(all_sets_.size());
}

}  // namespace sbrl

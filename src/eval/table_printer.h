#ifndef SBRL_EVAL_TABLE_PRINTER_H_
#define SBRL_EVAL_TABLE_PRINTER_H_

#include <iostream>
#include <string>
#include <vector>

namespace sbrl {

/// Fixed-width console table used by the bench harness to print rows in
/// the layout of the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator after the current last row.
  void AddSeparator();

  /// Renders the table with per-column width fitting.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row = separator
};

}  // namespace sbrl

#endif  // SBRL_EVAL_TABLE_PRINTER_H_

#include "eval/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/check.h"
#include "common/env.h"
#include "common/thread_pool.h"

namespace sbrl {

namespace {

// Lane count: explicit option > SBRL_SWEEP_WORKERS env > global pool
// parallelism, clamped to [1, total_runs].
int ResolveOuterWorkers(const SweepOptions& options, int64_t total_runs) {
  int64_t workers = options.outer_workers;
  if (workers <= 0) {
    workers = ParseEnvInt64("SBRL_SWEEP_WORKERS", /*min_value=*/1,
                            /*fallback=*/0);
  }
  if (workers <= 0) workers = ThreadPool::GlobalParallelism();
  return static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(workers, total_runs)));
}

// Trains and evaluates one (method, seed) cell on session-leased
// resources. Pure in its coordinates: touches only `*out` and the
// read-only datasets, so cells can run in any order on any thread.
void RunOne(const RunPlan& plan, const std::vector<SweepDatasets>& data,
            ExperimentSession* session, int64_t method_index,
            int64_t seed_index, RunResult* out) {
  const uint64_t seed = plan.seeds[static_cast<size_t>(seed_index)];
  const SweepDatasets& d = data[static_cast<size_t>(seed_index)];
  EstimatorConfig config = plan.make_config(method_index, seed_index, seed);
  StatusOr<HteEstimator> estimator = HteEstimator::Create(config);
  if (!estimator.ok()) {
    out->status = estimator.status();
    return;
  }
  ExperimentSession::RunLease lease = session->AcquireRun();
  const Status fit = estimator->Fit(
      d.train, d.use_valid ? &d.valid : nullptr, lease.context());
  if (!fit.ok()) {
    out->status = fit;
    return;
  }
  out->diag = estimator->diagnostics();
  out->evals.reserve(d.tests.size());
  for (const CausalDataset& test : d.tests) {
    out->evals.push_back(EvaluateEstimator(*estimator, test));
  }
  if (plan.post_fit) {
    plan.post_fit(method_index, seed_index, *estimator, out);
  }
}

}  // namespace

ReplicationStats AggregateCell(const SweepResult& result,
                               int64_t method_index, int64_t test_index) {
  std::vector<EvalResult> ok_runs;
  const std::vector<RunResult>& row =
      result.runs[static_cast<size_t>(method_index)];
  ok_runs.reserve(row.size());
  for (const RunResult& run : row) {
    if (!run.status.ok()) continue;
    ok_runs.push_back(run.evals[static_cast<size_t>(test_index)]);
  }
  SBRL_CHECK(!ok_runs.empty())
      << "every replication of method " << method_index << " failed";
  return AggregateReplications(ok_runs);
}

SweepResult RunSweep(const RunPlan& plan, ExperimentSession* session,
                     const SweepOptions& options) {
  SBRL_CHECK(session != nullptr);
  SBRL_CHECK(!plan.methods.empty());
  SBRL_CHECK(!plan.seeds.empty());
  SBRL_CHECK(plan.make_datasets != nullptr);
  SBRL_CHECK(plan.make_config != nullptr);
  const int64_t num_methods = static_cast<int64_t>(plan.methods.size());
  const int64_t num_seeds = static_cast<int64_t>(plan.seeds.size());
  const int64_t total_runs = num_methods * num_seeds;

  const auto t0 = std::chrono::steady_clock::now();

  // Datasets once per seed, sequentially, before any run — every run of
  // a replication shares the same read-only bundle.
  std::vector<SweepDatasets> data;
  data.reserve(static_cast<size_t>(num_seeds));
  for (int64_t s = 0; s < num_seeds; ++s) {
    data.push_back(plan.make_datasets(s, plan.seeds[static_cast<size_t>(s)]));
  }

  SweepResult result;
  result.outer_workers_used = ResolveOuterWorkers(options, total_runs);
  result.runs.assign(static_cast<size_t>(num_methods),
                     std::vector<RunResult>(static_cast<size_t>(num_seeds)));

  // Run index r decomposes as (seed_index, method_index) with the
  // method fastest: one replication's methods are adjacent, so shared
  // projection draws land in the session cache while still hot.
  auto run_cell = [&](int64_t r) {
    const int64_t seed_index = r / num_methods;
    const int64_t method_index = r % num_methods;
    RunResult* out = &result.runs[static_cast<size_t>(method_index)]
                                 [static_cast<size_t>(seed_index)];
    RunOne(plan, data, session, method_index, seed_index, out);
    if (options.progress) {
      // One pre-formatted write per run: interleaving-safe enough for a
      // progress line without serializing the lanes.
      std::string line =
          "  [sweep] " +
          plan.methods[static_cast<size_t>(method_index)].name() + " seed " +
          std::to_string(plan.seeds[static_cast<size_t>(seed_index)]) +
          (out->status.ok() ? "" : " FAILED: " + out->status.ToString()) +
          "\n";
      std::cerr << line;
    }
  };

  if (result.outer_workers_used <= 1) {
    // Sequential reference schedule: grid order, inner kernel
    // parallelism stays available to each run.
    for (int64_t r = 0; r < total_runs; ++r) run_cell(r);
  } else {
    // W lanes pull run indices from a shared counter. Each lane's
    // ParallelFor chunk is inside a pool job, so every ParallelFor a
    // run issues serial-inlines — one thread per run, no
    // oversubscription, and bitwise-identical cells regardless of
    // which lane claims them.
    std::atomic<int64_t> next{0};
    ParallelFor(0, result.outer_workers_used, 1,
                [&](int64_t lane_lo, int64_t lane_hi) {
                  (void)lane_lo;
                  (void)lane_hi;
                  for (;;) {
                    const int64_t r = next.fetch_add(1);
                    if (r >= total_runs) break;
                    run_cell(r);
                  }
                });
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace sbrl

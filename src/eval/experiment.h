#ifndef SBRL_EVAL_EXPERIMENT_H_
#define SBRL_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/estimator.h"
#include "data/causal_dataset.h"
#include "stats/metrics.h"

namespace sbrl {

/// One (backbone, framework) combination — a row of the paper's tables.
struct MethodSpec {
  BackboneKind backbone;
  FrameworkKind framework;

  std::string name() const { return MethodName(backbone, framework); }
};

/// The nine methods of the paper's evaluation: {TARNet, CFR, DeR-CFR} x
/// {vanilla, +SBRL, +SBRL-HAP}, in table order.
std::vector<MethodSpec> AllNineMethods();

/// Point metrics of a fitted estimator on one evaluation population.
struct EvalResult {
  double pehe = 0.0;
  double ate_error = 0.0;
  double f1_factual = 0.0;
  double f1_counterfactual = 0.0;
};

/// Evaluates a fitted estimator against the ground-truth potential
/// outcomes carried by `data`. F1 metrics are only meaningful for
/// binary outcomes (they are 0 otherwise).
EvalResult EvaluateEstimator(const HteEstimator& estimator,
                             const CausalDataset& data);

/// Applies a method spec onto a base configuration.
EstimatorConfig WithMethod(EstimatorConfig base, const MethodSpec& spec);

/// Fits `config` on train/valid and evaluates on every test population.
/// Returns one EvalResult per entry of `tests`.
StatusOr<std::vector<EvalResult>> TrainAndEvaluate(
    const EstimatorConfig& config, const CausalDataset& train,
    const CausalDataset* valid,
    const std::vector<const CausalDataset*>& tests);

/// Mean ± std cell over replications, one per metric.
struct ReplicationStats {
  EnvAggregate pehe;
  EnvAggregate ate_error;
};

/// Aggregates per-replication results into mean ± std cells.
ReplicationStats AggregateReplications(const std::vector<EvalResult>& runs);

}  // namespace sbrl

#endif  // SBRL_EVAL_EXPERIMENT_H_

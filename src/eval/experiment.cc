#include "eval/experiment.h"

namespace sbrl {

std::vector<MethodSpec> AllNineMethods() {
  std::vector<MethodSpec> methods;
  for (BackboneKind backbone :
       {BackboneKind::kTarnet, BackboneKind::kCfr, BackboneKind::kDerCfr}) {
    for (FrameworkKind framework :
         {FrameworkKind::kVanilla, FrameworkKind::kSbrl,
          FrameworkKind::kSbrlHap}) {
      methods.push_back({backbone, framework});
    }
  }
  return methods;
}

EvalResult EvaluateEstimator(const HteEstimator& estimator,
                             const CausalDataset& data) {
  EvalResult result;
  const std::vector<double> ite_hat = estimator.PredictIte(data.x);
  const std::vector<double> ite_true = data.TrueIte();
  result.pehe = Pehe(ite_hat, ite_true);
  result.ate_error = AteError(ite_hat, ite_true);
  if (data.binary_outcome) {
    const Matrix outcomes = estimator.PredictPotentialOutcomes(data.x);
    std::vector<double> factual_pred(static_cast<size_t>(data.n()));
    std::vector<double> factual_true(static_cast<size_t>(data.n()));
    std::vector<double> counter_pred(static_cast<size_t>(data.n()));
    for (int64_t i = 0; i < data.n(); ++i) {
      const bool treated = data.t[static_cast<size_t>(i)] == 1;
      factual_pred[static_cast<size_t>(i)] = outcomes(i, treated ? 1 : 0);
      factual_true[static_cast<size_t>(i)] = data.y(i, 0);
      counter_pred[static_cast<size_t>(i)] = outcomes(i, treated ? 0 : 1);
    }
    const std::vector<double> counter_true = data.CounterfactualOutcomes();
    result.f1_factual = F1Score(factual_pred, factual_true);
    result.f1_counterfactual = F1Score(counter_pred, counter_true);
  }
  return result;
}

EstimatorConfig WithMethod(EstimatorConfig base, const MethodSpec& spec) {
  base.backbone = spec.backbone;
  base.framework = spec.framework;
  return base;
}

StatusOr<std::vector<EvalResult>> TrainAndEvaluate(
    const EstimatorConfig& config, const CausalDataset& train,
    const CausalDataset* valid,
    const std::vector<const CausalDataset*>& tests) {
  SBRL_ASSIGN_OR_RETURN(HteEstimator estimator,
                        HteEstimator::Create(config));
  SBRL_RETURN_IF_ERROR(estimator.Fit(train, valid));
  std::vector<EvalResult> results;
  results.reserve(tests.size());
  for (const CausalDataset* test : tests) {
    SBRL_CHECK(test != nullptr);
    results.push_back(EvaluateEstimator(estimator, *test));
  }
  return results;
}

ReplicationStats AggregateReplications(const std::vector<EvalResult>& runs) {
  SBRL_CHECK(!runs.empty());
  std::vector<double> pehes, ates;
  pehes.reserve(runs.size());
  ates.reserve(runs.size());
  for (const EvalResult& r : runs) {
    pehes.push_back(r.pehe);
    ates.push_back(r.ate_error);
  }
  ReplicationStats stats;
  stats.pehe = AggregateOverEnvironments(pehes);
  stats.ate_error = AggregateOverEnvironments(ates);
  return stats;
}

}  // namespace sbrl

#include "stats/correlation.h"

#include <cmath>
#include <vector>

#include "stats/rff.h"
#include "stats/weighted.h"
#include "tensor/linalg.h"

namespace sbrl {

Matrix PearsonCorrelationMatrix(const Matrix& x) {
  const int64_t n = x.rows(), d = x.cols();
  SBRL_CHECK_GT(n, 1);
  Matrix means = ColMean(x);
  Matrix centered(n, d);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < d; ++c) centered(r, c) = x(r, c) - means(0, c);
  }
  Matrix cov = MatmulTransA(centered, centered);
  cov *= 1.0 / static_cast<double>(n);
  Matrix corr(d, d);
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      const double denom = std::sqrt(cov(i, i) * cov(j, j));
      if (i == j) {
        corr(i, j) = 1.0;
      } else if (denom < 1e-12) {
        corr(i, j) = 0.0;
      } else {
        corr(i, j) = cov(i, j) / denom;
      }
    }
  }
  return corr;
}

Matrix PairwiseHsicRffMatrix(const Matrix& x, const Matrix& w,
                             int64_t num_features, Rng& rng,
                             int64_t max_dims, CosineMode mode) {
  int64_t d = x.cols();
  std::vector<int64_t> dims;
  if (max_dims > 0 && max_dims < d) {
    dims = rng.SampleWithoutReplacement(d, max_dims);
    d = max_dims;
  } else {
    dims.resize(static_cast<size_t>(d));
    for (int64_t i = 0; i < d; ++i) dims[static_cast<size_t>(i)] = i;
  }
  // Per-pair fresh RFF draws exactly as WeightedHsicRff makes them
  // (same rng consumption order), but the columns are read in place
  // through strided ApplyRffToColumn views — no Matrix::Col copies.
  Matrix out(d, d);
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = i + 1; j < d; ++j) {
      RffProjection proj_a = SampleRff(rng, 1, num_features);
      RffProjection proj_b = SampleRff(rng, 1, num_features);
      Matrix u = ApplyRffToColumn(proj_a, x, dims[static_cast<size_t>(i)],
                                  mode);
      Matrix v = ApplyRffToColumn(proj_b, x, dims[static_cast<size_t>(j)],
                                  mode);
      Matrix cov = WeightedCrossCovariance(u, v, w);
      double frob2 = 0.0;
      for (int64_t e = 0; e < cov.size(); ++e) frob2 += cov[e] * cov[e];
      out(i, j) = frob2;
      out(j, i) = frob2;
    }
  }
  return out;
}

double MeanOffDiagonal(const Matrix& m) {
  SBRL_CHECK_EQ(m.rows(), m.cols());
  const int64_t d = m.rows();
  SBRL_CHECK_GT(d, 1);
  double acc = 0.0;
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      if (i != j) acc += m(i, j);
    }
  }
  return acc / static_cast<double>(d * (d - 1));
}

}  // namespace sbrl

#ifndef SBRL_STATS_KERNELS_H_
#define SBRL_STATS_KERNELS_H_

#include "tensor/matrix.h"

namespace sbrl {

/// RBF (Gaussian) kernel matrix between rows of `a` (n x d) and rows of
/// `b` (m x d): K_ij = exp(-|a_i - b_j|^2 / (2 bandwidth^2)).
Matrix RbfKernel(const Matrix& a, const Matrix& b, double bandwidth);

/// Median-of-pairwise-distances bandwidth heuristic over the rows of
/// `x`. Falls back to 1.0 when all points coincide.
double MedianHeuristicBandwidth(const Matrix& x);

/// Linear kernel matrix: K = a b^T.
Matrix LinearKernel(const Matrix& a, const Matrix& b);

}  // namespace sbrl

#endif  // SBRL_STATS_KERNELS_H_

#include "stats/feature_pairs.h"

#include <unordered_set>

#include "common/check.h"

namespace sbrl {

double FeaturePairSelection::Rescale() const {
  SBRL_CHECK(!pairs.empty());
  return static_cast<double>(total_pairs) /
         static_cast<double>(pairs.size());
}

FeaturePairSelection SelectFeaturePairs(int64_t d, int64_t budget, Rng& rng) {
  SBRL_CHECK_GE(d, 2);
  FeaturePairSelection out;
  out.total_pairs = d * (d - 1) / 2;
  if (budget <= 0 || budget >= out.total_pairs) {
    // Budget covers everything: enumerate directly, no sampling, no
    // randomness consumed.
    out.pairs.reserve(static_cast<size_t>(out.total_pairs));
    for (int64_t a = 0; a < d; ++a) {
      for (int64_t b = a + 1; b < d; ++b) out.pairs.emplace_back(a, b);
    }
    return out;
  }
  // Rejection-sample `budget` distinct pair indices. budget <
  // total_pairs here, and the regularizer's defaults keep budget well
  // below total on wide layers, so collisions are rare and the cost
  // stays O(budget) — SampleWithoutReplacement would materialize and
  // shuffle all O(d^2) pair indices per loss evaluation.
  std::unordered_set<int64_t> seen;
  seen.reserve(static_cast<size_t>(budget));
  out.pairs.reserve(static_cast<size_t>(budget));
  while (static_cast<int64_t>(out.pairs.size()) < budget) {
    const int64_t idx = rng.UniformInt(0, out.total_pairs - 1);
    if (!seen.insert(idx).second) continue;
    // Invert the row-major enumeration index: pair (a, b) with a < b
    // occupies slot sum_{i<a}(d-1-i) + (b-a-1).
    int64_t a = 0;
    int64_t remaining = idx;
    while (remaining >= d - 1 - a) {
      remaining -= d - 1 - a;
      ++a;
    }
    out.pairs.emplace_back(a, a + 1 + remaining);
  }
  SBRL_CHECK_EQ(static_cast<int64_t>(seen.size()), budget)
      << "sampled pair subset is not duplicate-free";
  return out;
}

CompactPairBlocks CompactUsedColumns(
    int64_t d, const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  CompactPairBlocks out;
  std::vector<int64_t> compact(static_cast<size_t>(d), -1);
  for (const auto& [a, b] : pairs) {
    SBRL_CHECK(a >= 0 && a < d && b >= 0 && b < d);
    compact[static_cast<size_t>(a)] = 0;
    compact[static_cast<size_t>(b)] = 0;
  }
  int64_t n_used = 0;
  out.used_cols.reserve(static_cast<size_t>(d));
  for (int64_t c = 0; c < d; ++c) {
    if (compact[static_cast<size_t>(c)] < 0) continue;
    compact[static_cast<size_t>(c)] = n_used++;
    out.used_cols.push_back(c);
  }
  out.block_pairs.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    out.block_pairs.emplace_back(compact[static_cast<size_t>(a)],
                                 compact[static_cast<size_t>(b)]);
  }
  return out;
}

}  // namespace sbrl

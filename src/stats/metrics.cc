#include "stats/metrics.h"

#include <cmath>

#include "common/check.h"

namespace sbrl {

double Pehe(const std::vector<double>& ite_hat,
            const std::vector<double>& ite_true) {
  SBRL_CHECK_EQ(ite_hat.size(), ite_true.size());
  SBRL_CHECK(!ite_hat.empty());
  double acc = 0.0;
  for (size_t i = 0; i < ite_hat.size(); ++i) {
    const double d = ite_hat[i] - ite_true[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(ite_hat.size()));
}

double AteError(const std::vector<double>& ite_hat,
                const std::vector<double>& ite_true) {
  SBRL_CHECK_EQ(ite_hat.size(), ite_true.size());
  SBRL_CHECK(!ite_hat.empty());
  double sum_hat = 0.0, sum_true = 0.0;
  for (size_t i = 0; i < ite_hat.size(); ++i) {
    sum_hat += ite_hat[i];
    sum_true += ite_true[i];
  }
  const double n = static_cast<double>(ite_hat.size());
  return std::abs(sum_true / n - sum_hat / n);
}

ConfusionCounts Confusion(const std::vector<double>& probs,
                          const std::vector<double>& labels,
                          double threshold) {
  SBRL_CHECK_EQ(probs.size(), labels.size());
  ConfusionCounts counts;
  for (size_t i = 0; i < probs.size(); ++i) {
    const bool pred = probs[i] >= threshold;
    const bool truth = labels[i] >= 0.5;
    if (pred && truth) ++counts.tp;
    else if (pred && !truth) ++counts.fp;
    else if (!pred && truth) ++counts.fn;
    else ++counts.tn;
  }
  return counts;
}

double F1Score(const std::vector<double>& probs,
               const std::vector<double>& labels, double threshold) {
  const ConfusionCounts c = Confusion(probs, labels, threshold);
  const double denom = static_cast<double>(2 * c.tp + c.fp + c.fn);
  if (denom == 0.0) return 0.0;
  return 2.0 * static_cast<double>(c.tp) / denom;
}

double Accuracy(const std::vector<double>& probs,
                const std::vector<double>& labels, double threshold) {
  const ConfusionCounts c = Confusion(probs, labels, threshold);
  const double total = static_cast<double>(c.tp + c.fp + c.tn + c.fn);
  SBRL_CHECK_GT(total, 0.0);
  return static_cast<double>(c.tp + c.tn) / total;
}

EnvAggregate AggregateOverEnvironments(const std::vector<double>& values) {
  SBRL_CHECK(!values.empty());
  EnvAggregate agg;
  for (double v : values) agg.mean += v;
  agg.mean /= static_cast<double>(values.size());
  for (double v : values) {
    const double d = v - agg.mean;
    agg.variance += d * d;
  }
  agg.variance /= static_cast<double>(values.size());
  agg.std_dev = std::sqrt(agg.variance);
  return agg;
}

}  // namespace sbrl

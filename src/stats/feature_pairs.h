#ifndef SBRL_STATS_FEATURE_PAIRS_H_
#define SBRL_STATS_FEATURE_PAIRS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/random.h"

namespace sbrl {

/// The unordered feature pairs (a < b) measured by one evaluation of a
/// pairwise HSIC statistic, plus the full-pair count the subsampled sum
/// is rescaled to.
struct FeaturePairSelection {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  /// d * (d - 1) / 2, regardless of how many pairs were kept.
  int64_t total_pairs = 0;

  /// total_pairs / pairs.size() — the unbiasedness rescale for a
  /// subsampled pair sum (1 when every pair is measured).
  double Rescale() const;
};

/// Enumerates the d*(d-1)/2 unordered column pairs of a d-column
/// matrix. When `budget` is in (0, total_pairs), a uniform subset of
/// `budget` pairs is drawn from `rng` (consuming randomness only in
/// that case, O(budget) work — no O(d^2) index materialization);
/// otherwise every pair is returned directly and the sampling path is
/// skipped entirely. The returned pair list is CHECKed duplicate-free.
/// `d >= 2`.
FeaturePairSelection SelectFeaturePairs(int64_t d, int64_t budget, Rng& rng);

/// The columns a pair subset touches, remapped to a compact block
/// index space for the stacked feature matrix of the batched HSIC
/// kernels: `used_cols` lists the touched columns in ASCENDING order
/// (the order feature projections are drawn in, which both the tape
/// and stats evaluation paths rely on for identical rng consumption),
/// and `block_pairs[p]` is `pairs[p]` rewritten in positions into
/// `used_cols`.
struct CompactPairBlocks {
  std::vector<int64_t> used_cols;
  std::vector<std::pair<int64_t, int64_t>> block_pairs;
};

/// Builds the compact column mapping for a pair subset over `d`
/// columns.
CompactPairBlocks CompactUsedColumns(
    int64_t d, const std::vector<std::pair<int64_t, int64_t>>& pairs);

}  // namespace sbrl

#endif  // SBRL_STATS_FEATURE_PAIRS_H_

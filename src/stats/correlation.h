#ifndef SBRL_STATS_CORRELATION_H_
#define SBRL_STATS_CORRELATION_H_

#include <cstdint>

#include "common/simd.h"
#include "tensor/matrix.h"
#include "tensor/random.h"

namespace sbrl {

/// Pearson correlation matrix among the columns of x (n x d) -> (d x d).
/// Zero-variance columns correlate 0 with everything (1 on diagonal).
Matrix PearsonCorrelationMatrix(const Matrix& x);

/// Symmetric matrix of weighted HSIC-RFF statistics between all column
/// pairs of x (diagonal = 0). This regenerates the paper's Fig. 5
/// nonlinear-correlation heat map; `max_dims > 0` restricts to a random
/// subset of columns (the paper samples 25 representation dimensions).
/// Per-pair feature draws come from `rng` exactly as WeightedHsicRff
/// makes them; the cosine features evaluate through the shared sweep
/// selected by `mode`, so the statistic and the stacked loss path use
/// the same epilogue.
Matrix PairwiseHsicRffMatrix(const Matrix& x, const Matrix& w,
                             int64_t num_features, Rng& rng,
                             int64_t max_dims = 0,
                             CosineMode mode = CosineMode::kVectorized);

/// Mean of the off-diagonal entries of a square symmetric matrix — the
/// summary number the paper quotes for Fig. 5 (0.85 / 0.64 / 0.58).
double MeanOffDiagonal(const Matrix& m);

}  // namespace sbrl

#endif  // SBRL_STATS_CORRELATION_H_

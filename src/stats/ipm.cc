#include "stats/ipm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/kernels.h"
#include "stats/weighted.h"
#include "tensor/linalg.h"

namespace sbrl {

double LinearMmd2(const Matrix& a, const Matrix& b) {
  Matrix wa = Matrix::Ones(a.rows(), 1);
  Matrix wb = Matrix::Ones(b.rows(), 1);
  return WeightedLinearMmd2(a, wa, b, wb);
}

double WeightedLinearMmd2(const Matrix& a, const Matrix& wa, const Matrix& b,
                          const Matrix& wb) {
  SBRL_CHECK_EQ(a.cols(), b.cols());
  Matrix mean_a = WeightedColMeans(a, wa);
  Matrix mean_b = WeightedColMeans(b, wb);
  double acc = 0.0;
  for (int64_t c = 0; c < a.cols(); ++c) {
    const double d = mean_a(0, c) - mean_b(0, c);
    acc += d * d;
  }
  return acc;
}

double RbfMmd2(const Matrix& a, const Matrix& b, double bandwidth) {
  Matrix wa = Matrix::Ones(a.rows(), 1);
  Matrix wb = Matrix::Ones(b.rows(), 1);
  return WeightedRbfMmd2(a, wa, b, wb, bandwidth);
}

double WeightedRbfMmd2(const Matrix& a, const Matrix& wa, const Matrix& b,
                       const Matrix& wb, double bandwidth) {
  SBRL_CHECK_EQ(a.cols(), b.cols());
  Matrix na = NormalizeWeights(wa);
  Matrix nb = NormalizeWeights(wb);
  Matrix kaa = RbfKernel(a, a, bandwidth);
  Matrix kbb = RbfKernel(b, b, bandwidth);
  Matrix kab = RbfKernel(a, b, bandwidth);
  // w_a^T Kaa w_a + w_b^T Kbb w_b - 2 w_a^T Kab w_b
  const Matrix kaa_wa = Matmul(kaa, na);
  const Matrix kbb_wb = Matmul(kbb, nb);
  const Matrix kab_wb = Matmul(kab, nb);
  double term_aa = Dot(na, kaa_wa);
  double term_bb = Dot(nb, kbb_wb);
  double term_ab = Dot(na, kab_wb);
  double mmd2 = term_aa + term_bb - 2.0 * term_ab;
  return mmd2 > 0.0 ? mmd2 : 0.0;  // guard numeric round-off
}

namespace {

/// W1 between the 1-D samples `pa`, `pb` via quantile coupling on a
/// common grid of max(n, m) quantiles.
double Projected1dW1(const Matrix& pa, const Matrix& pb) {
  std::vector<double> va = pa.ToVector();
  std::vector<double> vb = pb.ToVector();
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  const int64_t grid = std::max<int64_t>(va.size(), vb.size());
  double w1 = 0.0;
  for (int64_t g = 0; g < grid; ++g) {
    const double q =
        (static_cast<double>(g) + 0.5) / static_cast<double>(grid);
    const auto qa = va[static_cast<size_t>(q * static_cast<double>(va.size()))];
    const auto qb = vb[static_cast<size_t>(q * static_cast<double>(vb.size()))];
    w1 += std::abs(qa - qb);
  }
  return w1 / static_cast<double>(grid);
}

}  // namespace

double SlicedWasserstein1(const Matrix& a, const Matrix& b,
                          int64_t num_projections, Rng& rng) {
  SBRL_CHECK_EQ(a.cols(), b.cols());
  SBRL_CHECK_GT(num_projections, 0);
  SBRL_CHECK_GT(a.rows(), 0);
  SBRL_CHECK_GT(b.rows(), 0);
  const int64_t d = a.cols();
  double acc = 0.0;
  for (int64_t p = 0; p < num_projections; ++p) {
    Matrix dir = rng.Randn(d, 1);
    const double norm = dir.Norm();
    if (norm < 1e-12) continue;
    dir *= 1.0 / norm;
    acc += Projected1dW1(Matmul(a, dir), Matmul(b, dir));
  }
  return acc / static_cast<double>(num_projections);
}

double MaxSlicedWasserstein1(const Matrix& a, const Matrix& b,
                             int64_t num_projections, Rng& rng) {
  SBRL_CHECK_EQ(a.cols(), b.cols());
  SBRL_CHECK_GT(a.rows(), 0);
  SBRL_CHECK_GT(b.rows(), 0);
  const int64_t d = a.cols();
  double worst = 0.0;
  // Coordinate axes catch single-feature shifts exactly.
  for (int64_t c = 0; c < d; ++c) {
    worst = std::max(worst, Projected1dW1(a.Col(c), b.Col(c)));
  }
  for (int64_t p = 0; p < num_projections; ++p) {
    Matrix dir = rng.Randn(d, 1);
    const double norm = dir.Norm();
    if (norm < 1e-12) continue;
    dir *= 1.0 / norm;
    worst = std::max(worst, Projected1dW1(Matmul(a, dir), Matmul(b, dir)));
  }
  return worst;
}

}  // namespace sbrl

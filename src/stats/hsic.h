#ifndef SBRL_STATS_HSIC_H_
#define SBRL_STATS_HSIC_H_

#include <cstdint>

#include "common/simd.h"
#include "stats/rff.h"
#include "tensor/matrix.h"
#include "tensor/random.h"

namespace sbrl {

/// Biased V-statistic estimator of the Hilbert-Schmidt Independence
/// Criterion between two (n x 1) samples under RBF kernels:
/// HSIC = tr(K_a H K_b H) / n^2 with centering H = I - 11^T / n.
/// Zero iff (asymptotically) the samples are independent.
double Hsic(const Matrix& a, const Matrix& b, double bandwidth_a,
            double bandwidth_b);

/// Same with median-heuristic bandwidths.
double Hsic(const Matrix& a, const Matrix& b);

/// HSIC with Random Fourier Features (paper Eq. 7): the squared
/// Frobenius norm of the cross-covariance between `num_features` random
/// cosine features of each variable. `a` and `b` are (n x 1) columns.
/// Fresh feature draws come from `rng`; `mode` selects the cosine
/// evaluation path.
double HsicRff(const Matrix& a, const Matrix& b, int64_t num_features,
               Rng& rng, CosineMode mode = CosineMode::kVectorized);

/// Weighted HSIC-RFF (paper Eq. 9): covariances are computed under the
/// normalized sample weights `w` (n x 1, non-negative). Consumes two
/// SampleRff draws from `rng` (one per variable), then evaluates the
/// cosine features through the sweep selected by `mode`.
double WeightedHsicRff(const Matrix& a, const Matrix& b, const Matrix& w,
                       int64_t num_features, Rng& rng,
                       CosineMode mode = CosineMode::kVectorized);

/// Sum of WeightedHsicRff over all unordered column pairs (a < b) of
/// `x` (n x d) — the paper's decorrelation loss L_D (Eq. 10) as a
/// diagnostic statistic. If `max_pairs > 0`, a uniformly random subset
/// of that many pairs is measured and the sum is rescaled to the full
/// pair count. Evaluated through the batched block-diagonal kernel
/// (one stacked feature matrix, one cross-product dispatch for every
/// pair) — the non-differentiable mirror of the kBatched mode of
/// HsicRffDecorrelationLoss, with the same rng discipline: the pair
/// subset comes out of `rng`, then one epoch seed, and per-column
/// projections are slot draws keyed by (epoch, k, column index).
double PairwiseWeightedHsicRff(const Matrix& x, const Matrix& w,
                               int64_t num_features, Rng& rng,
                               int64_t max_pairs = 0,
                               CosineMode mode = CosineMode::kVectorized);

}  // namespace sbrl

#endif  // SBRL_STATS_HSIC_H_

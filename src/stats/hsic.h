#ifndef SBRL_STATS_HSIC_H_
#define SBRL_STATS_HSIC_H_

#include <cstdint>

#include "stats/rff.h"
#include "tensor/matrix.h"
#include "tensor/random.h"

namespace sbrl {

/// Biased V-statistic estimator of the Hilbert-Schmidt Independence
/// Criterion between two (n x 1) samples under RBF kernels:
/// HSIC = tr(K_a H K_b H) / n^2 with centering H = I - 11^T / n.
/// Zero iff (asymptotically) the samples are independent.
double Hsic(const Matrix& a, const Matrix& b, double bandwidth_a,
            double bandwidth_b);

/// Same with median-heuristic bandwidths.
double Hsic(const Matrix& a, const Matrix& b);

/// HSIC with Random Fourier Features (paper Eq. 7): the squared
/// Frobenius norm of the cross-covariance between `num_features` random
/// cosine features of each variable. `a` and `b` are (n x 1) columns.
/// Fresh feature draws come from `rng`.
double HsicRff(const Matrix& a, const Matrix& b, int64_t num_features,
               Rng& rng);

/// Weighted HSIC-RFF (paper Eq. 9): covariances are computed under the
/// normalized sample weights `w` (n x 1, non-negative).
double WeightedHsicRff(const Matrix& a, const Matrix& b, const Matrix& w,
                       int64_t num_features, Rng& rng);

/// Sum of WeightedHsicRff over all unordered column pairs (a < b) of
/// `x` (n x d) — the paper's decorrelation loss L_D (Eq. 10) as a
/// diagnostic statistic. If `max_pairs > 0`, a uniformly random subset
/// of that many pairs is measured and the sum is rescaled to the full
/// pair count. Evaluated through the batched block-diagonal kernel
/// (one stacked feature matrix, one cross-product dispatch for every
/// pair) — the non-differentiable mirror of the kBatched mode of
/// HsicRffDecorrelationLoss.
double PairwiseWeightedHsicRff(const Matrix& x, const Matrix& w,
                               int64_t num_features, Rng& rng,
                               int64_t max_pairs = 0);

}  // namespace sbrl

#endif  // SBRL_STATS_HSIC_H_

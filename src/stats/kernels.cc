#include "stats/kernels.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/linalg.h"

namespace sbrl {

Matrix RbfKernel(const Matrix& a, const Matrix& b, double bandwidth) {
  SBRL_CHECK_GT(bandwidth, 0.0);
  Matrix d2 = PairwiseSquaredDistances(a, b);
  const double scale = -0.5 / (bandwidth * bandwidth);
  return Map(d2, [scale](double v) { return std::exp(scale * v); });
}

double MedianHeuristicBandwidth(const Matrix& x) {
  SBRL_CHECK_GT(x.rows(), 1);
  Matrix d2 = PairwiseSquaredDistances(x, x);
  std::vector<double> dists;
  dists.reserve(static_cast<size_t>(x.rows() * (x.rows() - 1) / 2));
  for (int64_t i = 0; i < x.rows(); ++i) {
    for (int64_t j = i + 1; j < x.rows(); ++j) {
      dists.push_back(std::sqrt(d2(i, j)));
    }
  }
  const size_t mid = dists.size() / 2;
  std::nth_element(dists.begin(), dists.begin() + static_cast<long>(mid),
                   dists.end());
  const double median = dists[mid];
  return median > 1e-12 ? median : 1.0;
}

Matrix LinearKernel(const Matrix& a, const Matrix& b) {
  return MatmulTransB(a, b);
}

}  // namespace sbrl

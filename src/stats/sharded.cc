#include "stats/sharded.h"

#include <utility>

#include "common/env.h"
#include "stats/rff.h"
#include "tensor/linalg.h"

namespace sbrl {

ShardedOptions ResolveShardedOptions(const ShardedOptions& options) {
  ShardedOptions resolved = options;
  if (resolved.shard_rows <= 0) {
    resolved.shard_rows =
        ParseEnvInt64("SBRL_SHARD_ROWS", /*min_value=*/1, /*fallback=*/8192);
  }
  if (resolved.workers <= 0) {
    resolved.workers =
        ParseEnvInt64("SBRL_SHARD_WORKERS", /*min_value=*/1,
                      /*fallback=*/ThreadPool::GlobalParallelism());
  }
  return resolved;
}

ColumnMoments CombineColumnMoments(ColumnMoments a, ColumnMoments b) {
  SBRL_CHECK(a.sum.same_shape(b.sum));
  a.rows += b.rows;
  a.sum += b.sum;
  a.sum_sq += b.sum_sq;
  return a;
}

StatusOr<ColumnMoments> ShardedColumnMoments(DatasetBlockReader& reader,
                                             const ShardedOptions& options) {
  const int64_t d = reader.dim();
  return ShardedReduce<ColumnMoments>(
      reader, options,
      [d](int64_t /*shard*/, int64_t /*slot*/, const CausalDataset& block) {
        ColumnMoments m;
        m.rows = block.n();
        m.sum = Matrix(1, d);
        m.sum_sq = Matrix(1, d);
        for (int64_t i = 0; i < block.n(); ++i) {
          const double* row = block.x.data() + i * d;
          for (int64_t j = 0; j < d; ++j) {
            m.sum(0, j) += row[j];
            m.sum_sq(0, j) += row[j] * row[j];
          }
        }
        return m;
      },
      &CombineColumnMoments);
}

HsicRffMoments CombineHsicRffMoments(HsicRffMoments a, HsicRffMoments b) {
  SBRL_CHECK(a.cross.same_shape(b.cross));
  a.rows += b.rows;
  a.sum_a += b.sum_a;
  a.sum_b += b.sum_b;
  a.cross += b.cross;
  return a;
}

double FinalizeHsicRff(const HsicRffMoments& moments) {
  SBRL_CHECK_GT(moments.rows, 0);
  const int64_t k = moments.cross.cols();
  const double inv_n = 1.0 / static_cast<double>(moments.rows);
  double frob2 = 0.0;
  for (int64_t i = 0; i < k; ++i) {
    const double mean_a = moments.sum_a(0, i) * inv_n;
    for (int64_t j = 0; j < k; ++j) {
      const double c =
          moments.cross(i, j) * inv_n - mean_a * moments.sum_b(0, j) * inv_n;
      frob2 += c * c;
    }
  }
  return frob2;
}

namespace {

/// RFF feature map of the selected column (covariate index or
/// kOutcomeColumn) of one block: (rows x k).
Matrix BlockFeatures(const CausalDataset& block, int64_t col,
                     const RffProjection& proj) {
  if (col == kOutcomeColumn) {
    return ApplyRff(proj, block.y, CosineMode::kExact);
  }
  return ApplyRffToColumn(proj, block.x, col, CosineMode::kExact);
}

}  // namespace

StatusOr<double> ShardedHsicRff(DatasetBlockReader& reader, int64_t col_a,
                                int64_t col_b, int64_t num_features,
                                uint64_t draw_seed,
                                const ShardedOptions& options) {
  SBRL_CHECK_GT(num_features, 0);
  SBRL_CHECK(col_a == kOutcomeColumn ||
             (col_a >= 0 && col_a < reader.dim()));
  SBRL_CHECK(col_b == kOutcomeColumn ||
             (col_b >= 0 && col_b < reader.dim()));
  // Counter-based slot draws: both projections are pure functions of
  // (draw_seed, slot), never of the stream, so every shard sees the
  // same features no matter when or where it is processed.
  const RffProjection proj_a = SampleRffSlot(draw_seed, 1, num_features, 0);
  const RffProjection proj_b = SampleRffSlot(draw_seed, 1, num_features, 1);
  int64_t rows = 0;
  SBRL_ASSIGN_OR_RETURN(
      const HsicRffMoments reduced,
      ShardedReduce<HsicRffMoments>(
          reader, options,
          [&](int64_t /*shard*/, int64_t /*slot*/,
              const CausalDataset& block) {
            const Matrix phi = BlockFeatures(block, col_a, proj_a);
            const Matrix psi = BlockFeatures(block, col_b, proj_b);
            HsicRffMoments m;
            m.rows = block.n();
            m.sum_a = ColSum(phi);
            m.sum_b = ColSum(psi);
            m.cross = MatmulTransA(phi, psi);
            return m;
          },
          &CombineHsicRffMoments, &rows));
  return FinalizeHsicRff(reduced);
}

}  // namespace sbrl

#include "stats/sharded.h"

#include <cmath>
#include <utility>

#include "common/env.h"
#include "common/simd.h"
#include "stats/rff.h"
#include "tensor/linalg.h"
#include "tensor/linalg_f32.h"

namespace sbrl {

ShardedOptions ResolveShardedOptions(const ShardedOptions& options) {
  ShardedOptions resolved = options;
  if (resolved.shard_rows <= 0) {
    resolved.shard_rows =
        ParseEnvInt64("SBRL_SHARD_ROWS", /*min_value=*/1, /*fallback=*/8192);
  }
  if (resolved.workers <= 0) {
    resolved.workers =
        ParseEnvInt64("SBRL_SHARD_WORKERS", /*min_value=*/1,
                      /*fallback=*/ThreadPool::GlobalParallelism());
  }
  // Env wins over the field (the SBRL_ISA-style override pattern);
  // resolution is idempotent, so already-resolved options pass through.
  resolved.precision = ResolvePrecision(options.precision);
  return resolved;
}

ColumnMoments CombineColumnMoments(ColumnMoments a, ColumnMoments b) {
  SBRL_CHECK(a.sum.same_shape(b.sum));
  a.rows += b.rows;
  a.sum += b.sum;
  a.sum_sq += b.sum_sq;
  return a;
}

StatusOr<ColumnMoments> ShardedColumnMoments(DatasetBlockReader& reader,
                                             const ShardedOptions& options) {
  const int64_t d = reader.dim();
  const ShardedOptions opts = ResolveShardedOptions(options);
  if (opts.precision == Precision::kF32) {
    return ShardedReduceF32<ColumnMoments>(
        reader, opts,
        [d](int64_t /*shard*/, int64_t /*slot*/, const CausalBlockF32& block) {
          // f32 storage, f64 accumulation: each stored covariate was
          // rounded once at staging; the running sums stay double so
          // accumulation error does not grow with n.
          ColumnMoments m;
          m.rows = block.n();
          m.sum = Matrix(1, d);
          m.sum_sq = Matrix(1, d);
          for (int64_t i = 0; i < block.n(); ++i) {
            const float* row = block.x.data() + i * d;
            for (int64_t j = 0; j < d; ++j) {
              const double v = static_cast<double>(row[j]);
              m.sum(0, j) += v;
              m.sum_sq(0, j) += v * v;
            }
          }
          return m;
        },
        &CombineColumnMoments);
  }
  return ShardedReduce<ColumnMoments>(
      reader, opts,
      [d](int64_t /*shard*/, int64_t /*slot*/, const CausalDataset& block) {
        ColumnMoments m;
        m.rows = block.n();
        m.sum = Matrix(1, d);
        m.sum_sq = Matrix(1, d);
        for (int64_t i = 0; i < block.n(); ++i) {
          const double* row = block.x.data() + i * d;
          for (int64_t j = 0; j < d; ++j) {
            m.sum(0, j) += row[j];
            m.sum_sq(0, j) += row[j] * row[j];
          }
        }
        return m;
      },
      &CombineColumnMoments);
}

HsicRffMoments CombineHsicRffMoments(HsicRffMoments a, HsicRffMoments b) {
  SBRL_CHECK(a.cross.same_shape(b.cross));
  a.rows += b.rows;
  a.sum_a += b.sum_a;
  a.sum_b += b.sum_b;
  a.cross += b.cross;
  return a;
}

double FinalizeHsicRff(const HsicRffMoments& moments) {
  SBRL_CHECK_GT(moments.rows, 0);
  const int64_t k = moments.cross.cols();
  const double inv_n = 1.0 / static_cast<double>(moments.rows);
  double frob2 = 0.0;
  for (int64_t i = 0; i < k; ++i) {
    const double mean_a = moments.sum_a(0, i) * inv_n;
    for (int64_t j = 0; j < k; ++j) {
      const double c =
          moments.cross(i, j) * inv_n - mean_a * moments.sum_b(0, j) * inv_n;
      frob2 += c * c;
    }
  }
  return frob2;
}

namespace {

/// RFF feature map of the selected column (covariate index or
/// kOutcomeColumn) of one block: (rows x k).
Matrix BlockFeatures(const CausalDataset& block, int64_t col,
                     const RffProjection& proj) {
  if (col == kOutcomeColumn) {
    return ApplyRff(proj, block.y, CosineMode::kExact);
  }
  return ApplyRffToColumn(proj, block.x, col, CosineMode::kExact);
}

/// f32-tier feature map of the selected column of an f32-staged block
/// (`w` / `phi` are the projection narrowed once by the caller): the
/// angle pass runs in f32 and the sqrt(2)-cosine epilogue goes through
/// the f32 sweep kernels — this is the tier's point, so it takes the
/// vectorized sweep rather than the f64 path's kExact (the f32 tier's
/// cross-ISA contract is tolerance, not bitwise).
MatrixF32 BlockFeaturesF32(const CausalBlockF32& block, int64_t col,
                           const MatrixF32& w, const MatrixF32& phi) {
  const int64_t n = block.n();
  const int64_t kf = w.cols();
  const float* wd = w.data();
  const float* pd = phi.data();
  MatrixF32 out(n, kf);
  float* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const float v = col == kOutcomeColumn
                        ? static_cast<float>(block.y(i, 0))
                        : block.x(i, col);
    float* orow = od + i * kf;
    for (int64_t f = 0; f < kf; ++f) orow[f] = v * wd[f] + pd[f];
  }
  ScaledCosRowsF32InPlace(od, n, kf, kf,
                          static_cast<float>(std::sqrt(2.0)),
                          CosineMode::kVectorized);
  return out;
}

/// Per-column sums of an f32 matrix, accumulated in f64 (1 x cols) —
/// the "f32 storage, f64 accumulation" half of the HSIC f32 leaf.
Matrix ColSumWidened(const MatrixF32& m) {
  Matrix out(1, m.cols());
  double* od = out.data();
  const float* md = m.data();
  for (int64_t i = 0; i < m.rows(); ++i) {
    const float* row = md + i * m.cols();
    for (int64_t j = 0; j < m.cols(); ++j) od[j] += static_cast<double>(row[j]);
  }
  return out;
}

}  // namespace

StatusOr<double> ShardedHsicRff(DatasetBlockReader& reader, int64_t col_a,
                                int64_t col_b, int64_t num_features,
                                uint64_t draw_seed,
                                const ShardedOptions& options) {
  SBRL_CHECK_GT(num_features, 0);
  SBRL_CHECK(col_a == kOutcomeColumn ||
             (col_a >= 0 && col_a < reader.dim()));
  SBRL_CHECK(col_b == kOutcomeColumn ||
             (col_b >= 0 && col_b < reader.dim()));
  // Counter-based slot draws: both projections are pure functions of
  // (draw_seed, slot), never of the stream, so every shard sees the
  // same features no matter when or where it is processed.
  const RffProjection proj_a = SampleRffSlot(draw_seed, 1, num_features, 0);
  const RffProjection proj_b = SampleRffSlot(draw_seed, 1, num_features, 1);
  const ShardedOptions opts = ResolveShardedOptions(options);
  int64_t rows = 0;
  if (opts.precision == Precision::kF32) {
    // Narrow the projections once; every shard then works from the
    // same f32 frequencies/phases no matter when it is processed.
    const MatrixF32 wa = MatrixF32::FromF64(proj_a.w);
    const MatrixF32 pa = MatrixF32::FromF64(proj_a.phi);
    const MatrixF32 wb = MatrixF32::FromF64(proj_b.w);
    const MatrixF32 pb = MatrixF32::FromF64(proj_b.phi);
    SBRL_ASSIGN_OR_RETURN(
        const HsicRffMoments reduced,
        ShardedReduceF32<HsicRffMoments>(
            reader, opts,
            [&](int64_t /*shard*/, int64_t /*slot*/,
                const CausalBlockF32& block) {
              const MatrixF32 phi = BlockFeaturesF32(block, col_a, wa, pa);
              const MatrixF32 psi = BlockFeaturesF32(block, col_b, wb, pb);
              HsicRffMoments m;
              m.rows = block.n();
              // Feature sums accumulate in f64 straight from the f32
              // features; the cross products run on the f32 matmul
              // tables WITHIN the shard (<= shard_rows f32 dot terms,
              // the tier's documented budget) and widen once — all
              // cross-shard accumulation is f64 via the combine.
              m.sum_a = ColSumWidened(phi);
              m.sum_b = ColSumWidened(psi);
              m.cross = MatmulTransAF32(phi, psi).ToF64();
              return m;
            },
            &CombineHsicRffMoments, &rows));
    return FinalizeHsicRff(reduced);
  }
  SBRL_ASSIGN_OR_RETURN(
      const HsicRffMoments reduced,
      ShardedReduce<HsicRffMoments>(
          reader, opts,
          [&](int64_t /*shard*/, int64_t /*slot*/,
              const CausalDataset& block) {
            const Matrix phi = BlockFeatures(block, col_a, proj_a);
            const Matrix psi = BlockFeatures(block, col_b, proj_b);
            HsicRffMoments m;
            m.rows = block.n();
            m.sum_a = ColSum(phi);
            m.sum_b = ColSum(psi);
            m.cross = MatmulTransA(phi, psi);
            return m;
          },
          &CombineHsicRffMoments, &rows));
  return FinalizeHsicRff(reduced);
}

}  // namespace sbrl

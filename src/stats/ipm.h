#ifndef SBRL_STATS_IPM_H_
#define SBRL_STATS_IPM_H_

#include <cstdint>

#include "tensor/matrix.h"
#include "tensor/random.h"

namespace sbrl {

/// Integral Probability Metric family used by the Balancing Regularizer
/// (paper Eq. 3-4). All functions measure the distance between the row
/// distributions of `a` (n x d) and `b` (m x d).

/// Squared linear MMD: ||mean(a) - mean(b)||^2 (the "mmd2_lin" of the
/// CFR reference implementation).
double LinearMmd2(const Matrix& a, const Matrix& b);

/// Weighted squared linear MMD under per-group sample weights
/// (normalized internally).
double WeightedLinearMmd2(const Matrix& a, const Matrix& wa, const Matrix& b,
                          const Matrix& wb);

/// Squared RBF-kernel MMD (biased V-statistic).
double RbfMmd2(const Matrix& a, const Matrix& b, double bandwidth);

/// Weighted squared RBF-kernel MMD under per-group weights.
double WeightedRbfMmd2(const Matrix& a, const Matrix& wa, const Matrix& b,
                       const Matrix& wb, double bandwidth);

/// Sliced 1-Wasserstein distance: expectation over `num_projections`
/// random directions of the 1-D W1 distance between projected samples.
/// Non-differentiable; used as an evaluation-side IPM.
double SlicedWasserstein1(const Matrix& a, const Matrix& b,
                          int64_t num_projections, Rng& rng);

/// Max-sliced 1-Wasserstein: the maximum projected W1 over the d
/// coordinate axes plus `num_projections` random directions. Far more
/// sensitive than the mean-sliced variant when only a few coordinates
/// shift (e.g. the paper's unstable block V), which is what the OOD
/// level detector needs.
double MaxSlicedWasserstein1(const Matrix& a, const Matrix& b,
                             int64_t num_projections, Rng& rng);

}  // namespace sbrl

#endif  // SBRL_STATS_IPM_H_

#include "stats/weighted.h"

#include "tensor/linalg.h"

namespace sbrl {

Matrix NormalizeWeights(const Matrix& w) {
  SBRL_CHECK_EQ(w.cols(), 1);
  SBRL_CHECK_GT(w.rows(), 0);
  double total = 0.0;
  for (int64_t i = 0; i < w.rows(); ++i) {
    SBRL_CHECK_GE(w(i, 0), 0.0) << "negative sample weight at row " << i;
    total += w(i, 0);
  }
  SBRL_CHECK_GT(total, 0.0) << "all sample weights are zero";
  return w * (1.0 / total);
}

double WeightedMean(const Matrix& col, const Matrix& w) {
  SBRL_CHECK_EQ(col.cols(), 1);
  SBRL_CHECK_EQ(col.rows(), w.rows());
  Matrix wn = NormalizeWeights(w);
  return Dot(col, wn);
}

Matrix WeightedColMeans(const Matrix& x, const Matrix& w) {
  SBRL_CHECK_EQ(x.rows(), w.rows());
  Matrix wn = NormalizeWeights(w);
  // (1 x n) * (n x d) = (1 x d)
  return MatmulTransA(wn, x);
}

double WeightedCovariance(const Matrix& a, const Matrix& b, const Matrix& w) {
  SBRL_CHECK_EQ(a.cols(), 1);
  SBRL_CHECK_EQ(b.cols(), 1);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  Matrix wn = NormalizeWeights(w);
  double e_ab = 0.0, e_a = 0.0, e_b = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    e_ab += wn(i, 0) * a(i, 0) * b(i, 0);
    e_a += wn(i, 0) * a(i, 0);
    e_b += wn(i, 0) * b(i, 0);
  }
  return e_ab - e_a * e_b;
}

Matrix WeightedCrossCovariance(const Matrix& u, const Matrix& v,
                               const Matrix& w) {
  SBRL_CHECK_EQ(u.rows(), v.rows());
  SBRL_CHECK_EQ(u.rows(), w.rows());
  Matrix wn = NormalizeWeights(w);
  // E_w[u_i v_j] = U^T diag(wn) V
  Matrix uw = MulColBroadcast(u, wn);       // (n x ku) rows scaled
  Matrix e_uv = MatmulTransA(uw, v);        // (ku x kv)
  Matrix e_u = MatmulTransA(wn, u);         // (1 x ku)
  Matrix e_v = MatmulTransA(wn, v);         // (1 x kv)
  for (int64_t i = 0; i < e_uv.rows(); ++i) {
    for (int64_t j = 0; j < e_uv.cols(); ++j) {
      e_uv(i, j) -= e_u(0, i) * e_v(0, j);
    }
  }
  return e_uv;
}

double WeightedVariance(const Matrix& col, const Matrix& w) {
  return WeightedCovariance(col, col, w);
}

}  // namespace sbrl

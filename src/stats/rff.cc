#include "stats/rff.h"

#include <cmath>

#include "tensor/linalg.h"

namespace sbrl {

RffProjection SampleRff(Rng& rng, int64_t in_dim, int64_t num_features) {
  SBRL_CHECK_GT(in_dim, 0);
  SBRL_CHECK_GT(num_features, 0);
  RffProjection proj;
  proj.w = rng.Randn(in_dim, num_features);
  proj.phi = rng.Rand(1, num_features, 0.0, 2.0 * M_PI);
  return proj;
}

Matrix ApplyRff(const RffProjection& proj, const Matrix& x) {
  SBRL_CHECK_EQ(x.cols(), proj.in_dim());
  Matrix projected = AddRowBroadcast(Matmul(x, proj.w), proj.phi);
  const double root2 = std::sqrt(2.0);
  return Map(projected, [root2](double v) { return root2 * std::cos(v); });
}

}  // namespace sbrl

#include "stats/rff.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "tensor/linalg.h"

namespace sbrl {

namespace {

/// splitmix64 finalizer: a fast, well-mixed 64-bit hash used to derive
/// independent per-slot seeds from (epoch, in_dim, k, slot).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Writes the angle block v * w[f] + phi[f] (no cosine, no scale) of
/// column `col` into columns [col_offset, col_offset + k) of `*out` —
/// the first half of every column RFF evaluation. The cosine epilogue
/// is applied afterwards by the shared sweep, over as large a
/// contiguous run as the caller can arrange.
void WriteRffAnglesToColumnInto(const RffProjection& proj, const Matrix& x,
                                int64_t col, Matrix* out,
                                int64_t col_offset) {
  SBRL_CHECK_EQ(proj.in_dim(), 1);
  SBRL_CHECK(col >= 0 && col < x.cols());
  const int64_t n = x.rows(), kf = proj.num_features();
  SBRL_CHECK_EQ(out->rows(), n);
  SBRL_CHECK(col_offset >= 0 && col_offset + kf <= out->cols())
      << "feature block [" << col_offset << ", " << col_offset + kf
      << ") out of range for " << out->ShapeString();
  const double* xcol = x.data() + col;
  const int64_t stride = x.cols();
  const double* wd = proj.w.data();
  const double* phid = proj.phi.data();
  const int64_t ocols = out->cols();
  double* od = out->data() + col_offset;
  for (int64_t i = 0; i < n; ++i) {
    const double v = xcol[i * stride];
    double* orow = od + i * ocols;
    for (int64_t f = 0; f < kf; ++f) {
      orow[f] = v * wd[f] + phid[f];
    }
  }
}

/// Shared body of the two StackRffColumns overloads once the per-column
/// projections are in hand: parallel per-column angle fill, then ONE
/// contiguous scaled-cosine sweep over the whole flat buffer.
void StackRffColumnsImpl(const Matrix& x, const std::vector<int64_t>& cols,
                         const std::vector<const RffProjection*>& projs,
                         int64_t k, Matrix* out, CosineMode mode) {
  const int64_t n_cols = static_cast<int64_t>(cols.size());
  SBRL_CHECK_EQ(static_cast<int64_t>(projs.size()), n_cols);
  SBRL_CHECK_EQ(out->rows(), x.rows());
  SBRL_CHECK_EQ(out->cols(), n_cols * k);
  // The angle fill is ~2 flops per element; weigh columns accordingly
  // so the serial cutoff engages at comparable wall cost to the matmul
  // kernels. (The cosine cost moved to the flat sweep below.)
  const int64_t work_per_col = x.rows() * k * 2;
  const int64_t grain = std::max<int64_t>(
      1, SerialCutoff() / std::max<int64_t>(1, work_per_col));
  ParallelFor(0, n_cols, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      WriteRffAnglesToColumnInto(*projs[static_cast<size_t>(i)], x,
                                 cols[static_cast<size_t>(i)], out, i * k);
    }
  });
  // Flat-angle epilogue: the full (n x n_cols*k) buffer is one
  // contiguous run, so the vectorized kernel sees long trip counts
  // instead of k-wide inner loops.
  ScaledCosInPlace(out->data(), out->size(), std::sqrt(2.0), mode);
}

}  // namespace

RffProjection SampleRff(Rng& rng, int64_t in_dim, int64_t num_features) {
  SBRL_CHECK_GT(in_dim, 0);
  SBRL_CHECK_GT(num_features, 0);
  RffProjection proj;
  proj.w = rng.Randn(in_dim, num_features);
  proj.phi = rng.Rand(1, num_features, 0.0, 2.0 * M_PI);
  return proj;
}

uint64_t RffSlotSeed(uint64_t epoch_seed, int64_t in_dim,
                     int64_t num_features, int64_t slot) {
  uint64_t h = SplitMix64(epoch_seed);
  h = SplitMix64(h ^ static_cast<uint64_t>(in_dim));
  h = SplitMix64(h ^ static_cast<uint64_t>(num_features));
  return SplitMix64(h ^ static_cast<uint64_t>(slot));
}

RffProjection SampleRffSlot(uint64_t epoch_seed, int64_t in_dim,
                            int64_t num_features, int64_t slot) {
  Rng rng(RffSlotSeed(epoch_seed, in_dim, num_features, slot));
  return SampleRff(rng, in_dim, num_features);
}

bool SharedRffProjectionCache::Lookup(uint64_t epoch_seed, int64_t in_dim,
                                      int64_t num_features, int64_t slot,
                                      RffProjection* out) const {
  SBRL_CHECK(out != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find({epoch_seed, in_dim, num_features, slot});
  if (it == entries_.end()) return false;
  *out = it->second;  // copy under the lock: eviction can never dangle
  ++hits_;
  return true;
}

void SharedRffProjectionCache::Insert(uint64_t epoch_seed, int64_t in_dim,
                                      int64_t num_features, int64_t slot,
                                      const RffProjection& proj) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{epoch_seed, in_dim, num_features, slot};
  const auto inserted = entries_.emplace(key, proj);
  if (!inserted.second) return;  // concurrent duplicate: first wins
  auto epoch_it = epoch_keys_.find(epoch_seed);
  if (epoch_it == epoch_keys_.end()) {
    epoch_order_.push_back(epoch_seed);
    epoch_it = epoch_keys_.emplace(epoch_seed, std::vector<Key>()).first;
  }
  epoch_it->second.push_back(key);
  EvictOldEpochsLocked();
}

int64_t SharedRffProjectionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

int64_t SharedRffProjectionCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

void SharedRffProjectionCache::EvictOldEpochsLocked() {
  while (static_cast<int64_t>(epoch_order_.size()) > kMaxEpochs) {
    const uint64_t victim = epoch_order_.front();
    epoch_order_.pop_front();
    const auto it = epoch_keys_.find(victim);
    SBRL_CHECK(it != epoch_keys_.end());
    for (const Key& key : it->second) entries_.erase(key);
    epoch_keys_.erase(it);
  }
}

void RffProjectionCache::BeginEpoch(uint64_t epoch_seed) {
  if (has_epoch_ && epoch_seed_ == epoch_seed) return;
  epoch_seed_ = epoch_seed;
  has_epoch_ = true;
  draws_this_epoch_ = 0;
  slots_.clear();
}

const RffProjection& RffProjectionCache::Slot(int64_t in_dim,
                                              int64_t num_features,
                                              int64_t slot) {
  SBRL_CHECK(has_epoch_) << "RffProjectionCache::Slot before BeginEpoch";
  SBRL_CHECK_GE(slot, 0);
  std::deque<RffProjection>& stream = slots_[{in_dim, num_features}];
  if (static_cast<int64_t>(stream.size()) <= slot) {
    stream.resize(static_cast<size_t>(slot) + 1);
  }
  RffProjection& entry = stream[static_cast<size_t>(slot)];
  if (entry.w.rows() == 0) {  // sentinel: not drawn yet
    // Second level: the session-shared cache may already hold another
    // run's draw of this slot (bitwise identical by slot purity). The
    // hit is COPIED into local deque storage so the reference contract
    // of Slot() never depends on shared-cache eviction.
    if (shared_ == nullptr ||
        !shared_->Lookup(epoch_seed_, in_dim, num_features, slot, &entry)) {
      entry = SampleRffSlot(epoch_seed_, in_dim, num_features, slot);
      ++draws_this_epoch_;
      if (shared_ != nullptr) {
        shared_->Insert(epoch_seed_, in_dim, num_features, slot, entry);
      }
    }
  }
  return entry;
}

Matrix ApplyRff(const RffProjection& proj, const Matrix& x,
                CosineMode mode) {
  SBRL_CHECK_EQ(x.cols(), proj.in_dim());
  // Angle pass: the projection sum accumulates over in_dim in ascending
  // order exactly like Matmul, so angles match the former Matmul +
  // AddRowBroadcast chain without the intermediate matrices. The
  // cosine epilogue then runs over the whole buffer as one flat sweep.
  const int64_t n = x.rows(), d = x.cols(), kf = proj.num_features();
  const double* xd = x.data();
  const double* wd = proj.w.data();
  const double* phid = proj.phi.data();
  Matrix out(n, kf);
  double* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const double* xrow = xd + i * d;
    double* orow = od + i * kf;
    for (int64_t f = 0; f < kf; ++f) {
      double acc = 0.0;
      for (int64_t j = 0; j < d; ++j) acc += xrow[j] * wd[j * kf + f];
      orow[f] = acc + phid[f];
    }
  }
  ScaledCosInPlace(out.data(), out.size(), std::sqrt(2.0), mode);
  return out;
}

Matrix ApplyRffToColumn(const RffProjection& proj, const Matrix& x,
                        int64_t col, CosineMode mode) {
  Matrix out(x.rows(), proj.num_features());
  ApplyRffToColumnInto(proj, x, col, &out, 0, mode);
  return out;
}

void ApplyRffToColumnInto(const RffProjection& proj, const Matrix& x,
                          int64_t col, Matrix* out, int64_t col_offset,
                          CosineMode mode) {
  WriteRffAnglesToColumnInto(proj, x, col, out, col_offset);
  // Shared epilogue: one strided sweep over the written block (a flat
  // sweep when the block spans all of *out), so exact/vectorized mode
  // selection applies here exactly as in the stacked loss path.
  ScaledCosRowsInPlace(out->data() + col_offset, out->rows(),
                       proj.num_features(), out->cols(), std::sqrt(2.0),
                       mode);
}

void StackRffColumns(const Matrix& x, const std::vector<int64_t>& cols,
                     int64_t num_features, Rng& rng, Matrix* out,
                     CosineMode mode) {
  // Projections come out of `rng` serially so the stream never depends
  // on the worker count; only the angle fill and sweep are parallel.
  std::vector<RffProjection> projs;
  projs.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    projs.push_back(SampleRff(rng, 1, num_features));
  }
  StackRffColumnsWithProjections(x, cols, projs, num_features, out, mode);
}

void StackRffColumnsWithProjections(
    const Matrix& x, const std::vector<int64_t>& cols,
    const std::vector<const RffProjection*>& projs, int64_t num_features,
    Matrix* out, CosineMode mode) {
  for (const RffProjection* p : projs) {
    SBRL_CHECK(p != nullptr);
    SBRL_CHECK_EQ(p->in_dim(), 1);
    SBRL_CHECK_EQ(p->num_features(), num_features);
  }
  StackRffColumnsImpl(x, cols, projs, num_features, out, mode);
}

void StackRffColumnsWithProjections(
    const Matrix& x, const std::vector<int64_t>& cols,
    const std::vector<RffProjection>& projs, int64_t num_features,
    Matrix* out, CosineMode mode) {
  std::vector<const RffProjection*> views;
  views.reserve(projs.size());
  for (const RffProjection& p : projs) views.push_back(&p);
  StackRffColumnsWithProjections(x, cols, views, num_features, out, mode);
}

}  // namespace sbrl

#include "stats/rff.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "tensor/linalg.h"

namespace sbrl {

RffProjection SampleRff(Rng& rng, int64_t in_dim, int64_t num_features) {
  SBRL_CHECK_GT(in_dim, 0);
  SBRL_CHECK_GT(num_features, 0);
  RffProjection proj;
  proj.w = rng.Randn(in_dim, num_features);
  proj.phi = rng.Rand(1, num_features, 0.0, 2.0 * M_PI);
  return proj;
}

Matrix ApplyRff(const RffProjection& proj, const Matrix& x) {
  SBRL_CHECK_EQ(x.cols(), proj.in_dim());
  // Fused single pass over sqrt(2) cos(x w + phi): the projection sum
  // accumulates over in_dim in ascending order exactly like Matmul, so
  // the result matches the former Matmul + AddRowBroadcast + Map chain
  // without the two intermediate matrices.
  const int64_t n = x.rows(), d = x.cols(), kf = proj.num_features();
  const double root2 = std::sqrt(2.0);
  const double* xd = x.data();
  const double* wd = proj.w.data();
  const double* phid = proj.phi.data();
  Matrix out(n, kf);
  double* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const double* xrow = xd + i * d;
    double* orow = od + i * kf;
    for (int64_t f = 0; f < kf; ++f) {
      double acc = 0.0;
      for (int64_t j = 0; j < d; ++j) acc += xrow[j] * wd[j * kf + f];
      orow[f] = root2 * std::cos(acc + phid[f]);
    }
  }
  return out;
}

Matrix ApplyRffToColumn(const RffProjection& proj, const Matrix& x,
                        int64_t col) {
  Matrix out(x.rows(), proj.num_features());
  ApplyRffToColumnInto(proj, x, col, &out, 0);
  return out;
}

void ApplyRffToColumnInto(const RffProjection& proj, const Matrix& x,
                          int64_t col, Matrix* out, int64_t col_offset) {
  SBRL_CHECK_EQ(proj.in_dim(), 1);
  SBRL_CHECK(col >= 0 && col < x.cols());
  const int64_t n = x.rows(), kf = proj.num_features();
  SBRL_CHECK_EQ(out->rows(), n);
  SBRL_CHECK(col_offset >= 0 && col_offset + kf <= out->cols())
      << "feature block [" << col_offset << ", " << col_offset + kf
      << ") out of range for " << out->ShapeString();
  const double root2 = std::sqrt(2.0);
  const double* xcol = x.data() + col;
  const int64_t stride = x.cols();
  const double* wd = proj.w.data();
  const double* phid = proj.phi.data();
  const int64_t ocols = out->cols();
  double* od = out->data() + col_offset;
  for (int64_t i = 0; i < n; ++i) {
    const double v = xcol[i * stride];
    double* orow = od + i * ocols;
    for (int64_t f = 0; f < kf; ++f) {
      orow[f] = root2 * std::cos(v * wd[f] + phid[f]);
    }
  }
}

void StackRffColumns(const Matrix& x, const std::vector<int64_t>& cols,
                     int64_t num_features, Rng& rng, Matrix* out) {
  const int64_t n_cols = static_cast<int64_t>(cols.size());
  const int64_t k = num_features;
  SBRL_CHECK_EQ(out->rows(), x.rows());
  SBRL_CHECK_EQ(out->cols(), n_cols * k);
  // Projections come out of `rng` serially so the stream never depends
  // on the worker count; only the cosine evaluation is parallel.
  std::vector<RffProjection> projs;
  projs.reserve(static_cast<size_t>(n_cols));
  for (int64_t i = 0; i < n_cols; ++i) projs.push_back(SampleRff(rng, 1, k));
  // A cosine costs ~2 cache-blocked flops' worth of several multiply-
  // adds; weigh it so the serial cutoff engages at comparable wall
  // cost to the matmul kernels.
  constexpr int64_t kCosWeight = 16;
  const int64_t work_per_col = x.rows() * k * kCosWeight;
  const int64_t grain = std::max<int64_t>(
      1, kParallelSerialCutoff / std::max<int64_t>(1, work_per_col));
  ParallelFor(0, n_cols, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      ApplyRffToColumnInto(projs[static_cast<size_t>(i)], x,
                           cols[static_cast<size_t>(i)], out, i * k);
    }
  });
}

}  // namespace sbrl

#include "stats/rff.h"

#include <cmath>

#include "tensor/linalg.h"

namespace sbrl {

RffProjection SampleRff(Rng& rng, int64_t in_dim, int64_t num_features) {
  SBRL_CHECK_GT(in_dim, 0);
  SBRL_CHECK_GT(num_features, 0);
  RffProjection proj;
  proj.w = rng.Randn(in_dim, num_features);
  proj.phi = rng.Rand(1, num_features, 0.0, 2.0 * M_PI);
  return proj;
}

Matrix ApplyRff(const RffProjection& proj, const Matrix& x) {
  SBRL_CHECK_EQ(x.cols(), proj.in_dim());
  // Fused single pass over sqrt(2) cos(x w + phi): the projection sum
  // accumulates over in_dim in ascending order exactly like Matmul, so
  // the result matches the former Matmul + AddRowBroadcast + Map chain
  // without the two intermediate matrices.
  const int64_t n = x.rows(), d = x.cols(), kf = proj.num_features();
  const double root2 = std::sqrt(2.0);
  const double* xd = x.data();
  const double* wd = proj.w.data();
  const double* phid = proj.phi.data();
  Matrix out(n, kf);
  double* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const double* xrow = xd + i * d;
    double* orow = od + i * kf;
    for (int64_t f = 0; f < kf; ++f) {
      double acc = 0.0;
      for (int64_t j = 0; j < d; ++j) acc += xrow[j] * wd[j * kf + f];
      orow[f] = root2 * std::cos(acc + phid[f]);
    }
  }
  return out;
}

Matrix ApplyRffToColumn(const RffProjection& proj, const Matrix& x,
                        int64_t col) {
  SBRL_CHECK_EQ(proj.in_dim(), 1);
  SBRL_CHECK(col >= 0 && col < x.cols());
  const int64_t n = x.rows(), kf = proj.num_features();
  const double root2 = std::sqrt(2.0);
  const double* xcol = x.data() + col;
  const int64_t stride = x.cols();
  const double* wd = proj.w.data();
  const double* phid = proj.phi.data();
  Matrix out(n, kf);
  double* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const double v = xcol[i * stride];
    double* orow = od + i * kf;
    for (int64_t f = 0; f < kf; ++f) {
      orow[f] = root2 * std::cos(v * wd[f] + phid[f]);
    }
  }
  return out;
}

}  // namespace sbrl

#ifndef SBRL_STATS_SHARDED_H_
#define SBRL_STATS_SHARDED_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/precision.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "data/streaming.h"
#include "tensor/matrix.h"

namespace sbrl {

/// Knobs of the sharded accumulation paths (stats below and
/// core/sharded_trainer.h). Resolution order per knob: explicit
/// positive value > SBRL_* env > default — the repo's standard
/// pattern, through the shared ParseEnvInt64 semantics.
struct ShardedOptions {
  /// Rows per shard (= the `max_rows` each NextBlock pull asks for).
  /// 0 resolves SBRL_SHARD_ROWS, default 8192. Shard size is part of
  /// the run identity: results are a deterministic function of it,
  /// and peak memory of a streamed pass is O(shard_rows x d) per
  /// in-flight shard, never O(n x d).
  int64_t shard_rows = 0;
  /// Shard leaves evaluated concurrently per wave (each on its own
  /// ThreadPool lane). 0 resolves SBRL_SHARD_WORKERS, default: the
  /// global pool parallelism. Results are bitwise identical for ANY
  /// worker count — see FixedOrderTreeReducer.
  int64_t workers = 0;
  /// Storage tier of the streamed pass (common/precision.h), resolved
  /// through ResolvePrecision — so SBRL_PRECISION=f32 flips it without
  /// touching call sites, and kF64 (the default) remains the reference
  /// tier every bitwise contract is stated against. Under kF32 the
  /// wave's staged blocks hold f32 covariates (ShardedReduceF32) —
  /// half the resident block bytes and reader-to-wave traffic — while
  /// the moment accumulators keep accumulating in f64 (see
  /// ShardedColumnMoments / ShardedHsicRff) and the sharded trainer
  /// widens per lane just in time for the f64 tape.
  Precision precision = Precision::kF64;
};

/// Copy of `options` with every 0 field resolved from its env knob /
/// default (see the field docs above).
ShardedOptions ResolveShardedOptions(const ShardedOptions& options);

/// Fixed-order pairwise tree reducer — the determinism backbone of the
/// sharded paths, extending the PR-1 kernel contract to cross-shard
/// accumulation. Values are pushed in ascending shard order; the
/// reducer maintains one reduced subtree per binary digit of the count
/// ("binary counter"), eagerly merging equal-size subtrees. The
/// resulting combine bracketing is a pure function of how many values
/// were pushed — never of worker count, wave boundaries, or timing —
/// which is what makes floating-point shard sums bitwise reproducible
/// across worker counts. Memory is O(log pushes), so streams of
/// unbounded length reduce in bounded space.
template <typename T>
class FixedOrderTreeReducer {
 public:
  /// Combine callback: merges two adjacent reductions, earlier-range
  /// argument first. Must be deterministic; associativity is NOT
  /// required (the bracketing is fixed).
  using Combine = std::function<T(T, T)>;

  /// Constructs an empty reducer over `combine`.
  explicit FixedOrderTreeReducer(Combine combine)
      : combine_(std::move(combine)) {}

  /// Pushes the next value (shard order). Merges pairwise while the
  /// binary-counter carry propagates.
  void Push(T value) {
    std::optional<T> carry(std::move(value));
    size_t level = 0;
    while (level < slots_.size() && slots_[level].has_value()) {
      carry = combine_(std::move(*slots_[level]), std::move(*carry));
      slots_[level].reset();
      ++level;
    }
    if (level == slots_.size()) slots_.emplace_back();
    slots_[level] = std::move(carry);
    ++count_;
  }

  /// Merges the remaining partial subtrees (earlier-first) and resets
  /// the reducer. CHECK-fails when nothing was pushed.
  T Finish() {
    SBRL_CHECK_GT(count_, 0) << "Finish() on an empty reducer";
    std::optional<T> acc;
    for (std::optional<T>& slot : slots_) {
      if (!slot.has_value()) continue;
      if (!acc.has_value()) {
        acc = std::move(slot);
      } else {
        // Higher levels hold earlier shards, so they combine on the
        // left of everything accumulated from the lower levels.
        acc = combine_(std::move(*slot), std::move(*acc));
      }
      slot.reset();
    }
    slots_.clear();
    count_ = 0;
    return std::move(*acc);
  }

  /// Values pushed since construction / the last Finish().
  int64_t count() const { return count_; }

 private:
  Combine combine_;
  std::vector<std::optional<T>> slots_;
  int64_t count_ = 0;
};

/// Reduces `items` in the FixedOrderTreeReducer bracketing (a pure
/// function of items.size()). Convenience for materialized per-shard
/// results; CHECK-fails on an empty vector.
template <typename T>
T TreeReduce(std::vector<T> items, typename FixedOrderTreeReducer<T>::Combine
                                       combine) {
  FixedOrderTreeReducer<T> reducer(std::move(combine));
  for (T& item : items) reducer.Push(std::move(item));
  return reducer.Finish();
}

/// Drives one streamed sharded pass: pulls shards of
/// `options.shard_rows` rows from `reader` in waves of up to
/// `options.workers` blocks, evaluates `leaf` on the wave's blocks
/// concurrently on the global ThreadPool, and pushes the results into
/// a FixedOrderTreeReducer in ascending shard order.
///
/// `leaf(shard_index, slot, block)` must be a pure function of
/// (shard_index, block) — `slot` (< workers) only names the lane-
/// scoped scratch (e.g. a MatrixPool) the leaf may use, and scratch
/// must be value-transparent. Under that contract the reduction is
/// bitwise identical for every worker count: leaves never depend on
/// scheduling, and the combine bracketing depends only on the shard
/// count. Returns InvalidArgument on an empty stream; `total_rows` /
/// `total_shards` (optional) receive the pass totals.
template <typename T>
StatusOr<T> ShardedReduce(
    DatasetBlockReader& reader, const ShardedOptions& options,
    const std::function<T(int64_t, int64_t, const CausalDataset&)>& leaf,
    const typename FixedOrderTreeReducer<T>::Combine& combine,
    int64_t* total_rows = nullptr, int64_t* total_shards = nullptr) {
  const ShardedOptions opts = ResolveShardedOptions(options);
  const int64_t wave_width = opts.workers;
  FixedOrderTreeReducer<T> reducer(combine);
  std::vector<CausalDataset> wave(static_cast<size_t>(wave_width));
  std::vector<T> results(static_cast<size_t>(wave_width));
  int64_t shard_index = 0;
  int64_t rows_total = 0;
  for (;;) {
    int64_t filled = 0;
    while (filled < wave_width) {
      SBRL_ASSIGN_OR_RETURN(
          const int64_t rows,
          reader.NextBlock(opts.shard_rows,
                           &wave[static_cast<size_t>(filled)]));
      if (rows == 0) break;
      rows_total += rows;
      ++filled;
    }
    if (filled == 0) break;
    const int64_t base = shard_index;
    ParallelFor(0, filled, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t s = lo; s < hi; ++s) {
        results[static_cast<size_t>(s)] =
            leaf(base + s, s, wave[static_cast<size_t>(s)]);
      }
    });
    // Reduction order is ascending shard index, independent of which
    // lane computed what.
    for (int64_t s = 0; s < filled; ++s) {
      reducer.Push(std::move(results[static_cast<size_t>(s)]));
    }
    shard_index += filled;
    if (filled < wave_width) break;  // stream exhausted mid-wave
  }
  if (shard_index == 0) {
    return Status::InvalidArgument("empty dataset stream");
  }
  if (total_rows != nullptr) *total_rows = rows_total;
  if (total_shards != nullptr) *total_shards = shard_index;
  return reducer.Finish();
}

/// f32-staged twin of ShardedReduce: the same wave / fixed-order
/// reducer mechanics, but each wave slot is a CausalBlockF32 — pulled
/// through ONE reused f64 scratch block and narrowed in place
/// (NextBlockF32), so the resident wave holds `workers` f32 covariate
/// blocks instead of f64 ones. The same leaf-purity contract applies,
/// and so does its consequence: narrowing is per-element and
/// deterministic, so results stay bitwise identical for every worker
/// count. Callers route here when the resolved options carry
/// Precision::kF32.
template <typename T>
StatusOr<T> ShardedReduceF32(
    DatasetBlockReader& reader, const ShardedOptions& options,
    const std::function<T(int64_t, int64_t, const CausalBlockF32&)>& leaf,
    const typename FixedOrderTreeReducer<T>::Combine& combine,
    int64_t* total_rows = nullptr, int64_t* total_shards = nullptr) {
  const ShardedOptions opts = ResolveShardedOptions(options);
  const int64_t wave_width = opts.workers;
  FixedOrderTreeReducer<T> reducer(combine);
  CausalDataset stage;  // the single f64 pull scratch, reused per pull
  std::vector<CausalBlockF32> wave(static_cast<size_t>(wave_width));
  std::vector<T> results(static_cast<size_t>(wave_width));
  int64_t shard_index = 0;
  int64_t rows_total = 0;
  for (;;) {
    int64_t filled = 0;
    while (filled < wave_width) {
      SBRL_ASSIGN_OR_RETURN(
          const int64_t rows,
          NextBlockF32(reader, opts.shard_rows, &stage,
                       &wave[static_cast<size_t>(filled)]));
      if (rows == 0) break;
      rows_total += rows;
      ++filled;
    }
    if (filled == 0) break;
    const int64_t base = shard_index;
    ParallelFor(0, filled, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t s = lo; s < hi; ++s) {
        results[static_cast<size_t>(s)] =
            leaf(base + s, s, wave[static_cast<size_t>(s)]);
      }
    });
    // Reduction order is ascending shard index, independent of which
    // lane computed what.
    for (int64_t s = 0; s < filled; ++s) {
      reducer.Push(std::move(results[static_cast<size_t>(s)]));
    }
    shard_index += filled;
    if (filled < wave_width) break;  // stream exhausted mid-wave
  }
  if (shard_index == 0) {
    return Status::InvalidArgument("empty dataset stream");
  }
  if (total_rows != nullptr) *total_rows = rows_total;
  if (total_shards != nullptr) *total_shards = shard_index;
  return reducer.Finish();
}

/// Per-shard covariate column sums: rows, per-column sum and
/// sum-of-squares (each 1 x d). The building block of streamed
/// standardization / diagnostics at n that never materializes.
struct ColumnMoments {
  /// Rows accumulated.
  int64_t rows = 0;
  /// Per-column value sums (1 x d).
  Matrix sum;
  /// Per-column squared-value sums (1 x d).
  Matrix sum_sq;
};

/// Merges two adjacent shards' moments (earlier-range first; used as
/// the FixedOrderTreeReducer combine).
ColumnMoments CombineColumnMoments(ColumnMoments a, ColumnMoments b);

/// Streams `reader` and returns its tree-reduced covariate column
/// moments. Bitwise identical for every worker count. Under
/// `options.precision == kF32` the blocks are staged in f32 storage
/// and each stored covariate is rounded once to float, while the
/// running sums still accumulate in f64 — so the tier's error budget
/// is one rounding per element, independent of n (bounds in
/// tests/precision_test.cc).
StatusOr<ColumnMoments> ShardedColumnMoments(DatasetBlockReader& reader,
                                             const ShardedOptions& options);

/// Column selector of the sharded HSIC-RFF below: values >= 0 index a
/// covariate column of X; kOutcomeColumn selects the outcome Y.
inline constexpr int64_t kOutcomeColumn = -1;

/// Per-shard HSIC-RFF moment sums between two columns: with phi/psi
/// the two RFF feature maps (each row 1 x k), the shard contributes
/// [rows, sum_i phi_i, sum_i psi_i, sum_i phi_i^T psi_i]. These sums
/// are exactly what the cross-covariance HSIC estimator (paper Eq. 7)
/// needs, so HSIC at full n reduces over O(k^2) shard statistics.
struct HsicRffMoments {
  /// Rows accumulated.
  int64_t rows = 0;
  /// Feature-map sums (1 x k each).
  Matrix sum_a;
  /// See sum_a.
  Matrix sum_b;
  /// Cross-products sum_i phi_i^T psi_i (k x k).
  Matrix cross;
};

/// Merges two adjacent shards' HSIC moments (earlier-range first).
HsicRffMoments CombineHsicRffMoments(HsicRffMoments a, HsicRffMoments b);

/// Closes the estimator over reduced moments:
/// || cross/n - mean_a^T mean_b ||_F^2, the squared Frobenius norm of
/// the RFF cross-covariance — the same statistic HsicRff computes
/// in-core (equal up to summation-order rounding).
double FinalizeHsicRff(const HsicRffMoments& moments);

/// Streaming HSIC-RFF between two columns of `reader` (covariate index
/// or kOutcomeColumn), with `num_features` random Fourier features per
/// side drawn via SampleRffSlot(draw_seed, 1, num_features, 0/1) —
/// counter-based draws, so the projections are independent of shard
/// traversal. Bitwise identical for every worker count; exact (modulo
/// fixed-bracketing rounding) match of the in-core estimator on the
/// same stream.
///
/// Under `options.precision == kF32` the feature maps are computed in
/// f32 (angle pass over the narrowed projection, cosine epilogue
/// through the f32 sweep kernels of common/simd.h), the per-shard
/// cross products run on the f32 matmul dispatch tables (at most
/// shard_rows f32-accumulated terms), and everything cross-shard —
/// feature sums and the k x k cross matrix — accumulates in f64. The
/// worker-count bitwise invariance holds per ISA level; unlike the
/// kExact f64 path, cross-ISA agreement of the f32 tier is
/// tolerance-bounded, not bitwise (tests/precision_test.cc).
StatusOr<double> ShardedHsicRff(DatasetBlockReader& reader, int64_t col_a,
                                int64_t col_b, int64_t num_features,
                                uint64_t draw_seed,
                                const ShardedOptions& options);

}  // namespace sbrl

#endif  // SBRL_STATS_SHARDED_H_

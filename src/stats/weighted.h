#ifndef SBRL_STATS_WEIGHTED_H_
#define SBRL_STATS_WEIGHTED_H_

#include "tensor/matrix.h"

namespace sbrl {

/// Normalizes a non-negative (n x 1) weight vector to sum to 1.
/// CHECK-fails if the sum is not strictly positive.
Matrix NormalizeWeights(const Matrix& w);

/// Weighted mean of an (n x 1) column under (n x 1) weights (weights are
/// normalized internally).
double WeightedMean(const Matrix& col, const Matrix& w);

/// Weighted column means of X (n x d) -> (1 x d).
Matrix WeightedColMeans(const Matrix& x, const Matrix& w);

/// Weighted covariance Cov_w(a, b) = E_w[ab] - E_w[a] E_w[b] for two
/// (n x 1) columns.
double WeightedCovariance(const Matrix& a, const Matrix& b, const Matrix& w);

/// Weighted cross-covariance matrix between the columns of U (n x ku)
/// and V (n x kv): C_ij = Cov_w(U_:,i, V_:,j) -> (ku x kv).
Matrix WeightedCrossCovariance(const Matrix& u, const Matrix& v,
                               const Matrix& w);

/// Weighted variance of an (n x 1) column.
double WeightedVariance(const Matrix& col, const Matrix& w);

}  // namespace sbrl

#endif  // SBRL_STATS_WEIGHTED_H_

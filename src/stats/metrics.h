#ifndef SBRL_STATS_METRICS_H_
#define SBRL_STATS_METRICS_H_

#include <vector>

#include "tensor/matrix.h"

namespace sbrl {

/// Precision in Estimation of Heterogeneous Effect (Hill 2011):
/// sqrt(mean((ite_hat_i - ite_true_i)^2)). The paper's primary
/// individual-level error metric.
double Pehe(const std::vector<double>& ite_hat,
            const std::vector<double>& ite_true);

/// Absolute ATE bias |mean(ite_true) - mean(ite_hat)| — the paper's
/// eps_ATE population-level metric.
double AteError(const std::vector<double>& ite_hat,
                const std::vector<double>& ite_true);

/// Binary confusion counts at `threshold` on predicted probabilities.
struct ConfusionCounts {
  int64_t tp = 0;  ///< true positives
  int64_t fp = 0;  ///< false positives
  int64_t tn = 0;  ///< true negatives
  int64_t fn = 0;  ///< false negatives
};

/// Tallies the confusion counts of thresholded probabilities against
/// binary labels.
ConfusionCounts Confusion(const std::vector<double>& probs,
                          const std::vector<double>& labels,
                          double threshold = 0.5);

/// F1 = 2 P R / (P + R); 0 when undefined (no predicted or true
/// positives).
double F1Score(const std::vector<double>& probs,
               const std::vector<double>& labels, double threshold = 0.5);

/// Fraction of thresholded predictions matching the labels.
double Accuracy(const std::vector<double>& probs,
                const std::vector<double>& labels, double threshold = 0.5);

/// Mean and stability statistic over per-environment values. The paper
/// defines stability as the *variance* around the mean
/// (F_std = 1/|E| sum (F_e - mean)^2); `std_dev` reports its square
/// root for readability, `variance` the paper's raw statistic.
struct EnvAggregate {
  double mean = 0.0;      ///< mean over environments
  double std_dev = 0.0;   ///< sqrt of `variance`, for readability
  double variance = 0.0;  ///< the paper's stability statistic F_std
};

/// Aggregates one metric's per-environment values into the paper's
/// mean / stability summary.
EnvAggregate AggregateOverEnvironments(const std::vector<double>& values);

}  // namespace sbrl

#endif  // SBRL_STATS_METRICS_H_

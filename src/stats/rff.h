#ifndef SBRL_STATS_RFF_H_
#define SBRL_STATS_RFF_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "common/simd.h"
#include "tensor/matrix.h"
#include "tensor/random.h"

namespace sbrl {

/// A draw from the paper's Random Fourier Feature function space
/// H_RFF = { h : x -> sqrt(2) cos(w x + phi) } with w ~ N(0, 1) and
/// phi ~ U(0, 2 pi). `w` has one row per input dimension and one column
/// per random feature.
struct RffProjection {
  Matrix w;    ///< frequency matrix (in_dim x num_features)
  Matrix phi;  ///< phase row (1 x num_features)

  /// Number of cosine features (columns of `w`).
  int64_t num_features() const { return w.cols(); }
  /// Input dimension the projection applies to (rows of `w`).
  int64_t in_dim() const { return w.rows(); }
};

/// Samples an RFF projection with `num_features` cosine features from
/// the sequential stream of `rng` (in_dim * num_features normals, then
/// num_features uniform phases).
RffProjection SampleRff(Rng& rng, int64_t in_dim, int64_t num_features);

/// Seed of the dedicated rng that generates slot `slot` of the
/// (in_dim, num_features) projection stream of a draw epoch — a
/// counter-based splitmix64 hash of all four values. Each slot owns an
/// independent stream, so projections can be (re)generated in any
/// order, by any caller, one at a time or in bulk, and always come out
/// bitwise identical. This is what makes RffProjectionCache a pure
/// memoization: cached and uncached evaluation of the same epoch see
/// the same projections.
uint64_t RffSlotSeed(uint64_t epoch_seed, int64_t in_dim,
                     int64_t num_features, int64_t slot);

/// The projection of slot `slot` in epoch `epoch_seed`: SampleRff from
/// a fresh Rng seeded with RffSlotSeed. Deterministic in its arguments
/// alone — no shared stream is consumed.
RffProjection SampleRffSlot(uint64_t epoch_seed, int64_t in_dim,
                            int64_t num_features, int64_t slot);

/// Concurrency-safe memoization of SampleRffSlot draws across RUNS,
/// keyed by the full draw identity (epoch_seed, in_dim, num_features,
/// slot). An ExperimentSession owns one and wires it into every
/// per-run RffProjectionCache it hands out, so concurrent runs that
/// share an epoch-seed sequence (e.g. the nine methods of one
/// replication, whose hsic rngs start from the same train seed) sample
/// each projection once per session instead of once per run.
///
/// Value-transparent for the same reason the per-run cache is: a slot's
/// projection is a pure function of its key (counter-based streams), so
/// hit/miss order, insertion races, and eviction can change WHEN a
/// projection is sampled but never WHAT any caller observes. Lookups
/// copy the (tiny) projection out under the lock, so entries never
/// dangle into concurrently evicted storage.
///
/// Bounded by epoch FIFO: when more than kMaxEpochs distinct epoch
/// seeds are resident, entire oldest epochs are evicted first — an
/// epoch's draws are only ever re-requested while runs still train
/// through it, so old epochs are dead weight.
class SharedRffProjectionCache {
 public:
  /// Distinct epoch seeds kept resident before FIFO eviction kicks in.
  /// Sized for a full table sweep: seeds x weight steps is O(1000)
  /// epochs of a few KB each, and concurrently LIVE epochs are at most
  /// one per in-flight run.
  static constexpr int64_t kMaxEpochs = 1024;

  /// Copies the memoized projection of the key into `*out` and returns
  /// true, or returns false on a miss. Thread-safe.
  bool Lookup(uint64_t epoch_seed, int64_t in_dim, int64_t num_features,
              int64_t slot, RffProjection* out) const;

  /// Memoizes a copy of `proj` under the key (first writer wins; a
  /// concurrent duplicate insert is dropped — both copies are bitwise
  /// identical by slot purity). Thread-safe.
  void Insert(uint64_t epoch_seed, int64_t in_dim, int64_t num_features,
              int64_t slot, const RffProjection& proj);

  /// Projections currently resident (diagnostic; racy under writers).
  int64_t size() const;
  /// Lookup calls that hit (diagnostic; lets tests assert cross-run
  /// reuse actually happens).
  int64_t hits() const;

 private:
  using Key = std::tuple<uint64_t, int64_t, int64_t, int64_t>;

  /// Drops whole oldest epochs until at most kMaxEpochs remain. Caller
  /// holds mu_.
  void EvictOldEpochsLocked();

  mutable std::mutex mu_;
  std::map<Key, RffProjection> entries_;
  /// Epoch seeds in first-seen order (the FIFO eviction queue) plus
  /// per-epoch entry keys for O(epoch size) eviction.
  std::deque<uint64_t> epoch_order_;
  std::map<uint64_t, std::vector<Key>> epoch_keys_;
  mutable int64_t hits_ = 0;
};

/// Memoizes SampleRffSlot draws within one draw epoch so evaluations
/// sharing a (in_dim, num_features, epoch) stream — e.g. the HAP tiers
/// of one weight step, which all decorrelate with in_dim = 1 and the
/// same feature count k — sample each slot's projection once instead
/// of once per tier. Because slots are counter-based, the cache is
/// value-transparent: training with the cache enabled is bitwise
/// identical to training without it, and no shared rng stream position
/// depends on hit/miss order or the worker-thread count.
///
/// Not thread-safe; callers serialize access (the trainer owns one and
/// queries it from the weight step only).
class RffProjectionCache {
 public:
  /// Starts a new draw epoch: previously memoized projections are
  /// dropped and future Slot() calls draw from `epoch_seed`'s streams.
  /// Calling with the current epoch's seed is a no-op, so one cache
  /// can be re-primed defensively.
  void BeginEpoch(uint64_t epoch_seed);

  /// The projection of `slot` in the current epoch's
  /// (in_dim, num_features) stream, drawn on first use and memoized
  /// until the next BeginEpoch. The reference stays valid until then —
  /// later Slot() calls never invalidate it (deque-backed storage).
  const RffProjection& Slot(int64_t in_dim, int64_t num_features,
                            int64_t slot);

  /// Seed of the epoch started by the last BeginEpoch (0 before any).
  uint64_t epoch_seed() const { return epoch_seed_; }

  /// Projections SAMPLED locally (full misses — not served by this
  /// cache nor by the shared session cache) since the last BeginEpoch —
  /// lets tests assert the cross-tier amortization actually happens.
  int64_t draws_this_epoch() const { return draws_this_epoch_; }

  /// Wires a session-shared second-level cache behind this one: a local
  /// slot miss first consults `shared` (copying any hit into local
  /// deque storage, so references from Slot() never depend on shared
  /// eviction) and publishes fresh draws back into it. Null detaches.
  /// Value-transparent either way; the shared cache must outlive every
  /// Slot() call.
  void set_shared(SharedRffProjectionCache* shared) { shared_ = shared; }

 private:
  uint64_t epoch_seed_ = 0;
  bool has_epoch_ = false;
  int64_t draws_this_epoch_ = 0;
  SharedRffProjectionCache* shared_ = nullptr;
  /// (in_dim, num_features) -> slot-indexed projections; an empty `w`
  /// marks a slot not yet drawn. std::deque so growing for a new slot
  /// keeps references to already-drawn slots valid.
  std::map<std::pair<int64_t, int64_t>, std::deque<RffProjection>> slots_;
};

/// Applies the projection to samples `x` (n x in_dim), returning the
/// (n x num_features) feature matrix sqrt(2) cos(x w + phi). The
/// projection sum accumulates over in_dim in ascending order; the
/// cosine epilogue runs through the shared sweep selected by `mode`.
Matrix ApplyRff(const RffProjection& proj, const Matrix& x,
                CosineMode mode = CosineMode::kVectorized);

/// ApplyRff of column `col` of `x`, read in place through a strided
/// pointer — no Matrix::Col copy. `proj` must have in_dim() == 1.
/// Identical output to ApplyRff(proj, x.Col(col), mode).
Matrix ApplyRffToColumn(const RffProjection& proj, const Matrix& x,
                        int64_t col,
                        CosineMode mode = CosineMode::kVectorized);

/// ApplyRffToColumn writing its (n x num_features) block into columns
/// [col_offset, col_offset + num_features) of `*out` (n rows) instead
/// of allocating. Lets callers assemble the stacked n x (d * k) feature
/// matrix of the batched HSIC pair loss with one buffer and no
/// per-feature copies. The angles land first and the sqrt(2) cos
/// epilogue runs through the shared sweep. In kExact mode — and in
/// either mode when the block spans all of `*out` (out->cols() ==
/// num_features) — values are bitwise identical to ApplyRffToColumn;
/// in kVectorized mode a block embedded in a WIDER matrix sweeps each
/// row as its own short SIMD run, whose scalar-tail elements may
/// differ from the flat layout's by the usual <= kVecCosMaxUlp.
void ApplyRffToColumnInto(const RffProjection& proj, const Matrix& x,
                          int64_t col, Matrix* out, int64_t col_offset,
                          CosineMode mode = CosineMode::kVectorized);

/// Builds the stacked feature matrix of the batched HSIC pair loss:
/// block i of `*out` (columns [i*k, (i+1)*k), k = num_features) holds
/// the RFF features of column cols[i] of `x`. One projection per
/// column is drawn from `rng` serially in list order — the stream is
/// independent of threading. The evaluation materializes the full
/// n x (cols.size()*k) ANGLE matrix with the blocked per-column
/// kernels, then runs one contiguous scaled-cosine sweep over it (the
/// flat-angle layout that lets the dominant cost of the decorrelation
/// loss vectorize). `*out` must be (x.rows() x cols.size()*k).
void StackRffColumns(const Matrix& x, const std::vector<int64_t>& cols,
                     int64_t num_features, Rng& rng, Matrix* out,
                     CosineMode mode = CosineMode::kVectorized);

/// StackRffColumns with the per-column projections supplied by the
/// caller (projs[i] applies to column cols[i]; every projection must
/// have in_dim() == 1 and `num_features` columns) — the entry point of
/// the slot/cache draw path, where projections come from
/// RffProjectionCache::Slot or SampleRffSlot instead of a sequential
/// rng stream. The pointer form serves callers whose projections
/// already live elsewhere (e.g. inside a cache); the value form is the
/// convenience for locally drawn vectors.
void StackRffColumnsWithProjections(
    const Matrix& x, const std::vector<int64_t>& cols,
    const std::vector<const RffProjection*>& projs, int64_t num_features,
    Matrix* out, CosineMode mode = CosineMode::kVectorized);
/// Value-vector convenience overload of the above.
void StackRffColumnsWithProjections(
    const Matrix& x, const std::vector<int64_t>& cols,
    const std::vector<RffProjection>& projs, int64_t num_features,
    Matrix* out, CosineMode mode = CosineMode::kVectorized);

}  // namespace sbrl

#endif  // SBRL_STATS_RFF_H_

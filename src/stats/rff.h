#ifndef SBRL_STATS_RFF_H_
#define SBRL_STATS_RFF_H_

#include <cstdint>

#include "tensor/matrix.h"
#include "tensor/random.h"

namespace sbrl {

/// A draw from the paper's Random Fourier Feature function space
/// H_RFF = { h : x -> sqrt(2) cos(w x + phi) } with w ~ N(0, 1) and
/// phi ~ U(0, 2 pi). `w` has one row per input dimension and one column
/// per random feature.
struct RffProjection {
  Matrix w;    // (in_dim x num_features)
  Matrix phi;  // (1 x num_features)

  int64_t num_features() const { return w.cols(); }
  int64_t in_dim() const { return w.rows(); }
};

/// Samples an RFF projection with `num_features` cosine features.
RffProjection SampleRff(Rng& rng, int64_t in_dim, int64_t num_features);

/// Applies the projection to samples `x` (n x in_dim), returning the
/// (n x num_features) feature matrix sqrt(2) cos(x w + phi).
Matrix ApplyRff(const RffProjection& proj, const Matrix& x);

/// ApplyRff of column `col` of `x`, read in place through a strided
/// pointer — no Matrix::Col copy. `proj` must have in_dim() == 1.
/// Identical output to ApplyRff(proj, x.Col(col)).
Matrix ApplyRffToColumn(const RffProjection& proj, const Matrix& x,
                        int64_t col);

/// ApplyRffToColumn writing its (n x num_features) block into columns
/// [col_offset, col_offset + num_features) of `*out` (n rows) instead
/// of allocating. Lets callers assemble the stacked n x (d * k) feature
/// matrix of the batched HSIC pair loss with one buffer and no
/// per-feature copies. Values are bitwise identical to
/// ApplyRffToColumn.
void ApplyRffToColumnInto(const RffProjection& proj, const Matrix& x,
                          int64_t col, Matrix* out, int64_t col_offset);

/// Builds the stacked feature matrix of the batched HSIC pair loss:
/// block i of `*out` (columns [i*k, (i+1)*k), k = num_features) holds
/// the RFF features of column cols[i] of `x`. One projection per
/// column is drawn from `rng` serially in list order — the stream is
/// independent of threading — and the cosine evaluation (the dominant
/// cost of the decorrelation loss) fans out across the pool for large
/// stacks. `*out` must be (x.rows() x cols.size()*k).
void StackRffColumns(const Matrix& x, const std::vector<int64_t>& cols,
                     int64_t num_features, Rng& rng, Matrix* out);

}  // namespace sbrl

#endif  // SBRL_STATS_RFF_H_

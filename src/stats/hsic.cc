#include "stats/hsic.h"

#include <cmath>
#include <utility>
#include <vector>

#include "stats/kernels.h"
#include "stats/weighted.h"
#include "tensor/linalg.h"

namespace sbrl {

namespace {

/// Centers a kernel matrix: H K H with H = I - 11^T / n.
Matrix CenterKernel(const Matrix& k) {
  const int64_t n = k.rows();
  Matrix row_means = ColMean(k);   // (1 x n)
  Matrix col_means = RowMean(k);   // (n x 1)
  const double grand = k.Mean();
  Matrix out(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out(i, j) = k(i, j) - row_means(0, j) - col_means(i, 0) + grand;
    }
  }
  return out;
}

}  // namespace

double Hsic(const Matrix& a, const Matrix& b, double bandwidth_a,
            double bandwidth_b) {
  SBRL_CHECK_EQ(a.rows(), b.rows());
  SBRL_CHECK_GT(a.rows(), 1);
  const int64_t n = a.rows();
  Matrix ka = CenterKernel(RbfKernel(a, a, bandwidth_a));
  Matrix kb = RbfKernel(b, b, bandwidth_b);
  // tr(Ka_centered * Kb) equals tr(H Ka H Kb); elementwise product trace.
  double trace = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) trace += ka(i, j) * kb(j, i);
  }
  return trace / static_cast<double>(n * n);
}

double Hsic(const Matrix& a, const Matrix& b) {
  return Hsic(a, b, MedianHeuristicBandwidth(a), MedianHeuristicBandwidth(b));
}

double HsicRff(const Matrix& a, const Matrix& b, int64_t num_features,
               Rng& rng) {
  Matrix uniform = Matrix::Ones(a.rows(), 1);
  return WeightedHsicRff(a, b, uniform, num_features, rng);
}

double WeightedHsicRff(const Matrix& a, const Matrix& b, const Matrix& w,
                       int64_t num_features, Rng& rng) {
  SBRL_CHECK_EQ(a.cols(), 1);
  SBRL_CHECK_EQ(b.cols(), 1);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  RffProjection proj_a = SampleRff(rng, 1, num_features);
  RffProjection proj_b = SampleRff(rng, 1, num_features);
  Matrix u = ApplyRff(proj_a, a);  // (n x k)
  Matrix v = ApplyRff(proj_b, b);  // (n x k)
  Matrix cov = WeightedCrossCovariance(u, v, w);
  double frob2 = 0.0;
  for (int64_t i = 0; i < cov.size(); ++i) frob2 += cov[i] * cov[i];
  return frob2;
}

double PairwiseWeightedHsicRff(const Matrix& x, const Matrix& w,
                               int64_t num_features, Rng& rng,
                               int64_t max_pairs) {
  const int64_t d = x.cols();
  SBRL_CHECK_GT(d, 1);
  SBRL_CHECK_EQ(x.rows(), w.rows());
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t a = 0; a < d; ++a) {
    for (int64_t b = a + 1; b < d; ++b) pairs.emplace_back(a, b);
  }
  const int64_t total = static_cast<int64_t>(pairs.size());
  int64_t use = total;
  if (max_pairs > 0 && max_pairs < total) {
    use = max_pairs;
    std::vector<int64_t> chosen = rng.SampleWithoutReplacement(total, use);
    std::vector<std::pair<int64_t, int64_t>> subset;
    subset.reserve(static_cast<size_t>(use));
    for (int64_t idx : chosen) {
      subset.push_back(pairs[static_cast<size_t>(idx)]);
    }
    pairs.swap(subset);
  }

  // Everything that depends on a single feature is hoisted out of the
  // pair loop: one projection per feature (shared by every pair that
  // touches it, where the seed resampled and re-applied the RFF
  // transform per pair), the weight-scaled features, and the weighted
  // feature means — computed lazily, in ascending column order, only
  // for features the (possibly subsampled) pair set actually uses.
  std::vector<bool> used(static_cast<size_t>(d), false);
  for (const auto& [a, b] : pairs) {
    used[static_cast<size_t>(a)] = true;
    used[static_cast<size_t>(b)] = true;
  }
  Matrix wn = NormalizeWeights(w);
  std::vector<Matrix> feats(static_cast<size_t>(d));
  std::vector<Matrix> feats_w(static_cast<size_t>(d));  // rows scaled by wn
  std::vector<Matrix> means(static_cast<size_t>(d));    // (1 x k) E_w[u]
  for (int64_t c = 0; c < d; ++c) {
    if (!used[static_cast<size_t>(c)]) continue;
    RffProjection proj = SampleRff(rng, 1, num_features);
    Matrix u = ApplyRffToColumn(proj, x, c);
    feats_w[static_cast<size_t>(c)] = MulColBroadcast(u, wn);
    means[static_cast<size_t>(c)] = MatmulTransA(wn, u);
    feats[static_cast<size_t>(c)] = std::move(u);
  }
  double acc = 0.0;
  for (const auto& [a, b] : pairs) {
    // Squared Frobenius norm of E_w[u v^T] - E_w[u] E_w[v]^T.
    const Matrix& ua = feats_w[static_cast<size_t>(a)];
    const Matrix& vb = feats[static_cast<size_t>(b)];
    Matrix cov = MatmulTransA(ua, vb);  // (k x k)
    const Matrix& ea = means[static_cast<size_t>(a)];
    const Matrix& eb = means[static_cast<size_t>(b)];
    double frob2 = 0.0;
    for (int64_t i = 0; i < cov.rows(); ++i) {
      for (int64_t j = 0; j < cov.cols(); ++j) {
        const double v = cov(i, j) - ea(0, i) * eb(0, j);
        frob2 += v * v;
      }
    }
    acc += frob2;
  }
  // Rescale a sampled subset to estimate the full-pair sum.
  return acc * static_cast<double>(total) / static_cast<double>(use);
}

}  // namespace sbrl

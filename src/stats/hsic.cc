#include "stats/hsic.h"

#include <vector>

#include "stats/kernels.h"
#include "stats/weighted.h"
#include "tensor/linalg.h"

namespace sbrl {

namespace {

/// Centers a kernel matrix: H K H with H = I - 11^T / n.
Matrix CenterKernel(const Matrix& k) {
  const int64_t n = k.rows();
  Matrix row_means = ColMean(k);   // (1 x n)
  Matrix col_means = RowMean(k);   // (n x 1)
  const double grand = k.Mean();
  Matrix out(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out(i, j) = k(i, j) - row_means(0, j) - col_means(i, 0) + grand;
    }
  }
  return out;
}

}  // namespace

double Hsic(const Matrix& a, const Matrix& b, double bandwidth_a,
            double bandwidth_b) {
  SBRL_CHECK_EQ(a.rows(), b.rows());
  SBRL_CHECK_GT(a.rows(), 1);
  const int64_t n = a.rows();
  Matrix ka = CenterKernel(RbfKernel(a, a, bandwidth_a));
  Matrix kb = RbfKernel(b, b, bandwidth_b);
  // tr(Ka_centered * Kb) equals tr(H Ka H Kb); elementwise product trace.
  double trace = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) trace += ka(i, j) * kb(j, i);
  }
  return trace / static_cast<double>(n * n);
}

double Hsic(const Matrix& a, const Matrix& b) {
  return Hsic(a, b, MedianHeuristicBandwidth(a), MedianHeuristicBandwidth(b));
}

double HsicRff(const Matrix& a, const Matrix& b, int64_t num_features,
               Rng& rng) {
  Matrix uniform = Matrix::Ones(a.rows(), 1);
  return WeightedHsicRff(a, b, uniform, num_features, rng);
}

double WeightedHsicRff(const Matrix& a, const Matrix& b, const Matrix& w,
                       int64_t num_features, Rng& rng) {
  SBRL_CHECK_EQ(a.cols(), 1);
  SBRL_CHECK_EQ(b.cols(), 1);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  RffProjection proj_a = SampleRff(rng, 1, num_features);
  RffProjection proj_b = SampleRff(rng, 1, num_features);
  Matrix u = ApplyRff(proj_a, a);  // (n x k)
  Matrix v = ApplyRff(proj_b, b);  // (n x k)
  Matrix cov = WeightedCrossCovariance(u, v, w);
  double frob2 = 0.0;
  for (int64_t i = 0; i < cov.size(); ++i) frob2 += cov[i] * cov[i];
  return frob2;
}

double PairwiseWeightedHsicRff(const Matrix& x, const Matrix& w,
                               int64_t num_features, Rng& rng,
                               int64_t max_pairs) {
  const int64_t d = x.cols();
  SBRL_CHECK_GT(d, 1);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t a = 0; a < d; ++a) {
    for (int64_t b = a + 1; b < d; ++b) pairs.emplace_back(a, b);
  }
  const int64_t total = static_cast<int64_t>(pairs.size());
  int64_t use = total;
  if (max_pairs > 0 && max_pairs < total) {
    use = max_pairs;
    std::vector<int64_t> chosen = rng.SampleWithoutReplacement(total, use);
    std::vector<std::pair<int64_t, int64_t>> subset;
    subset.reserve(static_cast<size_t>(use));
    for (int64_t idx : chosen) {
      subset.push_back(pairs[static_cast<size_t>(idx)]);
    }
    pairs.swap(subset);
  }
  double acc = 0.0;
  for (const auto& [a, b] : pairs) {
    acc += WeightedHsicRff(x.Col(a), x.Col(b), w, num_features, rng);
  }
  // Rescale a sampled subset to estimate the full-pair sum.
  return acc * static_cast<double>(total) / static_cast<double>(use);
}

}  // namespace sbrl

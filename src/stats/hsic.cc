#include "stats/hsic.h"

#include <cmath>
#include <utility>
#include <vector>

#include "stats/feature_pairs.h"
#include "stats/kernels.h"
#include "stats/weighted.h"
#include "tensor/linalg.h"

namespace sbrl {

namespace {

/// Centers a kernel matrix: H K H with H = I - 11^T / n.
Matrix CenterKernel(const Matrix& k) {
  const int64_t n = k.rows();
  Matrix row_means = ColMean(k);   // (1 x n)
  Matrix col_means = RowMean(k);   // (n x 1)
  const double grand = k.Mean();
  Matrix out(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out(i, j) = k(i, j) - row_means(0, j) - col_means(i, 0) + grand;
    }
  }
  return out;
}

}  // namespace

double Hsic(const Matrix& a, const Matrix& b, double bandwidth_a,
            double bandwidth_b) {
  SBRL_CHECK_EQ(a.rows(), b.rows());
  SBRL_CHECK_GT(a.rows(), 1);
  const int64_t n = a.rows();
  Matrix ka = CenterKernel(RbfKernel(a, a, bandwidth_a));
  Matrix kb = RbfKernel(b, b, bandwidth_b);
  // tr(Ka_centered * Kb) equals tr(H Ka H Kb); elementwise product trace.
  double trace = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) trace += ka(i, j) * kb(j, i);
  }
  return trace / static_cast<double>(n * n);
}

double Hsic(const Matrix& a, const Matrix& b) {
  return Hsic(a, b, MedianHeuristicBandwidth(a), MedianHeuristicBandwidth(b));
}

double HsicRff(const Matrix& a, const Matrix& b, int64_t num_features,
               Rng& rng, CosineMode mode) {
  Matrix uniform = Matrix::Ones(a.rows(), 1);
  return WeightedHsicRff(a, b, uniform, num_features, rng, mode);
}

double WeightedHsicRff(const Matrix& a, const Matrix& b, const Matrix& w,
                       int64_t num_features, Rng& rng, CosineMode mode) {
  SBRL_CHECK_EQ(a.cols(), 1);
  SBRL_CHECK_EQ(b.cols(), 1);
  SBRL_CHECK_EQ(a.rows(), b.rows());
  RffProjection proj_a = SampleRff(rng, 1, num_features);
  RffProjection proj_b = SampleRff(rng, 1, num_features);
  Matrix u = ApplyRff(proj_a, a, mode);  // (n x k)
  Matrix v = ApplyRff(proj_b, b, mode);  // (n x k)
  Matrix cov = WeightedCrossCovariance(u, v, w);
  double frob2 = 0.0;
  for (int64_t i = 0; i < cov.size(); ++i) frob2 += cov[i] * cov[i];
  return frob2;
}

double PairwiseWeightedHsicRff(const Matrix& x, const Matrix& w,
                               int64_t num_features, Rng& rng,
                               int64_t max_pairs, CosineMode mode) {
  const int64_t d = x.cols();
  const int64_t k = num_features;
  SBRL_CHECK_GT(d, 1);
  SBRL_CHECK_EQ(x.rows(), w.rows());
  FeaturePairSelection sel = SelectFeaturePairs(d, max_pairs, rng);

  // The statistic mirrors the batched block-diagonal formulation of
  // HsicRffDecorrelationLoss, rng discipline included: the pair subset
  // comes out of `rng`, then one epoch seed, and each used column's
  // projection is the slot draw keyed by (epoch, k, column index) —
  // features the pair set actually uses are stacked and every pair's
  // cross-covariance block comes out of ONE fused
  // BlockPairWeightedCrossInto dispatch instead of a per-pair matmul
  // loop.
  CompactPairBlocks blocks = CompactUsedColumns(d, sel.pairs);
  const std::vector<std::pair<int64_t, int64_t>>& block_pairs =
      blocks.block_pairs;
  const uint64_t epoch_seed = rng.engine()();
  std::vector<RffProjection> projs;
  projs.reserve(blocks.used_cols.size());
  for (int64_t col : blocks.used_cols) {
    projs.push_back(SampleRffSlot(epoch_seed, 1, k, col));
  }
  Matrix stacked(x.rows(),
                 static_cast<int64_t>(blocks.used_cols.size()) * k);
  StackRffColumnsWithProjections(x, blocks.used_cols, projs, k, &stacked,
                                 mode);
  Matrix wn = NormalizeWeights(w);
  Matrix means = MatmulTransA(wn, stacked);  // (1 x n_used*k)

  const int64_t num_pairs = static_cast<int64_t>(block_pairs.size());
  Matrix cross(num_pairs * k, k);
  BlockPairWeightedCrossInto(stacked, wn, k, block_pairs, &cross);

  double acc = 0.0;
  for (int64_t p = 0; p < num_pairs; ++p) {
    // Squared Frobenius norm of E_w[u v^T] - E_w[u] E_w[v]^T.
    const double* ea = means.data() + block_pairs[static_cast<size_t>(p)].first * k;
    const double* eb = means.data() + block_pairs[static_cast<size_t>(p)].second * k;
    const double* cblock = cross.data() + p * k * k;
    double frob2 = 0.0;
    for (int64_t i = 0; i < k; ++i) {
      const double* crow = cblock + i * k;
      for (int64_t j = 0; j < k; ++j) {
        const double v = crow[j] - ea[i] * eb[j];
        frob2 += v * v;
      }
    }
    acc += frob2;
  }
  // Rescale a sampled subset to estimate the full-pair sum.
  return acc * sel.Rescale();
}

}  // namespace sbrl

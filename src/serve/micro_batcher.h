#ifndef SBRL_SERVE_MICRO_BATCHER_H_
#define SBRL_SERVE_MICRO_BATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/serving_model.h"

namespace sbrl {
namespace serve {

/// Coalesces concurrent single-row scoring requests into batched
/// forward passes over one shared ServingModel. Client threads block
/// in ScoreRow until their row is scored; a dedicated dispatcher
/// thread drains the queue, optionally lingering up to max_wait for a
/// fuller batch, and runs one batched forward per dispatch.
///
/// Determinism contract: because each ServingModel output row depends
/// only on its input row (and per-row OOD stamps are computed
/// row-locally), every result is bitwise identical to scoring the row
/// alone — independent of the client thread count, queue order, and
/// where the coalescing boundaries happen to fall. What batching
/// changes is only latency and throughput, never bits
/// (tests/serving_concurrency_test.cc locks this down).
///
/// Shutdown drains: requests enqueued before Shutdown are scored and
/// their futures fulfilled before the dispatcher exits.
class MicroBatcher {
 public:
  /// Batching knobs; each follows the repo's env-knob pattern
  /// (explicit option > SBRL_SERVE_* env > default).
  struct Options {
    /// Rows coalesced per forward at most; <= 0 resolves via
    /// SBRL_SERVE_MAX_BATCH, then defaults to 32.
    int64_t max_batch = 0;
    /// Linger budget (microseconds) the dispatcher may wait for a
    /// fuller batch after the first pending request; < 0 resolves via
    /// SBRL_SERVE_MAX_WAIT_US, then defaults to 200. 0 dispatches
    /// whatever is queued immediately.
    int64_t max_wait_us = -1;
    /// Stamp each response with the row-level OOD verdict (no-op when
    /// the model carries no detector).
    bool ood = false;
    /// Row OOD levels >= this threshold set the flagged bit.
    double ood_threshold = 0.5;
  };

  /// Starts the dispatcher over `model` (not owned; must outlive the
  /// batcher).
  MicroBatcher(const ServingModel* model, const Options& options);
  /// Starts the dispatcher with default options.
  explicit MicroBatcher(const ServingModel* model);

  /// Shutdown() if still running.
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Scores one request row, blocking until its batch is dispatched.
  /// Thread-safe; CHECK-fails when called after Shutdown or with a
  /// row of the wrong dimension.
  ServingModel::RowScore ScoreRow(const std::vector<double>& x);

  /// Stops accepting requests, scores everything still queued, and
  /// joins the dispatcher. Idempotent.
  void Shutdown();

  /// Batched forwards dispatched so far.
  int64_t batches_dispatched() const { return batches_dispatched_.load(); }
  /// Request rows scored so far.
  int64_t rows_scored() const { return rows_scored_.load(); }
  /// The resolved maximum batch size.
  int64_t max_batch() const { return max_batch_; }
  /// The resolved linger budget in microseconds.
  int64_t max_wait_us() const { return max_wait_us_; }

 private:
  struct Pending {
    std::vector<double> x;
    std::promise<ServingModel::RowScore> promise;
  };

  void DispatchLoop();

  const ServingModel* model_;
  int64_t max_batch_;
  int64_t max_wait_us_;
  ServingModel::ScoreOptions score_options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::atomic<int64_t> batches_dispatched_{0};
  std::atomic<int64_t> rows_scored_{0};
  std::thread dispatcher_;
};

}  // namespace serve
}  // namespace sbrl

#endif  // SBRL_SERVE_MICRO_BATCHER_H_

#include "serve/model_format.h"

#include "common/serial.h"
#include "nn/parameter.h"

namespace sbrl {
namespace serve {

namespace {

using serial::AppendMatrix;
using serial::AppendScalar;
using serial::AppendString;
using serial::ByteReader;

constexpr serial::FormatSpec kServingFormat = {
    /*magic=*/"SBRLMODL",
    /*version=*/kServingFormatVersion,
    /*what=*/"serving model",
    /*write_fault=*/"serve/write",
    /*read_fault=*/"serve/read",
};

// Section tags. A section is (u32 tag, u64 payload_size, payload,
// u32 crc32(payload)); the OOD section is present only when a fitted
// detector was exported.
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionWeights = 2;
constexpr uint32_t kSectionState = 3;
constexpr uint32_t kSectionOod = 4;
constexpr uint32_t kSectionWeightsF32 = 5;

std::string EncodeMeta(const ServingMeta& meta) {
  std::string out;
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(meta.backbone));
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(meta.framework));
  AppendString(&out, meta.method_name);
  AppendScalar<int64_t>(&out, meta.input_dim);
  AppendScalar<uint32_t>(&out, meta.binary_outcome ? 1 : 0);
  AppendScalar<double>(&out, meta.y_mean);
  AppendScalar<double>(&out, meta.y_std);
  AppendScalar<int64_t>(&out, meta.network.rep_layers);
  AppendScalar<int64_t>(&out, meta.network.rep_width);
  AppendScalar<int64_t>(&out, meta.network.head_layers);
  AppendScalar<int64_t>(&out, meta.network.head_width);
  AppendScalar<uint32_t>(&out, meta.network.batchnorm ? 1 : 0);
  AppendScalar<uint32_t>(&out, meta.network.rep_normalization ? 1 : 0);
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(meta.network.activation));
  AppendScalar<int32_t>(&out, static_cast<int32_t>(meta.isa));
  AppendScalar<double>(&out, meta.bn_eps);
  return out;
}

bool DecodeMeta(ByteReader* reader, ServingMeta* meta) {
  uint32_t backbone = 0, framework = 0, binary = 0, batchnorm = 0;
  uint32_t rep_norm = 0, activation = 0;
  int32_t isa = 0;
  const bool read =
      reader->ReadScalar(&backbone) && reader->ReadScalar(&framework) &&
      reader->ReadString(&meta->method_name) &&
      reader->ReadScalar(&meta->input_dim) && reader->ReadScalar(&binary) &&
      reader->ReadScalar(&meta->y_mean) && reader->ReadScalar(&meta->y_std) &&
      reader->ReadScalar(&meta->network.rep_layers) &&
      reader->ReadScalar(&meta->network.rep_width) &&
      reader->ReadScalar(&meta->network.head_layers) &&
      reader->ReadScalar(&meta->network.head_width) &&
      reader->ReadScalar(&batchnorm) && reader->ReadScalar(&rep_norm) &&
      reader->ReadScalar(&activation) && reader->ReadScalar(&isa) &&
      reader->ReadScalar(&meta->bn_eps) && reader->exhausted();
  if (!read) return false;
  // Range-check every enum before the cast: a CRC-valid file from a
  // newer build must fail decode, not smuggle an out-of-range value.
  if (backbone > static_cast<uint32_t>(BackboneKind::kDerCfr)) return false;
  if (framework > static_cast<uint32_t>(FrameworkKind::kSbrlHap)) return false;
  if (activation > static_cast<uint32_t>(Activation::kLinear)) return false;
  if (isa < static_cast<int32_t>(IsaChoice::kAuto) ||
      isa > static_cast<int32_t>(IsaChoice::kAvx512)) {
    return false;
  }
  if (meta->input_dim < 1 || meta->bn_eps <= 0.0) return false;
  meta->backbone = static_cast<BackboneKind>(backbone);
  meta->framework = static_cast<FrameworkKind>(framework);
  meta->binary_outcome = binary != 0;
  meta->network.batchnorm = batchnorm != 0;
  meta->network.rep_normalization = rep_norm != 0;
  meta->network.activation = static_cast<Activation>(activation);
  meta->isa = static_cast<IsaChoice>(isa);
  return true;
}

std::string EncodeNamedMatrices(const std::vector<NamedMatrix>& items) {
  std::string out;
  AppendScalar<uint64_t>(&out, items.size());
  for (const NamedMatrix& item : items) {
    AppendString(&out, item.name);
    AppendMatrix(&out, item.value);
  }
  return out;
}

bool DecodeNamedMatrices(ByteReader* reader, std::vector<NamedMatrix>* out) {
  uint64_t count = 0;
  if (!reader->ReadScalar(&count)) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    NamedMatrix item;
    if (!reader->ReadString(&item.name) || !reader->ReadMatrix(&item.value)) {
      return false;
    }
    out->push_back(std::move(item));
  }
  return reader->exhausted();
}

std::string EncodeNamedMatricesF32(const std::vector<NamedMatrixF32>& items) {
  std::string out;
  AppendScalar<uint64_t>(&out, items.size());
  for (const NamedMatrixF32& item : items) {
    AppendString(&out, item.name);
    serial::AppendMatrixF32(&out, item.value);
  }
  return out;
}

bool DecodeNamedMatricesF32(ByteReader* reader,
                            std::vector<NamedMatrixF32>* out) {
  uint64_t count = 0;
  if (!reader->ReadScalar(&count)) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    NamedMatrixF32 item;
    if (!reader->ReadString(&item.name) ||
        !reader->ReadMatrixF32(&item.value)) {
      return false;
    }
    out->push_back(std::move(item));
  }
  return reader->exhausted();
}

std::string EncodeOod(const OodLevelDetector::State& state) {
  std::string out;
  AppendScalar<int64_t>(&out, state.options.calibration_rounds);
  AppendScalar<int64_t>(&out, state.options.projections);
  AppendScalar<int64_t>(&out, state.options.quadratic_features);
  AppendScalar<uint64_t>(&out, state.options.seed);
  AppendMatrix(&out, state.source);
  AppendScalar<uint64_t>(&out, state.quad_pairs.size());
  for (const auto& [i, j] : state.quad_pairs) {
    AppendScalar<int64_t>(&out, i);
    AppendScalar<int64_t>(&out, j);
  }
  AppendMatrix(&out, state.col_mean);
  AppendMatrix(&out, state.col_std);
  AppendScalar<double>(&out, state.null_q95);
  AppendScalar<double>(&out, state.null_scale);
  return out;
}

bool DecodeOod(ByteReader* reader, OodLevelDetector::State* state) {
  if (!reader->ReadScalar(&state->options.calibration_rounds) ||
      !reader->ReadScalar(&state->options.projections) ||
      !reader->ReadScalar(&state->options.quadratic_features) ||
      !reader->ReadScalar(&state->options.seed) ||
      !reader->ReadMatrix(&state->source)) {
    return false;
  }
  uint64_t pairs = 0;
  if (!reader->ReadScalar(&pairs) || pairs > (1ull << 30)) return false;
  state->quad_pairs.clear();
  state->quad_pairs.reserve(pairs);
  for (uint64_t q = 0; q < pairs; ++q) {
    int64_t i = 0, j = 0;
    if (!reader->ReadScalar(&i) || !reader->ReadScalar(&j)) return false;
    state->quad_pairs.emplace_back(i, j);
  }
  return reader->ReadMatrix(&state->col_mean) &&
         reader->ReadMatrix(&state->col_std) &&
         reader->ReadScalar(&state->null_q95) &&
         reader->ReadScalar(&state->null_scale) && reader->exhausted();
}

}  // namespace

Status SaveServingModel(const ServingModelData& data,
                        const std::string& path) {
  std::vector<serial::Section> sections;
  sections.push_back({kSectionMeta, EncodeMeta(data.meta)});
  sections.push_back({kSectionWeights, EncodeNamedMatrices(data.weights)});
  sections.push_back({kSectionState, EncodeNamedMatrices(data.state)});
  if (data.has_ood) {
    sections.push_back({kSectionOod, EncodeOod(data.ood)});
  }
  if (data.has_f32) {
    sections.push_back(
        {kSectionWeightsF32, EncodeNamedMatricesF32(data.weights_f32)});
  }
  return serial::WriteSectionedFile(kServingFormat, sections, path);
}

StatusOr<ServingModelData> LoadServingModel(const std::string& path) {
  SBRL_ASSIGN_OR_RETURN(std::vector<serial::Section> sections,
                        serial::ReadSectionedFile(kServingFormat, path));

  ServingModelData data;
  bool seen_meta = false, seen_weights = false;
  for (const serial::Section& section : sections) {
    ByteReader reader(section.payload.data(), section.payload.size());
    bool decoded = true;
    switch (section.tag) {
      case kSectionMeta:
        decoded = DecodeMeta(&reader, &data.meta);
        seen_meta = decoded;
        break;
      case kSectionWeights:
        decoded = DecodeNamedMatrices(&reader, &data.weights);
        seen_weights = decoded;
        break;
      case kSectionState:
        decoded = DecodeNamedMatrices(&reader, &data.state);
        break;
      case kSectionOod:
        decoded = DecodeOod(&reader, &data.ood);
        data.has_ood = decoded;
        break;
      case kSectionWeightsF32:
        decoded = DecodeNamedMatricesF32(&reader, &data.weights_f32);
        data.has_f32 = decoded;
        break;
      default:
        // Unknown sections are a forward-compat error at version parity:
        // same version must mean same sections.
        return Status::Internal("unknown serving model section tag " +
                                std::to_string(section.tag) + ": " + path);
    }
    if (!decoded) {
      return Status::Internal("corrupt serving model section " +
                              std::to_string(section.tag) + ": " + path);
    }
  }
  if (!seen_meta || !seen_weights) {
    return Status::Internal("serving model missing required sections: " +
                            path);
  }
  return data;
}

StatusOr<ServingModelData> ExportServingData(
    HteEstimator& estimator, const OodLevelDetector* ood_detector,
    bool include_f32) {
  if (!estimator.fitted()) {
    return Status::FailedPrecondition(
        "cannot export an unfitted estimator as a serving model");
  }
  const EstimatorConfig& config = estimator.config();
  ServingModelData data;
  data.meta.backbone = config.backbone;
  data.meta.framework = config.framework;
  data.meta.method_name = MethodName(config.backbone, config.framework);
  data.meta.input_dim = estimator.fitted_backbone()->input_dim();
  data.meta.binary_outcome = estimator.binary_outcome();
  data.meta.y_mean = estimator.outcome_mean();
  data.meta.y_std = estimator.outcome_std();
  data.meta.network = config.network;
  data.meta.isa = config.sbrl.isa;

  std::vector<Param*> params;
  estimator.fitted_backbone()->CollectParams(&params);
  data.weights.reserve(params.size());
  for (const Param* p : params) {
    data.weights.push_back({p->name, p->value});
  }
  std::vector<NamedStateRef> state;
  estimator.fitted_backbone()->CollectStateMatrices(&state);
  data.state.reserve(state.size());
  for (const NamedStateRef& s : state) {
    data.state.push_back({s.name, *s.value});
  }
  if (ood_detector != nullptr) {
    data.has_ood = true;
    data.ood = ood_detector->ExportState();
  }
  if (include_f32) {
    data.has_f32 = true;
    data.weights_f32.reserve(data.weights.size());
    for (const NamedMatrix& item : data.weights) {
      data.weights_f32.push_back({item.name, MatrixF32::FromF64(item.value)});
    }
  }
  return data;
}

Status ExportServingModel(HteEstimator& estimator,
                          const OodLevelDetector* ood_detector,
                          const std::string& path, bool include_f32) {
  SBRL_ASSIGN_OR_RETURN(ServingModelData data,
                        ExportServingData(estimator, ood_detector,
                                          include_f32));
  return SaveServingModel(data, path);
}

}  // namespace serve
}  // namespace sbrl

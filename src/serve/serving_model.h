#ifndef SBRL_SERVE_SERVING_MODEL_H_
#define SBRL_SERVE_SERVING_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "common/precision.h"
#include "common/statusor.h"
#include "core/ood_detector.h"
#include "serve/model_format.h"
#include "tensor/matrix.h"
#include "tensor/matrix_f32.h"

namespace sbrl {
namespace serve {

/// Immutable scorer over an exported model: load once, share freely
/// across threads. The score path takes no locks, allocates no tape,
/// and mutates no member state — every forward runs the tape-free
/// value kernels (ops::AffineActValue / AffineBatchNormInferActValue)
/// over tensors frozen at construction, pinned to the exported ISA
/// choice, so ScoreOutcomes is bitwise identical to the fitted
/// estimator's PredictPotentialOutcomes. Each output row depends only
/// on its input row, which is what lets the micro-batcher coalesce
/// requests without changing any result bit (see MicroBatcher).
class ServingModel {
 public:
  /// Per-request scoring knobs.
  struct ScoreOptions {
    /// Stamp responses with the OOD detector's shift level (no-op when
    /// the model carries no detector).
    bool ood = true;
    /// Levels >= this threshold set the flagged bit.
    double ood_threshold = 0.5;
  };

  /// One scored request row.
  struct RowScore {
    /// Predicted potential outcome under control.
    double y0 = 0.0;
    /// Predicted potential outcome under treatment.
    double y1 = 0.0;
    /// Individual treatment effect y1 - y0.
    double ite = 0.0;
    /// Row-level OOD level in [0, 1] (0 when gating is off or the
    /// model has no detector).
    double ood_level = 0.0;
    /// True when ood_level >= the request's threshold.
    bool ood_flagged = false;
  };

  /// One scored request batch.
  struct BatchScore {
    /// (n x 2) potential outcomes: column 0 = y0_hat, column 1 =
    /// y1_hat; bitwise equal to PredictPotentialOutcomes.
    Matrix outcomes;
    /// Per-row treatment effects y1_hat - y0_hat.
    std::vector<double> ite;
    /// Population-level OOD level of the whole batch (0 when gating is
    /// off or the model has no detector).
    double ood_level = 0.0;
    /// True when ood_level >= the request's threshold.
    bool ood_flagged = false;
  };

  /// Builds a scorer from decoded model data, resolving every tensor
  /// name against the meta's architecture and shape-checking it.
  /// Returns InvalidArgument on a missing tensor, a shape mismatch, or
  /// invalid OOD state. When a detector rides along, its row-level
  /// null distances are calibrated here (see RowOodLevel).
  static StatusOr<ServingModel> FromData(ServingModelData data);

  /// LoadServingModel + FromData in one step.
  static StatusOr<ServingModel> Load(const std::string& path);

  /// Potential outcomes for each row of `x` -> (n x 2) matrix, column
  /// 0 = y0_hat, column 1 = y1_hat; binary outcomes are probabilities.
  /// Under the default f64 precision tier, bitwise identical to the
  /// exporting estimator's PredictPotentialOutcomes on the same rows,
  /// for any batching of the rows. Under Precision::kF32 (the
  /// SBRL_PRECISION=f32 knob, resolved once at load) this routes to
  /// ScoreOutcomesF32. Thread-safe without synchronization.
  Matrix ScoreOutcomes(const Matrix& x) const;

  /// f32-tier scoring: the forward runs entirely in f32 storage and
  /// arithmetic (LinalgKernelsF32 matmuls, float activations) over
  /// weights taken from the exported f32 section when present and
  /// narrowed from the f64 tensors otherwise; only the final
  /// sigmoid/de-standardization runs in f64 on the widened head
  /// outputs, shared with the f64 path. Agrees with the f64 scorer to
  /// the per-method budgets in tests/precision_test.cc, never bitwise.
  /// Deterministic per ISA level and batching-invariant like the f64
  /// path. Thread-safe without synchronization.
  Matrix ScoreOutcomesF32(const Matrix& x) const;

  /// The precision tier ScoreOutcomes routes through (resolved from
  /// SBRL_PRECISION once at construction; default f64).
  Precision precision() const { return precision_; }

  /// Scores a batch and stamps it with the detector's population-level
  /// shift verdict (OodLevelDetector::LevelOf over all of `x`).
  BatchScore Score(const Matrix& x, const ScoreOptions& options) const;
  /// Score with default options.
  BatchScore Score(const Matrix& x) const;

  /// Scores a batch with PER-ROW OOD stamping: outcomes are computed
  /// batch-wise (batching-invariant), but each row's OOD level is
  /// RowOodLevel of that row alone, so the stamp is independent of
  /// which other rows happened to share the batch — the invariant the
  /// micro-batcher's determinism contract needs.
  std::vector<RowScore> ScoreRows(const Matrix& x,
                                  const ScoreOptions& options) const;
  /// ScoreRows with default options.
  std::vector<RowScore> ScoreRows(const Matrix& x) const;

  /// Row-level OOD level in [0, 1] of a single request row (1 x d):
  /// the detector's distance of the one-row population to the source,
  /// renormalized against a null of single-source-row distances
  /// calibrated at load time (a one-row "population" sits at a
  /// point-mass distance from the source even in distribution, so the
  /// batch-level null would flag everything). CHECK-fails without a
  /// detector.
  double RowOodLevel(const Matrix& row) const;

  /// Population-level OOD level of `x` (OodLevelDetector::LevelOf).
  /// CHECK-fails without a detector.
  double OodLevelOf(const Matrix& x) const;

  /// True when a fitted OOD detector was exported with the model.
  bool has_ood_detector() const { return detector_.has_value(); }

  /// Covariate dimension every request row must have.
  int64_t input_dim() const { return meta_.input_dim; }

  /// The decoded meta section (method name, config, ISA pin, ...).
  const ServingMeta& meta() const { return meta_; }

 private:
  /// One affine (+ optional frozen BatchNorm) + activation layer.
  struct Layer {
    Matrix w;  ///< (in x out) weight
    Matrix b;  ///< (1 x out) bias
    bool has_bn = false;  ///< BatchNorm folded into this layer
    Matrix gamma;         ///< (1 x out) BN scale
    Matrix beta;          ///< (1 x out) BN shift
    Matrix running_mean;  ///< (1 x out) frozen BN mean
    Matrix running_var;   ///< (1 x out) frozen BN variance
  };
  /// An MLP as a sequence of layers (empty for a degenerate stack).
  struct Stack {
    std::vector<Layer> layers;
  };
  /// f32 twin of Layer, backing the f32 scoring tier.
  struct LayerF32 {
    MatrixF32 w;
    MatrixF32 b;
    bool has_bn = false;
    MatrixF32 gamma;
    MatrixF32 beta;
    MatrixF32 running_mean;
    MatrixF32 running_var;
  };
  /// f32 twin of Stack.
  struct StackF32 {
    std::vector<LayerF32> layers;
  };

  ServingModel() = default;

  /// Runs `stack` over `x` with the exported activation/BN settings.
  Matrix RunStack(const Stack& stack, const Matrix& x) const;
  /// The balanced representation of `x` (rep stack(s), normalization,
  /// DeR-CFR concat) — the input of both outcome heads.
  Matrix Representation(const Matrix& x) const;
  /// f32 twins of RunStack / Representation.
  MatrixF32 RunStackF32(const StackF32& stack, const MatrixF32& x) const;
  MatrixF32 RepresentationF32(const MatrixF32& x) const;

  ServingMeta meta_;
  Stack rep_;     // TARNet/CFR representation ("rep")
  Stack rep_c_;   // DeR-CFR confounder stack ("C")
  Stack rep_a_;   // DeR-CFR adjustment stack ("A")
  Stack body0_;   // control head body ("heads.h0")
  Stack body1_;   // treated head body ("heads.h1")
  Layer out0_;    // control head output unit ("heads.h0.out")
  Layer out1_;    // treated head output unit ("heads.h1.out")
  // f32 twins of the stacks above (always built: from the exported f32
  // section when present, else narrowed from the f64 tensors).
  StackF32 rep32_;
  StackF32 rep_c32_;
  StackF32 rep_a32_;
  StackF32 body032_;
  StackF32 body132_;
  LayerF32 out032_;
  LayerF32 out132_;
  Precision precision_ = Precision::kF64;
  std::optional<OodLevelDetector> detector_;
  double row_null_q95_ = 0.0;
  double row_null_scale_ = 1.0;
};

}  // namespace serve
}  // namespace sbrl

#endif  // SBRL_SERVE_SERVING_MODEL_H_

#include "serve/serving_model.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "autodiff/ops.h"
#include "autodiff/ops_f32.h"
#include "common/cpu.h"
#include "nn/net_step.h"

namespace sbrl {
namespace serve {

namespace {

using MatrixMap = std::unordered_map<std::string, Matrix>;

MatrixMap IndexByName(std::vector<NamedMatrix> items) {
  MatrixMap map;
  map.reserve(items.size());
  for (NamedMatrix& item : items) {
    map.emplace(std::move(item.name), std::move(item.value));
  }
  return map;
}

/// Moves the tensor `name` out of `map`, requiring shape (rows x cols).
Status Take(MatrixMap* map, const std::string& name, int64_t rows,
            int64_t cols, Matrix* out) {
  auto it = map->find(name);
  if (it == map->end()) {
    return Status::InvalidArgument("serving model missing tensor: " + name);
  }
  if (it->second.rows() != rows || it->second.cols() != cols) {
    return Status::InvalidArgument(
        "serving model tensor " + name + " has shape " +
        it->second.ShapeString() + ", expected (" + std::to_string(rows) +
        " x " + std::to_string(cols) + ")");
  }
  *out = std::move(it->second);
  return Status::OK();
}

}  // namespace

StatusOr<ServingModel> ServingModel::FromData(ServingModelData data) {
  ServingModel model;
  model.meta_ = data.meta;
  model.precision_ = ResolvePrecision(Precision::kF64);
  const NetworkConfig& net = data.meta.network;
  MatrixMap weights = IndexByName(std::move(data.weights));
  MatrixMap state = IndexByName(std::move(data.state));
  // The exported f32 tensors (when present) take priority over
  // loader-side narrowing, so a round-tripped file scores the exact
  // bits that were written.
  std::unordered_map<std::string, MatrixF32> weights_f32;
  weights_f32.reserve(data.weights_f32.size());
  for (NamedMatrixF32& item : data.weights_f32) {
    weights_f32.emplace(std::move(item.name), std::move(item.value));
  }
  // Fills `*out` with the f32 twin of the f64 tensor `ref` named
  // `name`: the exported f32 tensor when one rode along (shape-checked
  // against the f64 tensor), else FromF64 narrowing.
  auto f32_of = [&](const std::string& name, const Matrix& ref,
                    MatrixF32* out) -> Status {
    auto it = weights_f32.find(name);
    if (it == weights_f32.end()) {
      *out = MatrixF32::FromF64(ref);
      return Status::OK();
    }
    if (it->second.rows() != ref.rows() || it->second.cols() != ref.cols()) {
      return Status::InvalidArgument(
          "serving model f32 tensor " + name + " has shape " +
          it->second.ShapeString() + ", expected " + ref.ShapeString());
    }
    *out = std::move(it->second);
    weights_f32.erase(it);
    return Status::OK();
  };

  // Mirrors Mlp's module naming: layer i is "<prefix>.l<i>" with
  // params .W/.b, its BatchNorm "<prefix>.bn<i>" with params
  // .gamma/.beta and state .running_mean/.running_var.
  auto build_stack = [&](const std::string& prefix, int64_t in_dim,
                         int64_t layers, int64_t width, Stack* out,
                         StackF32* out32) -> Status {
    out->layers.clear();
    out32->layers.clear();
    for (int64_t i = 0; i < layers; ++i) {
      Layer layer;
      LayerF32 layer32;
      const std::string dense = prefix + ".l" + std::to_string(i);
      const int64_t in = i == 0 ? in_dim : width;
      SBRL_RETURN_IF_ERROR(Take(&weights, dense + ".W", in, width,
                                &layer.w));
      SBRL_RETURN_IF_ERROR(Take(&weights, dense + ".b", 1, width, &layer.b));
      SBRL_RETURN_IF_ERROR(f32_of(dense + ".W", layer.w, &layer32.w));
      SBRL_RETURN_IF_ERROR(f32_of(dense + ".b", layer.b, &layer32.b));
      if (net.batchnorm) {
        layer.has_bn = true;
        layer32.has_bn = true;
        const std::string bn = prefix + ".bn" + std::to_string(i);
        SBRL_RETURN_IF_ERROR(Take(&weights, bn + ".gamma", 1, width,
                                  &layer.gamma));
        SBRL_RETURN_IF_ERROR(Take(&weights, bn + ".beta", 1, width,
                                  &layer.beta));
        SBRL_RETURN_IF_ERROR(Take(&state, bn + ".running_mean", 1, width,
                                  &layer.running_mean));
        SBRL_RETURN_IF_ERROR(Take(&state, bn + ".running_var", 1, width,
                                  &layer.running_var));
        SBRL_RETURN_IF_ERROR(f32_of(bn + ".gamma", layer.gamma,
                                    &layer32.gamma));
        SBRL_RETURN_IF_ERROR(f32_of(bn + ".beta", layer.beta,
                                    &layer32.beta));
        // BatchNorm running statistics live in the f64 state section
        // only; the f32 tier always narrows them.
        layer32.running_mean = MatrixF32::FromF64(layer.running_mean);
        layer32.running_var = MatrixF32::FromF64(layer.running_var);
      }
      out->layers.push_back(std::move(layer));
      out32->layers.push_back(std::move(layer32));
    }
    return Status::OK();
  };
  auto build_dense = [&](const std::string& name, int64_t in, int64_t out_dim,
                         Layer* out, LayerF32* out32) -> Status {
    SBRL_RETURN_IF_ERROR(Take(&weights, name + ".W", in, out_dim, &out->w));
    SBRL_RETURN_IF_ERROR(Take(&weights, name + ".b", 1, out_dim, &out->b));
    SBRL_RETURN_IF_ERROR(f32_of(name + ".W", out->w, &out32->w));
    SBRL_RETURN_IF_ERROR(f32_of(name + ".b", out->b, &out32->b));
    return Status::OK();
  };

  const int64_t d = data.meta.input_dim;
  int64_t rep_out = net.rep_width;
  if (data.meta.backbone == BackboneKind::kDerCfr) {
    SBRL_RETURN_IF_ERROR(build_stack("C", d, net.rep_layers, net.rep_width,
                                     &model.rep_c_, &model.rep_c32_));
    SBRL_RETURN_IF_ERROR(build_stack("A", d, net.rep_layers, net.rep_width,
                                     &model.rep_a_, &model.rep_a32_));
    rep_out = 2 * net.rep_width;
  } else {
    SBRL_RETURN_IF_ERROR(build_stack("rep", d, net.rep_layers,
                                     net.rep_width, &model.rep_,
                                     &model.rep32_));
  }
  SBRL_RETURN_IF_ERROR(build_stack("heads.h0", rep_out, net.head_layers,
                                   net.head_width, &model.body0_,
                                   &model.body032_));
  SBRL_RETURN_IF_ERROR(build_stack("heads.h1", rep_out, net.head_layers,
                                   net.head_width, &model.body1_,
                                   &model.body132_));
  SBRL_RETURN_IF_ERROR(build_dense("heads.h0.out", net.head_width, 1,
                                   &model.out0_, &model.out032_));
  SBRL_RETURN_IF_ERROR(build_dense("heads.h1.out", net.head_width, 1,
                                   &model.out1_, &model.out132_));

  if (data.has_ood) {
    SBRL_ASSIGN_OR_RETURN(OodLevelDetector detector,
                          OodLevelDetector::FromState(data.ood));
    if (data.ood.source.cols() != d) {
      return Status::InvalidArgument(
          "serving model OOD detector dimension mismatch");
    }
    model.detector_.emplace(std::move(detector));
    // Row-level null calibration: the distance of a SINGLE source row
    // to the full source is large even in distribution (a point mass
    // never looks like a population), so per-row gating needs its own
    // null. Deterministic stride sample of source rows, each measured
    // against the source like a one-row request would be.
    const Matrix& source = data.ood.source;
    const int64_t n = source.rows();
    const int64_t k = std::min<int64_t>(64, n);
    std::vector<double> distances;
    distances.reserve(static_cast<size_t>(k));
    Matrix row(1, d);
    for (int64_t i = 0; i < k; ++i) {
      const int64_t r = i * n / k;
      for (int64_t c = 0; c < d; ++c) row(0, c) = source(r, c);
      distances.push_back(model.detector_->DistanceTo(row));
    }
    std::sort(distances.begin(), distances.end());
    const size_t q95 = static_cast<size_t>(
        0.95 * static_cast<double>(distances.size() - 1));
    model.row_null_q95_ = distances[q95];
    double mean = 0.0;
    for (double v : distances) mean += v;
    mean /= static_cast<double>(distances.size());
    model.row_null_scale_ = std::max(mean, 1e-9);
  }
  return model;
}

StatusOr<ServingModel> ServingModel::Load(const std::string& path) {
  SBRL_ASSIGN_OR_RETURN(ServingModelData data, LoadServingModel(path));
  return FromData(std::move(data));
}

Matrix ServingModel::RunStack(const Stack& stack, const Matrix& x) const {
  const ops::ActKind act = ToActKind(meta_.network.activation);
  Matrix h = x;
  for (const Layer& layer : stack.layers) {
    if (layer.has_bn) {
      h = ops::AffineBatchNormInferActValue(
          h, layer.w, layer.b, layer.gamma, layer.beta, layer.running_mean,
          layer.running_var, meta_.bn_eps, act);
    } else {
      h = ops::AffineActValue(h, layer.w, layer.b, act);
    }
  }
  return h;
}

Matrix ServingModel::Representation(const Matrix& x) const {
  if (meta_.backbone == BackboneKind::kDerCfr) {
    Matrix rep_c = RunStack(rep_c_, x);
    Matrix rep_a = RunStack(rep_a_, x);
    if (meta_.network.rep_normalization) {
      rep_c = ops::NormalizeRowsValue(rep_c);
      rep_a = ops::NormalizeRowsValue(rep_a);
    }
    return ops::ConcatColsValue(rep_c, rep_a);
  }
  Matrix rep = RunStack(rep_, x);
  if (meta_.network.rep_normalization) rep = ops::NormalizeRowsValue(rep);
  return rep;
}

MatrixF32 ServingModel::RunStackF32(const StackF32& stack,
                                    const MatrixF32& x) const {
  const ops::ActKind act = ToActKind(meta_.network.activation);
  MatrixF32 h = x;
  for (const LayerF32& layer : stack.layers) {
    if (layer.has_bn) {
      h = ops::AffineBatchNormInferActValueF32(
          h, layer.w, layer.b, layer.gamma, layer.beta, layer.running_mean,
          layer.running_var, meta_.bn_eps, act);
    } else {
      h = ops::AffineActValueF32(h, layer.w, layer.b, act);
    }
  }
  return h;
}

MatrixF32 ServingModel::RepresentationF32(const MatrixF32& x) const {
  if (meta_.backbone == BackboneKind::kDerCfr) {
    MatrixF32 rep_c = RunStackF32(rep_c32_, x);
    MatrixF32 rep_a = RunStackF32(rep_a32_, x);
    if (meta_.network.rep_normalization) {
      rep_c = ops::NormalizeRowsValueF32(rep_c);
      rep_a = ops::NormalizeRowsValueF32(rep_a);
    }
    return ops::ConcatColsValueF32(rep_c, rep_a);
  }
  MatrixF32 rep = RunStackF32(rep32_, x);
  if (meta_.network.rep_normalization) {
    rep = ops::NormalizeRowsValueF32(rep);
  }
  return rep;
}

Matrix ServingModel::ScoreOutcomesF32(const Matrix& x) const {
  SBRL_CHECK_EQ(x.cols(), meta_.input_dim)
      << "request dimension does not match the exported model";
  // Same ISA pin as the f64 path: the f32 tables are resolved per
  // level too, so which f32 kernels run is part of the result's
  // provenance just like in f64.
  ScopedThreadIsa isa_scope(meta_.isa);
  const MatrixF32 x32 = MatrixF32::FromF64(x);
  const MatrixF32 rep = RepresentationF32(x32);
  const MatrixF32 h0 = RunStackF32(body032_, rep);
  const MatrixF32 h1 = RunStackF32(body132_, rep);
  const MatrixF32 y0 =
      ops::AffineActValueF32(h0, out032_.w, out032_.b, ops::ActKind::kIdentity);
  const MatrixF32 y1 =
      ops::AffineActValueF32(h1, out132_.w, out132_.b, ops::ActKind::kIdentity);

  // Post-processing is shared with the f64 scorer: the head outputs
  // are widened and pushed through the identical f64 sigmoid /
  // de-standardization, so the two tiers differ only by the f32
  // forward itself.
  Matrix out(x.rows(), 2);
  for (int64_t i = 0; i < x.rows(); ++i) {
    double a = static_cast<double>(y0(i, 0));
    double b = static_cast<double>(y1(i, 0));
    if (meta_.binary_outcome) {
      a = 1.0 / (1.0 + std::exp(-a));
      b = 1.0 / (1.0 + std::exp(-b));
    } else {
      a = a * meta_.y_std + meta_.y_mean;
      b = b * meta_.y_std + meta_.y_mean;
    }
    out(i, 0) = a;
    out(i, 1) = b;
  }
  return out;
}

Matrix ServingModel::ScoreOutcomes(const Matrix& x) const {
  if (precision_ == Precision::kF32) return ScoreOutcomesF32(x);
  SBRL_CHECK_EQ(x.cols(), meta_.input_dim)
      << "request dimension does not match the exported model";
  // Pin the exported ISA choice exactly like PredictPotentialOutcomes
  // pins the estimator's, so both paths dispatch the same kernels.
  ScopedThreadIsa isa_scope(meta_.isa);
  const Matrix rep = Representation(x);
  const Matrix h0 = RunStack(body0_, rep);
  const Matrix h1 = RunStack(body1_, rep);
  const Matrix y0 =
      ops::AffineActValue(h0, out0_.w, out0_.b, ops::ActKind::kIdentity);
  const Matrix y1 =
      ops::AffineActValue(h1, out1_.w, out1_.b, ops::ActKind::kIdentity);

  Matrix out(x.rows(), 2);
  for (int64_t i = 0; i < x.rows(); ++i) {
    double a = y0(i, 0);
    double b = y1(i, 0);
    if (meta_.binary_outcome) {
      // The estimator's literal sigmoid (not StableSigmoid): serving
      // must reproduce Predict bit for bit.
      a = 1.0 / (1.0 + std::exp(-a));
      b = 1.0 / (1.0 + std::exp(-b));
    } else {
      a = a * meta_.y_std + meta_.y_mean;
      b = b * meta_.y_std + meta_.y_mean;
    }
    out(i, 0) = a;
    out(i, 1) = b;
  }
  return out;
}

ServingModel::BatchScore ServingModel::Score(const Matrix& x) const {
  return Score(x, ScoreOptions());
}

std::vector<ServingModel::RowScore> ServingModel::ScoreRows(
    const Matrix& x) const {
  return ScoreRows(x, ScoreOptions());
}

ServingModel::BatchScore ServingModel::Score(
    const Matrix& x, const ScoreOptions& options) const {
  BatchScore score;
  score.outcomes = ScoreOutcomes(x);
  score.ite.reserve(static_cast<size_t>(x.rows()));
  for (int64_t i = 0; i < x.rows(); ++i) {
    score.ite.push_back(score.outcomes(i, 1) - score.outcomes(i, 0));
  }
  if (options.ood && detector_.has_value()) {
    score.ood_level = detector_->LevelOf(x);
    score.ood_flagged = score.ood_level >= options.ood_threshold;
  }
  return score;
}

std::vector<ServingModel::RowScore> ServingModel::ScoreRows(
    const Matrix& x, const ScoreOptions& options) const {
  const Matrix outcomes = ScoreOutcomes(x);
  const bool gate = options.ood && detector_.has_value();
  std::vector<RowScore> rows(static_cast<size_t>(x.rows()));
  Matrix row(1, x.cols());
  for (int64_t i = 0; i < x.rows(); ++i) {
    RowScore& r = rows[static_cast<size_t>(i)];
    r.y0 = outcomes(i, 0);
    r.y1 = outcomes(i, 1);
    r.ite = r.y1 - r.y0;
    if (gate) {
      for (int64_t c = 0; c < x.cols(); ++c) row(0, c) = x(i, c);
      r.ood_level = RowOodLevel(row);
      r.ood_flagged = r.ood_level >= options.ood_threshold;
    }
  }
  return rows;
}

double ServingModel::RowOodLevel(const Matrix& row) const {
  SBRL_CHECK(detector_.has_value()) << "model carries no OOD detector";
  SBRL_CHECK_EQ(row.rows(), 1);
  const double distance = detector_->DistanceTo(row);
  const double excess = std::max(0.0, distance - row_null_q95_);
  return 1.0 - std::exp(-excess / row_null_scale_);
}

double ServingModel::OodLevelOf(const Matrix& x) const {
  SBRL_CHECK(detector_.has_value()) << "model carries no OOD detector";
  return detector_->LevelOf(x);
}

}  // namespace serve
}  // namespace sbrl

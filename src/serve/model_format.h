#ifndef SBRL_SERVE_MODEL_FORMAT_H_
#define SBRL_SERVE_MODEL_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/config.h"
#include "core/estimator.h"
#include "core/ood_detector.h"
#include "tensor/matrix.h"
#include "tensor/matrix_f32.h"

namespace sbrl {
namespace serve {

/// Everything the scorer needs to know about a fitted estimator beyond
/// its raw tensors: which architecture to rebuild, how to post-process
/// head outputs, and which ISA the training run was pinned to.
struct ServingMeta {
  /// Backbone architecture the weights belong to.
  BackboneKind backbone = BackboneKind::kTarnet;
  /// Training framework (recorded for provenance; scoring is
  /// framework-independent once the weights are fixed).
  FrameworkKind framework = FrameworkKind::kVanilla;
  /// MethodName(backbone, framework) at export time.
  std::string method_name;
  /// Covariate dimension the network was built for.
  int64_t input_dim = 0;
  /// True: head outputs are logits, scored through a sigmoid. False:
  /// outputs are standardized values, de-standardized with
  /// y_mean/y_std.
  bool binary_outcome = true;
  /// Training-set outcome mean (continuous outcomes only).
  double y_mean = 0.0;
  /// Training-set outcome stddev (continuous outcomes only).
  double y_std = 1.0;
  /// Network architecture the weight names are resolved against.
  NetworkConfig network;
  /// ISA choice the estimator predicts under; the scorer pins the same
  /// choice so serving forwards are bitwise identical to Predict.
  IsaChoice isa = IsaChoice::kAuto;
  /// BatchNorm epsilon used by the inference normalization.
  double bn_eps = 1e-5;
};

/// One named tensor of the exported model (a trainable parameter or a
/// BatchNorm running statistic), keyed by the module naming scheme
/// ("rep.l0.W", "heads.h1.bn2.running_var", ...).
struct NamedMatrix {
  /// Unique module-scoped tensor name.
  std::string name;
  /// The tensor value.
  Matrix value;
};

/// f32 counterpart of NamedMatrix, used by the optional f32 weights
/// section (see ServingModelData::weights_f32).
struct NamedMatrixF32 {
  /// Unique module-scoped tensor name.
  std::string name;
  /// The tensor value in f32 storage.
  MatrixF32 value;
};

/// In-memory image of one serving model file: the decoded sections of
/// the "SBRLMODL" format, still architecture-agnostic (ServingModel
/// resolves names against the meta's network config).
struct ServingModelData {
  /// Decoded meta section.
  ServingMeta meta;
  /// Trainable parameters in collection order.
  std::vector<NamedMatrix> weights;
  /// BatchNorm running statistics in collection order.
  std::vector<NamedMatrix> state;
  /// True when a fitted OOD detector rode along in the file.
  bool has_ood = false;
  /// The exported detector state (meaningful only when has_ood).
  OodLevelDetector::State ood;
  /// True when the optional f32 weights section was exported/loaded.
  /// The f64 weights stay the source of truth; the f32 copies exist so
  /// the f32 serving tier scores the exact narrowed tensors that were
  /// written, independent of the loader's own narrowing.
  bool has_f32 = false;
  /// Trainable parameters narrowed to f32, in collection order
  /// (meaningful only when has_f32).
  std::vector<NamedMatrixF32> weights_f32;
};

/// The on-disk format version SaveServingModel writes. Bump on any
/// layout change; LoadServingModel rejects other versions with
/// FailedPrecondition (no silent cross-version reinterpretation).
/// v2: adds the optional f32 weights section (tag 5) for the f32
/// serving tier.
constexpr uint32_t kServingFormatVersion = 2;

/// Serializes `data` to `path` atomically via the shared sectioned
/// codec (common/serial.h): magic "SBRLMODL", u32 version, CRC32-
/// trailed sections, tmp+rename commit. Returns Internal on I/O
/// failure (fault site "serve/write" injects one).
Status SaveServingModel(const ServingModelData& data,
                        const std::string& path);

/// Reads and validates a model written by SaveServingModel. Returns
/// NotFound when `path` does not exist, InvalidArgument when it is not
/// a serving model (bad magic), FailedPrecondition on a format version
/// mismatch, and Internal on truncation, a CRC mismatch, an unknown
/// section tag, or missing required sections (fault site "serve/read"
/// injects a failure).
StatusOr<ServingModelData> LoadServingModel(const std::string& path);

/// Captures a fitted estimator (and optionally a fitted OOD detector)
/// as a ServingModelData: parameter values via Backbone::CollectParams,
/// BatchNorm running statistics via CollectStateMatrices, and the
/// method/config/outcome metadata scoring needs. When `include_f32` is
/// true the weights are additionally narrowed into the optional f32
/// section (see ServingModelData::weights_f32). Returns
/// FailedPrecondition when `estimator` has not been fitted.
StatusOr<ServingModelData> ExportServingData(
    HteEstimator& estimator, const OodLevelDetector* ood_detector,
    bool include_f32 = false);

/// ExportServingData + SaveServingModel in one step. `include_f32`
/// adds the optional f32 weights section to the file.
Status ExportServingModel(HteEstimator& estimator,
                          const OodLevelDetector* ood_detector,
                          const std::string& path, bool include_f32 = false);

}  // namespace serve
}  // namespace sbrl

#endif  // SBRL_SERVE_MODEL_FORMAT_H_

#include "serve/micro_batcher.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/env.h"

namespace sbrl {
namespace serve {

namespace {

// Knob resolution: explicit option > SBRL_SERVE_* env > default, with
// the shared ParseEnvInt64 rejection semantics for the env leg.
int64_t ResolveKnob(int64_t option, const char* env_name, int64_t min_value,
                    int64_t fallback) {
  if (option >= min_value) return option;
  return ParseEnvInt64(env_name, min_value, fallback);
}

}  // namespace

MicroBatcher::MicroBatcher(const ServingModel* model, const Options& options)
    : model_(model),
      max_batch_(ResolveKnob(options.max_batch, "SBRL_SERVE_MAX_BATCH",
                             /*min_value=*/1, /*fallback=*/32)),
      max_wait_us_(ResolveKnob(options.max_wait_us, "SBRL_SERVE_MAX_WAIT_US",
                               /*min_value=*/0, /*fallback=*/200)) {
  SBRL_CHECK(model_ != nullptr);
  score_options_.ood = options.ood;
  score_options_.ood_threshold = options.ood_threshold;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

MicroBatcher::MicroBatcher(const ServingModel* model)
    : MicroBatcher(model, Options()) {}

MicroBatcher::~MicroBatcher() { Shutdown(); }

ServingModel::RowScore MicroBatcher::ScoreRow(const std::vector<double>& x) {
  SBRL_CHECK_EQ(static_cast<int64_t>(x.size()), model_->input_dim());
  std::future<ServingModel::RowScore> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SBRL_CHECK(!stop_) << "ScoreRow after Shutdown";
    queue_.emplace_back();
    queue_.back().x = x;
    future = queue_.back().promise.get_future();
  }
  cv_.notify_one();
  return future.get();
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !dispatcher_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void MicroBatcher::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // Linger for a fuller batch, but never once shutdown began — the
    // drain should be prompt — and never past the wait budget.
    if (!stop_ && max_wait_us_ > 0 &&
        static_cast<int64_t>(queue_.size()) < max_batch_) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(max_wait_us_);
      cv_.wait_until(lock, deadline, [this] {
        return stop_ || static_cast<int64_t>(queue_.size()) >= max_batch_;
      });
    }
    const int64_t take = std::min<int64_t>(
        max_batch_, static_cast<int64_t>(queue_.size()));
    std::vector<Pending> batch;
    batch.reserve(static_cast<size_t>(take));
    for (int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();

    Matrix x(take, model_->input_dim());
    for (int64_t r = 0; r < take; ++r) {
      for (int64_t c = 0; c < model_->input_dim(); ++c) {
        x(r, c) = batch[static_cast<size_t>(r)].x[static_cast<size_t>(c)];
      }
    }
    std::vector<ServingModel::RowScore> scores =
        model_->ScoreRows(x, score_options_);
    for (int64_t r = 0; r < take; ++r) {
      batch[static_cast<size_t>(r)].promise.set_value(
          scores[static_cast<size_t>(r)]);
    }
    batches_dispatched_.fetch_add(1);
    rows_scored_.fetch_add(take);

    lock.lock();
  }
}

}  // namespace serve
}  // namespace sbrl

#ifndef SBRL_COMMON_TIMER_H_
#define SBRL_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sbrl {

/// Monotonic wall-clock stopwatch used by the training-time benchmarks
/// (paper Table VI) and the trainer's progress reporting.
class Timer {
 public:
  /// Starts timing at construction.
  Timer() { Restart(); }

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sbrl

#endif  // SBRL_COMMON_TIMER_H_

#include "common/env.h"

#include <charconv>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace sbrl {

StatusOr<int64_t> ParseInt64(const std::string& text) {
  const std::string stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return Status::InvalidArgument("empty integer: '" + text + "'");
  }
  const char* begin = stripped.c_str();
  const char* end = begin + stripped.size();
  // std::from_chars takes a leading '-' but not '+'; strtol-era knobs
  // accepted "+4", so keep that working.
  if (*begin == '+') ++begin;
  int64_t value = 0;
  const std::from_chars_result result = std::from_chars(begin, end, value);
  if (result.ec == std::errc::result_out_of_range) {
    return Status::OutOfRange("integer out of int64 range: '" + text + "'");
  }
  if (result.ec != std::errc() || result.ptr != end) {
    return Status::InvalidArgument("bad integer: '" + text + "'");
  }
  return value;
}

int64_t ParseEnvInt64(const char* name, int64_t min_value, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  StatusOr<int64_t> parsed = ParseInt64(env);
  if (!parsed.ok()) {
    SBRL_LOG(Warning) << name << "='" << env
                      << "' ignored (" << parsed.status().ToString()
                      << "); using " << fallback;
    return fallback;
  }
  if (*parsed < min_value) {
    SBRL_LOG(Warning) << name << "=" << *parsed << " is below the minimum "
                      << min_value << "; using " << fallback;
    return fallback;
  }
  return *parsed;
}

}  // namespace sbrl

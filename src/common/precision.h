#ifndef SBRL_COMMON_PRECISION_H_
#define SBRL_COMMON_PRECISION_H_

#include <string>

namespace sbrl {

/// Numeric storage tier of a compute path. Follows the repo's
/// mode-knob pattern (CosineMode / BatchedHsicMode / NetStepMode): a
/// reference tier that every contract is stated against, plus a cheap
/// tier that is opt-in per path and tolerance-bounded against the
/// reference.
///
/// The tier governs STORAGE width only. Paths that run under kF32
/// still accumulate long reductions (column moments, HSIC cross
/// products, matmul dot chains where the error budget demands it) in
/// double — see ARCHITECTURE.md "Precision tiers" for the per-path
/// budget table. Training always runs kF64: the bitwise
/// cross-ISA/cross-thread training contract is stated on doubles and
/// is not renegotiated by this knob.
enum class Precision {
  kF64,  ///< double storage everywhere — reference tier, the default.
  kF32,  ///< float storage on eligible serving / streaming-stats paths.
};

/// "f64" / "f32" — used in logs, bench JSON lane names, and knob
/// round-tripping.
const char* PrecisionName(Precision p);

/// Parses "f64" / "f32" (exact match). Returns false on anything else
/// and leaves `*out` untouched.
bool ParsePrecision(const std::string& text, Precision* out);

/// Resolves the effective tier: SBRL_PRECISION env var when set to a
/// valid name (takes precedence, same override pattern as SBRL_ISA /
/// SBRL_RECOVERY), otherwise `fallback`. An invalid env value is
/// ignored, not fatal — the reference tier is always a safe answer.
Precision ResolvePrecision(Precision fallback);

}  // namespace sbrl

#endif  // SBRL_COMMON_PRECISION_H_

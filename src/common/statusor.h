#ifndef SBRL_COMMON_STATUSOR_H_
#define SBRL_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace sbrl {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. The accessor `value()` CHECK-fails when called on an
/// error state; call sites must test `ok()` first (or use ValueOrDie in
/// tests, where aborting is the desired behaviour).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK state).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from an error Status. CHECK-fails if `status`
  /// is OK, because an OK StatusOr must carry a value.
  StatusOr(Status status) : status_(std::move(status)) {
    SBRL_CHECK(!status_.ok()) << "OK status requires a value";
  }

  /// True when a value is present.
  bool ok() const { return status_.ok(); }
  /// The carried status (OK exactly when a value is present).
  const Status& status() const { return status_; }

  /// Returns the contained value; CHECK-fails on error state.
  const T& value() const& {
    SBRL_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  /// See the const& overload.
  T& value() & {
    SBRL_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  /// Moves the contained value out; CHECK-fails on error state.
  T&& value() && {
    SBRL_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  /// Pointer-style access to the value; CHECK-fails on error state.
  const T& operator*() const& { return value(); }
  /// See the const& overload.
  T& operator*() & { return value(); }
  /// Pointer-style access to the value; CHECK-fails on error state.
  const T* operator->() const { return &value(); }
  /// See the const overload.
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr<T>), propagating its error Status out of
/// the current function; on success assigns the value into `lhs`.
#define SBRL_ASSIGN_OR_RETURN(lhs, rexpr)              \
  SBRL_ASSIGN_OR_RETURN_IMPL_(                         \
      SBRL_STATUS_MACRO_CONCAT_(_statusor, __LINE__), lhs, rexpr)

#define SBRL_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                \
  if (!statusor.ok()) return statusor.status();           \
  lhs = std::move(statusor).value()

#define SBRL_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define SBRL_STATUS_MACRO_CONCAT_(x, y) SBRL_STATUS_MACRO_CONCAT_INNER_(x, y)

}  // namespace sbrl

#endif  // SBRL_COMMON_STATUSOR_H_

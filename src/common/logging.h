#ifndef SBRL_COMMON_LOGGING_H_
#define SBRL_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace sbrl {

/// Severity levels for the lightweight logger. kFatal aborts after
/// emitting the message.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
/// Current global minimum level (see SetLogLevel).
LogLevel GetLogLevel();

namespace internal {

/// One log statement. Buffers the message and flushes it with a severity
/// tag on destruction so a statement is emitted atomically.
class LogMessage {
 public:
  /// Opens a statement at `level`, tagged with its source location.
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  /// Streams a value into the buffered message.
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SBRL_LOG(level)                                          \
  ::sbrl::internal::LogMessage(::sbrl::LogLevel::k##level,       \
                               __FILE__, __LINE__)

}  // namespace sbrl

#endif  // SBRL_COMMON_LOGGING_H_

#include "common/simd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/cpu.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace sbrl {

namespace simd_detail {
// Per-ISA serial sweep kernels, each defined in its own fast-math
// translation unit (simd_vec.cc and the -march variants; see
// CMakeLists.txt). The baseline pair vectorizes to the SSE2 libmvec
// cosine (_ZGVbN2v_cos); the AVX2/AVX-512 pairs are the same source
// compiled for x86-64-v3/v4, so the vectorizer emits the 4-lane
// (_ZGVdN4v_cos) / 8-lane (_ZGVeN8v_cos) variants. All libmvec
// variants carry the same 4-ulp accuracy bound, but their bit patterns
// differ — which ISA ran is part of a result's provenance, which is
// why the resolved level is pinned per process (common/cpu.h).
void VecCosSerial(const double* x, double* y, int64_t n);
void ScaledCosSerialInPlace(double* x, int64_t n, double scale);
void ScaledCosSerialInPlaceF32(float* x, int64_t n, float scale);
void EluSerialInPlaceF32(float* x, int64_t n);
#if defined(SBRL_HAVE_ISA_AVX2)
void VecCosSerialAvx2(const double* x, double* y, int64_t n);
void ScaledCosSerialInPlaceAvx2(double* x, int64_t n, double scale);
void ScaledCosSerialInPlaceF32Avx2(float* x, int64_t n, float scale);
void EluSerialInPlaceF32Avx2(float* x, int64_t n);
#endif
#if defined(SBRL_HAVE_ISA_AVX512)
void VecCosSerialAvx512(const double* x, double* y, int64_t n);
void ScaledCosSerialInPlaceAvx512(double* x, int64_t n, double scale);
void ScaledCosSerialInPlaceF32Avx512(float* x, int64_t n, float scale);
void EluSerialInPlaceF32Avx512(float* x, int64_t n);
#endif
}  // namespace simd_detail

namespace {

/// Serial sweep kernels of one ISA level (the vectorized CosineMode
/// only; kExact always runs scalar std::cos regardless of level).
struct CosKernels {
  void (*vec_cos)(const double* x, double* y, int64_t n);
  void (*scaled_cos)(double* x, int64_t n, double scale);
  void (*scaled_cos_f32)(float* x, int64_t n, float scale);
  void (*elu_f32)(float* x, int64_t n);
};

/// Vectorized-mode kernels of the active ISA level; levels not
/// compiled in alias the baseline pair (unreachable in practice —
/// ActiveIsa never resolves above MaxSupportedIsa).
CosKernels ActiveCosKernels() {
  switch (ActiveIsa()) {
#if defined(SBRL_HAVE_ISA_AVX2)
    case Isa::kAvx2:
      return {simd_detail::VecCosSerialAvx2,
              simd_detail::ScaledCosSerialInPlaceAvx2,
              simd_detail::ScaledCosSerialInPlaceF32Avx2,
              simd_detail::EluSerialInPlaceF32Avx2};
#endif
#if defined(SBRL_HAVE_ISA_AVX512)
    case Isa::kAvx512:
      return {simd_detail::VecCosSerialAvx512,
              simd_detail::ScaledCosSerialInPlaceAvx512,
              simd_detail::ScaledCosSerialInPlaceF32Avx512,
              simd_detail::EluSerialInPlaceF32Avx512};
#endif
    default:
      return {simd_detail::VecCosSerial,
              simd_detail::ScaledCosSerialInPlace,
              simd_detail::ScaledCosSerialInPlaceF32,
              simd_detail::EluSerialInPlaceF32};
  }
}

/// Exact reference: plain scalar std::cos in a normally compiled TU, so
/// the compiler cannot substitute the vector variant.
void ScaledCosExactSerialInPlace(double* x, int64_t n, double scale) {
  for (int64_t i = 0; i < n; ++i) x[i] = scale * std::cos(x[i]);
}

/// f32 exact reference (scalar float std::cos, normally compiled).
void ScaledCosExactSerialF32InPlace(float* x, int64_t n, float scale) {
  for (int64_t i = 0; i < n; ++i) x[i] = scale * std::cos(x[i]);
}

/// Per-thread cosine-sweep wall-clock total, in nanoseconds. Thread-
/// local so concurrent runs (which each execute on one thread) never
/// see each other's sweep time in their deltas.
thread_local int64_t t_cos_sweep_nanos = 0;

/// Runs serial_fn(lo, hi) over [0, n) with every chunk boundary on a
/// multiple of kCosSweepBlock. ParallelFor's chunk size depends on the
/// worker count, but because every chunk START here is block-aligned
/// (and SIMD kernels restart at each chunk start), an element's lane
/// position — and therefore its bit pattern — never depends on how the
/// range was split. Grain is one block = the shared ~64K-flop cutoff
/// at kCosFlopWeight per element, so sub-block sweeps stay inline.
template <typename SerialFn>
void BlockAlignedSweep(int64_t n, const SerialFn& serial_fn) {
  Timer timer;
  const int64_t nblocks = (n + kCosSweepBlock - 1) / kCosSweepBlock;
  // Grain in blocks, derived from the shared runtime cutoff (one block
  // at the default cutoff). Chunk STARTS stay block-aligned whatever
  // the grain, so the cutoff knob cannot change any bit either.
  const int64_t grain = std::max<int64_t>(
      1, SerialCutoff() / (kCosSweepBlock * kCosFlopWeight));
  ParallelFor(0, nblocks, grain, [&](int64_t lo, int64_t hi) {
    serial_fn(lo * kCosSweepBlock, std::min(hi * kCosSweepBlock, n));
  });
  t_cos_sweep_nanos += static_cast<int64_t>(timer.ElapsedSeconds() * 1e9);
}

}  // namespace

const char* CosineModeName(CosineMode mode) {
  switch (mode) {
    case CosineMode::kVectorized: return "vectorized";
    case CosineMode::kExact: return "exact";
  }
  return "?";
}

void VecCos(const double* x, double* y, int64_t n) {
  SBRL_CHECK_GE(n, 0);
  const CosKernels kernels = ActiveCosKernels();
  BlockAlignedSweep(n, [x, y, kernels](int64_t lo, int64_t hi) {
    kernels.vec_cos(x + lo, y + lo, hi - lo);
  });
}

void ScaledCosInPlace(double* x, int64_t n, double scale, CosineMode mode) {
  SBRL_CHECK_GE(n, 0);
  if (mode == CosineMode::kVectorized) {
    const CosKernels kernels = ActiveCosKernels();
    BlockAlignedSweep(n, [x, scale, kernels](int64_t lo, int64_t hi) {
      kernels.scaled_cos(x + lo, hi - lo, scale);
    });
  } else {
    BlockAlignedSweep(n, [x, scale](int64_t lo, int64_t hi) {
      ScaledCosExactSerialInPlace(x + lo, hi - lo, scale);
    });
  }
}

void ScaledCosRowsInPlace(double* x, int64_t rows, int64_t cols,
                          int64_t stride, double scale, CosineMode mode) {
  SBRL_CHECK_GE(rows, 0);
  SBRL_CHECK_GE(cols, 0);
  SBRL_CHECK_GE(stride, cols);
  if (stride == cols) {  // the block is contiguous: one flat sweep
    ScaledCosInPlace(x, rows * cols, scale, mode);
    return;
  }
  // Strided block: each row is its own contiguous run. SIMD kernels
  // restart at every row, so results are identical to sweeping each
  // row alone regardless of how rows are chunked across workers.
  Timer timer;
  const int64_t row_work = cols * kCosFlopWeight;
  const int64_t grain =
      std::max<int64_t>(1, SerialCutoff() /
                               std::max<int64_t>(1, row_work));
  const bool vectorized = mode == CosineMode::kVectorized;
  const CosKernels kernels = ActiveCosKernels();
  ParallelFor(0, rows, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      double* row = x + r * stride;
      if (vectorized) {
        kernels.scaled_cos(row, cols, scale);
      } else {
        ScaledCosExactSerialInPlace(row, cols, scale);
      }
    }
  });
  t_cos_sweep_nanos += static_cast<int64_t>(timer.ElapsedSeconds() * 1e9);
}

void ScaledCosRowsF32InPlace(float* x, int64_t rows, int64_t cols,
                             int64_t stride, float scale, CosineMode mode) {
  SBRL_CHECK_GE(rows, 0);
  SBRL_CHECK_GE(cols, 0);
  SBRL_CHECK_GE(stride, cols);
  Timer timer;
  const bool vectorized = mode == CosineMode::kVectorized;
  const CosKernels kernels = ActiveCosKernels();
  if (stride == cols) {  // contiguous: one flat block-aligned sweep
    const int64_t n = rows * cols;
    const int64_t nblocks = (n + kCosSweepBlock - 1) / kCosSweepBlock;
    const int64_t grain = std::max<int64_t>(
        1, SerialCutoff() / (kCosSweepBlock * kCosFlopWeight));
    ParallelFor(0, nblocks, grain, [&](int64_t lo, int64_t hi) {
      const int64_t b0 = lo * kCosSweepBlock;
      const int64_t b1 = std::min(hi * kCosSweepBlock, n);
      if (vectorized) {
        kernels.scaled_cos_f32(x + b0, b1 - b0, scale);
      } else {
        ScaledCosExactSerialF32InPlace(x + b0, b1 - b0, scale);
      }
    });
  } else {
    // Strided block: each row is its own contiguous run (same
    // row-restart argument as ScaledCosRowsInPlace).
    const int64_t row_work = cols * kCosFlopWeight;
    const int64_t grain = std::max<int64_t>(
        1, SerialCutoff() / std::max<int64_t>(1, row_work));
    ParallelFor(0, rows, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        float* row = x + r * stride;
        if (vectorized) {
          kernels.scaled_cos_f32(row, cols, scale);
        } else {
          ScaledCosExactSerialF32InPlace(row, cols, scale);
        }
      }
    });
  }
  t_cos_sweep_nanos += static_cast<int64_t>(timer.ElapsedSeconds() * 1e9);
}

void EluF32InPlace(float* x, int64_t n) {
  SBRL_CHECK_GE(n, 0);
  // Same block-aligned fan-out as the cosine sweeps (and the same flop
  // weight: one libm-class exponential per element), so an element's
  // SIMD-lane position never depends on the worker count. Unlike the
  // cosine sweeps this one does not accrue to the cosine-seconds
  // counter — it belongs to the serving forward, not the RFF epilogue.
  const CosKernels kernels = ActiveCosKernels();
  const int64_t nblocks = (n + kCosSweepBlock - 1) / kCosSweepBlock;
  const int64_t grain = std::max<int64_t>(
      1, SerialCutoff() / (kCosSweepBlock * kCosFlopWeight));
  ParallelFor(0, nblocks, grain, [&](int64_t lo, int64_t hi) {
    const int64_t b0 = lo * kCosSweepBlock;
    const int64_t b1 = std::min(hi * kCosSweepBlock, n);
    kernels.elu_f32(x + b0, b1 - b0);
  });
}

double CosSweepSecondsThisThread() {
  return static_cast<double>(t_cos_sweep_nanos) * 1e-9;
}

}  // namespace sbrl

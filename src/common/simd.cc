#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace sbrl {

namespace simd_detail {
// Defined in simd_vec.cc, the only fast-math translation unit.
void VecCosSerial(const double* x, double* y, int64_t n);
void ScaledCosSerialInPlace(double* x, int64_t n, double scale);
}  // namespace simd_detail

namespace {

/// Exact reference: plain scalar std::cos in a normally compiled TU, so
/// the compiler cannot substitute the vector variant.
void ScaledCosExactSerialInPlace(double* x, int64_t n, double scale) {
  for (int64_t i = 0; i < n; ++i) x[i] = scale * std::cos(x[i]);
}

/// Process-wide cosine-sweep wall-clock total, in nanoseconds.
std::atomic<int64_t> g_cos_sweep_nanos{0};

/// Runs serial_fn(lo, hi) over [0, n) with every chunk boundary on a
/// multiple of kCosSweepBlock. ParallelFor's chunk size depends on the
/// worker count, but because every chunk START here is block-aligned
/// (and SIMD kernels restart at each chunk start), an element's lane
/// position — and therefore its bit pattern — never depends on how the
/// range was split. Grain is one block = the shared ~64K-flop cutoff
/// at kCosFlopWeight per element, so sub-block sweeps stay inline.
template <typename SerialFn>
void BlockAlignedSweep(int64_t n, const SerialFn& serial_fn) {
  Timer timer;
  const int64_t nblocks = (n + kCosSweepBlock - 1) / kCosSweepBlock;
  ParallelFor(0, nblocks, /*min_grain=*/1, [&](int64_t lo, int64_t hi) {
    serial_fn(lo * kCosSweepBlock, std::min(hi * kCosSweepBlock, n));
  });
  g_cos_sweep_nanos.fetch_add(
      static_cast<int64_t>(timer.ElapsedSeconds() * 1e9),
      std::memory_order_relaxed);
}

}  // namespace

const char* CosineModeName(CosineMode mode) {
  switch (mode) {
    case CosineMode::kVectorized: return "vectorized";
    case CosineMode::kExact: return "exact";
  }
  return "?";
}

void VecCos(const double* x, double* y, int64_t n) {
  SBRL_CHECK_GE(n, 0);
  BlockAlignedSweep(n, [x, y](int64_t lo, int64_t hi) {
    simd_detail::VecCosSerial(x + lo, y + lo, hi - lo);
  });
}

void ScaledCosInPlace(double* x, int64_t n, double scale, CosineMode mode) {
  SBRL_CHECK_GE(n, 0);
  if (mode == CosineMode::kVectorized) {
    BlockAlignedSweep(n, [x, scale](int64_t lo, int64_t hi) {
      simd_detail::ScaledCosSerialInPlace(x + lo, hi - lo, scale);
    });
  } else {
    BlockAlignedSweep(n, [x, scale](int64_t lo, int64_t hi) {
      ScaledCosExactSerialInPlace(x + lo, hi - lo, scale);
    });
  }
}

void ScaledCosRowsInPlace(double* x, int64_t rows, int64_t cols,
                          int64_t stride, double scale, CosineMode mode) {
  SBRL_CHECK_GE(rows, 0);
  SBRL_CHECK_GE(cols, 0);
  SBRL_CHECK_GE(stride, cols);
  if (stride == cols) {  // the block is contiguous: one flat sweep
    ScaledCosInPlace(x, rows * cols, scale, mode);
    return;
  }
  // Strided block: each row is its own contiguous run. SIMD kernels
  // restart at every row, so results are identical to sweeping each
  // row alone regardless of how rows are chunked across workers.
  Timer timer;
  const int64_t row_work = cols * kCosFlopWeight;
  const int64_t grain =
      std::max<int64_t>(1, kParallelSerialCutoff /
                               std::max<int64_t>(1, row_work));
  const bool vectorized = mode == CosineMode::kVectorized;
  ParallelFor(0, rows, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      double* row = x + r * stride;
      if (vectorized) {
        simd_detail::ScaledCosSerialInPlace(row, cols, scale);
      } else {
        ScaledCosExactSerialInPlace(row, cols, scale);
      }
    }
  });
  g_cos_sweep_nanos.fetch_add(
      static_cast<int64_t>(timer.ElapsedSeconds() * 1e9),
      std::memory_order_relaxed);
}

double CosSweepSecondsTotal() {
  return static_cast<double>(
             g_cos_sweep_nanos.load(std::memory_order_relaxed)) *
         1e-9;
}

}  // namespace sbrl

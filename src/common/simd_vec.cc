// Vectorized cosine kernels. This translation unit — and ONLY this one
// — is compiled with -ffast-math (see CMakeLists.txt): under that flag
// glibc's math.h attaches the OpenMP-SIMD attribute to cos(), and the
// auto-vectorizer lowers the loops below to glibc libmvec calls
// (_ZGVbN2v_cos and friends), which are documented accurate to 4 ulp.
// Nothing else may live here: fast-math must not touch the angle
// accumulation, the exact reference path, or any reduction whose
// summation order the determinism contract pins down. The loops contain
// one multiply per element, so the flag cannot reassociate anything —
// its only effect is unlocking the SIMD cosine.

#include <cmath>
#include <cstdint>

namespace sbrl {
namespace simd_detail {

void VecCosSerial(const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::cos(x[i]);
}

void ScaledCosSerialInPlace(double* x, int64_t n, double scale) {
  for (int64_t i = 0; i < n; ++i) x[i] = scale * std::cos(x[i]);
}

}  // namespace simd_detail
}  // namespace sbrl

// Vectorized cosine kernels. This translation unit — and ONLY this one
// — is compiled with -ffast-math (see CMakeLists.txt): under that flag
// glibc's math.h attaches the OpenMP-SIMD attribute to cos(), and the
// auto-vectorizer lowers the loops below to glibc libmvec calls
// (_ZGVbN2v_cos and friends), which are documented accurate to 4 ulp.
// Nothing else may live here: fast-math must not touch the angle
// accumulation, the exact reference path, or any reduction whose
// summation order the determinism contract pins down. The loops contain
// one multiply per element, so the flag cannot reassociate anything —
// its only effect is unlocking the SIMD cosine.

#include <cmath>
#include <cstdint>

namespace sbrl {
namespace simd_detail {

void VecCosSerial(const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::cos(x[i]);
}

void ScaledCosSerialInPlace(double* x, int64_t n, double scale) {
  for (int64_t i = 0; i < n; ++i) x[i] = scale * std::cos(x[i]);
}

// f32 twin for the f32 serving tier: cosf lowers to the 4-lane SSE
// libmvec variant (_ZGVbN4v_cosf) under the same flags, with the same
// 4-ulp bound stated on float spacing.
void ScaledCosSerialInPlaceF32(float* x, int64_t n, float scale) {
  for (int64_t i = 0; i < n; ++i) x[i] = scale * std::cos(x[i]);
}

// f32 ELU sweep for the tape-free serving kernels, written branchless
// (max(v,0) + expf(min(v,0)) - 1) so if-conversion leaves a plain
// vectorizable expf call that lowers to libmvec (_ZGVbN4v_expf here).
// libmvec has no expm1f, so the negative branch is exp(v) - 1: near
// zero that costs up to one ulp of 1 in absolute error (~1.2e-7) where
// expm1 would be exact — inside the f32 tier's rounding budget, which
// is why the f64 tier (bitwise expm1) stays the reference.
void EluSerialInPlaceF32(float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    const float neg = std::exp(v < 0.0f ? v : 0.0f) - 1.0f;
    const float pos = v > 0.0f ? v : 0.0f;
    x[i] = pos + neg;
  }
}

}  // namespace simd_detail
}  // namespace sbrl

#include "common/cpu.h"

#include <atomic>
#include <cstdlib>

#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define SBRL_CPU_X86 1
#endif

namespace sbrl {

namespace {

#ifdef SBRL_CPU_X86

/// XGETBV(0): the XCR0 register describing which register state the OS
/// saves across context switches. cpuid feature bits alone are not
/// enough — AVX is only usable when the OS restores ymm (XCR0 bits
/// 1|2), AVX-512 only when it also restores opmask/zmm (bits 5|6|7).
uint64_t ReadXcr0() {
  uint32_t eax = 0, edx = 0;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

CpuFeatures DetectImpl() {
  CpuFeatures f;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool cpu_avx = (ecx & (1u << 28)) != 0;
  const bool cpu_fma = (ecx & (1u << 12)) != 0;
  if (!osxsave) return f;  // OS saves no extended state: SSE2 only
  const uint64_t xcr0 = ReadXcr0();
  const bool ymm_enabled = (xcr0 & 0x6) == 0x6;          // XMM | YMM
  const bool zmm_enabled = (xcr0 & 0xe6) == 0xe6;        // + opmask/ZMM
  f.avx = cpu_avx && ymm_enabled;
  f.fma = cpu_fma && ymm_enabled;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = f.avx && (ebx & (1u << 5)) != 0;
    f.avx512f = zmm_enabled && (ebx & (1u << 16)) != 0;
    f.avx512dq = f.avx512f && (ebx & (1u << 17)) != 0;
    f.avx512bw = f.avx512f && (ebx & (1u << 30)) != 0;
    f.avx512vl = f.avx512f && (ebx & (1u << 31)) != 0;
  }
  return f;
}

#else  // !SBRL_CPU_X86

CpuFeatures DetectImpl() { return CpuFeatures{}; }

#endif

/// Widest level the per-ISA kernel translation units were compiled for.
/// SBRL_HAVE_ISA_* come from CMake, set only when the toolchain accepts
/// the corresponding -march flags.
constexpr Isa kMaxCompiledIsa =
#if defined(SBRL_HAVE_ISA_AVX512)
    Isa::kAvx512;
#elif defined(SBRL_HAVE_ISA_AVX2)
    Isa::kAvx2;
#else
    Isa::kBaseline;
#endif

/// Process-wide active ISA as an int; -1 before first resolution.
std::atomic<int> g_active_isa{-1};

/// Thread-scoped override installed by ScopedThreadIsa; -1 when no
/// scope is active on this thread (fall through to the global).
thread_local int t_thread_isa = -1;

/// Warns once per process about an unparseable SBRL_ISA value.
void WarnBadEnvOnce(const char* env) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    SBRL_LOG(Warning) << "ignoring unparseable SBRL_ISA value '" << env
                      << "' (expected auto|baseline|avx2|avx512)";
  }
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = DetectImpl();
  return features;
}

std::string CpuFeatureString() {
  const CpuFeatures& f = DetectCpuFeatures();
  std::string s;
  const auto add = [&s](bool have, const char* name) {
    if (!have) return;
    if (!s.empty()) s += ' ';
    s += name;
  };
  add(f.avx, "avx");
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.avx512f, "avx512f");
  add(f.avx512dq, "avx512dq");
  add(f.avx512bw, "avx512bw");
  add(f.avx512vl, "avx512vl");
  return s.empty() ? "none" : s;
}

std::string BuildFlagsString() {
  std::string s = "compiler=";
#if defined(__VERSION__)
  s += __VERSION__;
#else
  s += "unknown";
#endif
#if defined(SBRL_BUILD_FLAGS)
  s += " flags=";
  s += SBRL_BUILD_FLAGS;
#endif
  return s;
}

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kBaseline: return "baseline";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "?";
}

const char* IsaChoiceName(IsaChoice choice) {
  switch (choice) {
    case IsaChoice::kAuto: return "auto";
    case IsaChoice::kBaseline: return "baseline";
    case IsaChoice::kAvx2: return "avx2";
    case IsaChoice::kAvx512: return "avx512";
  }
  return "?";
}

bool ParseIsaChoice(const std::string& text, IsaChoice* out) {
  if (text == "auto") { *out = IsaChoice::kAuto; return true; }
  if (text == "baseline") { *out = IsaChoice::kBaseline; return true; }
  if (text == "avx2") { *out = IsaChoice::kAvx2; return true; }
  if (text == "avx512") { *out = IsaChoice::kAvx512; return true; }
  return false;
}

Isa MaxSupportedIsa() {
  const CpuFeatures& f = DetectCpuFeatures();
  Isa host = Isa::kBaseline;
  if (f.avx2 && f.fma) host = Isa::kAvx2;
  if (host == Isa::kAvx2 && f.avx512f && f.avx512dq && f.avx512bw &&
      f.avx512vl) {
    host = Isa::kAvx512;
  }
  return host < kMaxCompiledIsa ? host : kMaxCompiledIsa;
}

Isa ResolveIsa(IsaChoice config_choice, const char* env, Isa max_supported) {
  IsaChoice choice = config_choice;
  if (env != nullptr && *env != '\0') {
    IsaChoice parsed;
    if (ParseIsaChoice(env, &parsed)) {
      choice = parsed;  // the environment wins over the config
    } else {
      WarnBadEnvOnce(env);
    }
  }
  if (choice == IsaChoice::kAuto) return max_supported;
  const Isa requested = static_cast<Isa>(static_cast<int>(choice));
  return requested < max_supported ? requested : max_supported;
}

Isa ActiveIsa() {
  if (t_thread_isa >= 0) return static_cast<Isa>(t_thread_isa);
  const int cached = g_active_isa.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<Isa>(cached);
  return SetActiveIsa(IsaChoice::kAuto);
}

Isa SetActiveIsa(IsaChoice choice) {
  const Isa resolved =
      ResolveIsa(choice, std::getenv("SBRL_ISA"), MaxSupportedIsa());
  g_active_isa.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

ScopedThreadIsa::ScopedThreadIsa(IsaChoice choice)
    : saved_(t_thread_isa),
      resolved_(
          ResolveIsa(choice, std::getenv("SBRL_ISA"), MaxSupportedIsa())) {
  t_thread_isa = static_cast<int>(resolved_);
}

ScopedThreadIsa::ScopedThreadIsa(Isa isa)
    : saved_(t_thread_isa), resolved_(isa) {
  t_thread_isa = static_cast<int>(resolved_);
}

ScopedThreadIsa::~ScopedThreadIsa() { t_thread_isa = saved_; }

}  // namespace sbrl

#ifndef SBRL_COMMON_ALIGNED_H_
#define SBRL_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace sbrl {

/// Byte alignment of every Matrix / MatrixF32 backing allocation. 64
/// bytes is one full AVX-512 vector (8 doubles / 16 floats) AND one
/// x86 cache line, so a zmm load from data() + any multiple of the
/// vector width is an aligned access and a row of either element type
/// never straddles a line it did not have to. The dispatch kernels
/// still use unaligned load instructions (loadu is penalty-free on
/// aligned addresses since Nehalem) — alignment buys the memory
/// system, not the decoder.
inline constexpr size_t kTensorAlignment = 64;

/// Minimal C++17 allocator that over-aligns every allocation to
/// `kTensorAlignment`. Used as the allocator of the tensor backing
/// vectors so both pool-recycled and plain-constructed matrices get
/// aligned storage from the same code path. Stateless: all instances
/// compare equal, and rebinding across element types is allowed (the
/// vector implementation rebinds internally).
template <typename T>
class AlignedAllocator {
 public:
  /// Element type, per the Allocator named requirements.
  using value_type = T;

  AlignedAllocator() noexcept = default;
  /// Rebinding copy — stateless, so nothing is copied.
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  /// Allocates storage for `n` elements at kTensorAlignment.
  T* allocate(size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(kTensorAlignment)));
  }

  /// Releases storage obtained from allocate().
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(kTensorAlignment));
  }

  /// All instances are interchangeable.
  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  /// See operator==.
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// std::vector with kTensorAlignment-aligned storage — the backing
/// container of Matrix and MatrixF32, and the staging-buffer type the
/// streaming CSV loader hands through Matrix::FromFlat (the zero-copy
/// adoption seam requires the loader and the matrix to agree on the
/// allocator).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True when `p` meets the tensor alignment contract. Exposed for the
/// matrix_test alignment regression.
inline bool IsTensorAligned(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % kTensorAlignment == 0;
}

}  // namespace sbrl

#endif  // SBRL_COMMON_ALIGNED_H_

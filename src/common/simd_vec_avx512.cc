// AVX-512 variant of the vectorized cosine kernels: the same loops as
// simd_vec.cc, compiled with -ffast-math -march=x86-64-v4 (see
// CMakeLists.txt) so the auto-vectorizer lowers std::cos to the 8-lane
// libmvec variant (_ZGVeN8v_cos). Everything simd_vec.cc says about
// fast-math hygiene applies here unchanged. Selected at runtime by
// common/simd.cc when the active ISA resolves to avx512.

#if defined(SBRL_HAVE_ISA_AVX512) && defined(__AVX512F__)

#include <cmath>
#include <cstdint>

namespace sbrl {
namespace simd_detail {

void VecCosSerialAvx512(const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::cos(x[i]);
}

void ScaledCosSerialInPlaceAvx512(double* x, int64_t n, double scale) {
  for (int64_t i = 0; i < n; ++i) x[i] = scale * std::cos(x[i]);
}

// f32 twin: cosf lowers to the 16-lane variant (_ZGVeN16v_cosf).
void ScaledCosSerialInPlaceF32Avx512(float* x, int64_t n, float scale) {
  for (int64_t i = 0; i < n; ++i) x[i] = scale * std::cos(x[i]);
}

// f32 ELU sweep (see simd_vec.cc for the branchless form and the
// exp-vs-expm1 accuracy note); expf lowers to _ZGVeN16v_expf here.
void EluSerialInPlaceF32Avx512(float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    const float neg = std::exp(v < 0.0f ? v : 0.0f) - 1.0f;
    const float pos = v > 0.0f ? v : 0.0f;
    x[i] = pos + neg;
  }
}

}  // namespace simd_detail
}  // namespace sbrl

#endif  // SBRL_HAVE_ISA_AVX512 && __AVX512F__

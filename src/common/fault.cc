#include "common/fault.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/check.h"
#include "common/env.h"
#include "common/string_util.h"

namespace sbrl {

namespace fault_internal {

std::atomic<bool> g_armed{false};

namespace {

// One registry entry per fault site that has been armed or evaluated
// while armed. `hits` counts every FaultPoint evaluation of the site;
// the trigger compares the 0-based index of the current hit against
// `target`.
struct SiteEntry {
  bool armed = false;
  bool persistent = false;
  int64_t target = -1;
  int64_t hits = 0;
  int64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteEntry> sites;
};

// Function-local static: safe against static-initialization order, and
// never constructed in a run that neither arms nor inspects faults.
Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

bool ShouldFire(const char* site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  SiteEntry& entry = registry.sites[site];
  const int64_t index = entry.hits++;
  if (!entry.armed) return false;
  const bool fire =
      entry.persistent ? index >= entry.target : index == entry.target;
  if (fire) ++entry.fires;
  return fire;
}

}  // namespace fault_internal

void ArmFault(const std::string& site, int64_t hit, bool persistent) {
  SBRL_CHECK_GE(hit, 0);
  SBRL_CHECK(!site.empty());
  auto& registry = fault_internal::GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    fault_internal::SiteEntry& entry = registry.sites[site];
    entry = fault_internal::SiteEntry();
    entry.armed = true;
    entry.persistent = persistent;
    entry.target = hit;
  }
  fault_internal::g_armed.store(true, std::memory_order_relaxed);
}

Status ArmFaultsFromSpec(const std::string& spec) {
  for (const std::string& part : Split(spec, ',')) {
    const std::string entry = StripWhitespace(part);
    if (entry.empty()) continue;
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status::InvalidArgument("fault spec entry needs 'site:hit': '" +
                                     entry + "'");
    }
    const std::string site = entry.substr(0, colon);
    std::string hit_text = entry.substr(colon + 1);
    bool persistent = false;
    if (!hit_text.empty() && hit_text.back() == '+') {
      persistent = true;
      hit_text.pop_back();
    }
    const StatusOr<int64_t> hit = ParseInt64(hit_text);
    if (!hit.ok() || *hit < 0) {
      return Status::InvalidArgument(
          "fault spec hit must be a non-negative integer: '" + entry + "'");
    }
    ArmFault(site, *hit, persistent);
  }
  return Status::OK();
}

void DisarmFaults() {
  auto& registry = fault_internal::GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.sites.clear();
  }
  fault_internal::g_armed.store(false, std::memory_order_relaxed);
}

int64_t FaultHitCount(const std::string& site) {
  auto& registry = fault_internal::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

int64_t FaultFireCount(const std::string& site) {
  auto& registry = fault_internal::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.fires;
}

namespace {

// Arms the SBRL_FAULT environment spec at process start (this TU is
// linked in whenever any fault site exists, because FaultPoint
// references g_armed). CHECK-fails on a malformed spec: a typo'd fault
// experiment must not silently run fault-free.
const bool g_env_spec_armed = [] {
  const char* env = std::getenv("SBRL_FAULT");
  if (env != nullptr && *env != '\0') {
    const Status status = ArmFaultsFromSpec(env);
    SBRL_CHECK(status.ok()) << "bad SBRL_FAULT: " << status.ToString();
  }
  return true;
}();

}  // namespace

}  // namespace sbrl

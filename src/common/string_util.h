#ifndef SBRL_COMMON_STRING_UTIL_H_
#define SBRL_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace sbrl {

/// Splits `text` on `sep`, keeping empty fields. "a,,b" -> {"a", "", "b"}.
std::vector<std::string> Split(const std::string& text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string StripWhitespace(const std::string& text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Renders "mean ±std" with three decimals, the layout the paper's tables
/// use for every metric cell.
std::string FormatMeanStd(double mean, double std_dev);

/// True if `text` starts with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

}  // namespace sbrl

#endif  // SBRL_COMMON_STRING_UTIL_H_

#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace sbrl {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string StripWhitespace(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

std::string FormatMeanStd(double mean, double std_dev) {
  return FormatDouble(mean, 3) + " ±" + FormatDouble(std_dev, 3);
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace sbrl

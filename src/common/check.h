#ifndef SBRL_COMMON_CHECK_H_
#define SBRL_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace sbrl {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the SBRL_CHECK* macros below; invariant violations are
/// programming errors, not recoverable conditions, so we fail fast.
class CheckFailure {
 public:
  /// Starts a failure message naming the failed condition's location.
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  /// Streams extra context onto the failure message.
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Gives the streamed CheckFailure expression type void so it can sit in
/// the false arm of the ternary inside SBRL_CHECK. operator& binds looser
/// than operator<<, so all streamed context reaches the failure first.
struct Voidify {
  /// Discards the streamed failure expression (which aborts on
  /// destruction), yielding void for the ternary's false arm.
  void operator&(const CheckFailure&) {}
};

}  // namespace internal
}  // namespace sbrl

/// Aborts with a diagnostic when `cond` is false. Extra context may be
/// streamed: SBRL_CHECK(n > 0) << "n=" << n;
#define SBRL_CHECK(cond)      \
  (cond) ? (void)0            \
         : ::sbrl::internal::Voidify() & \
               ::sbrl::internal::CheckFailure(__FILE__, __LINE__, #cond)

#define SBRL_CHECK_EQ(a, b) SBRL_CHECK((a) == (b)) << " [" << (a) << " vs " << (b) << "] "
#define SBRL_CHECK_NE(a, b) SBRL_CHECK((a) != (b)) << " [" << (a) << " vs " << (b) << "] "
#define SBRL_CHECK_LT(a, b) SBRL_CHECK((a) < (b)) << " [" << (a) << " vs " << (b) << "] "
#define SBRL_CHECK_LE(a, b) SBRL_CHECK((a) <= (b)) << " [" << (a) << " vs " << (b) << "] "
#define SBRL_CHECK_GT(a, b) SBRL_CHECK((a) > (b)) << " [" << (a) << " vs " << (b) << "] "
#define SBRL_CHECK_GE(a, b) SBRL_CHECK((a) >= (b)) << " [" << (a) << " vs " << (b) << "] "

#ifndef NDEBUG
#define SBRL_DCHECK(cond) SBRL_CHECK(cond)
#else
#define SBRL_DCHECK(cond) SBRL_CHECK(true || (cond))
#endif

#endif  // SBRL_COMMON_CHECK_H_

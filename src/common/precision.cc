#include "common/precision.h"

#include <cstdlib>

namespace sbrl {

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kF64: return "f64";
    case Precision::kF32: return "f32";
  }
  return "f64";
}

bool ParsePrecision(const std::string& text, Precision* out) {
  if (text == "f64") {
    *out = Precision::kF64;
    return true;
  }
  if (text == "f32") {
    *out = Precision::kF32;
    return true;
  }
  return false;
}

Precision ResolvePrecision(Precision fallback) {
  const char* env = std::getenv("SBRL_PRECISION");
  if (env != nullptr) {
    Precision parsed;
    if (ParsePrecision(env, &parsed)) return parsed;
  }
  return fallback;
}

}  // namespace sbrl

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>

#include "common/check.h"
#include "common/cpu.h"
#include "common/env.h"

namespace sbrl {

namespace {

/// True inside a pool worker thread; nested ParallelFor calls from a
/// worker run inline to avoid self-deadlock.
thread_local bool t_inside_worker = false;

/// Runtime serial cutoff; 0 means "not yet resolved from the env".
std::atomic<int64_t> g_serial_cutoff{0};

int EnvThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int64_t fallback = hw == 0 ? 1 : static_cast<int64_t>(hw);
  const int64_t parsed =
      ParseEnvInt64("SBRL_NUM_THREADS", /*min_value=*/1, fallback);
  // A pool of 2^20 threads is certainly a knob mistake; clamping also
  // keeps the int cast below well-defined.
  return static_cast<int>(std::min<int64_t>(parsed, 1 << 20));
}

}  // namespace

/// One in-flight ParallelFor: workers pull chunks by atomically
/// advancing `next`; the caller waits until `chunks_done` reaches
/// `chunks_total`.
struct ThreadPool::Job {
  const std::function<void(int64_t, int64_t)>* body = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk = 1;
  int64_t chunks_total = 0;
  /// The dispatching thread's ActiveIsa() at submit time. Workers pin
  /// it thread-locally while running this job's chunks, so a loop
  /// always executes at its caller's level even when the caller holds a
  /// ScopedThreadIsa override the workers cannot see — different
  /// concurrent runs must never mix kernel levels within one loop
  /// (written before publication under the pool mutex, read after).
  Isa caller_isa = Isa::kBaseline;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> chunks_done{0};

  std::mutex mu;
  std::condition_variable all_done;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int num_workers) {
  SBRL_CHECK_GE(num_workers, 0);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunChunks(Job& job) {
  // Execute at the dispatcher's kernel level (a no-op on the caller
  // thread itself, where this re-pins the level already active).
  ScopedThreadIsa isa_scope(job.caller_isa);
  // Chunks are independent, so an exception does not cancel the rest of
  // the loop — the first one is recorded and rethrown after the drain.
  for (;;) {
    const int64_t lo = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (lo >= job.end) break;
    const int64_t hi = std::min(lo + job.chunk, job.end);
    try {
      (*job.body)(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.mu);
      if (!job.error) job.error = std::current_exception();
    }
    const int64_t done =
        job.chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == job.chunks_total) {
      std::lock_guard<std::mutex> lock(job.mu);
      job.all_done.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  t_inside_worker = true;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || job_ != nullptr; });
      if (shutdown_) return;
      job = job_;
    }
    RunChunks(*job);
    // Park again once this job's chunks are exhausted; the caller clears
    // job_ when the loop drains.
    std::unique_lock<std::mutex> lock(mu_);
    wake_.wait(lock, [this, &job] { return shutdown_ || job_ != job; });
    if (shutdown_) return;
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t min_grain,
                             const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return;
  if (min_grain < 1) min_grain = 1;
  const int64_t total = end - begin;
  const int lanes = num_workers() + 1;
  // Serial fallback: nothing to split across, or the whole range fits in
  // one grain-sized chunk — tiny shapes never pay dispatch overhead.
  if (lanes == 1 || total <= min_grain || t_inside_worker) {
    body(begin, end);
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->begin = begin;
  job->end = end;
  job->caller_isa = ActiveIsa();
  // Aim for a few chunks per lane (dynamic load balance) but never
  // below min_grain indices per chunk.
  const int64_t target_chunks =
      std::min<int64_t>(total, static_cast<int64_t>(lanes) * 4);
  job->chunk = std::max(min_grain, (total + target_chunks - 1) / target_chunks);
  job->chunks_total = (total + job->chunk - 1) / job->chunk;
  job->next.store(begin, std::memory_order_relaxed);

  {
    std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    // Another thread's loop is in flight (or dispatch is contended):
    // run this one serially rather than waiting.
    if (!lock.owns_lock() || job_ != nullptr) {
      body(begin, end);
      return;
    }
    job_ = job;
  }
  wake_.notify_all();

  RunChunks(*job);  // the caller is a full participant

  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->all_done.wait(lock, [&job] {
      return job->chunks_done.load(std::memory_order_acquire) ==
             job->chunks_total;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = nullptr;
  }
  wake_.notify_all();

  if (job->error) std::rethrow_exception(job->error);
}

namespace {

/// The process-wide pool; swapped (and the old pool joined) only by
/// ResetGlobalForTest from a quiescent thread.
std::atomic<ThreadPool*> g_global_pool{nullptr};

}  // namespace

ThreadPool& ThreadPool::Global() {
  ThreadPool* pool = g_global_pool.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  static ThreadPool* env_pool = [] {
    ThreadPool* fresh = new ThreadPool(EnvThreadCount() - 1);
    ThreadPool* expected = nullptr;
    g_global_pool.compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel);
    return fresh;
  }();
  (void)env_pool;
  return *g_global_pool.load(std::memory_order_acquire);
}

void ThreadPool::ResetGlobalForTest(int num_workers) {
  Global();  // ensure first-use initialization has happened
  ThreadPool* fresh = new ThreadPool(num_workers);
  ThreadPool* old = g_global_pool.exchange(fresh, std::memory_order_acq_rel);
  delete old;  // joins the previous workers
}

int ThreadPool::GlobalParallelism() { return Global().num_workers() + 1; }

int64_t SerialCutoff() {
  const int64_t cached = g_serial_cutoff.load(std::memory_order_relaxed);
  if (cached > 0) return cached;
  const int64_t cutoff = ParseEnvInt64("SBRL_SERIAL_CUTOFF", /*min_value=*/1,
                                       kParallelSerialCutoff);
  g_serial_cutoff.store(cutoff, std::memory_order_relaxed);
  return cutoff;
}

void SetSerialCutoff(int64_t cutoff) {
  SBRL_CHECK_GT(cutoff, 0);
  g_serial_cutoff.store(cutoff, std::memory_order_relaxed);
}

void ParallelFor(int64_t begin, int64_t end, int64_t min_grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  ThreadPool::Global().ParallelFor(begin, end, min_grain, body);
}

}  // namespace sbrl

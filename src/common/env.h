#ifndef SBRL_COMMON_ENV_H_
#define SBRL_COMMON_ENV_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"

namespace sbrl {

/// Strict base-10 signed 64-bit integer parse. Accepts an optional
/// leading '-' or '+' and surrounding ASCII whitespace, nothing else:
/// empty input, trailing junk ("12x", "1.5"), and values outside the
/// int64 range ("9223372036854775808") are all rejected with
/// InvalidArgument / OutOfRange. Locale-independent (std::from_chars),
/// unlike strtol/strtoll which this replaces.
StatusOr<int64_t> ParseInt64(const std::string& text);

/// Uniform integer env-knob resolution: the one code path behind every
/// SBRL_* integer knob (thread count, serial cutoff, sweep workers,
/// serving batch knobs, shard sizing).
///
/// Semantics:
///   - `name` unset or empty         -> `fallback`, silently.
///   - malformed / overflowing value -> `fallback`, with one warning
///     log naming the variable (a typo'd knob must not silently become
///     LLONG_MAX, which is what unchecked strtoll used to produce).
///   - parsed value < `min_value`    -> `fallback`, with one warning.
///   - otherwise                     -> the parsed value.
int64_t ParseEnvInt64(const char* name, int64_t min_value, int64_t fallback);

}  // namespace sbrl

#endif  // SBRL_COMMON_ENV_H_

#ifndef SBRL_COMMON_CPU_H_
#define SBRL_COMMON_CPU_H_

#include <string>

namespace sbrl {

/// x86 feature bits the kernel-dispatch layer cares about, read once
/// per process via cpuid (plus XGETBV for the OS-enabled register
/// state). On non-x86 builds every field is false.
struct CpuFeatures {
  /// AVX instructions usable (cpuid bit AND the OS saves ymm state).
  bool avx = false;
  /// AVX2 256-bit integer/permute extensions.
  bool avx2 = false;
  /// Fused multiply-add (FMA3).
  bool fma = false;
  /// AVX-512 foundation (and the OS saves zmm/opmask state).
  bool avx512f = false;
  /// AVX-512 doubleword/quadword extension.
  bool avx512dq = false;
  /// AVX-512 byte/word extension.
  bool avx512bw = false;
  /// AVX-512 128/256-bit vector-length extension.
  bool avx512vl = false;
};

/// Feature bits of the host CPU, detected on first call and cached for
/// the process lifetime. Detection never throws; on non-x86 targets or
/// when cpuid is unavailable it returns all-false.
const CpuFeatures& DetectCpuFeatures();

/// Compact space-separated listing of the detected features (e.g.
/// "avx avx2 fma avx512f avx512dq avx512bw avx512vl" or "none"), for
/// logs and BENCH_*.json run metadata.
std::string CpuFeatureString();

/// Compiler + flag string of this build (compiler version and the
/// optimization flags the library was compiled with), for BENCH_*.json
/// run metadata so perf trajectories are comparable across hosts.
std::string BuildFlagsString();

/// Resolved instruction-set level of the kernel-dispatch tables (see
/// tensor/kernels.h). Levels are strictly ordered: every level's
/// kernels are also valid at the levels above it.
///
/// kBaseline is the portable x86-64 (SSE2) build — bit for bit the
/// pre-dispatch kernels, and the reference the wider tables are tested
/// against. kAvx2 requires avx2 + fma (x86-64-v3); kAvx512 additionally
/// requires avx512f/dq/bw/vl (x86-64-v4).
enum class Isa {
  kBaseline = 0,  ///< portable SSE2 kernels (the pre-dispatch code)
  kAvx2 = 1,      ///< 256-bit kernels (requires avx2 + fma)
  kAvx512 = 2,    ///< 512-bit kernels (requires avx512f/dq/bw/vl)
};

/// Requested ISA level: a concrete Isa or automatic resolution to the
/// widest level the host supports. This is what SbrlConfig::isa and the
/// SBRL_ISA environment variable express; ResolveIsa turns it into an
/// Isa, clamped to what the host and build actually provide.
enum class IsaChoice {
  kAuto = -1,     ///< widest supported level (the default)
  kBaseline = 0,  ///< force the portable kernels
  kAvx2 = 1,      ///< request the 256-bit kernels
  kAvx512 = 2,    ///< request the 512-bit kernels
};

/// Lowercase Isa name: "baseline" / "avx2" / "avx512".
const char* IsaName(Isa isa);

/// Lowercase IsaChoice name: "auto" or the Isa names above.
const char* IsaChoiceName(IsaChoice choice);

/// Parses "auto" / "baseline" / "avx2" / "avx512" (the SBRL_ISA
/// grammar) into `*out`, returning false on any other string.
bool ParseIsaChoice(const std::string& text, IsaChoice* out);

/// Widest Isa level this process can execute: the minimum of what the
/// host CPU supports (DetectCpuFeatures) and what this binary was built
/// with (per-ISA kernel translation units are compiled only when the
/// toolchain accepts the -march flags; see CMakeLists.txt).
Isa MaxSupportedIsa();

/// Pure resolution rule shared by every entry point (and unit-testable
/// without touching process state): `env` — the raw SBRL_ISA value, or
/// null/empty when unset — takes precedence over `config_choice` when
/// it parses (an unparseable value is ignored, with a one-time warning
/// elsewhere); kAuto resolves to `max_supported`; anything wider than
/// `max_supported` is clamped down to it.
Isa ResolveIsa(IsaChoice config_choice, const char* env, Isa max_supported);

/// The ISA level every kernel dispatch reads. A thread-scoped override
/// (ScopedThreadIsa) wins when one is active on the calling thread;
/// otherwise the process-wide default applies, resolved on first use as
/// ResolveIsa(kAuto, getenv("SBRL_ISA"), MaxSupportedIsa()) and
/// re-resolvable via SetActiveIsa. Reading is one thread-local load
/// plus (on the fallback path) one relaxed atomic load — cheap enough
/// for per-call dispatch.
Isa ActiveIsa();

/// Re-resolves the PROCESS-WIDE default ISA from `choice` under the
/// rule of ResolveIsa — the SBRL_ISA environment variable, if set and
/// valid, still wins — and returns the level now active. Thread-scoped
/// overrides are unaffected. Safe to call between kernel invocations;
/// must not race an in-flight kernel (callers swap at step boundaries,
/// e.g. a micro-bench's per-level loop). Training runs do NOT use this:
/// they pin their level with ScopedThreadIsa so concurrent runs with
/// different configs cannot race on process state.
Isa SetActiveIsa(IsaChoice choice);

/// RAII thread-scoped ISA override: while alive, ActiveIsa() on the
/// constructing thread returns the pinned level; destruction restores
/// whatever override (or none) was active before, so scopes nest.
/// Other threads are unaffected — EXCEPT that ThreadPool::ParallelFor
/// propagates the caller's ActiveIsa() to its workers for the duration
/// of each loop, so a run's inner fan-out always executes at the run's
/// pinned level (the sweep-determinism contract; see
/// docs/ARCHITECTURE.md "Experiment engine").
class ScopedThreadIsa {
 public:
  /// Pins the resolution of `choice` (SBRL_ISA env > choice > auto,
  /// clamped to the host — the SetActiveIsa rule, applied to this
  /// thread only).
  explicit ScopedThreadIsa(IsaChoice choice);
  /// Pins an already-resolved level exactly (no re-resolution). Used by
  /// the pool to propagate a caller's level into its workers.
  explicit ScopedThreadIsa(Isa isa);
  ~ScopedThreadIsa();

  ScopedThreadIsa(const ScopedThreadIsa&) = delete;
  ScopedThreadIsa& operator=(const ScopedThreadIsa&) = delete;

  /// The level this scope pinned (what ActiveIsa() returns inside it).
  Isa resolved() const { return resolved_; }

 private:
  int saved_;  // previous thread override (-1: none was active)
  Isa resolved_;
};

}  // namespace sbrl

#endif  // SBRL_COMMON_CPU_H_

#ifndef SBRL_COMMON_THREAD_POOL_H_
#define SBRL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sbrl {

/// Default of SerialCutoff(): work below this many scalar operations
/// (flops or mapped elements) runs serially inline — one chunk of this
/// size amortizes the ~10us dispatch cost, and bench/test-sized shapes
/// never leave the calling thread. Shared by the tensor kernels and
/// the elementwise autodiff ops so "small" means the same thing
/// everywhere.
constexpr int64_t kParallelSerialCutoff = 1 << 16;

/// The runtime serial-inline cutoff every parallel kernel compares its
/// flop count against (and derives its ParallelFor grain from, so one
/// knob tunes both). Defaults to kParallelSerialCutoff; overridable for
/// a process via the SBRL_SERIAL_CUTOFF environment variable (a
/// positive integer, read once on first use) or programmatically via
/// SetSerialCutoff. Every kernel splits work on fixed per-element /
/// per-row boundaries, so changing the cutoff re-balances scheduling
/// only — results stay bitwise identical (see docs/ARCHITECTURE.md).
int64_t SerialCutoff();

/// Overrides SerialCutoff() for this process (cutoff must be > 0).
/// Intended for benchmarks and tuning experiments — e.g. the
/// thread-scaling micro bench sweeps it to find the dispatch
/// break-even point on a given host.
void SetSerialCutoff(int64_t cutoff);

/// Persistent worker-thread pool driving data-parallel loops.
///
/// The pool owns `num_workers` background threads; the calling thread
/// also participates in every ParallelFor, so a pool constructed with 0
/// workers is a plain serial loop. One pool is shared process-wide via
/// Global(), sized by the SBRL_NUM_THREADS environment variable
/// (default: hardware concurrency). Kernels split work over DISJOINT
/// output ranges only, so results never depend on the worker count.
class ThreadPool {
 public:
  /// Pool with `num_workers` background threads (>= 0). The total
  /// parallelism of ParallelFor is num_workers + 1 (caller included).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of background worker threads (total lanes minus one).
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs body(lo, hi) over a partition of [begin, end) across the pool,
  /// blocking until every chunk finished. Chunks hold at least
  /// `min_grain` indices (>= 1). The first exception thrown by any chunk
  /// is rethrown on the calling thread after the loop drains. Calls from
  /// inside a worker (nested parallelism) and calls that arrive while
  /// another loop is in flight run serially inline, so ParallelFor is
  /// safe to use anywhere without deadlocking.
  void ParallelFor(int64_t begin, int64_t end, int64_t min_grain,
                   const std::function<void(int64_t, int64_t)>& body);

  /// Process-wide pool. Worker count = SBRL_NUM_THREADS - 1 when the
  /// variable is set to a positive integer, else hardware concurrency
  /// - 1. Constructed on first use.
  static ThreadPool& Global();

  /// Total parallel lanes of the global pool (workers + caller).
  static int GlobalParallelism();

  /// TEST-ONLY: replaces the process-wide pool with one holding
  /// `num_workers` background threads (joining the old pool's workers),
  /// so a single test process can compare results across worker
  /// counts — the golden-trace suite proves bitwise thread-count
  /// invariance this way. Must not race an in-flight ParallelFor; call
  /// only from a quiescent test main thread.
  static void ResetGlobalForTest(int num_workers);

 private:
  struct Job;

  void WorkerLoop();
  /// Pulls and runs chunks of `job` until none remain; records the first
  /// exception into the job.
  static void RunChunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_;
  std::shared_ptr<Job> job_;  // non-null while a loop is in flight
  bool shutdown_ = false;
};

/// ParallelFor on the global pool: splits [begin, end) into chunks of at
/// least `min_grain` indices and runs body(lo, hi) on each. Falls back
/// to a serial inline loop when the range fits in one chunk or the pool
/// has no workers. `min_grain` doubles as the serial-fallback cutoff:
/// size the grain so one chunk amortizes dispatch (~10us) and tiny
/// benchmark/test shapes never leave the calling thread.
void ParallelFor(int64_t begin, int64_t end, int64_t min_grain,
                 const std::function<void(int64_t, int64_t)>& body);

}  // namespace sbrl

#endif  // SBRL_COMMON_THREAD_POOL_H_

#include "common/serial.h"

#include <array>
#include <cstdio>
#include <fstream>

#include "common/fault.h"

namespace sbrl {
namespace serial {

uint32_t Crc32(const char* data, size_t size) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendString(std::string* out, const std::string& s) {
  AppendScalar<uint64_t>(out, s.size());
  out->append(s);
}

void AppendMatrix(std::string* out, const Matrix& m) {
  AppendScalar<uint64_t>(out, static_cast<uint64_t>(m.rows()));
  AppendScalar<uint64_t>(out, static_cast<uint64_t>(m.cols()));
  out->append(reinterpret_cast<const char*>(m.data()),
              static_cast<size_t>(m.size()) * sizeof(double));
}

void AppendMatrixF32(std::string* out, const MatrixF32& m) {
  AppendScalar<uint64_t>(out, static_cast<uint64_t>(m.rows()));
  AppendScalar<uint64_t>(out, static_cast<uint64_t>(m.cols()));
  out->append(reinterpret_cast<const char*>(m.data()),
              static_cast<size_t>(m.size()) * sizeof(float));
}

void AppendDoubleVector(std::string* out, const std::vector<double>& v) {
  AppendScalar<uint64_t>(out, v.size());
  out->append(reinterpret_cast<const char*>(v.data()),
              v.size() * sizeof(double));
}

bool ByteReader::ReadString(std::string* out) {
  uint64_t size = 0;
  if (!ReadScalar(&size) || size_ - pos_ < size) return false;
  out->assign(data_ + pos_, size);
  pos_ += size;
  return true;
}

bool ByteReader::ReadMatrix(Matrix* out) {
  uint64_t rows = 0, cols = 0;
  if (!ReadScalar(&rows) || !ReadScalar(&cols)) return false;
  // Guard the size multiplication against overflow from corrupted
  // shapes: no legitimate serialized tensor approaches 2^30 per dim.
  if (rows > (1ull << 30) || cols > (1ull << 30)) return false;
  const uint64_t bytes = rows * cols * sizeof(double);
  if (size_ - pos_ < bytes) return false;
  *out = Matrix(static_cast<int64_t>(rows), static_cast<int64_t>(cols));
  std::memcpy(out->data(), data_ + pos_, bytes);
  pos_ += bytes;
  return true;
}

bool ByteReader::ReadMatrixF32(MatrixF32* out) {
  uint64_t rows = 0, cols = 0;
  if (!ReadScalar(&rows) || !ReadScalar(&cols)) return false;
  if (rows > (1ull << 30) || cols > (1ull << 30)) return false;
  const uint64_t bytes = rows * cols * sizeof(float);
  if (size_ - pos_ < bytes) return false;
  *out = MatrixF32(static_cast<int64_t>(rows), static_cast<int64_t>(cols));
  std::memcpy(out->data(), data_ + pos_, bytes);
  pos_ += bytes;
  return true;
}

bool ByteReader::ReadDoubleVector(std::vector<double>* out) {
  uint64_t size = 0;
  if (!ReadScalar(&size) || size > (1ull << 40) ||
      size_ - pos_ < size * sizeof(double)) {
    return false;
  }
  out->resize(size);
  std::memcpy(out->data(), data_ + pos_, size * sizeof(double));
  pos_ += size * sizeof(double);
  return true;
}

namespace {

constexpr size_t kMagicSize = 8;

void AppendSection(std::string* out, const Section& section) {
  AppendScalar<uint32_t>(out, section.tag);
  AppendScalar<uint64_t>(out, section.payload.size());
  out->append(section.payload);
  AppendScalar<uint32_t>(out,
                         Crc32(section.payload.data(), section.payload.size()));
}

}  // namespace

Status WriteSectionedFile(const FormatSpec& spec,
                          const std::vector<Section>& sections,
                          const std::string& path) {
  std::string encoded;
  encoded.append(spec.magic, kMagicSize);
  AppendScalar<uint32_t>(&encoded, spec.version);
  AppendScalar<uint32_t>(&encoded, static_cast<uint32_t>(sections.size()));
  for (const Section& section : sections) AppendSection(&encoded, section);

  if (FaultPoint(spec.write_fault)) {
    return Status::Internal(std::string("injected fault at ") +
                            spec.write_fault + ": " + path);
  }

  // Atomic commit: a crash between here and the rename leaves at most a
  // stale .tmp next to an intact previous file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("cannot open for writing: " + tmp);
    }
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::Internal("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

StatusOr<std::vector<Section>> ReadSectionedFile(const FormatSpec& spec,
                                                 const std::string& path) {
  const std::string what = spec.what;
  if (FaultPoint(spec.read_fault)) {
    return Status::Internal(std::string("injected fault at ") +
                            spec.read_fault + ": " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("read failed: " + path);
  }

  if (bytes.size() < kMagicSize ||
      std::memcmp(bytes.data(), spec.magic, kMagicSize) != 0) {
    return Status::InvalidArgument("not a " + what + " (bad magic): " + path);
  }
  size_t pos = kMagicSize;
  auto read_u32 = [&](uint32_t* out) {
    if (bytes.size() - pos < sizeof(uint32_t)) return false;
    std::memcpy(out, bytes.data() + pos, sizeof(uint32_t));
    pos += sizeof(uint32_t);
    return true;
  };
  auto read_u64 = [&](uint64_t* out) {
    if (bytes.size() - pos < sizeof(uint64_t)) return false;
    std::memcpy(out, bytes.data() + pos, sizeof(uint64_t));
    pos += sizeof(uint64_t);
    return true;
  };

  uint32_t version = 0, section_count = 0;
  if (!read_u32(&version)) {
    return Status::Internal("truncated " + what + " header: " + path);
  }
  if (version != spec.version) {
    return Status::FailedPrecondition(
        what + " format version " + std::to_string(version) +
        " (this build reads " + std::to_string(spec.version) + "): " + path);
  }
  if (!read_u32(&section_count)) {
    return Status::Internal("truncated " + what + " header: " + path);
  }

  std::vector<Section> sections;
  sections.reserve(section_count);
  for (uint32_t s = 0; s < section_count; ++s) {
    Section section;
    uint32_t crc = 0;
    uint64_t payload_size = 0;
    if (!read_u32(&section.tag) || !read_u64(&payload_size) ||
        bytes.size() - pos < payload_size) {
      return Status::Internal("truncated " + what + " section: " + path);
    }
    const char* payload = bytes.data() + pos;
    pos += payload_size;
    if (!read_u32(&crc)) {
      return Status::Internal("truncated " + what + " section: " + path);
    }
    if (Crc32(payload, payload_size) != crc) {
      return Status::Internal(what + " CRC mismatch in section " +
                              std::to_string(section.tag) + ": " + path);
    }
    section.payload.assign(payload, payload_size);
    sections.push_back(std::move(section));
  }
  return sections;
}

}  // namespace serial
}  // namespace sbrl

#ifndef SBRL_COMMON_FAULT_H_
#define SBRL_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace sbrl {

/// Deterministic fault-injection registry (the failure-path test
/// harness of docs/ARCHITECTURE.md "Failure handling & recovery").
///
/// Production code declares named *fault sites* — fixed points on a
/// failure-relevant path, e.g. "trainer/nan_grad" right before the
/// optimizer consumes the gradients, or "checkpoint/write" right
/// before a checkpoint file is committed — by calling
/// FaultPoint("site"). Each call is one *hit* of that site; a test (or
/// the SBRL_FAULT environment variable) arms a site to fire at an
/// exact hit index, and the site's code path simulates the
/// corresponding failure (poison a gradient, fail the I/O) exactly
/// there. Because every hot-path site is evaluated once per training
/// iteration, the hit index IS the iteration number, which makes
/// failure scenarios exactly reproducible: "a NaN gradient at
/// iteration 3" is `SBRL_FAULT=trainer/nan_grad:3`.
///
/// Cost contract: when nothing is armed — every production run —
/// FaultPoint is a single relaxed atomic load and a predictable
/// branch; the registry, its mutex, and the hit counters are touched
/// only while at least one site is armed. Arming is process-wide and
/// intended for single-threaded test setup (arm before training,
/// disarm after); the sites themselves may be evaluated from any
/// thread.
///
/// Spec syntax (SBRL_FAULT and ArmFaultsFromSpec):
///   site:hit        fire exactly once, at 0-based hit index `hit`
///   site:hit+       fire at every hit >= `hit` (a persistent fault)
/// Multiple faults are comma-separated, e.g.
///   SBRL_FAULT="trainer/nan_grad:2,checkpoint/write:0+".
namespace fault_internal {
/// True while at least one fault site is armed. Relaxed is sufficient:
/// arming happens-before the code under test by test construction.
extern std::atomic<bool> g_armed;
/// Slow path of FaultPoint: counts the hit and decides whether the
/// armed entry for `site` fires at this index. Only called while armed.
bool ShouldFire(const char* site);
}  // namespace fault_internal

/// True when at least one fault site is currently armed. The fast
/// guard compiled into every fault site; zero-overhead when disarmed.
inline bool FaultsArmed() {
  return fault_internal::g_armed.load(std::memory_order_relaxed);
}

/// Declares a fault site named `site` and returns true exactly when an
/// armed fault for it fires at this hit. The caller simulates the
/// failure on a true return. `site` must be a stable literal-like
/// name of the form "component/failure" (see docs/ARCHITECTURE.md for
/// the registered site list).
inline bool FaultPoint(const char* site) {
  return FaultsArmed() && fault_internal::ShouldFire(site);
}

/// Arms `site` to fire at 0-based hit index `hit`; with
/// `persistent` true it fires at every hit >= `hit` instead of once.
/// Re-arming an already-armed site replaces its trigger and resets its
/// counters.
void ArmFault(const std::string& site, int64_t hit, bool persistent = false);

/// Parses and arms a comma-separated fault spec ("site:hit[+],...").
/// Returns InvalidArgument (arming nothing further) on a malformed
/// entry. The SBRL_FAULT environment variable is routed through this at
/// process start; a malformed value aborts via SBRL_CHECK so a typo'd
/// fault experiment cannot silently run fault-free.
Status ArmFaultsFromSpec(const std::string& spec);

/// Disarms every fault and clears all hit/fire counters. Tests call
/// this in teardown so arming cannot leak across test cases.
void DisarmFaults();

/// Number of times `site` was evaluated while the registry was armed
/// (the hit counter the trigger index is compared against).
int64_t FaultHitCount(const std::string& site);

/// Number of times an armed fault actually fired at `site`.
int64_t FaultFireCount(const std::string& site);

}  // namespace sbrl

#endif  // SBRL_COMMON_FAULT_H_

#ifndef SBRL_COMMON_SIMD_H_
#define SBRL_COMMON_SIMD_H_

#include <cstdint>

namespace sbrl {

/// How transcendental sweeps (today: the RFF cosine epilogue) are
/// evaluated. Mirrors BatchedHsicMode: a fast production path plus an
/// exact reference path selectable per call / per config.
///
/// kVectorized routes each contiguous run through a SIMD cosine kernel
/// (glibc libmvec via compiler auto-vectorization when available, see
/// src/common/simd_vec.cc). Results agree with std::cos to at most
/// kVecCosMaxUlp units in the last place per element — enforced by
/// tests/simd_test.cc over edge angles — but are not bitwise equal to
/// the scalar libm calls.
///
/// kExact calls std::cos per element in a translation unit compiled
/// WITHOUT value-changing math flags: given the same inputs, outputs
/// equal scalar std::cos bit for bit. Use it when bitwise
/// comparability with scalar references matters more than speed.
///
/// Both modes compute each output element independently from its input
/// element alone, and the parallel fan-out splits work on fixed
/// 4096-element block boundaries, so either mode is bitwise invariant
/// to the worker-thread count.
enum class CosineMode {
  kVectorized,  ///< SIMD sweep (libmvec), <= 4 ulp from std::cos
  kExact,       ///< scalar std::cos reference, bitwise reproducible
};

/// Human-readable CosineMode name ("vectorized" / "exact").
const char* CosineModeName(CosineMode mode);

/// Documented accuracy bound of the kVectorized cosine relative to
/// std::cos, in units in the last place (glibc's libmvec guarantee).
constexpr int64_t kVecCosMaxUlp = 4;

/// Relative cost weight of one cosine evaluation in units of the
/// cache-blocked matmul flops that calibrate kParallelSerialCutoff: a
/// libm cosine costs roughly this many multiply-adds, so sweeps weigh
/// their element count by it before comparing against the shared
/// serial cutoff.
constexpr int64_t kCosFlopWeight = 16;

/// Parallel sweeps split on multiples of this many elements, so an
/// element's position relative to the start of its SIMD run never
/// depends on how ParallelFor chunked the range — the alignment that
/// keeps kVectorized results bitwise thread-count-invariant. One block
/// times kCosFlopWeight equals the shared ~64K-flop serial cutoff.
constexpr int64_t kCosSweepBlock = 4096;

/// y[i] = cos(x[i]) for i in [0, n) through the vectorized kernel,
/// fanning out across the pool in kCosSweepBlock-aligned chunks above
/// the shared serial cutoff. `x == y` (in-place) is allowed; other
/// overlap is not. Accuracy: <= kVecCosMaxUlp ulp vs std::cos.
void VecCos(const double* x, double* y, int64_t n);

/// In-place scaled cosine sweep x[i] = scale * cos(x[i]) over a
/// contiguous run — the shared sqrt(2)*cos(angle) epilogue of every
/// RFF evaluation path. `mode` picks the vectorized or exact kernel;
/// the trailing multiply by `scale` is performed identically in both
/// modes, so mode-to-mode disagreement is bounded by the cosine ulp
/// bound alone. Parallelizes like VecCos. Seconds spent here accrue to
/// the calling thread's CosSweepSecondsThisThread().
void ScaledCosInPlace(double* x, int64_t n, double scale, CosineMode mode);

/// ScaledCosInPlace over a strided (rows x cols) block whose row r
/// starts at x + r * stride (stride >= cols): each row is swept as its
/// own contiguous run. Collapses to one flat sweep when stride == cols.
/// Lets callers apply the shared epilogue to a feature block embedded
/// in a wider stacked matrix without copying it out.
void ScaledCosRowsInPlace(double* x, int64_t rows, int64_t cols,
                          int64_t stride, double scale, CosineMode mode);

/// f32 twin of ScaledCosRowsInPlace for the f32 serving tier: same
/// strided-row contract and block alignment, swept through the f32
/// libmvec cosine (_ZGVbN4v_cosf / _ZGVdN8v_cosf / _ZGVeN16v_cosf per
/// ISA level) in kVectorized mode, scalar float std::cos in kExact.
/// The kVecCosMaxUlp bound holds restated on float spacing.
void ScaledCosRowsF32InPlace(float* x, int64_t rows, int64_t cols,
                             int64_t stride, float scale, CosineMode mode);

/// In-place f32 ELU sweep x[i] = x[i] > 0 ? x[i] : exp(x[i]) - 1 for
/// the f32 serving tier's tape-free value kernels, routed through the
/// per-ISA vectorized exponential (_ZGVbN4v_expf / _ZGVdN8v_expf /
/// _ZGVeN16v_expf). The negative branch evaluates exp(x) - 1 rather
/// than expm1 (libmvec carries no expm1f), costing at most ~1.2e-7
/// absolute error near zero on top of expf's 4-ulp bound — inside the
/// f32 tier's documented rounding budget (the bitwise f64 tier keeps
/// scalar expm1). Elementwise and chunked on kCosSweepBlock boundaries
/// like the cosine sweeps, so results are bitwise invariant to the
/// worker-thread count at a fixed ISA level.
void EluF32InPlace(float* x, int64_t n);

/// Monotonically increasing PER-THREAD total of wall-clock seconds
/// spent inside the cosine sweeps above, measured on the thread that
/// issued them (the sweep blocks its caller, so pool fan-out time is
/// included; time spent by pool workers executing someone else's sweep
/// does not accrue here). Callers snapshot it before and after a
/// region to attribute cosine cost — TrainDiagnostics::rff_cos_seconds
/// is the delta across one Train() call. Run-scoped by construction:
/// each run of a concurrent sweep executes on one thread, so deltas
/// never include another run's sweeps and rff_cos_seconds <=
/// train_seconds always holds (the cross-run attribution contract a
/// process-global counter cannot give).
double CosSweepSecondsThisThread();

}  // namespace sbrl

#endif  // SBRL_COMMON_SIMD_H_

#ifndef SBRL_COMMON_SERIAL_H_
#define SBRL_COMMON_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "tensor/matrix.h"
#include "tensor/matrix_f32.h"

namespace sbrl {
namespace serial {

// ---------------------------------------------------------------------------
// Shared sectioned-file codec. Both on-disk formats in the repo (the
// training checkpoint, "SBRLCKPT", and the serving model, "SBRLMODL")
// share one byte discipline: an 8-byte magic, a u32 format version, a
// u32 section count, then sections of (u32 tag, u64 payload_size,
// payload, u32 crc32(payload)). Fixed-width little-endian scalars,
// length-prefixed strings, shape-prefixed raw f64 matrices; encoding
// goes through memcpy so the bytes are stable regardless of alignment.
// Files are only portable between same-endian hosts, which the CRC and
// shape checks turn into a load error rather than silent garbage.
// ---------------------------------------------------------------------------

/// CRC32 (polynomial 0xEDB88320, table-driven) over `size` bytes at
/// `data`. This is the checksum trailing every section payload.
uint32_t Crc32(const char* data, size_t size);

/// Appends the little-endian byte image of `v` to `out`.
template <typename T>
void AppendScalar(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

/// Appends a u64 length prefix followed by the raw bytes of `s`.
void AppendString(std::string* out, const std::string& s);

/// Appends u64 rows, u64 cols, then the row-major f64 payload of `m`.
void AppendMatrix(std::string* out, const Matrix& m);

/// Appends u64 rows, u64 cols, then the row-major f32 payload of `m`
/// (the serving model's optional f32 weights section).
void AppendMatrixF32(std::string* out, const MatrixF32& m);

/// Appends a u64 element count followed by the raw f64 payload of `v`.
void AppendDoubleVector(std::string* out, const std::vector<double>& v);

/// Bounds-checked sequential reader over an encoded byte range. Every
/// read returns false once the range is exhausted, which the callers
/// translate into a corruption Status — a truncated or bit-flipped
/// payload can fail shape checks before the CRC catches it, so both
/// layers report instead of reading out of bounds.
class ByteReader {
 public:
  /// Wraps the byte range [data, data + size); does not take ownership.
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  /// Reads sizeof(T) bytes into `out`; false when out of bytes.
  template <typename T>
  bool ReadScalar(T* out) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Reads a u64-length-prefixed string written by AppendString.
  bool ReadString(std::string* out);

  /// Reads a shape-prefixed matrix written by AppendMatrix. Rejects
  /// shapes beyond 2^30 per dimension (corrupted-size overflow guard).
  bool ReadMatrix(Matrix* out);

  /// Reads a shape-prefixed f32 matrix written by AppendMatrixF32,
  /// with the same 2^30-per-dimension overflow guard.
  bool ReadMatrixF32(MatrixF32* out);

  /// Reads a count-prefixed f64 vector written by AppendDoubleVector.
  bool ReadDoubleVector(std::vector<double>* out);

  /// True once every byte of the range has been consumed — section
  /// decoders require this so trailing garbage is a decode error.
  bool exhausted() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// One tagged section of a sectioned file: the tag identifies the
/// payload codec to the caller; the payload is an opaque byte string
/// at this layer (the CRC is computed/validated by Write/Read below).
struct Section {
  /// Caller-defined section tag (must be stable across versions).
  uint32_t tag = 0;
  /// Encoded section payload.
  std::string payload;
};

/// Identity of one sectioned on-disk format: the magic, the version
/// this build reads/writes, the noun used in error messages, and the
/// two fault-registry sites armed by the format's I/O paths.
struct FormatSpec {
  /// Exactly 8 magic bytes at file offset 0 (e.g. "SBRLCKPT").
  const char* magic;
  /// Format version written by Write and required by Read.
  uint32_t version;
  /// Error-message noun, e.g. "checkpoint" or "serving model".
  const char* what;
  /// Fault site checked before the write path (see common/fault.h).
  const char* write_fault;
  /// Fault site checked before the read path.
  const char* read_fault;
};

/// Serializes `sections` to `path` atomically under `spec`: the header
/// (magic, version, section count) and CRC-trailed sections are
/// encoded, written to `path + ".tmp"`, and renamed over `path` only
/// after a successful flush — a crash mid-save can never leave a
/// truncated file at `path`. Returns Internal on I/O failure (the
/// spec's write_fault site injects one).
Status WriteSectionedFile(const FormatSpec& spec,
                          const std::vector<Section>& sections,
                          const std::string& path);

/// Reads and validates a file written by WriteSectionedFile under the
/// same spec, returning its sections in file order. Returns NotFound
/// when `path` does not exist, InvalidArgument when the magic does not
/// match (not a `what`), FailedPrecondition on a version mismatch, and
/// Internal on truncation or a CRC mismatch (the spec's read_fault
/// site injects a failure). Section tags are NOT interpreted here —
/// unknown-tag and missing-required-section policy stays with the
/// caller, which owns the payload codecs.
StatusOr<std::vector<Section>> ReadSectionedFile(const FormatSpec& spec,
                                                 const std::string& path);

}  // namespace serial
}  // namespace sbrl

#endif  // SBRL_COMMON_SERIAL_H_

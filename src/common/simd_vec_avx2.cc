// AVX2 variant of the vectorized cosine kernels: the same loops as
// simd_vec.cc, compiled with -ffast-math -march=x86-64-v3 (see
// CMakeLists.txt) so the auto-vectorizer lowers std::cos to the 4-lane
// libmvec variant (_ZGVdN4v_cos). Everything simd_vec.cc says about
// fast-math hygiene applies here unchanged: one multiply per element,
// nothing reassociable, no reductions. Selected at runtime by
// common/simd.cc when the active ISA resolves to avx2.

#if defined(SBRL_HAVE_ISA_AVX2) && defined(__AVX2__)

#include <cmath>
#include <cstdint>

namespace sbrl {
namespace simd_detail {

void VecCosSerialAvx2(const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::cos(x[i]);
}

void ScaledCosSerialInPlaceAvx2(double* x, int64_t n, double scale) {
  for (int64_t i = 0; i < n; ++i) x[i] = scale * std::cos(x[i]);
}

}  // namespace simd_detail
}  // namespace sbrl

#endif  // SBRL_HAVE_ISA_AVX2 && __AVX2__

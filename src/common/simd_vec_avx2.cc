// AVX2 variant of the vectorized cosine kernels: the same loops as
// simd_vec.cc, compiled with -ffast-math -march=x86-64-v3 (see
// CMakeLists.txt) so the auto-vectorizer lowers std::cos to the 4-lane
// libmvec variant (_ZGVdN4v_cos). Everything simd_vec.cc says about
// fast-math hygiene applies here unchanged: one multiply per element,
// nothing reassociable, no reductions. Selected at runtime by
// common/simd.cc when the active ISA resolves to avx2.

#if defined(SBRL_HAVE_ISA_AVX2) && defined(__AVX2__)

#include <cmath>
#include <cstdint>

namespace sbrl {
namespace simd_detail {

void VecCosSerialAvx2(const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::cos(x[i]);
}

void ScaledCosSerialInPlaceAvx2(double* x, int64_t n, double scale) {
  for (int64_t i = 0; i < n; ++i) x[i] = scale * std::cos(x[i]);
}

// f32 twin: cosf lowers to the 8-lane variant (_ZGVdN8v_cosf).
void ScaledCosSerialInPlaceF32Avx2(float* x, int64_t n, float scale) {
  for (int64_t i = 0; i < n; ++i) x[i] = scale * std::cos(x[i]);
}

// f32 ELU sweep (see simd_vec.cc for the branchless form and the
// exp-vs-expm1 accuracy note); expf lowers to _ZGVdN8v_expf here.
void EluSerialInPlaceF32Avx2(float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    const float neg = std::exp(v < 0.0f ? v : 0.0f) - 1.0f;
    const float pos = v > 0.0f ? v : 0.0f;
    x[i] = pos + neg;
  }
}

}  // namespace simd_detail
}  // namespace sbrl

#endif  // SBRL_HAVE_ISA_AVX2 && __AVX2__

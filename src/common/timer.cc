#include "common/timer.h"

// Timer is header-only; this translation unit exists so the build graph
// has a stable home for future timing utilities (e.g. scoped profilers).

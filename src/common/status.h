#ifndef SBRL_COMMON_STATUS_H_
#define SBRL_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace sbrl {

/// Error categories for fallible operations. Modeled after the
/// RocksDB/Arrow convention: library code never throws; recoverable
/// failures travel through Status / StatusOr.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kInternal = 5,
  kUnimplemented = 6,
};

/// Lightweight success-or-error result for operations without a payload.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the OK status singleton value.
  static Status OK() { return Status(); }

  /// Error of the corresponding StatusCode with `msg` as the message.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// See InvalidArgument.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// See InvalidArgument.
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// See InvalidArgument.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// See InvalidArgument.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// See InvalidArgument.
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  /// True when the operation succeeded (code is kOk).
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The error category.
  StatusCode code() const { return code_; }
  /// The human-readable error detail (empty for OK).
  const std::string& message() const { return message_; }

  /// Human-readable one-line rendering, e.g. "InvalidArgument: bad dim".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  /// Code-and-message equality.
  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnimplemented: return "Unimplemented";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status out of the current function.
#define SBRL_RETURN_IF_ERROR(expr)                    \
  do {                                                \
    ::sbrl::Status _status = (expr);                  \
    if (!_status.ok()) return _status;                \
  } while (0)

}  // namespace sbrl

#endif  // SBRL_COMMON_STATUS_H_

// Micro-batcher determinism and lifecycle lockdown: concurrent client
// threads scoring through one shared MicroBatcher must get results
// BITWISE identical to scoring each row alone, no matter how many
// clients run or where the coalescing boundaries fall; shutdown must
// drain every queued request. Runs in the tsan suite, so the model is
// handcrafted (deterministic Rng weights) instead of trained.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "serve/micro_batcher.h"
#include "serve/serving_model.h"
#include "tensor/random.h"

namespace sbrl {
namespace serve {
namespace {

constexpr int64_t kDim = 4;
constexpr int64_t kRepWidth = 6;
constexpr int64_t kHeadWidth = 5;

// A small CFR-shaped model with BatchNorm in every hidden layer, so
// the threaded forwards exercise the full fused inference kernel.
ServingModelData MakeModelData() {
  Rng rng(7);
  ServingModelData data;
  data.meta.backbone = BackboneKind::kCfr;
  data.meta.framework = FrameworkKind::kVanilla;
  data.meta.method_name = "handcrafted";
  data.meta.input_dim = kDim;
  data.meta.binary_outcome = true;
  data.meta.network.rep_layers = 2;
  data.meta.network.rep_width = kRepWidth;
  data.meta.network.head_layers = 1;
  data.meta.network.head_width = kHeadWidth;
  data.meta.network.batchnorm = true;
  data.meta.network.activation = Activation::kElu;

  auto add_layer = [&](const std::string& prefix, int64_t index, int64_t in,
                       int64_t out) {
    const std::string dense = prefix + ".l" + std::to_string(index);
    const std::string bn = prefix + ".bn" + std::to_string(index);
    data.weights.push_back({dense + ".W", rng.Randn(in, out, 0.0, 0.5)});
    data.weights.push_back({dense + ".b", rng.Randn(1, out, 0.0, 0.1)});
    data.weights.push_back({bn + ".gamma", rng.Rand(1, out, 0.8, 1.2)});
    data.weights.push_back({bn + ".beta", rng.Randn(1, out, 0.0, 0.1)});
    data.state.push_back({bn + ".running_mean", rng.Randn(1, out, 0.0, 0.2)});
    data.state.push_back({bn + ".running_var", rng.Rand(1, out, 0.5, 1.5)});
  };
  add_layer("rep", 0, kDim, kRepWidth);
  add_layer("rep", 1, kRepWidth, kRepWidth);
  add_layer("heads.h0", 0, kRepWidth, kHeadWidth);
  add_layer("heads.h1", 0, kRepWidth, kHeadWidth);
  data.weights.push_back({"heads.h0.out.W", rng.Randn(kHeadWidth, 1)});
  data.weights.push_back({"heads.h0.out.b", rng.Randn(1, 1)});
  data.weights.push_back({"heads.h1.out.W", rng.Randn(kHeadWidth, 1)});
  data.weights.push_back({"heads.h1.out.b", rng.Randn(1, 1)});
  return data;
}

ServingModel MakeModel() {
  StatusOr<ServingModel> model = ServingModel::FromData(MakeModelData());
  SBRL_CHECK(model.ok()) << model.status().ToString();
  return std::move(model.value());
}

TEST(ServingConcurrencyTest, ResultsBitwiseIndependentOfThreadsAndBatching) {
  const ServingModel model = MakeModel();
  Rng rng(8);
  const Matrix queries = rng.Randn(24, kDim);
  const std::vector<ServingModel::RowScore> reference =
      model.ScoreRows(queries);

  for (const int64_t threads : {1, 2, 4}) {
    for (const int64_t max_batch : {1, 3, 8}) {
      for (const int64_t max_wait_us : {0, 1000}) {
        MicroBatcher::Options options;
        options.max_batch = max_batch;
        options.max_wait_us = max_wait_us;
        MicroBatcher batcher(&model, options);

        std::vector<ServingModel::RowScore> got(
            static_cast<size_t>(queries.rows()));
        std::vector<std::thread> clients;
        for (int64_t c = 0; c < threads; ++c) {
          clients.emplace_back([&, c] {
            // Client c scores every threads-th row.
            std::vector<double> row(kDim);
            for (int64_t i = c; i < queries.rows(); i += threads) {
              for (int64_t d = 0; d < kDim; ++d) row[d] = queries(i, d);
              got[static_cast<size_t>(i)] = batcher.ScoreRow(row);
            }
          });
        }
        for (std::thread& client : clients) client.join();
        batcher.Shutdown();

        EXPECT_EQ(batcher.rows_scored(), queries.rows());
        EXPECT_GE(batcher.batches_dispatched(),
                  (queries.rows() + max_batch - 1) / max_batch);
        EXPECT_LE(batcher.batches_dispatched(), queries.rows());
        for (int64_t i = 0; i < queries.rows(); ++i) {
          const ServingModel::RowScore& want =
              reference[static_cast<size_t>(i)];
          const ServingModel::RowScore& have = got[static_cast<size_t>(i)];
          EXPECT_EQ(have.y0, want.y0)
              << "threads=" << threads << " max_batch=" << max_batch
              << " wait=" << max_wait_us << " row=" << i;
          EXPECT_EQ(have.y1, want.y1);
          EXPECT_EQ(have.ite, want.ite);
        }
      }
    }
  }
}

TEST(ServingConcurrencyTest, ShutdownDrainsQueuedRequests) {
  const ServingModel model = MakeModel();
  Rng rng(9);
  const Matrix queries = rng.Randn(8, kDim);
  const std::vector<ServingModel::RowScore> reference =
      model.ScoreRows(queries);

  // A linger budget far beyond the test's lifetime and a batch larger
  // than the request count: nothing dispatches until Shutdown, which
  // must flush the whole queue in its drain.
  MicroBatcher::Options options;
  options.max_batch = 64;
  options.max_wait_us = 10'000'000;
  MicroBatcher batcher(&model, options);

  std::atomic<int64_t> entered{0};
  std::vector<ServingModel::RowScore> got(
      static_cast<size_t>(queries.rows()));
  std::vector<std::thread> clients;
  for (int64_t i = 0; i < queries.rows(); ++i) {
    clients.emplace_back([&, i] {
      std::vector<double> row(kDim);
      for (int64_t d = 0; d < kDim; ++d) row[d] = queries(i, d);
      entered.fetch_add(1);
      got[static_cast<size_t>(i)] = batcher.ScoreRow(row);
    });
  }
  while (entered.load() < queries.rows()) std::this_thread::yield();
  // Give the last clients time to move from the counter into the
  // queue before shutting down.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  batcher.Shutdown();
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(batcher.rows_scored(), queries.rows());
  for (int64_t i = 0; i < queries.rows(); ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)].y0,
              reference[static_cast<size_t>(i)].y0);
    EXPECT_EQ(got[static_cast<size_t>(i)].y1,
              reference[static_cast<size_t>(i)].y1);
  }
}

TEST(ServingConcurrencyTest, EnvKnobsResolveWhenOptionsAreDefault) {
  const ServingModel model = MakeModel();
  setenv("SBRL_SERVE_MAX_BATCH", "5", /*overwrite=*/1);
  setenv("SBRL_SERVE_MAX_WAIT_US", "7", /*overwrite=*/1);
  {
    MicroBatcher batcher(&model);
    EXPECT_EQ(batcher.max_batch(), 5);
    EXPECT_EQ(batcher.max_wait_us(), 7);
  }
  {
    // Explicit options beat the environment.
    MicroBatcher::Options options;
    options.max_batch = 2;
    options.max_wait_us = 0;
    MicroBatcher batcher(&model, options);
    EXPECT_EQ(batcher.max_batch(), 2);
    EXPECT_EQ(batcher.max_wait_us(), 0);
  }
  unsetenv("SBRL_SERVE_MAX_BATCH");
  unsetenv("SBRL_SERVE_MAX_WAIT_US");
  {
    // Without options or env, the defaults apply.
    MicroBatcher batcher(&model);
    EXPECT_EQ(batcher.max_batch(), 32);
    EXPECT_EQ(batcher.max_wait_us(), 200);
  }
}

TEST(ServingConcurrencyTest, MalformedEnvKnobsFallBackToDefaults) {
  const ServingModel model = MakeModel();
  // Garbage and overflow must resolve to the defaults — old strtoll
  // parsing turned the overflow case into LLONG_MAX.
  setenv("SBRL_SERVE_MAX_BATCH", "many", /*overwrite=*/1);
  setenv("SBRL_SERVE_MAX_WAIT_US", "9223372036854775808", 1);
  {
    MicroBatcher batcher(&model);
    EXPECT_EQ(batcher.max_batch(), 32);
    EXPECT_EQ(batcher.max_wait_us(), 200);
  }
  // Below-minimum values are rejected the same way.
  setenv("SBRL_SERVE_MAX_BATCH", "0", 1);
  setenv("SBRL_SERVE_MAX_WAIT_US", "-5", 1);
  {
    MicroBatcher batcher(&model);
    EXPECT_EQ(batcher.max_batch(), 32);
    EXPECT_EQ(batcher.max_wait_us(), 200);
  }
  unsetenv("SBRL_SERVE_MAX_BATCH");
  unsetenv("SBRL_SERVE_MAX_WAIT_US");
}

TEST(ServingConcurrencyTest, ShutdownIsIdempotent) {
  const ServingModel model = MakeModel();
  MicroBatcher batcher(&model);
  std::vector<double> row(kDim, 0.25);
  const ServingModel::RowScore score = batcher.ScoreRow(row);
  EXPECT_EQ(score.ite, score.y1 - score.y0);
  batcher.Shutdown();
  batcher.Shutdown();  // second call is a no-op, destructor a third
}

}  // namespace
}  // namespace serve
}  // namespace sbrl
